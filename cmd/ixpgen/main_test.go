package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/packet"
)

func TestRunBalanced(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.ixfr")
	if err := run("IXP-US2", 30, "2021-07-23", out, false, false, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := netflow.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records written")
	}
	bh := 0
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
		if recs[i].Blackholed {
			bh++
		}
	}
	if bh == 0 || bh == len(recs) {
		t.Errorf("degenerate balance: %d of %d blackholed", bh, len(recs))
	}
}

func TestRunRawAndAnonymize(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.ixfr")
	anon := filepath.Join(dir, "anon.ixfr")
	if err := run("IXP-US2", 5, "2021-07-23", plain, true, false, 42); err != nil {
		t.Fatal(err)
	}
	if err := run("IXP-US2", 5, "2021-07-23", anon, true, true, 42); err != nil {
		t.Fatal(err)
	}
	read := func(p string) []netflow.Record {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		recs, err := netflow.NewReader(f).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := read(plain), read(anon)
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	same := 0
	for i := range a {
		if a[i].SrcIP == b[i].SrcIP {
			same++
		}
		if a[i].Bytes != b[i].Bytes || a[i].SrcPort != b[i].SrcPort {
			t.Fatal("anonymization must only touch addresses")
		}
	}
	if same > len(a)/100 {
		t.Errorf("%d of %d source IPs unchanged after anonymization", same, len(a))
	}
}

func TestRunSAS(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sas.ixfr")
	if err := run("SAS", 120, "2021-04-12", out, false, false, 0); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("empty SAS output")
	}
}

func TestRunPcap(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.pcap")
	if err := runPcap("IXP-US2", 2, "2021-07-23", out, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := packet.NewPcapReader(f)
	n := 0
	var p packet.Packet
	for {
		fr, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Decode(fr.Data); err != nil {
			t.Fatalf("frame %d does not decode: %v", n, err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no frames")
	}
}

func TestRunUnknownProfile(t *testing.T) {
	if err := run("NOPE", 5, "2021-07-23", filepath.Join(t.TempDir(), "x"), false, false, 0); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if err := run("IXP-US2", 5, "not-a-date", filepath.Join(t.TempDir(), "x"), false, false, 0); err == nil {
		t.Fatal("bad date accepted")
	}
}
