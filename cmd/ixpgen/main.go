// Command ixpgen generates synthetic IXP flow datasets: raw or balanced
// streams for any of the five modeled vantage points or the self-attack
// set, written in the binary flow format (see internal/netflow).
//
// Usage:
//
//	ixpgen -profile IXP-CE1 -minutes 1440 -out ce1.ixfr [-raw] [-anonymize]
//	ixpgen -profile SAS -out sas.ixfr
//	ixpgen -profile IXP-US2 -minutes 10 -pcap us2.pcap   (sampled frames for Wireshark)
//	ixpgen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/packet"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

func main() {
	var (
		profile   = flag.String("profile", "IXP-US1", "vantage point (IXP-CE1, IXP-US1, IXP-SE, IXP-US2, IXP-CE2, SAS)")
		minutes   = flag.Int64("minutes", 1440, "length of the generated window in minutes")
		start     = flag.String("start", "2021-07-23", "window start date (YYYY-MM-DD, UTC)")
		out       = flag.String("out", "", "output flow file")
		pcapOut   = flag.String("pcap", "", "write sampled frames as a pcap file instead of flow records")
		raw       = flag.Bool("raw", false, "write the raw unbalanced stream instead of the balanced one")
		anonymize = flag.Bool("anonymize", false, "hash IP and MAC addresses with a random salt before writing")
		seed      = flag.Uint64("seed", 0, "override the profile seed")
		list      = flag.Bool("list", false, "list available profiles and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("profile    members  benign flows/min  attack episodes/min")
		for _, p := range synth.Profiles() {
			fmt.Printf("%-9s  %7d  %16d  %19.2f\n", p.Name, p.Members, p.BenignFlowsPerMin, p.EpisodeRatePerMin)
		}
		fmt.Printf("%-9s  %7d  %16d  %19s\n", "SAS", synth.SASProfile().Members, synth.SASProfile().BenignFlowsPerMin, "(scripted attacks)")
		return
	}
	if *pcapOut != "" {
		if err := runPcap(*profile, *minutes, *start, *pcapOut, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "ixpgen:", err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "ixpgen: -out or -pcap is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*profile, *minutes, *start, *out, *raw, *anonymize, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "ixpgen:", err)
		os.Exit(1)
	}
}

// runPcap replays the generator's sampled frames into a pcap file.
func runPcap(profile string, minutes int64, start, out string, seed uint64) error {
	startTime, err := time.Parse("2006-01-02", start)
	if err != nil {
		return fmt.Errorf("parsing -start: %w", err)
	}
	fromMin := startTime.UTC().Unix() / 60
	p, err := synth.ProfileByName(profile)
	if err != nil {
		return err
	}
	if seed != 0 {
		p.Seed = seed
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := packet.NewPcapWriter(f)
	g := synth.NewGenerator(p)
	var builder packet.Builder
	var buf []synth.Flow
	for m := fromMin; m < fromMin+minutes; m++ {
		buf = g.GenerateMinute(m, buf[:0])
		for i := range buf {
			frame, err := synth.FrameFor(&buf[i], &builder)
			if err != nil {
				return err
			}
			orig := int(buf[i].Bytes / buf[i].Packets)
			if err := w.WriteFrame(buf[i].Timestamp, 0, frame, orig); err != nil {
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d sampled frames to %s\n", w.Count(), out)
	return nil
}

func run(profile string, minutes int64, start, out string, raw, anonymize bool, seed uint64) error {
	startTime, err := time.Parse("2006-01-02", start)
	if err != nil {
		return fmt.Errorf("parsing -start: %w", err)
	}
	fromMin := startTime.UTC().Unix() / 60

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := netflow.NewWriter(f)

	var anon *netflow.Anonymizer
	if anonymize {
		if anon, err = netflow.NewRandomAnonymizer(); err != nil {
			return err
		}
	}
	write := func(rec netflow.Record) error {
		if anon != nil {
			anon.Record(&rec)
		}
		return w.Write(&rec)
	}

	var stats balance.Stats
	if profile == "SAS" {
		cfg := synth.DefaultSelfAttackConfig()
		if seed != 0 {
			cfg.Profile.Seed = seed
		}
		cfg.FromMin = fromMin
		cfg.ToMin = fromMin + minutes
		flows := synth.SelfAttackSet(cfg)
		if raw {
			for i := range flows {
				if err := write(flows[i].Record); err != nil {
					return err
				}
			}
		} else {
			var werr error
			b := balance.ForFlows(cfg.Profile.Seed, func(fl synth.Flow) {
				if werr == nil {
					werr = write(fl.Record)
				}
			})
			for i := range flows {
				b.Add(flows[i])
			}
			b.Flush()
			if werr != nil {
				return werr
			}
			stats = b.Stats
		}
	} else {
		p, err := synth.ProfileByName(profile)
		if err != nil {
			return err
		}
		if seed != 0 {
			p.Seed = seed
		}
		g := synth.NewGenerator(p)
		var werr error
		var b *balance.Balancer[synth.Flow]
		if !raw {
			b = balance.ForFlows(p.Seed, func(fl synth.Flow) {
				if werr == nil {
					werr = write(fl.Record)
				}
			})
		}
		var buf []synth.Flow
		for m := fromMin; m < fromMin+minutes; m++ {
			buf = g.GenerateMinute(m, buf[:0])
			for i := range buf {
				if raw {
					if err := write(buf[i].Record); err != nil {
						return err
					}
				} else {
					b.Add(buf[i])
				}
			}
			if werr != nil {
				return werr
			}
		}
		if b != nil {
			b.Flush()
			stats = b.Stats
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if raw {
		fmt.Printf("wrote %d raw records to %s\n", w.Count(), out)
	} else {
		fmt.Printf("wrote %d balanced records to %s (reduction %.4f%%, blackhole share %.1f%%)\n",
			w.Count(), out, 100*stats.Reduction(), 100*stats.BlackholeShare())
	}
	return nil
}
