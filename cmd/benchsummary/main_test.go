package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func writeBench(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSummarizeMergesSeries(t *testing.T) {
	dir := t.TempDir()
	f2 := writeBench(t, dir, "BENCH_PR2.json", `{
  "date": "2026-01-01T00:00:00Z",
  "cores": 8,
  "ingest_ns_per_datagram": {"metrics_off": 100, "metrics_on": 110},
  "overhead_percent": 10.0
}`)
	f8 := writeBench(t, dir, "BENCH_PR8.json", `{
  "date": "2026-02-01T00:00:00Z",
  "cores": 8,
  "note": "min of N runs",
  "fit_ns": {"reference": 300, "fast": 100},
  "fit_speedup": 3.0,
  "overhead_percent": 5.0,
  "match": [
    {"impl": "compiled_miss", "rules": 256, "pps": 1e9},
    {"impl": "interp_miss", "rules": 256, "pps": 1e7}
  ],
  "pairs": [
    {"name": "woe_lookup", "old": {"bench": "BenchmarkOld", "ns_per_op": 50}, "speedup": 2.5}
  ]
}`)

	traj, err := summarize([]string{f8, f2})
	if err != nil {
		t.Fatal(err)
	}
	if traj.Schema != "bench-trajectory/v1" {
		t.Fatalf("schema = %q", traj.Schema)
	}

	// A metric present in both files becomes one series sorted by PR,
	// regardless of input file order.
	if got := traj.Series["overhead_percent"]; !reflect.DeepEqual(got, []point{{2, 10}, {8, 5}}) {
		t.Fatalf("overhead_percent = %+v", got)
	}
	// Nested objects flatten to dot paths.
	if got := traj.Series["fit_ns.reference"]; !reflect.DeepEqual(got, []point{{8, 300}}) {
		t.Fatalf("fit_ns.reference = %+v", got)
	}
	if got := traj.Series["ingest_ns_per_datagram.metrics_off"]; !reflect.DeepEqual(got, []point{{2, 100}}) {
		t.Fatalf("metrics_off = %+v", got)
	}
	// Array elements are labeled by discriminator fields, not index.
	if got := traj.Series["match.compiled_miss.rules=256.pps"]; !reflect.DeepEqual(got, []point{{8, 1e9}}) {
		t.Fatalf("compiled_miss pps = %+v", got)
	}
	if got := traj.Series["pairs.woe_lookup.old.ns_per_op"]; !reflect.DeepEqual(got, []point{{8, 50}}) {
		t.Fatalf("pairs old ns = %+v", got)
	}
	// String leaves and discriminator fields do not become series.
	for _, absent := range []string{"date", "note", "match.compiled_miss.rules=256.rules", "pairs.woe_lookup.old.bench"} {
		if _, ok := traj.Series[absent]; ok {
			t.Fatalf("series %q should not exist", absent)
		}
	}
}

func TestSummarizeRejectsBadName(t *testing.T) {
	dir := t.TempDir()
	f := writeBench(t, dir, "notabench.json", `{}`)
	if _, err := summarize([]string{f}); err == nil {
		t.Fatal("expected an error for a non-BENCH_PR<n> file name")
	}
}

// TestSummarizeRealArtifacts runs the summarizer over the repo's actual
// BENCH_PR*.json files (when present) so schema drift in bench.sh's awk
// emitters is caught here rather than by a consumer.
func TestSummarizeRealArtifacts(t *testing.T) {
	files, err := filepath.Glob("../../BENCH_PR*.json")
	if err != nil || len(files) == 0 {
		t.Skip("no BENCH_PR*.json artifacts at the repo root")
	}
	traj, err := summarize(files)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Series) == 0 {
		t.Fatal("no series extracted from real artifacts")
	}
	for name, pts := range traj.Series {
		for i := 1; i < len(pts); i++ {
			if pts[i].PR < pts[i-1].PR {
				t.Fatalf("series %q not sorted by pr: %+v", name, pts)
			}
		}
	}
}
