// Command benchsummary merges the per-PR benchmark artifacts
// (BENCH_PR*.json at the repo root, written by scripts/bench.sh) into a
// single trajectory file so each metric can be read across the stacked
// PR sequence without opening N differently-shaped files.
//
// Output schema ("bench-trajectory/v1"):
//
//	{
//	  "schema": "bench-trajectory/v1",
//	  "series": {
//	    "<metric path>": [ {"pr": <n>, "value": <number>}, ... ],
//	    ...
//	  }
//	}
//
// Every numeric leaf of every input file becomes one series point; the
// series name is the dot-joined path to the leaf. Nested objects
// contribute their key ("fit_ns.reference"); arrays of objects are
// labeled by their discriminator fields rather than their index, so the
// series name is stable if the array is reordered: string discriminators
// (name, impl, mode) appear as their value, numeric ones (rules, mult,
// procs) as key=value. Example series names:
//
//	fit_ns.reference                          (BENCH_PR8 nested object)
//	pairs.woe_lookup.speedup                  (BENCH_PR3 array, name field)
//	match.compiled_miss.rules=256.pps         (BENCH_PR7 array, two fields)
//
// String leaves (date, note) are dropped. The PR number comes from the
// file name (BENCH_PR<n>.json); points within a series are sorted by PR,
// series names sort lexically (encoding/json map ordering). A metric
// that only exists in some PRs simply has a shorter series — consumers
// must not assume every series covers every PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

type point struct {
	PR    int     `json:"pr"`
	Value float64 `json:"value"`
}

type trajectory struct {
	Schema string             `json:"schema"`
	Series map[string][]point `json:"series"`
}

var prPattern = regexp.MustCompile(`BENCH_PR(\d+)\.json$`)

// discriminators are the fields that identify an element inside an
// array of objects, in the order they are joined into the series name.
// Strings label by bare value, numbers by key=value.
var discriminators = []string{"name", "impl", "mode", "kind", "rules", "mult", "procs"}

func main() {
	out := flag.String("o", "BENCH_TRAJECTORY.json", "output file")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchsummary [-o out.json] BENCH_PR*.json...")
		os.Exit(2)
	}
	traj, err := summarize(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
}

func summarize(files []string) (*trajectory, error) {
	traj := &trajectory{Schema: "bench-trajectory/v1", Series: map[string][]point{}}
	for _, f := range files {
		m := prPattern.FindStringSubmatch(f)
		if m == nil {
			return nil, fmt.Errorf("%s: name must match BENCH_PR<n>.json", f)
		}
		pr, _ := strconv.Atoi(m[1])
		raw, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var doc any
		if err := json.Unmarshal(raw, &doc); err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		leaves := map[string]float64{}
		flatten("", doc, leaves)
		for path, v := range leaves {
			traj.Series[path] = append(traj.Series[path], point{PR: pr, Value: v})
		}
	}
	for _, pts := range traj.Series {
		sort.Slice(pts, func(i, j int) bool { return pts[i].PR < pts[j].PR })
	}
	return traj, nil
}

// flatten walks a decoded JSON value and collects every numeric leaf
// under its dot-joined path. Non-numeric leaves are dropped.
func flatten(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case float64:
		if prefix != "" {
			out[prefix] = t
		}
	case map[string]any:
		for k, c := range t {
			flatten(join(prefix, k), c, out)
		}
	case []any:
		for i, c := range t {
			flatten(join(prefix, elemLabel(c, i)), stripDiscriminators(c), out)
		}
	}
}

// elemLabel names an array element by its discriminator fields so the
// series survives reordering; elements without any fall back to the
// index.
func elemLabel(v any, idx int) string {
	m, ok := v.(map[string]any)
	if !ok {
		return strconv.Itoa(idx)
	}
	label := ""
	for _, d := range discriminators {
		switch f := m[d].(type) {
		case string:
			label = join(label, f)
		case float64:
			label = join(label, d+"="+strconv.FormatFloat(f, 'g', -1, 64))
		}
	}
	if label == "" {
		return strconv.Itoa(idx)
	}
	return label
}

// stripDiscriminators removes the labeling fields from an array element
// so they name the series instead of becoming series themselves.
func stripDiscriminators(v any) any {
	m, ok := v.(map[string]any)
	if !ok {
		return v
	}
	rest := map[string]any{}
	for k, c := range m {
		rest[k] = c
	}
	for _, d := range discriminators {
		delete(rest, d)
	}
	return rest
}

func join(prefix, k string) string {
	if prefix == "" {
		return k
	}
	return prefix + "." + k
}
