package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

func writeBalanced(t *testing.T, path string, minutes int64) {
	t.Helper()
	p := synth.ProfileUS2()
	p.Seed = 0x11
	g := synth.NewGenerator(p)
	bal, _ := balance.Flows(1, g.Generate(0, minutes))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := netflow.NewWriter(f)
	for i := range bal {
		if err := w.Write(&bal[i].Record); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestMineExportImportShow(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "flows.ixfr")
	rules := filepath.Join(dir, "rules.json")
	writeBalanced(t, in, 180)

	if err := run(in, rules, "", "", 0.8, 20, 0.01, 0.01, true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(rules)
	if err != nil {
		t.Fatal(err)
	}
	set, err := tagging.Import(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 {
		t.Fatal("no rules exported")
	}
	if len(set.Accepted()) == 0 {
		t.Fatal("operator policy accepted nothing")
	}
	// Show mode parses the file.
	if err := run("", "", "", rules, 0.8, 20, 0.01, 0.01, false); err != nil {
		t.Fatal(err)
	}
	// Merge mode folds fresh rules into the existing list.
	if err := run(in, rules, rules, "", 0.8, 20, 0.01, 0.01, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunRequiresInput(t *testing.T) {
	if err := run("", "", "", "", 0.8, 20, 0.01, 0.01, false); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run("/does/not/exist", "", "", "", 0.8, 20, 0.01, 0.01, false); err == nil {
		t.Fatal("missing file accepted")
	}
}
