// Command rulemine runs Step 1 of the IXP Scrubber on a balanced flow file:
// it mines association rules with FP-Growth, minimizes them with
// Algorithm 1, renders the Figure 6 review table, and imports/exports the
// JSON rule list format.
//
// Usage:
//
//	rulemine -in ce1.ixfr -export rules.json [-minconf 0.8] [-lc 0.01] [-ls 0.01]
//	rulemine -in ce1.ixfr -merge rules.json -export rules.json
//	rulemine -show rules.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

func main() {
	var (
		in      = flag.String("in", "", "balanced flow file to mine")
		export  = flag.String("export", "", "write the rule list JSON here")
		merge   = flag.String("merge", "", "existing rule list to merge fresh rules into")
		show    = flag.String("show", "", "print a rule list file as the review table and exit")
		minconf = flag.Float64("minconf", 0.8, "minimum rule confidence")
		minsupp = flag.Int("minsupp", 20, "minimum itemset support count")
		lc      = flag.Float64("lc", 0.01, "Algorithm 1 confidence loss threshold Lc")
		ls      = flag.Float64("ls", 0.01, "Algorithm 1 support loss threshold Ls")
		accept  = flag.Bool("accept", false, "apply the scripted operator policy (accept anchored rules with confidence >= 0.9)")
	)
	flag.Parse()
	if err := run(*in, *export, *merge, *show, *minconf, *minsupp, *lc, *ls, *accept); err != nil {
		fmt.Fprintln(os.Stderr, "rulemine:", err)
		os.Exit(1)
	}
}

func run(in, export, merge, show string, minconf float64, minsupp int, lc, ls float64, accept bool) error {
	if show != "" {
		set, err := load(show)
		if err != nil {
			return err
		}
		printTable(set)
		return nil
	}
	if in == "" {
		return fmt.Errorf("-in is required (or -show)")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	var records []netflow.Record
	r := netflow.NewReader(f)
	for {
		var rec netflow.Record
		err := r.Read(&rec)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		records = append(records, rec)
	}

	opts := tagging.MineOptions{
		MinConfidence:   minconf,
		MinSupportCount: minsupp,
		LossConfidence:  lc,
		LossSupport:     ls,
	}
	rules, rep := tagging.Mine(records, opts)
	fmt.Printf("mined %d transactions -> %d frequent itemsets -> %d rules (all consequents) -> %d {blackhole} rules -> %d after Algorithm 1\n",
		rep.Transactions, rep.FrequentItemsets, rep.RulesAllConsequents, rep.RulesBlackhole, rep.RulesMinimized)

	var set *tagging.RuleSet
	if merge != "" {
		if set, err = load(merge); err != nil {
			return err
		}
		added := set.Merge(rules)
		fmt.Printf("merged into %s: %d new rules staged, %d total\n", merge, added, set.Len())
	} else {
		set = tagging.NewRuleSet(rules)
	}
	if accept {
		acc, dec := set.Apply(tagging.DefaultAcceptPolicy())
		fmt.Printf("operator policy: %d accepted, %d declined\n", acc, dec)
	}
	printTable(set)
	if export != "" {
		out, err := os.Create(export)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := set.Export(out); err != nil {
			return err
		}
		fmt.Printf("exported %d rules to %s\n", set.Len(), export)
	}
	return nil
}

func load(path string) (*tagging.RuleSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tagging.Import(f)
}

// printTable renders the Figure 6 review table.
func printTable(set *tagging.RuleSet) {
	fmt.Printf("%-10s %-55s %-11s %-10s %s\n", "id", "antecedent", "confidence", "support", "status")
	for _, r := range set.Rules() {
		fmt.Printf("%-10s %-55s %-11.5f %-10.5f %s\n",
			r.ID, tagging.ItemsString(r.Antecedent), r.Confidence, r.Support, r.Status)
	}
}
