// Command experiments regenerates the paper's tables and figures on
// synthetic data and prints them as text tables and series.
//
// Usage:
//
//	experiments -list
//	experiments -run table3
//	experiments -run fig11a,fig11b
//	experiments -run all [-scale 0.5] [-out results.txt]
//
// A comma-separated -run list executes in one process, so experiments
// that share a corpus (the fig11 temporal series) build it once.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/experiments"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
)

func main() {
	var (
		run        = flag.String("run", "", "experiment ID, comma-separated list of IDs, or 'all'")
		scale      = flag.Float64("scale", 1.0, "time-window scale factor (1.0 = documented baseline)")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		out        = flag.String("out", "", "also write results to this file")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial); outputs are identical at every value")
		metricsOut = flag.String("metrics-out", "", "write per-artifact wall-time/output metrics (Prometheus text) to this file after the run")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.Order {
			fmt.Println(id)
		}
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}

	emit := func(res *experiments.Result) {
		fmt.Fprintln(w, res.Render())
	}
	start := time.Now()
	var err error
	if *run == "all" {
		err = experiments.RunAll(cfg, emit)
	} else if ids := strings.Split(*run, ","); len(ids) > 1 {
		err = experiments.RunMany(cfg, ids, emit)
	} else {
		var res *experiments.Result
		res, err = experiments.Run(*run, cfg)
		if err == nil {
			emit(res)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Fprintf(w, "total runtime: %s\n", time.Since(start).Round(time.Millisecond))
	if reg != nil {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		werr := reg.WritePrometheus(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "experiments: writing metrics:", werr)
			os.Exit(1)
		}
	}
}
