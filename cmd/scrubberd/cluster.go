package main

import (
	"context"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/cluster"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
)

// clusterOptions configures the -cluster daemon mode: N simulated scrubber
// sites in one process with a gossip coordinator, paced by a wall-clock
// ticker instead of sockets.
type clusterOptions struct {
	Sites       int
	Dir         string
	Seed        uint64
	TrainEvery  time.Duration // simulated training cadence
	GossipEvery time.Duration // simulated gossip cadence
	Tick        time.Duration // wall clock per simulated minute
	MetricsAddr string        // empty disables the observability server
	// SketchBudget > 0 runs every site on the bounded-memory sketch path.
	SketchBudget float64
	// Drop puts the compiled mitigation fast path in front of each site.
	Drop bool
}

// simMinutes converts a simulated-duration flag into whole cluster minutes,
// with a one-minute floor so a sub-minute cadence still fires.
func simMinutes(d time.Duration) int64 {
	if m := int64(d / time.Minute); m > 1 {
		return m
	}
	return 1
}

// runCluster drives the federated topology: one simulated minute per tick
// (every site generates its vantage point's traffic, the partitioner routes
// it by target IP), training rounds and gossip elections on their simulated
// cadences, and a coordinator checkpoint after every minute so a restarted
// daemon resumes mid-sequence from -cluster-dir.
func runCluster(ctx context.Context, log *slog.Logger, o clusterOptions) error {
	var (
		reg    *obs.Registry
		health obs.Health
	)
	if o.MetricsAddr != "" {
		reg = obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
	}

	cfg := cluster.Config{
		Sites:        o.Sites,
		Seed:         o.Seed,
		Dir:          o.Dir,
		TrainEvery:   simMinutes(o.TrainEvery),
		GossipEvery:  simMinutes(o.GossipEvery),
		SketchBudget: o.SketchBudget,
		Dropper:      o.Drop,
		Checkpoint:   true,
		Metrics:      reg,
		Log:          log,
	}
	// A coordinator checkpoint in the directory means this is a restart:
	// resume simulated time and every site pipeline from disk.
	if _, err := os.Stat(filepath.Join(o.Dir, "cluster-checkpoint.json")); err == nil {
		cfg.Restore = true
	}
	c, err := cluster.New(cfg)
	if err != nil && cfg.Restore {
		// A torn or partial previous run (killed before its first training
		// round checkpointed any site) can leave a coordinator checkpoint
		// that no longer restores; registries are durable either way.
		log.Warn("cluster restore failed, starting cold", "err", err)
		cfg.Restore = false
		c, err = cluster.New(cfg)
	}
	if err != nil {
		return err
	}
	defer c.Stop()
	c.Start(ctx)
	log.Info("cluster running", "sites", len(c.Sites()), "dir", o.Dir,
		"train-every-min", cfg.TrainEvery, "gossip-every-min", cfg.GossipEvery,
		"resume-minute", c.Minute(), "tick", o.Tick)

	var srvDone chan error
	if reg != nil {
		if srvDone, err = serveObs(ctx, log, o.MetricsAddr, reg, &health); err != nil {
			return err
		}
	}
	ready := func() bool {
		for _, s := range c.Sites() {
			if !s.Pipeline().Trained() {
				return false
			}
		}
		return true
	}
	// Restored champions serve immediately.
	health.SetReady(ready())

	ticker := time.NewTicker(o.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			if srvDone != nil {
				return <-srvDone
			}
			return nil
		case <-ticker.C:
			if err := c.Step(ctx); err != nil {
				if ctx.Err() != nil {
					continue // shutdown mid-settle; ctx.Done drains next
				}
				return err
			}
			if ctx.Err() != nil {
				continue // cancelled mid-minute: don't start a round that will abort
			}
			if cfg.TrainEvery > 0 && c.Minute()%cfg.TrainEvery == 0 {
				if err := c.TrainAll(ctx); err != nil {
					if ctx.Err() == nil { // shutdown aborts are not failures
						log.Error("cluster training failed, keeping last good models", "err", err)
					}
				} else {
					// Ready once every site serves a champion.
					health.SetReady(ready())
				}
			}
			if cfg.GossipEvery > 0 && c.Minute()%cfg.GossipEvery == 0 {
				rep, err := c.Gossip(ctx, cluster.GossipOptions{})
				if err != nil {
					if ctx.Err() == nil {
						log.Error("gossip round failed", "err", err)
					}
				} else {
					promoted := 0
					for i := range rep.Elections {
						if rep.Elections[i].Promoted {
							promoted++
						}
					}
					log.Info("gossip round complete", "round", rep.Round,
						"exports", len(rep.Exports), "elections", len(rep.Elections),
						"promoted", promoted)
				}
			}
			if err := c.SaveCheckpoint(ctx); err != nil && ctx.Err() == nil {
				log.Error("coordinator checkpoint failed", "err", err)
			}
		}
	}
}
