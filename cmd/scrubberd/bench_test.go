package main

import (
	"net/netip"
	"strings"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/bgp"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
	"github.com/ixp-scrubber/ixpscrubber/internal/packet"
	"github.com/ixp-scrubber/ixpscrubber/internal/sflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// benchDatagrams encodes a few minutes of synthetic member traffic as
// sFlow datagrams (16 samples each, like the e2e replay) and returns them
// together with a blackhole registry covering the generator's victims.
func benchDatagrams(tb testing.TB) ([][]byte, *bgp.Registry) {
	tb.Helper()
	p := synth.ProfileUS2()
	p.BenignFlowsPerMin = 400
	p.EpisodeRatePerMin = 0.8
	p.Seed = 0xBE
	g := synth.NewGenerator(p)
	registry := bgp.NewRegistry()
	var builder packet.Builder
	var dgs [][]byte
	var seq uint32
	var samples []sflow.FlowSample
	flush := func() {
		if len(samples) == 0 {
			return
		}
		d := &sflow.Datagram{
			AgentAddress: netip.MustParseAddr("192.0.2.10"),
			Sequence:     seq,
			Samples:      samples,
		}
		buf, err := sflow.Append(nil, d)
		if err != nil {
			tb.Fatal(err)
		}
		dgs = append(dgs, buf)
		samples = nil
	}
	for m := int64(0); m < 3; m++ {
		flows := g.GenerateMinute(m, nil)
		for _, ev := range g.Events() {
			if ev.Announce {
				registry.Announce(ev.Prefix, 0)
			}
		}
		for i := range flows {
			seq++
			s, err := synth.SampleFor(&flows[i], seq, &builder)
			if err != nil {
				tb.Fatal(err)
			}
			s.Header = append([]byte(nil), s.Header...)
			samples = append(samples, s)
			if len(samples) == 16 {
				flush()
			}
		}
		flush()
	}
	return dgs, registry
}

// benchIngest drives the daemon's hot path — sFlow decode, registry
// labeling, balancer binning — over pre-encoded datagrams, with or without
// the observability registry attached. The instrumented variant also pays
// for a scrape every 4096 datagrams (Prometheus polls every 15 s; this is
// orders of magnitude more often), so the measured delta is an upper bound
// on the real overhead.
func benchIngest(b *testing.B, metrics bool) {
	dgs, registry := benchDatagrams(b)
	bal := balance.ForRecords(0xBEEF, func(netflow.Record) {})
	var handled int
	collector := &sflow.Collector{
		Label: registry.Covered,
		Emit:  func(r *netflow.Record) { bal.Add(*r) },
		// Advance one synthetic minute every ~40 datagrams so the balancer
		// flushes bins at a realistic cadence instead of buffering the
		// whole run in one bin.
		Clock: func() int64 { return int64(60 + handled/40*60) },
	}
	var reg *obs.Registry
	var balMetrics *balance.Metrics
	if metrics {
		reg = obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
		collector.RegisterMetrics(reg)
		balMetrics = balance.RegisterMetrics(reg)
	}
	var scrape strings.Builder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		collector.HandleDatagram(dgs[i%len(dgs)])
		handled++
		if reg != nil && handled%4096 == 0 {
			balMetrics.Publish(&bal.Stats)
			scrape.Reset()
			if err := reg.WritePrometheus(&scrape); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if collector.Stats.Records.Load() == 0 {
		b.Fatal("ingest decoded no records")
	}
}

func BenchmarkIngestMetricsOff(b *testing.B) { benchIngest(b, false) }
func BenchmarkIngestMetricsOn(b *testing.B)  { benchIngest(b, true) }
