package main

import (
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/netip"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/bgp"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/packet"
	"github.com/ixp-scrubber/ixpscrubber/internal/sflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// reservePort grabs a loopback port of the given network and releases it,
// so the daemon can bind it moments later.
func reservePort(t *testing.T, network string) string {
	t.Helper()
	if network == "udp" {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := pc.LocalAddr().String()
		pc.Close()
		return addr
	}
	ln, err := net.Listen(network, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// replaySynthetic connects to the daemon's BGP and sFlow sockets and
// replays 21 synthetic minutes of member traffic: blackhole announcements
// as the generator schedules them, every flow as an sFlow sample.
func replaySynthetic(ctx context.Context, t *testing.T, sflowAddr, bgpAddr string) {
	t.Helper()
	var member *bgp.Conn
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		member, err = bgp.Dial(ctx, bgpAddr, bgp.Open{ASN: 64501, HoldTime: 90, RouterID: [4]byte{10, 0, 0, 1}})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon BGP port never came up: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer member.Close()
	exporter, err := sflow.NewExporter(sflowAddr, netip.MustParseAddr("192.0.2.10"))
	if err != nil {
		t.Fatal(err)
	}
	defer exporter.Close()

	// Replay synthetic traffic with wall-clock-ish timestamps: announce
	// blackholes as the generator decides, export every flow as a sample.
	p := synth.ProfileUS2()
	p.BenignFlowsPerMin = 250
	p.EpisodeRatePerMin = 0.6
	p.Seed = 0xD0
	g := synth.NewGenerator(p)
	nowMin := time.Now().Unix() / 60
	var builder packet.Builder
	var seq uint32
	nextHop := netip.MustParseAddr("192.0.2.1")

	for m := nowMin - 20; m <= nowMin; m++ {
		flows := g.GenerateMinute(m, nil)
		for _, ev := range g.Events() {
			// Announce only, never withdraw. The registry stamps windows
			// with wall-clock arrival times and the collector labels each
			// sample at parse time, but this loop compresses 21 synthetic
			// minutes into a couple of real seconds: a withdraw would close
			// its victim's window milliseconds after the announce and win
			// the race against the collector's UDP backlog, silently
			// unlabeling every flow on a slow or single-core runner.
			// Withdraw handling has its own coverage in internal/bgp.
			if !ev.Announce {
				continue
			}
			if err := member.AnnounceBlackhole(ev.Prefix, nextHop); err != nil {
				t.Fatal(err)
			}
		}
		var samples []sflow.FlowSample
		for i := range flows {
			seq++
			s, err := synth.SampleFor(&flows[i], seq, &builder)
			if err != nil {
				t.Fatal(err)
			}
			s.Header = append([]byte(nil), s.Header...)
			samples = append(samples, s)
			if len(samples) == 16 {
				if err := exporter.Send(samples); err != nil {
					t.Fatal(err)
				}
				samples = samples[:0]
			}
		}
		if len(samples) > 0 {
			if err := exporter.Send(samples); err != nil {
				t.Fatal(err)
			}
		}
		// Give the collector goroutine a slice of the CPU: a minute of
		// traffic is ~40 datagrams, and blasting all 21 minutes at once
		// overflows the UDP receive buffer before the collector ever runs
		// when GOMAXPROCS is small.
		time.Sleep(15 * time.Millisecond)
	}
}

// TestDaemonEndToEnd boots the daemon on loopback ports, replays synthetic
// member traffic over real sFlow and BGP sessions, waits for a training
// round, and checks that ACLs were generated for flagged targets.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live sockets")
	}
	dir := t.TempDir()
	aclOut := filepath.Join(dir, "acls.txt")
	rulesOut := filepath.Join(dir, "rules.json")
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	sflowAddr := reservePort(t, "udp")
	bgpAddr := reservePort(t, "tcp")

	done := make(chan error, 1)
	go func() {
		done <- run(ctx, log, options{
			SFlowAddr:  sflowAddr,
			BGPAddr:    bgpAddr,
			ASN:        64999,
			TrainEvery: 500 * time.Millisecond,
			Window:     time.Hour,
			ACLOut:     aclOut,
			RulesOut:   rulesOut,
		})
	}()

	replaySynthetic(ctx, t, sflowAddr, bgpAddr)

	// Wait for a training round to produce rules and ACLs.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if fi, err := os.Stat(rulesOut); err == nil && fi.Size() > 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never produced a rule export")
		}
		time.Sleep(200 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("daemon: %v", err)
	}

	aclText, err := os.ReadFile(aclOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(aclText), "IXP Scrubber generated ACL") {
		t.Errorf("ACL output malformed:\n%.200s", aclText)
	}
}

// httpGet fetches one observability endpoint, returning status and body.
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, ""
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// parseMetrics reads Prometheus text exposition into sample -> value,
// keyed by the full sample name including labels.
func parseMetrics(body string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out
}

// TestDaemonMetricsEndToEnd boots the daemon with the observability server
// enabled, replays synthetic traffic and blackhole announcements, and
// asserts that /readyz flips after the first training round and that
// /metrics exposes nonzero counters for every pipeline stage.
func TestDaemonMetricsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live sockets")
	}
	dir := t.TempDir()
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	sflowAddr := reservePort(t, "udp")
	bgpAddr := reservePort(t, "tcp")
	metricsAddr := reservePort(t, "tcp")
	base := "http://" + metricsAddr

	// Seed the mitigation fast path with one narrow static rule so the
	// dropper families and its per-rule series are live from startup;
	// training rounds later replace the program with compiled verdicts.
	dropRulesPath := filepath.Join(dir, "drop.rules")
	if err := os.WriteFile(dropRulesPath, []byte("drop proto=udp src-port=11211 id=memcached\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		done <- run(ctx, log, options{
			SFlowAddr:     sflowAddr,
			BGPAddr:       bgpAddr,
			ASN:           64999,
			TrainEvery:    500 * time.Millisecond,
			Window:        time.Hour,
			ACLOut:        filepath.Join(dir, "acls.txt"),
			MetricsAddr:   metricsAddr,
			RegistryDir:   filepath.Join(dir, "registry"),
			Shadow:        true,
			Sketch:        &features.SketchConfig{Budget: 0.05},
			DropRulesPath: dropRulesPath,
		})
	}()

	// The observability server must come up with the daemon, alive but
	// not ready: no model has been trained yet.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code, _ := httpGet(t, base+"/healthz"); code == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("observability server never came up")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if code, body := httpGet(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before first round = %d %q, want 503", code, body)
	}

	replaySynthetic(ctx, t, sflowAddr, bgpAddr)

	// Readiness flips once the first training round completes.
	deadline = time.Now().Add(60 * time.Second)
	for {
		if code, _ := httpGet(t, base+"/readyz"); code == 200 {
			break
		}
		if time.Now().After(deadline) {
			_, body := httpGet(t, base+"/metrics")
			t.Fatalf("/readyz never flipped to 200; metrics:\n%s", body)
		}
		time.Sleep(200 * time.Millisecond)
	}

	code, body := httpGet(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	m := parseMetrics(body)
	positive := []string{
		`ixps_collector_datagrams_total{proto="sflow"}`,
		`ixps_collector_samples_total{proto="sflow"}`,
		`ixps_collector_records_total{proto="sflow"}`,
		`ixps_collector_blackholed_total{proto="sflow"}`,
		"ixps_bgp_sessions_total",
		"ixps_bgp_blackhole_announcements_total",
		"ixps_bgp_blackholes_active",
		"ixps_balancer_records_seen_total",
		"ixps_balancer_records_kept_total",
		"ixps_balancer_reduction_ratio",
		"ixps_training_rounds_total",
		"ixps_training_window_records",
		"ixps_training_duration_seconds_count",
		"ixps_mine_duration_seconds_count",
		"ixps_fit_duration_seconds_count",
		"ixps_predict_latency_seconds_count",
		"ixps_predictions_total",
		"ixps_rules_accepted",
		"ixps_acl_writes_total",
		"ixps_model_active_seq",
		"ixps_model_promotions_total",
		"ixps_registry_publishes_total",
		// Sketch-mode aggregation gauges: the daemon runs with -sketch here,
		// so groups were resident at the last flush and the sketch structures
		// occupy real heap.
		"ixps_features_resident_groups",
		"ixps_features_sketch_bytes",
		// The mitigation fast path sits in front of the queue, so every
		// ingested record passed through it; compiling the seed rules took
		// real time.
		"ixps_dropper_evaluated_total",
		"ixps_dropper_compile_ns",
		"go_goroutines",
	}
	for _, name := range positive {
		if v, ok := m[name]; !ok {
			t.Errorf("metric %s missing from /metrics", name)
		} else if v <= 0 {
			t.Errorf("metric %s = %g, want > 0", name, v)
		}
	}
	// Lifecycle and drift gauges must be exposed; their values are
	// traffic-dependent (PSI gates on sample counts, disagreement needs a
	// standing challenger), so presence is the contract here.
	for _, name := range []string{
		"ixps_drift_feature_psi_mean",
		"ixps_drift_feature_psi_max",
		"ixps_drift_score_psi",
		"ixps_drift_retrain_recommended",
		"ixps_shadow_disagreement_ratio",
		"ixps_shadow_scored_total",
		"ixps_registry_publish_failures_total",
		"ixps_registry_gc_removed_total",
		// The error bound is 0 until a summary evicts, so presence is the
		// contract.
		"ixps_features_estimate_rel_error",
		// Dropper families whose values depend on the traffic draw: how
		// many records the seeded memcached rule (or a compiled verdict)
		// actually dropped, and how many rules the live program holds after
		// training rounds replaced the static seed.
		"ixps_dropper_dropped_total",
		"ixps_dropper_rules",
		`ixps_dropper_rule_drops_total{rule="memcached"}`,
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("lifecycle metric %s missing from /metrics", name)
		}
	}
	// The registry really versioned the served models on disk.
	if ents, err := os.ReadDir(filepath.Join(dir, "registry")); err != nil || len(ents) == 0 {
		t.Errorf("registry dir empty after training rounds (err=%v)", err)
	}
	// The balancer must keep a roughly class-balanced subset: its kept
	// stream is smaller than what it saw.
	if m["ixps_balancer_records_kept_total"] >= m["ixps_balancer_records_seen_total"] {
		t.Errorf("balancer kept %g of %g records — no reduction",
			m["ixps_balancer_records_kept_total"], m["ixps_balancer_records_seen_total"])
	}

	// pprof rides on the same mux.
	if code, _ := httpGet(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("daemon: %v", err)
	}
}
