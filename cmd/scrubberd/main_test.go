package main

import (
	"context"
	"log/slog"
	"net"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/bgp"
	"github.com/ixp-scrubber/ixpscrubber/internal/packet"
	"github.com/ixp-scrubber/ixpscrubber/internal/sflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// TestDaemonEndToEnd boots the daemon on loopback ports, replays synthetic
// member traffic over real sFlow and BGP sessions, waits for a training
// round, and checks that ACLs were generated for flagged targets.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live sockets")
	}
	dir := t.TempDir()
	aclOut := filepath.Join(dir, "acls.txt")
	rulesOut := filepath.Join(dir, "rules.json")
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Reserve loopback ports.
	sfl, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sflowAddr := sfl.LocalAddr().String()
	sfl.Close()
	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bgpAddr := bln.Addr().String()
	bln.Close()

	done := make(chan error, 1)
	go func() {
		done <- run(ctx, log, sflowAddr, bgpAddr, 64999, 500*time.Millisecond, time.Hour, aclOut, rulesOut)
	}()

	// Wait for the daemon's sockets.
	var member *bgp.Conn
	deadline := time.Now().Add(10 * time.Second)
	for {
		member, err = bgp.Dial(ctx, bgpAddr, bgp.Open{ASN: 64501, HoldTime: 90, RouterID: [4]byte{10, 0, 0, 1}})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon BGP port never came up: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer member.Close()
	exporter, err := sflow.NewExporter(sflowAddr, netip.MustParseAddr("192.0.2.10"))
	if err != nil {
		t.Fatal(err)
	}
	defer exporter.Close()

	// Replay synthetic traffic with wall-clock-ish timestamps: announce
	// blackholes as the generator decides, export every flow as a sample.
	p := synth.ProfileUS2()
	p.BenignFlowsPerMin = 250
	p.EpisodeRatePerMin = 0.6
	p.Seed = 0xD0
	g := synth.NewGenerator(p)
	nowMin := time.Now().Unix() / 60
	var builder packet.Builder
	var seq uint32
	nextHop := netip.MustParseAddr("192.0.2.1")

	for m := nowMin - 20; m <= nowMin; m++ {
		flows := g.GenerateMinute(m, nil)
		for _, ev := range g.Events() {
			// Announce only, never withdraw. The registry stamps windows
			// with wall-clock arrival times and the collector labels each
			// sample at parse time, but this loop compresses 21 synthetic
			// minutes into a couple of real seconds: a withdraw would close
			// its victim's window milliseconds after the announce and win
			// the race against the collector's UDP backlog, silently
			// unlabeling every flow on a slow or single-core runner.
			// Withdraw handling has its own coverage in internal/bgp.
			if !ev.Announce {
				continue
			}
			if err := member.AnnounceBlackhole(ev.Prefix, nextHop); err != nil {
				t.Fatal(err)
			}
		}
		var samples []sflow.FlowSample
		for i := range flows {
			seq++
			s, err := synth.SampleFor(&flows[i], seq, &builder)
			if err != nil {
				t.Fatal(err)
			}
			s.Header = append([]byte(nil), s.Header...)
			samples = append(samples, s)
			if len(samples) == 16 {
				if err := exporter.Send(samples); err != nil {
					t.Fatal(err)
				}
				samples = samples[:0]
			}
		}
		if len(samples) > 0 {
			if err := exporter.Send(samples); err != nil {
				t.Fatal(err)
			}
		}
		// Give the collector goroutine a slice of the CPU: a minute of
		// traffic is ~40 datagrams, and blasting all 21 minutes at once
		// overflows the UDP receive buffer before the collector ever runs
		// when GOMAXPROCS is small.
		time.Sleep(15 * time.Millisecond)
	}

	// Wait for a training round to produce rules and ACLs.
	deadline = time.Now().Add(60 * time.Second)
	for {
		if fi, err := os.Stat(rulesOut); err == nil && fi.Size() > 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never produced a rule export")
		}
		time.Sleep(200 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("daemon: %v", err)
	}

	aclText, err := os.ReadFile(aclOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(aclText), "IXP Scrubber generated ACL") {
		t.Errorf("ACL output malformed:\n%.200s", aclText)
	}
}
