// Command scrubberd runs the IXP Scrubber online: it listens for sFlow v5
// datagrams over UDP, accepts BGP sessions from member routers on a route
// server port (learning blackholes from their announcements), balances the
// labeled flow stream per minute, periodically retrains the two-step model
// on a sliding window, classifies per-target aggregates, and writes ACLs
// for flagged targets.
//
// Usage:
//
//	scrubberd -sflow :6343 -bgp :1179 -train-every 60m -window 24h -acl-out acls.txt
//
// With -metrics, the daemon serves its observability surface on one mux:
//
//	/metrics        Prometheus text exposition of every pipeline stage
//	/healthz        liveness (200 while the process runs)
//	/readyz         readiness (200 once the first model has trained)
//	/debug/pprof/   standard Go profiling endpoints
//
// Resilience: ingest runs through a bounded queue with an explicit drop
// policy (-queue-cap, -drop-policy), ACL and rule files are published
// atomically with retries, a failed training round keeps the last good
// model serving, and -checkpoint persists the pipeline state (balancer,
// window, model) across restarts.
//
// Model lifecycle: -registry-dir versions every trained model in an
// immutable on-disk registry (content-addressed bundles, atomic champion
// pointer, GC of old versions) and serves the registry champion on restart.
// -shadow holds each newly trained model as a challenger that is scored in
// shadow against the incumbent champion — only the champion's verdicts
// reach the ACL file — until it auto-promotes under the disagreement
// policy. -import-classifier installs a classifier-only bundle from another
// vantage point as the standing challenger; it is re-bound to the local WoE
// encoder at promotion time (geographic transfer, paper §6.4). Usually
// paired with -shadow so the import is evaluated before it serves.
//
// Memory: -sketch switches per-minute aggregation to the bounded-memory
// sketch path — resident per-target state is capped and heavy hitters stay
// exact within -sketch-budget — and reports its resident-group count, sketch
// heap bytes, and estimate error bound as gauges on /metrics.
//
// Mitigation: -drop turns the detector into a scrubber. After every
// training round the champion's ACL verdicts compile into a flat match
// program (port bitmaps, size range table, prefix tries) that every ingest
// batch passes before the queue; matching records are dropped inline, and
// recompile + hot swap is an atomic pointer store that never pauses
// ingest. -drop-rules FILE seeds the stage with operator-authored static
// rules at startup (one per line, e.g. "drop proto=udp src-port=123
// dst=198.51.100.7/32 id=ntp"); training rounds then replace them with
// compiled verdicts, and a checkpointed program takes precedence on
// restore. Counters surface as ixps_dropper_* on /metrics, including
// per-rule drop totals.
//
// Pipelines: -config FILE replaces the flag-built sflow→scrubber chain with
// a YAML segment pipeline (see examples/pipelines/): inputs (sflow, ipfix,
// netflow, replay, diskbuffer), filters (dropper, balance, sample) and
// outputs (scrubber, jsonl, csv, metrics, tee) compose freely, and the flag
// path assembles through the same builder and schema, so both are validated
// identically. -validate-config parses the file, prints the resolved
// segment graph, and exits without binding a socket — non-zero on any
// error, each carrying a file:line position. Pipelines whose inputs are
// finite (a pcap replay, a leftover diskbuffer spill) run one final
// training round after draining, then exit cleanly.
//
// Multi-IXP: -cluster runs the federated topology instead of the socketed
// single-site daemon: -sites scrubber sites in one process, each with its
// own synthetic vantage-point profile, pipeline, registry and ACL file
// under -cluster-dir/site-<name>/, with ingest partitioned by target IP.
// One simulated minute advances per -tick of wall clock; training rounds
// run on the -train-every cadence and a coordinator gossips classifier-only
// bundles between the sites every -gossip-interval, each site promoting an
// import only where it shadow-scores strictly better than the incumbent on
// local traffic. Cluster state persists under -cluster-dir and a restarted
// daemon resumes from it. /metrics serves the cluster-wide families
// (ixps_cluster_*, labeled per site) when -metrics is set.
//
// Without real traffic sources, pair it with the live-ixp example, which
// replays synthetic member traffic against both sockets.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/bgp"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
	"github.com/ixp-scrubber/ixpscrubber/internal/segment"
)

func main() {
	var (
		sflowAddr  = flag.String("sflow", ":6343", "UDP address for sFlow datagrams")
		bgpAddr    = flag.String("bgp", ":1179", "TCP address for BGP sessions")
		asn        = flag.Uint("asn", 64999, "route server ASN")
		trainEvery = flag.Duration("train-every", 10*time.Minute, "retraining interval")
		window     = flag.Duration("window", 24*time.Hour, "sliding training window")
		aclOut     = flag.String("acl-out", "", "file to write generated ACLs to (stdout if empty)")
		rulesOut   = flag.String("rules-out", "", "file to export the mined rule list to after each training round")
		metrics    = flag.String("metrics", "", "HTTP address serving /metrics, /healthz, /readyz and /debug/pprof (e.g. :9090); empty disables")
		checkpoint = flag.String("checkpoint", "", "file to persist pipeline state to after each round (and restore from on start); empty disables")
		queueCap   = flag.Int("queue-cap", 64, "ingest queue capacity in batches")
		dropPolicy = flag.String("drop-policy", "drop-newest", "full-queue policy: block, drop-newest or drop-oldest")
		seed       = flag.Uint64("seed", 0, "balancer sampling seed (0 derives one from the clock)")

		registryDir = flag.String("registry-dir", "", "directory for the versioned model registry (publish, promote, GC); empty disables")
		shadow      = flag.Bool("shadow", false, "hold newly trained models as shadow challengers instead of promoting immediately")
		importPath  = flag.String("import-classifier", "", "classifier-only bundle to import as the standing challenger at startup")

		sketchMode   = flag.Bool("sketch", false, "bounded-memory sketch aggregation: resident per-target state is capped and heavy hitters stay exact within -sketch-budget")
		sketchBudget = flag.Float64("sketch-budget", features.DefaultSketchBudget, "relative exactness budget for -sketch rankings and distinct counts")

		dropStage = flag.Bool("drop", false, "compiled mitigation fast path: champion verdicts compile into a flat match program that drops matching records before ingest")
		dropRules = flag.String("drop-rules", "", "file of static drop rules seeding the fast path at startup (implies -drop)")

		configPath  = flag.String("config", "", "YAML segment pipeline replacing the flag-built sflow→scrubber chain (see examples/pipelines/)")
		validateCfg = flag.Bool("validate-config", false, "parse -config, print the resolved segment graph, and exit without binding sockets (non-zero on error)")

		clusterMode    = flag.Bool("cluster", false, "run the multi-IXP federated cluster (simulated sites, no sockets) instead of the single-site daemon")
		sites          = flag.Int("sites", 3, "number of scrubber sites in -cluster mode (max 5 vantage-point profiles)")
		gossipInterval = flag.Duration("gossip-interval", 30*time.Minute, "simulated interval between coordinator gossip rounds in -cluster mode")
		clusterDir     = flag.String("cluster-dir", "scrubber-cluster", "working directory for -cluster mode: per-site registries, ACLs and checkpoints")
		tick           = flag.Duration("tick", time.Second, "wall-clock pacing of one simulated minute in -cluster mode")
	)
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	if *validateCfg {
		// Dry run: load, validate, render — no socket is ever bound.
		if *configPath == "" {
			fmt.Fprintln(os.Stderr, "-validate-config requires -config FILE")
			os.Exit(2)
		}
		cfg, err := loadPipelineConfig(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(cfg.Graph())
		return
	}

	policy, ok := netflow.ParseDropPolicy(*dropPolicy)
	if !ok {
		log.Error("bad -drop-policy", "value", *dropPolicy)
		os.Exit(2)
	}
	balSeed := *seed
	if balSeed == 0 {
		balSeed = uint64(time.Now().UnixNano())
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *clusterMode {
		co := clusterOptions{
			Sites:       *sites,
			Dir:         *clusterDir,
			Seed:        balSeed,
			TrainEvery:  *trainEvery,
			GossipEvery: *gossipInterval,
			Tick:        *tick,
			MetricsAddr: *metrics,
			Drop:        *dropStage,
		}
		if *sketchMode {
			co.SketchBudget = *sketchBudget
		}
		if err := runCluster(ctx, log, co); err != nil {
			log.Error("scrubberd cluster failed", "err", err)
			os.Exit(1)
		}
		return
	}
	opts := options{
		SFlowAddr:      *sflowAddr,
		BGPAddr:        *bgpAddr,
		ASN:            uint16(*asn),
		TrainEvery:     *trainEvery,
		Window:         *window,
		ACLOut:         *aclOut,
		RulesOut:       *rulesOut,
		MetricsAddr:    *metrics,
		CheckpointPath: *checkpoint,
		QueueCap:       *queueCap,
		DropPolicy:     policy,
		Seed:           balSeed,
		RegistryDir:    *registryDir,
		Shadow:         *shadow,
		ImportPath:     *importPath,
		Drop:           *dropStage || *dropRules != "",
		DropRulesPath:  *dropRules,
		ConfigPath:     *configPath,
	}
	if *sketchMode {
		opts.Sketch = &features.SketchConfig{Budget: *sketchBudget}
	}
	if err := run(ctx, log, opts); err != nil {
		log.Error("scrubberd failed", "err", err)
		os.Exit(1)
	}
}

// options configures one daemon instance.
type options struct {
	SFlowAddr      string
	BGPAddr        string
	ASN            uint16
	TrainEvery     time.Duration
	Window         time.Duration
	ACLOut         string
	RulesOut       string
	MetricsAddr    string // empty disables the observability server
	CheckpointPath string // empty disables checkpoint/restore
	QueueCap       int
	DropPolicy     netflow.DropPolicy
	Seed           uint64
	RegistryDir    string // empty disables the model registry
	Shadow         bool   // challenger shadow scoring before promotion
	ImportPath     string // classifier-only bundle to import at startup
	// Sketch enables bounded-memory sketch aggregation; nil means exact.
	Sketch *features.SketchConfig
	// Drop enables the compiled mitigation fast path in front of ingest;
	// DropRulesPath optionally seeds it with static operator rules.
	Drop          bool
	DropRulesPath string
	// ConfigPath, when set, loads the segment pipeline from a YAML file
	// instead of assembling the flag-built sflow→scrubber chain. Both paths
	// build through segment.New under the same schema.
	ConfigPath string
}

// loadPipelineConfig reads and validates a YAML pipeline file. Errors carry
// the file path and line.
func loadPipelineConfig(path string) (*segment.Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return segment.LoadConfig(path, data)
}

// flagConfig renders the classic flag set as the two-segment chain the
// default-scrubber example ships. Zero-valued sizing flags are omitted so
// the schema defaults (the same ones ixpsim applies) fill them.
func flagConfig(o options) *segment.Config {
	scrub := map[string]any{
		"drop-policy": o.DropPolicy.String(),
		"acl":         o.ACLOut,
		"rules-out":   o.RulesOut,
		"checkpoint":  o.CheckpointPath,
		"registry":    o.RegistryDir,
		"shadow":      o.Shadow,
		"import":      o.ImportPath,
		"drop":        o.Drop,
		"drop-rules":  o.DropRulesPath,
	}
	if o.Seed != 0 {
		scrub["seed"] = o.Seed
	}
	if o.Window != 0 {
		scrub["window"] = o.Window
	}
	if o.QueueCap != 0 {
		scrub["queue-cap"] = o.QueueCap
	}
	if o.Sketch != nil {
		scrub["sketch"] = true
		if o.Sketch.Budget != 0 {
			scrub["sketch-budget"] = o.Sketch.Budget
		}
	}
	return &segment.Config{Name: "<flags>", Pipeline: []segment.SegmentConfig{
		{Kind: "sflow", Params: map[string]any{"listen": o.SFlowAddr}},
		{Kind: "scrubber", Params: scrub},
	}}
}

// findScrubber returns the pipeline's scrubber segment config (main chain
// or a tee branch), or nil.
func findScrubber(chain []segment.SegmentConfig) *segment.SegmentConfig {
	for i := range chain {
		if chain[i].Kind == "scrubber" {
			return &chain[i]
		}
		for bi := range chain[i].Branches {
			if sc := findScrubber(chain[i].Branches[bi].Pipeline); sc != nil {
				return sc
			}
		}
	}
	return nil
}

func run(ctx context.Context, log *slog.Logger, o options) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Observability first, so every stage can register before traffic.
	var (
		reg    *obs.Registry
		health obs.Health
	)
	if o.MetricsAddr != "" {
		reg = obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
	}

	// BGP route server feeding the blackhole registry; its Covered labeler
	// is the Env every input segment classifies destinations against.
	ln, err := net.Listen("tcp", o.BGPAddr)
	if err != nil {
		return fmt.Errorf("bgp listen: %w", err)
	}
	registry := bgp.NewRegistry()
	rs := &bgp.RouteServer{ASN: o.ASN, RouterID: [4]byte{10, 0, 0, 1}, Registry: registry, Log: log}
	if reg != nil {
		rs.RegisterMetrics(reg)
	}
	rsDone := make(chan error, 1)
	go func() { rsDone <- rs.Serve(ctx, ln) }()
	log.Info("route server listening", "addr", ln.Addr())

	// The pipeline: from -config, or the flag set rendered as the same
	// two-segment chain — one builder, one schema, either way.
	cfg := flagConfig(o)
	if o.ConfigPath != "" {
		if cfg, err = loadPipelineConfig(o.ConfigPath); err != nil {
			return err
		}
	}
	p, err := segment.New(segment.Env{Log: log, Metrics: reg, Label: registry.Covered}, cfg)
	if err != nil {
		return err
	}
	if err := p.Start(ctx); err != nil {
		return err
	}
	defer p.Close()
	log.Info("pipeline running", "config", cfg.Name, "segments", len(cfg.Pipeline))

	// Training ticks stay with the daemon; the scrubber segment owns the
	// detection chain. A scrubber-less pipeline (pure archival) just flows.
	sp := p.Scrubber()
	aclToStdout := false
	if sc := findScrubber(cfg.Pipeline); sc != nil {
		aclToStdout = sc.Str("acl") == ""
	}
	if sp != nil && sp.Trained() {
		// A restored checkpoint or warm registry champion serves before the
		// first local round.
		health.SetReady(true)
	}

	// Observability server, once the pipeline stages are registered.
	var srvDone chan error
	if reg != nil {
		if srvDone, err = serveObs(ctx, log, o.MetricsAddr, reg, &health); err != nil {
			return err
		}
	}

	trainRound := func(now int64) {
		round, err := sp.TrainRound(ctx, now)
		if err != nil {
			log.Error("training round failed, keeping last good model", "err", err)
			return
		}
		if round.Skipped {
			return
		}
		if aclToStdout {
			fmt.Print(round.ACLText)
		}
		// The daemon is ready once it serves a trained model.
		health.SetReady(true)
	}

	ticker := time.NewTicker(o.TrainEvery)
	defer ticker.Stop()

	shutdown := func(err error) error {
		cancel()
		if e := <-rsDone; err == nil {
			err = e
		}
		if srvDone != nil {
			if e := <-srvDone; err == nil {
				err = e
			}
		}
		return err
	}

	for {
		select {
		case <-ctx.Done():
			return shutdown(nil)
		case <-p.Done():
			// Finite inputs (pcap replay, diskbuffer spill) drained: flush
			// the chain, run one final round past the last record, exit.
			err := p.Close()
			if sp != nil {
				trainRound(p.Now() + 60)
			}
			log.Info("finite pipeline drained, exiting")
			return shutdown(err)
		case now := <-ticker.C:
			if sp != nil {
				trainRound(now.Unix())
			}
		}
	}
}

// serveObs starts the observability HTTP server (metrics, health, pprof)
// on addr, shuts it down when ctx is cancelled, and returns the channel
// its terminal error arrives on.
func serveObs(ctx context.Context, log *slog.Logger, addr string, reg *obs.Registry, health *obs.Health) (chan error, error) {
	mln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listen: %w", err)
	}
	srv := &http.Server{Handler: obs.NewMux(reg, health)}
	srvDone := make(chan error, 1)
	go func() {
		if err := srv.Serve(mln); !errors.Is(err, http.ErrServerClosed) {
			srvDone <- err
			return
		}
		srvDone <- nil
	}()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}()
	log.Info("observability server listening", "addr", mln.Addr())
	return srvDone, nil
}
