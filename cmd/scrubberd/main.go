// Command scrubberd runs the IXP Scrubber online: it listens for sFlow v5
// datagrams over UDP, accepts BGP sessions from member routers on a route
// server port (learning blackholes from their announcements), balances the
// labeled flow stream per minute, periodically retrains the two-step model
// on a sliding window, classifies per-target aggregates, and writes ACLs
// for flagged targets.
//
// Usage:
//
//	scrubberd -sflow :6343 -bgp :1179 -train-every 60m -window 24h -acl-out acls.txt
//
// With -metrics, the daemon serves its observability surface on one mux:
//
//	/metrics        Prometheus text exposition of every pipeline stage
//	/healthz        liveness (200 while the process runs)
//	/readyz         readiness (200 once the first model has trained)
//	/debug/pprof/   standard Go profiling endpoints
//
// Without real traffic sources, pair it with the live-ixp example, which
// replays synthetic member traffic against both sockets.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/bgp"
	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
	"github.com/ixp-scrubber/ixpscrubber/internal/sflow"
)

func main() {
	var (
		sflowAddr  = flag.String("sflow", ":6343", "UDP address for sFlow datagrams")
		bgpAddr    = flag.String("bgp", ":1179", "TCP address for BGP sessions")
		asn        = flag.Uint("asn", 64999, "route server ASN")
		trainEvery = flag.Duration("train-every", 10*time.Minute, "retraining interval")
		window     = flag.Duration("window", 24*time.Hour, "sliding training window")
		aclOut     = flag.String("acl-out", "", "file to write generated ACLs to (stdout if empty)")
		rulesOut   = flag.String("rules-out", "", "file to export the mined rule list to after each training round")
		metrics    = flag.String("metrics", "", "HTTP address serving /metrics, /healthz, /readyz and /debug/pprof (e.g. :9090); empty disables")
	)
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	opts := options{
		SFlowAddr:   *sflowAddr,
		BGPAddr:     *bgpAddr,
		ASN:         uint16(*asn),
		TrainEvery:  *trainEvery,
		Window:      *window,
		ACLOut:      *aclOut,
		RulesOut:    *rulesOut,
		MetricsAddr: *metrics,
	}
	if err := run(ctx, log, opts); err != nil {
		log.Error("scrubberd failed", "err", err)
		os.Exit(1)
	}
}

// options configures one daemon instance.
type options struct {
	SFlowAddr   string
	BGPAddr     string
	ASN         uint16
	TrainEvery  time.Duration
	Window      time.Duration
	ACLOut      string
	RulesOut    string
	MetricsAddr string // empty disables the observability server
}

// slidingStore holds the balanced records of the training window.
type slidingStore struct {
	mu      sync.Mutex
	records []netflow.Record
	window  time.Duration
}

func (s *slidingStore) add(r netflow.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append(s.records, r)
}

// snapshot returns the records inside the window and prunes older ones.
func (s *slidingStore) snapshot(now time.Time) []netflow.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := now.Add(-s.window).Unix()
	keep := s.records[:0]
	for _, r := range s.records {
		if r.Timestamp >= cutoff {
			keep = append(keep, r)
		}
	}
	s.records = keep
	return append([]netflow.Record(nil), s.records...)
}

// trainMetrics instruments the daemon's training loop and ACL output; the
// zero value (no registry) disables everything.
type trainMetrics struct {
	rounds        *obs.Counter
	failures      *obs.Counter
	skipped       *obs.Counter
	duration      *obs.Histogram
	windowRecords *obs.Gauge
	flagged       *obs.Gauge
	aclWrites     *obs.Counter
	aclEntries    *obs.Gauge
}

func newTrainMetrics(r *obs.Registry) *trainMetrics {
	return &trainMetrics{
		rounds: r.Counter("ixps_training_rounds_total",
			"Training rounds completed successfully."),
		failures: r.Counter("ixps_training_failures_total",
			"Training rounds that returned an error."),
		skipped: r.Counter("ixps_training_skipped_total",
			"Training ticks skipped for lack of balanced records."),
		duration: r.Histogram("ixps_training_duration_seconds",
			"Wall time of one full training round (mine + fit + classify + ACLs).", nil),
		windowRecords: r.Gauge("ixps_training_window_records",
			"Balanced records inside the sliding training window."),
		flagged: r.Gauge("ixps_flagged_targets",
			"Targets flagged as DDoS victims by the last round."),
		aclWrites: r.Counter("ixps_acl_writes_total",
			"ACL files written (or printed) after training rounds."),
		aclEntries: r.Gauge("ixps_acl_entries",
			"ACL entries generated by the last round."),
	}
}

func run(ctx context.Context, log *slog.Logger, o options) error {
	// Observability first, so every stage can register before traffic.
	var (
		reg    *obs.Registry
		health obs.Health
		tm     *trainMetrics
	)
	if o.MetricsAddr != "" {
		reg = obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
		tm = newTrainMetrics(reg)
	}

	// BGP route server feeding the blackhole registry.
	ln, err := net.Listen("tcp", o.BGPAddr)
	if err != nil {
		return fmt.Errorf("bgp listen: %w", err)
	}
	registry := bgp.NewRegistry()
	rs := &bgp.RouteServer{ASN: o.ASN, RouterID: [4]byte{10, 0, 0, 1}, Registry: registry, Log: log}
	if reg != nil {
		rs.RegisterMetrics(reg)
	}
	rsDone := make(chan error, 1)
	go func() { rsDone <- rs.Serve(ctx, ln) }()
	log.Info("route server listening", "addr", ln.Addr())

	// sFlow collector feeding the online balancer.
	pc, err := net.ListenPacket("udp", o.SFlowAddr)
	if err != nil {
		return fmt.Errorf("sflow listen: %w", err)
	}
	store := &slidingStore{window: o.Window}
	bal := balance.ForRecords(uint64(time.Now().UnixNano()), store.add)
	var balMu sync.Mutex
	var balMetrics *balance.Metrics
	collector := &sflow.Collector{
		Label: registry.Covered,
		Log:   log,
		// Batched handoff: one balancer lock round-trip per batch (default
		// 256 records) instead of per record. The balancer copies records
		// into its bin buffer, so the collector may reuse the batch slice.
		EmitBatch: func(recs []netflow.Record) {
			balMu.Lock()
			bal.AddBatch(recs)
			balMu.Unlock()
		},
	}
	if reg != nil {
		collector.RegisterMetrics(reg)
		balMetrics = balance.RegisterMetrics(reg)
	}
	colDone := make(chan error, 1)
	go func() { colDone <- collector.Listen(ctx, pc) }()
	log.Info("sflow collector listening", "addr", pc.LocalAddr())

	// Observability server, once the pipeline stages are registered.
	var srvDone chan error
	if reg != nil {
		mln, err := net.Listen("tcp", o.MetricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listen: %w", err)
		}
		srv := &http.Server{Handler: obs.NewMux(reg, &health)}
		srvDone = make(chan error, 1)
		go func() {
			if err := srv.Serve(mln); !errors.Is(err, http.ErrServerClosed) {
				srvDone <- err
				return
			}
			srvDone <- nil
		}()
		go func() {
			<-ctx.Done()
			shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(shutCtx)
		}()
		log.Info("observability server listening", "addr", mln.Addr())
	}

	ticker := time.NewTicker(o.TrainEvery)
	defer ticker.Stop()
	scrubber := core.New(core.DefaultConfig())
	if reg != nil {
		scrubber.SetMetrics(core.RegisterMetrics(reg))
	}

	for {
		select {
		case <-ctx.Done():
			err1 := <-rsDone
			err2 := <-colDone
			var err3 error
			if srvDone != nil {
				err3 = <-srvDone
			}
			if err1 != nil {
				return err1
			}
			if err2 != nil {
				return err2
			}
			return err3
		case now := <-ticker.C:
			balMu.Lock()
			bal.Flush()
			balMetrics.Publish(&bal.Stats)
			balMu.Unlock()
			records := store.snapshot(now)
			if tm != nil {
				tm.windowRecords.Set(float64(len(records)))
			}
			if len(records) < 100 {
				if tm != nil {
					tm.skipped.Inc()
				}
				log.Info("not enough balanced records to train yet", "records", len(records))
				continue
			}
			start := time.Now()
			if err := trainAndClassify(log, scrubber, records, o.ACLOut, o.RulesOut, tm); err != nil {
				if tm != nil {
					tm.failures.Inc()
				}
				log.Error("training round failed", "err", err)
				continue
			}
			if tm != nil {
				tm.rounds.Inc()
				tm.duration.ObserveSince(start)
			}
			// The daemon is ready once it serves a trained model.
			health.SetReady(true)
		}
	}
}

func trainAndClassify(log *slog.Logger, s *core.Scrubber, records []netflow.Record, aclOut, rulesOut string, tm *trainMetrics) error {
	start := time.Now()
	rep, err := s.MineRules(records)
	if err != nil {
		return err
	}
	aggs := s.Aggregate(records, nil)
	if err := s.Fit(records, aggs); err != nil {
		return err
	}
	pred, err := s.Predict(aggs)
	if err != nil {
		return err
	}
	targetSet := map[netip.Addr]struct{}{}
	for i, a := range aggs {
		if pred[i] == 1 {
			targetSet[a.Target] = struct{}{}
		}
	}
	targets := make([]netip.Addr, 0, len(targetSet))
	for t := range targetSet {
		targets = append(targets, t)
	}
	entries := s.GenerateACLs(targets, acl.ActionDrop)
	text := acl.RenderText(entries)
	if aclOut == "" {
		fmt.Print(text)
	} else if err := os.WriteFile(aclOut, []byte(text), 0o644); err != nil {
		return fmt.Errorf("writing ACLs: %w", err)
	}
	if tm != nil {
		tm.aclWrites.Inc()
		tm.aclEntries.Set(float64(len(entries)))
		tm.flagged.Set(float64(len(targets)))
	}
	if rulesOut != "" {
		f, err := os.Create(rulesOut)
		if err != nil {
			return err
		}
		if err := s.Rules().Export(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	log.Info("training round complete",
		"records", len(records),
		"aggregates", len(aggs),
		"rules_mined", rep.RulesMinimized,
		"rules_accepted", len(s.Rules().Accepted()),
		"flagged_targets", len(targets),
		"took", time.Since(start).Round(time.Millisecond))
	return nil
}
