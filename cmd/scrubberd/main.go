// Command scrubberd runs the IXP Scrubber online: it listens for sFlow v5
// datagrams over UDP, accepts BGP sessions from member routers on a route
// server port (learning blackholes from their announcements), balances the
// labeled flow stream per minute, periodically retrains the two-step model
// on a sliding window, classifies per-target aggregates, and writes ACLs
// for flagged targets.
//
// Usage:
//
//	scrubberd -sflow :6343 -bgp :1179 -train-every 60m -window 24h -acl-out acls.txt
//
// With -metrics, the daemon serves its observability surface on one mux:
//
//	/metrics        Prometheus text exposition of every pipeline stage
//	/healthz        liveness (200 while the process runs)
//	/readyz         readiness (200 once the first model has trained)
//	/debug/pprof/   standard Go profiling endpoints
//
// Resilience: ingest runs through a bounded queue with an explicit drop
// policy (-queue-cap, -drop-policy), ACL and rule files are published
// atomically with retries, a failed training round keeps the last good
// model serving, and -checkpoint persists the pipeline state (balancer,
// window, model) across restarts.
//
// Model lifecycle: -registry-dir versions every trained model in an
// immutable on-disk registry (content-addressed bundles, atomic champion
// pointer, GC of old versions) and serves the registry champion on restart.
// -shadow holds each newly trained model as a challenger that is scored in
// shadow against the incumbent champion — only the champion's verdicts
// reach the ACL file — until it auto-promotes under the disagreement
// policy. -import-classifier installs a classifier-only bundle from another
// vantage point as the standing challenger; it is re-bound to the local WoE
// encoder at promotion time (geographic transfer, paper §6.4). Usually
// paired with -shadow so the import is evaluated before it serves.
//
// Memory: -sketch switches per-minute aggregation to the bounded-memory
// sketch path — resident per-target state is capped and heavy hitters stay
// exact within -sketch-budget — and reports its resident-group count, sketch
// heap bytes, and estimate error bound as gauges on /metrics.
//
// Mitigation: -drop turns the detector into a scrubber. After every
// training round the champion's ACL verdicts compile into a flat match
// program (port bitmaps, size range table, prefix tries) that every ingest
// batch passes before the queue; matching records are dropped inline, and
// recompile + hot swap is an atomic pointer store that never pauses
// ingest. -drop-rules FILE seeds the stage with operator-authored static
// rules at startup (one per line, e.g. "drop proto=udp src-port=123
// dst=198.51.100.7/32 id=ntp"); training rounds then replace them with
// compiled verdicts, and a checkpointed program takes precedence on
// restore. Counters surface as ixps_dropper_* on /metrics, including
// per-rule drop totals.
//
// Multi-IXP: -cluster runs the federated topology instead of the socketed
// single-site daemon: -sites scrubber sites in one process, each with its
// own synthetic vantage-point profile, pipeline, registry and ACL file
// under -cluster-dir/site-<name>/, with ingest partitioned by target IP.
// One simulated minute advances per -tick of wall clock; training rounds
// run on the -train-every cadence and a coordinator gossips classifier-only
// bundles between the sites every -gossip-interval, each site promoting an
// import only where it shadow-scores strictly better than the incumbent on
// local traffic. Cluster state persists under -cluster-dir and a restarted
// daemon resumes from it. /metrics serves the cluster-wide families
// (ixps_cluster_*, labeled per site) when -metrics is set.
//
// Without real traffic sources, pair it with the live-ixp example, which
// replays synthetic member traffic against both sockets.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/bgp"
	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/dropper"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/ixpsim"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
	modelreg "github.com/ixp-scrubber/ixpscrubber/internal/registry"
	"github.com/ixp-scrubber/ixpscrubber/internal/sflow"
)

func main() {
	var (
		sflowAddr  = flag.String("sflow", ":6343", "UDP address for sFlow datagrams")
		bgpAddr    = flag.String("bgp", ":1179", "TCP address for BGP sessions")
		asn        = flag.Uint("asn", 64999, "route server ASN")
		trainEvery = flag.Duration("train-every", 10*time.Minute, "retraining interval")
		window     = flag.Duration("window", 24*time.Hour, "sliding training window")
		aclOut     = flag.String("acl-out", "", "file to write generated ACLs to (stdout if empty)")
		rulesOut   = flag.String("rules-out", "", "file to export the mined rule list to after each training round")
		metrics    = flag.String("metrics", "", "HTTP address serving /metrics, /healthz, /readyz and /debug/pprof (e.g. :9090); empty disables")
		checkpoint = flag.String("checkpoint", "", "file to persist pipeline state to after each round (and restore from on start); empty disables")
		queueCap   = flag.Int("queue-cap", 64, "ingest queue capacity in batches")
		dropPolicy = flag.String("drop-policy", "drop-newest", "full-queue policy: block, drop-newest or drop-oldest")
		seed       = flag.Uint64("seed", 0, "balancer sampling seed (0 derives one from the clock)")

		registryDir = flag.String("registry-dir", "", "directory for the versioned model registry (publish, promote, GC); empty disables")
		shadow      = flag.Bool("shadow", false, "hold newly trained models as shadow challengers instead of promoting immediately")
		importPath  = flag.String("import-classifier", "", "classifier-only bundle to import as the standing challenger at startup")

		sketchMode   = flag.Bool("sketch", false, "bounded-memory sketch aggregation: resident per-target state is capped and heavy hitters stay exact within -sketch-budget")
		sketchBudget = flag.Float64("sketch-budget", features.DefaultSketchBudget, "relative exactness budget for -sketch rankings and distinct counts")

		dropStage = flag.Bool("drop", false, "compiled mitigation fast path: champion verdicts compile into a flat match program that drops matching records before ingest")
		dropRules = flag.String("drop-rules", "", "file of static drop rules seeding the fast path at startup (implies -drop)")

		clusterMode    = flag.Bool("cluster", false, "run the multi-IXP federated cluster (simulated sites, no sockets) instead of the single-site daemon")
		sites          = flag.Int("sites", 3, "number of scrubber sites in -cluster mode (max 5 vantage-point profiles)")
		gossipInterval = flag.Duration("gossip-interval", 30*time.Minute, "simulated interval between coordinator gossip rounds in -cluster mode")
		clusterDir     = flag.String("cluster-dir", "scrubber-cluster", "working directory for -cluster mode: per-site registries, ACLs and checkpoints")
		tick           = flag.Duration("tick", time.Second, "wall-clock pacing of one simulated minute in -cluster mode")
	)
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	policy, ok := netflow.ParseDropPolicy(*dropPolicy)
	if !ok {
		log.Error("bad -drop-policy", "value", *dropPolicy)
		os.Exit(2)
	}
	balSeed := *seed
	if balSeed == 0 {
		balSeed = uint64(time.Now().UnixNano())
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *clusterMode {
		co := clusterOptions{
			Sites:       *sites,
			Dir:         *clusterDir,
			Seed:        balSeed,
			TrainEvery:  *trainEvery,
			GossipEvery: *gossipInterval,
			Tick:        *tick,
			MetricsAddr: *metrics,
			Drop:        *dropStage,
		}
		if *sketchMode {
			co.SketchBudget = *sketchBudget
		}
		if err := runCluster(ctx, log, co); err != nil {
			log.Error("scrubberd cluster failed", "err", err)
			os.Exit(1)
		}
		return
	}
	opts := options{
		SFlowAddr:      *sflowAddr,
		BGPAddr:        *bgpAddr,
		ASN:            uint16(*asn),
		TrainEvery:     *trainEvery,
		Window:         *window,
		ACLOut:         *aclOut,
		RulesOut:       *rulesOut,
		MetricsAddr:    *metrics,
		CheckpointPath: *checkpoint,
		QueueCap:       *queueCap,
		DropPolicy:     policy,
		Seed:           balSeed,
		RegistryDir:    *registryDir,
		Shadow:         *shadow,
		ImportPath:     *importPath,
		Drop:           *dropStage || *dropRules != "",
		DropRulesPath:  *dropRules,
	}
	if *sketchMode {
		opts.Sketch = &features.SketchConfig{Budget: *sketchBudget}
	}
	if err := run(ctx, log, opts); err != nil {
		log.Error("scrubberd failed", "err", err)
		os.Exit(1)
	}
}

// options configures one daemon instance.
type options struct {
	SFlowAddr      string
	BGPAddr        string
	ASN            uint16
	TrainEvery     time.Duration
	Window         time.Duration
	ACLOut         string
	RulesOut       string
	MetricsAddr    string // empty disables the observability server
	CheckpointPath string // empty disables checkpoint/restore
	QueueCap       int
	DropPolicy     netflow.DropPolicy
	Seed           uint64
	RegistryDir    string // empty disables the model registry
	Shadow         bool   // challenger shadow scoring before promotion
	ImportPath     string // classifier-only bundle to import at startup
	// Sketch enables bounded-memory sketch aggregation; nil means exact.
	Sketch *features.SketchConfig
	// Drop enables the compiled mitigation fast path in front of ingest;
	// DropRulesPath optionally seeds it with static operator rules.
	Drop          bool
	DropRulesPath string
}

func run(ctx context.Context, log *slog.Logger, o options) error {
	// Observability first, so every stage can register before traffic.
	var (
		reg    *obs.Registry
		health obs.Health
	)
	if o.MetricsAddr != "" {
		reg = obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
	}

	// BGP route server feeding the blackhole registry.
	ln, err := net.Listen("tcp", o.BGPAddr)
	if err != nil {
		return fmt.Errorf("bgp listen: %w", err)
	}
	registry := bgp.NewRegistry()
	rs := &bgp.RouteServer{ASN: o.ASN, RouterID: [4]byte{10, 0, 0, 1}, Registry: registry, Log: log}
	if reg != nil {
		rs.RegisterMetrics(reg)
	}
	rsDone := make(chan error, 1)
	go func() { rsDone <- rs.Serve(ctx, ln) }()
	log.Info("route server listening", "addr", ln.Addr())

	// Versioned model registry: every trained model publishes before it
	// serves, and the on-disk champion survives restarts.
	var models *modelreg.Registry
	if o.RegistryDir != "" {
		models, err = modelreg.Open(o.RegistryDir, modelreg.Options{Log: log})
		if err != nil {
			return fmt.Errorf("model registry: %w", err)
		}
		log.Info("model registry open", "dir", o.RegistryDir)
	}

	// The processing chain behind the sockets: bounded queue, balancer,
	// sliding window, model, atomic ACL/checkpoint writes.
	var coreCfg *core.Config
	if o.Sketch != nil {
		c := core.DefaultConfig()
		c.Sketch = o.Sketch
		coreCfg = &c
	}
	pipe := ixpsim.NewPipeline(ixpsim.PipelineConfig{
		Seed:           o.Seed,
		Window:         o.Window,
		QueueCap:       o.QueueCap,
		DropPolicy:     o.DropPolicy,
		ACLPath:        o.ACLOut,
		RulesPath:      o.RulesOut,
		CheckpointPath: o.CheckpointPath,
		Core:           coreCfg,
		Metrics:        reg,
		Log:            log,
		Registry:       models,
		Shadow:         o.Shadow,
		Drop:           o.Drop || o.DropRulesPath != "",
	})
	if o.DropRulesPath != "" {
		text, err := os.ReadFile(o.DropRulesPath)
		if err != nil {
			return fmt.Errorf("drop-rules: %w", err)
		}
		rules, err := dropper.ParseRules(string(text))
		if err != nil {
			return fmt.Errorf("drop-rules %s: %w", o.DropRulesPath, err)
		}
		// Static rules are the startup baseline; a checkpointed program
		// (fresher verdicts) restored below takes precedence.
		pipe.Dropper().Swap(dropper.Compile(rules))
		log.Info("static drop rules compiled", "path", o.DropRulesPath, "rules", len(rules))
	}
	if restored, err := pipe.RestoreCheckpoint(); err != nil {
		log.Warn("checkpoint restore failed, starting cold", "err", err)
	} else if restored {
		health.SetReady(pipe.Trained())
	}
	if pipe.Trained() {
		// A warm registry champion serves before the first local round.
		health.SetReady(true)
	}
	if o.ImportPath != "" {
		bundle, err := os.ReadFile(o.ImportPath)
		if err != nil {
			return fmt.Errorf("import-classifier: %w", err)
		}
		if err := pipe.ImportClassifier(ctx, bundle); err != nil {
			return fmt.Errorf("import-classifier: %w", err)
		}
		log.Info("classifier-only bundle imported as challenger", "path", o.ImportPath)
	}
	pipe.Start(ctx)
	defer pipe.Stop()

	// sFlow collector feeding the pipeline's ingest queue.
	pc, err := net.ListenPacket("udp", o.SFlowAddr)
	if err != nil {
		return fmt.Errorf("sflow listen: %w", err)
	}
	collector := &sflow.Collector{
		Label:     registry.Covered,
		Log:       log,
		EmitBatch: pipe.EmitBatch,
	}
	if reg != nil {
		collector.RegisterMetrics(reg)
	}
	colDone := make(chan error, 1)
	go func() { colDone <- collector.Listen(ctx, pc) }()
	log.Info("sflow collector listening", "addr", pc.LocalAddr())

	// Observability server, once the pipeline stages are registered.
	var srvDone chan error
	if reg != nil {
		if srvDone, err = serveObs(ctx, log, o.MetricsAddr, reg, &health); err != nil {
			return err
		}
	}

	ticker := time.NewTicker(o.TrainEvery)
	defer ticker.Stop()

	for {
		select {
		case <-ctx.Done():
			err1 := <-rsDone
			err2 := <-colDone
			var err3 error
			if srvDone != nil {
				err3 = <-srvDone
			}
			if err1 != nil {
				return err1
			}
			if err2 != nil {
				return err2
			}
			return err3
		case now := <-ticker.C:
			round, err := pipe.TrainRound(ctx, now.Unix())
			if err != nil {
				log.Error("training round failed, keeping last good model", "err", err)
				continue
			}
			if round.Skipped {
				continue
			}
			if o.ACLOut == "" {
				fmt.Print(round.ACLText)
			}
			// The daemon is ready once it serves a trained model.
			health.SetReady(true)
		}
	}
}

// serveObs starts the observability HTTP server (metrics, health, pprof)
// on addr, shuts it down when ctx is cancelled, and returns the channel
// its terminal error arrives on.
func serveObs(ctx context.Context, log *slog.Logger, addr string, reg *obs.Registry, health *obs.Health) (chan error, error) {
	mln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listen: %w", err)
	}
	srv := &http.Server{Handler: obs.NewMux(reg, health)}
	srvDone := make(chan error, 1)
	go func() {
		if err := srv.Serve(mln); !errors.Is(err, http.ErrServerClosed) {
			srvDone <- err
			return
		}
		srvDone <- nil
	}()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}()
	log.Info("observability server listening", "addr", mln.Addr())
	return srvDone, nil
}
