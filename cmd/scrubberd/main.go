// Command scrubberd runs the IXP Scrubber online: it listens for sFlow v5
// datagrams over UDP, accepts BGP sessions from member routers on a route
// server port (learning blackholes from their announcements), balances the
// labeled flow stream per minute, periodically retrains the two-step model
// on a sliding window, classifies per-target aggregates, and writes ACLs
// for flagged targets.
//
// Usage:
//
//	scrubberd -sflow :6343 -bgp :1179 -train-every 60m -window 24h -acl-out acls.txt
//
// Without real traffic sources, pair it with the live-ixp example, which
// replays synthetic member traffic against both sockets.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/bgp"
	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/sflow"
)

func main() {
	var (
		sflowAddr  = flag.String("sflow", ":6343", "UDP address for sFlow datagrams")
		bgpAddr    = flag.String("bgp", ":1179", "TCP address for BGP sessions")
		asn        = flag.Uint("asn", 64999, "route server ASN")
		trainEvery = flag.Duration("train-every", 10*time.Minute, "retraining interval")
		window     = flag.Duration("window", 24*time.Hour, "sliding training window")
		aclOut     = flag.String("acl-out", "", "file to write generated ACLs to (stdout if empty)")
		rulesOut   = flag.String("rules-out", "", "file to export the mined rule list to after each training round")
	)
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, log, *sflowAddr, *bgpAddr, uint16(*asn), *trainEvery, *window, *aclOut, *rulesOut); err != nil {
		log.Error("scrubberd failed", "err", err)
		os.Exit(1)
	}
}

// slidingStore holds the balanced records of the training window.
type slidingStore struct {
	mu      sync.Mutex
	records []netflow.Record
	window  time.Duration
}

func (s *slidingStore) add(r netflow.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append(s.records, r)
}

// snapshot returns the records inside the window and prunes older ones.
func (s *slidingStore) snapshot(now time.Time) []netflow.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := now.Add(-s.window).Unix()
	keep := s.records[:0]
	for _, r := range s.records {
		if r.Timestamp >= cutoff {
			keep = append(keep, r)
		}
	}
	s.records = keep
	return append([]netflow.Record(nil), s.records...)
}

func run(ctx context.Context, log *slog.Logger, sflowAddr, bgpAddr string, asn uint16, trainEvery, window time.Duration, aclOut, rulesOut string) error {
	// BGP route server feeding the blackhole registry.
	ln, err := net.Listen("tcp", bgpAddr)
	if err != nil {
		return fmt.Errorf("bgp listen: %w", err)
	}
	registry := bgp.NewRegistry()
	rs := &bgp.RouteServer{ASN: asn, RouterID: [4]byte{10, 0, 0, 1}, Registry: registry, Log: log}
	rsDone := make(chan error, 1)
	go func() { rsDone <- rs.Serve(ctx, ln) }()
	log.Info("route server listening", "addr", ln.Addr())

	// sFlow collector feeding the online balancer.
	pc, err := net.ListenPacket("udp", sflowAddr)
	if err != nil {
		return fmt.Errorf("sflow listen: %w", err)
	}
	store := &slidingStore{window: window}
	bal := balance.ForRecords(uint64(time.Now().UnixNano()), store.add)
	var balMu sync.Mutex
	collector := &sflow.Collector{
		Label: registry.Covered,
		Log:   log,
		Emit: func(r *netflow.Record) {
			balMu.Lock()
			bal.Add(*r)
			balMu.Unlock()
		},
	}
	colDone := make(chan error, 1)
	go func() { colDone <- collector.Listen(ctx, pc) }()
	log.Info("sflow collector listening", "addr", pc.LocalAddr())

	ticker := time.NewTicker(trainEvery)
	defer ticker.Stop()
	scrubber := core.New(core.DefaultConfig())

	for {
		select {
		case <-ctx.Done():
			err1 := <-rsDone
			err2 := <-colDone
			if err1 != nil {
				return err1
			}
			return err2
		case now := <-ticker.C:
			balMu.Lock()
			bal.Flush()
			balMu.Unlock()
			records := store.snapshot(now)
			if len(records) < 100 {
				log.Info("not enough balanced records to train yet", "records", len(records))
				continue
			}
			if err := trainAndClassify(log, scrubber, records, aclOut, rulesOut); err != nil {
				log.Error("training round failed", "err", err)
			}
		}
	}
}

func trainAndClassify(log *slog.Logger, s *core.Scrubber, records []netflow.Record, aclOut, rulesOut string) error {
	start := time.Now()
	rep, err := s.MineRules(records)
	if err != nil {
		return err
	}
	aggs := s.Aggregate(records, nil)
	if err := s.Fit(records, aggs); err != nil {
		return err
	}
	pred, err := s.Predict(aggs)
	if err != nil {
		return err
	}
	targetSet := map[netip.Addr]struct{}{}
	for i, a := range aggs {
		if pred[i] == 1 {
			targetSet[a.Target] = struct{}{}
		}
	}
	targets := make([]netip.Addr, 0, len(targetSet))
	for t := range targetSet {
		targets = append(targets, t)
	}
	entries := s.GenerateACLs(targets, acl.ActionDrop)
	text := acl.RenderText(entries)
	if aclOut == "" {
		fmt.Print(text)
	} else if err := os.WriteFile(aclOut, []byte(text), 0o644); err != nil {
		return fmt.Errorf("writing ACLs: %w", err)
	}
	if rulesOut != "" {
		f, err := os.Create(rulesOut)
		if err != nil {
			return err
		}
		if err := s.Rules().Export(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	log.Info("training round complete",
		"records", len(records),
		"aggregates", len(aggs),
		"rules_mined", rep.RulesMinimized,
		"rules_accepted", len(s.Rules().Accepted()),
		"flagged_targets", len(targets),
		"took", time.Since(start).Round(time.Millisecond))
	return nil
}
