package main

import (
	"context"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s never happened within %v", what, d)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDaemonClusterMode boots -cluster mode on a fast tick, waits for every
// site to train and for a gossip round, checks the cluster observability
// surface, then restarts from the same directory and verifies the daemon
// resumes warm (ready from the restored champions, simulated time intact).
func TestDaemonClusterMode(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulated cluster run")
	}
	dir := t.TempDir()
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	metricsAddr := reservePort(t, "tcp")
	base := "http://" + metricsAddr

	opts := clusterOptions{
		Sites:       2,
		Dir:         dir,
		Seed:        1,
		TrainEvery:  5 * time.Minute,  // simulated: every 5th minute
		GossipEvery: 10 * time.Minute, // simulated: every 10th minute
		Tick:        5 * time.Millisecond,
		MetricsAddr: metricsAddr,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	done := make(chan error, 1)
	go func() { done <- runCluster(ctx, log, opts) }()

	waitFor(t, "observability server", 10*time.Second, func() bool {
		code, _ := httpGet(t, base+"/healthz")
		return code == 200
	})
	waitFor(t, "first cluster training round", 60*time.Second, func() bool {
		code, _ := httpGet(t, base+"/readyz")
		return code == 200
	})
	waitFor(t, "first gossip round", 60*time.Second, func() bool {
		_, body := httpGet(t, base+"/metrics")
		return parseMetrics(body)["ixps_cluster_gossip_rounds_total"] >= 1
	})

	_, body := httpGet(t, base+"/metrics")
	m := parseMetrics(body)
	if got := m["ixps_cluster_sites"]; got != 2 {
		t.Errorf("ixps_cluster_sites = %g, want 2", got)
	}
	for _, name := range []string{
		`ixps_cluster_site_ingested_records{site="IXP-CE1"}`,
		`ixps_cluster_site_routed_records{site="IXP-US1"}`,
		`ixps_cluster_site_champion_seq{site="IXP-CE1"}`,
		"ixps_cluster_reduction_ratio",
	} {
		if v, ok := m[name]; !ok {
			t.Errorf("metric %s missing from /metrics", name)
		} else if v <= 0 {
			t.Errorf("metric %s = %g, want > 0", name, v)
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("cluster daemon: %v", err)
	}

	// The run left durable state behind: per-site ACLs and registries plus
	// the coordinator checkpoint the restart below resumes from.
	if _, err := os.Stat(filepath.Join(dir, "cluster-checkpoint.json")); err != nil {
		t.Fatalf("coordinator checkpoint missing: %v", err)
	}
	acl, err := os.ReadFile(filepath.Join(dir, "site-IXP-CE1", "acl.txt"))
	if err != nil {
		t.Fatalf("site ACL missing: %v", err)
	}
	if !strings.Contains(string(acl), "IXP Scrubber generated ACL") {
		t.Errorf("site ACL malformed:\n%.200s", acl)
	}

	// Restart: restored champions must serve before any new training round
	// (readyz flips as soon as the observability server is up).
	metricsAddr = reservePort(t, "tcp")
	base = "http://" + metricsAddr
	opts.MetricsAddr = metricsAddr
	opts.Tick = 50 * time.Millisecond // slow ticks: readiness must not wait on them
	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	done2 := make(chan error, 1)
	go func() { done2 <- runCluster(ctx2, log, opts) }()
	waitFor(t, "restarted observability server", 20*time.Second, func() bool {
		code, _ := httpGet(t, base+"/healthz")
		return code == 200
	})
	if code, body := httpGet(t, base+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after warm restart = %d %q, want 200", code, body)
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("restarted cluster daemon: %v", err)
	}
}
