// Package bench provides one testing.B benchmark per reproduced table and
// figure (the deliverable (d) harness): each bench regenerates its artifact
// at a reduced scale and reports the wall time of the full regeneration.
// Run all with:
//
//	go test -bench=. -benchmem
//
// plus ablation benches for the design choices called out in DESIGN.md §5.
package bench

import (
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/experiments"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml/xgb"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
	"github.com/ixp-scrubber/ixpscrubber/internal/woe"
)

// benchCfg shrinks experiment windows so a full -bench=. run stays in
// minutes. The artifact shapes survive scaling (see EXPERIMENTS.md).
func benchCfg() experiments.Config { return experiments.Config{Scale: 0.12, Seed: 2} }

func benchExperiment(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 && len(res.Series) == 0 {
			b.Fatalf("%s produced no output", id)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkTable2(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkFig3a(b *testing.B)   { benchExperiment(b, "fig3a") }
func BenchmarkFig3c(b *testing.B)   { benchExperiment(b, "fig3c") }
func BenchmarkFig4a(b *testing.B)   { benchExperiment(b, "fig4a") }
func BenchmarkFig4b(b *testing.B)   { benchExperiment(b, "fig4b") }
func BenchmarkRuleCount(b *testing.B) { benchExperiment(b, "rulecount") }
func BenchmarkFig15(b *testing.B)   { benchExperiment(b, "fig15") }
func BenchmarkOperator(b *testing.B) { benchExperiment(b, "operator") }
func BenchmarkTable3(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)  { benchExperiment(b, "table5") }
func BenchmarkFig10(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig11a(b *testing.B)  { benchExperiment(b, "fig11a") }
func BenchmarkFig11b(b *testing.B)  { benchExperiment(b, "fig11b") }
func BenchmarkFig12(b *testing.B)   { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)   { benchExperiment(b, "fig13") }
func BenchmarkFig14a(b *testing.B)  { benchExperiment(b, "fig14a") }
func BenchmarkFig14b(b *testing.B)  { benchExperiment(b, "fig14b") }
func BenchmarkFig16a(b *testing.B)  { benchExperiment(b, "fig16a") }
func BenchmarkFig16b(b *testing.B)  { benchExperiment(b, "fig16b") }

// BenchmarkHarnessWorkers measures the experiments harness fan-out at
// explicit pool sizes: one RunMany over a bundle of independent artifacts
// per iteration, with the shared corpus/bundle caches dropped first so
// every iteration pays full regeneration cost. Compare the workers=1
// sub-benchmark against the others to read the end-to-end speedup; the
// rendered artifacts are identical at every pool size.
func BenchmarkHarnessWorkers(b *testing.B) {
	ids := []string{"rulecount", "fig3c", "fig4a", "table3"}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4", 8: "workers=8"}[workers], func(b *testing.B) {
			cfg := benchCfg()
			cfg.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				experiments.ResetCaches()
				n := 0
				if err := experiments.RunMany(cfg, ids, func(*experiments.Result) { n++ }); err != nil {
					b.Fatal(err)
				}
				if n != len(ids) {
					b.Fatalf("visited %d of %d artifacts", n, len(ids))
				}
			}
		})
	}
}

// Ablation benches (DESIGN.md §5): they measure quality under a design
// change and report it as a custom metric alongside cost.

// benchData builds a small train/test aggregate split shared by ablations.
func benchData(b *testing.B) (trainRecords []netflow.Record, trainAggs, testAggs []*features.Aggregate) {
	b.Helper()
	p := synth.ProfileUS1()
	p.Seed = 0xBE
	g := synth.NewGenerator(p)
	flows := g.Generate(0, 420)
	bal, _ := balance.Flows(9, flows)
	records := synth.Records(bal)
	vectors := make([]string, len(bal))
	for i := range bal {
		vectors[i] = bal[i].Vector
	}
	cut := len(records) * 2 / 3
	for cut < len(records) && records[cut].Minute() == records[cut-1].Minute() {
		cut++
	}
	s := core.New(core.DefaultConfig())
	if _, err := s.MineRules(records[:cut]); err != nil {
		b.Fatal(err)
	}
	return records[:cut], s.Aggregate(records[:cut], vectors[:cut]), s.Aggregate(records[cut:], vectors[cut:])
}

// BenchmarkAblationEncoding compares WoE encoding against identity (raw
// key) encoding of the categorical slots — the paper's implicit ablation:
// WoE is what makes categoricals learnable and transferable.
func BenchmarkAblationEncoding(b *testing.B) {
	trainRecords, trainAggs, testAggs := benchData(b)
	encode := func(enc *woe.Encoder, aggs []*features.Aggregate, identity bool) ([][]float64, []int) {
		x := make([][]float64, len(aggs))
		y := make([]int, len(aggs))
		for i, a := range aggs {
			row := features.Encode(enc, a, nil)
			if identity {
				// Replace WoE values by the raw categorical keys.
				k := 0
				for c := 0; c < features.NumCats; c++ {
					for m := 0; m < features.NumMets; m++ {
						for r := 0; r < features.R; r++ {
							if a.Present[c][m][r] {
								row[k] = float64(a.Keys[c][m][r] % (1 << 31))
							}
							k += 2
						}
					}
				}
			}
			x[i] = row
			if a.Label {
				y[i] = 1
			}
		}
		return x, y
	}
	for _, mode := range []struct {
		name     string
		identity bool
	}{{"woe", false}, {"identity", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var fb float64
			for i := 0; i < b.N; i++ {
				enc := woe.NewEncoder()
				enc.MinCount = 4
				for j := range trainRecords {
					features.ObserveRecord(enc, &trainRecords[j])
				}
				enc.Fit()
				xtr, ytr := encode(enc, trainAggs, mode.identity)
				xte, yte := encode(enc, testAggs, mode.identity)
				pl := &ml.Pipeline{
					Stages: []ml.Transformer{&ml.VarianceThreshold{Min: 1e-12}, &ml.Imputer{Value: -1}},
					Model:  xgb.New(xgb.Options{Estimators: 24, MaxDepth: 6, Bins: 64}),
				}
				if err := pl.Fit(xtr, ytr); err != nil {
					b.Fatal(err)
				}
				fb = ml.Confuse(yte, pl.Predict(xte)).FBeta(0.5)
			}
			b.ReportMetric(fb, "Fβ")
		})
	}
}

// BenchmarkAblationXGBSplit compares histogram bin counts (the split
// finding fidelity/cost tradeoff).
func BenchmarkAblationXGBSplit(b *testing.B) {
	trainRecords, trainAggs, testAggs := benchData(b)
	enc := woe.NewEncoder()
	enc.MinCount = 4
	for j := range trainRecords {
		features.ObserveRecord(enc, &trainRecords[j])
	}
	enc.Fit()
	mk := func(aggs []*features.Aggregate) ([][]float64, []int) {
		x := make([][]float64, len(aggs))
		y := make([]int, len(aggs))
		for i, a := range aggs {
			x[i] = features.Encode(enc, a, nil)
			if a.Label {
				y[i] = 1
			}
		}
		return x, y
	}
	xtr, ytr := mk(trainAggs)
	xte, yte := mk(testAggs)
	for _, bins := range []int{8, 64, 254} {
		b.Run(map[int]string{8: "bins8", 64: "bins64", 254: "bins254"}[bins], func(b *testing.B) {
			var fb float64
			for i := 0; i < b.N; i++ {
				pl := &ml.Pipeline{
					Stages: []ml.Transformer{&ml.VarianceThreshold{Min: 1e-12}, &ml.Imputer{Value: -1}},
					Model:  xgb.New(xgb.Options{Estimators: 24, MaxDepth: 6, Bins: bins}),
				}
				if err := pl.Fit(xtr, ytr); err != nil {
					b.Fatal(err)
				}
				fb = ml.Confuse(yte, pl.Predict(xte)).FBeta(0.5)
			}
			b.ReportMetric(fb, "Fβ")
		})
	}
}

// BenchmarkAblationBalance compares training on balanced vs raw-imbalanced
// data, the motivation for §3.
func BenchmarkAblationBalance(b *testing.B) {
	p := synth.ProfileUS1().RealisticImbalance()
	p.Seed = 0xBA
	g := synth.NewGenerator(p)
	flows := g.Generate(0, 600)
	cut := len(flows) * 2 / 3
	for cut < len(flows) && flows[cut].Minute() == flows[cut-1].Minute() {
		cut++
	}
	test := flows[cut:]
	balTrain, _ := balance.Flows(3, flows[:cut])
	for _, mode := range []struct {
		name  string
		train []synth.Flow
	}{{"balanced", balTrain}, {"unbalanced", flows[:cut]}} {
		b.Run(mode.name, func(b *testing.B) {
			var fb float64
			for i := 0; i < b.N; i++ {
				s := core.New(core.DefaultConfig())
				vec := make([]string, len(mode.train))
				for j := range mode.train {
					vec[j] = mode.train[j].Vector
				}
				if err := s.TrainFlows(synth.Records(mode.train), vec); err != nil {
					b.Fatal(err)
				}
				balTest, _ := balance.Flows(4, test)
				aggs := s.Aggregate(synth.Records(balTest), nil)
				conf, err := s.Evaluate(aggs)
				if err != nil {
					b.Fatal(err)
				}
				fb = conf.FBeta(0.5)
			}
			b.ReportMetric(fb, "Fβ")
		})
	}
}

// BenchmarkAblationRuleMinimization measures the curation load with and
// without Algorithm 1.
func BenchmarkAblationRuleMinimization(b *testing.B) {
	p := synth.ProfileUS1()
	p.Seed = 0xAB
	g := synth.NewGenerator(p)
	bal, _ := balance.Flows(5, g.Generate(0, 240))
	records := synth.Records(bal)
	b.Run("with-alg1", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			rules, _ := tagging.Mine(records, tagging.DefaultMineOptions())
			n = len(rules)
		}
		b.ReportMetric(float64(n), "rules")
	})
	b.Run("without-alg1", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			opts := tagging.DefaultMineOptions()
			opts.LossConfidence = -1
			opts.LossSupport = -1
			rules, _ := tagging.Mine(records, opts)
			n = len(rules)
		}
		b.ReportMetric(float64(n), "rules")
	})
}
