// Explainability: debug individual classification decisions the way §6.6
// and Figure 9 describe — inspect the annotated tagging rules and the
// Weight-of-Evidence contributions of each feature value, then correct a
// decision by pinning a value's WoE (white/blacklisting).
//
// Run: go run ./examples/explainability
package main

import (
	"fmt"
	"log"

	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
	"github.com/ixp-scrubber/ixpscrubber/internal/woe"
)

func main() {
	// Train a scrubber on a few hours of traffic.
	gen := synth.NewGenerator(synth.ProfileUS1())
	trainFlows, _ := balance.Flows(1, gen.Generate(0, 5*60))
	testFlows, _ := balance.Flows(2, gen.Generate(5*60, 7*60))

	scrubber := core.New(core.DefaultConfig())
	trainRecords := synth.Records(trainFlows)
	if err := scrubber.TrainFlows(trainRecords, nil); err != nil {
		log.Fatal(err)
	}

	testAggs := scrubber.Aggregate(synth.Records(testFlows), nil)
	pred, err := scrubber.Predict(testAggs)
	if err != nil {
		log.Fatal(err)
	}

	// Find one DDoS-flagged aggregate and explain the decision.
	var flagged *features.Aggregate
	for i, a := range testAggs {
		if pred[i] == 1 && len(a.RuleIDs) > 0 {
			flagged = a
			break
		}
	}
	if flagged == nil {
		log.Fatal("no flagged aggregate with rule annotations in this window")
	}

	fmt.Println("=== decision explanation (Fig. 9 workflow) ===")
	ex, err := scrubber.Explain(flagged)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ex.String())

	// Operator intervention: suppose the top positive-WoE source IP is a
	// known-good host (say, a misbehaving monitoring probe). Pin it
	// strongly negative and watch the evidence change.
	var pinDomain string
	var pinKey uint64
	for c := 0; c < features.NumCats; c++ {
		if features.CatNames[c] != "src_ip" {
			continue
		}
		for m := 0; m < features.NumMets; m++ {
			for r := 0; r < features.R; r++ {
				if !flagged.Present[c][m][r] {
					continue
				}
				k := flagged.Keys[c][m][r]
				if scrubber.Encoder().WoE("src_ip", k) > 1 {
					pinDomain, pinKey = "src_ip", k
				}
			}
		}
	}
	if pinDomain == "" {
		fmt.Println("\nno strongly positive source IP to whitelist in this aggregate")
		return
	}
	fmt.Printf("\n=== operator action: whitelist %s (WoE -> -6.0) ===\n",
		core.DisplayKey(features.CatSrcIP, pinKey))
	scrubber.Encoder().Override(pinDomain, pinKey, -6.0)

	ex2, err := scrubber.Explain(flagged)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ex2.String())
	fmt.Printf("\nscore moved %.3f -> %.3f after the override\n", ex.Score, ex2.Score)

	// The same mechanism hardens the model against data poisoning
	// (Appendix E): well-known DDoS ports can be pinned positive so no
	// attacker-injected traffic can wash them out.
	scrubber.Encoder().Override("port_src", woe.KeyPort(123), 4.0)
	fmt.Println("pinned NTP service port positive (poisoning defense, Appendix E)")
}
