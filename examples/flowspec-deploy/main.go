// FlowSpec deployment: push the scrubber's filters to a member router over
// BGP Flow Specification (RFC 8955) and watch the member drop attack
// traffic — the router-configuration-free deployment path of §5 ("filters
// (ACLs) ... which can be used for dropping, shaping, monitoring").
//
//  1. Train a scrubber and flag attacked targets (as in quickstart).
//  2. Convert the per-target ACL entries into FlowSpec routes.
//  3. Announce them over a real BGP session (MP_REACH_NLRI, SAFI 133,
//     traffic-rate extended community).
//  4. A simulated member router parses the routes and filters its traffic,
//     reporting how much attack vs benign traffic the filters dropped.
//
// Run: go run ./examples/flowspec-deploy
package main

import (
	"fmt"
	"log"
	"net"
	"net/netip"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/bgp"
	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

func main() {
	// 1. Train and classify (compressed quickstart).
	gen := synth.NewGenerator(synth.ProfileUS1())
	trainFlows, _ := balance.Flows(1, gen.Generate(0, 4*60))
	testFlows := gen.Generate(4*60, 5*60) // raw, unbalanced: the member's live traffic

	scrubber := core.New(core.DefaultConfig())
	if err := scrubber.TrainFlows(synth.Records(trainFlows), nil); err != nil {
		log.Fatal(err)
	}
	testBalanced, _ := balance.Flows(2, gen.Generate(5*60, 6*60))
	aggs := scrubber.Aggregate(synth.Records(testBalanced), nil)
	pred, err := scrubber.Predict(aggs)
	if err != nil {
		log.Fatal(err)
	}
	targetSet := map[netip.Addr]bool{}
	for i, a := range aggs {
		if pred[i] == 1 {
			targetSet[a.Target] = true
		}
	}
	targets := make([]netip.Addr, 0, len(targetSet))
	for tgt := range targetSet {
		targets = append(targets, tgt)
	}
	fmt.Printf("scrubber flagged %d targets\n", len(targets))

	// 2. ACL entries -> FlowSpec routes.
	entries := scrubber.GenerateACLs(targets, acl.ActionDrop)
	routes, err := acl.ToFlowSpec(entries, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d FlowSpec routes, e.g.:\n  %s -> drop\n", len(routes), routes[0].Rule.String())

	// 3. Announce over a real BGP session: scrubber = "server" side,
	// member router dials in.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		sess := bgp.NewConn(nc, bgp.Open{ASN: 64999, HoldTime: 90, RouterID: [4]byte{10, 0, 0, 254}})
		if err := sess.Handshake(); err != nil {
			log.Fatal(err)
		}
		rules := make([]bgp.Rule, len(routes))
		for i := range routes {
			rules[i] = routes[i].Rule
		}
		msgs, err := bgp.FlowSpecUpdates(rules, bgp.Drop, false)
		if err != nil {
			log.Fatal(err)
		}
		for _, raw := range msgs {
			if err := sess.SendRaw(raw); err != nil {
				log.Fatal(err)
			}
		}
		// Signal the end of the batch with a keepalive.
		if err := sess.SendKeepalive(); err != nil {
			log.Fatal(err)
		}
	}()

	member, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	memberSess := bgp.NewConn(member, bgp.Open{ASN: 64501, HoldTime: 90, RouterID: [4]byte{10, 0, 0, 1}})
	if err := memberSess.Handshake(); err != nil {
		log.Fatal(err)
	}
	var installed []bgp.Rule
	var action bgp.TrafficAction
	for {
		raw, err := memberSess.ReadRaw()
		if err != nil {
			log.Fatal(err)
		}
		if raw[18] == bgp.TypeKeepalive {
			break // end of batch
		}
		fs, err := bgp.ParseFlowSpecUpdate(raw)
		if err != nil {
			log.Fatal(err)
		}
		if fs == nil {
			continue
		}
		installed = append(installed, fs.Announced...)
		if fs.HasAction {
			action = fs.Action
		}
	}
	if len(installed) == 0 {
		log.Fatal("member received no flowspec routes")
	}
	fmt.Printf("member router installed %d FlowSpec rules (action: traffic-rate %.0f)\n",
		len(installed), action.RateLimitBps)

	// 4. The member filters its live traffic with the installed rules.
	var attackTotal, attackDropped, benignTotal, benignDropped int
	for i := range testFlows {
		f := &testFlows[i]
		key := bgp.FlowKey{
			SrcIP: f.SrcIP, DstIP: f.DstIP,
			Protocol: f.Protocol, SrcPort: f.SrcPort, DstPort: f.DstPort,
			TCPFlags: f.TCPFlags, PacketLen: uint16(f.Bytes / f.Packets), Fragment: f.Fragment,
		}
		dropped := false
		for r := range installed {
			if installed[r].Matches(&key) {
				dropped = true
				break
			}
		}
		if f.Attack {
			attackTotal++
			if dropped {
				attackDropped++
			}
		} else {
			benignTotal++
			if dropped {
				benignDropped++
			}
		}
	}
	fmt.Printf("member-side filtering over one hour of live traffic:\n")
	fmt.Printf("  attack traffic dropped: %d / %d (%.1f%%)\n",
		attackDropped, attackTotal, 100*float64(attackDropped)/float64(max(attackTotal, 1)))
	fmt.Printf("  benign traffic dropped: %d / %d (%.2f%%)\n",
		benignDropped, benignTotal, 100*float64(benignDropped)/float64(max(benignTotal, 1)))
	fmt.Println("\nfilters are scoped to the targets flagged in the last classification round;")
	fmt.Println("attacks on new victims are picked up by the next round (scrubberd retrains continuously)")
}
