// Model transfer: reproduce the §6.4 geographic transfer workflow between
// two vantage points.
//
//  1. Train an XGBoost scrubber at IXP-CE1 (large, central Europe).
//  2. Apply it unchanged at IXP-US2 ("full transfer"): the classifier drags
//     CE1's WoE tables along, but US2's reflector population is nearly
//     disjoint, so performance can degrade.
//  3. Transfer only the classifier and fit the WoE encoder locally at US2
//     ("classifier-only transfer"): local knowledge stays local and the
//     model ports cleanly.
//
// Run: go run ./examples/model-transfer
package main

import (
	"fmt"
	"log"

	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
	"github.com/ixp-scrubber/ixpscrubber/internal/woe"
)

func main() {
	// Source vantage point: IXP-CE1, scaled down for a quick run. The two
	// windows below are sized so both vantage points accumulate comparable
	// WoE observation counts — the precondition for classifier-only
	// transfer (WoE magnitudes scale with the log of observation counts;
	// see core.Scrubber.WithEncoder).
	src := synth.ProfileCE1()
	src.BenignFlowsPerMin = 1200
	src.TargetIPs = 600
	src.EpisodeRatePerMin = 0.3
	srcFlows, _ := balance.Flows(1, synth.NewGenerator(src).Generate(0, 5*60))

	scrubber := core.New(core.DefaultConfig())
	if err := scrubber.TrainFlows(synth.Records(srcFlows), nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s at %s on %d balanced flows\n",
		scrubber.Config().Model, src.Name, len(srcFlows))

	// Destination vantage point: IXP-US2 with a busier window so the
	// comparison has enough aggregates.
	dst := synth.ProfileUS2()
	dst.BenignFlowsPerMin = 500
	dst.EpisodeRatePerMin = 0.3
	dstFlows, _ := balance.Flows(2, synth.NewGenerator(dst).Generate(0, 6*60))
	dstRecords := synth.Records(dstFlows)
	dstAggs := scrubber.Aggregate(dstRecords, nil)

	// Fit the destination's own WoE encoder on its balanced flow records
	// (the local knowledge of Fig. 12, middle).
	localEnc := woe.NewEncoder()
	localEnc.MinCount = 4
	for i := range dstRecords {
		features.ObserveRecord(localEnc, &dstRecords[i])
	}
	localEnc.Fit()
	ipOverlap := woe.Overlap(scrubber.Encoder(), localEnc, "src_ip", 1.0)
	portOverlap := woe.Overlap(scrubber.Encoder(), localEnc, "port_src", 1.0)
	fmt.Printf("high-WoE knowledge overlap %s vs %s: source IPs %.1f%%, source ports %.1f%%\n",
		src.Name, dst.Name, 100*ipOverlap, 100*portOverlap)

	// Full transfer: CE1 model incl. its WoE tables.
	full, err := scrubber.Evaluate(dstAggs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full transfer        (CE1 model + CE1 WoE): Fβ=0.5 %.3f  (%s)\n",
		full.FBeta(0.5), full.String())

	// Classifier-only transfer: keep the classifier, use the local encoder.
	transferred := scrubber.WithEncoder(localEnc)
	local, err := transferred.Evaluate(dstAggs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classifier-only      (CE1 model + US2 WoE): Fβ=0.5 %.3f  (%s)\n",
		local.FBeta(0.5), local.String())

	if local.FBeta(0.5) >= full.FBeta(0.5) {
		fmt.Println("\n=> keeping WoE local preserves the transferred model's accuracy (§6.4)")
	} else {
		fmt.Println("\n=> unexpected: local encoding underperformed on this window")
	}
}
