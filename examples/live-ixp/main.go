// Live IXP: run the complete deployment of Figures 1/2 on loopback
// sockets with real wire protocols.
//
// Synthetic member switches export sFlow v5 datagrams over UDP; a member
// router announces and withdraws blackholes over a real BGP session to a
// route server; the collector decodes sampled packet headers, labels each
// flow against the live blackhole registry, and balances the stream per
// minute. The balanced output then trains a scrubber which classifies the
// final stretch of traffic.
//
// Run: go run ./examples/live-ixp
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/ixpsim"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

func main() {
	profile := synth.ProfileUS2()
	profile.BenignFlowsPerMin = 200
	profile.EpisodeRatePerMin = 0.4

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	fmt.Println("replaying 90 minutes of IXP traffic through live sFlow + BGP...")
	start := time.Now()
	res, err := ixpsim.Run(ctx, ixpsim.Config{
		Profile: profile,
		FromMin: 27_000_000, // an arbitrary epoch minute
		ToMin:   27_000_090,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay done in %s:\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  sFlow datagrams received:   %d\n", res.Datagrams)
	fmt.Printf("  packet samples decoded:     %d\n", res.Samples)
	fmt.Printf("  flow records produced:      %d\n", res.Records)
	fmt.Printf("  labeled blackholed (BGP):   %d\n", res.Blackholed)
	fmt.Printf("  blackholed prefixes seen:   %d\n", res.BlackholesSeen)
	fmt.Printf("  balanced records kept:      %d (%.4f%% of stream)\n",
		len(res.Balanced), 100*res.BalanceStats.Reduction())
	fmt.Printf("  balanced blackhole share:   %.1f%%\n", 100*res.BalanceStats.BlackholeShare())

	if len(res.Balanced) < 50 {
		log.Fatal("not enough balanced records to train on")
	}

	// Train on the first 2/3 of the balanced stream, classify the rest.
	cut := len(res.Balanced) * 2 / 3
	for cut < len(res.Balanced) && res.Balanced[cut].Minute() == res.Balanced[cut-1].Minute() {
		cut++
	}
	scrubber := core.New(core.DefaultConfig())
	if err := scrubber.TrainFlows(res.Balanced[:cut], nil); err != nil {
		log.Fatal(err)
	}
	testAggs := scrubber.Aggregate(res.Balanced[cut:], nil)
	confusion, err := scrubber.Evaluate(testAggs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrained on live-captured data; held-out evaluation: %s\n", confusion.String())
}
