// Quickstart: train an IXP Scrubber on synthetic blackholing-labeled
// traffic and classify unseen traffic.
//
// It walks the full §5 pipeline in a few dozen lines:
//
//  1. generate six hours of traffic at a modeled IXP (benign mix + DDoS
//     episodes, with victims blackholed by their members),
//  2. balance the stream per minute (§3),
//  3. mine and auto-curate tagging rules (Step 1),
//  4. aggregate to per-target profiles, WoE-encode, train XGBoost (Step 2),
//  5. evaluate on the following two hours and print flagged targets + ACLs.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"net/netip"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

func main() {
	// 1. Six hours of traffic at a mid-sized IXP.
	profile := synth.ProfileUS1()
	gen := synth.NewGenerator(profile)
	trainFlows := gen.Generate(0, 6*60)
	testFlows := gen.Generate(6*60, 8*60)

	// 2. Balance both windows (the test window reuses the same procedure,
	// as the paper's evaluation does).
	balancedTrain, trainStats := balance.Flows(1, trainFlows)
	balancedTest, _ := balance.Flows(2, testFlows)
	fmt.Printf("balanced training set: %d of %d flows kept (%.3f%%), blackhole share %.1f%%\n",
		trainStats.Out, trainStats.In, 100*trainStats.Reduction(), 100*trainStats.BlackholeShare())

	// 3+4. Train the two-step model.
	scrubber := core.New(core.DefaultConfig())
	trainRecords := synth.Records(balancedTrain)
	rep, err := scrubber.MineRules(trainRecords)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 1: %d association rules -> %d after Algorithm 1 -> %d accepted by policy\n",
		rep.RulesBlackhole, rep.RulesMinimized, len(scrubber.Rules().Accepted()))

	trainAggs := scrubber.Aggregate(trainRecords, nil)
	if err := scrubber.Fit(trainRecords, trainAggs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 2: trained %s on %d per-target aggregates\n",
		scrubber.Config().Model, len(trainAggs))

	// 5. Evaluate on unseen traffic.
	testAggs := scrubber.Aggregate(synth.Records(balancedTest), nil)
	confusion, err := scrubber.Evaluate(testAggs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluation on %d unseen aggregates: %s\n", len(testAggs), confusion.String())

	// Flag targets and emit ACLs for the first flagged one.
	pred, err := scrubber.Predict(testAggs)
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range testAggs {
		if pred[i] != 1 {
			continue
		}
		fmt.Printf("\nflagged target %s (minute %d) — generated ACL:\n", a.Target, a.Minute)
		entries := scrubber.GenerateACLs([]netip.Addr{a.Target}, acl.ActionDrop)
		if len(entries) > 8 {
			entries = entries[:8]
		}
		fmt.Print(acl.RenderText(entries))
		break
	}
}
