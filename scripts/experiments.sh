#!/usr/bin/env sh
# Regenerate experiments_output.txt: every experiment in paper order, one
# invocation each so a slow artifact (the fig11/fig13 timelines dominate
# wall time by two orders of magnitude) never hides the progress of the
# rest. fig11a and fig11b run as one comma-list invocation: they share the
# 10-day temporal corpora, which only a single process can reuse.
# EXPERIMENTS.md quotes this output; keep scale/seed in sync with it.
set -eu

SCALE="${SCALE:-0.15}"
SEED="${SEED:-1}"
OUT="${OUT:-experiments_output.txt}"

go build -o /tmp/ixps-experiments ./cmd/experiments

: > "$OUT"
for id in table2 fig3a fig3c fig4a fig4b rulecount fig15 operator \
          table3 table5 table4 fig10 fig11a,fig11b fig12 fig13 \
          fig14a fig14b fig16a fig16b multiclass; do
    echo ">> $id (scale $SCALE, seed $SEED)"
    /tmp/ixps-experiments -run "$id" -scale "$SCALE" -seed "$SEED" >> "$OUT" 2>&1
done
echo "wrote $OUT"
