#!/usr/bin/env bash
# Runs the serial-vs-parallel sub-benchmarks (XGB fit/predict, FP-Growth
# mining, the experiments harness) and records the results as
# BENCH_PR1.json at the repo root, tagged with the core count so speedup
# numbers are read against the hardware that produced them.
#
# It then runs the ingest-path overhead benchmarks (sFlow decode + registry
# labeling + balancing, with and without the observability registry
# attached) and records BENCH_PR2.json. The ingest pair always runs at
# -benchtime 2s -count 5 and keeps the minimum per variant: overhead is a
# difference of medians-of-noise otherwise, and min-of-N is the stable
# estimator on shared hardware.
#
# Usage: scripts/bench.sh [-benchtime 1x] [-count 1]
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime=1x
count=1
while [ $# -gt 0 ]; do
    case "$1" in
    -benchtime) benchtime=$2; shift 2 ;;
    -count) count=$2; shift 2 ;;
    *) echo "usage: $0 [-benchtime DUR] [-count N]" >&2; exit 2 ;;
    esac
done

tmp=$(mktemp)
tmp2=$(mktemp)
trap 'rm -f "$tmp" "$tmp2"' EXIT

go test -run '^$' -bench 'BenchmarkFitWorkers|BenchmarkPredictWorkers' \
    -benchtime "$benchtime" -count "$count" ./internal/ml/xgb | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkMineFrequentWorkers' \
    -benchtime "$benchtime" -count "$count" ./internal/tagging | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkHarnessWorkers' \
    -benchtime "$benchtime" -count "$count" . | tee -a "$tmp"

# Note: the ns/op comparison must not escape the slash — mawk keeps the
# backslash in "ns\/op" and the condition silently never matches.
awk -v cores="$(nproc)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"cores\": %d,\n  \"benchmarks\": [\n", date, cores
    first = 1
}
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s}", $1, $3
}
END { print "\n  ]\n}" }
' "$tmp" > BENCH_PR1.json

echo "wrote BENCH_PR1.json ($(nproc) cores)"

go test -run '^$' -bench 'BenchmarkIngestMetrics' \
    -benchtime 2s -count 5 ./cmd/scrubberd | tee "$tmp2"

awk -v cores="$(nproc)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
$1 ~ /^BenchmarkIngestMetrics/ && $4 == "ns/op" {
    sub(/-[0-9]+$/, "", $1)   # strip the -GOMAXPROCS suffix
    if (!($1 in best) || $3 + 0 < best[$1]) best[$1] = $3 + 0
}
END {
    off = best["BenchmarkIngestMetricsOff"]
    on = best["BenchmarkIngestMetricsOn"]
    printf "{\n  \"date\": \"%s\",\n  \"cores\": %d,\n", date, cores
    printf "  \"ingest_ns_per_datagram\": {\"metrics_off\": %g, \"metrics_on\": %g},\n", off, on
    printf("  \"overhead_percent\": %.2f\n", off > 0 ? (on - off) / off * 100 : 0)
    print "}"
}' "$tmp2" > BENCH_PR2.json

echo "wrote BENCH_PR2.json ($(nproc) cores)"
