#!/usr/bin/env bash
# Runs the serial-vs-parallel sub-benchmarks (XGB fit/predict, FP-Growth
# mining, the experiments harness) and records the results as
# BENCH_PR1.json at the repo root, tagged with the core count so speedup
# numbers are read against the hardware that produced them.
#
# It then runs the ingest-path overhead benchmarks (sFlow decode + registry
# labeling + balancing, with and without the observability registry
# attached) and records BENCH_PR2.json. The ingest pair always runs at
# -benchtime 2s -count 5 and keeps the minimum per variant: overhead is a
# difference of medians-of-noise otherwise, and min-of-N is the stable
# estimator on shared hardware.
#
# Usage: scripts/bench.sh [-benchtime 1x] [-count 1] [-only pr1,pr6] [-summary]
#
# -only runs a subset of the per-PR sections (pr1 pr2 pr3 pr5 pr6 pr7 pr8
# pr9 pr10, comma-separated); the default runs all of them. CI uses
# "-only pr6,pr7,pr8 -benchtime 1x" as a smoke test that the benchmarks
# still compile and run, without paying for stable numbers.
#
# -summary skips the benchmarks entirely and merges every BENCH_PR*.json
# at the repo root into BENCH_TRAJECTORY.json (schema bench-trajectory/v1,
# see cmd/benchsummary) so one file tracks each metric across the stacked
# PRs. The same merge also runs automatically after every section run —
# including any -only subset — so a refreshed BENCH_PRn.json can never
# leave the trajectory stale.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime=1x
count=1
only=pr1,pr2,pr3,pr5,pr6,pr7,pr8,pr9,pr10
summary=0
while [ $# -gt 0 ]; do
    case "$1" in
    -benchtime) benchtime=$2; shift 2 ;;
    -count) count=$2; shift 2 ;;
    -only) only=$2; shift 2 ;;
    -summary) summary=1; shift ;;
    *) echo "usage: $0 [-benchtime DUR] [-count N] [-only pr1,pr6] [-summary]" >&2; exit 2 ;;
    esac
done

if [ "$summary" = 1 ]; then
    go run ./cmd/benchsummary -o BENCH_TRAJECTORY.json BENCH_PR*.json
    echo "wrote BENCH_TRAJECTORY.json"
    exit 0
fi

want() { case ",$only," in *",$1,"*) return 0 ;; *) return 1 ;; esac }

tmp=$(mktemp)
tmp2=$(mktemp)
trap 'rm -f "$tmp" "$tmp2"' EXIT

if want pr1; then
go test -run '^$' -bench 'BenchmarkFitWorkers|BenchmarkPredictWorkers' \
    -benchtime "$benchtime" -count "$count" ./internal/ml/xgb | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkMineFrequentWorkers' \
    -benchtime "$benchtime" -count "$count" ./internal/tagging | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkHarnessWorkers' \
    -benchtime "$benchtime" -count "$count" . | tee -a "$tmp"

# Note: the ns/op comparison must not escape the slash — mawk keeps the
# backslash in "ns\/op" and the condition silently never matches.
awk -v cores="$(nproc)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"cores\": %d,\n  \"benchmarks\": [\n", date, cores
    first = 1
}
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s}", $1, $3
}
END { print "\n  ]\n}" }
' "$tmp" > BENCH_PR1.json

echo "wrote BENCH_PR1.json ($(nproc) cores)"
fi

if want pr2; then
go test -run '^$' -bench 'BenchmarkIngestMetrics' \
    -benchtime 2s -count 5 ./cmd/scrubberd | tee "$tmp2"

awk -v cores="$(nproc)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
$1 ~ /^BenchmarkIngestMetrics/ && $4 == "ns/op" {
    sub(/-[0-9]+$/, "", $1)   # strip the -GOMAXPROCS suffix
    if (!($1 in best) || $3 + 0 < best[$1]) best[$1] = $3 + 0
}
END {
    off = best["BenchmarkIngestMetricsOff"]
    on = best["BenchmarkIngestMetricsOn"]
    printf "{\n  \"date\": \"%s\",\n  \"cores\": %d,\n", date, cores
    printf "  \"ingest_ns_per_datagram\": {\"metrics_off\": %g, \"metrics_on\": %g},\n", off, on
    printf("  \"overhead_percent\": %.2f\n", off > 0 ? (on - off) / off * 100 : 0)
    print "}"
}' "$tmp2" > BENCH_PR2.json

echo "wrote BENCH_PR2.json ($(nproc) cores)"
fi

# Zero-allocation hot path (PR 3): each pair benchmarks the pre-PR
# implementation (kept as reference code in the test files) against the
# pooled/sharded/lock-free replacement, and records ns/op plus allocs/op
# into BENCH_PR3.json. Same min-of-5 estimator as the PR2 section.
tmp3=$(mktemp)
trap 'rm -f "$tmp" "$tmp2" "$tmp3"' EXIT

if want pr3; then

run3() { # package, bench regex, name prefix (disambiguates cross-package names)
    go test -run '^$' -bench "$2" -benchmem -benchtime 1s -count 5 "$1" \
        | sed "s/^Benchmark/Benchmark$3/" | tee -a "$tmp3"
}
run3 ./internal/sflow 'BenchmarkDecodeInto|BenchmarkDecodeFresh' Sflow
run3 ./internal/ipfix 'BenchmarkDecodeAppend|BenchmarkDecodeFresh' Ipfix
run3 ./internal/features 'BenchmarkFlushSharded|BenchmarkFlushReference' ''
run3 ./internal/woe 'BenchmarkWoELookupSnapshot|BenchmarkWoELookupLocked' ''
run3 ./internal/netflow 'BenchmarkCodecRead(Batch)?$' ''

awk -v cores="$(nproc)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
$1 ~ /^Benchmark/ && $4 == "ns/op" && $8 == "allocs/op" {
    sub(/-[0-9]+$/, "", $1)   # strip the -GOMAXPROCS suffix
    if (!($1 in ns) || $3 + 0 < ns[$1]) { ns[$1] = $3 + 0; al[$1] = $7 + 0 }
}
function pair(label, oldn, newn, scale,    o, n, oa, na, speedup, ar) {
    o = ns[oldn]; n = ns[newn] / scale
    oa = al[oldn]; na = al[newn] / scale
    speedup = 0; if (n > 0) speedup = o / n
    # 0 -> 0 allocs is "n/a", N -> 0 is "inf", otherwise the ratio.
    if (na > 0) ar = sprintf("%.2f", oa / na)
    else if (oa > 0) ar = "\"inf\""
    else ar = "\"n/a\""
    if (!first) printf(",\n")
    first = 0
    printf("    {\"name\": \"%s\",\n", label)
    printf("     \"old\": {\"bench\": \"%s\", \"ns_per_op\": %g, \"allocs_per_op\": %g},\n", oldn, o, oa)
    printf("     \"new\": {\"bench\": \"%s\", \"ns_per_op\": %g, \"allocs_per_op\": %g},\n", newn, n, na)
    printf("     \"speedup\": %.2f, \"alloc_reduction\": %s}", speedup, ar)
}
BEGIN { first = 1 }
END {
    printf "{\n  \"date\": \"%s\",\n  \"cores\": %d,\n", date, cores
    printf "  \"note\": \"min of 5 runs; netflow_read new numbers are per record (ReadBatch ns divided by the 256-record batch)\",\n"
    print  "  \"pairs\": ["
    pair("sflow_decode_per_datagram", "BenchmarkSflowDecodeFresh", "BenchmarkSflowDecodeInto", 1)
    pair("ipfix_decode_per_message", "BenchmarkIpfixDecodeFresh", "BenchmarkIpfixDecodeAppend", 1)
    pair("aggregate_minute_flush", "BenchmarkFlushReference", "BenchmarkFlushSharded", 1)
    pair("woe_lookup", "BenchmarkWoELookupLocked", "BenchmarkWoELookupSnapshot", 1)
    pair("netflow_read_per_record", "BenchmarkCodecRead", "BenchmarkCodecReadBatch", 256)
    print "\n  ]\n}"
}' "$tmp3" > BENCH_PR3.json

echo "wrote BENCH_PR3.json ($(nproc) cores)"
fi

# Model lifecycle (PR 5): hot-swap latency (promoteLocked under the
# lifecycle lock), per-round scoring with and without a shadow challenger
# (the acceptance bound is shadow < 2x champion-only), the PSI drift-stat
# update, and the registry publish path. Records BENCH_PR5.json with the
# shadow overhead ratio computed from min-of-5, like the PR2/PR3 sections.
tmp5=$(mktemp)
trap 'rm -f "$tmp" "$tmp2" "$tmp3" "$tmp5"' EXIT

if want pr5; then
go test -run '^$' -bench 'BenchmarkHotSwap|BenchmarkScoringChampionOnly|BenchmarkScoringWithShadow|BenchmarkPSIUpdate' \
    -benchtime 1s -count 5 ./internal/ixpsim | tee "$tmp5"
go test -run '^$' -bench 'BenchmarkObserveFeatures|BenchmarkStats' \
    -benchtime 1s -count 5 ./internal/drift | tee -a "$tmp5"
go test -run '^$' -bench 'BenchmarkPublish' \
    -benchtime 1s -count 5 ./internal/registry | tee -a "$tmp5"

awk -v cores="$(nproc)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    sub(/-[0-9]+$/, "", $1)   # strip the -GOMAXPROCS suffix
    if (!($1 in ns) || $3 + 0 < ns[$1]) ns[$1] = $3 + 0
}
END {
    champ = ns["BenchmarkScoringChampionOnly"]
    shadow = ns["BenchmarkScoringWithShadow"]
    ratio = champ > 0 ? shadow / champ : 0
    printf "{\n  \"date\": \"%s\",\n  \"cores\": %d,\n", date, cores
    printf "  \"hot_swap_ns\": %g,\n", ns["BenchmarkHotSwap"]
    printf "  \"scoring_ns_per_round\": {\"champion_only\": %g, \"with_shadow\": %g},\n", champ, shadow
    printf "  \"shadow_overhead_ratio\": %.3f,\n", ratio
    printf "  \"psi_update_ns_per_round\": %g,\n", ns["BenchmarkPSIUpdate"]
    printf "  \"drift_observe_features_ns\": %g,\n", ns["BenchmarkObserveFeatures"]
    printf "  \"drift_stats_ns\": %g,\n", ns["BenchmarkStats"]
    printf "  \"registry_publish_ns\": %g\n", ns["BenchmarkPublish"]
    print "}"
}' "$tmp5" > BENCH_PR5.json

echo "wrote BENCH_PR5.json ($(nproc) cores)"
fi

# Sketch-backed aggregation (PR 6): the cardinality matrix (exact vs sketch
# minute-flush throughput and peak aggregation heap at 1x/10x/100x/1000x the
# 512-target baseline — the sketch heap column staying flat is the
# bounded-memory claim) plus the GOMAXPROCS scaling matrix for the sharded
# SPSC ingest path. Min-of-N like the other sections; the awk scans
# unit-tagged fields instead of positions because -benchmem and ReportMetric
# ordering differ between the two benchmarks.
tmp6=$(mktemp)
trap 'rm -f "$tmp" "$tmp2" "$tmp3" "$tmp5" "$tmp6"' EXIT

if want pr6; then
go test -run '^$' -bench 'BenchmarkAggCardinality' -benchmem \
    -benchtime "$benchtime" -count "$count" ./internal/features | tee "$tmp6"
go test -run '^$' -bench 'BenchmarkParallelIngest' \
    -benchtime "$benchtime" -count "$count" ./internal/features | tee -a "$tmp6"

awk -v cores="$(nproc)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
$1 ~ /^Benchmark/ {
    sub(/-[0-9]+$/, "", $1)   # strip the -GOMAXPROCS suffix
    # $2 is the iteration count; value/unit pairs start at $3.
    for (i = 3; i < NF; i += 2) {
        u = $(i + 1); v = $i + 0
        if (u == "ns/op" && (!($1 in ns) || v < ns[$1])) ns[$1] = v
        if (u == "peak-heap-bytes" && (!($1 in hp) || v < hp[$1])) hp[$1] = v
    }
}
function card(mode, mult,    n) {
    n = "BenchmarkAggCardinality/" mode "/x" mult
    if (!first) printf(",\n")
    first = 0
    printf("    {\"mode\": \"%s\", \"mult\": %d, \"ns_per_op\": %g, \"peak_heap_bytes\": %g}",
        mode, mult, ns[n], hp[n])
}
function scale(procs,    n) {
    n = "BenchmarkParallelIngest/procs=" procs
    if (!first) printf(",\n")
    first = 0
    printf("    {\"procs\": %d, \"ns_per_op\": %g}", procs, ns[n])
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"cores\": %d,\n", date, cores
    printf "  \"note\": \"min of N runs; one op = one minute of flows at 512*mult distinct targets\",\n"
    print  "  \"cardinality\": ["
    first = 1
    card("exact", 1); card("exact", 10); card("exact", 100); card("exact", 1000)
    card("sketch", 1); card("sketch", 10); card("sketch", 100); card("sketch", 1000)
    print "\n  ],"
    e1 = ns["BenchmarkAggCardinality/exact/x1"]
    s1 = ns["BenchmarkAggCardinality/sketch/x1"]
    h1 = hp["BenchmarkAggCardinality/sketch/x1"]
    h100 = hp["BenchmarkAggCardinality/sketch/x100"]
    printf("  \"sketch_throughput_vs_exact_x1\": %.3f,\n", s1 > 0 ? e1 / s1 : 0)
    printf("  \"sketch_heap_growth_x1_to_x100\": %.3f,\n", h1 > 0 ? h100 / h1 : 0)
    print  "  \"scaling\": ["
    first = 1
    scale(1); scale(2); scale(4); scale(8)
    print "\n  ]\n}"
}' "$tmp6" > BENCH_PR6.json

echo "wrote BENCH_PR6.json ($(nproc) cores)"
fi

# Compiled mitigation fast path (PR 7): per-record match cost of the
# compiled program vs the reference interpreter on hit and miss traffic at
# 16/256/4096 rules (reported as pps = 1e9/ns), compile latency per
# rule-set size, and the hot-swap + per-batch stage overhead. The headline
# gate is miss_speedup_256 (interpreter ns / compiled ns on non-matching
# traffic — the benign-traffic common case): the acceptance bound is >= 10.
# Min-of-N like the other sections.
tmp7=$(mktemp)
trap 'rm -f "$tmp" "$tmp2" "$tmp3" "$tmp5" "$tmp6" "$tmp7"' EXIT

if want pr7; then
go test -run '^$' -bench 'BenchmarkMatch|BenchmarkCompile|BenchmarkStageSwap|BenchmarkStageEmitBatch' \
    -benchmem -benchtime "$benchtime" -count "$count" ./internal/dropper | tee "$tmp7"

awk -v cores="$(nproc)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    sub(/-[0-9]+$/, "", $1)   # strip the -GOMAXPROCS suffix
    if (!($1 in ns) || $3 + 0 < ns[$1]) ns[$1] = $3 + 0
}
function m(kind, n) { return ns["BenchmarkMatch/" kind "/rules=" n] }
function row(kind, n,    v) {
    v = m(kind, n)
    if (!first) printf(",\n")
    first = 0
    printf("    {\"impl\": \"%s\", \"rules\": %d, \"ns_per_record\": %g, \"pps\": %g}",
        kind, n, v, v > 0 ? 1e9 / v : 0)
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"cores\": %d,\n", date, cores
    printf "  \"note\": \"min of N runs; pps = 1e9/ns_per_record; miss = non-matching traffic, the benign common case\",\n"
    print  "  \"match\": ["
    first = 1
    row("compiled_miss", 16); row("compiled_miss", 256); row("compiled_miss", 4096)
    row("compiled_hit", 16); row("compiled_hit", 256); row("compiled_hit", 4096)
    row("interp_miss", 16); row("interp_miss", 256); row("interp_miss", 4096)
    row("interp_hit", 16); row("interp_hit", 256); row("interp_hit", 4096)
    print "\n  ],"
    cm = m("compiled_miss", 256); im = m("interp_miss", 256)
    ch = m("compiled_hit", 256); ih = m("interp_hit", 256)
    printf("  \"miss_speedup_256\": %.2f,\n", cm > 0 ? im / cm : 0)
    printf("  \"hit_speedup_256\": %.2f,\n", ch > 0 ? ih / ch : 0)
    printf("  \"compile_ns\": {\"rules_16\": %g, \"rules_256\": %g, \"rules_4096\": %g},\n",
        ns["BenchmarkCompile/rules=16"], ns["BenchmarkCompile/rules=256"], ns["BenchmarkCompile/rules=4096"])
    printf("  \"stage_swap_ns\": %g,\n", ns["BenchmarkStageSwap"])
    printf("  \"stage_emit_batch_ns_256_records\": %g\n", ns["BenchmarkStageEmitBatch"])
    print "}"
}' "$tmp7" > BENCH_PR7.json

echo "wrote BENCH_PR7.json ($(nproc) cores)"
fi

# Boosted-tree fast path (PR 8): trainer wall-clock (preserved reference
# vs the in-place rewrite, exact and FastHist modes — acceptance bound is
# fast >= 1.5x reference), batch inference (per-row node walker vs the
# compiled flat program at production ensemble scale, 300 trees x depth 8
# on 20k rows — bound is flat >= 3x per-row), the flat path's allocs/op
# (bound: 0), and the champion+shadow scoring overhead ratio now that
# shadow scoring rides the buffer-reuse serving path. Min-of-N like the
# other sections.
tmp8=$(mktemp)
trap 'rm -f "$tmp" "$tmp2" "$tmp3" "$tmp5" "$tmp6" "$tmp7" "$tmp8"' EXIT

if want pr8; then
go test -run '^$' -bench 'BenchmarkFitReference|BenchmarkFitFast|BenchmarkBatchPredict' \
    -benchmem -benchtime "$benchtime" -count "$count" ./internal/ml/xgb | tee "$tmp8"
go test -run '^$' -bench 'BenchmarkScoringChampionOnly|BenchmarkScoringWithShadow' \
    -benchtime "$benchtime" -count "$count" ./internal/ixpsim | tee -a "$tmp8"

awk -v cores="$(nproc)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
$1 ~ /^Benchmark/ {
    sub(/-[0-9]+$/, "", $1)   # strip the -GOMAXPROCS suffix
    # $2 is the iteration count; value/unit pairs start at $3.
    for (i = 3; i < NF; i += 2) {
        u = $(i + 1); v = $i + 0
        if (u == "ns/op" && (!($1 in ns) || v < ns[$1])) ns[$1] = v
        if (u == "allocs/op" && (!($1 in al) || v < al[$1])) al[$1] = v
    }
}
END {
    fr = ns["BenchmarkFitReference"]
    ff = ns["BenchmarkFitFast"]
    fh = ns["BenchmarkFitFastHist"]
    pr = ns["BenchmarkBatchPredictReference"]
    pf = ns["BenchmarkBatchPredictFlat"]
    champ = ns["BenchmarkScoringChampionOnly"]
    shadow = ns["BenchmarkScoringWithShadow"]
    printf "{\n  \"date\": \"%s\",\n  \"cores\": %d,\n", date, cores
    printf "  \"note\": \"min of N runs; fit = 4000x24 blobs depth 8; predict batch = 20000 rows through 300 trees of depth 8\",\n"
    printf "  \"fit_ns\": {\"reference\": %g, \"fast\": %g, \"fast_hist\": %g},\n", fr, ff, fh
    printf("  \"fit_speedup\": %.2f,\n", ff > 0 ? fr / ff : 0)
    printf("  \"fit_hist_speedup\": %.2f,\n", fh > 0 ? fr / fh : 0)
    printf "  \"predict_ns_per_batch\": {\"per_row_walker\": %g, \"flat\": %g},\n", pr, pf
    printf("  \"predict_speedup\": %.2f,\n", pf > 0 ? pr / pf : 0)
    printf "  \"flat_allocs_per_op\": %g,\n", al["BenchmarkBatchPredictFlat"]
    printf("  \"shadow_overhead_ratio\": %.3f\n", champ > 0 ? shadow / champ : 0)
    print "}"
}' "$tmp8" > BENCH_PR8.json

echo "wrote BENCH_PR8.json ($(nproc) cores)"
fi

# Multi-IXP federated cluster (PR 9): per-site ingest throughput of the
# live topology at the paper's site counts (generate, partition by target
# IP, shard-ingest, settle — one simulated minute per op), a full gossip
# round (champion export, cross-delivery, per-site election), and the
# election overhead ratio: scoring one shared-parse candidate on the
# site's own window vs scoring the incumbent alone. The acceptance gate
# is ratio < 2x — the coordinator parses each travelling bundle once per
# round and destinations re-bind encoders with a shallow copy, so
# candidate scoring must stay marginal. Min-of-N like the other sections.
tmp9=$(mktemp)
trap 'rm -f "$tmp" "$tmp2" "$tmp3" "$tmp5" "$tmp6" "$tmp7" "$tmp8" "$tmp9"' EXIT

if want pr9; then
go test -run '^$' -bench 'BenchmarkClusterIngest|BenchmarkGossipRound|BenchmarkIncumbentScore|BenchmarkElectionScore' \
    -benchtime "$benchtime" -count "$count" ./internal/cluster | tee "$tmp9"

awk -v cores="$(nproc)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
$1 ~ /^Benchmark/ {
    sub(/-[0-9]+$/, "", $1)   # strip the -GOMAXPROCS suffix
    for (i = 3; i < NF; i += 2) {
        u = $(i + 1); v = $i + 0
        if (u == "ns/op" && (!($1 in ns) || v < ns[$1])) ns[$1] = v
        if (u == "records/s" && (!($1 in rs) || v > rs[$1])) rs[$1] = v
    }
}
END {
    inc = ns["BenchmarkIncumbentScore"]
    el = ns["BenchmarkElectionScore"]
    printf "{\n  \"date\": \"%s\",\n  \"cores\": %d,\n", date, cores
    printf "  \"note\": \"min of N runs (max for throughput); ingest = one simulated minute across all sites; gossip = export + cross-delivery + elections on a trained 2-site cluster\",\n"
    printf "  \"cluster_ingest_ns_per_min\": {\"sites_1\": %g, \"sites_2\": %g, \"sites_5\": %g},\n", \
        ns["BenchmarkClusterIngest/sites=1"], ns["BenchmarkClusterIngest/sites=2"], ns["BenchmarkClusterIngest/sites=5"]
    printf "  \"cluster_ingest_records_per_s\": {\"sites_1\": %g, \"sites_2\": %g, \"sites_5\": %g},\n", \
        rs["BenchmarkClusterIngest/sites=1"], rs["BenchmarkClusterIngest/sites=2"], rs["BenchmarkClusterIngest/sites=5"]
    printf "  \"gossip_round_ns\": %g,\n", ns["BenchmarkGossipRound"]
    printf "  \"incumbent_score_ns\": %g,\n", inc
    printf "  \"election_score_ns\": %g,\n", el
    printf("  \"election_overhead_ratio\": %.3f\n", inc > 0 ? el / inc : 0)
    print "}"
}' "$tmp9" > BENCH_PR9.json

echo "wrote BENCH_PR9.json ($(nproc) cores)"

ratio=$(awk -F'[:,]' '/election_overhead_ratio/ {print $2+0}' BENCH_PR9.json)
awk -v r="$ratio" 'BEGIN { if (r <= 0 || r >= 2) { printf "FAIL: election overhead ratio %.3f not in (0, 2)\n", r; exit 1 } printf "election overhead ratio %.3f < 2x\n", r }'
fi

# Config-driven segment pipeline (PR 10): per-batch cost of the segment
# layer's instrumented handoff (Feed -> input pass-through -> panic-isolated
# hop -> scrubber ingest) vs the hardwired chain's direct EmitBatch, both
# pushing admitted 256-record batches through the same detection queue. The
# acceptance gate is overhead_ratio < 1.05x. Always min-of-5 at 2s like the
# PR2 section: the gate is a ratio of two close numbers and short benchtimes
# are pure noise.
tmp10=$(mktemp)
trap 'rm -f "$tmp" "$tmp2" "$tmp3" "$tmp5" "$tmp6" "$tmp7" "$tmp8" "$tmp9" "$tmp10"' EXIT

if want pr10; then
go test -run '^$' -bench 'BenchmarkHandoffHardwired|BenchmarkHandoffSegment' \
    -benchtime 2s -count 5 ./internal/segment | tee "$tmp10"

awk -v cores="$(nproc)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    sub(/-[0-9]+$/, "", $1)   # strip the -GOMAXPROCS suffix
    if (!($1 in ns) || $3 + 0 < ns[$1]) ns[$1] = $3 + 0
}
END {
    hw = ns["BenchmarkHandoffHardwired"]
    seg = ns["BenchmarkHandoffSegment"]
    printf "{\n  \"date\": \"%s\",\n  \"cores\": %d,\n", date, cores
    printf "  \"note\": \"min of 5 runs at 2s; one op = 256 admitted 256-record batches fed and drained through the detection queue, GC pinned; per-batch figures\",\n"
    printf "  \"handoff_ns_per_batch\": {\"hardwired\": %g, \"segment\": %g},\n", hw / 256, seg / 256
    printf("  \"overhead_ratio\": %.4f\n", hw > 0 ? seg / hw : 0)
    print "}"
}' "$tmp10" > BENCH_PR10.json

echo "wrote BENCH_PR10.json ($(nproc) cores)"

ratio=$(awk -F'[:,]' '/overhead_ratio/ {print $2+0}' BENCH_PR10.json)
awk -v r="$ratio" 'BEGIN { if (r <= 0 || r >= 1.05) { printf "FAIL: segment handoff overhead %.4fx not in (0, 1.05)\n", r; exit 1 } printf "segment handoff overhead %.4fx < 1.05x\n", r }'
fi

# Every section run may have refreshed a BENCH_PRn.json, so re-merge the
# trajectory unconditionally — an -only subset can never leave
# BENCH_TRAJECTORY.json stale behind the artifact it just rewrote.
go run ./cmd/benchsummary -o BENCH_TRAJECTORY.json BENCH_PR*.json
echo "wrote BENCH_TRAJECTORY.json"
