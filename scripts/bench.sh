#!/usr/bin/env bash
# Runs the serial-vs-parallel sub-benchmarks (XGB fit/predict, FP-Growth
# mining, the experiments harness) and records the results as
# BENCH_PR1.json at the repo root, tagged with the core count so speedup
# numbers are read against the hardware that produced them.
#
# Usage: scripts/bench.sh [-benchtime 1x] [-count 1]
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime=1x
count=1
while [ $# -gt 0 ]; do
    case "$1" in
    -benchtime) benchtime=$2; shift 2 ;;
    -count) count=$2; shift 2 ;;
    *) echo "usage: $0 [-benchtime DUR] [-count N]" >&2; exit 2 ;;
    esac
done

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkFitWorkers|BenchmarkPredictWorkers' \
    -benchtime "$benchtime" -count "$count" ./internal/ml/xgb | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkMineFrequentWorkers' \
    -benchtime "$benchtime" -count "$count" ./internal/tagging | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkHarnessWorkers' \
    -benchtime "$benchtime" -count "$count" . | tee -a "$tmp"

awk -v cores="$(nproc)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"cores\": %d,\n  \"benchmarks\": [\n", date, cores
    first = 1
}
$1 ~ /^Benchmark/ && $4 == "ns\/op" {
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s}", $1, $3
}
END { print "\n  ]\n}" }
' "$tmp" > BENCH_PR1.json

echo "wrote BENCH_PR1.json ($(nproc) cores)"
