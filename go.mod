module github.com/ixp-scrubber/ixpscrubber

go 1.22
