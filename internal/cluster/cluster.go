// Package cluster runs N scrubber sites — the paper's five-IXP topology —
// in one process, turning the offline exp_geo transfer experiment into a
// live serving topology. Each site owns the full production pipeline
// (bounded queue → balancer → sliding window → two-step model → ACL
// writer) plus its own synth traffic profile, optional sketch aggregator
// and versioned model registry; ingest is partitioned across sites by
// target IP. A coordinator exchanges classifier-only bundles over the
// registry Export/Import path (Fig. 12: the trees travel, the WoE tables
// stay local) on a gossip cadence, and every site elects its champion by
// shadow-scoring the imported candidates against the incumbent on its own
// WoE-encoded window — an imported model serves only where it is locally
// at least as good.
//
// The whole topology is deterministic: a virtual clock, lock-step
// per-minute settling, and generator-derived blackhole labels (no BGP, no
// sockets) make a run a pure function of its Config — bit-exact at any
// worker count — so the chaos suite can replay coordinator crashes, site
// partitions and torn bundle imports against fault-free references.
package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/ixpsim"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
	"github.com/ixp-scrubber/ixpscrubber/internal/par"
	modelreg "github.com/ixp-scrubber/ixpscrubber/internal/registry"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// DefaultStartMin anchors simulated time (2021-01-01 UTC in unix minutes),
// matching the chaos harness epoch.
const DefaultStartMin = 26_830_080

// Config parameterizes one cluster. The zero value of every optional field
// picks the documented default; only Dir is required.
type Config struct {
	// Sites is the number of scrubber sites; 0 means len(Profiles), or 2
	// when Profiles is nil. Without explicit Profiles at most 5 sites are
	// available (one per paper vantage point).
	Sites int
	// Profiles overrides the per-site traffic profiles. Member address
	// spaces must be disjoint across sites — target-IP partitioning relies
	// on it — and New fails otherwise. Nil selects DefaultProfiles(Sites).
	Profiles []synth.Profile
	// Seed perturbs every site's RNG streams without moving its member
	// address space (profile seeds shift by a multiple of 90, preserving
	// the seed%90 first-octet allocation). Runs with different seeds see
	// different traffic; runs with the same seed are bit-identical.
	Seed uint64
	// Dir is the working directory: per-site registries, ACLs and
	// checkpoints live in Dir/site-<name>/. Required.
	Dir string
	// StartMin is the absolute simulated start (unix minutes); 0 means the
	// 2021 epoch.
	StartMin int64
	// Window, MinTrainRecords, QueueCap mirror ixpsim.PipelineConfig
	// (defaults: 24h, 64, 64).
	Window          time.Duration
	MinTrainRecords int
	QueueCap        int
	// Workers sizes each site's training worker pool (0 = GOMAXPROCS).
	// Outputs are bit-identical at every value.
	Workers int
	// SketchBudget > 0 runs every site's aggregation through the
	// bounded-memory sketch path with that relative exactness budget.
	SketchBudget float64
	// Dropper puts the compiled mitigation fast path in front of each
	// site's ingest queue.
	Dropper bool
	// TrainEvery and GossipEvery set the Run cadence in simulated minutes:
	// training rounds after every TrainEvery-th minute (default 5) and a
	// gossip round after every GossipEvery-th (default 10; negative
	// disables). Tests drive Step/TrainAll/Gossip directly instead.
	TrainEvery  int64
	GossipEvery int64
	// Checkpoint persists per-site pipeline state after each training
	// round and the coordinator state after every Run minute; Restore
	// resumes a New cluster from what a crashed one left in Dir.
	Checkpoint bool
	Restore    bool
	// Metrics aggregates cluster-wide drift, reduction-ratio and drop
	// metrics (labeled per site) onto this registry; nil disables.
	Metrics *obs.Registry
	Log     *slog.Logger
}

func (cfg Config) withDefaults() (Config, error) {
	if cfg.Dir == "" {
		return cfg, fmt.Errorf("cluster: Config.Dir is required")
	}
	if cfg.Profiles == nil {
		n := cfg.Sites
		if n <= 0 {
			n = 2
		}
		profs, err := DefaultProfiles(n)
		if err != nil {
			return cfg, err
		}
		cfg.Profiles = profs
	}
	if cfg.Sites <= 0 {
		cfg.Sites = len(cfg.Profiles)
	}
	if cfg.Sites != len(cfg.Profiles) {
		return cfg, fmt.Errorf("cluster: %d sites but %d profiles", cfg.Sites, len(cfg.Profiles))
	}
	if cfg.StartMin == 0 {
		cfg.StartMin = DefaultStartMin
	}
	if cfg.Window <= 0 {
		cfg.Window = 24 * time.Hour
	}
	if cfg.MinTrainRecords <= 0 {
		cfg.MinTrainRecords = 64
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.TrainEvery == 0 {
		cfg.TrainEvery = 5
	}
	if cfg.GossipEvery == 0 {
		cfg.GossipEvery = 10
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.DiscardHandler)
	}
	return cfg, nil
}

// Cluster is N sites plus the gossip coordinator. All methods must be
// called from one driving goroutine (the harness, Run, or scrubberd's
// tick loop); the pipelines underneath run their own consumers.
type Cluster struct {
	cfg   Config
	sites []*Site
	part  *partitioner
	clock clock
	cw    *acl.Writer // coordinator checkpoint writer

	minute int64 // relative minutes completed

	// Coordinator accounting, mutated by Gossip only.
	gossipRounds int
	exchanged    uint64
	rejected     uint64
	promotions   uint64

	scratch [][]netflow.Record // per-site routing buffers

	metrics *clusterMetrics
}

// New assembles the cluster inside cfg.Dir. Call Start before driving
// minutes, and Stop when done.
func New(cfg Config) (*Cluster, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg}
	c.clock.Set(cfg.StartMin * 60)
	c.cw = &acl.Writer{Backoff: instantBackoff(), Log: cfg.Log}
	for i, prof := range cfg.Profiles {
		prof.Seed += 90 * cfg.Seed // preserve seed%90: member spaces stay put
		s, err := c.newSite(i, prof)
		if err != nil {
			c.closeSites()
			return nil, err
		}
		c.sites = append(c.sites, s)
	}
	c.part, err = newPartitioner(c.sites)
	if err != nil {
		c.closeSites()
		return nil, err
	}
	c.scratch = make([][]netflow.Record, len(c.sites))
	if cfg.Restore {
		if err := c.restore(); err != nil {
			c.closeSites()
			return nil, err
		}
	}
	if cfg.Metrics != nil {
		c.metrics = c.registerMetrics(cfg.Metrics)
	}
	return c, nil
}

// newSite wires one scrubber site: generator, registry, pipeline.
func (c *Cluster) newSite(index int, prof synth.Profile) (*Site, error) {
	dir := filepath.Join(c.cfg.Dir, "site-"+prof.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: site dir: %w", err)
	}
	log := c.cfg.Log.With("site", prof.Name)
	reg, err := modelreg.Open(filepath.Join(dir, "registry"), modelreg.Options{
		Clock: func() time.Time { return time.Unix(c.clock.Now(), 0) },
		Log:   log,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: site %s registry: %w", prof.Name, err)
	}
	reg.Writer().Backoff = instantBackoff()

	coreCfg := core.DefaultConfig()
	coreCfg.Workers = c.cfg.Workers
	if c.cfg.SketchBudget > 0 {
		coreCfg.Sketch = &features.SketchConfig{Budget: c.cfg.SketchBudget}
	}
	s := &Site{
		Name:    prof.Name,
		Index:   index,
		prof:    prof,
		gen:     synth.NewGenerator(prof),
		reg:     reg,
		dir:     dir,
		digests: map[int64]uint64{},
	}
	ckpt := ""
	if c.cfg.Checkpoint || c.cfg.Restore {
		ckpt = filepath.Join(dir, "checkpoint.json")
	}
	s.pipe = ixpsim.NewPipeline(ixpsim.PipelineConfig{
		Seed:            prof.Seed,
		Window:          c.cfg.Window,
		Core:            &coreCfg,
		QueueCap:        c.cfg.QueueCap,
		MinTrainRecords: c.cfg.MinTrainRecords,
		ACLPath:         filepath.Join(dir, "acl.txt"),
		CheckpointPath:  ckpt,
		Clock:           c.clock.Now,
		Log:             log,
		KeepHook:        s.keepHook,
		Registry:        reg,
		// Election is the only cross-model promotion path: locally trained
		// candidates promote immediately (no shadow hold), and an imported
		// challenger never auto-promotes on disagreement — Gossip promotes
		// it explicitly when it wins, keeping which model serves exact.
		Promotion: ixpsim.PromotionPolicy{MaxDisagreement: -1},
		Drop:      c.cfg.Dropper,
	})
	s.pipe.Writer().Backoff = instantBackoff()
	return s, nil
}

// Start launches every site's queue consumer.
func (c *Cluster) Start(ctx context.Context) {
	for _, s := range c.sites {
		s.pipe.Start(ctx)
	}
}

// Stop drains and stops every site pipeline.
func (c *Cluster) Stop() { c.closeSites() }

func (c *Cluster) closeSites() {
	for _, s := range c.sites {
		s.pipe.Stop()
	}
}

// Sites exposes the sites in index order (read-only use).
func (c *Cluster) Sites() []*Site { return c.sites }

// Minute reports the number of relative minutes completed.
func (c *Cluster) Minute() int64 { return c.minute }

// Now reports the virtual clock (unix seconds).
func (c *Cluster) Now() int64 { return c.clock.Now() }

// Step simulates one minute: every site generates its profile's traffic,
// all of it is routed through the target-IP partitioner to the owning
// site's ingest shard, and the step returns only once every pipeline has
// drained — the lock-step settling that pins batch boundaries, balancer
// RNG draws and therefore the whole run to one replayable sequence.
func (c *Cluster) Step(ctx context.Context) error {
	abs := c.cfg.StartMin + c.minute
	c.clock.Set(abs * 60)
	for _, s := range c.sites {
		s.flowBuf = s.gen.GenerateMinute(abs, s.flowBuf[:0])
		// Blackhole ground truth rides Record.Blackholed; the BGP event
		// stream exists for socketed deployments and is drained unused.
		s.gen.Events()
		if err := c.route(s.flowBuf); err != nil {
			return err
		}
	}
	for _, s := range c.sites {
		if err := s.settle(ctx); err != nil {
			return fmt.Errorf("cluster: site %s minute %d: %w", s.Name, c.minute, err)
		}
	}
	c.minute++
	return nil
}

// route splits one generated minute across the owning sites' ingest
// shards and updates the settle accounting.
func (c *Cluster) route(flows []synth.Flow) error {
	for i := range c.scratch {
		c.scratch[i] = c.scratch[i][:0]
	}
	for i := range flows {
		r := &flows[i].Record
		idx := c.part.SiteFor(r.DstIP)
		c.scratch[idx] = append(c.scratch[idx], *r)
	}
	for i, s := range c.sites {
		batch := c.scratch[i]
		if len(batch) == 0 {
			continue
		}
		s.pipe.EmitBatch(batch)
		s.expBatches++
		s.expIngest += uint64(len(batch))
		s.routed.Add(uint64(len(batch)))
	}
	return nil
}

// TrainAll runs one training round on every site at the current virtual
// time, in site order.
func (c *Cluster) TrainAll(ctx context.Context) error {
	for _, s := range c.sites {
		round, err := s.pipe.TrainRound(ctx, c.clock.Now())
		if err != nil {
			return fmt.Errorf("cluster: site %s training: %w", s.Name, err)
		}
		s.recordRound(c.minute, round)
	}
	return nil
}

// TrainSites runs one training round on the named sites only — the knob
// scripted scenarios use to let one vantage point's model go stale while
// the rest of the cluster keeps learning.
func (c *Cluster) TrainSites(ctx context.Context, idx ...int) error {
	for _, i := range idx {
		if i < 0 || i >= len(c.sites) {
			return fmt.Errorf("cluster: no site %d", i)
		}
		s := c.sites[i]
		round, err := s.pipe.TrainRound(ctx, c.clock.Now())
		if err != nil {
			return fmt.Errorf("cluster: site %s training: %w", s.Name, err)
		}
		s.recordRound(c.minute, round)
	}
	return nil
}

// Run drives minutes with the configured train/gossip cadence: traffic
// every minute, training after every TrainEvery-th, gossip after every
// GossipEvery-th (after training, so elections score fresh incumbents),
// coordinator checkpoint after every minute when configured.
func (c *Cluster) Run(ctx context.Context, minutes int64) error {
	for i := int64(0); i < minutes; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := c.Step(ctx); err != nil {
			return err
		}
		if c.cfg.TrainEvery > 0 && c.minute%c.cfg.TrainEvery == 0 {
			if err := c.TrainAll(ctx); err != nil {
				return err
			}
		}
		if c.cfg.GossipEvery > 0 && c.minute%c.cfg.GossipEvery == 0 {
			if _, err := c.Gossip(ctx, GossipOptions{}); err != nil {
				return err
			}
		}
		if c.cfg.Checkpoint {
			if err := c.SaveCheckpoint(ctx); err != nil {
				c.cfg.Log.Error("coordinator checkpoint failed", "err", err)
			}
		}
	}
	return nil
}

// instantBackoff retries without sleeping wall time, keeping virtual-clock
// runs fast and schedules exact.
func instantBackoff() *par.Backoff {
	return &par.Backoff{Base: time.Millisecond, Sleep: func(time.Duration) {}}
}
