package cluster

import (
	"fmt"
	"net/netip"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// partitioner routes records to sites by target IP. Ownership is exact
// for every member /24 a site's profile originates (the address space its
// victims and benign targets live in); anything outside every member
// space — spoofed or misdirected traffic — hashes uniformly across sites
// so no record is ever dropped on the floor.
type partitioner struct {
	own map[netip.Prefix]int
	n   int
}

func newPartitioner(sites []*Site) (*partitioner, error) {
	p := &partitioner{own: map[netip.Prefix]int{}, n: len(sites)}
	for _, s := range sites {
		for _, m := range s.gen.Members() {
			if prev, ok := p.own[m.Prefix]; ok && prev != s.Index {
				return nil, fmt.Errorf("cluster: member prefix %s owned by both %s and %s — site profiles need disjoint address spaces",
					m.Prefix, sites[prev].Name, s.Name)
			}
			p.own[m.Prefix] = s.Index
		}
	}
	return p, nil
}

// SiteFor returns the owning site index for a target address.
func (p *partitioner) SiteFor(a netip.Addr) int {
	if a.Is4In6() {
		a = a.Unmap()
	}
	if pfx, err := a.Prefix(24); err == nil {
		if idx, ok := p.own[pfx]; ok {
			return idx
		}
	}
	b := a.As16()
	return int(netflow.FoldBytes(netflow.FNVOffset, b[:]) % uint64(p.n))
}
