package cluster

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// SiteOutcome reduces one site's run to comparable values.
type SiteOutcome struct {
	Name string
	// Digests maps absolute minute -> chained digest of the records the
	// site's balancer kept for that minute, in emission order.
	Digests map[int64]uint64
	Kept    uint64

	Ingested       uint64
	Routed         uint64
	DroppedBatches uint64
	DroppedRecords uint64

	DropperEvaluated uint64
	DropperDropped   uint64

	Rounds    []RoundDigest
	Elections []Election

	RegistryVersions int
	ChampionSeq      uint64
	ChampionID       string
	ACLFile          string
}

// Outcome is the whole cluster run reduced to comparable values. Two runs
// of the same Config must produce identical outcomes at any worker count.
type Outcome struct {
	Sites []SiteOutcome

	GossipRounds int
	Exchanged    uint64
	Rejected     uint64
	Promotions   uint64
}

// Outcome snapshots the cluster's deterministic state.
func (c *Cluster) Outcome() *Outcome {
	out := &Outcome{
		GossipRounds: c.gossipRounds,
		Exchanged:    c.exchanged,
		Rejected:     c.rejected,
		Promotions:   c.promotions,
	}
	for _, s := range c.sites {
		so := SiteOutcome{
			Name:      s.Name,
			Ingested:  s.pipe.Ingested(),
			Routed:    s.routed.Load(),
			Rounds:    s.rounds,
			Elections: s.elections,
		}
		s.digMu.Lock()
		so.Digests = make(map[int64]uint64, len(s.digests))
		for m, d := range s.digests {
			so.Digests[m] = d
		}
		so.Kept = s.kept
		s.digMu.Unlock()
		qs := s.pipe.QueueStats()
		so.DroppedBatches = qs.DroppedBatches.Load()
		so.DroppedRecords = qs.DroppedRecords.Load()
		if d := s.pipe.Dropper(); d != nil {
			st := d.Stats()
			so.DropperEvaluated = st.Evaluated
			so.DropperDropped = st.Dropped
		}
		so.RegistryVersions = len(s.reg.List())
		so.ChampionSeq, so.ChampionID = s.pipe.ActiveModel()
		if data, err := os.ReadFile(filepath.Join(s.dir, "acl.txt")); err == nil {
			so.ACLFile = string(data)
		}
		out.Sites = append(out.Sites, so)
	}
	return out
}

// Key renders every deterministic field; equal keys mean equal runs.
// Election scores render as float bit patterns, so "equal" means
// bit-exact, not approximately equal.
func (o *Outcome) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: gossip=%d exchanged=%d rejected=%d promotions=%d\n",
		o.GossipRounds, o.Exchanged, o.Rejected, o.Promotions)
	for i := range o.Sites {
		b.WriteString(o.Sites[i].key())
	}
	return b.String()
}

func (so *SiteOutcome) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "site %s: kept=%d ingested=%d routed=%d dropB=%d dropR=%d dropperEval=%d dropperDrop=%d versions=%d champ=%d/%s\n",
		so.Name, so.Kept, so.Ingested, so.Routed, so.DroppedBatches, so.DroppedRecords,
		so.DropperEvaluated, so.DropperDropped, so.RegistryVersions, so.ChampionSeq, so.ChampionID)
	b.WriteString(so.DigestsFrom(0))
	for _, r := range so.Rounds {
		fmt.Fprintf(&b, "round@%d skip=%v rec=%d agg=%d rules=%d flagged=%v acl=%016x seq=%d prom=%v\n",
			r.Minute, r.Skipped, r.Records, r.Aggregates, r.RulesMined, r.Flagged, r.ACLDigest, r.Seq, r.Promoted)
	}
	for _, e := range so.Elections {
		b.WriteString(renderElection(&e))
	}
	fmt.Fprintf(&b, "acl-file=%016x\n", netflow.FoldString(netflow.FNVOffset, so.ACLFile))
	return b.String()
}

// String renders every deterministic election field, scores as float bit
// patterns: equal strings mean bit-identical election results.
func (e *Election) String() string { return renderElection(e) }

func renderElection(e *Election) string {
	var b strings.Builder
	fmt.Fprintf(&b, "election r%d@%d site=%d skip=%v inc=%s winner=%d/%s prom=%v cands=[",
		e.Round, e.Minute, e.Site, e.Skipped, renderScore(&e.Incumbent), e.WinnerOrigin, e.WinnerID, e.Promoted)
	for i := range e.Candidates {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(renderScore(&e.Candidates[i]))
	}
	b.WriteString("]\n")
	return b.String()
}

func renderScore(s *Score) string {
	if s.Invalid {
		return fmt.Sprintf("%d:%s:invalid", s.Origin, s.ID)
	}
	return fmt.Sprintf("%d:%s:%016x", s.Origin, s.ID, math.Float64bits(s.FBeta))
}

// DigestsFrom renders the per-minute kept-stream digests at or after the
// absolute minute from — what the coordinator crash/restart test compares
// across the crash boundary.
func (so *SiteOutcome) DigestsFrom(from int64) string {
	var b strings.Builder
	mins := make([]int64, 0, len(so.Digests))
	for m := range so.Digests {
		if m >= from {
			mins = append(mins, m)
		}
	}
	sort.Slice(mins, func(i, j int) bool { return mins[i] < mins[j] })
	for _, m := range mins {
		fmt.Fprintf(&b, "%d=%016x\n", m, so.Digests[m])
	}
	return b.String()
}

// DigestsFrom renders every site's digests at or after an absolute minute.
func (o *Outcome) DigestsFrom(from int64) string {
	var b strings.Builder
	for i := range o.Sites {
		fmt.Fprintf(&b, "site %s:\n%s", o.Sites[i].Name, o.Sites[i].DigestsFrom(from))
	}
	return b.String()
}
