package cluster

import (
	"context"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/core"
)

// FuzzClusterImport throws arbitrary bytes at the cluster's bundle-receive
// surface. Invariants: never panics, full bundles are always refused
// (foreign WoE tables must not travel), and garbage leaves the receiving
// site's serving state — active model, registry contents, champion
// pointer — untouched.
func FuzzClusterImport(f *testing.F) {
	c, err := New(Config{Sites: 2, Seed: 1, Dir: f.TempDir()})
	if err != nil {
		f.Fatal(err)
	}
	ctx := context.Background()
	c.Start(ctx)
	for m := int64(0); m < 6; m++ {
		if err := c.Step(ctx); err != nil {
			f.Fatal(err)
		}
	}
	if err := c.TrainAll(ctx); err != nil {
		f.Fatal(err)
	}
	// Quiesce the ingest workers: receiving candidates only reads trained
	// site state, and a goroutine-free process keeps the fuzz engine's
	// coverage measurements stable.
	c.Stop()
	site := c.Sites()[0]

	// Seeds: a valid classifier-only export, a full bundle, a truncation
	// of each, and plain garbage.
	peer := c.Sites()[1]
	if id := peer.Registry().ChampionID(); id != "" {
		if good, err := peer.Registry().ExportClassifier(id); err == nil {
			f.Add(good)
			f.Add(good[:len(good)/2])
		}
		if _, full, err := peer.Registry().Get(id); err == nil {
			f.Add(full)
			f.Add(full[:len(full)/2])
		}
	}
	f.Add([]byte(nil))
	f.Add([]byte(`{"version":1,"kind":"full"}`))
	f.Add([]byte("garbage"))

	seqBefore, idBefore := site.Pipeline().ActiveModel()
	versionsBefore := len(site.Registry().List())
	champBefore := site.Registry().ChampionID()

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := site.ReceiveCandidate(1, data)
		if err == nil && !sc.Invalid {
			// Only a classifier-only bundle may score; re-vet to prove it.
			if _, verr := VetBundle(data); verr != nil {
				t.Fatalf("scored a bundle VetBundle refuses: %v", verr)
			}
		}
		if info, ierr := core.InspectBundle(data); ierr == nil && info.Kind != core.BundleClassifierOnly {
			if err == nil && !sc.Invalid {
				t.Fatalf("%s bundle accepted; classifier-only required", info.Kind)
			}
		}
		// Receiving never mutates serving state.
		if seq, id := site.Pipeline().ActiveModel(); seq != seqBefore || id != idBefore {
			t.Fatalf("active model changed: %d/%s -> %d/%s", seqBefore, idBefore, seq, id)
		}
		if n := len(site.Registry().List()); n != versionsBefore {
			t.Fatalf("registry grew: %d -> %d versions", versionsBefore, n)
		}
		if champ := site.Registry().ChampionID(); champ != champBefore {
			t.Fatalf("champion pointer moved: %s -> %s", champBefore, champ)
		}
	})
}
