package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/ixp-scrubber/ixpscrubber/internal/ixpsim"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	modelreg "github.com/ixp-scrubber/ixpscrubber/internal/registry"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// clock is the shared virtual clock (unix seconds), advanced only by the
// cluster's driving goroutine and read by every pipeline.
type clock struct{ v atomic.Int64 }

func (c *clock) Set(t int64) { c.v.Store(t) }
func (c *clock) Now() int64  { return c.v.Load() }

// Site is one scrubber vantage point: its traffic generator, its ingest
// shard (the full ixpsim pipeline) and its model registry.
type Site struct {
	Name  string
	Index int

	prof synth.Profile
	gen  *synth.Generator
	pipe *ixpsim.Pipeline
	reg  *modelreg.Registry
	dir  string

	// Injection accounting: what the settled pipeline must have absorbed.
	// routed is atomic because the metrics scrape reads it concurrently
	// with the driving goroutine; the rest stays on the driving goroutine.
	expBatches uint64
	expIngest  uint64
	routed     atomic.Uint64
	ingestBase uint64 // balancer count carried in from a restored checkpoint

	// Per-minute chained digests of the kept (balanced) stream.
	digMu   sync.Mutex
	digests map[int64]uint64
	kept    uint64

	rounds    []RoundDigest
	elections []Election

	flowBuf []synth.Flow
	predBuf []int // election verdict scratch, one per site (scored serially)
}

// Pipeline exposes the site's production pipeline.
func (s *Site) Pipeline() *ixpsim.Pipeline { return s.pipe }

// Registry exposes the site's model registry.
func (s *Site) Registry() *modelreg.Registry { return s.reg }

// Profile returns the site's traffic profile.
func (s *Site) Profile() synth.Profile { return s.prof }

// Routed reports how many records the partitioner routed to this site.
func (s *Site) Routed() uint64 { return s.routed.Load() }

// Elections returns the site's election history.
func (s *Site) Elections() []Election { return s.elections }

func (s *Site) keepHook(r netflow.Record) {
	m := r.Timestamp / 60
	s.digMu.Lock()
	d, ok := s.digests[m]
	if !ok {
		d = netflow.FNVOffset
	}
	s.digests[m] = netflow.FoldRecord(d, &r)
	s.kept++
	s.digMu.Unlock()
}

// settle waits until the site's queue and balancer have absorbed every
// record routed to it. Mirrors the chaos harness discipline: per-minute
// settling is what makes batch boundaries and RNG draws replayable.
func (s *Site) settle(ctx context.Context) error {
	dropStats := func() (records, batches uint64) {
		if d := s.pipe.Dropper(); d != nil {
			st := d.Stats()
			return st.Dropped, st.FullyDroppedBatches
		}
		return 0, 0
	}
	qs := s.pipe.QueueStats()
	if err := ixpsim.PollUntil(ctx, func() bool {
		_, dropBatches := dropStats()
		return qs.BatchesIn.Load()+qs.DroppedBatches.Load()+dropBatches >= s.expBatches
	}); err != nil {
		return fmt.Errorf("settling batches: %w", err)
	}
	if err := ixpsim.PollUntil(ctx, func() bool {
		ing := s.pipe.Ingested() - s.ingestBase
		dropRecords, _ := dropStats()
		return ing+qs.DroppedRecords.Load()+dropRecords >= s.expIngest &&
			qs.BatchesOut.Load() == qs.BatchesIn.Load() &&
			qs.RecordsOut.Load() == ing
	}); err != nil {
		return fmt.Errorf("settling queue: %w", err)
	}
	return nil
}

// RoundDigest summarizes one site training round for comparison.
type RoundDigest struct {
	Minute     int64 // relative minute the round ran after
	Skipped    bool
	Records    int
	Aggregates int
	RulesMined int
	Flagged    []string
	ACLDigest  uint64
	Seq        uint64
	Promoted   bool
}

func (s *Site) recordRound(minute int64, round *ixpsim.Round) {
	rd := RoundDigest{
		Minute:     minute,
		Skipped:    round.Skipped,
		Records:    round.Records,
		Aggregates: round.Aggregates,
		RulesMined: round.RulesMined,
		ACLDigest:  netflow.FoldString(netflow.FNVOffset, round.ACLText),
		Seq:        round.Seq,
		Promoted:   round.Promoted,
	}
	for _, t := range round.Flagged {
		rd.Flagged = append(rd.Flagged, t.String())
	}
	s.rounds = append(s.rounds, rd)
}
