package cluster

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/netip"
	"strings"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
	modelreg "github.com/ixp-scrubber/ixpscrubber/internal/registry"
)

// script is the standard deterministic drive: minutes of traffic with
// training and gossip rounds at fixed relative minutes.
type script struct {
	Minutes  int64
	TrainAt  map[int64]bool
	GossipAt map[int64]bool
}

func defaultScript() script {
	return script{
		Minutes:  8,
		TrainAt:  map[int64]bool{5: true, 7: true},
		GossipAt: map[int64]bool{5: true, 7: true},
	}
}

// runScript builds a cluster, drives the script, and returns the cluster
// still running (caller collects outcomes / inspects sites) plus every
// gossip report.
func runScript(t testing.TB, cfg Config, sc script) (*Cluster, []*GossipReport) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Stop)
	ctx := context.Background()
	c.Start(ctx)
	var reports []*GossipReport
	for m := int64(0); m < sc.Minutes; m++ {
		if err := c.Step(ctx); err != nil {
			t.Fatalf("Step minute %d: %v", m, err)
		}
		if sc.TrainAt[m] {
			if err := c.TrainAll(ctx); err != nil {
				t.Fatalf("TrainAll minute %d: %v", m, err)
			}
		}
		if sc.GossipAt[m] {
			rep, err := c.Gossip(ctx, GossipOptions{})
			if err != nil {
				t.Fatalf("Gossip minute %d: %v", m, err)
			}
			reports = append(reports, rep)
		}
	}
	return c, reports
}

// TestClusterDeterministic is the tentpole determinism matrix: for every
// seed × site-count cell, runs at worker counts 1 and 4 (and a repeat at
// 1) must produce bit-identical outcomes — same kept-stream digests, same
// round digests, same election scores, same champions everywhere.
func TestClusterDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-site matrix skipped in -short")
	}
	for _, sites := range []int{2, 5} {
		for _, seed := range []uint64{1, 7} {
			t.Run(fmt.Sprintf("sites=%d/seed=%d", sites, seed), func(t *testing.T) {
				t.Parallel()
				keys := map[string]string{}
				for _, run := range []struct {
					name    string
					workers int
				}{{"w1", 1}, {"w4", 4}, {"w1-repeat", 1}} {
					c, _ := runScript(t, Config{Sites: sites, Seed: seed, Workers: run.workers}, defaultScript())
					out := c.Outcome()
					if out.GossipRounds != 2 {
						t.Fatalf("%s: %d gossip rounds, want 2", run.name, out.GossipRounds)
					}
					keys[run.name] = out.Key()
					c.Stop()
				}
				if keys["w1"] != keys["w4"] {
					t.Errorf("outcome differs between 1 and 4 workers:\n--- w1\n%s\n--- w4\n%s", keys["w1"], keys["w4"])
				}
				if keys["w1"] != keys["w1-repeat"] {
					t.Errorf("outcome differs between identical runs:\n--- run1\n%s\n--- run2\n%s", keys["w1"], keys["w1-repeat"])
				}
			})
		}
	}
}

// TestElectionNeverPromotesWorse is the election safety property: across
// seeds, an imported bundle never wins a site where its local shadow
// score is not strictly better than the incumbent, ties always keep the
// incumbent, and every site ends up serving its own best-scoring option.
func TestElectionNeverPromotesWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed property skipped in -short")
	}
	elections := 0
	for _, seed := range []uint64{1, 2, 3} {
		c, reports := runScript(t, Config{Sites: 3, Seed: seed}, defaultScript())
		for _, rep := range reports {
			for _, el := range rep.Elections {
				if el.Skipped {
					continue
				}
				elections++
				best := el.Incumbent.FBeta
				bestOrigin := el.Incumbent.Origin
				for _, cand := range el.Candidates {
					if cand.Invalid {
						continue
					}
					if cand.FBeta > best {
						best = cand.FBeta
						bestOrigin = cand.Origin
					}
				}
				if el.WinnerOrigin != bestOrigin {
					t.Errorf("seed %d round %d site %d: winner origin %d, argmax is %d",
						seed, el.Round, el.Site, el.WinnerOrigin, bestOrigin)
				}
				if el.Promoted {
					var winner *Score
					for i := range el.Candidates {
						if el.Candidates[i].Origin == el.WinnerOrigin && el.Candidates[i].ID == el.WinnerID {
							winner = &el.Candidates[i]
						}
					}
					if winner == nil {
						t.Fatalf("seed %d: promoted winner %d/%s not among candidates", seed, el.WinnerOrigin, el.WinnerID)
					}
					if winner.Invalid {
						t.Errorf("seed %d: invalid candidate promoted at site %d", seed, el.Site)
					}
					if !(winner.FBeta > el.Incumbent.FBeta) {
						t.Errorf("seed %d round %d site %d: promoted import scored %v vs incumbent %v — never promote non-strictly-better",
							seed, el.Round, el.Site, winner.FBeta, el.Incumbent.FBeta)
					}
				} else if el.WinnerOrigin != el.Site {
					t.Errorf("seed %d: not promoted but winner origin %d != site %d", seed, el.WinnerOrigin, el.Site)
				}
			}
		}
		c.Stop()
	}
	if elections == 0 {
		t.Fatal("property never exercised: no elections ran")
	}
}

// TestGossipMatchesOfflineExportImport pins the live transfer path to the
// offline exp_geo recipe: the bundle bytes a gossip round puts on the
// wire must be byte-identical to registry.ExportClassifier invoked
// directly, and every election score must be bit-identical to importing
// the bundle into a fresh registry, loading it, re-binding it to the
// destination's WoE encoder and running the offline Evaluate path on the
// same window.
func TestGossipMatchesOfflineExportImport(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-site equivalence skipped in -short")
	}
	c, reports := runScript(t, Config{Sites: 3, Seed: 1}, script{
		Minutes:  6,
		TrainAt:  map[int64]bool{5: true},
		GossipAt: map[int64]bool{5: true},
	})
	defer c.Stop()
	if len(reports) != 1 {
		t.Fatalf("%d gossip reports, want 1", len(reports))
	}
	rep := reports[0]
	if len(rep.Exports) != 3 {
		t.Fatalf("%d exports, want 3 (every site trained)", len(rep.Exports))
	}
	ctx := context.Background()

	// The wire bytes are exactly what the registry Export path produces.
	for _, ex := range rep.Exports {
		src := c.Sites()[ex.Origin]
		direct, err := src.Registry().ExportClassifier(ex.ID)
		if err != nil {
			t.Fatalf("direct export %s: %v", ex.ID, err)
		}
		if !bytes.Equal(direct, ex.Bundle) {
			t.Errorf("site %s: gossip bundle differs from direct ExportClassifier (%d vs %d bytes)",
				src.Name, len(ex.Bundle), len(direct))
		}
		info, err := core.InspectBundle(ex.Bundle)
		if err != nil {
			t.Fatalf("inspecting export: %v", err)
		}
		if info.Kind != core.BundleClassifierOnly {
			t.Errorf("site %s exported a %s bundle; only classifier-only may travel", src.Name, info.Kind)
		}
	}

	exportByOrigin := map[int]Export{}
	for _, ex := range rep.Exports {
		exportByOrigin[ex.Origin] = ex
	}
	var localSum, importSum float64
	var localN, importN int
	for _, el := range rep.Elections {
		if el.Skipped {
			t.Fatalf("site %d skipped its election", el.Site)
		}
		dst := c.Sites()[el.Site]
		// Rebuild the destination's scoring basis the offline way. The
		// trainer has not refit since the round before this gossip, so the
		// window aggregates are exactly what elect scored.
		trainer := dst.Pipeline().Scrubber()
		aggs := trainer.Aggregate(dst.Pipeline().WindowRecords(), nil)
		localSum += el.Incumbent.FBeta
		localN++
		for _, cand := range el.Candidates {
			if cand.Invalid {
				t.Fatalf("healthy round produced invalid candidate: %s", cand.Err)
			}
			importSum += cand.FBeta
			importN++
			// Offline path: Import into a fresh registry, load, re-bind,
			// Evaluate — the exp_geo panel-3 recipe.
			freshDir := t.TempDir()
			fresh, err := modelreg.Open(freshDir, modelreg.Options{})
			if err != nil {
				t.Fatalf("fresh registry: %v", err)
			}
			imp, err := fresh.ImportClassifier(ctx, exportByOrigin[cand.Origin].Bundle, modelreg.Meta{Parent: cand.ID})
			if err != nil {
				t.Fatalf("offline import: %v", err)
			}
			_, transferred, err := fresh.LoadScrubber(imp.ID)
			if err != nil {
				t.Fatalf("offline load: %v", err)
			}
			conf, err := transferred.WithEncoder(trainer.Encoder()).Evaluate(aggs)
			if err != nil {
				t.Fatalf("offline evaluate: %v", err)
			}
			if got := conf.FBeta(0.5); math.Float64bits(got) != math.Float64bits(cand.FBeta) {
				t.Errorf("site %d candidate from %d: live election score %v != offline Export/Import score %v",
					el.Site, cand.Origin, cand.FBeta, got)
			}
		}
	}
	// The tracked fig12 gap shape, exercised from the cluster side: a
	// classifier-only transfer scored on foreign traffic loses, on
	// average, to the model trained on that traffic. If imports ever beat
	// incumbents wholesale the gap silently healed (see
	// TestFig12ClassifierOnlyGap for the offline pin of the same shape).
	if localN == 0 || importN == 0 {
		t.Fatal("no scores collected")
	}
	localMean, importMean := localSum/float64(localN), importSum/float64(importN)
	if importMean >= localMean {
		t.Errorf("fig12 gap shape: imported mean Fβ %.4f >= local mean %.4f — classifier-only gap healed from the cluster side", importMean, localMean)
	}
}

// TestPartitionRouting: with disjoint member spaces every generated
// record routes back to the site whose profile generated it, and
// out-of-space targets hash deterministically within range.
func TestPartitionRouting(t *testing.T) {
	c, _ := runScript(t, Config{Sites: 3, Seed: 1}, script{Minutes: 3})
	defer c.Stop()
	for _, s := range c.Sites() {
		if s.Routed() == 0 {
			t.Fatalf("site %s: no records routed", s.Name)
		}
		if got := s.Pipeline().Ingested(); got != s.Routed() {
			t.Errorf("site %s: ingested %d != routed %d", s.Name, got, s.Routed())
		}
	}
	// Every site's own traffic lands at that site: routing by target IP is
	// the identity on well-formed per-profile traffic.
	var total uint64
	for _, s := range c.Sites() {
		total += s.Routed()
	}
	var generated uint64
	for _, s := range c.Sites() {
		generated += s.Pipeline().Ingested()
	}
	if total != generated {
		t.Errorf("routed %d != generated %d", total, generated)
	}
	// Unknown targets (no member owns them) hash into range, stably.
	outside := netip.MustParseAddr("203.0.113.77")
	first := c.part.SiteFor(outside)
	if first < 0 || first >= len(c.Sites()) {
		t.Fatalf("hash routing out of range: %d", first)
	}
	for i := 0; i < 5; i++ {
		if got := c.part.SiteFor(outside); got != first {
			t.Fatalf("hash routing unstable: %d then %d", first, got)
		}
	}
}

// TestTornImportDoesNotPoisonElection: corrupting one origin's bundle in
// flight degrades exactly that candidate at the destination — the rest of
// the election proceeds, the rejected transfer is counted, and the
// destination's serving state is what it would be without the torn
// candidate.
func TestTornImportDoesNotPoisonElection(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-site scenario skipped in -short")
	}
	cfg := Config{Sites: 3, Seed: 1}
	sc := script{Minutes: 6, TrainAt: map[int64]bool{5: true}}

	// Reference: a healthy gossip round.
	ref, _ := runScript(t, cfg, sc)
	refRep, err := ref.Gossip(context.Background(), GossipOptions{})
	if err != nil {
		t.Fatalf("reference gossip: %v", err)
	}
	ref.Stop()

	// Faulty: the bundle from origin 1 tears on its way to site 0.
	torn, _ := runScript(t, cfg, sc)
	defer torn.Stop()
	tornRep, err := torn.Gossip(context.Background(), GossipOptions{
		Corrupt: func(origin, dst int, bundle []byte) []byte {
			if origin == 1 && dst == 0 {
				half := append([]byte(nil), bundle[:len(bundle)/2]...)
				return half
			}
			return bundle
		},
	})
	if err != nil {
		t.Fatalf("torn gossip must not error the round: %v", err)
	}
	sawInvalid := false
	for i, el := range tornRep.Elections {
		for _, cand := range el.Candidates {
			if el.Site == 0 && cand.Origin == 1 {
				if !cand.Invalid {
					t.Error("torn candidate was not rejected")
				}
				sawInvalid = true
				continue
			}
			if cand.Invalid {
				t.Errorf("site %d candidate from %d invalidated by someone else's torn transfer: %s", el.Site, cand.Origin, cand.Err)
			}
			// Valid candidates score identically to the reference round.
			for _, refCand := range refRep.Elections[i].Candidates {
				if refCand.Origin == cand.Origin && math.Float64bits(refCand.FBeta) != math.Float64bits(cand.FBeta) {
					t.Errorf("site %d candidate from %d: score changed %v -> %v", el.Site, cand.Origin, refCand.FBeta, cand.FBeta)
				}
			}
		}
	}
	if !sawInvalid {
		t.Fatal("torn transfer never reached the election")
	}
	if torn.Outcome().Rejected != 1 {
		t.Errorf("rejected = %d, want 1", torn.Outcome().Rejected)
	}
	// Elections away from the torn edge are bit-identical to the healthy
	// reference; site 0 decides among the candidates it could verify.
	for i, el := range tornRep.Elections {
		if el.Site == 0 {
			continue
		}
		if got, want := renderElection(&el), renderElection(&refRep.Elections[i]); got != want {
			t.Errorf("site %d election drifted under someone else's torn transfer:\n%s\nwant:\n%s", el.Site, got, want)
		}
	}
}

// TestVetBundle: the import surface refuses full bundles (foreign WoE
// tables must not overwrite local knowledge) and garbage.
func TestVetBundle(t *testing.T) {
	c, reports := runScript(t, Config{Sites: 2, Seed: 1}, script{
		Minutes: 6, TrainAt: map[int64]bool{5: true}, GossipAt: map[int64]bool{5: true},
	})
	defer c.Stop()
	if len(reports[0].Exports) == 0 {
		t.Fatal("no exports")
	}
	good := reports[0].Exports[0].Bundle
	if _, err := VetBundle(good); err != nil {
		t.Fatalf("classifier-only export rejected: %v", err)
	}
	// Full bundle: grab the champion bundle straight from a registry.
	id := c.Sites()[0].Registry().ChampionID()
	_, full, err := c.Sites()[0].Registry().Get(id)
	if err != nil {
		t.Fatalf("champion bundle: %v", err)
	}
	if _, err := VetBundle(full); err == nil || !strings.Contains(err.Error(), "classifier-only") {
		t.Errorf("full bundle not refused: %v", err)
	}
	if _, err := VetBundle([]byte("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := VetBundle(good[:len(good)/3]); err == nil {
		t.Error("truncated bundle accepted")
	}
}

// TestClusterMetrics: the labeled cluster families publish per-site and
// rolled-up drift/reduction/drop state.
func TestClusterMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-site run skipped in -short")
	}
	reg := obs.NewRegistry()
	c, _ := runScript(t, Config{Sites: 2, Seed: 1, Metrics: reg}, defaultScript())
	defer c.Stop()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := b.String()
	for _, want := range []string{
		"ixps_cluster_sites 2",
		"ixps_cluster_gossip_rounds_total 2",
		`ixps_cluster_site_ingested_records{site="IXP-CE1"}`,
		`ixps_cluster_site_reduction_ratio{site="IXP-US1"}`,
		`ixps_cluster_site_champion_seq{site="IXP-CE1"}`,
		"ixps_cluster_reduction_ratio ",
		"ixps_cluster_drift_psi_max ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
