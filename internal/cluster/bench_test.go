package cluster

import (
	"context"
	"fmt"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/ml"
)

// benchCluster builds a trained n-site cluster: 6 minutes of traffic and
// one training round everywhere, so every site has a champion to export
// and a populated window to score on.
func benchCluster(b *testing.B, n int) *Cluster {
	b.Helper()
	c, err := New(Config{Sites: n, Seed: 1, Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Stop)
	ctx := context.Background()
	c.Start(ctx)
	for m := int64(0); m < 6; m++ {
		if err := c.Step(ctx); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.TrainAll(ctx); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkClusterIngest drives one simulated minute per op — generate,
// partition by target IP, emit into every site's shard, settle — at the
// paper's site counts. The per-op record count rides along as a metric so
// the trajectory tracks per-site throughput, not just wall time.
func BenchmarkClusterIngest(b *testing.B) {
	for _, sites := range []int{1, 2, 5} {
		b.Run(fmt.Sprintf("sites=%d", sites), func(b *testing.B) {
			c := benchCluster(b, sites)
			ctx := context.Background()
			var before uint64
			for _, s := range c.Sites() {
				before += s.Routed()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Step(ctx); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			var after uint64
			for _, s := range c.Sites() {
				after += s.Routed()
			}
			recs := float64(after-before) / float64(b.N)
			b.ReportMetric(recs, "records/op")
			b.ReportMetric(recs/b.Elapsed().Seconds()*float64(b.N), "records/s")
		})
	}
}

// BenchmarkGossipRound is one full coordinator round on a 2-site cluster:
// champion export through the registry, cross-delivery, and an election
// at each site on its own window.
func BenchmarkGossipRound(b *testing.B) {
	c := benchCluster(b, 2)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Gossip(ctx, GossipOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncumbentScore is the election's fixed cost: rebuild the
// scoring basis (aggregate + WoE-encode the window) and score the
// incumbent once. BenchmarkElectionScore adds one imported candidate on
// the same shared basis — the healthy-round path, where the coordinator
// parsed the bundle once for the whole round and each destination pays
// only a shallow encoder re-bind plus a zero-alloc batch predict. The
// paced gate in scripts/bench.sh holds their ratio under 2×: shared
// parsing and shared encoding keep candidate scoring marginal, like the
// PR 5 shadow path.
func BenchmarkIncumbentScore(b *testing.B) {
	c := benchCluster(b, 2)
	benchScore(b, c, false)
}

func BenchmarkElectionScore(b *testing.B) {
	c := benchCluster(b, 2)
	benchScore(b, c, true)
}

func benchScore(b *testing.B, c *Cluster, withCandidate bool) {
	b.Helper()
	s := c.Sites()[0]
	peer := c.Sites()[1]
	bundle, err := peer.Registry().ExportClassifier(peer.Registry().ChampionID())
	if err != nil {
		b.Fatal(err)
	}
	cand, err := VetBundle(bundle)
	if err != nil {
		b.Fatal(err)
	}
	champ := s.pipe.ChampionScrubber()
	if champ == nil {
		b.Fatal("no champion")
	}
	trainer := s.pipe.Scrubber()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs := s.pipe.WindowRecords()
		aggs := trainer.Aggregate(recs, nil)
		x := trainer.EncodeFeatures(aggs)
		y := make([]int, len(aggs))
		for j, a := range aggs {
			if a.Label {
				y[j] = 1
			}
		}
		if cap(s.predBuf) < len(x) {
			s.predBuf = make([]int, len(x))
		}
		pred := s.predBuf[:len(x)]
		if err := champ.PredictEncodedInto(x, pred); err != nil {
			b.Fatal(err)
		}
		_ = ml.Confuse(y, pred).FBeta(0.5)
		if withCandidate {
			sc := s.scoreLoaded(1, "bench", cand, x, y, pred)
			if sc.Invalid {
				b.Fatalf("candidate invalid: %s", sc.Err)
			}
		}
	}
}
