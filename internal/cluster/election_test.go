package cluster

import (
	"context"
	"testing"

	modelreg "github.com/ixp-scrubber/ixpscrubber/internal/registry"
)

// TestStaleChampionAdoptsFreshImport exercises the promotion half of the
// election: a site whose model went stale (trained once on a tiny early
// window, never refit) imports and serves a fresher vantage point's
// classifier when that classifier shadow-scores strictly better on the
// stale site's own traffic. The winning bundle lands in the site registry
// as an imported version and the champion pointer flips to it.
func TestStaleChampionAdoptsFreshImport(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-site scenario skipped in -short")
	}
	cfg := Config{Sites: 3, Seed: 3, Dir: t.TempDir()}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	ctx := context.Background()
	c.Start(ctx)
	for m := int64(0); m < 12; m++ {
		if err := c.Step(ctx); err != nil {
			t.Fatal(err)
		}
		switch m {
		case 2:
			// Site 0 trains once, early, on a thin window — then goes stale.
			if err := c.TrainSites(ctx, 0); err != nil {
				t.Fatal(err)
			}
		case 6, 10:
			if err := c.TrainSites(ctx, 1, 2); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep, err := c.Gossip(ctx, GossipOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var stale *Election
	for i := range rep.Elections {
		if rep.Elections[i].Site == 0 {
			stale = &rep.Elections[i]
		}
	}
	if stale == nil || stale.Skipped {
		t.Fatal("stale site did not hold an election")
	}
	if !stale.Promoted {
		t.Fatalf("stale champion survived against fresher imports: incumbent %v, candidates %v",
			stale.Incumbent.FBeta, stale.Candidates)
	}
	if stale.WinnerOrigin == 0 {
		t.Fatal("promoted winner claims local origin")
	}

	// The serving path actually switched: the site's active model is the
	// imported bundle and the registry champion pointer followed.
	site := c.Sites()[0]
	_, activeID := site.Pipeline().ActiveModel()
	if activeID == "" {
		t.Fatal("no active model after promotion")
	}
	if got := site.Registry().ChampionID(); got != activeID {
		t.Errorf("registry champion %s != serving model %s", got, activeID)
	}
	m, _, err := site.Registry().Get(activeID)
	if err != nil {
		t.Fatalf("active model not in registry: %v", err)
	}
	if m.Source != modelreg.SourceImported {
		t.Errorf("active model source = %q, want %q", m.Source, modelreg.SourceImported)
	}
	if c.Outcome().Promotions != 1 {
		t.Errorf("promotions = %d, want 1", c.Outcome().Promotions)
	}

	// Fresh sites keep their own champions: their incumbents scored a
	// perfect Fβ on the window they just trained on.
	for i := range rep.Elections {
		el := &rep.Elections[i]
		if el.Site == 0 {
			continue
		}
		if el.Promoted {
			t.Errorf("freshly trained site %d replaced its own model", el.Site)
		}
	}

	// The cluster keeps running after a cross-site promotion — the imported
	// champion classifies the next minutes without error.
	for m := int64(12); m < 14; m++ {
		if err := c.Step(ctx); err != nil {
			t.Fatalf("post-promotion step: %v", err)
		}
	}
	if site.Pipeline().ChampionScrubber() == nil {
		t.Fatal("imported champion not serving")
	}
}
