package cluster

import (
	"github.com/ixp-scrubber/ixpscrubber/internal/drift"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
)

// clusterMetrics aggregates the cluster-wide view: per-site gauges labeled
// by vantage point, coordinator counters, and drift/reduction/drop rollups
// computed at scrape time from live pipeline state. Site pipelines do not
// register their own (unlabeled) families — N sites on one registry would
// collide — so the labeled cluster families are the observability surface.
type clusterMetrics struct {
	gossipRounds *obs.Counter
	exchanged    *obs.Counter
	rejected     *obs.Counter
	promotions   *obs.Counter
}

func (c *Cluster) registerMetrics(r *obs.Registry) *clusterMetrics {
	m := &clusterMetrics{
		gossipRounds: r.Counter("ixps_cluster_gossip_rounds_total",
			"Coordinator gossip rounds completed."),
		exchanged: r.Counter("ixps_cluster_bundles_exchanged_total",
			"Classifier-only bundles delivered and scored across sites."),
		rejected: r.Counter("ixps_cluster_imports_rejected_total",
			"Received bundles that failed vetting (torn, garbage, or full-bundle)."),
		promotions: r.Counter("ixps_cluster_elections_promoted_total",
			"Elections won by an imported bundle (cross-site promotion)."),
	}
	r.GaugeFunc("ixps_cluster_sites", "Scrubber sites in this cluster.",
		func() float64 { return float64(len(c.sites)) })

	ingested := r.GaugeVec("ixps_cluster_site_ingested_records",
		"Records the site's balancer ingested.", "site")
	routed := r.GaugeVec("ixps_cluster_site_routed_records",
		"Records the target-IP partitioner routed to the site.", "site")
	reduction := r.GaugeVec("ixps_cluster_site_reduction_ratio",
		"Balancer kept/ingested ratio at the site (the paper's data reduction).", "site")
	dropped := r.GaugeVec("ixps_cluster_site_dropped_records",
		"Records dropped at the site: full-queue drops plus mitigation fast-path drops.", "site")
	champSeq := r.GaugeVec("ixps_cluster_site_champion_seq",
		"Serving model sequence at the site (0 = none).", "site")
	psiMax := r.GaugeVec("ixps_cluster_site_drift_psi_max",
		"Maximum per-feature PSI at the site vs its champion's training reference.", "site")
	for _, s := range c.sites {
		s := s
		ingested.WithFunc(func() float64 { return float64(s.pipe.Ingested()) }, s.Name)
		routed.WithFunc(func() float64 { return float64(s.routed.Load()) }, s.Name)
		reduction.WithFunc(func() float64 {
			st := s.pipe.BalanceStats()
			if st.In == 0 {
				return 0
			}
			return float64(st.Out) / float64(st.In)
		}, s.Name)
		dropped.WithFunc(func() float64 {
			n := s.pipe.QueueStats().DroppedRecords.Load()
			if d := s.pipe.Dropper(); d != nil {
				n += d.Stats().Dropped
			}
			return float64(n)
		}, s.Name)
		champSeq.WithFunc(func() float64 {
			seq, _ := s.pipe.ActiveModel()
			return float64(seq)
		}, s.Name)
		psiMax.WithFunc(func() float64 { return s.pipe.DriftStats().FeaturePSIMax }, s.Name)
	}

	merged := func() drift.Stats {
		all := make([]drift.Stats, 0, len(c.sites))
		for _, s := range c.sites {
			all = append(all, s.pipe.DriftStats())
		}
		return drift.Merge(all)
	}
	r.GaugeFunc("ixps_cluster_drift_psi_max",
		"Worst per-feature PSI across all sites.",
		func() float64 { return merged().FeaturePSIMax })
	r.GaugeFunc("ixps_cluster_drift_retrain_recommended",
		"1 when any site crossed a drift threshold, else 0.",
		func() float64 {
			if merged().RetrainRecommended {
				return 1
			}
			return 0
		})
	r.GaugeFunc("ixps_cluster_reduction_ratio",
		"Cluster-wide balancer kept/ingested ratio.",
		func() float64 {
			var in, out uint64
			for _, s := range c.sites {
				st := s.pipe.BalanceStats()
				in += st.In
				out += st.Out
			}
			if in == 0 {
				return 0
			}
			return float64(out) / float64(in)
		})
	return m
}

// publishGossip folds one gossip round's results into the counters.
func (m *clusterMetrics) publishGossip(rep *GossipReport) {
	m.gossipRounds.Inc()
	for i := range rep.Elections {
		e := &rep.Elections[i]
		for j := range e.Candidates {
			if e.Candidates[j].Invalid {
				m.rejected.Inc()
			} else {
				m.exchanged.Inc()
			}
		}
		if e.Promoted {
			m.promotions.Inc()
		}
	}
}
