package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// coordinatorCheckpoint is the coordinator's own durable state. Site
// pipeline state (balancer RNG, window, trainer bundle, champion) is
// checkpointed by each pipeline; the registries are already durable. What
// the coordinator must remember is how far simulated time got and its
// gossip accounting — restore replays the generators up to Minute so
// every RNG stream resumes mid-sequence exactly where the crash left it.
type coordinatorCheckpoint struct {
	SchemaVersion int    `json:"schema_version"`
	Minute        int64  `json:"minute"` // relative minutes completed
	GossipRounds  int    `json:"gossip_rounds"`
	Exchanged     uint64 `json:"exchanged"`
	Rejected      uint64 `json:"rejected"`
	Promotions    uint64 `json:"promotions"`
}

const coordinatorSchemaVersion = 1

func (c *Cluster) checkpointPath() string {
	return filepath.Join(c.cfg.Dir, "cluster-checkpoint.json")
}

// SaveCheckpoint atomically persists the coordinator state. Site
// pipelines checkpoint themselves after every training round.
func (c *Cluster) SaveCheckpoint(ctx context.Context) error {
	cp := coordinatorCheckpoint{
		SchemaVersion: coordinatorSchemaVersion,
		Minute:        c.minute,
		GossipRounds:  c.gossipRounds,
		Exchanged:     c.exchanged,
		Rejected:      c.rejected,
		Promotions:    c.promotions,
	}
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("cluster: encoding checkpoint: %w", err)
	}
	return c.cw.Publish(ctx, c.checkpointPath(), data)
}

// restore resumes from what a crashed coordinator left in Dir: coordinator
// counters from the checkpoint file, every site pipeline from its own
// checkpoint (balancer mid-bin, window, trainer) with its champion
// re-resolved from its registry (so an elected import keeps serving), and
// every generator fast-forwarded through the already-simulated minutes so
// the traffic after the crash is bit-identical to a run that never
// crashed.
func (c *Cluster) restore() error {
	data, err := os.ReadFile(c.checkpointPath())
	if err != nil {
		return fmt.Errorf("cluster: no coordinator checkpoint to restore: %w", err)
	}
	var cp coordinatorCheckpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return fmt.Errorf("cluster: decoding checkpoint: %w", err)
	}
	if cp.SchemaVersion != coordinatorSchemaVersion {
		return fmt.Errorf("cluster: checkpoint schema %d, want %d", cp.SchemaVersion, coordinatorSchemaVersion)
	}
	for _, s := range c.sites {
		restored, err := s.pipe.RestoreCheckpoint()
		if err != nil {
			return fmt.Errorf("cluster: restoring site %s: %w", s.Name, err)
		}
		if !restored {
			return fmt.Errorf("cluster: site %s has no checkpoint in %s", s.Name, s.dir)
		}
		// The restored pipeline reports the checkpoint's cumulative ingest
		// count, but this run's queue starts from zero; settle compares
		// against the delta.
		s.ingestBase = s.pipe.Ingested()
	}
	// Replay the generator RNG streams (traffic and blackhole schedules)
	// through the minutes the crashed run already simulated.
	for m := int64(0); m < cp.Minute; m++ {
		abs := c.cfg.StartMin + m
		for _, s := range c.sites {
			s.flowBuf = s.gen.GenerateMinute(abs, s.flowBuf[:0])
			s.gen.Events()
		}
	}
	c.minute = cp.Minute
	c.gossipRounds = cp.GossipRounds
	c.exchanged = cp.Exchanged
	c.rejected = cp.Rejected
	c.promotions = cp.Promotions
	if cp.Minute > 0 {
		c.clock.Set((c.cfg.StartMin + cp.Minute - 1) * 60)
	}
	return nil
}
