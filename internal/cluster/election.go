package cluster

import (
	"bytes"
	"context"
	"fmt"

	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml"
)

// GossipOptions scripts one gossip round's faults; the zero value is a
// healthy round. Chaos scenarios use the hooks, production uses none.
type GossipOptions struct {
	// Exclude partitions sites away from this round: an excluded site
	// neither exports its champion nor receives candidates — gossip stalls
	// for it while local serving continues on its last-good champion.
	Exclude map[int]bool
	// Corrupt mutates a bundle in flight from origin to dst (a torn
	// transfer). Returning nil drops the delivery entirely. The corrupted
	// candidate must fail vetting at the destination without poisoning the
	// rest of the election.
	Corrupt func(origin, dst int, bundle []byte) []byte
}

// Export is one site's champion leaving on the wire, classifier-only.
type Export struct {
	Origin int
	ID     string // content-addressed registry id
	Bundle []byte
}

// Score is one bundle's local shadow evaluation at a destination site:
// Fβ(0.5) of its verdicts on the site's WoE-encoded window against the
// generator's blackhole ground truth — the paper's model-quality metric
// (β=0.5 weights false positives, the expensive mistake for a scrubber).
type Score struct {
	Origin int
	ID     string
	FBeta  float64
	// Invalid marks a candidate that failed vetting (torn transfer, full
	// bundle, garbage); it is excluded from election.
	Invalid bool
	Err     string `json:",omitempty"`
}

// Election is one site's champion decision in one gossip round.
type Election struct {
	Round  int
	Minute int64 // relative minute the election ran after
	Site   int
	// Skipped: the site has no champion yet or an empty scoring window.
	Skipped    bool
	Incumbent  Score
	Candidates []Score
	// WinnerOrigin/WinnerID name the elected champion; the incumbent wins
	// all ties, so Promoted is true only when an import scored strictly
	// better locally.
	WinnerOrigin int
	WinnerID     string
	Promoted     bool
}

// GossipReport is everything one gossip round produced, for equivalence
// testing against the offline exp_geo transfer path.
type GossipReport struct {
	Round     int
	Minute    int64
	Exports   []Export
	Elections []Election
}

// Gossip runs one coordinator round: every reachable site's champion is
// exported classifier-only through its registry (the existing fig12
// Export path), delivered to every other reachable site, and each
// destination elects the bundle that shadow-scores best on its local
// WoE-encoded traffic — strictly better than the incumbent, or the
// incumbent stays. Winning imports go through the registry Import path
// and promote atomically.
func (c *Cluster) Gossip(ctx context.Context, opt GossipOptions) (*GossipReport, error) {
	c.gossipRounds++
	rep := &GossipReport{Round: c.gossipRounds, Minute: c.minute}
	for _, s := range c.sites {
		if opt.Exclude[s.Index] {
			continue
		}
		id := s.reg.ChampionID()
		if id == "" {
			continue // nothing trained here yet
		}
		bundle, err := s.reg.ExportClassifier(id)
		if err != nil {
			return nil, fmt.Errorf("cluster: exporting %s champion %s: %w", s.Name, id, err)
		}
		rep.Exports = append(rep.Exports, Export{Origin: s.Index, ID: id, Bundle: bundle})
	}
	// Parse each travelling bundle once per round; destinations share the
	// loaded trees and bind their own WoE snapshot with a shallow copy.
	// Faulty deliveries (Corrupt) take the per-edge vetting path instead.
	loaded := make([]*core.Scrubber, len(rep.Exports))
	for i, ex := range rep.Exports {
		s, err := VetBundle(ex.Bundle)
		if err != nil {
			return nil, fmt.Errorf("cluster: export %s from site %d failed vetting: %w", ex.ID, ex.Origin, err)
		}
		loaded[i] = s
	}
	for _, s := range c.sites {
		if opt.Exclude[s.Index] {
			continue
		}
		el, err := s.elect(ctx, c, rep.Exports, loaded, opt)
		if err != nil {
			return nil, fmt.Errorf("cluster: election at %s: %w", s.Name, err)
		}
		rep.Elections = append(rep.Elections, el)
		s.elections = append(s.elections, el)
	}
	if c.metrics != nil {
		c.metrics.publishGossip(rep)
	}
	return rep, nil
}

// elect scores the incumbent and every delivered candidate on one shared
// encoding of the site's window — encode once with the local WoE tables,
// then the PR 8 zero-alloc PredictEncodedInto path per bundle — and
// promotes the best. Ties keep the incumbent; among tied candidates the
// earliest origin wins, so the decision is deterministic.
func (s *Site) elect(ctx context.Context, c *Cluster, exports []Export, loaded []*core.Scrubber, opt GossipOptions) (Election, error) {
	el := Election{Round: c.gossipRounds, Minute: c.minute, Site: s.Index, WinnerOrigin: s.Index}
	champ := s.pipe.ChampionScrubber()
	_, champID := s.pipe.ActiveModel()
	el.WinnerID = champID
	if champ == nil {
		el.Skipped = true
		return el, nil
	}
	trainer := s.pipe.Scrubber()
	recs := s.pipe.WindowRecords()
	aggs := trainer.Aggregate(recs, nil)
	if len(aggs) == 0 {
		el.Skipped = true
		return el, nil
	}
	x := trainer.EncodeFeatures(aggs)
	y := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Label {
			y[i] = 1
		}
	}
	if cap(s.predBuf) < len(x) {
		s.predBuf = make([]int, len(x))
	}
	pred := s.predBuf[:len(x)]
	if err := champ.PredictEncodedInto(x, pred); err != nil {
		return el, fmt.Errorf("scoring incumbent: %w", err)
	}
	el.Incumbent = Score{Origin: s.Index, ID: champID, FBeta: ml.Confuse(y, pred).FBeta(0.5)}

	best := el.Incumbent
	var bestBundle []byte
	for i, ex := range exports {
		if ex.Origin == s.Index {
			continue
		}
		bundle := ex.Bundle
		var sc Score
		if opt.Corrupt != nil {
			// Faulty edge: whatever arrived must be re-vetted here.
			bundle = opt.Corrupt(ex.Origin, s.Index, bundle)
			if bundle == nil {
				continue // dropped in flight
			}
			sc = s.scoreCandidate(ex.Origin, ex.ID, bundle, x, y, pred)
		} else {
			sc = s.scoreLoaded(ex.Origin, ex.ID, loaded[i], x, y, pred)
		}
		el.Candidates = append(el.Candidates, sc)
		if sc.Invalid {
			c.rejected++
			continue
		}
		c.exchanged++
		// Strictly better than the best so far (which starts at the
		// incumbent): an import never wins a site where it is locally
		// worse-or-equal.
		if sc.FBeta > best.FBeta {
			best = sc
			bestBundle = bundle
		}
	}
	if bestBundle != nil {
		if err := s.pipe.ImportClassifier(ctx, bestBundle); err != nil {
			return el, fmt.Errorf("importing winner %s: %w", best.ID, err)
		}
		if err := s.pipe.PromoteChallenger(ctx); err != nil {
			return el, fmt.Errorf("promoting winner %s: %w", best.ID, err)
		}
		el.Promoted = true
		c.promotions++
	}
	el.WinnerOrigin = best.Origin
	el.WinnerID = best.ID
	return el, nil
}

// scoreCandidate vets received bundle bytes and shadow-scores them on the
// shared local encoding. Vetting failures degrade to an Invalid score:
// the site's serving state is untouched and the rest of the election
// proceeds.
func (s *Site) scoreCandidate(origin int, id string, bundle []byte, x [][]float64, y, pred []int) Score {
	cand, err := VetBundle(bundle)
	if err != nil {
		return Score{Origin: origin, ID: id, Invalid: true, Err: err.Error()}
	}
	return s.scoreLoaded(origin, id, cand, x, y, pred)
}

// scoreLoaded shadow-scores an already-vetted candidate: bind the
// travelling trees to the local WoE snapshot (Fig. 12) — the same
// re-binding promotion would apply — then predict on the pre-encoded
// matrix. The bind is a shallow copy, so candidates parsed once per
// gossip round are shared across every destination cheaply.
func (s *Site) scoreLoaded(origin int, id string, cand *core.Scrubber, x [][]float64, y, pred []int) Score {
	sc := Score{Origin: origin, ID: id}
	bound := cand.WithEncoder(s.pipe.Scrubber().Encoder())
	if err := bound.PredictEncodedInto(x, pred); err != nil {
		sc.Invalid = true
		sc.Err = err.Error()
		return sc
	}
	sc.FBeta = ml.Confuse(y, pred).FBeta(0.5)
	return sc
}

// ReceiveCandidate is the coordinator-received-bytes entry point scored
// against the site's current window, promoting nothing. It exists for
// fuzzing the import surface: arbitrary bytes must never panic, full
// bundles must be refused, and garbage must leave every piece of site
// state untouched.
func (s *Site) ReceiveCandidate(origin int, bundle []byte) (Score, error) {
	// Vet before building the scoring basis: garbage must bounce without
	// touching (or paying for) anything else.
	if _, err := VetBundle(bundle); err != nil {
		return Score{Origin: origin, Invalid: true, Err: err.Error()}, err
	}
	champ := s.pipe.ChampionScrubber()
	trainer := s.pipe.Scrubber()
	if champ == nil {
		return Score{Origin: origin}, nil
	}
	recs := s.pipe.WindowRecords()
	aggs := trainer.Aggregate(recs, nil)
	x := trainer.EncodeFeatures(aggs)
	y := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Label {
			y[i] = 1
		}
	}
	if cap(s.predBuf) < len(x) {
		s.predBuf = make([]int, len(x))
	}
	sc := s.scoreCandidate(origin, "", bundle, x, y, s.predBuf[:len(x)])
	if sc.Invalid {
		return sc, fmt.Errorf("%s", sc.Err)
	}
	return sc, nil
}

// VetBundle checks bytes received from a peer: they must parse as a model
// bundle and must be classifier-only — importing another vantage point's
// WoE tables would overwrite local knowledge, the exact thing the §6.4
// transfer path avoids. One parse serves both checks: Load rejects
// garbage, and a loaded bundle that doesn't need an encoder carried a full
// WoE table.
func VetBundle(bundle []byte) (*core.Scrubber, error) {
	s, err := core.Load(bytes.NewReader(bundle))
	if err != nil {
		return nil, fmt.Errorf("cluster: rejecting bundle: %w", err)
	}
	if !s.NeedsEncoder() {
		return nil, fmt.Errorf("cluster: refusing to import %s bundle (classifier-only required)", core.BundleFull)
	}
	return s, nil
}
