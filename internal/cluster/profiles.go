package cluster

import (
	"fmt"

	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// DefaultProfiles returns n scaled-down vantage points, one per paper IXP
// in Table 2 order, shrunk the way the chaos harness shrinks its profile:
// every minute still carries blackholed episodes and training rounds still
// flag targets, but a multi-site multi-minute run finishes in well under a
// second. The five paper profiles have pairwise-distinct seed%90 values,
// which is what keeps their member /24 spaces disjoint — the property the
// target-IP partitioner requires — so without explicit Config.Profiles at
// most five sites are available.
func DefaultProfiles(n int) ([]synth.Profile, error) {
	base := synth.Profiles()
	if n < 1 || n > len(base) {
		return nil, fmt.Errorf("cluster: %d sites out of range (1..%d without explicit profiles)", n, len(base))
	}
	out := make([]synth.Profile, n)
	for i := 0; i < n; i++ {
		p := base[i]
		p.BenignFlowsPerMin = 96
		p.TargetIPs = 48
		p.BenignSrcIPs = 192
		// Denser episodes than the chaos profile: the balancer discards any
		// minute bin without blackholed flows, and a short multi-site run
		// needs every site — whatever its seed — to accumulate a trainable
		// window within a handful of minutes.
		p.EpisodeRatePerMin = 0.8
		p.EpisodeDurMeanMin = 6
		p.AttackFlowsPerMin = 24
		out[i] = p
	}
	return out, nil
}
