// Package netflow defines the sampled flow record model used throughout the
// IXP Scrubber pipeline, a compact binary codec for storing flow datasets,
// and the salted anonymizer applied before any record is persisted.
//
// A Record corresponds to one sampled flow observation as produced by the
// sFlow collector: the L2-L4 header fields of the sampled packet plus the
// sample's scaled-up packet and byte counts for its one-minute bin.
package netflow

import (
	"fmt"
	"net/netip"
	"time"
)

// Record is one sampled flow observation. IP addresses use netip.Addr so
// IPv4 and IPv6 share one model; the codec stores them as 16-byte values.
type Record struct {
	// Timestamp is the start of the observation, unix seconds.
	Timestamp int64
	SrcIP     netip.Addr
	DstIP     netip.Addr
	SrcPort   uint16
	DstPort   uint16
	Protocol  uint8 // IP protocol number
	TCPFlags  uint8
	// Fragment marks a non-first IP fragment (no transport header present).
	Fragment bool
	// SrcMAC identifies the IXP member port the traffic entered on.
	SrcMAC [6]byte
	DstMAC [6]byte
	// Packets and Bytes are sample counts scaled by the sampling rate.
	Packets uint64
	Bytes   uint64
	// SamplingRate records the 1:N packet sampling applied at capture.
	SamplingRate uint32
	// Blackholed is set when DstIP matched an active blackhole announcement
	// at Timestamp. It is the (noisy) training label.
	Blackholed bool
}

// Time returns the record timestamp as a time.Time in UTC.
func (r *Record) Time() time.Time { return time.Unix(r.Timestamp, 0).UTC() }

// Minute returns the one-minute bin index of the record (unix minutes).
// Both the balancing procedure (§3) and the feature aggregation (§5.2.1)
// operate on these bins.
func (r *Record) Minute() int64 { return r.Timestamp / 60 }

// MeanPacketSize returns the average sampled packet size in bytes, one of
// the three ranking metrics of the aggregation step.
func (r *Record) MeanPacketSize() float64 {
	if r.Packets == 0 {
		return 0
	}
	return float64(r.Bytes) / float64(r.Packets)
}

// Key identifies a flow by its 5-tuple plus ingress MAC within a minute bin.
type Key struct {
	Minute   int64
	SrcIP    netip.Addr
	DstIP    netip.Addr
	SrcPort  uint16
	DstPort  uint16
	Protocol uint8
	SrcMAC   [6]byte
}

// Key returns the flow aggregation key of the record.
func (r *Record) Key() Key {
	return Key{
		Minute:   r.Minute(),
		SrcIP:    r.SrcIP,
		DstIP:    r.DstIP,
		SrcPort:  r.SrcPort,
		DstPort:  r.DstPort,
		Protocol: r.Protocol,
		SrcMAC:   r.SrcMAC,
	}
}

// Validate reports structural problems in a record. It is used by ingest
// paths to reject corrupt data early.
func (r *Record) Validate() error {
	switch {
	case !r.SrcIP.IsValid():
		return fmt.Errorf("netflow: record at %d: invalid src ip", r.Timestamp)
	case !r.DstIP.IsValid():
		return fmt.Errorf("netflow: record at %d: invalid dst ip", r.Timestamp)
	case r.Packets == 0:
		return fmt.Errorf("netflow: record at %d: zero packets", r.Timestamp)
	case r.Bytes < r.Packets*20:
		return fmt.Errorf("netflow: record at %d: %d bytes for %d packets below minimum header size",
			r.Timestamp, r.Bytes, r.Packets)
	}
	return nil
}

// String renders the record in a human-readable one-line form.
func (r *Record) String() string {
	label := "benign"
	if r.Blackholed {
		label = "blackholed"
	}
	return fmt.Sprintf("%s %s:%d -> %s:%d proto=%d pkts=%d bytes=%d %s",
		r.Time().Format(time.RFC3339), r.SrcIP, r.SrcPort, r.DstIP, r.DstPort,
		r.Protocol, r.Packets, r.Bytes, label)
}
