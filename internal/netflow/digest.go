package netflow

import "encoding/binary"

// FNV-1a 64-bit parameters. Determinism harnesses (chaos, cluster) chain
// digests record by record, so a per-minute digest is sensitive to record
// content and order — two runs must produce a bit-identical stream, not
// merely a set-identical one, to digest equal.
const (
	FNVOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// FoldBytes mixes p into the running FNV-1a state h.
func FoldBytes(h uint64, p []byte) uint64 {
	for _, c := range p {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// FoldString is FoldBytes over a string, allocation-free.
func FoldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// FoldRecord mixes every field of one flow record into h using a fixed
// binary encoding, so the digest is a pure function of record content.
func FoldRecord(h uint64, r *Record) uint64 {
	var b [75]byte
	binary.BigEndian.PutUint64(b[0:], uint64(r.Timestamp))
	src := r.SrcIP.As16()
	copy(b[8:], src[:])
	dst := r.DstIP.As16()
	copy(b[24:], dst[:])
	binary.BigEndian.PutUint16(b[40:], r.SrcPort)
	binary.BigEndian.PutUint16(b[42:], r.DstPort)
	b[44] = r.Protocol
	b[45] = r.TCPFlags
	if r.Fragment {
		b[46] = 1
	}
	copy(b[47:], r.SrcMAC[:])
	copy(b[53:], r.DstMAC[:])
	binary.BigEndian.PutUint64(b[59:], r.Packets)
	binary.BigEndian.PutUint64(b[67:], r.Bytes)
	h = FoldBytes(h, b[:])
	var tail [5]byte
	binary.BigEndian.PutUint32(tail[0:], r.SamplingRate)
	if r.Blackholed {
		tail[4] = 1
	}
	return FoldBytes(h, tail[:])
}
