package netflow

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"
	"testing/quick"
)

func sampleRecord() Record {
	return Record{
		Timestamp:    1_627_000_000,
		SrcIP:        netip.MustParseAddr("192.0.2.33"),
		DstIP:        netip.MustParseAddr("198.51.100.7"),
		SrcPort:      123,
		DstPort:      44321,
		Protocol:     17,
		TCPFlags:     0,
		SrcMAC:       [6]byte{2, 0, 0, 0, 0, 1},
		DstMAC:       [6]byte{2, 0, 0, 0, 0, 2},
		Packets:      2048,
		Bytes:        1_024_000,
		SamplingRate: 2048,
		Blackholed:   true,
	}
}

func TestCodecRoundTrip(t *testing.T) {
	recs := []Record{sampleRecord()}
	r2 := sampleRecord()
	r2.SrcIP = netip.MustParseAddr("2001:db8::1")
	r2.DstIP = netip.MustParseAddr("2001:db8::2")
	r2.Blackholed = false
	r2.Fragment = true
	recs = append(recs, r2)

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Count() != 2 {
		t.Errorf("Count = %d", w.Count())
	}

	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d:\n got  %+v\n want %+v", i, got[i], recs[i])
		}
	}
}

func TestCodecEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d records from empty file", len(got))
	}
}

func TestCodecBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOPE\x01")))
	var rec Record
	if err := r.Read(&rec); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestCodecBadVersion(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("IXFR\x09")))
	var rec Record
	if err := r.Read(&rec); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestCodecTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := sampleRecord()
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-10]
	r := NewReader(bytes.NewReader(data))
	var out Record
	if err := r.Read(&out); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want unexpected EOF", err)
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(ts int64, src, dst [4]byte, sp, dp uint16, proto, flags uint8, pkts uint32, perPkt uint16, bh bool) bool {
		if pkts == 0 {
			pkts = 1
		}
		rec := Record{
			Timestamp:    ts & 0x7fffffffffff,
			SrcIP:        netip.AddrFrom4(src),
			DstIP:        netip.AddrFrom4(dst),
			SrcPort:      sp,
			DstPort:      dp,
			Protocol:     proto,
			TCPFlags:     flags,
			Packets:      uint64(pkts),
			Bytes:        uint64(pkts) * (uint64(perPkt) + 20),
			SamplingRate: 1024,
			Blackholed:   bh,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(&rec); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		var out Record
		if err := NewReader(&buf).Read(&out); err != nil {
			return false
		}
		return out == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordHelpers(t *testing.T) {
	r := sampleRecord()
	if r.Minute() != r.Timestamp/60 {
		t.Error("Minute")
	}
	if got := r.MeanPacketSize(); got != float64(r.Bytes)/float64(r.Packets) {
		t.Errorf("MeanPacketSize = %v", got)
	}
	zero := Record{Packets: 0}
	if zero.MeanPacketSize() != 0 {
		t.Error("MeanPacketSize on zero packets should be 0")
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	bad := r
	bad.Bytes = 10
	if bad.Validate() == nil {
		t.Error("Validate should reject bytes < 20*packets")
	}
	bad = r
	bad.SrcIP = netip.Addr{}
	if bad.Validate() == nil {
		t.Error("Validate should reject invalid src")
	}
	k1, k2 := r.Key(), r.Key()
	if k1 != k2 {
		t.Error("Key not deterministic")
	}
}

func TestAnonymizerDeterministicAndFamilyPreserving(t *testing.T) {
	a, err := NewAnonymizer([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	v4 := netip.MustParseAddr("203.0.113.9")
	v6 := netip.MustParseAddr("2001:db8::42")

	p4, p6 := a.Addr(v4), a.Addr(v6)
	if !p4.Is4() {
		t.Errorf("v4 pseudonym is not v4: %v", p4)
	}
	if !p6.Is6() || p6.Is4In6() {
		t.Errorf("v6 pseudonym is not v6: %v", p6)
	}
	if p4 == v4 || p6 == v6 {
		t.Error("address not anonymized")
	}
	if a.Addr(v4) != p4 {
		t.Error("not deterministic")
	}

	b, _ := NewAnonymizer([]byte("another-salt-value"))
	if b.Addr(v4) == p4 {
		t.Error("different salts must give different pseudonyms")
	}
	if a.SaltCheck() == b.SaltCheck() {
		t.Error("salt check collision across different salts")
	}
}

func TestAnonymizerMACBits(t *testing.T) {
	a, _ := NewAnonymizer([]byte("0123456789abcdef"))
	m := a.MAC([6]byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55})
	if m[0]&0x01 != 0 {
		t.Error("pseudonym MAC is multicast")
	}
	if m[0]&0x02 == 0 {
		t.Error("pseudonym MAC is not locally administered")
	}
}

func TestAnonymizerRejectsShortSalt(t *testing.T) {
	if _, err := NewAnonymizer([]byte("short")); err == nil {
		t.Fatal("want error for short salt")
	}
	if _, err := NewRandomAnonymizer(); err != nil {
		t.Fatalf("NewRandomAnonymizer: %v", err)
	}
}

func TestAnonymizerRecord(t *testing.T) {
	a, _ := NewAnonymizer([]byte("0123456789abcdef"))
	r := sampleRecord()
	orig := r
	a.Record(&r)
	if r.SrcIP == orig.SrcIP || r.DstIP == orig.DstIP {
		t.Error("IPs not anonymized")
	}
	if r.SrcMAC == orig.SrcMAC {
		t.Error("MAC not anonymized")
	}
	if r.SrcPort != orig.SrcPort || r.Bytes != orig.Bytes || r.Blackholed != orig.Blackholed {
		t.Error("non-address fields must be preserved")
	}
}

func TestStats(t *testing.T) {
	var s Stats
	base := sampleRecord()
	// Minute 1: 3 blackholed to one IP, 6 benign to two IPs.
	for i := 0; i < 3; i++ {
		r := base
		r.SrcPort = uint16(1000 + i)
		s.Add(&r)
	}
	for i := 0; i < 6; i++ {
		r := base
		r.Blackholed = false
		r.DstIP = netip.AddrFrom4([4]byte{10, 0, 0, byte(i % 2)})
		r.SrcPort = uint16(2000 + i)
		s.Add(&r)
	}
	// Minute 2: benign only.
	r := base
	r.Timestamp += 60
	r.Blackholed = false
	s.Add(&r)

	if s.Records != 10 || s.Blackholed != 3 {
		t.Fatalf("records=%d blackholed=%d", s.Records, s.Blackholed)
	}
	mins := s.Minutes()
	if len(mins) != 2 {
		t.Fatalf("minutes = %d", len(mins))
	}
	m := mins[0]
	if m.UniqueBlackholeIPs() != 1 || m.UniqueBenignIPs() != 2 {
		t.Errorf("unique IPs = %d/%d", m.UniqueBlackholeIPs(), m.UniqueBenignIPs())
	}
	if m.BlackholeShare() <= 0 || m.BlackholeShare() >= 1 {
		t.Errorf("share = %v", m.BlackholeShare())
	}
	bh, be := s.FlowsPerIPPoints()
	if len(bh) != 1 || len(be) != 1 {
		t.Fatalf("points = %d/%d (minute 2 has no blackhole and must be skipped)", len(bh), len(be))
	}
	if bh[0] != 3 || be[0] != 3 {
		t.Errorf("flows/IP = %v/%v, want 3/3", bh[0], be[0])
	}
	cdf := s.ShareCDF()
	if len(cdf) != 2 || cdf[0] > cdf[1] {
		t.Errorf("cdf = %v", cdf)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func BenchmarkCodecWrite(b *testing.B) {
	rec := sampleRecord()
	w := NewWriter(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(&rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecRead(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := sampleRecord()
	for i := 0; i < 10000; i++ {
		if err := w.Write(&rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	var out Record
	r := NewReader(bytes.NewReader(data))
	for i := 0; i < b.N; i++ {
		if err := r.Read(&out); err != nil {
			if errors.Is(err, io.EOF) {
				r = NewReader(bytes.NewReader(data))
				continue
			}
			b.Fatal(err)
		}
	}
}
