package netflow

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"
)

func qrec(minute int64, i int) Record {
	return Record{
		Timestamp: minute*60 + int64(i%60),
		SrcIP:     netip.MustParseAddr("10.0.0.1"),
		DstIP:     netip.MustParseAddr("10.0.0.2"),
		Packets:   1, Bytes: 64,
	}
}

func TestQueueFIFOAndCopy(t *testing.T) {
	q := NewQueue(4, Block)
	batch := []Record{qrec(0, 0), qrec(0, 1)}
	if !q.Put(batch) {
		t.Fatal("put failed")
	}
	batch[0].SrcPort = 999 // caller reuses its slice; queue must have copied
	if !q.Put([]Record{qrec(1, 0)}) {
		t.Fatal("put failed")
	}
	ctx := context.Background()
	got, ok := q.Get(ctx)
	if !ok || len(got) != 2 {
		t.Fatalf("get = %v, %v", got, ok)
	}
	if got[0].SrcPort == 999 {
		t.Fatal("queue aliased the producer's batch slice")
	}
	got, ok = q.Get(ctx)
	if !ok || len(got) != 1 || got[0].Minute() != 1 {
		t.Fatalf("fifo order broken: %v", got)
	}
	if q.Stats.BatchesIn.Load() != 2 || q.Stats.RecordsIn.Load() != 3 ||
		q.Stats.BatchesOut.Load() != 2 || q.Stats.RecordsOut.Load() != 3 {
		t.Fatalf("stats mismatch: %+v", &q.Stats)
	}
}

func TestQueueDropNewest(t *testing.T) {
	q := NewQueue(2, DropNewest)
	for i := 0; i < 2; i++ {
		if !q.Put([]Record{qrec(int64(i), 0)}) {
			t.Fatal("put on non-full queue failed")
		}
	}
	if q.Put([]Record{qrec(9, 0), qrec(9, 1)}) {
		t.Fatal("put on full drop-newest queue succeeded")
	}
	if d := q.Stats.DroppedBatches.Load(); d != 1 {
		t.Fatalf("dropped batches = %d", d)
	}
	if d := q.Stats.DroppedRecords.Load(); d != 2 {
		t.Fatalf("dropped records = %d", d)
	}
	// The queued batches survive untouched.
	b, _ := q.Get(context.Background())
	if b[0].Minute() != 0 {
		t.Fatalf("oldest batch = minute %d", b[0].Minute())
	}
}

func TestQueueDropOldest(t *testing.T) {
	q := NewQueue(2, DropOldest)
	for i := 0; i < 3; i++ {
		if !q.Put([]Record{qrec(int64(i), 0)}) {
			t.Fatal("drop-oldest put failed")
		}
	}
	if d := q.Stats.DroppedBatches.Load(); d != 1 {
		t.Fatalf("dropped batches = %d", d)
	}
	b, _ := q.Get(context.Background())
	if b[0].Minute() != 1 {
		t.Fatalf("oldest surviving batch = minute %d, want 1 (minute 0 evicted)", b[0].Minute())
	}
}

func TestQueueBlockBackpressure(t *testing.T) {
	q := NewQueue(1, Block)
	q.Put([]Record{qrec(0, 0)})
	done := make(chan struct{})
	go func() {
		q.Put([]Record{qrec(1, 0)}) // must wait for the consumer
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Put on a full Block queue returned before a Get")
	case <-time.After(20 * time.Millisecond):
	}
	if _, ok := q.Get(context.Background()); !ok {
		t.Fatal("get failed")
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Put never resumed after Get freed space")
	}
	if q.Stats.BlockedPuts.Load() == 0 {
		t.Fatal("BlockedPuts not counted")
	}
}

func TestQueueCloseDrainsAndUnblocks(t *testing.T) {
	q := NewQueue(4, Block)
	q.Put([]Record{qrec(0, 0)})
	q.Close()
	if q.Put([]Record{qrec(1, 0)}) {
		t.Fatal("Put after Close succeeded")
	}
	ctx := context.Background()
	if b, ok := q.Get(ctx); !ok || len(b) != 1 {
		t.Fatal("Close discarded queued batches")
	}
	if _, ok := q.Get(ctx); ok {
		t.Fatal("Get on drained closed queue returned a batch")
	}
}

func TestQueueGetHonorsContext(t *testing.T) {
	q := NewQueue(1, Block)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, ok := q.Get(ctx); ok {
		t.Fatal("Get returned a batch from an empty queue")
	}
}

func TestQueueConcurrentProducers(t *testing.T) {
	q := NewQueue(8, Block)
	const producers, per = 4, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Put([]Record{qrec(int64(p), i)})
			}
		}(p)
	}
	go func() { wg.Wait(); q.Close() }()
	var total int
	ctx := context.Background()
	for {
		b, ok := q.Get(ctx)
		if !ok {
			break
		}
		total += len(b)
	}
	if total != producers*per {
		t.Fatalf("consumed %d records, want %d", total, producers*per)
	}
}
