package netflow

import (
	"fmt"
	"net/netip"
	"sort"
)

// Stats accumulates dataset-level statistics over a stream of flow records.
// It backs the Table 2 columns (record counts, blackhole share) and the
// Figure 3a/3c series (per-minute traffic shares, flows per unique IP).
type Stats struct {
	Records        uint64
	Blackholed     uint64
	Packets        uint64
	Bytes          uint64
	BlackholeBytes uint64

	minutes map[int64]*MinuteStats
}

// MinuteStats aggregates one one-minute bin.
type MinuteStats struct {
	Minute          int64
	Records         uint64
	Bytes           uint64
	BlackholeBytes  uint64
	BenignFlows     uint64
	BlackholeFlows  uint64
	benignIPs       map[netip.Addr]struct{}
	blackholeIPs    map[netip.Addr]struct{}
}

// UniqueBenignIPs returns the number of distinct benign destination IPs.
func (m *MinuteStats) UniqueBenignIPs() int { return len(m.benignIPs) }

// UniqueBlackholeIPs returns the number of distinct blackholed destination
// IPs.
func (m *MinuteStats) UniqueBlackholeIPs() int { return len(m.blackholeIPs) }

// BlackholeShare returns the fraction of bytes in this minute that were
// blackholed.
func (m *MinuteStats) BlackholeShare() float64 {
	if m.Bytes == 0 {
		return 0
	}
	return float64(m.BlackholeBytes) / float64(m.Bytes)
}

// Add folds one record into the statistics.
func (s *Stats) Add(r *Record) {
	s.Records++
	s.Packets += r.Packets
	s.Bytes += r.Bytes
	if r.Blackholed {
		s.Blackholed++
		s.BlackholeBytes += r.Bytes
	}
	if s.minutes == nil {
		s.minutes = make(map[int64]*MinuteStats)
	}
	min := r.Minute()
	ms := s.minutes[min]
	if ms == nil {
		ms = &MinuteStats{
			Minute:       min,
			benignIPs:    make(map[netip.Addr]struct{}),
			blackholeIPs: make(map[netip.Addr]struct{}),
		}
		s.minutes[min] = ms
	}
	ms.Records++
	ms.Bytes += r.Bytes
	if r.Blackholed {
		ms.BlackholeBytes += r.Bytes
		ms.BlackholeFlows++
		ms.blackholeIPs[r.DstIP] = struct{}{}
	} else {
		ms.BenignFlows++
		ms.benignIPs[r.DstIP] = struct{}{}
	}
}

// BlackholeShare returns the overall fraction of blackholed records.
func (s *Stats) BlackholeShare() float64 {
	if s.Records == 0 {
		return 0
	}
	return float64(s.Blackholed) / float64(s.Records)
}

// Minutes returns per-minute statistics ordered by minute.
func (s *Stats) Minutes() []*MinuteStats {
	out := make([]*MinuteStats, 0, len(s.minutes))
	for _, m := range s.minutes {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Minute < out[j].Minute })
	return out
}

// ShareCDF returns the sorted per-minute blackhole byte shares, the series
// plotted as a CDF in Figure 3a.
func (s *Stats) ShareCDF() []float64 {
	out := make([]float64, 0, len(s.minutes))
	for _, m := range s.minutes {
		out = append(out, m.BlackholeShare())
	}
	sort.Float64s(out)
	return out
}

// FlowsPerIPPoints returns, per minute bin, the pair (blackhole flows per
// unique blackholed IP, benign flows per unique benign IP) — the scatter of
// Figure 3c. Bins missing either class are skipped.
func (s *Stats) FlowsPerIPPoints() (bh, benign []float64) {
	for _, m := range s.Minutes() {
		nb, nh := m.UniqueBenignIPs(), m.UniqueBlackholeIPs()
		if nb == 0 || nh == 0 {
			continue
		}
		bh = append(bh, float64(m.BlackholeFlows)/float64(nh))
		benign = append(benign, float64(m.BenignFlows)/float64(nb))
	}
	return bh, benign
}

// String summarizes the statistics.
func (s *Stats) String() string {
	return fmt.Sprintf("records=%d blackholed=%d (%.2f%%) bytes=%d minutes=%d",
		s.Records, s.Blackholed, 100*s.BlackholeShare(), s.Bytes, len(s.minutes))
}
