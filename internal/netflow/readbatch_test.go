package netflow

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// encodeRecords writes n distinct records and returns the wire bytes.
func encodeRecords(tb testing.TB, n int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < n; i++ {
		rec := sampleRecord()
		rec.Timestamp += int64(i)
		rec.SrcPort = uint16(i)
		rec.Blackholed = i%3 == 0
		if err := w.Write(&rec); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadBatchMatchesRead: batched reads must yield exactly the record
// sequence of the one-at-a-time path, for batch sizes that divide the
// stream, leave a remainder, and exceed the bulk-read cap.
func TestReadBatchMatchesRead(t *testing.T) {
	const n = 2000
	data := encodeRecords(t, n)

	want := make([]Record, 0, n)
	ref := NewReader(bytes.NewReader(data))
	for {
		var rec Record
		err := ref.Read(&rec)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}

	for _, size := range []int{1, 7, 256, batchReadRecords + 5} {
		r := NewReader(bytes.NewReader(data))
		got := make([]Record, 0, n)
		dst := make([]Record, size)
		for {
			k, err := r.ReadBatch(dst)
			got = append(got, dst[:k]...)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("size %d: records = %d, want %d", size, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("size %d: record %d mismatch:\n got  %+v\n want %+v", size, i, got[i], want[i])
			}
		}
		if r.Stats.Records.Load() != uint64(n) {
			t.Errorf("size %d: Stats.Records = %d, want %d", size, r.Stats.Records.Load(), n)
		}
	}
}

// TestReadBatchTruncation: a mid-record cut must surface as
// io.ErrUnexpectedEOF after the preceding whole records are delivered.
func TestReadBatchTruncation(t *testing.T) {
	data := encodeRecords(t, 10)
	cut := data[:len(data)-37] // mid-record
	r := NewReader(bytes.NewReader(cut))
	dst := make([]Record, 64)
	total := 0
	var finalErr error
	for {
		k, err := r.ReadBatch(dst)
		total += k
		if err != nil {
			finalErr = err
			break
		}
	}
	if !errors.Is(finalErr, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", finalErr)
	}
	if total != 9 {
		t.Errorf("whole records before truncation = %d, want 9", total)
	}
	if r.Stats.Truncated.Load() != 1 {
		t.Errorf("Stats.Truncated = %d, want 1", r.Stats.Truncated.Load())
	}
}

func TestReadBatchEmptyDst(t *testing.T) {
	r := NewReader(bytes.NewReader(encodeRecords(t, 3)))
	if k, err := r.ReadBatch(nil); k != 0 || err != nil {
		t.Fatalf("ReadBatch(nil) = %d, %v", k, err)
	}
}

// TestReadBatchAllocs: after the first call allocates the bulk scratch,
// batched reading must be allocation-free (budget 0 per batch).
func TestReadBatchAllocs(t *testing.T) {
	const runs = 200
	const size = 64
	data := encodeRecords(t, (runs+2)*size)
	r := NewReader(bytes.NewReader(data))
	dst := make([]Record, size)
	if _, err := r.ReadBatch(dst); err != nil { // allocate scratch
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(runs, func() {
		if k, err := r.ReadBatch(dst); err != nil || k != size {
			t.Fatalf("ReadBatch = %d, %v", k, err)
		}
	})
	if avg != 0 {
		t.Errorf("ReadBatch allocs/run = %v, budget 0", avg)
	}
}

func BenchmarkCodecReadBatch(b *testing.B) {
	data := encodeRecords(b, 10000)
	dst := make([]Record, 256)
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(bytes.NewReader(data))
	for i := 0; i < b.N; i++ {
		k, err := r.ReadBatch(dst)
		if errors.Is(err, io.EOF) || k < len(dst) {
			b.StopTimer()
			r = NewReader(bytes.NewReader(data))
			b.StartTimer()
			continue
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
