package netflow

import (
	"bytes"
	"net/netip"
	"testing"
)

// fuzzStream builds a valid three-record flow file for seeding.
func fuzzStream(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{
			Timestamp: 1650000000,
			SrcIP:     netip.MustParseAddr("192.0.2.1"),
			DstIP:     netip.MustParseAddr("198.51.100.7"),
			SrcPort:   123, DstPort: 4444, Protocol: 17,
			Packets: 2048, Bytes: 262144, SamplingRate: 2048,
			Blackholed: true,
		},
		{
			Timestamp: 1650000060,
			SrcIP:     netip.MustParseAddr("2001:db8::1"),
			DstIP:     netip.MustParseAddr("2001:db8::2"),
			SrcPort:   443, DstPort: 50000, Protocol: 6, TCPFlags: 0x12,
			Packets: 1, Bytes: 64, SamplingRate: 1,
		},
		{
			Timestamp: 1650000120,
			SrcIP:     netip.MustParseAddr("203.0.113.9"),
			DstIP:     netip.MustParseAddr("198.51.100.7"),
			Protocol:  1, Fragment: true,
			Packets: 512, Bytes: 65536, SamplingRate: 512,
		},
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReader drives the binary flow file reader over arbitrary bytes: it
// must never panic and must always terminate (every record either decodes
// or ends the stream with an error).
func FuzzReader(f *testing.F) {
	valid := fuzzStream(f)
	f.Add(valid)
	// Truncation corpus: cut inside the header, on a record boundary, and
	// mid-record.
	for _, n := range []int{0, 1, 4, 5, 6, 5 + wireRecordSize - 1, 5 + wireRecordSize, 5 + wireRecordSize + 1} {
		if n <= len(valid) {
			f.Add(append([]byte(nil), valid[:n]...))
		}
	}
	// Mutation corpus: bad magic, unsupported version, flag byte noise.
	mut := append([]byte(nil), valid...)
	mut[0] ^= 0xFF
	f.Add(mut)
	mut = append([]byte(nil), valid...)
	mut[4] = 99
	f.Add(mut)
	mut = append([]byte(nil), valid...)
	mut[5+46] = 0xFF // flags byte of the first record
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var rec Record
		for {
			if err := r.Read(&rec); err != nil {
				break
			}
		}
	})
}

// FuzzRoundTrip checks that any record the reader accepts survives an
// encode/decode cycle bit-for-bit — the streaming pipeline depends on the
// wire format being lossless.
func FuzzRoundTrip(f *testing.F) {
	f.Add(fuzzStream(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var rec Record
		for {
			if err := r.Read(&rec); err != nil {
				return
			}
			var buf bytes.Buffer
			w := NewWriter(&buf)
			if err := w.Write(&rec); err != nil {
				t.Fatalf("re-encoding accepted record: %v", err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			var back Record
			if err := NewReader(bytes.NewReader(buf.Bytes())).Read(&back); err != nil {
				t.Fatalf("re-decoding: %v", err)
			}
			if back != rec {
				t.Fatalf("round trip changed record:\n in: %+v\nout: %+v", rec, back)
			}
		}
	})
}
