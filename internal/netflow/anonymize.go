package netflow

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Anonymizer obfuscates IP and MAC addresses with a keyed hash before
// records are persisted, mirroring the paper's ethics requirement that
// "IP addresses and MAC addresses are hashed with a secret salt before
// storage and analysis" (§4.3).
//
// The mapping is deterministic for a given salt (so one address always maps
// to the same pseudonym and per-IP aggregation still works) but cannot be
// inverted without the salt. Address family is preserved: IPv4 maps to IPv4,
// IPv6 to IPv6, so downstream prefix handling keeps working.
type Anonymizer struct {
	salt [32]byte
}

// NewAnonymizer creates an Anonymizer with the given secret salt.
func NewAnonymizer(salt []byte) (*Anonymizer, error) {
	if len(salt) < 16 {
		return nil, fmt.Errorf("netflow: anonymizer salt must be at least 16 bytes, got %d", len(salt))
	}
	a := &Anonymizer{}
	sum := sha256.Sum256(salt)
	a.salt = sum
	return a, nil
}

// NewRandomAnonymizer creates an Anonymizer with a salt drawn from
// crypto/rand, for deployments where the salt never needs to be shared.
func NewRandomAnonymizer() (*Anonymizer, error) {
	var salt [32]byte
	if _, err := rand.Read(salt[:]); err != nil {
		return nil, fmt.Errorf("netflow: generating salt: %w", err)
	}
	return NewAnonymizer(salt[:])
}

func (a *Anonymizer) mac16(domain byte, in []byte) [16]byte {
	h := hmac.New(sha256.New, a.salt[:])
	h.Write([]byte{domain})
	h.Write(in)
	var out [16]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Addr returns the pseudonym for ip, preserving the address family.
func (a *Anonymizer) Addr(ip netip.Addr) netip.Addr {
	if !ip.IsValid() {
		return ip
	}
	if ip.Is4() || ip.Is4In6() {
		b := ip.As4()
		d := a.mac16('4', b[:])
		return netip.AddrFrom4([4]byte(d[:4]))
	}
	b := ip.As16()
	d := a.mac16('6', b[:])
	return netip.AddrFrom16(d)
}

// MAC returns the pseudonym for a hardware address. The locally-administered
// bit is set and the multicast bit cleared so pseudonyms cannot collide with
// real vendor-assigned unicast addresses.
func (a *Anonymizer) MAC(m [6]byte) [6]byte {
	d := a.mac16('m', m[:])
	var out [6]byte
	copy(out[:], d[:6])
	out[0] = out[0]&^0x01 | 0x02
	return out
}

// Record anonymizes all addresses of r in place.
func (a *Anonymizer) Record(r *Record) {
	r.SrcIP = a.Addr(r.SrcIP)
	r.DstIP = a.Addr(r.DstIP)
	r.SrcMAC = a.MAC(r.SrcMAC)
	r.DstMAC = a.MAC(r.DstMAC)
}

// Prefix anonymizes the network address of a prefix, keeping its length.
// Note that after anonymization prefix containment relationships are not
// preserved; the pipeline therefore matches flows against blackholed
// prefixes before anonymizing.
func (a *Anonymizer) Prefix(p netip.Prefix) netip.Prefix {
	return netip.PrefixFrom(a.Addr(p.Addr()), p.Bits())
}

// Salt check value: lets two collectors verify they share a salt without
// revealing it.
func (a *Anonymizer) SaltCheck() uint32 {
	d := a.mac16('c', []byte("salt-check"))
	return binary.BigEndian.Uint32(d[:4])
}
