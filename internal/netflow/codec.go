package netflow

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sync/atomic"
)

// Binary flow file format:
//
//	magic   [4]byte  "IXFR"
//	version uint8    (1)
//	records ...      fixed 80-byte records
//
// All integers are big-endian. IPs are stored as 16 bytes; IPv4 addresses
// use the 4-in-6 mapping. The format is dense enough that 50 TB-scale IXP
// datasets (Table 2) stream through the balancer without intermediate
// allocation.

var (
	// ErrBadMagic is returned when a stream does not start with the flow
	// file magic.
	ErrBadMagic = errors.New("netflow: bad magic")
	// ErrBadVersion is returned for unknown format versions.
	ErrBadVersion = errors.New("netflow: unsupported version")
)

var fileMagic = [4]byte{'I', 'X', 'F', 'R'}

const (
	formatVersion  = 1
	wireRecordSize = 80
)

const (
	flagBlackholed = 1 << 0
	flagFragment   = 1 << 1
	flagSrcIPv6    = 1 << 2
	flagDstIPv6    = 1 << 3
)

// marshalRecord encodes r into buf, which must be at least wireRecordSize
// bytes.
func marshalRecord(buf []byte, r *Record) {
	binary.BigEndian.PutUint64(buf[0:8], uint64(r.Timestamp))
	src := r.SrcIP.As16()
	dst := r.DstIP.As16()
	copy(buf[8:24], src[:])
	copy(buf[24:40], dst[:])
	binary.BigEndian.PutUint16(buf[40:42], r.SrcPort)
	binary.BigEndian.PutUint16(buf[42:44], r.DstPort)
	buf[44] = r.Protocol
	buf[45] = r.TCPFlags
	var flags uint8
	if r.Blackholed {
		flags |= flagBlackholed
	}
	if r.Fragment {
		flags |= flagFragment
	}
	// Address families are flagged per address: a record may mix a v6
	// source with a v4 destination (a shared flag would corrupt the
	// destination into a 4-in-6 mapped address on decode).
	if r.SrcIP.Is6() && !r.SrcIP.Is4In6() {
		flags |= flagSrcIPv6
	}
	if r.DstIP.Is6() && !r.DstIP.Is4In6() {
		flags |= flagDstIPv6
	}
	buf[46] = flags
	buf[47] = 0
	copy(buf[48:54], r.SrcMAC[:])
	copy(buf[54:60], r.DstMAC[:])
	binary.BigEndian.PutUint32(buf[60:64], r.SamplingRate)
	binary.BigEndian.PutUint64(buf[64:72], r.Packets)
	binary.BigEndian.PutUint64(buf[72:80], r.Bytes)
}

func unmarshalRecord(buf []byte, r *Record) {
	r.Timestamp = int64(binary.BigEndian.Uint64(buf[0:8]))
	var a16 [16]byte
	flags := buf[46]
	copy(a16[:], buf[8:24])
	r.SrcIP = addrFrom16(a16, flags&flagSrcIPv6 != 0)
	copy(a16[:], buf[24:40])
	r.DstIP = addrFrom16(a16, flags&flagDstIPv6 != 0)
	r.SrcPort = binary.BigEndian.Uint16(buf[40:42])
	r.DstPort = binary.BigEndian.Uint16(buf[42:44])
	r.Protocol = buf[44]
	r.TCPFlags = buf[45]
	r.Blackholed = flags&flagBlackholed != 0
	r.Fragment = flags&flagFragment != 0
	copy(r.SrcMAC[:], buf[48:54])
	copy(r.DstMAC[:], buf[54:60])
	r.SamplingRate = binary.BigEndian.Uint32(buf[60:64])
	r.Packets = binary.BigEndian.Uint64(buf[64:72])
	r.Bytes = binary.BigEndian.Uint64(buf[72:80])
}

func addrFrom16(a [16]byte, isV6 bool) netip.Addr {
	// Always canonicalize 4-in-6 mappings, even when the v6 flag claims
	// otherwise (corrupt or crafted input): the pipeline compares addresses
	// against unmapped v4 prefixes, so a non-canonical ::ffff:a.b.c.d
	// leaking out of the reader would silently fail every registry lookup.
	addr := netip.AddrFrom16(a)
	if !isV6 || addr.Is4In6() {
		return addr.Unmap()
	}
	return addr
}

// Writer streams flow records to an io.Writer in the binary flow format.
type Writer struct {
	w     *bufio.Writer
	buf   [wireRecordSize]byte
	count int
	began bool
}

// NewWriter returns a Writer emitting to w. The header is written lazily on
// the first record (or on Flush).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (w *Writer) begin() error {
	if w.began {
		return nil
	}
	w.began = true
	if _, err := w.w.Write(fileMagic[:]); err != nil {
		return fmt.Errorf("netflow: writing header: %w", err)
	}
	if err := w.w.WriteByte(formatVersion); err != nil {
		return fmt.Errorf("netflow: writing header: %w", err)
	}
	return nil
}

// Write appends one record.
func (w *Writer) Write(r *Record) error {
	if err := w.begin(); err != nil {
		return err
	}
	marshalRecord(w.buf[:], r)
	if _, err := w.w.Write(w.buf[:]); err != nil {
		return fmt.Errorf("netflow: writing record %d: %w", w.count, err)
	}
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return w.count }

// Flush writes the header if no record has been written yet and flushes
// buffered data.
func (w *Writer) Flush() error {
	if err := w.begin(); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("netflow: flush: %w", err)
	}
	return nil
}

// ReaderStats counts reader activity. Fields are atomic so a metrics
// scrape can read them while the ingest goroutine streams records.
type ReaderStats struct {
	Records   atomic.Uint64 // records decoded
	Truncated atomic.Uint64 // mid-record or mid-header truncations
	Malformed atomic.Uint64 // bad magic or unsupported version
}

// Reader streams flow records from an io.Reader.
type Reader struct {
	r     *bufio.Reader
	buf   [wireRecordSize]byte
	bulk  []byte // ReadBatch scratch, allocated on first use
	began bool

	Stats ReaderStats
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (r *Reader) begin() error {
	if r.began {
		return nil
	}
	r.began = true
	var hdr [5]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		r.Stats.Truncated.Add(1)
		return fmt.Errorf("netflow: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != fileMagic {
		r.Stats.Malformed.Add(1)
		return ErrBadMagic
	}
	if hdr[4] != formatVersion {
		r.Stats.Malformed.Add(1)
		return fmt.Errorf("%w: %d", ErrBadVersion, hdr[4])
	}
	return nil
}

// Read fills rec with the next record. It returns io.EOF at a clean end of
// stream and io.ErrUnexpectedEOF for a mid-record truncation.
func (r *Reader) Read(rec *Record) error {
	if err := r.begin(); err != nil {
		return err
	}
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		r.Stats.Truncated.Add(1)
		return fmt.Errorf("netflow: reading record: %w", err)
	}
	unmarshalRecord(r.buf[:], rec)
	r.Stats.Records.Add(1)
	return nil
}

// ReadBatch fills dst with up to len(dst) records and returns how many were
// decoded. It amortizes the per-record ReadFull and stats updates of Read:
// one bulk read and one atomic add per batch. A short final batch is not an
// error; n == 0 with err == io.EOF marks a clean end of stream, and a
// mid-record truncation surfaces as io.ErrUnexpectedEOF after the preceding
// whole records are returned.
func (r *Reader) ReadBatch(dst []Record) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if err := r.begin(); err != nil {
		return 0, err
	}
	if r.bulk == nil {
		r.bulk = make([]byte, batchReadRecords*wireRecordSize)
	}
	want := len(dst)
	if want > batchReadRecords {
		want = batchReadRecords
	}
	nb, err := io.ReadFull(r.r, r.bulk[:want*wireRecordSize])
	n := nb / wireRecordSize
	for i := 0; i < n; i++ {
		unmarshalRecord(r.bulk[i*wireRecordSize:], &dst[i])
	}
	if n > 0 {
		r.Stats.Records.Add(uint64(n))
	}
	switch {
	case err == nil:
		return n, nil
	case errors.Is(err, io.ErrUnexpectedEOF) && nb%wireRecordSize == 0:
		// Clean EOF on a record boundary, reported on this call if no whole
		// record was read, else on the next.
		if n == 0 {
			return 0, io.EOF
		}
		return n, nil
	case errors.Is(err, io.EOF):
		return 0, io.EOF
	default:
		r.Stats.Truncated.Add(1)
		return n, fmt.Errorf("netflow: reading record: %w", io.ErrUnexpectedEOF)
	}
}

// batchReadRecords caps one ReadBatch bulk read (64 KiB of wire data).
const batchReadRecords = 819

// ReadAll reads every remaining record. Intended for tests and small sets;
// production paths stream with Read.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		var rec Record
		err := r.Read(&rec)
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
