package netflow

import (
	"context"
	"sync"
	"sync/atomic"
)

// DropPolicy selects what a full Queue does with an incoming batch.
type DropPolicy int

const (
	// Block applies backpressure: Put waits until space frees up (bounded
	// memory, no loss; the producer — usually a collector read loop — slows
	// to the consumer's pace, and the kernel socket buffer absorbs or drops
	// the overflow, which is where loss belongs under sustained overload).
	Block DropPolicy = iota
	// DropNewest discards the incoming batch when the queue is full and
	// counts it; the producer never stalls (ingest keeps its counters and
	// labels fresh while a stuck consumer is restarted).
	DropNewest
	// DropOldest evicts the oldest queued batch to admit the new one, so
	// the consumer resumes with the freshest data after a stall.
	DropOldest
)

// String names the policy for flags and logs.
func (p DropPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	}
	return "unknown"
}

// ParseDropPolicy maps a flag string to a policy.
func ParseDropPolicy(s string) (DropPolicy, bool) {
	switch s {
	case "block":
		return Block, true
	case "drop-newest":
		return DropNewest, true
	case "drop-oldest":
		return DropOldest, true
	}
	return Block, false
}

// QueueStats counts queue activity; all fields are atomic and safe to read
// while the queue runs (the obs layer scrapes them as function metrics).
type QueueStats struct {
	BatchesIn      atomic.Uint64 // batches accepted (including later-evicted)
	BatchesOut     atomic.Uint64 // batches handed to the consumer
	RecordsIn      atomic.Uint64
	RecordsOut     atomic.Uint64
	DroppedBatches atomic.Uint64 // batches lost to the drop policy
	DroppedRecords atomic.Uint64
	BlockedPuts    atomic.Uint64 // Put calls that had to wait (Block policy)
}

// Queue is the bounded hand-off between the collector read loop and the
// balancing/training stage: a FIFO of record batches with an explicit
// capacity and a counted overflow policy. Before it existed the collector
// called straight into the balancer under a mutex — a stuck consumer
// propagated backpressure invisibly and unboundedly; the queue makes the
// boundary explicit, observable, and survivable.
//
// Put copies each batch (collectors reuse their batch slices), so admitted
// memory is bounded by capacity × batch size. One consumer; any number of
// producers.
type Queue struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty chan struct{} // closed/remade signal for waiting consumers
	buf      [][]Record
	head     int
	n        int
	policy   DropPolicy
	closed   bool

	Stats QueueStats
}

// NewQueue builds a queue holding up to capacity batches (minimum 1).
func NewQueue(capacity int, policy DropPolicy) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{
		buf:      make([][]Record, capacity),
		policy:   policy,
		notEmpty: make(chan struct{}),
	}
	q.notFull = sync.NewCond(&q.mu)
	return q
}

// Len returns the number of queued batches.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Cap returns the queue capacity in batches.
func (q *Queue) Cap() int { return len(q.buf) }

// Policy returns the configured overflow policy.
func (q *Queue) Policy() DropPolicy { return q.policy }

// Put offers one batch. It returns false when the batch was dropped (full
// queue under DropNewest) or the queue is closed; under Block it waits for
// space. The caller keeps ownership of batch — the queue stores a copy.
func (q *Queue) Put(batch []Record) bool {
	if len(batch) == 0 {
		return true
	}
	q.mu.Lock()
	for q.n == len(q.buf) && !q.closed {
		switch q.policy {
		case DropNewest:
			q.Stats.DroppedBatches.Add(1)
			q.Stats.DroppedRecords.Add(uint64(len(batch)))
			q.mu.Unlock()
			return false
		case DropOldest:
			old := q.buf[q.head]
			q.buf[q.head] = nil
			q.head = (q.head + 1) % len(q.buf)
			q.n--
			q.Stats.DroppedBatches.Add(1)
			q.Stats.DroppedRecords.Add(uint64(len(old)))
		default: // Block
			q.Stats.BlockedPuts.Add(1)
			q.notFull.Wait()
		}
	}
	if q.closed {
		q.mu.Unlock()
		return false
	}
	cp := make([]Record, len(batch))
	copy(cp, batch)
	q.buf[(q.head+q.n)%len(q.buf)] = cp
	q.n++
	q.Stats.BatchesIn.Add(1)
	q.Stats.RecordsIn.Add(uint64(len(cp)))
	signal := q.notEmpty
	q.notEmpty = make(chan struct{})
	q.mu.Unlock()
	close(signal)
	return true
}

// Get removes and returns the oldest batch, waiting until one is available,
// the queue closes (nil, false once drained), or ctx is done.
func (q *Queue) Get(ctx context.Context) ([]Record, bool) {
	for {
		q.mu.Lock()
		if q.n > 0 {
			b := q.buf[q.head]
			q.buf[q.head] = nil
			q.head = (q.head + 1) % len(q.buf)
			q.n--
			q.Stats.BatchesOut.Add(1)
			q.Stats.RecordsOut.Add(uint64(len(b)))
			q.notFull.Signal()
			q.mu.Unlock()
			return b, true
		}
		if q.closed {
			q.mu.Unlock()
			return nil, false
		}
		wait := q.notEmpty
		q.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, false
		case <-wait:
		}
	}
}

// Close wakes all waiters; queued batches remain retrievable via Get until
// drained. Put after Close returns false.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	signal := q.notEmpty
	q.notEmpty = make(chan struct{})
	q.notFull.Broadcast()
	q.mu.Unlock()
	close(signal)
}
