package netflow

import "github.com/ixp-scrubber/ixpscrubber/internal/obs"

// RegisterMetrics exposes the reader's counters under the shared
// ixps_collector_* families, labeled proto="netflow" (the binary flow file
// format is the offline ingest path of the pipeline).
func (r *Reader) RegisterMetrics(reg *obs.Registry) {
	const proto = "netflow"
	u64 := func(a interface{ Load() uint64 }) func() float64 {
		return func() float64 { return float64(a.Load()) }
	}
	reg.CounterVec("ixps_collector_records_total",
		"Flow records decoded and emitted downstream.", "proto").
		WithFunc(u64(&r.Stats.Records), proto)
	reg.CounterVec("ixps_collector_truncated_total",
		"Datagrams rejected as truncated.", "proto").
		WithFunc(u64(&r.Stats.Truncated), proto)
	reg.CounterVec("ixps_collector_malformed_total",
		"Datagrams or samples rejected as malformed (beyond truncation).", "proto").
		WithFunc(u64(&r.Stats.Malformed), proto)
}
