package netflow

import (
	"sync/atomic"

	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
)

// RegisterMetrics exposes the reader's counters under the shared
// ixps_collector_* families, labeled proto="netflow" (the binary flow file
// format is the offline ingest path of the pipeline).
func (r *Reader) RegisterMetrics(reg *obs.Registry) {
	const proto = "netflow"
	u64 := func(a interface{ Load() uint64 }) func() float64 {
		return func() float64 { return float64(a.Load()) }
	}
	reg.CounterVec("ixps_collector_records_total",
		"Flow records decoded and emitted downstream.", "proto").
		WithFunc(u64(&r.Stats.Records), proto)
	reg.CounterVec("ixps_collector_truncated_total",
		"Datagrams rejected as truncated.", "proto").
		WithFunc(u64(&r.Stats.Truncated), proto)
	reg.CounterVec("ixps_collector_malformed_total",
		"Datagrams or samples rejected as malformed (beyond truncation).", "proto").
		WithFunc(u64(&r.Stats.Malformed), proto)
}

// RegisterMetrics exposes the bounded inter-stage queue under
// ixps_queue_*, labeled by stage name (e.g. stage="ingest"). Depth and
// drop counters are the observable half of the backpressure contract:
// depth pinned at capacity plus a rising drop counter is the signature of
// a stuck consumer.
func (q *Queue) RegisterMetrics(reg *obs.Registry, stage string) {
	u64 := func(a *atomic.Uint64) func() float64 {
		return func() float64 { return float64(a.Load()) }
	}
	reg.GaugeVec("ixps_queue_depth",
		"Batches currently queued between pipeline stages.", "stage").
		WithFunc(func() float64 { return float64(q.Len()) }, stage)
	reg.GaugeVec("ixps_queue_capacity",
		"Batch capacity of the inter-stage queue.", "stage").
		WithFunc(func() float64 { return float64(q.Cap()) }, stage)
	reg.CounterVec("ixps_queue_batches_total",
		"Batches accepted into the queue.", "stage").
		WithFunc(u64(&q.Stats.BatchesIn), stage)
	reg.CounterVec("ixps_queue_records_total",
		"Records accepted into the queue.", "stage").
		WithFunc(u64(&q.Stats.RecordsIn), stage)
	reg.CounterVec("ixps_queue_dropped_batches_total",
		"Batches lost to the overflow policy (queue full).", "stage").
		WithFunc(u64(&q.Stats.DroppedBatches), stage)
	reg.CounterVec("ixps_queue_dropped_records_total",
		"Records lost to the overflow policy (queue full).", "stage").
		WithFunc(u64(&q.Stats.DroppedRecords), stage)
	reg.CounterVec("ixps_queue_blocked_puts_total",
		"Producer waits caused by a full queue under the block policy.", "stage").
		WithFunc(u64(&q.Stats.BlockedPuts), stage)
}
