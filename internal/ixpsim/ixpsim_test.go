package ixpsim

import (
	"context"
	"testing"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

func simProfile() synth.Profile {
	p := synth.ProfileUS2()
	p.BenignFlowsPerMin = 300
	p.EpisodeRatePerMin = 0.15
	p.Seed = 0x51A1
	return p
}

// TestRunEndToEnd drives the full wire-protocol pipeline: generator ->
// sFlow/UDP -> collector -> BGP-labeled -> balancer, and checks the result
// against ground truth from a parallel offline run of the same generator.
func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live sockets")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cfg := Config{
		Profile: simProfile(),
		FromMin: 1000,
		ToMin:   1030,
	}
	res, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records == 0 || res.Datagrams == 0 {
		t.Fatalf("collector saw nothing: %+v", res)
	}
	if res.Blackholed == 0 {
		t.Fatal("no flows labeled blackholed via the live BGP path")
	}
	if res.BlackholesSeen == 0 {
		t.Fatal("registry recorded no blackholes")
	}
	if len(res.Balanced) == 0 {
		t.Fatal("balanced output empty")
	}
	// Balanced share is ~50% like the offline pipeline.
	bh := 0
	for i := range res.Balanced {
		if res.Balanced[i].Blackholed {
			bh++
		}
	}
	share := float64(bh) / float64(len(res.Balanced))
	if share < 0.35 || share > 0.7 {
		t.Errorf("balanced blackhole share = %.3f", share)
	}

	// Loopback delivery should be essentially lossless.
	offline := synth.NewGenerator(simProfile())
	expected := len(offline.Generate(1000, 1030))
	if got := int(res.Samples); got < expected*95/100 {
		t.Errorf("samples = %d, expected ~%d (>5%% loss)", got, expected)
	}

	// The live labeling must agree with the generator's ground truth
	// windows: compare blackholed counts within 20%.
	offline2 := synth.NewGenerator(simProfile())
	flows := offline2.Generate(1000, 1030)
	truth := 0
	for i := range flows {
		if flows[i].Blackholed {
			truth++
		}
	}
	if truth == 0 {
		t.Fatal("ground truth has no blackholed flows; profile too quiet")
	}
	got := int(res.Blackholed)
	lo, hi := truth*8/10, truth*12/10
	if got < lo || got > hi {
		t.Errorf("live blackholed = %d, ground truth = %d (outside ±20%%)", got, truth)
	}
}

func TestRunRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Config{Profile: simProfile(), FromMin: 0, ToMin: 10})
	if err == nil {
		t.Fatal("canceled context must abort the run")
	}
}
