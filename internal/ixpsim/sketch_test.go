package ixpsim

// Sketch-mode pipeline tests: the bounded-memory aggregation path slots in
// behind PipelineConfig.Core and must train, classify and publish like the
// exact path — deterministically, with the same aggregate counts at test
// cardinality (every per-minute target fits the resident budget, so only
// the per-source rankings are approximate).

import (
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
)

func sketchPipeline(seed uint64) *Pipeline {
	cc := core.DefaultConfig()
	cc.Sketch = &features.SketchConfig{Budget: 0.05}
	return NewPipeline(PipelineConfig{Seed: seed, MinTrainRecords: 64, Core: &cc})
}

// TestSketchPipelineRounds drives a full multi-round run through the sketch
// aggregation path: rounds must train (not skip), flag attacked targets, and
// publish non-empty ACLs.
func TestSketchPipelineRounds(t *testing.T) {
	prof := lcProfile()
	rounds := driveRounds(t, sketchPipeline(prof.Seed), 12, 3, nil)

	if len(rounds) != 4 {
		t.Fatalf("got %d rounds, want 4", len(rounds))
	}
	var flagged, acls int
	for i, r := range rounds {
		if r.Skipped {
			t.Errorf("round %d skipped in sketch mode", i)
		}
		if r.Aggregates == 0 {
			t.Errorf("round %d classified zero aggregates", i)
		}
		flagged += len(r.Flagged)
		if r.ACLText != "" {
			acls++
		}
	}
	if flagged == 0 {
		t.Error("no targets flagged across any sketch-mode round")
	}
	if acls == 0 {
		t.Error("no round published a non-empty ACL in sketch mode")
	}
}

// TestSketchPipelineDeterministic replays the identical profile twice through
// independent sketch-mode pipelines; every round — verdicts, ACL bytes, model
// sequence — must match bit-for-bit. The sketch path has no randomized state,
// so divergence here means iteration-order leakage in the aggregator.
func TestSketchPipelineDeterministic(t *testing.T) {
	prof := lcProfile()
	a := driveRounds(t, sketchPipeline(prof.Seed), 12, 3, nil)
	b := driveRounds(t, sketchPipeline(prof.Seed), 12, 3, nil)
	if want, have := roundsKey(a), roundsKey(b); want != have {
		t.Errorf("sketch-mode runs diverge:\n--- first\n%s--- second\n%s", want, have)
	}
}

// TestSketchPipelineMatchesExactAggregates compares sketch-mode rounds to the
// exact path on the same stream. Per-target aggregate counts and record
// counts must be identical: the lifecycle profile's distinct targets per
// minute sit far below the resident-group budget, so the sketch path admits
// every target and only the per-source summaries are approximate.
func TestSketchPipelineMatchesExactAggregates(t *testing.T) {
	prof := lcProfile()
	exact := driveRounds(t, NewPipeline(PipelineConfig{Seed: prof.Seed, MinTrainRecords: 64}), 12, 3, nil)
	sk := driveRounds(t, sketchPipeline(prof.Seed), 12, 3, nil)

	if len(exact) != len(sk) {
		t.Fatalf("round counts differ: exact %d, sketch %d", len(exact), len(sk))
	}
	for i := range exact {
		if exact[i].Records != sk[i].Records {
			t.Errorf("round %d: records exact=%d sketch=%d", i, exact[i].Records, sk[i].Records)
		}
		if exact[i].Aggregates != sk[i].Aggregates {
			t.Errorf("round %d: aggregates exact=%d sketch=%d", i, exact[i].Aggregates, sk[i].Aggregates)
		}
	}
}
