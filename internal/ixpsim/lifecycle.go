package ixpsim

// Model lifecycle: the pipeline separates the *trainer* (the mutable
// Scrubber that accumulates rule history and refits every round) from the
// *champion* (the immutable model whose verdicts reach the ACL writer) and
// an optional *challenger* (scored in shadow on the same windows; its
// verdicts never leave the process).
//
// The champion lives behind an atomic.Pointer: promotion is a pointer flip
// observed by the serving path with no ingest pause and no lock on the hot
// path. With a registry configured, every trained model is published as an
// immutable versioned bundle first and the champion is the re-loaded
// registry copy, so what serves is byte-for-byte what is on disk. A failed
// publish is graceful degradation: the last-good champion keeps serving
// and the failure is counted.

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/drift"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
	"github.com/ixp-scrubber/ixpscrubber/internal/registry"
)

// PromotionPolicy gates challenger auto-promotion.
type PromotionPolicy struct {
	// ShadowRounds is how many completed shadow rounds a challenger needs
	// before it is considered for auto-promotion. 0 means 1.
	ShadowRounds int
	// MaxDisagreement is the cumulative champion/challenger disagreement
	// ratio above which auto-promotion is withheld (a divergent challenger
	// needs an explicit PromoteChallenger — the operator decision). 0
	// means 0.02; negative disables auto-promotion entirely.
	MaxDisagreement float64
}

func (pp PromotionPolicy) withDefaults() PromotionPolicy {
	if pp.ShadowRounds <= 0 {
		pp.ShadowRounds = 1
	}
	if pp.MaxDisagreement == 0 {
		pp.MaxDisagreement = 0.02
	}
	return pp
}

// served is one immutable model in a serving role (champion or challenger).
// The scrubber inside is never refitted; a new round builds a new served.
type served struct {
	s   *core.Scrubber
	seq uint64
	id  string // registry id; "" when not registry-backed
	// ref is the drift reference frozen from this model's training window;
	// installed into the monitor when the model becomes champion.
	ref *drift.Reference
	// imported marks a classifier-only transfer that re-binds to the local
	// encoder (Fig. 12).
	imported bool
	// Shadow accounting, mutated under lifeMu only.
	rounds    int
	shadowN   uint64
	disagreeN uint64
}

func (sv *served) disagreement() float64 {
	if sv.shadowN == 0 {
		return 0
	}
	return float64(sv.disagreeN) / float64(sv.shadowN)
}

// lifecycleMetrics surfaces model lifecycle and drift state; nil disables.
type lifecycleMetrics struct {
	activeSeq       *obs.Gauge
	promotions      *obs.Counter
	publishes       *obs.Counter
	publishFailures *obs.Counter
	invalidManifest *obs.Counter
	gcRemoved       *obs.Counter
	psiMean         *obs.Gauge
	psiMax          *obs.Gauge
	scorePSI        *obs.Gauge
	retrain         *obs.Gauge
	disagreement    *obs.Gauge
	shadowScored    *obs.Counter
}

func newLifecycleMetrics(r *obs.Registry) *lifecycleMetrics {
	return &lifecycleMetrics{
		activeSeq: r.Gauge("ixps_model_active_seq",
			"Sequence number of the model currently serving verdicts (0 = none)."),
		promotions: r.Counter("ixps_model_promotions_total",
			"Champion promotions (hot swaps) since start."),
		publishes: r.Counter("ixps_registry_publishes_total",
			"Model bundles committed to the registry."),
		publishFailures: r.Counter("ixps_registry_publish_failures_total",
			"Registry publishes that failed (last-good champion kept serving)."),
		invalidManifest: r.Counter("ixps_registry_invalid_manifests_total",
			"Registry manifests skipped as unreadable during scans."),
		gcRemoved: r.Counter("ixps_registry_gc_removed_total",
			"Model versions removed by registry garbage collection."),
		psiMean: r.Gauge("ixps_drift_feature_psi_mean",
			"Mean per-feature PSI of served windows vs the champion's training reference."),
		psiMax: r.Gauge("ixps_drift_feature_psi_max",
			"Maximum per-feature PSI vs the champion's training reference."),
		scorePSI: r.Gauge("ixps_drift_score_psi",
			"PSI of the champion's verdict distribution vs its training verdicts."),
		retrain: r.Gauge("ixps_drift_retrain_recommended",
			"1 when a drift or disagreement threshold is crossed, else 0."),
		disagreement: r.Gauge("ixps_shadow_disagreement_ratio",
			"Fraction of shadow-scored records where champion and challenger disagree."),
		shadowScored: r.Counter("ixps_shadow_scored_total",
			"Records scored by both champion and challenger."),
	}
}

// registryMetrics bridges the registry's counters onto the obs registry.
func (lm *lifecycleMetrics) registryMetrics() *registry.Metrics {
	return &registry.Metrics{
		Publishes:        lm.publishes.Inc,
		PublishFailures:  lm.publishFailures.Inc,
		InvalidManifests: lm.invalidManifest.Inc,
		GCRemoved:        func(n int) { lm.gcRemoved.Add(uint64(n)) },
	}
}

// ActiveModel reports the serving champion's sequence and registry id
// (0, "" before the first promotion).
func (p *Pipeline) ActiveModel() (uint64, string) {
	if ch := p.champion.Load(); ch != nil {
		return ch.seq, ch.id
	}
	return 0, ""
}

// Challenger reports the shadow model's sequence and registry id (0, ""
// when none is installed).
func (p *Pipeline) Challenger() (uint64, string) {
	if ch := p.challenger.Load(); ch != nil {
		return ch.seq, ch.id
	}
	return 0, ""
}

// DriftStats snapshots the serving-path drift monitor.
func (p *Pipeline) DriftStats() drift.Stats {
	return p.monitor.Stats()
}

// ChampionScrubber returns the serving model itself (nil before the first
// promotion). The scrubber is immutable — a new round builds a new one —
// so callers may score it concurrently with serving; cluster election
// scores it against imported candidates on a shared local encoding.
func (p *Pipeline) ChampionScrubber() *core.Scrubber {
	if ch := p.champion.Load(); ch != nil {
		return ch.s
	}
	return nil
}

// scoreAggs returns a model's verdicts plus the encoded matrix they were
// computed from. Models that bypass encoding (RBC) return a nil matrix.
func scoreAggs(s *core.Scrubber, aggs []*features.Aggregate) ([]int, [][]float64, error) {
	x := s.EncodeFeatures(aggs)
	pred := make([]int, len(x))
	if err := s.PredictEncodedInto(x, pred); err == nil {
		// The verdict slice escapes to the caller, but the pipeline's
		// intermediate matrices are reused round over round.
		return pred, x, nil
	}
	pred, err := s.Predict(aggs) // pipeline-less models (RBC, DUM)
	return pred, nil, err
}

// nextSeq assigns the next model sequence: the registry's manifest number
// when registry-backed (mirrored into the local counter), else the local
// monotonic counter.
func (p *Pipeline) nextSeq(m *registry.Manifest) uint64 {
	if m != nil {
		for {
			cur := p.seq.Load()
			if m.Seq <= cur || p.seq.CompareAndSwap(cur, m.Seq) {
				break
			}
		}
		return m.Seq
	}
	return p.seq.Add(1)
}

// windowBounds reports the (min, max) record timestamps, relying on no
// ordering of the window slice.
func windowBounds(records []netflow.Record) (int64, int64) {
	if len(records) == 0 {
		return 0, 0
	}
	lo, hi := records[0].Timestamp, records[0].Timestamp
	for _, r := range records[1:] {
		if r.Timestamp < lo {
			lo = r.Timestamp
		}
		if r.Timestamp > hi {
			hi = r.Timestamp
		}
	}
	return lo, hi
}

// buildCandidate wraps the freshly fitted trainer as a serving candidate.
// With a registry, the bundle is published first and the candidate is the
// re-loaded immutable copy — serialization round trips preserve
// predictions bit-for-bit, so the swap is invisible to ACL output. The
// drift reference freezes the candidate's training-window view.
func (p *Pipeline) buildCandidate(ctx context.Context, s *core.Scrubber, x [][]float64, pred []int, records []netflow.Record) (*served, error) {
	cand := &served{s: s}
	if x != nil {
		if ref, err := drift.NewReference(x, pred, p.cfg.Drift); err == nil {
			cand.ref = ref
		}
	}
	if p.cfg.Registry == nil {
		if p.cfg.Shadow {
			// Shadow mode needs the incumbent frozen while the trainer keeps
			// refitting, but without a registry cand.s aliases the trainer.
			// Clone through the bundle round trip (which preserves
			// predictions bit-for-bit) so champion and challenger really are
			// immutable snapshots.
			var buf bytes.Buffer
			if err := s.Save(&buf); err != nil {
				return nil, fmt.Errorf("ixpsim: freezing candidate: %w", err)
			}
			loaded, err := core.Load(&buf)
			if err != nil {
				return nil, fmt.Errorf("ixpsim: reloading frozen candidate: %w", err)
			}
			if p.cfg.Metrics != nil {
				loaded.SetMetrics(core.RegisterMetrics(p.cfg.Metrics))
			}
			cand.s = loaded
		}
		cand.seq = p.nextSeq(nil)
		return cand, nil
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		p.lm.countPublishFailure()
		return nil, fmt.Errorf("ixpsim: bundling candidate: %w", err)
	}
	from, to := windowBounds(records)
	parent := ""
	if ch := p.champion.Load(); ch != nil {
		parent = ch.id
	}
	m, err := p.cfg.Registry.Publish(ctx, buf.Bytes(), registry.Meta{
		TrainFromUnix:      from,
		TrainToUnix:        to,
		TrainRecords:       len(records),
		EncoderFingerprint: s.Encoder().Fingerprint(),
		Parent:             parent,
	})
	if err != nil {
		return nil, err
	}
	loaded, err := core.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("ixpsim: reloading published bundle: %w", err)
	}
	if p.cfg.Metrics != nil {
		loaded.SetMetrics(core.RegisterMetrics(p.cfg.Metrics))
	}
	cand.s = loaded
	cand.id = m.ID
	cand.seq = p.nextSeq(&m)
	return cand, nil
}

// countPublishFailure increments the failure counter when metrics exist.
// Registry-side failures already count through registryMetrics; this covers
// failures before the registry is reached (e.g. unserializable model).
func (lm *lifecycleMetrics) countPublishFailure() {
	if lm != nil {
		lm.publishFailures.Inc()
	}
}

// promoteLocked makes cand the champion: registry pointer flip (when
// backed), atomic hot swap of the serving pointer, fresh drift reference,
// registry GC. Callers hold lifeMu.
func (p *Pipeline) promoteLocked(ctx context.Context, cand *served) {
	if cand.imported {
		// Classifier-only transfer: bind the travelling trees to the
		// freshest local WoE snapshot at promotion time (§6.4).
		cand.s = cand.s.WithEncoder(p.trainer.Encoder())
	}
	if p.cfg.Registry != nil && cand.id != "" {
		if err := p.cfg.Registry.Promote(ctx, cand.id); err != nil {
			// The in-process swap still happens: serving beats bookkeeping.
			p.cfg.Log.Error("registry promote failed", "id", cand.id, "err", err)
		}
	}
	p.champion.Store(cand)
	p.monitor.SetReference(cand.ref)
	if p.lm != nil {
		p.lm.promotions.Inc()
		p.lm.activeSeq.Set(float64(cand.seq))
	}
	if p.cfg.Registry != nil {
		p.cfg.Registry.GC(p.registryKeep())
	}
	p.cfg.Log.Info("model promoted",
		"seq", cand.seq, "id", cand.id, "imported", cand.imported)
}

func (p *Pipeline) registryKeep() int {
	if p.cfg.RegistryKeep > 0 {
		return p.cfg.RegistryKeep
	}
	return 3
}

// PromoteChallenger promotes the current challenger immediately — the
// operator override for a challenger whose disagreement keeps it from
// auto-promoting. The swap is atomic; in-flight scoring finishes against
// whichever champion it started with.
func (p *Pipeline) PromoteChallenger(ctx context.Context) error {
	p.lifeMu.Lock()
	defer p.lifeMu.Unlock()
	ch := p.challenger.Load()
	if ch == nil {
		return errors.New("ixpsim: no challenger installed")
	}
	p.promoteLocked(ctx, ch)
	p.challenger.Store(nil)
	return nil
}

// ImportClassifier installs a classifier-only bundle as the standing
// challenger. It shadow-scores every subsequent round against the local
// champion (re-bound to each window's fresh encoding) and follows the
// normal promotion policy. With a registry configured the import is also
// published (kind classifier-only, source imported) for provenance.
func (p *Pipeline) ImportClassifier(ctx context.Context, bundle []byte) error {
	info, err := core.InspectBundle(bundle)
	if err != nil {
		return fmt.Errorf("ixpsim: rejecting import: %w", err)
	}
	if info.Kind != core.BundleClassifierOnly {
		return fmt.Errorf("ixpsim: refusing to import %s bundle (classifier-only required; full bundles would overwrite local knowledge)", info.Kind)
	}
	s, err := core.Load(bytes.NewReader(bundle))
	if err != nil {
		return fmt.Errorf("ixpsim: loading import: %w", err)
	}
	if p.cfg.Metrics != nil {
		s.SetMetrics(core.RegisterMetrics(p.cfg.Metrics))
	}
	ch := &served{s: s, imported: true}
	if p.cfg.Registry != nil {
		m, err := p.cfg.Registry.ImportClassifier(ctx, bundle, registry.Meta{})
		if err != nil {
			return err
		}
		ch.id = m.ID
		ch.seq = p.nextSeq(&m)
	} else {
		ch.seq = p.nextSeq(nil)
	}
	p.lifeMu.Lock()
	p.challenger.Store(ch)
	p.lifeMu.Unlock()
	p.cfg.Log.Info("classifier-only model imported as challenger",
		"seq", ch.seq, "id", ch.id)
	return nil
}

// shadowScore runs the challenger over the round's shared encoded matrix
// and folds the disagreement into the monitor and the challenger's own
// account. Returns the cumulative disagreement ratio. Callers hold lifeMu.
func (p *Pipeline) shadowScoreLocked(ch *served, x [][]float64, champPred []int) float64 {
	if cap(p.shadowPred) < len(x) {
		p.shadowPred = make([]int, len(x))
	}
	challPred := p.shadowPred[:len(x)]
	if err := ch.s.PredictEncodedInto(x, challPred); err != nil {
		p.cfg.Log.Error("shadow scoring failed", "seq", ch.seq, "err", err)
		return ch.disagreement()
	}
	n := len(champPred)
	if len(challPred) < n {
		n = len(challPred)
	}
	for i := 0; i < n; i++ {
		if champPred[i] != challPred[i] {
			ch.disagreeN++
		}
	}
	ch.shadowN += uint64(n)
	ch.rounds++
	p.monitor.ObserveShadow(champPred[:n], challPred[:n])
	if p.lm != nil {
		p.lm.shadowScored.Add(uint64(n))
	}
	return ch.disagreement()
}

// publishDriftMetrics pushes the monitor snapshot onto the gauges.
func (p *Pipeline) publishDriftMetrics() {
	if p.lm == nil {
		return
	}
	s := p.monitor.Stats()
	p.lm.psiMean.Set(s.FeaturePSIMean)
	p.lm.psiMax.Set(s.FeaturePSIMax)
	p.lm.scorePSI.Set(s.ScorePSI)
	p.lm.disagreement.Set(s.Disagreement)
	if s.RetrainRecommended {
		p.lm.retrain.Set(1)
	} else {
		p.lm.retrain.Set(0)
	}
}

// restoreChampionFromRegistry installs the registry's champion as the
// serving model, if one exists and loads. Used at startup so a warm
// registry serves immediately even before the first local training round.
func (p *Pipeline) restoreChampionFromRegistry() bool {
	if p.cfg.Registry == nil {
		return false
	}
	m, bundle, err := p.cfg.Registry.Champion()
	if err != nil {
		return false
	}
	s, err := core.Load(bytes.NewReader(bundle))
	if err != nil {
		p.cfg.Log.Error("registry champion failed to load", "id", m.ID, "err", err)
		return false
	}
	if m.Kind == core.BundleClassifierOnly {
		// An imported champion re-binds to whatever local knowledge exists.
		s = s.WithEncoder(p.trainer.Encoder())
	}
	if p.cfg.Metrics != nil {
		s.SetMetrics(core.RegisterMetrics(p.cfg.Metrics))
	}
	ch := &served{s: s, seq: m.Seq, id: m.ID, imported: m.Source == registry.SourceImported}
	p.nextSeq(&m)
	p.lifeMu.Lock()
	p.champion.Store(ch)
	p.lifeMu.Unlock()
	p.trained.Store(true)
	if p.lm != nil {
		p.lm.activeSeq.Set(float64(ch.seq))
	}
	p.cfg.Log.Info("serving registry champion", "seq", ch.seq, "id", ch.id)
	return true
}
