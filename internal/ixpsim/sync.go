package ixpsim

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/bgp"
	"github.com/ixp-scrubber/ixpscrubber/internal/sflow"
)

// markerPrefix is a sync beacon inside the RFC 2544 benchmarking range: the
// member session announces and immediately withdraws it to establish a
// happens-before edge with all previously sent updates (BGP sessions are
// ordered byte streams, so once the marker round-trips, every earlier
// update has been applied to the registry).
var markerPrefix = netip.MustParsePrefix("198.18.255.254/32")

const pollInterval = 500 * time.Microsecond

// SyncBGP round-trips the marker through the route server over a raw
// member session.
func SyncBGP(ctx context.Context, member *bgp.Conn, reg *bgp.Registry, nextHop netip.Addr, at int64) error {
	return SyncBGPWith(ctx, reg, at,
		func() error { return member.AnnounceBlackhole(markerPrefix, nextHop) },
		func() error { return member.WithdrawBlackhole(markerPrefix) })
}

// SyncBGPWith is the transport-agnostic marker round-trip: announce sends
// the marker, withdraw retracts it, and both halves are confirmed against
// the registry. The chaos harness syncs through a bgp.Persistent session
// with this.
func SyncBGPWith(ctx context.Context, reg *bgp.Registry, at int64, announce, withdraw func() error) error {
	if err := announce(); err != nil {
		return fmt.Errorf("ixpsim: marker announce: %w", err)
	}
	marker := markerPrefix.Addr()
	if err := PollUntil(ctx, func() bool { return reg.Covered(marker, at) }); err != nil {
		return fmt.Errorf("ixpsim: waiting for marker announce: %w", err)
	}
	if err := withdraw(); err != nil {
		return fmt.Errorf("ixpsim: marker withdraw: %w", err)
	}
	if err := PollUntil(ctx, func() bool { return !reg.Covered(marker, at) }); err != nil {
		return fmt.Errorf("ixpsim: waiting for marker withdraw: %w", err)
	}
	return nil
}

// MarkerPrefix is the sync beacon SyncBGP round-trips; exported so harness
// code can tell marker updates apart from traffic-driven ones.
func MarkerPrefix() netip.Prefix { return markerPrefix }

// WaitSamples waits until the collector has seen total samples, tolerating
// loopback UDP loss by giving up once progress stalls.
func WaitSamples(ctx context.Context, c *sflow.Collector, total uint64) error {
	last := c.Stats.Samples.Load()
	stall := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		cur := c.Stats.Samples.Load()
		if cur >= total {
			return nil
		}
		if cur == last {
			stall++
			if stall > 400 { // ~200 ms without progress: count it as loss
				return nil
			}
		} else {
			stall = 0
			last = cur
		}
		time.Sleep(pollInterval)
	}
}

// PollUntil spins (with a short sleep) until cond holds, the context ends,
// or a 10 s deadline expires.
func PollUntil(ctx context.Context, cond func() bool) error {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ixpsim: condition not reached within 10s")
		}
		time.Sleep(pollInterval)
	}
	return nil
}
