package ixpsim

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/bgp"
	"github.com/ixp-scrubber/ixpscrubber/internal/sflow"
)

// markerPrefix is a sync beacon inside the RFC 2544 benchmarking range: the
// member session announces and immediately withdraws it to establish a
// happens-before edge with all previously sent updates (BGP sessions are
// ordered byte streams, so once the marker round-trips, every earlier
// update has been applied to the registry).
var markerPrefix = netip.MustParsePrefix("198.18.255.254/32")

const pollInterval = 500 * time.Microsecond


// syncBGP round-trips the marker through the route server.
func syncBGP(ctx context.Context, member *bgp.Conn, reg *bgp.Registry, nextHop netip.Addr, at int64) error {
	if err := member.AnnounceBlackhole(markerPrefix, nextHop); err != nil {
		return fmt.Errorf("ixpsim: marker announce: %w", err)
	}
	marker := markerPrefix.Addr()
	if err := pollUntil(ctx, func() bool { return reg.Covered(marker, at) }); err != nil {
		return fmt.Errorf("ixpsim: waiting for marker announce: %w", err)
	}
	if err := member.WithdrawBlackhole(markerPrefix); err != nil {
		return fmt.Errorf("ixpsim: marker withdraw: %w", err)
	}
	if err := pollUntil(ctx, func() bool { return !reg.Covered(marker, at) }); err != nil {
		return fmt.Errorf("ixpsim: waiting for marker withdraw: %w", err)
	}
	return nil
}

// waitSamples waits until the collector has seen total samples, tolerating
// loopback UDP loss by giving up once progress stalls.
func waitSamples(ctx context.Context, c *sflow.Collector, total uint64) error {
	last := c.Stats.Samples.Load()
	stall := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		cur := c.Stats.Samples.Load()
		if cur >= total {
			return nil
		}
		if cur == last {
			stall++
			if stall > 400 { // ~200 ms without progress: count it as loss
				return nil
			}
		} else {
			stall = 0
			last = cur
		}
		time.Sleep(pollInterval)
	}
}

func pollUntil(ctx context.Context, cond func() bool) error {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ixpsim: condition not reached within 10s")
		}
		time.Sleep(pollInterval)
	}
	return nil
}
