// Package ixpsim wires the substrates into a live, wire-protocol-accurate
// IXP simulation: synthetic member switches export real sFlow v5 datagrams
// over UDP to a collector, member routers announce blackholes over real BGP
// sessions to a route server, the collector labels flows against the BGP
// registry, balances them online, and a Scrubber trains and classifies —
// the full Figure 1/2 deployment on loopback interfaces.
package ixpsim

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/netip"
	"sync"

	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/bgp"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/packet"
	"github.com/ixp-scrubber/ixpscrubber/internal/sflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// Config parameterizes a simulation run.
type Config struct {
	// Profile drives the traffic generator.
	Profile synth.Profile
	// FromMin/ToMin bound the simulated time range (unix minutes).
	FromMin, ToMin int64
	// BatchSize is the number of flow samples per sFlow datagram.
	BatchSize int
	// Log receives progress; nil silences it.
	Log *slog.Logger
}

// Result carries what the simulation produced.
type Result struct {
	// Balanced is the online-balanced labeled record stream (the ML
	// training set of this vantage point).
	Balanced []netflow.Record
	// BalanceStats accounts the reduction.
	BalanceStats balance.Stats
	// CollectorStats snapshots the sFlow collector counters.
	Datagrams, Samples, Records, Blackholed uint64
	// BlackholesSeen is the number of distinct prefixes the route server's
	// registry recorded.
	BlackholesSeen int
}

// Run executes the simulation: it starts a route server and an sFlow
// collector on loopback, replays the generator's traffic as wire-format
// datagrams and its blackhole events as BGP announcements, and returns the
// balanced dataset the collector side assembled.
//
// Simulated time is decoupled from wall time: each generated minute is
// replayed as fast as the sockets allow, with the collector's clock driven
// by the replay.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}

	// Route server.
	rsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("ixpsim: route server listen: %w", err)
	}
	registry := bgp.NewRegistry()
	var simClock struct {
		mu  sync.Mutex
		now int64
	}
	setClock := func(t int64) {
		simClock.mu.Lock()
		simClock.now = t
		simClock.mu.Unlock()
	}
	getClock := func() int64 {
		simClock.mu.Lock()
		defer simClock.mu.Unlock()
		return simClock.now
	}
	setClock(cfg.FromMin * 60)

	rs := &bgp.RouteServer{
		ASN:      64999,
		RouterID: [4]byte{192, 0, 2, 254},
		Registry: registry,
		Log:      log,
		Clock:    getClock,
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	rsDone := make(chan error, 1)
	go func() { rsDone <- rs.Serve(ctx, rsLn) }()

	// sFlow collector feeding the online balancer.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("ixpsim: collector listen: %w", err)
	}
	res := &Result{}
	var balMu sync.Mutex
	bal := balance.ForRecords(cfg.Profile.Seed, func(r netflow.Record) {
		res.Balanced = append(res.Balanced, r)
	})
	collector := &sflow.Collector{
		Label: registry.Covered,
		Clock: getClock,
		Log:   log,
		Emit: func(r *netflow.Record) {
			balMu.Lock()
			bal.Add(*r)
			balMu.Unlock()
		},
	}
	colDone := make(chan error, 1)
	go func() { colDone <- collector.Listen(ctx, pc) }()

	// Member-side BGP session announcing blackholes.
	member, err := bgp.Dial(ctx, rsLn.Addr().String(), bgp.Open{
		ASN: 64501, HoldTime: 90, RouterID: [4]byte{192, 0, 2, 1},
	})
	if err != nil {
		return nil, fmt.Errorf("ixpsim: member session: %w", err)
	}
	defer member.Close()

	// Member-side sFlow exporter.
	exporter, err := sflow.NewExporter(pc.LocalAddr().String(), netip.MustParseAddr("192.0.2.10"))
	if err != nil {
		return nil, fmt.Errorf("ixpsim: exporter: %w", err)
	}
	defer exporter.Close()

	gen := synth.NewGenerator(cfg.Profile)
	var builder packet.Builder
	var seq uint32
	var buf []synth.Flow
	samples := make([]sflow.FlowSample, 0, cfg.BatchSize)
	// Per-datagram headers alias one builder; keep per-sample copies.
	headerArena := make([]byte, 0, cfg.BatchSize*synth.MaxSampledHeader)

	nextHop := netip.MustParseAddr("192.0.2.1")
	var totalSent uint64

	for m := cfg.FromMin; m < cfg.ToMin; m++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		setClock(m * 60)
		buf = gen.GenerateMinute(m, buf[:0])

		// Announce/withdraw blackholes over the real BGP session first so
		// the registry is current before this minute's samples arrive.
		pending := 0
		for _, ev := range gen.Events() {
			if ev.Announce {
				err = member.AnnounceBlackhole(ev.Prefix, nextHop)
			} else {
				err = member.WithdrawBlackhole(ev.Prefix)
			}
			if err != nil {
				return nil, fmt.Errorf("ixpsim: bgp event: %w", err)
			}
			pending++
		}
		// The route server processes updates asynchronously; round-trip a
		// marker so the registry has absorbed every event before this
		// minute's samples are labeled.
		if pending > 0 {
			if err := SyncBGP(ctx, member, registry, nextHop, m*60); err != nil {
				return nil, err
			}
		}

		samples = samples[:0]
		headerArena = headerArena[:0]
		for i := range buf {
			f := &buf[i]
			frame, err := synth.FrameFor(f, &builder)
			if err != nil {
				return nil, err
			}
			start := len(headerArena)
			headerArena = append(headerArena, frame...)
			seq++
			samples = append(samples, sflow.FlowSample{
				Sequence:     seq,
				SourceID:     1,
				SamplingRate: f.SamplingRate,
				SamplePool:   seq * f.SamplingRate,
				FrameLength:  uint32(f.Bytes / f.Packets),
				Header:       headerArena[start:len(headerArena):len(headerArena)],
			})
			if len(samples) == cfg.BatchSize {
				if err := exporter.Send(samples); err != nil {
					return nil, err
				}
				samples = samples[:0]
				headerArena = headerArena[:0]
			}
		}
		if len(samples) > 0 {
			if err := exporter.Send(samples); err != nil {
				return nil, err
			}
		}
		// Wait for the collector to drain this minute's datagrams before
		// advancing simulated time.
		totalSent += uint64(len(buf))
		if err := WaitSamples(ctx, collector, totalSent); err != nil {
			return nil, err
		}
	}

	balMu.Lock()
	bal.Flush()
	res.BalanceStats = bal.Stats
	balMu.Unlock()

	res.Datagrams = collector.Stats.Datagrams.Load()
	res.Samples = collector.Stats.Samples.Load()
	res.Records = collector.Stats.Records.Load()
	res.Blackholed = collector.Stats.Blackholed.Load()
	res.BlackholesSeen = registry.PrefixCount()

	cancel()
	if err := <-rsDone; err != nil {
		return nil, fmt.Errorf("ixpsim: route server: %w", err)
	}
	if err := <-colDone; err != nil {
		return nil, fmt.Errorf("ixpsim: collector: %w", err)
	}
	return res, nil
}
