package ixpsim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/netip"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/drift"
	"github.com/ixp-scrubber/ixpscrubber/internal/dropper"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
	"github.com/ixp-scrubber/ixpscrubber/internal/registry"
)

// PipelineConfig parameterizes the daemon-side processing chain downstream
// of the sockets.
type PipelineConfig struct {
	// Seed fixes the balancer's benign sampling (and therefore the whole
	// training stream for a given input).
	Seed uint64
	// Window is the sliding training window. Zero means 24h.
	Window time.Duration
	// QueueCap bounds the ingest queue in batches; 0 means 64.
	QueueCap int
	// DropPolicy says what a full ingest queue does to new batches.
	DropPolicy netflow.DropPolicy
	// MinTrainRecords skips training rounds below this many balanced
	// records; 0 means 100.
	MinTrainRecords int
	// ACLPath, when set, atomically publishes rendered ACLs there after
	// every successful round.
	ACLPath string
	// RulesPath, when set, exports the mined rule list there after every
	// successful round.
	RulesPath string
	// CheckpointPath, when set, atomically persists the pipeline state
	// (balancer, window, fitted model) there after every successful round,
	// and is what RestoreCheckpoint reads on startup.
	CheckpointPath string
	// FS handles ACL and checkpoint writes; nil means the real filesystem.
	// Fault injection scripts torn writes through this.
	FS acl.FS
	// Core configures the two-step model. Zero value means DefaultConfig.
	Core *core.Config
	// Clock returns unix seconds, driving window pruning; nil means
	// time.Now().Unix. Simulations inject virtual time here.
	Clock func() int64
	// KeepHook, when set, observes every record the balancer keeps into
	// the training window. The chaos harness digests the kept stream per
	// minute through this; it runs on the consumer goroutine, so it must
	// be fast.
	KeepHook func(netflow.Record)
	// ConsumeGate, when set, runs before each queue batch is consumed. A
	// gate that blocks models a stuck downstream consumer: the ingest
	// queue backs up behind it and exercises its drop policy.
	ConsumeGate func(ctx context.Context)
	// Metrics attaches the pipeline stages to an observability registry;
	// nil disables instrumentation.
	Metrics *obs.Registry
	Log     *slog.Logger

	// Registry, when set, versions every trained model: bundles publish
	// before they serve, promotions flip the on-disk champion pointer, and
	// old versions are garbage-collected. Without it the pipeline serves
	// in-process models exactly as before.
	Registry *registry.Registry
	// Shadow holds each newly trained model as a challenger instead of
	// promoting it immediately: the incumbent champion keeps writing ACLs
	// while the challenger is scored in shadow on the same windows, and
	// promotion follows Promotion (or an explicit PromoteChallenger). The
	// first trained model always promotes immediately — there is nothing
	// to shadow against.
	Shadow bool
	// Promotion tunes challenger auto-promotion; zero value means 1 shadow
	// round and ≤2% disagreement.
	Promotion PromotionPolicy
	// Drift sets the drift-monitor thresholds; zero value means
	// drift.DefaultConfig.
	Drift drift.Config
	// RegistryKeep is how many unpinned, non-champion versions registry GC
	// retains after each promotion; 0 means 3.
	RegistryKeep int

	// Drop enables the compiled mitigation fast path: an inline
	// dropper.Stage between the collectors and the ingest queue. After
	// every successful round the champion's ACL verdicts recompile into a
	// flat match program and hot-swap in without pausing ingest; records
	// whose first matching rule says drop never reach the balancer. The
	// compiled program rides the checkpoint, so a restarted pipeline
	// resumes dropping with its exact pre-crash rules.
	Drop bool
}

// Round reports one training round.
type Round struct {
	// Skipped is true when the window held too few records to train.
	Skipped bool
	// Records is the window size the round trained on.
	Records int
	// Aggregates is the number of per-target aggregates classified.
	Aggregates int
	// Flagged lists the targets classified as DDoS victims, sorted.
	Flagged []netip.Addr
	// ACLText is the rendered ACL file for the flagged targets.
	ACLText string
	// RulesMined is the mined (minimized) rule count.
	RulesMined int
	// Seq is the serving model's sequence number after this round.
	Seq uint64
	// Promoted is true when this round hot-swapped the champion.
	Promoted bool
	// Shadowed is true when a challenger was shadow-scored this round.
	Shadowed bool
	// Disagreement is the challenger's cumulative disagreement ratio after
	// this round (0 without a challenger).
	Disagreement float64
}

// Pipeline is the daemon's processing chain between the collector sockets
// and the ACL files: bounded ingest queue -> per-minute balancer -> sliding
// window -> two-step model -> atomic ACL publication. It exists apart from
// cmd/scrubberd so the chaos harness can drive the identical production
// path under fault injection.
//
// Failure behavior: a failed training round rolls the rule set back and
// keeps the previously fitted model serving (graceful degradation); ACL and
// checkpoint writes are atomic and retried with backoff.
type Pipeline struct {
	cfg   PipelineConfig
	queue *netflow.Queue

	balMu      sync.Mutex
	bal        *balance.Balancer[netflow.Record]
	balMetrics *balance.Metrics

	winMu  sync.Mutex
	window []netflow.Record

	// trainer is the mutable model: it accumulates rule history and refits
	// every round. What serves is champion — in the default configuration
	// the same object, with registry/shadow an immutable copy.
	trainer *core.Scrubber
	writer  *acl.Writer

	// lifeMu serializes lifecycle transitions (candidate adoption,
	// promotion, challenger swaps). The serving read path never takes it:
	// champion is an atomic pointer.
	lifeMu     sync.Mutex
	champion   atomic.Pointer[served]
	challenger atomic.Pointer[served]
	seq        atomic.Uint64
	monitor    *drift.Monitor
	lm         *lifecycleMetrics

	// shadowPred is the challenger's reusable verdict buffer: shadow
	// scoring runs every round under lifeMu, so one buffer serves all
	// rounds without per-round allocation.
	shadowPred []int

	tm       *trainMetrics
	ingested atomic.Uint64 // records through the balancer
	trained  atomic.Bool

	// drop is the compiled mitigation stage in front of the queue; nil
	// unless cfg.Drop.
	drop *dropper.Stage

	wg sync.WaitGroup
}

// trainMetrics instruments the training loop and ACL output; nil disables
// everything.
type trainMetrics struct {
	rounds        *obs.Counter
	failures      *obs.Counter
	skipped       *obs.Counter
	duration      *obs.Histogram
	windowRecords *obs.Gauge
	flagged       *obs.Gauge
	aclWrites     *obs.Counter
	aclEntries    *obs.Gauge
	checkpoints   *obs.Counter
}

func newTrainMetrics(r *obs.Registry) *trainMetrics {
	return &trainMetrics{
		rounds: r.Counter("ixps_training_rounds_total",
			"Training rounds completed successfully."),
		failures: r.Counter("ixps_training_failures_total",
			"Training rounds that returned an error (last good model kept serving)."),
		skipped: r.Counter("ixps_training_skipped_total",
			"Training ticks skipped for lack of balanced records."),
		duration: r.Histogram("ixps_training_duration_seconds",
			"Wall time of one full training round (mine + fit + classify + ACLs).", nil),
		windowRecords: r.Gauge("ixps_training_window_records",
			"Balanced records inside the sliding training window."),
		flagged: r.Gauge("ixps_flagged_targets",
			"Targets flagged as DDoS victims by the last round."),
		aclWrites: r.Counter("ixps_acl_writes_total",
			"ACL files written (or printed) after training rounds."),
		aclEntries: r.Gauge("ixps_acl_entries",
			"ACL entries generated by the last round."),
		checkpoints: r.Counter("ixps_checkpoints_total",
			"Pipeline state checkpoints persisted."),
	}
}

// NewPipeline assembles the chain. Call Start to run the queue consumer,
// and TrainRound from the owner's training tick.
func NewPipeline(cfg PipelineConfig) *Pipeline {
	if cfg.Window <= 0 {
		cfg.Window = 24 * time.Hour
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.MinTrainRecords <= 0 {
		cfg.MinTrainRecords = 100
	}
	if cfg.Clock == nil {
		cfg.Clock = func() int64 { return time.Now().Unix() }
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.DiscardHandler)
	}
	coreCfg := core.DefaultConfig()
	if cfg.Core != nil {
		coreCfg = *cfg.Core
	}
	cfg.Promotion = cfg.Promotion.withDefaults()
	p := &Pipeline{
		cfg:     cfg,
		queue:   netflow.NewQueue(cfg.QueueCap, cfg.DropPolicy),
		trainer: core.New(coreCfg),
		writer:  &acl.Writer{FS: cfg.FS, Log: cfg.Log},
		monitor: drift.NewMonitor(cfg.Drift),
	}
	p.bal = balance.ForRecords(cfg.Seed, p.keep)
	if cfg.Drop {
		p.drop = dropper.NewStage(func(b []netflow.Record) { p.queue.Put(b) })
	}
	if cfg.Metrics != nil {
		p.queue.RegisterMetrics(cfg.Metrics, "ingest")
		if p.drop != nil {
			p.drop.RegisterMetrics(cfg.Metrics)
		}
		p.balMetrics = balance.RegisterMetrics(cfg.Metrics)
		p.trainer.SetMetrics(core.RegisterMetrics(cfg.Metrics))
		p.tm = newTrainMetrics(cfg.Metrics)
		p.lm = newLifecycleMetrics(cfg.Metrics)
		if cfg.Registry != nil {
			cfg.Registry.Metrics = p.lm.registryMetrics()
		}
	}
	return p
}

func (p *Pipeline) keep(r netflow.Record) {
	p.winMu.Lock()
	p.window = append(p.window, r)
	p.winMu.Unlock()
	if p.cfg.KeepHook != nil {
		p.cfg.KeepHook(r)
	}
}

// Scrubber exposes the trainer model for inspection (rule export, bundles,
// classifier-only geographic export).
func (p *Pipeline) Scrubber() *core.Scrubber { return p.trainer }

// QueueStats exposes the ingest queue counters.
func (p *Pipeline) QueueStats() *netflow.QueueStats { return &p.queue.Stats }

// BalanceStats snapshots the balancer counters under its lock.
func (p *Pipeline) BalanceStats() balance.Stats {
	p.balMu.Lock()
	defer p.balMu.Unlock()
	return p.bal.Stats
}

// Writer exposes the ACL/checkpoint publisher (for retry counters).
func (p *Pipeline) Writer() *acl.Writer { return p.writer }

// Ingested returns how many records have passed through the balancer. The
// lock-step harness polls it to know when the queue has drained.
func (p *Pipeline) Ingested() uint64 { return p.ingested.Load() }

// Trained reports whether a model is serving (readiness).
func (p *Pipeline) Trained() bool { return p.trained.Load() }

// EmitBatch enqueues one collector batch; it is the collector's EmitBatch
// hook. With the dropper enabled the batch first passes the compiled
// match program, which compacts dropped records out in place before the
// survivors enqueue. The queue copies what it accepts, so the collector
// may reuse its slice either way.
func (p *Pipeline) EmitBatch(recs []netflow.Record) {
	if p.drop != nil {
		p.drop.EmitBatch(recs)
		return
	}
	p.queue.Put(recs)
}

// Dropper exposes the compiled mitigation stage (nil unless cfg.Drop).
func (p *Pipeline) Dropper() *dropper.Stage { return p.drop }

// Start launches the queue consumer. The consumer exits when the context
// is canceled or the queue is closed (Stop).
func (p *Pipeline) Start(ctx context.Context) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			batch, ok := p.queue.Get(ctx)
			if !ok {
				return
			}
			if p.cfg.ConsumeGate != nil {
				p.cfg.ConsumeGate(ctx)
			}
			p.balMu.Lock()
			p.bal.AddBatch(batch)
			p.balMu.Unlock()
			p.ingested.Add(uint64(len(batch)))
		}
	}()
}

// Stop closes the ingest queue and waits for the consumer to drain it.
func (p *Pipeline) Stop() {
	p.queue.Close()
	p.wg.Wait()
}

// WindowRecords returns a copy of the current training window without
// flushing the balancer or pruning by age — a read-only snapshot. Cluster
// election scores imported candidates on it right after a training round,
// where it is exactly the window that round trained on.
func (p *Pipeline) WindowRecords() []netflow.Record {
	p.winMu.Lock()
	defer p.winMu.Unlock()
	return append([]netflow.Record(nil), p.window...)
}

// snapshotWindow flushes the balancer, prunes records older than the
// window, and returns a copy of what remains.
func (p *Pipeline) snapshotWindow(now int64) []netflow.Record {
	p.balMu.Lock()
	p.bal.Flush()
	p.balMetrics.Publish(&p.bal.Stats)
	p.balMu.Unlock()

	p.winMu.Lock()
	defer p.winMu.Unlock()
	cutoff := now - int64(p.cfg.Window/time.Second)
	keep := p.window[:0]
	for _, r := range p.window {
		if r.Timestamp >= cutoff {
			keep = append(keep, r)
		}
	}
	p.window = keep
	return append([]netflow.Record(nil), p.window...)
}

// TrainRound runs one full round at time now (unix seconds): flush and
// prune, mine rules, fit, classify, publish ACLs, checkpoint. On error the
// pipeline keeps serving its previous model and rule set.
func (p *Pipeline) TrainRound(ctx context.Context, now int64) (*Round, error) {
	start := time.Now()
	records := p.snapshotWindow(now)
	if p.tm != nil {
		p.tm.windowRecords.Set(float64(len(records)))
	}
	if len(records) < p.cfg.MinTrainRecords {
		if p.tm != nil {
			p.tm.skipped.Inc()
		}
		p.cfg.Log.Info("not enough balanced records to train yet", "records", len(records))
		return &Round{Skipped: true, Records: len(records)}, nil
	}

	round, err := p.trainAndClassify(ctx, records)
	if err != nil {
		if p.tm != nil {
			p.tm.failures.Inc()
		}
		return nil, err
	}
	// Flip trained before checkpointing: the checkpoint must carry the
	// model that was just fitted, including the cumulative rule-set history
	// a restarted pipeline needs to keep curating from.
	p.trained.Store(true)
	if p.cfg.CheckpointPath != "" {
		if err := p.SaveCheckpoint(ctx); err != nil {
			// The round itself succeeded; a failed checkpoint degrades
			// restart fidelity, not serving.
			p.cfg.Log.Error("checkpoint failed", "err", err)
		} else if p.tm != nil {
			p.tm.checkpoints.Inc()
		}
	}
	if p.tm != nil {
		p.tm.rounds.Inc()
		p.tm.duration.ObserveSince(start)
	}
	p.cfg.Log.Info("training round complete",
		"records", round.Records,
		"aggregates", round.Aggregates,
		"rules_mined", round.RulesMined,
		"flagged_targets", len(round.Flagged),
		"took", time.Since(start).Round(time.Millisecond))
	return round, nil
}

func (p *Pipeline) trainAndClassify(ctx context.Context, records []netflow.Record) (*Round, error) {
	s := p.trainer
	// Rule mining replaces the trainer's rule set before Fit gets a
	// chance to fail; roll it back on any error so a bad round leaves the
	// old rules serving alongside the old model.
	oldRules := s.Rules()
	rep, err := s.MineRules(records)
	if err != nil {
		return nil, err
	}
	aggs := s.Aggregate(records, nil)
	if err := s.Fit(records, aggs); err != nil {
		s.SetRules(oldRules)
		return nil, err
	}
	// One encoded matrix feeds the candidate's verdicts, its frozen drift
	// reference, and challenger shadow scoring — encode once, score many.
	candPred, x, err := scoreAggs(s, aggs)
	if err != nil {
		s.SetRules(oldRules)
		return nil, err
	}

	// Lifecycle step: wrap the fitted trainer as an immutable candidate
	// (publishing to the registry when configured) and decide who serves.
	// A failed publish is graceful degradation, not a failed round: the
	// last-good champion keeps writing ACLs and the failure is counted.
	cand, candErr := p.buildCandidate(ctx, s, x, candPred, records)

	p.lifeMu.Lock()
	champ := p.champion.Load()
	promoted := false
	switch {
	case candErr != nil:
		p.cfg.Log.Error("candidate publish failed; champion keeps serving", "err", candErr)
		if champ == nil {
			// Nothing to fall back to: serve the in-process model without
			// registry backing rather than serving nothing.
			cand = &served{s: s, seq: p.nextSeq(nil)}
			if x != nil {
				if ref, rerr := drift.NewReference(x, candPred, p.cfg.Drift); rerr == nil {
					cand.ref = ref
				}
			}
			p.promoteLocked(ctx, cand)
			champ = cand
			promoted = true
		}
	case champ == nil || !p.cfg.Shadow:
		p.promoteLocked(ctx, cand)
		champ = cand
		promoted = true
	default:
		// Shadow mode with an incumbent: the new model challenges. An
		// imported transfer keeps its challenger slot — its shadow evaluation
		// spans rounds, and a locally trained candidate can always be rebuilt
		// next round.
		if cur := p.challenger.Load(); cur == nil || !cur.imported {
			p.challenger.Store(cand)
			p.cfg.Log.Info("model installed as challenger", "seq", cand.seq, "id", cand.id)
		}
	}

	// Champion verdicts are what reach the ACL writer. When the champion
	// is this round's candidate its verdicts are already computed on the
	// shared matrix; an older champion re-scores the window through its
	// own encoder (its view of the world, matching its drift reference).
	champPred, champX := candPred, x
	if champ != cand {
		var perr error
		champPred, champX, perr = scoreAggs(champ.s, aggs)
		if perr != nil {
			p.lifeMu.Unlock()
			return nil, fmt.Errorf("ixpsim: champion scoring: %w", perr)
		}
	}
	// The ACL is wholly the scoring champion's artifact — its verdicts,
	// its rules — even if a challenger promotes at the end of this round
	// (the promotion serves from the next round).
	aclModel := champ.s
	p.monitor.ObserveFeatures(champX)
	p.monitor.ObserveScores(champPred)

	// Shadow-score the standing challenger (a just-installed candidate or
	// an imported classifier) on the shared local encoding, then apply the
	// auto-promotion policy.
	shadowed := false
	disagreement := 0.0
	if ch := p.challenger.Load(); ch != nil && ch != champ && x != nil {
		disagreement = p.shadowScoreLocked(ch, x, champPred)
		shadowed = true
		pol := p.cfg.Promotion
		if ch.rounds >= pol.ShadowRounds && pol.MaxDisagreement >= 0 && disagreement <= pol.MaxDisagreement {
			p.promoteLocked(ctx, ch)
			p.challenger.Store(nil)
			promoted = true
			champ = ch
		}
	}
	seq := champ.seq
	p.lifeMu.Unlock()
	p.publishDriftMetrics()

	targetSet := map[netip.Addr]struct{}{}
	for i, a := range aggs {
		if champPred[i] == 1 {
			targetSet[a.Target] = struct{}{}
		}
	}
	// Sorted targets make the rendered ACL (and thus its digest) a pure
	// function of the classifications.
	targets := make([]netip.Addr, 0, len(targetSet))
	for t := range targetSet {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Compare(targets[j]) < 0 })

	entries := aclModel.GenerateACLs(targets, acl.ActionDrop)
	text := acl.RenderText(entries)
	if p.cfg.ACLPath != "" {
		if err := p.writer.Publish(ctx, p.cfg.ACLPath, []byte(text)); err != nil {
			return nil, err
		}
	}
	if p.tm != nil {
		p.tm.aclWrites.Inc()
		p.tm.aclEntries.Set(float64(len(entries)))
		p.tm.flagged.Set(float64(len(targets)))
	}
	if p.cfg.RulesPath != "" {
		var buf bytes.Buffer
		if err := s.Rules().Export(&buf); err != nil {
			return nil, err
		}
		if err := p.writer.Publish(ctx, p.cfg.RulesPath, buf.Bytes()); err != nil {
			return nil, err
		}
	}
	// Mitigation fast path: the verdicts that just published as ACL text
	// also compile into the flat match program and hot-swap in — an
	// atomic pointer store, so promotion → recompile → swap never pauses
	// ingest. Compilation is total (it cannot fail), and a swap on a
	// round that flagged nothing installs the empty program, withdrawing
	// the previous drops exactly like the ACL withdrawal it mirrors.
	if p.drop != nil {
		p.drop.Swap(dropper.Compile(dropper.FromEntries(entries)))
	}
	return &Round{
		Records:      len(records),
		Aggregates:   len(aggs),
		Flagged:      targets,
		ACLText:      text,
		RulesMined:   rep.RulesMinimized,
		Seq:          seq,
		Promoted:     promoted,
		Shadowed:     shadowed,
		Disagreement: disagreement,
	}, nil
}

// checkpointVersion guards the envelope layout.
const checkpointVersion = 1

// checkpointJSON is the pipeline's crash-recovery envelope: the balancer
// (RNG, in-progress bin, stats), the sliding window, and — once trained —
// the full model bundle. Restoring it resumes the training stream
// bit-for-bit; only batches still in the ingest queue at crash time are
// lost, which mirrors what UDP loses anyway.
type checkpointJSON struct {
	Version  int                            `json:"version"`
	Seed     uint64                         `json:"seed"`
	Ingested uint64                         `json:"ingested"`
	Balancer *balance.State[netflow.Record] `json:"balancer"`
	Window   []netflow.Record               `json:"window"`
	Trained  bool                           `json:"trained"`
	Bundle   json.RawMessage                `json:"bundle,omitempty"`
	// ModelSeq is the serving champion's sequence at checkpoint time, so a
	// restored pipeline resumes the version count instead of restarting at
	// 1 (additive; absent in pre-lifecycle checkpoints).
	ModelSeq uint64 `json:"model_seq,omitempty"`
	// DropProgram is the live drop program's rule list in DROP1 bytes
	// (additive; only with the dropper enabled). Restore recompiles it so
	// post-restart dropping is bit-identical to pre-crash.
	DropProgram []byte `json:"drop_program,omitempty"`
}

// SaveCheckpoint atomically persists the pipeline state to CheckpointPath.
// The queue consumer keeps running; the balancer and window are snapshotted
// under their locks. For bit-exact restore semantics, checkpoint at a
// quiescent point (the training tick, after the queue drained).
func (p *Pipeline) SaveCheckpoint(ctx context.Context) error {
	if p.cfg.CheckpointPath == "" {
		return errors.New("ixpsim: no checkpoint path configured")
	}
	cp := checkpointJSON{
		Version:  checkpointVersion,
		Seed:     p.cfg.Seed,
		Ingested: p.ingested.Load(),
		Trained:  p.trained.Load(),
	}
	if ch := p.champion.Load(); ch != nil {
		cp.ModelSeq = ch.seq
	}
	if p.drop != nil {
		if prog := p.drop.Program(); prog != nil && prog.Len() > 0 {
			cp.DropProgram = dropper.Marshal(prog.Rules())
		}
	}
	p.balMu.Lock()
	st, err := p.bal.Checkpoint()
	p.balMu.Unlock()
	if err != nil {
		return err
	}
	cp.Balancer = st
	p.winMu.Lock()
	cp.Window = append([]netflow.Record(nil), p.window...)
	p.winMu.Unlock()
	if cp.Trained {
		var buf bytes.Buffer
		if err := p.trainer.Save(&buf); err != nil {
			return fmt.Errorf("ixpsim: bundling model: %w", err)
		}
		cp.Bundle = buf.Bytes()
	}
	data, err := json.Marshal(&cp)
	if err != nil {
		return err
	}
	return p.writer.Publish(ctx, p.cfg.CheckpointPath, data)
}

// RestoreCheckpoint loads CheckpointPath, if present, and resumes from it:
// the balancer continues its RNG stream mid-bin, the window carries over,
// and the saved model serves immediately (readiness flips true). A missing
// file is not an error — the pipeline simply starts cold. With a registry
// configured, the registry's champion (last-good version) takes over the
// serving slot regardless of checkpoint state, so a warm registry serves
// even before the first local training round; the drift reference is
// rebuilt at the next promotion.
func (p *Pipeline) RestoreCheckpoint() (bool, error) {
	restored, err := p.restoreCheckpointFile()
	p.restoreChampionFromRegistry()
	return restored, err
}

func (p *Pipeline) restoreCheckpointFile() (bool, error) {
	if p.cfg.CheckpointPath == "" {
		return false, nil
	}
	data, err := os.ReadFile(p.cfg.CheckpointPath)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	var cp checkpointJSON
	if err := json.Unmarshal(data, &cp); err != nil {
		return false, fmt.Errorf("ixpsim: decoding checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return false, fmt.Errorf("ixpsim: unsupported checkpoint version %d", cp.Version)
	}
	p.balMu.Lock()
	err = p.bal.Restore(cp.Balancer)
	p.balMu.Unlock()
	if err != nil {
		return false, err
	}
	p.winMu.Lock()
	p.window = append(p.window[:0], cp.Window...)
	p.winMu.Unlock()
	p.ingested.Store(cp.Ingested)
	if p.drop != nil && len(cp.DropProgram) > 0 {
		rules, derr := dropper.Unmarshal(cp.DropProgram)
		if derr != nil {
			// A corrupt embedded program degrades to the empty program the
			// stage already serves; the next round recompiles from fresh
			// verdicts. Not a restore failure.
			p.cfg.Log.Error("checkpointed drop program unreadable; starting with none", "err", derr)
		} else {
			p.drop.Swap(dropper.Compile(rules))
		}
	}
	if cp.Trained {
		s, err := core.Load(bytes.NewReader(cp.Bundle))
		if err != nil {
			return false, fmt.Errorf("ixpsim: restoring model: %w", err)
		}
		if p.cfg.Metrics != nil {
			s.SetMetrics(core.RegisterMetrics(p.cfg.Metrics))
		}
		p.trainer = s
		// The restored model serves as champion at its checkpointed
		// sequence; the next trained round continues the count.
		seq := cp.ModelSeq
		if seq == 0 {
			seq = 1 // pre-lifecycle checkpoint
		}
		for {
			cur := p.seq.Load()
			if seq <= cur || p.seq.CompareAndSwap(cur, seq) {
				break
			}
		}
		p.lifeMu.Lock()
		p.champion.Store(&served{s: s, seq: seq})
		p.lifeMu.Unlock()
		if p.lm != nil {
			p.lm.activeSeq.Set(float64(seq))
		}
		p.trained.Store(true)
	}
	p.cfg.Log.Info("pipeline state restored",
		"window_records", len(cp.Window), "trained", cp.Trained)
	return true, nil
}
