package ixpsim

// Lifecycle tests: hot-swap equivalence (registry-backed serving is
// bit-identical to in-process serving), shadow scoring with mid-run
// promotion, publish-failure degradation, classifier-only import, and the
// concurrency of the atomic champion pointer under -race.

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/drift"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
	"github.com/ixp-scrubber/ixpscrubber/internal/par"
	"github.com/ixp-scrubber/ixpscrubber/internal/registry"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// lcStart anchors simulated time (2021-01-01 UTC in unix minutes).
const lcStart = int64(26_830_080)

// lcProfile is a small vantage point: every minute carries blackholed
// episodes, training rounds flag targets, and a full multi-round run stays
// well under a second.
func lcProfile() synth.Profile {
	p := synth.ProfileUS2()
	p.Name = "IXP-LIFECYCLE"
	p.Seed = 0xC0FFEE
	p.BenignFlowsPerMin = 96
	p.TargetIPs = 48
	p.BenignSrcIPs = 192
	p.EpisodeRatePerMin = 0.3
	p.EpisodeDurMeanMin = 6
	p.AttackFlowsPerMin = 24
	return p
}

func lcBackoff() *par.Backoff {
	return &par.Backoff{Base: time.Millisecond, Sleep: func(time.Duration) {}}
}

func lcRegistry(t testing.TB) *registry.Registry {
	t.Helper()
	reg, err := registry.Open(t.TempDir(), registry.Options{
		Clock: func() time.Time { return time.Unix(lcStart*60, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	reg.Writer().Backoff = lcBackoff()
	return reg
}

// driveRounds feeds the profile's traffic straight into the balancer minute
// by minute (no sockets, no goroutines — fully deterministic) and runs a
// training round every trainEvery minutes. hook runs after each minute's
// feed, before any round.
func driveRounds(t testing.TB, p *Pipeline, minutes, trainEvery int64, hook func(m int64)) []*Round {
	return driveRoundsFrom(t, p, lcStart, minutes, trainEvery, hook)
}

func driveRoundsFrom(t testing.TB, p *Pipeline, startMin, minutes, trainEvery int64, hook func(m int64)) []*Round {
	return driveProfileRounds(t, p, lcProfile(), startMin, minutes, trainEvery, hook)
}

func driveProfileRounds(t testing.TB, p *Pipeline, prof synth.Profile, startMin, minutes, trainEvery int64, hook func(m int64)) []*Round {
	t.Helper()
	gen := synth.NewGenerator(prof)
	ctx := context.Background()
	var rounds []*Round
	var buf []synth.Flow
	for m := int64(0); m < minutes; m++ {
		abs := startMin + m
		buf = gen.GenerateMinute(abs, buf[:0])
		recs := synth.Records(buf)
		p.balMu.Lock()
		p.bal.AddBatch(recs)
		p.balMu.Unlock()
		if hook != nil {
			hook(m)
		}
		if (m+1)%trainEvery == 0 {
			r, err := p.TrainRound(ctx, (abs+1)*60)
			if err != nil {
				t.Fatalf("round at minute %d: %v", m, err)
			}
			rounds = append(rounds, r)
		}
	}
	return rounds
}

// roundKey reduces a round to a comparable line; equal keys mean equal
// serving behavior (verdicts, ACL bytes, model sequence).
func roundKey(r *Round) string {
	h := fnv.New64a()
	h.Write([]byte(r.ACLText))
	return fmt.Sprintf("skip=%v rec=%d agg=%d rules=%d seq=%d prom=%v shad=%v dis=%.6f flags=%v acl=%016x",
		r.Skipped, r.Records, r.Aggregates, r.RulesMined, r.Seq, r.Promoted,
		r.Shadowed, r.Disagreement, r.Flagged, h.Sum64())
}

func roundsKey(rounds []*Round) string {
	var b strings.Builder
	for _, r := range rounds {
		b.WriteString(roundKey(r))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestHotSwapEquivalence is the acceptance gate: a registry-backed pipeline
// (every round publishes a versioned bundle, promotion re-loads it from disk
// and hot-swaps the champion pointer) must produce bit-identical rounds —
// same verdicts, same ACL bytes, same sequence numbers — as the plain
// in-process pipeline.
func TestHotSwapEquivalence(t *testing.T) {
	prof := lcProfile()
	inproc := NewPipeline(PipelineConfig{Seed: prof.Seed, MinTrainRecords: 64})
	ref := driveRounds(t, inproc, 12, 3, nil)

	reg := lcRegistry(t)
	backed := NewPipeline(PipelineConfig{Seed: prof.Seed, MinTrainRecords: 64, Registry: reg})
	got := driveRounds(t, backed, 12, 3, nil)

	if want, have := roundsKey(ref), roundsKey(got); want != have {
		t.Errorf("registry-backed rounds diverge from in-process rounds:\n--- in-process\n%s--- registry\n%s", want, have)
	}
	// The registry's on-disk champion is the model that served the last round.
	m, _, err := reg.Champion()
	if err != nil {
		t.Fatal(err)
	}
	seq, id := backed.ActiveModel()
	if m.ID != id || m.Seq != seq {
		t.Errorf("registry champion (%s, %d) != serving model (%s, %d)", m.ID, m.Seq, id, seq)
	}
	if got[len(got)-1].Seq != seq {
		t.Errorf("last round seq %d != active seq %d", got[len(got)-1].Seq, seq)
	}
	// Every round promoted (no shadow): seq counts 1..n.
	for i, r := range got {
		if !r.Promoted || r.Seq != uint64(i+1) {
			t.Errorf("round %d: promoted=%v seq=%d", i, r.Promoted, r.Seq)
		}
	}
}

// TestShadowPromoteChallengerMidRun pins the champion (auto-promotion
// disabled), promotes the standing challenger explicitly mid-run, and
// requires the registry-backed run to match the in-process shadow run
// bit-for-bit — including across the promotion boundary.
func TestShadowPromoteChallengerMidRun(t *testing.T) {
	prof := lcProfile()
	run := func(reg *registry.Registry) ([]*Round, *Pipeline) {
		p := NewPipeline(PipelineConfig{
			Seed:            prof.Seed,
			MinTrainRecords: 64,
			Registry:        reg,
			Shadow:          true,
			Promotion:       PromotionPolicy{MaxDisagreement: -1}, // operator-only promotion
		})
		rounds := driveRounds(t, p, 18, 3, func(m int64) {
			if m == 10 { // between rounds 3 and 4
				if err := p.PromoteChallenger(context.Background()); err != nil {
					t.Fatalf("promote at minute %d: %v", m, err)
				}
			}
		})
		return rounds, p
	}

	ref, inproc := run(nil)
	reg := lcRegistry(t)
	got, backed := run(reg)

	if want, have := roundsKey(ref), roundsKey(got); want != have {
		t.Errorf("shadow runs diverge:\n--- in-process\n%s--- registry\n%s", want, have)
	}

	// Round 1 promotes (nothing to shadow against); rounds 2-3 serve model 1
	// and shadow the fresh challenger; the explicit promotion installs model
	// 3 before round 4; rounds 4-6 serve it and keep shadowing.
	for i, r := range ref {
		switch {
		case i == 0:
			if !r.Promoted || r.Seq != 1 || r.Shadowed {
				t.Errorf("round 1: %+v", r)
			}
		case i < 3:
			if r.Promoted || r.Seq != 1 || !r.Shadowed {
				t.Errorf("round %d should shadow under champion 1: seq=%d prom=%v shad=%v", i+1, r.Seq, r.Promoted, r.Shadowed)
			}
		default:
			if r.Seq != 3 || !r.Shadowed {
				t.Errorf("round %d should serve promoted challenger 3: seq=%d shad=%v", i+1, r.Seq, r.Shadowed)
			}
		}
	}

	// Both pipelines agree on who serves; the registry's champion pointer
	// followed the explicit promotion.
	iSeq, _ := inproc.ActiveModel()
	bSeq, bID := backed.ActiveModel()
	if iSeq != bSeq {
		t.Errorf("active seq: in-process %d, registry %d", iSeq, bSeq)
	}
	m, _, err := reg.Champion()
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != bID {
		t.Errorf("registry champion %s != serving %s", m.ID, bID)
	}
}

// TestShadowAutoPromotion verifies the policy gate: a challenger whose
// cumulative disagreement stays under MaxDisagreement auto-promotes after
// ShadowRounds, so the sequence keeps advancing without operator action.
// (The first champion trains on a tiny window and disagrees ~50% with its
// better-trained challengers, so the strict default 2% gate would — by
// design — hold it forever; the test widens the gate to see the promotion
// machinery fire.)
func TestShadowAutoPromotion(t *testing.T) {
	prof := lcProfile()
	p := NewPipeline(PipelineConfig{
		Seed: prof.Seed, MinTrainRecords: 64,
		Shadow:    true,
		Promotion: PromotionPolicy{MaxDisagreement: 0.55},
	})
	rounds := driveRounds(t, p, 15, 3, nil)
	if !rounds[0].Promoted {
		t.Fatal("first round must promote unconditionally")
	}
	promoted := 0
	for _, r := range rounds[1:] {
		if !r.Shadowed {
			t.Errorf("round %+v did not shadow", r)
		}
		if r.Promoted {
			promoted++
		}
	}
	if promoted == 0 {
		t.Error("no challenger auto-promoted despite agreeing models")
	}
	if seq, _ := p.ActiveModel(); seq < 2 {
		t.Errorf("active seq = %d, want advanced past 1", seq)
	}
}

// failAfterFS fails every write once armed; reads are untouched.
type failAfterFS struct {
	mu     sync.Mutex
	armed  bool
	inner  acl.OSFS
	failed int
}

func (f *failAfterFS) arm() {
	f.mu.Lock()
	f.armed = true
	f.mu.Unlock()
}

func (f *failAfterFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	f.mu.Lock()
	armed := f.armed
	if armed {
		f.failed++
	}
	f.mu.Unlock()
	if armed {
		return fmt.Errorf("failfs: scripted write failure for %s", name)
	}
	return f.inner.WriteFile(name, data, perm)
}
func (f *failAfterFS) Rename(o, n string) error { return f.inner.Rename(o, n) }
func (f *failAfterFS) Remove(n string) error    { return f.inner.Remove(n) }

// TestPublishFailureKeepsChampion scripts a registry outage after the first
// publish: later rounds must keep serving (and ACL-writing from) the
// last-good champion, count the failures, and never bump the version.
func TestPublishFailureKeepsChampion(t *testing.T) {
	fs := &failAfterFS{}
	var failures int
	reg, err := registry.Open(t.TempDir(), registry.Options{
		FS:    fs,
		Clock: func() time.Time { return time.Unix(lcStart*60, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	reg.Writer().Backoff = lcBackoff()
	reg.Metrics = &registry.Metrics{PublishFailures: func() { failures++ }}

	prof := lcProfile()
	p := NewPipeline(PipelineConfig{Seed: prof.Seed, MinTrainRecords: 64, Registry: reg})
	rounds := driveRounds(t, p, 12, 3, func(m int64) {
		if m == 4 { // after round 1, before round 2
			fs.arm()
		}
	})

	if !rounds[0].Promoted || rounds[0].Seq != 1 {
		t.Fatalf("round 1: %+v", rounds[0])
	}
	for i, r := range rounds[1:] {
		if r.Promoted || r.Seq != 1 {
			t.Errorf("round %d promoted through a dead registry: seq=%d prom=%v", i+2, r.Seq, r.Promoted)
		}
		if r.ACLText == "" {
			t.Errorf("round %d produced no ACL while degraded", i+2)
		}
	}
	if failures == 0 {
		t.Error("publish failures not counted")
	}
	if seq, _ := p.ActiveModel(); seq != 1 {
		t.Errorf("active seq = %d, want last-good 1", seq)
	}
	// The registry still holds the last-good champion on disk.
	m, _, err := reg.Champion()
	if err != nil {
		t.Fatalf("champion lost during outage: %v", err)
	}
	if m.Seq != 1 {
		t.Errorf("on-disk champion seq = %d", m.Seq)
	}
}

// TestImportClassifierLifecycle routes a classifier-only bundle through the
// production import path: it shadows as a challenger, re-binds to the local
// WoE snapshot at promotion (§6.4), and serves after PromoteChallenger.
func TestImportClassifierLifecycle(t *testing.T) {
	prof := lcProfile()
	ctx := context.Background()

	// Source vantage point trains and exports its trees (not its encoder).
	src := NewPipeline(PipelineConfig{Seed: prof.Seed, MinTrainRecords: 64})
	driveRounds(t, src, 6, 3, nil)
	var export bytes.Buffer
	if err := src.Scrubber().SaveClassifierOnly(&export); err != nil {
		t.Fatal(err)
	}

	// Destination refuses a full bundle outright.
	dst := NewPipeline(PipelineConfig{
		Seed: prof.Seed, MinTrainRecords: 64,
		Shadow:    true,
		Promotion: PromotionPolicy{MaxDisagreement: -1},
	})
	var full bytes.Buffer
	if err := src.Scrubber().Save(&full); err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportClassifier(ctx, full.Bytes()); err == nil {
		t.Fatal("full bundle accepted by ImportClassifier")
	}

	// Train locally first, then import: the transfer shadows the local champion.
	rounds := driveRounds(t, dst, 6, 3, nil)
	if err := dst.ImportClassifier(ctx, export.Bytes()); err != nil {
		t.Fatal(err)
	}
	chSeq, _ := dst.Challenger()
	if chSeq == 0 {
		t.Fatal("import installed no challenger")
	}
	more := driveRoundsFrom(t, dst, lcStart+6, 3, 3, nil)
	if !more[0].Shadowed {
		t.Error("imported challenger not shadow-scored")
	}
	if seq, _ := dst.Challenger(); seq != chSeq {
		t.Errorf("local candidate evicted the imported challenger: %d != %d", seq, chSeq)
	}
	if err := dst.PromoteChallenger(ctx); err != nil {
		t.Fatal(err)
	}
	if seq, _ := dst.ActiveModel(); seq != chSeq {
		t.Errorf("active seq %d != imported challenger seq %d", seq, chSeq)
	}
	// The re-bound import serves the next rounds without error.
	served := driveRoundsFrom(t, dst, lcStart+9, 3, 3, nil)
	if served[0].Seq != chSeq {
		t.Errorf("round after promotion served seq %d, want %d", served[0].Seq, chSeq)
	}
	_ = rounds
}

// TestRegistryChampionServesOnRestart reopens a warm registry in a fresh
// pipeline: the on-disk champion takes the serving slot before any local
// training, and the sequence counter resumes rather than restarting.
func TestRegistryChampionServesOnRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *registry.Registry {
		reg, err := registry.Open(dir, registry.Options{
			Clock: func() time.Time { return time.Unix(lcStart*60, 0) },
		})
		if err != nil {
			t.Fatal(err)
		}
		reg.Writer().Backoff = lcBackoff()
		return reg
	}
	prof := lcProfile()
	first := NewPipeline(PipelineConfig{Seed: prof.Seed, MinTrainRecords: 64, Registry: open()})
	rounds := driveRounds(t, first, 9, 3, nil)
	wantSeq, wantID := first.ActiveModel()
	if wantSeq == 0 {
		t.Fatal("first pipeline never promoted")
	}

	second := NewPipeline(PipelineConfig{Seed: prof.Seed, MinTrainRecords: 64, Registry: open()})
	if restored, err := second.RestoreCheckpoint(); err != nil || restored {
		t.Fatalf("restore: %v (restored=%v, no checkpoint file exists)", err, restored)
	}
	if !second.Trained() {
		t.Fatal("registry champion did not flip readiness")
	}
	if seq, id := second.ActiveModel(); seq != wantSeq || id != wantID {
		t.Errorf("restored champion (%d, %s), want (%d, %s)", seq, id, wantSeq, wantID)
	}
	// The next trained round continues the version count past the restored
	// one. The traffic must genuinely differ: the generator's per-minute
	// output is minute-relative, so replaying the same profile retrains a
	// bit-identical model and the content-addressed Publish idempotently
	// returns the existing version instead of burning a new one.
	prof2 := lcProfile()
	prof2.AttackFlowsPerMin = 32
	next := driveProfileRounds(t, second, prof2, lcStart+9, 6, 6, nil)
	if next[0].Seq != wantSeq+1 {
		t.Errorf("post-restart round seq = %d, want %d", next[0].Seq, wantSeq+1)
	}
	_ = rounds
}

// TestLifecycleMetricsExposed checks that the drift and lifecycle gauges
// reach the Prometheus exposition with live values.
func TestLifecycleMetricsExposed(t *testing.T) {
	reg := obs.NewRegistry()
	prof := lcProfile()
	p := NewPipeline(PipelineConfig{
		Seed: prof.Seed, MinTrainRecords: 64,
		Registry: lcRegistry(t),
		Shadow:   true,
		Metrics:  reg,
	})
	driveRounds(t, p, 12, 3, nil)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, name := range []string{
		"ixps_model_active_seq",
		"ixps_model_promotions_total",
		"ixps_registry_publishes_total",
		"ixps_drift_feature_psi_mean",
		"ixps_drift_feature_psi_max",
		"ixps_drift_score_psi",
		"ixps_drift_retrain_recommended",
		"ixps_shadow_disagreement_ratio",
		"ixps_shadow_scored_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s missing from exposition", name)
		}
	}
	if !strings.Contains(text, "ixps_model_promotions_total") {
		t.Error("promotions counter missing")
	}
	// Active seq must be a positive number.
	if strings.Contains(text, "ixps_model_active_seq 0\n") {
		t.Error("active seq still 0 after promotions")
	}
}

// TestConcurrentLifecycleAccess hammers the lock-free read paths while
// training rounds and promotions mutate the serving state. Run under -race
// this proves the hot swap needs no ingest pause.
func TestConcurrentLifecycleAccess(t *testing.T) {
	prof := lcProfile()
	p := NewPipeline(PipelineConfig{
		Seed: prof.Seed, MinTrainRecords: 64,
		Shadow:    true,
		Promotion: PromotionPolicy{MaxDisagreement: -1},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.Start(ctx)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // reader: the serving path's view
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			p.ActiveModel()
			p.Challenger()
			p.DriftStats()
			p.Trained()
		}
	}()

	gen := synth.NewGenerator(prof)
	var buf []synth.Flow
	for m := int64(0); m < 12; m++ {
		abs := lcStart + m
		buf = gen.GenerateMinute(abs, buf[:0])
		p.EmitBatch(synth.Records(buf))
		if (m+1)%3 == 0 {
			// Wait for the queue to drain so rounds see real data.
			if err := PollUntil(ctx, func() bool {
				return p.QueueStats().RecordsOut.Load() == p.Ingested() && p.QueueStats().BatchesIn.Load() == p.QueueStats().BatchesOut.Load()
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := p.TrainRound(ctx, (abs+1)*60); err != nil {
				t.Fatal(err)
			}
			if _, id := p.Challenger(); id == "" {
				// Promote whatever challenger is standing, concurrently with
				// the readers.
				_ = p.PromoteChallenger(ctx)
			}
		}
	}
	close(done)
	wg.Wait()
	p.Stop()
	if !p.Trained() {
		t.Fatal("pipeline never trained")
	}
}

// benchModel trains one scrubber on the lifecycle profile and returns it
// with the aggregates of its final window.
func benchModel(b *testing.B) (*core.Scrubber, []*features.Aggregate) {
	b.Helper()
	prof := lcProfile()
	g := synth.NewGenerator(prof)
	flows := g.Generate(lcStart, lcStart+15)
	bal, _ := balance.Flows(prof.Seed, flows)
	recs := synth.Records(bal)
	s := core.New(core.DefaultConfig())
	if _, err := s.MineRules(recs); err != nil {
		b.Fatal(err)
	}
	aggs := s.Aggregate(recs, nil)
	if err := s.Fit(recs, aggs); err != nil {
		b.Fatal(err)
	}
	return s, aggs
}

// frozenCopy round-trips a scrubber through its bundle, as promotion does.
func frozenCopy(b *testing.B, s *core.Scrubber) *core.Scrubber {
	b.Helper()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		b.Fatal(err)
	}
	c, err := core.Load(&buf)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkHotSwap measures the champion pointer flip — the full promotion
// of an already-built candidate, registry excluded (that cost is Publish's).
func BenchmarkHotSwap(b *testing.B) {
	s, aggs := benchModel(b)
	prof := lcProfile()
	p := NewPipeline(PipelineConfig{Seed: prof.Seed})
	pred, x, err := scoreAggs(s, aggs)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := drift.NewReference(x, pred, drift.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cands := [2]*served{
		{s: frozenCopy(b, s), seq: 1, ref: ref},
		{s: frozenCopy(b, s), seq: 2, ref: ref},
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.lifeMu.Lock()
		p.promoteLocked(ctx, cands[i%2])
		p.lifeMu.Unlock()
	}
}

// BenchmarkScoringChampionOnly is the per-round serving cost without a
// challenger: encode once, predict once.
func BenchmarkScoringChampionOnly(b *testing.B) {
	s, aggs := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := scoreAggs(s, aggs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoringWithShadow adds challenger shadow scoring on the shared
// encoded matrix. The acceptance bound is < 2x BenchmarkScoringChampionOnly:
// the encode is shared, so shadowing costs one extra tree walk, not a
// second feature encoding.
func BenchmarkScoringWithShadow(b *testing.B) {
	s, aggs := benchModel(b)
	ch := frozenCopy(b, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred, x, err := scoreAggs(s, aggs)
		if err != nil {
			b.Fatal(err)
		}
		challPred, err := ch.PredictEncoded(x)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for j := range challPred {
			if challPred[j] != pred[j] {
				n++
			}
		}
		_ = n
	}
}

// BenchmarkPSIUpdate is the drift monitor's per-round cost on a real encoded
// window: feature PSI accumulation plus score counts.
func BenchmarkPSIUpdate(b *testing.B) {
	s, aggs := benchModel(b)
	pred, x, err := scoreAggs(s, aggs)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := drift.NewReference(x, pred, drift.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := drift.NewMonitor(drift.DefaultConfig())
	m.SetReference(ref)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ObserveFeatures(x)
		m.ObserveScores(pred)
	}
}
