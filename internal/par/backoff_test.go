package par

import (
	"context"
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	b := NewBackoff(1)
	b.Base = 10 * time.Millisecond
	b.Max = 80 * time.Millisecond
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Errorf("attempt %d: got %v, want %v", i, got, w)
		}
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Errorf("after reset: got %v, want 10ms", got)
	}
}

func TestBackoffJitterDeterministicPerSeed(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		b := NewBackoff(seed)
		b.Base = 10 * time.Millisecond
		b.Jitter = 0.3
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = b.Next()
		}
		return out
	}
	a1, a2, c := mk(7), mk(7), mk(8)
	same := true
	nominal := float64(10 * time.Millisecond)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a1[i], a2[i])
		}
		if a1[i] != c[i] {
			same = false
		}
		lo, hi := time.Duration(nominal*0.69), time.Duration(nominal*1.31)
		if a1[i] < lo || a1[i] > hi {
			t.Errorf("attempt %d = %v outside jitter envelope [%v, %v]", i, a1[i], lo, hi)
		}
		nominal *= 2
	}
	if same {
		t.Error("different seeds produced identical jitter streams")
	}
}

func TestBackoffWaitVirtualSleeper(t *testing.T) {
	var slept []time.Duration
	b := NewBackoff(3)
	b.Base = time.Second // would stall the test with a real sleeper
	b.Sleep = func(d time.Duration) { slept = append(slept, d) }
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := b.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if len(slept) != 3 || slept[0] != time.Second || slept[1] != 2*time.Second {
		t.Fatalf("virtual sleeps = %v", slept)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if err := b.Wait(canceled); err == nil {
		t.Fatal("Wait on canceled context succeeded")
	}
}
