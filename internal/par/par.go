// Package par provides the bounded worker-pool primitives behind every
// parallel hot path of the scrubber: XGB histogram building and scoring,
// feature encoding, FP-Growth mining, and the experiments harness.
//
// Determinism contract: the primitives distribute *indices*, never results.
// Callers write into index-addressed output slots and perform any reduction
// themselves, in index order, after the pool drains. As long as fn(i) is a
// pure function of i and read-only shared state, the combined output is
// bit-for-bit identical for every worker count — including the serial
// fallback (workers == 1), which runs entirely on the calling goroutine.
//
// A worker count <= 0 means "size from GOMAXPROCS"; every exported knob in
// the repo (core.Config.Workers, experiments.Config.Workers, xgb's and
// tagging's options) funnels through Workers and shares that convention.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n > 0 is used as given, anything
// else selects runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For executes fn(i) for every i in [0, n) on at most `workers` goroutines.
// Indices are handed out dynamically (an atomic cursor), so uneven tasks
// load-balance; determinism must come from fn writing only to slot i of its
// outputs. workers <= 0 sizes from GOMAXPROCS; workers == 1 (or n <= 1)
// degrades to a serial loop on the calling goroutine.
//
// A panic in any fn is re-raised on the calling goroutine after all workers
// stop, matching the serial path's failure mode.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		ponc sync.Once
		pval any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					ponc.Do(func() { pval = r })
					// Drain remaining indices so sibling workers exit fast.
					next.Store(int64(n))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if pval != nil {
		panic(pval)
	}
}

// ForChunks splits [0, n) into at most `workers` contiguous chunks and
// executes fn(worker, lo, hi) for each. The worker id is a stable chunk
// index in [0, workers'), letting callers keep per-worker reusable buffers;
// chunk w always covers [w*n/workers', (w+1)*n/workers'), so the work
// partition itself is deterministic. workers <= 0 sizes from GOMAXPROCS;
// the serial fallback is a single fn(0, 0, n) call on the calling
// goroutine.
func ForChunks(workers, n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var (
		wg   sync.WaitGroup
		ponc sync.Once
		pval any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					ponc.Do(func() { pval = r })
				}
			}()
			fn(w, w*n/workers, (w+1)*n/workers)
		}(w)
	}
	wg.Wait()
	if pval != nil {
		panic(pval)
	}
}

// Do runs the given tasks concurrently on at most `workers` goroutines and
// waits for all of them.
func Do(workers int, tasks ...func()) {
	For(workers, len(tasks), func(i int) { tasks[i]() })
}
