package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d", got)
	}
}

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, n := range []int{0, 1, 7, 100} {
			hits := make([]int32, n)
			For(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 5, 64} {
			hits := make([]int32, n)
			ForChunks(workers, n, func(w, lo, hi int) {
				if lo > hi || lo < 0 || hi > n {
					t.Errorf("bad chunk [%d, %d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

// TestForChunksStablePartition asserts the chunk boundaries are a pure
// function of (workers, n) — the property per-worker buffers rely on.
func TestForChunksStablePartition(t *testing.T) {
	type chunk struct{ w, lo, hi int }
	grab := func() []chunk {
		out := make([]chunk, 4)
		ForChunks(4, 100, func(w, lo, hi int) { out[w] = chunk{w, lo, hi} })
		return out
	}
	a, b := grab(), grab()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("partition not stable: %v vs %v", a[i], b[i])
		}
	}
}

// TestForDeterministicReduction demonstrates the package's determinism
// contract: index-addressed writes plus an ordered reduction give the same
// result at every worker count.
func TestForDeterministicReduction(t *testing.T) {
	n := 1000
	ref := ""
	for _, workers := range []int{1, 2, 8} {
		out := make([]byte, n)
		For(workers, n, func(i int) { out[i] = byte('a' + i%26) })
		if s := string(out); ref == "" {
			ref = s
		} else if s != ref {
			t.Fatalf("workers=%d produced different reduction", workers)
		}
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	For(4, 100, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

func TestDo(t *testing.T) {
	var a, b atomic.Int32
	Do(2, func() { a.Store(1) }, func() { b.Store(2) })
	if a.Load() != 1 || b.Load() != 2 {
		t.Fatalf("Do did not run all tasks: %d %d", a.Load(), b.Load())
	}
}
