package par

import (
	"context"
	"math/rand/v2"
	"time"
)

// Backoff produces capped exponential retry delays with seeded jitter:
// attempt n sleeps Base*Factor^n, capped at Max, then multiplied by a
// uniform factor in [1-Jitter, 1+Jitter]. The jitter stream is seeded, so a
// retry schedule is reproducible for a given seed — which is what lets the
// chaos harness assert exact backoff sequences while production gets the
// thundering-herd protection jitter exists for.
//
// The zero value is not usable; construct with NewBackoff. A Backoff is not
// safe for concurrent use: it belongs to one retry loop.
type Backoff struct {
	// Base is the first delay. Defaults to 50ms when zero.
	Base time.Duration
	// Max caps the exponential growth. Defaults to 30s when zero.
	Max time.Duration
	// Factor is the growth multiplier between attempts. Defaults to 2.
	Factor float64
	// Jitter is the relative jitter half-width (0.2 = ±20%). Zero disables
	// jitter entirely (fully deterministic schedules).
	Jitter float64
	// Sleep performs the waiting; defaults to time.Sleep. The chaos harness
	// injects a virtual sleeper here so retries cost no wall time.
	Sleep func(time.Duration)

	rng     *rand.Rand
	attempt int
}

// NewBackoff returns a Backoff with the given seed driving its jitter and
// the documented defaults for unset fields.
func NewBackoff(seed uint64) *Backoff {
	return &Backoff{rng: rand.New(rand.NewPCG(seed, seed^0x6C62272E07BB0142))}
}

func (b *Backoff) defaults() (base, max time.Duration, factor float64) {
	base, max, factor = b.Base, b.Max, b.Factor
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	if factor < 1 {
		factor = 2
	}
	return base, max, factor
}

// Next returns the delay for the current attempt and advances the attempt
// counter. It does not sleep.
func (b *Backoff) Next() time.Duration {
	base, max, factor := b.defaults()
	d := float64(base)
	for i := 0; i < b.attempt; i++ {
		d *= factor
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	b.attempt++
	if b.Jitter > 0 && b.rng != nil {
		j := 1 + b.Jitter*(2*b.rng.Float64()-1)
		d *= j
	}
	return time.Duration(d)
}

// Attempt returns how many delays Next has handed out since the last Reset.
func (b *Backoff) Attempt() int { return b.attempt }

// Reset rewinds the schedule to the first attempt; call it after a success
// so the next failure starts from Base again.
func (b *Backoff) Reset() { b.attempt = 0 }

// Wait sleeps for the next delay in the schedule, honoring ctx: it returns
// ctx.Err() without sleeping when the context is already done. With an
// injected Sleep the sleep itself is not interruptible — virtual sleepers
// return immediately anyway.
func (b *Backoff) Wait(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	d := b.Next()
	sleep := b.Sleep
	if sleep == nil {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
		return nil
	}
	sleep(d)
	return ctx.Err()
}
