package synth

import (
	"fmt"
	"net/netip"
	"time"
)

// Member is one IXP member network: its ASN, the MAC address of its router
// facing the peering LAN (the ingress identity the feature aggregation uses)
// and the address space it originates.
type Member struct {
	ASN    uint16
	MAC    [6]byte
	Prefix netip.Prefix
	// UsesBlackholing: members that do not subscribe to the blackholing
	// service never announce blackholes for their victims.
	UsesBlackholing bool
}

// Profile parameterizes the synthetic traffic of one IXP vantage point.
type Profile struct {
	// Name identifies the vantage point (e.g. "IXP-CE1").
	Name string
	// Seed drives all randomness for this profile.
	Seed uint64
	// Members is the number of connected ASes.
	Members int
	// BenignFlowsPerMin is the mean number of benign sampled flows per
	// one-minute bin.
	BenignFlowsPerMin int
	// TargetIPs is the size of the benign destination pool.
	TargetIPs int
	// BenignSrcIPs is the size of the benign source pool.
	BenignSrcIPs int
	// ReflectorsPerVector is the size of each attack vector's reflector
	// source pool at this vantage point. Pools are seeded per (IXP, vector)
	// and thus nearly disjoint between IXPs (Fig. 12, middle).
	ReflectorsPerVector int
	// EpisodeRatePerMin is the Poisson arrival rate of attack episodes.
	EpisodeRatePerMin float64
	// EpisodeDurMeanMin is the mean episode duration in minutes.
	EpisodeDurMeanMin float64
	// AttackFlowsPerMin is the mean sampled attack flows per minute of one
	// episode.
	AttackFlowsPerMin int
	// VictimBenignRatio is the benign flow rate toward a victim during an
	// episode, as a fraction of the attack rate. It produces the ~12.5 %
	// benign contamination of blackholed traffic (Fig. 4a).
	VictimBenignRatio float64
	// BlackholeProb is the probability that a victim's member announces a
	// blackhole for the victim (members not using blackholing forward
	// unwanted traffic unfiltered, which is exactly the traffic the
	// pipeline samples).
	BlackholeProb float64
	// BlackholeDelayMin is the mean delay between attack start and the
	// blackhole announcement.
	BlackholeDelayMin float64
	// SamplingRate is the 1:N packet sampling rate of the fabric.
	SamplingRate uint32
	// ReflectorChurnPerDay is the fraction of each vector's reflector pool
	// replaced by fresh hosts per day — the temporal drift that makes
	// one-shot-trained models decay (§6.3): abused reflectors get patched
	// or firewalled while new ones appear.
	ReflectorChurnPerDay float64
	// VectorWeights gives the relative prevalence of each attack vector by
	// name; vectors absent from the map are not used. Nil selects
	// DefaultVectorWeights.
	VectorWeights map[string]float64
	// VectorStart optionally maps vector names to the unix second at which
	// the vector first appears at this vantage point (new vectors emerging
	// over time, Fig. 13). Vectors absent from the map are active from the
	// beginning.
	VectorStart map[string]int64
}

// DefaultVectorWeights is the attack vector mix of the ML training set.
// WS-Discovery is nearly absent from blackholing traffic (Fig. 4b) but does
// appear in the self-attack set.
var DefaultVectorWeights = map[string]float64{
	"UDP Fragm.":   0.09,
	"DNS":          0.17,
	"NTP":          0.20,
	"SNMP":         0.10,
	"LDAP":         0.12,
	"SSDP":         0.08,
	"Apple RD":     0.06,
	"memcached":    0.05,
	"chargen":      0.03,
	"rpcbind":      0.02,
	"MSSQL":        0.02,
	"NetBIOS":      0.015,
	"RIP":          0.01,
	"OpenVPN":      0.01,
	"TFTP":         0.01,
	"Ubiquiti SD":  0.005,
	"DNS (TCP)":    0.01,
	"GRE":          0.008,
	"WS-Discovery": 0.001,
}

// SASVectorWeights is the vector mix of the self-attack set: booter-style
// attacks bought from DDoS-for-hire services, including WS-Discovery.
var SASVectorWeights = map[string]float64{
	"UDP Fragm.":   0.10,
	"DNS":          0.18,
	"NTP":          0.22,
	"SNMP":         0.09,
	"LDAP":         0.11,
	"SSDP":         0.09,
	"Apple RD":     0.05,
	"memcached":    0.04,
	"chargen":      0.03,
	"WS-Discovery": 0.05,
	"rpcbind":      0.02,
	"MSSQL":        0.02,
}

// Date returns the unix time of a UTC calendar date, the time base used by
// the experiment harness (the paper's capture windows are given as dates).
func Date(year int, month time.Month, day int) int64 {
	return time.Date(year, month, day, 0, 0, 0, 0, time.UTC).Unix()
}

// The five studied vantage points (Table 2), scaled down so the relative
// order of traffic volumes is preserved while experiments stay laptop-sized.
// IXP-CE1 is the largest (>800 ASes, >10 Tbps peak), IXP-CE2 the smallest.
func profileScaled(name string, seed uint64, members, benignPerMin int, episodeRate float64) Profile {
	return Profile{
		Name:                 name,
		Seed:                 seed,
		Members:              members,
		BenignFlowsPerMin:    benignPerMin,
		TargetIPs:            benignPerMin / 2,
		BenignSrcIPs:         benignPerMin * 2,
		ReflectorsPerVector:  260,
		EpisodeRatePerMin:    episodeRate,
		EpisodeDurMeanMin:    18,
		AttackFlowsPerMin:    55,
		VictimBenignRatio:    0.14,
		BlackholeProb:        0.95,
		BlackholeDelayMin:    0.15,
		SamplingRate:         2048,
		ReflectorChurnPerDay: 0.06,
		VectorWeights:        DefaultVectorWeights,
	}
}

// ProfileCE1 models IXP-CE1 (central Europe, >800 ASes, >10 Tbps).
func ProfileCE1() Profile { return profileScaled("IXP-CE1", 0xCE1, 800, 3200, 0.42) }

// ProfileUS1 models IXP-US1 (US east coast, >250 ASes, >1 Tbps).
func ProfileUS1() Profile { return profileScaled("IXP-US1", 0xA51, 250, 900, 0.20) }

// ProfileSE models IXP-SE (southern Europe, 209 ASes, 0.69 Tbps). Its two
// year window carries the vector-emergence schedule of Fig. 13: SNMP and
// SSDP blackholing begins around week 2020-00, memcached around 2020-20.
func ProfileSE() Profile {
	p := profileScaled("IXP-SE", 0x5E, 209, 600, 0.15)
	p.VectorStart = map[string]int64{
		"SNMP":      Date(2019, time.December, 30),
		"SSDP":      Date(2020, time.January, 27),
		"memcached": Date(2020, time.May, 18),
	}
	return p
}

// ProfileUS2 models IXP-US2 (US south, 103 ASes, 0.53 Tbps).
func ProfileUS2() Profile { return profileScaled("IXP-US2", 0xA52, 103, 420, 0.08) }

// ProfileCE2 models IXP-CE2 (central Europe, 211 ASes, 0.12 Tbps).
func ProfileCE2() Profile { return profileScaled("IXP-CE2", 0xCE2, 211, 260, 0.05) }

// RealisticImbalance rescales a profile's attack intensity to the
// imbalance observed at real IXPs, where blackholed traffic stays below
// ~0.8 % of total bytes and below ~0.5 % of flows (Fig. 3a, Table 2). The
// standard profiles keep a far higher attack share so that ML experiments
// obtain enough positive samples per generated minute; dataset-statistics
// experiments use this variant instead.
func (p Profile) RealisticImbalance() Profile {
	p.EpisodeRatePerMin *= 0.03
	p.AttackFlowsPerMin = p.AttackFlowsPerMin / 2
	return p
}

// Profiles returns all five vantage points ordered by decreasing size, the
// order used in Table 2.
func Profiles() []Profile {
	return []Profile{ProfileCE1(), ProfileUS1(), ProfileSE(), ProfileUS2(), ProfileCE2()}
}

// ProfileByName looks a profile up by its vantage point name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("synth: unknown profile %q", name)
}

// SASProfile parameterizes the self-attack set: controlled booter attacks
// against a dedicated victim AS, captured over 9 days (§4.1) with benign
// background from the same window.
func SASProfile() Profile {
	p := profileScaled("SAS", 0x5A5, 80, 450, 0)
	p.VectorWeights = SASVectorWeights
	return p
}
