package synth

import (
	"fmt"

	"github.com/ixp-scrubber/ixpscrubber/internal/packet"
	"github.com/ixp-scrubber/ixpscrubber/internal/sflow"
)

// MaxSampledHeader is the number of leading frame bytes an sFlow agent
// exports per sample (a typical switch configuration).
const MaxSampledHeader = 128

// FrameFor builds the wire-format Ethernet frame of one sampled flow, used
// by the live IXP simulation to feed real sFlow datagrams to the collector.
// The frame is truncated to MaxSampledHeader bytes as a switch would.
func FrameFor(f *Flow, b *packet.Builder) ([]byte, error) {
	b.Reset()
	frameLen := int(f.Bytes / f.Packets)
	if frameLen < 60 {
		frameLen = 60
	}

	src := f.SrcIP.As4()
	dst := f.DstIP.As4()
	if !f.SrcIP.Is4() && !f.SrcIP.Is4In6() {
		return nil, fmt.Errorf("synth: only IPv4 frames are generated, got %v", f.SrcIP)
	}
	ipLen := frameLen - 14 // bytes available past Ethernet
	proto := packet.IPProtocol(f.Protocol)

	b.Ethernet(f.DstMAC, f.SrcMAC, packet.EtherTypeIPv4, 0)
	switch {
	case f.Fragment:
		b.IPv4(src, dst, proto, uint16(ipLen), packet.IPv4Opts{
			Flags: 0x1, FragOffset: 185, ID: uint16(f.Timestamp),
		})
		pay := payloadLen(frameLen, 14+20)
		b.Payload(pay)
	case proto == packet.ProtoTCP:
		b.IPv4(src, dst, proto, uint16(ipLen), packet.IPv4Opts{ID: uint16(f.Timestamp)})
		b.TCP(f.SrcPort, f.DstPort, 0, 0, f.TCPFlags, 65535)
		b.Payload(payloadLen(frameLen, 14+20+20))
	case proto == packet.ProtoUDP:
		b.IPv4(src, dst, proto, uint16(ipLen), packet.IPv4Opts{ID: uint16(f.Timestamp)})
		b.UDP(f.SrcPort, f.DstPort, uint16(ipLen-20))
		b.Payload(payloadLen(frameLen, 14+20+8))
	case proto == packet.ProtoICMP:
		b.IPv4(src, dst, proto, uint16(ipLen), packet.IPv4Opts{ID: uint16(f.Timestamp)})
		b.ICMP(8, 0)
		b.Payload(payloadLen(frameLen, 14+20+4))
	default: // GRE and friends: raw IP payload
		b.IPv4(src, dst, proto, uint16(ipLen), packet.IPv4Opts{ID: uint16(f.Timestamp)})
		b.Payload(payloadLen(frameLen, 14+20))
	}
	frame := b.Bytes()
	if len(frame) > MaxSampledHeader {
		frame = frame[:MaxSampledHeader]
	}
	return frame, nil
}

// payloadLen caps the generated payload so the in-memory frame never
// exceeds the sampled header export size (the full frame length is carried
// in the sample's FrameLength field instead).
func payloadLen(frameLen, hdr int) int {
	n := frameLen - hdr
	if n < 0 {
		n = 0
	}
	if hdr+n > MaxSampledHeader {
		n = MaxSampledHeader - hdr
	}
	return n
}

// SampleFor converts one flow into an sFlow flow sample.
func SampleFor(f *Flow, seq uint32, b *packet.Builder) (sflow.FlowSample, error) {
	frame, err := FrameFor(f, b)
	if err != nil {
		return sflow.FlowSample{}, err
	}
	return sflow.FlowSample{
		Sequence:     seq,
		SourceID:     1,
		SamplingRate: f.SamplingRate,
		SamplePool:   seq * f.SamplingRate,
		FrameLength:  uint32(f.Bytes / f.Packets),
		Header:       frame,
	}, nil
}
