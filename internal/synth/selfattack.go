package synth

import (
	"math/rand/v2"
	"net/netip"
)

// SelfAttackConfig parameterizes the generation of the self-attack set
// (SAS): controlled DDoS attacks against a dedicated victim AS, recorded
// with a method independent of blackholing signals (§4.1). The flows carry
// ground-truth labels: Blackholed is set on exactly the attack flows, which
// is how the SAS is used for validation.
type SelfAttackConfig struct {
	// Profile supplies the benign background and vector mix; its episode
	// machinery is unused.
	Profile Profile
	// Victim is the dedicated attacked IP. The zero value picks one from a
	// dedicated prefix outside the member space.
	Victim netip.Addr
	// Attacks is the number of purchased attack runs (each < 5 minutes,
	// per the ethics constraints in §4.3).
	Attacks int
	// AttackFlowsPerMin is the sampled flow rate during an attack run.
	AttackFlowsPerMin int
	// FromMin/ToMin bound the capture window in unix minutes.
	FromMin, ToMin int64
}

// DefaultSelfAttackConfig mirrors the paper's setup: 9 days in spring 2021,
// short booter attacks against a dedicated victim.
func DefaultSelfAttackConfig() SelfAttackConfig {
	from := Date(2021, 4, 12) / 60
	return SelfAttackConfig{
		Profile:           SASProfile(),
		Attacks:           160,
		AttackFlowsPerMin: 55,
		FromMin:           from,
		ToMin:             from + 9*24*60,
	}
}

// SelfAttackSet generates the SAS: benign background over the whole window
// plus short pure-DDoS attack runs against the victim. The returned flows
// are already labeled with ground truth (Blackholed == Attack), mirroring
// that the SAS label does not derive from BGP signals.
func SelfAttackSet(cfg SelfAttackConfig) []Flow {
	g := NewGenerator(cfg.Profile)
	rng := rand.New(rand.NewPCG(cfg.Profile.Seed^0x53A5, cfg.Profile.Seed+99))

	victim := cfg.Victim
	if !victim.IsValid() {
		victim = netip.AddrFrom4([4]byte{198, 18, 0, 66}) // dedicated test prefix
	}
	victimMAC := [6]byte{0x02, 0xDD, 0, 0, 0, 1}

	// Schedule attack runs: uniformly placed, 1-5 minutes each, 1-2 vectors.
	window := cfg.ToMin - cfg.FromMin
	type run struct {
		start, end int64
		vectors    []Vector
	}
	runs := make([]run, 0, cfg.Attacks)
	for i := 0; i < cfg.Attacks; i++ {
		start := cfg.FromMin + rng.Int64N(max64(window-5, 1))
		dur := 1 + rng.Int64N(5)
		nv := 1 + rng.IntN(2)
		vecs := make([]Vector, 0, nv)
		for j := 0; j < nv; j++ {
			if v, ok := g.pickVector(start * 60); ok {
				vecs = append(vecs, v)
			}
		}
		if len(vecs) == 0 {
			continue
		}
		runs = append(runs, run{start: start, end: start + dur, vectors: vecs})
	}

	var flows []Flow
	for m := cfg.FromMin; m < cfg.ToMin; m++ {
		flows = g.GenerateMinute(m, flows)
		at := m * 60
		for _, r := range runs {
			if m < r.start || m >= r.end {
				continue
			}
			ep := &episode{
				victim:        victim,
				victimMAC:     victimMAC,
				vectors:       r.vectors,
				blackholeFrom: -1,
			}
			n := poisson(g.rng, float64(cfg.AttackFlowsPerMin))
			for i := 0; i < n; i++ {
				v := r.vectors[g.rng.IntN(len(r.vectors))]
				f := g.attackFlow(at, ep, v)
				f.Blackholed = true // ground truth label, not a BGP signal
				flows = append(flows, f)
			}
		}
	}
	return flows
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
