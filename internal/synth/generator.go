package synth

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand/v2"
	"net/netip"
	"sort"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/packet"
)

// Flow is one generated sampled flow: the wire-visible Record plus ground
// truth the experiments need but the pipeline never sees (which vector the
// flow belongs to and whether it is attack traffic).
type Flow struct {
	netflow.Record
	// Vector names the attack vector ("" for benign traffic).
	Vector string
	// Attack is ground truth: true for DDoS flows, independent of whether
	// the victim's member blackholed the target.
	Attack bool
}

// BlackholeEvent is an announce or withdraw of a blackholed victim prefix,
// emitted so callers can drive a live BGP session or a bgp.Registry.
type BlackholeEvent struct {
	Prefix   netip.Prefix
	At       int64 // unix seconds
	Announce bool  // false = withdraw
	MemberAS uint16
}

// episode is one ongoing attack against a victim IP.
type episode struct {
	victim      netip.Addr
	victimMAC   [6]byte
	memberAS    uint16
	vectors     []Vector // 1-3 vectors blended
	flowsPerMin float64
	endMin      int64
	// blackholeFrom/Until bound the label window; blackholeFrom = -1 when
	// the member does not blackhole.
	blackholeFrom  int64 // unix seconds
	blackholeUntil int64
	announced      bool
}

// Generator produces the traffic of one vantage point minute by minute.
// It is deterministic for a given Profile and sequence of minutes. Not safe
// for concurrent use.
type Generator struct {
	p        Profile
	rng      *rand.Rand
	members   []Member
	targets   []netip.Addr // benign destination pool
	targetCum []float64    // cumulative Zipf popularity over targets
	sources   []netip.Addr // benign source pool
	refl     map[string][]netip.Addr
	owner    map[netip.Prefix][6]byte // member /24 -> MAC, for O(1) egress lookup
	vectors  []Vector  // active catalog subset per weights
	weights  []float64 // cumulative weights aligned with vectors
	episodes []*episode
	events   []BlackholeEvent
	curMin   int64
}

// NewGenerator builds a deterministic generator for the profile.
func NewGenerator(p Profile) *Generator {
	if p.VectorWeights == nil {
		p.VectorWeights = DefaultVectorWeights
	}
	if p.SamplingRate == 0 {
		p.SamplingRate = 2048
	}
	g := &Generator{
		p:    p,
		rng:  rand.New(rand.NewPCG(p.Seed, p.Seed^0x9E3779B97F4A7C15)),
		refl: make(map[string][]netip.Addr),
	}
	g.buildMembers()
	g.buildPools()
	g.buildVectorTable()
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// Members returns the simulated member networks.
func (g *Generator) Members() []Member { return g.members }

func (g *Generator) buildMembers() {
	g.members = make([]Member, g.p.Members)
	for i := range g.members {
		var mac [6]byte
		mac[0] = 0x02 // locally administered
		binary.BigEndian.PutUint32(mac[2:6], uint32(g.p.Seed)<<12|uint32(i))
		// Allocate each member a /24 out of a per-IXP /8-ish region derived
		// from the seed so member spaces never collide within one IXP.
		base := [4]byte{byte(60 + g.p.Seed%90), byte(i >> 8), byte(i), 0}
		g.members[i] = Member{
			ASN:             uint16(64500 + i%1000),
			MAC:             mac,
			Prefix:          netip.PrefixFrom(netip.AddrFrom4(base), 24),
			UsesBlackholing: g.rng.Float64() < g.p.BlackholeProb,
		}
	}
	g.owner = make(map[netip.Prefix][6]byte, len(g.members))
	for i := range g.members {
		g.owner[g.members[i].Prefix] = g.members[i].MAC
	}
}

func (g *Generator) buildPools() {
	g.targets = make([]netip.Addr, g.p.TargetIPs)
	g.targetCum = make([]float64, g.p.TargetIPs)
	var cum float64
	for i := range g.targets {
		m := g.members[g.rng.IntN(len(g.members))]
		a := m.Prefix.Addr().As4()
		a[3] = byte(1 + g.rng.IntN(254))
		g.targets[i] = netip.AddrFrom4(a)
		// Zipf(1) popularity: destination traffic concentrates on heavy
		// hitters (CDN caches, resolvers), matching real IXP fan-in. This
		// heavy tail is what gives the balancer benign IPs busy enough to
		// pair with attack victims.
		cum += 1.0 / float64(i+1)
		g.targetCum[i] = cum
	}
	g.sources = make([]netip.Addr, g.p.BenignSrcIPs)
	for i := range g.sources {
		g.sources[i] = g.randomPublicIP()
	}
	// Reflector pools: seeded per (IXP seed, vector name) so pools at
	// different vantage points are nearly disjoint.
	for _, v := range AllVectors {
		h := g.p.Seed
		for _, c := range []byte(v.Name) {
			h = h*1099511628211 + uint64(c)
		}
		rr := rand.New(rand.NewPCG(h, h^0xBF58476D1CE4E5B9))
		pool := make([]netip.Addr, g.p.ReflectorsPerVector)
		for i := range pool {
			pool[i] = randomPublicIPFrom(rr)
		}
		g.refl[v.Name] = pool
	}
}

func (g *Generator) buildVectorTable() {
	names := make([]string, 0, len(g.p.VectorWeights))
	for name := range g.p.VectorWeights {
		names = append(names, name)
	}
	sort.Strings(names)
	var cum float64
	for _, name := range names {
		v, ok := vectorByName(name)
		if !ok {
			continue
		}
		cum += g.p.VectorWeights[name]
		g.vectors = append(g.vectors, v)
		g.weights = append(g.weights, cum)
	}
}

func vectorByName(name string) (Vector, bool) {
	for _, v := range AllVectors {
		if v.Name == name {
			return v, true
		}
	}
	return Vector{}, false
}

func (g *Generator) randomPublicIP() netip.Addr { return randomPublicIPFrom(g.rng) }

func randomPublicIPFrom(rng *rand.Rand) netip.Addr {
	for {
		v := rng.Uint32()
		b := [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
		switch {
		case b[0] == 0 || b[0] == 10 || b[0] == 127 || b[0] >= 224:
			continue
		case b[0] == 172 && b[1]&0xf0 == 16:
			continue
		case b[0] == 192 && b[1] == 168:
			continue
		}
		return netip.AddrFrom4(b)
	}
}

// pickVector samples an attack vector active at the given unix time.
func (g *Generator) pickVector(at int64) (Vector, bool) {
	if len(g.vectors) == 0 {
		return Vector{}, false
	}
	for tries := 0; tries < 32; tries++ {
		x := g.rng.Float64() * g.weights[len(g.weights)-1]
		i := sort.SearchFloat64s(g.weights, x)
		if i >= len(g.vectors) {
			i = len(g.vectors) - 1
		}
		v := g.vectors[i]
		if start, ok := g.p.VectorStart[v.Name]; ok && at < start {
			continue // vector has not emerged yet at this vantage point
		}
		return v, true
	}
	return Vector{}, false
}

// poisson samples a Poisson variate (Knuth for small lambda, normal
// approximation above 64).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		n := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if n < 0 {
			return 0
		}
		return int(n + 0.5)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// frameSize samples a truncated-normal frame size.
func frameSize(rng *rand.Rand, mean, std float64) uint32 {
	s := mean + std*rng.NormFloat64()
	if s < 60 {
		s = 60
	}
	if s > 1514 {
		s = 1514
	}
	return uint32(s)
}

// GenerateMinute appends every sampled flow of the given unix minute to dst
// and returns it. Minutes must be generated in non-decreasing order.
func (g *Generator) GenerateMinute(minute int64, dst []Flow) []Flow {
	if minute < g.curMin {
		panic(fmt.Sprintf("synth: minutes must be non-decreasing (got %d after %d)", minute, g.curMin))
	}
	g.curMin = minute
	at := minute * 60

	g.churnReflectors()
	g.spawnEpisodes(minute)
	dst = g.benignFlows(minute, at, dst)
	dst = g.attackFlows(minute, at, dst)
	g.reapEpisodes(minute)
	return dst
}

// churnReflectors replaces a per-minute expected fraction of every
// reflector pool with fresh hosts, driving the temporal drift of §6.3.
func (g *Generator) churnReflectors() {
	if g.p.ReflectorChurnPerDay <= 0 {
		return
	}
	perMin := g.p.ReflectorChurnPerDay / 1440
	// Pools must churn in a fixed order: ranging over the map directly
	// would consume g.rng in a different sequence every process run,
	// making corpora (and everything trained on them) irreproducible.
	for _, v := range AllVectors {
		pool := g.refl[v.Name]
		n := poisson(g.rng, perMin*float64(len(pool)))
		for i := 0; i < n; i++ {
			pool[g.rng.IntN(len(pool))] = g.randomPublicIP()
		}
	}
}

func (g *Generator) spawnEpisodes(minute int64) {
	at := minute * 60
	for i := 0; i < poisson(g.rng, g.p.EpisodeRatePerMin); i++ {
		nv := 1 + g.rng.IntN(3)
		vecs := make([]Vector, 0, nv)
		for j := 0; j < nv; j++ {
			if v, ok := g.pickVector(at); ok {
				vecs = append(vecs, v)
			}
		}
		if len(vecs) == 0 {
			continue
		}
		mi := g.rng.IntN(len(g.members))
		m := g.members[mi]
		a := m.Prefix.Addr().As4()
		a[3] = byte(1 + g.rng.IntN(254))
		victim := netip.AddrFrom4(a)

		dur := 1 + int64(g.rng.ExpFloat64()*g.p.EpisodeDurMeanMin)
		ep := &episode{
			victim:        victim,
			victimMAC:     m.MAC,
			memberAS:      m.ASN,
			vectors:       vecs,
			flowsPerMin:   float64(g.p.AttackFlowsPerMin) * (0.4 + 1.2*g.rng.Float64()),
			endMin:        minute + dur,
			blackholeFrom: -1,
		}
		if m.UsesBlackholing {
			delay := g.rng.ExpFloat64() * g.p.BlackholeDelayMin
			ep.blackholeFrom = at + int64(delay*60)
			ep.blackholeUntil = ep.endMin * 60 // withdrawn when the attack ends
		} else {
			// Members without the blackholing service are predominantly
			// small networks drawing small attacks; their (unlabeled)
			// episodes are proportionally weaker.
			ep.flowsPerMin *= 0.1
		}
		g.episodes = append(g.episodes, ep)
	}
}

func (g *Generator) reapEpisodes(minute int64) {
	kept := g.episodes[:0]
	for _, ep := range g.episodes {
		if minute >= ep.endMin {
			if ep.announced {
				g.events = append(g.events, BlackholeEvent{
					Prefix:   netip.PrefixFrom(ep.victim, 32),
					At:       ep.blackholeUntil,
					Announce: false,
					MemberAS: ep.memberAS,
				})
			}
			continue
		}
		kept = append(kept, ep)
	}
	g.episodes = kept
}

// Events drains the blackhole announce/withdraw events generated so far.
func (g *Generator) Events() []BlackholeEvent {
	ev := g.events
	g.events = nil
	return ev
}

// ActiveEpisodes returns the number of ongoing attack episodes.
func (g *Generator) ActiveEpisodes() int { return len(g.episodes) }

func (g *Generator) benignFlows(minute, at int64, dst []Flow) []Flow {
	n := poisson(g.rng, float64(g.p.BenignFlowsPerMin))
	for i := 0; i < n; i++ {
		dst = append(dst, g.benignFlow(at, g.pickTarget()))
	}
	return dst
}

// pickTarget samples a benign destination by Zipf popularity.
func (g *Generator) pickTarget() netip.Addr {
	x := g.rng.Float64() * g.targetCum[len(g.targetCum)-1]
	i := sort.SearchFloat64s(g.targetCum, x)
	if i >= len(g.targets) {
		i = len(g.targets) - 1
	}
	return g.targets[i]
}

// benignFlow generates one background flow toward the given destination.
func (g *Generator) benignFlow(at int64, dstIP netip.Addr) Flow {
	svc := pickService(g.rng)
	src := g.sources[g.rng.IntN(len(g.sources))]
	size := frameSize(g.rng, svc.SizeMean, svc.SizeStd)

	var srcPort, dstPort uint16
	serverSide := svc.ServerIsSource
	if g.rng.Float64() < 0.2 {
		serverSide = !serverSide // some reverse-direction traffic
	}
	svcPort := svc.Port
	if svcPort == 0 {
		svcPort = uint16(1024 + g.rng.IntN(64000))
	}
	if serverSide {
		srcPort, dstPort = svcPort, uint16(1024+g.rng.IntN(64000))
	} else {
		srcPort, dstPort = uint16(1024+g.rng.IntN(64000)), svcPort
	}

	var flags uint8
	if svc.Protocol == packet.ProtoTCP {
		flags = packet.FlagACK
		if g.rng.Float64() < 0.3 {
			flags |= packet.FlagPSH
		}
	}
	// A small tail of benign traffic is fragmented (large DNS/EDNS replies,
	// VPN payloads); an order of magnitude below the blackhole class.
	fragment := svc.Protocol == packet.ProtoUDP && g.rng.Float64() < 0.002
	if fragment {
		srcPort, dstPort, flags = 0, 0, 0
		size = frameSize(g.rng, 1480, 60)
	}
	rate := g.p.SamplingRate
	return Flow{
		Record: netflow.Record{
			Timestamp:    at + g.rng.Int64N(60),
			SrcIP:        src,
			DstIP:        dstIP,
			SrcPort:      srcPort,
			DstPort:      dstPort,
			Protocol:     uint8(svc.Protocol),
			TCPFlags:     flags,
			Fragment:     fragment,
			SrcMAC:       g.ingressMAC(src),
			DstMAC:       g.memberMACFor(dstIP),
			Packets:      uint64(rate),
			Bytes:        uint64(rate) * uint64(size),
			SamplingRate: rate,
		},
	}
}

func (g *Generator) attackFlows(minute, at int64, dst []Flow) []Flow {
	for _, ep := range g.episodes {
		n := poisson(g.rng, ep.flowsPerMin)
		for i := 0; i < n; i++ {
			v := ep.vectors[g.rng.IntN(len(ep.vectors))]
			dst = append(dst, g.attackFlow(at, ep, v))
		}
		// Benign traffic keeps flowing to the victim during the attack.
		nb := poisson(g.rng, ep.flowsPerMin*g.p.VictimBenignRatio)
		for i := 0; i < nb; i++ {
			f := g.benignFlow(at, ep.victim)
			f.Record.DstMAC = ep.victimMAC
			g.applyBlackholeLabel(&f, ep)
			dst = append(dst, f)
		}
	}
	return dst
}

func (g *Generator) attackFlow(at int64, ep *episode, v Vector) Flow {
	pool := g.refl[v.Name]
	src := pool[g.rng.IntN(len(pool))]
	size := frameSize(g.rng, v.SizeMean, v.SizeStd)

	fragment := g.rng.Float64() < v.FragmentShare
	var srcPort, dstPort uint16
	var flags uint8
	if !fragment && v.Protocol != packet.ProtoGRE {
		srcPort = v.SrcPort
		if srcPort == 0 {
			srcPort = uint16(1024 + g.rng.IntN(64000))
		}
		if v.SprayPorts {
			dstPort = uint16(g.rng.IntN(65536))
		} else {
			dstPort = uint16(1024 + g.rng.IntN(64000))
		}
		if v.Protocol == packet.ProtoTCP {
			flags = packet.FlagSYN | packet.FlagACK // reflected handshake replies
		}
	}
	if fragment {
		size = frameSize(g.rng, 1480, 60) // fragment tails run near MTU
	}
	rate := g.p.SamplingRate
	f := Flow{
		Record: netflow.Record{
			Timestamp:    at + g.rng.Int64N(60),
			SrcIP:        src,
			DstIP:        ep.victim,
			SrcPort:      srcPort,
			DstPort:      dstPort,
			Protocol:     uint8(v.Protocol),
			TCPFlags:     flags,
			Fragment:     fragment,
			SrcMAC:       g.ingressMAC(src),
			DstMAC:       ep.victimMAC,
			Packets:      uint64(rate),
			Bytes:        uint64(rate) * uint64(size),
			SamplingRate: rate,
		},
		Vector: v.Name,
		Attack: true,
	}
	g.applyBlackholeLabel(&f, ep)
	return f
}

// applyBlackholeLabel sets the Blackholed flag when the flow's timestamp
// falls inside the victim's blackhole window, and records the announce
// event the first time the window opens.
func (g *Generator) applyBlackholeLabel(f *Flow, ep *episode) {
	if ep.blackholeFrom < 0 || f.Timestamp < ep.blackholeFrom || f.Timestamp >= ep.blackholeUntil {
		return
	}
	f.Blackholed = true
	if !ep.announced {
		ep.announced = true
		g.events = append(g.events, BlackholeEvent{
			Prefix:   netip.PrefixFrom(ep.victim, 32),
			At:       ep.blackholeFrom,
			Announce: true,
			MemberAS: ep.memberAS,
		})
	}
}

// ingressMAC maps a source IP to the member router it enters through,
// consistently, so per-member traffic concentrations are learnable.
func (g *Generator) ingressMAC(src netip.Addr) [6]byte {
	b := src.As4()
	h := binary.BigEndian.Uint32(b[:])
	h ^= h >> 13
	return g.members[int(h)%len(g.members)].MAC
}

// memberMACFor returns the MAC of the member owning the destination, or a
// hash-consistent member when the IP is outside every member prefix.
func (g *Generator) memberMACFor(dst netip.Addr) [6]byte {
	p, err := dst.Prefix(24)
	if err == nil {
		if mac, ok := g.owner[p]; ok {
			return mac
		}
	}
	return g.ingressMAC(dst)
}

func pickService(rng *rand.Rand) BenignService {
	var total float64
	for _, s := range BenignServices {
		total += s.Weight
	}
	x := rng.Float64() * total
	for _, s := range BenignServices {
		if x < s.Weight {
			return s
		}
		x -= s.Weight
	}
	return BenignServices[0]
}

// Generate produces all flows of a time range [fromMin, toMin) in one slice.
// Intended for tests and small experiments; long ranges should iterate
// GenerateMinute and stream.
func (g *Generator) Generate(fromMin, toMin int64) []Flow {
	var out []Flow
	for m := fromMin; m < toMin; m++ {
		out = g.GenerateMinute(m, out)
	}
	return out
}

// Records strips ground truth, returning only the wire-visible records.
func Records(flows []Flow) []netflow.Record {
	out := make([]netflow.Record, len(flows))
	for i := range flows {
		out[i] = flows[i].Record
	}
	return out
}
