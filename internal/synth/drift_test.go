package synth

import (
	"net/netip"
	"testing"
)

func TestRealisticImbalance(t *testing.T) {
	p := ProfileUS1().RealisticImbalance()
	g := NewGenerator(p)
	flows := g.Generate(0, 600)
	attack := 0
	for i := range flows {
		if flows[i].Attack {
			attack++
		}
	}
	share := float64(attack) / float64(len(flows))
	if share > 0.02 {
		t.Errorf("attack flow share = %.4f, want < 2%% under realistic imbalance", share)
	}
	if attack == 0 {
		t.Error("no attacks at all — experiments need a nonzero blackhole class")
	}
}

func TestReflectorChurn(t *testing.T) {
	p := testProfile()
	p.ReflectorChurnPerDay = 0.5 // fast churn for the test
	g := NewGenerator(p)
	before := append([]netip.Addr(nil), g.refl["NTP"]...)
	g.Generate(0, 3*1440) // three days
	after := g.refl["NTP"]
	changed := 0
	for i := range before {
		if before[i] != after[i] {
			changed++
		}
	}
	if changed < len(before)/3 {
		t.Errorf("only %d of %d reflectors churned over 3 days at 50%%/day", changed, len(before))
	}

	// Churn disabled: pools must stay identical.
	p2 := testProfile()
	p2.ReflectorChurnPerDay = 0
	g2 := NewGenerator(p2)
	before2 := append([]netip.Addr(nil), g2.refl["NTP"]...)
	g2.Generate(0, 1440)
	for i := range before2 {
		if before2[i] != g2.refl["NTP"][i] {
			t.Fatal("reflector changed with churn disabled")
		}
	}
}

func TestChurnDegradesStaleKnowledge(t *testing.T) {
	// The Fig. 11 mechanism in miniature: the overlap between a pool
	// snapshot and the live pool decays with time.
	p := testProfile()
	p.ReflectorChurnPerDay = 0.3
	g := NewGenerator(p)
	snap := map[netip.Addr]bool{}
	for _, ip := range g.refl["DNS"] {
		snap[ip] = true
	}
	overlapAt := func() float64 {
		n := 0
		for _, ip := range g.refl["DNS"] {
			if snap[ip] {
				n++
			}
		}
		return float64(n) / float64(len(g.refl["DNS"]))
	}
	g.Generate(0, 1440)
	day1 := overlapAt()
	g.Generate(1440, 5*1440)
	day5 := overlapAt()
	if !(day1 > day5) {
		t.Errorf("overlap must decay: day1 %.3f, day5 %.3f", day1, day5)
	}
	if day5 > 0.5 {
		t.Errorf("after 5 days at 30%%/day churn, overlap = %.3f, want < 0.5", day5)
	}
}
