package synth

import (
	"math"
	"math/rand/v2"
	"net/netip"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/packet"
	"github.com/ixp-scrubber/ixpscrubber/internal/sflow"
)

func testProfile() Profile {
	p := profileScaled("TEST", 0x7E57, 40, 300, 0.3)
	p.BlackholeDelayMin = 1
	return p
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(testProfile())
	g2 := NewGenerator(testProfile())
	f1 := g1.Generate(1000, 1030)
	f2 := g2.Generate(1000, 1030)
	if len(f1) != len(f2) {
		t.Fatalf("lengths differ: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("flow %d differs:\n%+v\n%+v", i, f1[i], f2[i])
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	p2 := testProfile()
	p2.Seed = 0xBEEF
	f1 := NewGenerator(testProfile()).Generate(1000, 1005)
	f2 := NewGenerator(p2).Generate(1000, 1005)
	same := len(f1) == len(f2)
	if same {
		for i := range f1 {
			if f1[i] != f2[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traffic")
	}
}

func TestGeneratorMonotonicMinutes(t *testing.T) {
	g := NewGenerator(testProfile())
	g.GenerateMinute(100, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("going back in time must panic")
		}
	}()
	g.GenerateMinute(99, nil)
}

func TestFlowTimestampsInsideMinute(t *testing.T) {
	g := NewGenerator(testProfile())
	for _, f := range g.Generate(500, 505) {
		if f.Minute() < 500 || f.Minute() >= 505 {
			t.Fatalf("flow minute %d outside [500,505)", f.Minute())
		}
		if err := f.Record.Validate(); err != nil {
			t.Fatalf("invalid record: %v", err)
		}
	}
}

// TestClassMixture checks the statistical shapes the experiments rely on:
// attack flows exist, blackholed flows are mostly attack but contain benign
// contamination, and benign traffic has a small share of well-known DDoS
// service ports.
func TestClassMixture(t *testing.T) {
	g := NewGenerator(testProfile())
	flows := g.Generate(10000, 10000+360) // 6 hours

	var benign, attack, bhTotal, bhAttack, benignWellKnown, benignFrag, bhFrag int
	for _, f := range flows {
		if f.Attack {
			attack++
		} else {
			benign++
			if IsWellKnownDDoSPort(f.Protocol, f.SrcPort) {
				benignWellKnown++
			}
			if f.Fragment {
				benignFrag++
			}
		}
		if f.Blackholed {
			bhTotal++
			if f.Attack {
				bhAttack++
			}
			if f.Fragment {
				bhFrag++
			}
		}
	}
	if attack == 0 || benign == 0 {
		t.Fatalf("degenerate mixture: %d attack, %d benign", attack, benign)
	}
	if bhTotal == 0 {
		t.Fatal("no blackholed flows generated")
	}
	attackShareInBH := float64(bhAttack) / float64(bhTotal)
	if attackShareInBH < 0.75 || attackShareInBH > 0.99 {
		t.Errorf("attack share in blackhole = %.3f, want ~0.85-0.9", attackShareInBH)
	}
	wkShare := float64(benignWellKnown) / float64(benign)
	if wkShare < 0.02 || wkShare > 0.2 {
		t.Errorf("benign well-known DDoS port share = %.3f, want ~0.075", wkShare)
	}
	// Fragments: benign share an order of magnitude below blackhole share.
	benignFragShare := float64(benignFrag) / float64(benign)
	bhFragShare := float64(bhFrag) / float64(bhTotal)
	if bhFragShare < 3*benignFragShare {
		t.Errorf("fragment shares: blackhole %.4f vs benign %.4f (want >> benign)", bhFragShare, benignFragShare)
	}
}

func TestBlackholeEventsMatchLabels(t *testing.T) {
	g := NewGenerator(testProfile())
	flows := g.Generate(2000, 2240)
	events := g.Events()

	// Build windows from events.
	type window struct{ from, to int64 }
	open := map[netip.Prefix]int64{}
	windows := map[netip.Prefix][]window{}
	for _, ev := range events {
		if ev.Announce {
			open[ev.Prefix] = ev.At
		} else {
			windows[ev.Prefix] = append(windows[ev.Prefix], window{open[ev.Prefix], ev.At})
			delete(open, ev.Prefix)
		}
	}
	for p, from := range open {
		windows[p] = append(windows[p], window{from, math.MaxInt64})
	}

	for _, f := range flows {
		if !f.Blackholed {
			continue
		}
		p := netip.PrefixFrom(f.DstIP, 32)
		covered := false
		for _, w := range windows[p] {
			if f.Timestamp >= w.from && f.Timestamp < w.to {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("blackholed flow at %d to %v has no covering event window", f.Timestamp, f.DstIP)
		}
	}
}

func TestVectorStartGate(t *testing.T) {
	p := testProfile()
	start := int64(3000 * 60)
	p.VectorWeights = map[string]float64{"NTP": 0.5, "memcached": 0.5}
	p.VectorStart = map[string]int64{"memcached": start}
	p.EpisodeRatePerMin = 1.0
	g := NewGenerator(p)

	early := g.Generate(1000, 1100)
	for _, f := range early {
		if f.Vector == "memcached" {
			t.Fatal("memcached attack before its start date")
		}
	}
	late := g.Generate(3100, 3300)
	found := false
	for _, f := range late {
		if f.Vector == "memcached" {
			found = true
			break
		}
	}
	if !found {
		t.Error("memcached never appeared after its start date")
	}
}

func TestReflectorPoolsNearlyDisjoint(t *testing.T) {
	g1 := NewGenerator(ProfileCE1())
	g2 := NewGenerator(ProfileUS1())
	for _, vec := range []string{"NTP", "DNS", "LDAP"} {
		set := map[netip.Addr]bool{}
		for _, ip := range g1.refl[vec] {
			set[ip] = true
		}
		overlap := 0
		for _, ip := range g2.refl[vec] {
			if set[ip] {
				overlap++
			}
		}
		if overlap > len(g2.refl[vec])/20 {
			t.Errorf("%s reflector overlap between IXPs = %d of %d", vec, overlap, len(g2.refl[vec]))
		}
	}
}

func TestIngressMACConsistency(t *testing.T) {
	g := NewGenerator(testProfile())
	ip := netip.MustParseAddr("8.8.8.8")
	m1 := g.ingressMAC(ip)
	m2 := g.ingressMAC(ip)
	if m1 != m2 {
		t.Error("ingress MAC not consistent for one source IP")
	}
}

func TestVectorOf(t *testing.T) {
	if got := VectorOf(17, 123, false); got != "NTP" {
		t.Errorf("NTP = %q", got)
	}
	if got := VectorOf(17, 0, true); got != "UDP Fragm." {
		t.Errorf("fragment = %q", got)
	}
	if got := VectorOf(6, 53, false); got != "DNS (TCP)" {
		t.Errorf("dns tcp = %q", got)
	}
	if got := VectorOf(47, 0, false); got != "GRE" {
		t.Errorf("gre = %q", got)
	}
	if got := VectorOf(6, 49152, false); got != "" {
		t.Errorf("ephemeral tcp = %q", got)
	}
}

func TestProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 5 {
		t.Fatalf("want 5 profiles, got %d", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		if p.Members <= 0 || p.BenignFlowsPerMin <= 0 {
			t.Errorf("%s: degenerate profile %+v", p.Name, p)
		}
	}
	// Size ordering mirrors Table 2.
	if !(ps[0].BenignFlowsPerMin > ps[1].BenignFlowsPerMin && ps[1].BenignFlowsPerMin > ps[4].BenignFlowsPerMin) {
		t.Error("profiles not ordered by size")
	}
	if _, err := ProfileByName("IXP-SE"); err != nil {
		t.Error(err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("want error for unknown profile")
	}
}

func TestSelfAttackSet(t *testing.T) {
	cfg := DefaultSelfAttackConfig()
	cfg.ToMin = cfg.FromMin + 12*60 // 12h window to keep the test fast
	cfg.Attacks = 30
	flows := SelfAttackSet(cfg)

	var attack, benign, mislabeled int
	for _, f := range flows {
		if f.Attack {
			attack++
			if !f.Blackholed {
				mislabeled++
			}
		} else {
			benign++
			if f.Blackholed {
				mislabeled++
			}
		}
	}
	if attack == 0 || benign == 0 {
		t.Fatalf("degenerate SAS: %d attack / %d benign", attack, benign)
	}
	if mislabeled != 0 {
		t.Errorf("%d flows with label != ground truth (SAS labels must be ground truth)", mislabeled)
	}
	// WS-Discovery must be present in the SAS (it is nearly absent from
	// blackholing data, Fig. 4b).
	foundWSD := false
	for _, f := range flows {
		if f.Vector == "WS-Discovery" {
			foundWSD = true
			break
		}
	}
	if !foundWSD {
		t.Error("WS-Discovery missing from SAS vector mix")
	}
}

func TestFrameForRoundTrip(t *testing.T) {
	g := NewGenerator(testProfile())
	flows := g.Generate(100, 103)
	var b packet.Builder
	var p packet.Packet
	for i := range flows {
		f := &flows[i]
		frame, err := FrameFor(f, &b)
		if err != nil {
			t.Fatalf("FrameFor: %v", err)
		}
		if len(frame) > MaxSampledHeader {
			t.Fatalf("frame %d exceeds sampled header cap: %d", i, len(frame))
		}
		if err := p.Decode(frame); err != nil {
			t.Fatalf("decode generated frame: %v (flow %+v)", err, f)
		}
		if p.Protocol() != packet.IPProtocol(f.Protocol) {
			t.Fatalf("protocol mismatch: %v vs %d", p.Protocol(), f.Protocol)
		}
		srcIP := netip.AddrFrom4(p.IP4.SrcIP)
		if srcIP != f.SrcIP {
			t.Fatalf("src ip mismatch: %v vs %v", srcIP, f.SrcIP)
		}
		if f.Fragment != p.IP4.IsFragment() {
			t.Fatalf("fragment flag mismatch")
		}
		if !f.Fragment {
			s, d := p.Ports()
			if s != f.SrcPort || d != f.DstPort {
				t.Fatalf("ports mismatch: %d/%d vs %d/%d", s, d, f.SrcPort, f.DstPort)
			}
		}
	}
}

func TestSampleFor(t *testing.T) {
	g := NewGenerator(testProfile())
	flows := g.Generate(100, 101)
	var b packet.Builder
	s, err := SampleFor(&flows[0], 7, &b)
	if err != nil {
		t.Fatal(err)
	}
	if s.SamplingRate != flows[0].SamplingRate {
		t.Error("sampling rate lost")
	}
	if s.FrameLength != uint32(flows[0].Bytes/flows[0].Packets) {
		t.Error("frame length mismatch")
	}
	if _, err := sflow.Append(nil, &sflow.Datagram{
		AgentAddress: netip.MustParseAddr("10.0.0.1"),
		Samples:      []sflow.FlowSample{s},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, lambda := range []float64{0.5, 4, 32, 200} {
		n := 20000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			x := float64(poisson(rng, lambda))
			sum += x
			sum2 += x * x
		}
		mean := sum / float64(n)
		varr := sum2/float64(n) - mean*mean
		if math.Abs(mean-lambda) > 0.1*lambda+0.3 {
			t.Errorf("lambda=%v: mean=%v", lambda, mean)
		}
		if math.Abs(varr-lambda) > 0.2*lambda+0.5 {
			t.Errorf("lambda=%v: var=%v", lambda, varr)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("nonpositive lambda must give 0")
	}
}

func TestFrameSizeBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 10000; i++ {
		s := frameSize(rng, 1480, 300)
		if s < 60 || s > 1514 {
			t.Fatalf("frame size %d out of [60,1514]", s)
		}
	}
}

func TestRandomPublicIP(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 10000; i++ {
		ip := randomPublicIPFrom(rng)
		b := ip.As4()
		if b[0] == 10 || b[0] == 127 || b[0] == 0 || b[0] >= 224 ||
			(b[0] == 192 && b[1] == 168) || (b[0] == 172 && b[1]&0xf0 == 16) {
			t.Fatalf("non-public IP generated: %v", ip)
		}
	}
}

func BenchmarkGenerateMinute(b *testing.B) {
	g := NewGenerator(ProfileUS1())
	var buf []Flow
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.GenerateMinute(int64(1000+i), buf[:0])
	}
}
