// Package synth generates synthetic IXP traffic: a benign service mix plus
// reflection/amplification DDoS attack episodes, with per-IXP profiles and
// blackholing behaviour. It substitutes for the paper's proprietary sampled
// flow data (50 TB across five IXPs) while preserving the statistical
// properties the pipeline depends on: the share of well-known DDoS ports in
// blackholed vs benign traffic (Fig. 4a), per-vector packet size signatures
// (Fig. 4b), the tiny unbalanced blackholing share (Fig. 3a), near-disjoint
// per-IXP reflector pools (Fig. 12 middle), and the appearance of new attack
// vectors over time (Fig. 13).
//
// All randomness flows from explicit seeds; a Generator is deterministic.
package synth

import "github.com/ixp-scrubber/ixpscrubber/internal/packet"

// Vector describes one DDoS attack vector: the reflection service abused,
// and the packet-level signature its attack traffic exhibits.
type Vector struct {
	// Name is the display name used across the paper's figures.
	Name string
	// Protocol is the IP protocol of the attack traffic.
	Protocol packet.IPProtocol
	// SrcPort is the abused service port; reflection traffic arrives *from*
	// this port. 0 means randomized (e.g. direct floods, GRE).
	SrcPort uint16
	// SizeMean and SizeStd parameterize the truncated-normal frame size
	// distribution in bytes (Ethernet frame, header included).
	SizeMean, SizeStd float64
	// FragmentShare is the fraction of attack packets that are non-first IP
	// fragments (no L4 header), as large amplification replies fragment.
	FragmentShare float64
	// SprayPorts: attack traffic is sprayed over random destination ports
	// (true for most reflection vectors).
	SprayPorts bool
	// WellKnown marks ports counted as "well-known DDoS ports" in Fig. 4a.
	WellKnown bool
}

// The attack vector catalog. Service ports and characteristic packet sizes
// follow the paper (Fig. 4) and the measurement literature it cites: NTP
// monlist replies ~468 B frames, DNS/LDAP/memcached amplification close to
// MTU with heavy fragmentation, SSDP/WS-Discovery mid-sized XML replies.
var (
	VectorNTP = Vector{Name: "NTP", Protocol: packet.ProtoUDP, SrcPort: 123,
		SizeMean: 468, SizeStd: 30, FragmentShare: 0.02, SprayPorts: true, WellKnown: true}
	VectorDNS = Vector{Name: "DNS", Protocol: packet.ProtoUDP, SrcPort: 53,
		SizeMean: 1280, SizeStd: 300, FragmentShare: 0.25, SprayPorts: true, WellKnown: true}
	VectorSNMP = Vector{Name: "SNMP", Protocol: packet.ProtoUDP, SrcPort: 161,
		SizeMean: 1180, SizeStd: 250, FragmentShare: 0.20, SprayPorts: true, WellKnown: true}
	VectorLDAP = Vector{Name: "LDAP", Protocol: packet.ProtoUDP, SrcPort: 389,
		SizeMean: 1420, SizeStd: 120, FragmentShare: 0.35, SprayPorts: true, WellKnown: true}
	VectorSSDP = Vector{Name: "SSDP", Protocol: packet.ProtoUDP, SrcPort: 1900,
		SizeMean: 340, SizeStd: 60, FragmentShare: 0.0, SprayPorts: true, WellKnown: true}
	VectorMemcached = Vector{Name: "memcached", Protocol: packet.ProtoUDP, SrcPort: 11211,
		SizeMean: 1440, SizeStd: 80, FragmentShare: 0.45, SprayPorts: true, WellKnown: true}
	VectorChargen = Vector{Name: "chargen", Protocol: packet.ProtoUDP, SrcPort: 19,
		SizeMean: 1020, SizeStd: 400, FragmentShare: 0.05, SprayPorts: true, WellKnown: true}
	VectorWSDiscovery = Vector{Name: "WS-Discovery", Protocol: packet.ProtoUDP, SrcPort: 3702,
		SizeMean: 630, SizeStd: 120, FragmentShare: 0.0, SprayPorts: true, WellKnown: true}
	VectorCLDAP = Vector{Name: "CLDAP", Protocol: packet.ProtoUDP, SrcPort: 389,
		SizeMean: 1420, SizeStd: 120, FragmentShare: 0.35, SprayPorts: true, WellKnown: true}
	VectorRpcbind = Vector{Name: "rpcbind", Protocol: packet.ProtoUDP, SrcPort: 111,
		SizeMean: 340, SizeStd: 40, FragmentShare: 0.0, SprayPorts: true, WellKnown: true}
	VectorMSSQL = Vector{Name: "MSSQL", Protocol: packet.ProtoUDP, SrcPort: 1434,
		SizeMean: 620, SizeStd: 90, FragmentShare: 0.0, SprayPorts: true, WellKnown: true}
	VectorNetBIOS = Vector{Name: "NetBIOS", Protocol: packet.ProtoUDP, SrcPort: 137,
		SizeMean: 250, SizeStd: 40, FragmentShare: 0.0, SprayPorts: true, WellKnown: true}
	VectorRIP = Vector{Name: "RIP", Protocol: packet.ProtoUDP, SrcPort: 520,
		SizeMean: 500, SizeStd: 30, FragmentShare: 0.0, SprayPorts: true, WellKnown: true}
	VectorOpenVPN = Vector{Name: "OpenVPN", Protocol: packet.ProtoUDP, SrcPort: 1194,
		SizeMean: 120, SizeStd: 30, FragmentShare: 0.0, SprayPorts: true, WellKnown: true}
	VectorTFTP = Vector{Name: "TFTP", Protocol: packet.ProtoUDP, SrcPort: 69,
		SizeMean: 540, SizeStd: 50, FragmentShare: 0.0, SprayPorts: true, WellKnown: true}
	VectorAppleRD = Vector{Name: "Apple RD", Protocol: packet.ProtoUDP, SrcPort: 3283,
		SizeMean: 1030, SizeStd: 90, FragmentShare: 0.05, SprayPorts: true, WellKnown: true}
	VectorUbiquiti = Vector{Name: "Ubiquiti SD", Protocol: packet.ProtoUDP, SrcPort: 10001,
		SizeMean: 200, SizeStd: 30, FragmentShare: 0.0, SprayPorts: true, WellKnown: true}
	VectorDNSTCP = Vector{Name: "DNS (TCP)", Protocol: packet.ProtoTCP, SrcPort: 53,
		SizeMean: 700, SizeStd: 200, FragmentShare: 0.0, SprayPorts: true, WellKnown: true}
	VectorGRE = Vector{Name: "GRE", Protocol: packet.ProtoGRE, SrcPort: 0,
		SizeMean: 540, SizeStd: 100, FragmentShare: 0.0, SprayPorts: false, WellKnown: false}
	// VectorUDPFragments models pure fragment floods (and the fragment tails
	// of amplification attacks observed in isolation).
	VectorUDPFragments = Vector{Name: "UDP Fragm.", Protocol: packet.ProtoUDP, SrcPort: 0,
		SizeMean: 1480, SizeStd: 60, FragmentShare: 1.0, SprayPorts: true, WellKnown: false}
)

// AllVectors lists the full catalog in a stable order.
var AllVectors = []Vector{
	VectorNTP, VectorDNS, VectorSNMP, VectorLDAP, VectorSSDP, VectorMemcached,
	VectorChargen, VectorWSDiscovery, VectorCLDAP, VectorRpcbind, VectorMSSQL,
	VectorNetBIOS, VectorRIP, VectorOpenVPN, VectorTFTP, VectorAppleRD,
	VectorUbiquiti, VectorDNSTCP, VectorGRE, VectorUDPFragments,
}

// Top7Vectors are the attack vectors broken out per-vector in Table 3.
var Top7Vectors = []Vector{
	VectorUDPFragments, VectorDNS, VectorNTP, VectorSNMP, VectorLDAP, VectorSSDP, VectorAppleRD,
}

// WellKnownDDoSPorts maps (protocol, source port) pairs counted as
// "well-known DDoS ports" in the dataset validation (Fig. 4a).
var WellKnownDDoSPorts = func() map[[2]uint32]string {
	m := make(map[[2]uint32]string)
	for _, v := range AllVectors {
		if v.WellKnown {
			m[[2]uint32{uint32(v.Protocol), uint32(v.SrcPort)}] = v.Name
		}
	}
	return m
}()

// IsWellKnownDDoSPort reports whether traffic from the given protocol and
// source port counts as a well-known DDoS service.
func IsWellKnownDDoSPort(protocol uint8, srcPort uint16) bool {
	_, ok := WellKnownDDoSPorts[[2]uint32{uint32(protocol), uint32(srcPort)}]
	return ok
}

// VectorOf classifies a flow by (protocol, srcPort, fragment) into a vector
// name, mirroring how the paper attributes flows to attack vectors. Returns
// "" for flows matching no catalog vector.
func VectorOf(protocol uint8, srcPort uint16, fragment bool) string {
	if fragment {
		return VectorUDPFragments.Name
	}
	if name, ok := WellKnownDDoSPorts[[2]uint32{uint32(protocol), uint32(srcPort)}]; ok {
		return name
	}
	if packet.IPProtocol(protocol) == packet.ProtoGRE {
		return VectorGRE.Name
	}
	return ""
}

// BenignService describes one legitimate service in the background mix.
type BenignService struct {
	Name      string
	Protocol  packet.IPProtocol
	Port      uint16 // the server-side port
	SizeMean  float64
	SizeStd   float64
	Weight    float64 // relative share of benign flows
	// ServerIsSource: response-heavy services mostly appear with the server
	// port as source at the IXP (content flowing toward members).
	ServerIsSource bool
}

// BenignServices is the background service mix. Weights are chosen so that
// ~7.5 % of benign flows originate from well-known DDoS service ports
// (benign NTP, DNS resolution, SNMP management traffic; Fig. 4a).
var BenignServices = []BenignService{
	{Name: "HTTPS", Protocol: packet.ProtoTCP, Port: 443, SizeMean: 900, SizeStd: 520, Weight: 0.46, ServerIsSource: true},
	{Name: "HTTP", Protocol: packet.ProtoTCP, Port: 80, SizeMean: 820, SizeStd: 500, Weight: 0.17, ServerIsSource: true},
	{Name: "QUIC", Protocol: packet.ProtoUDP, Port: 443, SizeMean: 1100, SizeStd: 350, Weight: 0.155, ServerIsSource: true},
	{Name: "DNS", Protocol: packet.ProtoUDP, Port: 53, SizeMean: 120, SizeStd: 60, Weight: 0.045, ServerIsSource: true},
	{Name: "NTP", Protocol: packet.ProtoUDP, Port: 123, SizeMean: 90, SizeStd: 8, Weight: 0.02, ServerIsSource: true},
	{Name: "SNMP", Protocol: packet.ProtoUDP, Port: 161, SizeMean: 150, SizeStd: 60, Weight: 0.008, ServerIsSource: true},
	{Name: "SSH", Protocol: packet.ProtoTCP, Port: 22, SizeMean: 210, SizeStd: 150, Weight: 0.03, ServerIsSource: false},
	{Name: "SMTP", Protocol: packet.ProtoTCP, Port: 25, SizeMean: 420, SizeStd: 280, Weight: 0.03, ServerIsSource: false},
	{Name: "RTMP", Protocol: packet.ProtoTCP, Port: 1935, SizeMean: 1200, SizeStd: 300, Weight: 0.04, ServerIsSource: true},
	{Name: "BGP", Protocol: packet.ProtoTCP, Port: 179, SizeMean: 110, SizeStd: 40, Weight: 0.002, ServerIsSource: false},
	{Name: "Ephemeral", Protocol: packet.ProtoTCP, Port: 0, SizeMean: 640, SizeStd: 430, Weight: 0.04, ServerIsSource: false},
}
