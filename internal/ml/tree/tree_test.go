package tree

import (
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/ml/mltest"
)

func TestFitBlobs(t *testing.T) {
	x, y := mltest.Blobs(1, 400, 5, 3)
	m := New(DefaultOptions())
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := mltest.Blobs(2, 200, 5, 3)
	if acc := mltest.Accuracy(yt, m.Predict(xt)); acc < 0.93 {
		t.Errorf("test accuracy = %.3f", acc)
	}
}

func TestFitXOR(t *testing.T) {
	x, y := mltest.XOR(3, 800)
	m := New(DefaultOptions())
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := mltest.XOR(4, 400)
	if acc := mltest.Accuracy(yt, m.Predict(xt)); acc < 0.93 {
		t.Errorf("XOR accuracy = %.3f", acc)
	}
}

func TestEmptyAndSingleClass(t *testing.T) {
	m := New(DefaultOptions())
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("want error on empty set")
	}
	x := [][]float64{{1}, {2}, {3}}
	if err := m.Fit(x, []int{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Predict(x) {
		if p != 0 {
			t.Error("pure class must predict 0")
		}
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	x, y := mltest.XOR(5, 600)
	big := New(Options{MinSamplesLeaf: 200, MinSamplesSplit: 2})
	small := New(Options{MinSamplesLeaf: 1, MinSamplesSplit: 2})
	if err := big.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := small.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if big.NodeCount() >= small.NodeCount() {
		t.Errorf("MinSamplesLeaf=200 grew %d nodes, unconstrained grew %d", big.NodeCount(), small.NodeCount())
	}
}

func TestCCPPruning(t *testing.T) {
	x, y := mltest.XOR(7, 600)
	// Inject label noise so an unpruned tree overfits deep branches.
	for i := 0; i < len(y); i += 17 {
		y[i] = 1 - y[i]
	}
	unpruned := New(Options{MinSamplesLeaf: 1, MinSamplesSplit: 2, CCPAlpha: 0})
	pruned := New(Options{MinSamplesLeaf: 1, MinSamplesSplit: 2, CCPAlpha: 0.005})
	if err := unpruned.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := pruned.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if pruned.NodeCount() >= unpruned.NodeCount() {
		t.Errorf("pruned %d nodes >= unpruned %d", pruned.NodeCount(), unpruned.NodeCount())
	}
	xt, yt := mltest.XOR(8, 400)
	if acc := mltest.Accuracy(yt, pruned.Predict(xt)); acc < 0.85 {
		t.Errorf("pruned accuracy = %.3f", acc)
	}
}

func TestMaxDepth(t *testing.T) {
	x, y := mltest.XOR(9, 500)
	m := New(Options{MaxDepth: 1, MinSamplesLeaf: 1, MinSamplesSplit: 2})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if m.NodeCount() > 3 {
		t.Errorf("depth-1 tree has %d nodes", m.NodeCount())
	}
}

func BenchmarkFit(b *testing.B) {
	x, y := mltest.Blobs(1, 2000, 20, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(DefaultOptions())
		if err := m.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
