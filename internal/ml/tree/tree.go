// Package tree implements a CART decision tree classifier with Gini
// impurity, the DT model of the paper's comparison, including the
// hyperparameters of its Appendix C grid: minimal cost-complexity pruning
// (ccp_alpha), minimum impurity decrease, and minimum samples per leaf and
// split.
package tree

import (
	"fmt"
	"math"
	"sort"
)

// Options are the decision tree hyperparameters.
type Options struct {
	MaxDepth            int     // 0 = unlimited
	MinSamplesLeaf      int     // paper grid: {1, 100, 300}
	MinSamplesSplit     int     // paper grid: {2, 100}
	MinImpurityDecrease float64 // paper grid: {1e-5, 1e-3}
	CCPAlpha            float64 // paper grid: {1e-9, 1e-7, 1e-5, 0}
}

// DefaultOptions returns the paper's selected parameters.
func DefaultOptions() Options {
	return Options{
		MinSamplesLeaf:      1,
		MinSamplesSplit:     2,
		MinImpurityDecrease: 1e-5,
		CCPAlpha:            1e-7,
	}
}

type node struct {
	feature     int // -1 = leaf
	thresh      float64
	left, right int
	// prediction data
	prob    float64 // P(y=1) among training rows in this node
	samples int
	// pruning bookkeeping
	impurity float64
}

// Model is a fitted decision tree.
type Model struct {
	opts  Options
	nodes []node
}

// New returns an unfitted tree.
func New(opts Options) *Model {
	if opts.MinSamplesLeaf <= 0 {
		opts.MinSamplesLeaf = 1
	}
	if opts.MinSamplesSplit < 2 {
		opts.MinSamplesSplit = 2
	}
	return &Model{opts: opts}
}

func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

type buildItem struct {
	nodeIdx int
	rows    []int
	depth   int
}

// Fit grows the tree and applies cost-complexity pruning.
func (m *Model) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return fmt.Errorf("tree: empty training set")
	}
	cols := len(x[0])
	all := make([]int, len(x))
	for i := range all {
		all[i] = i
	}
	m.nodes = []node{{feature: -1}}
	queue := []buildItem{{0, all, 0}}

	type cand struct {
		idx  int
		vals []float64
	}
	_ = cand{}

	for len(queue) > 0 {
		it := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		pos := 0
		for _, r := range it.rows {
			pos += y[r]
		}
		n := len(it.rows)
		nd := node{
			feature:  -1,
			prob:     float64(pos) / float64(n),
			samples:  n,
			impurity: gini(pos, n),
		}
		m.nodes[it.nodeIdx] = nd
		if pos == 0 || pos == n || n < m.opts.MinSamplesSplit ||
			(m.opts.MaxDepth > 0 && it.depth >= m.opts.MaxDepth) {
			continue
		}

		// Exact greedy split search over sorted feature values.
		bestGain := m.opts.MinImpurityDecrease
		bestFeat := -1
		bestThresh := 0.0
		parentImp := nd.impurity
		order := make([]int, n)
		for j := 0; j < cols; j++ {
			copy(order, it.rows)
			sort.Slice(order, func(a, b int) bool { return x[order[a]][j] < x[order[b]][j] })
			posL, nL := 0, 0
			for k := 0; k < n-1; k++ {
				r := order[k]
				posL += y[r]
				nL++
				if x[order[k]][j] == x[order[k+1]][j] {
					continue
				}
				nR := n - nL
				if nL < m.opts.MinSamplesLeaf || nR < m.opts.MinSamplesLeaf {
					continue
				}
				posR := pos - posL
				wImp := (float64(nL)*gini(posL, nL) + float64(nR)*gini(posR, nR)) / float64(n)
				gain := (parentImp - wImp) * float64(n) / float64(len(x))
				if gain > bestGain {
					bestGain = gain
					bestFeat = j
					bestThresh = (x[order[k]][j] + x[order[k+1]][j]) / 2
				}
			}
		}
		if bestFeat < 0 {
			continue
		}
		var leftRows, rightRows []int
		for _, r := range it.rows {
			if x[r][bestFeat] <= bestThresh {
				leftRows = append(leftRows, r)
			} else {
				rightRows = append(rightRows, r)
			}
		}
		if len(leftRows) == 0 || len(rightRows) == 0 {
			continue
		}
		li := len(m.nodes)
		m.nodes = append(m.nodes, node{feature: -1}, node{feature: -1})
		nd.feature = bestFeat
		nd.thresh = bestThresh
		nd.left, nd.right = li, li+1
		m.nodes[it.nodeIdx] = nd
		queue = append(queue,
			buildItem{li, leftRows, it.depth + 1},
			buildItem{li + 1, rightRows, it.depth + 1},
		)
	}
	if m.opts.CCPAlpha > 0 {
		m.prune(0, len(x))
	}
	return nil
}

// prune applies one-pass minimal cost-complexity pruning: a subtree is
// collapsed when its impurity improvement per leaf is below alpha.
func (m *Model) prune(idx, total int) (leaves int, cost float64) {
	nd := &m.nodes[idx]
	w := float64(nd.samples) / float64(total)
	if nd.feature < 0 {
		return 1, w * nd.impurity
	}
	lLeaves, lCost := m.prune(nd.left, total)
	rLeaves, rCost := m.prune(nd.right, total)
	leaves = lLeaves + rLeaves
	cost = lCost + rCost
	own := w * nd.impurity
	alphaEff := (own - cost) / float64(leaves-1)
	if alphaEff < m.opts.CCPAlpha {
		nd.feature = -1 // collapse to leaf
		return 1, own
	}
	return leaves, cost
}

// Score returns P(y=1) from the leaf the row lands in.
func (m *Model) Score(row []float64) float64 {
	i := 0
	for {
		n := &m.nodes[i]
		if n.feature < 0 {
			return n.prob
		}
		v := row[n.feature]
		if math.IsNaN(v) || v <= n.thresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Predict labels rows at the 0.5 threshold.
func (m *Model) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		if m.Score(row) >= 0.5 {
			out[i] = 1
		}
	}
	return out
}

// NodeCount returns the number of nodes (pruning observability).
func (m *Model) NodeCount() int {
	count := 0
	var walk func(int)
	walk = func(i int) {
		count++
		if m.nodes[i].feature >= 0 {
			walk(m.nodes[i].left)
			walk(m.nodes[i].right)
		}
	}
	if len(m.nodes) > 0 {
		walk(0)
	}
	return count
}
