package ml

import (
	"fmt"
	"sort"
)

// Params is one hyperparameter assignment.
type Params map[string]float64

// Grid enumerates the cartesian product of per-parameter value lists
// (Table 4's parameter spaces).
func Grid(space map[string][]float64) []Params {
	names := make([]string, 0, len(space))
	for n := range space {
		names = append(names, n)
	}
	sort.Strings(names)
	out := []Params{{}}
	for _, name := range names {
		var next []Params
		for _, base := range out {
			for _, v := range space[name] {
				p := make(Params, len(base)+1)
				for k, bv := range base {
					p[k] = bv
				}
				p[name] = v
				next = append(next, p)
			}
		}
		out = next
	}
	return out
}

// GridResult is the cross-validated score of one parameter assignment.
type GridResult struct {
	Params Params
	Score  float64 // mean Fβ=0.5 across folds
}

// GridSearch evaluates every parameter assignment with k-fold cross
// validation and returns all results sorted by descending score. build maps
// an assignment to a fresh pipeline.
func GridSearch(space map[string][]float64, build func(Params) *Pipeline, d *Dataset, seed uint64, k int) ([]GridResult, error) {
	grid := Grid(space)
	results := make([]GridResult, 0, len(grid))
	for _, params := range grid {
		score, err := CrossValidate(func() *Pipeline { return build(params) }, d, seed, k)
		if err != nil {
			return nil, fmt.Errorf("ml: grid point %v: %w", params, err)
		}
		results = append(results, GridResult{Params: params, Score: score})
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].Score > results[j].Score })
	return results, nil
}
