package xgb

import (
	"bytes"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/ml/mltest"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	x, y := mltest.Blobs(21, 300, 6, 2.5)
	m := New(Options{Estimators: 12, MaxDepth: 5, Bins: 32})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTrees() != m.NumTrees() {
		t.Fatalf("trees: %d != %d", got.NumTrees(), m.NumTrees())
	}
	xt, _ := mltest.Blobs(22, 200, 6, 2.5)
	for i, row := range xt {
		if m.Score(row) != got.Score(row) {
			t.Fatalf("row %d: score %v != %v", i, got.Score(row), m.Score(row))
		}
	}
	gi1, gi2 := m.GainImportance(), got.GainImportance()
	for i := range gi1 {
		if gi1[i] != gi2[i] {
			t.Fatal("gain importances differ")
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	cases := []string{
		"{",
		`{"options":{},"cols":2,"trees":[[]]}`, // empty tree
		`{"options":{},"cols":2,"trees":[[{"f":5,"l":1,"r":2},{"f":-1},{"f":-1}]]}`,  // feature out of range
		`{"options":{},"cols":9,"trees":[[{"f":5,"l":0,"r":2},{"f":-1},{"f":-1}]]}`,  // backward child link
		`{"options":{},"cols":9,"trees":[[{"f":5,"l":1,"r":99},{"f":-1},{"f":-1}]]}`, // child out of range
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}
