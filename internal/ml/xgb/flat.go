package xgb

import (
	"math"
	"math/bits"
	"sort"
	"unsafe"

	"github.com/ixp-scrubber/ixpscrubber/internal/par"
)

// maxFlatCols bounds the stack-allocated per-row rank buffer the batch
// walkers reuse. Models wider than this (none in this system — the
// encoded feature matrix is ~45 columns) simply don't compile a flat
// program and score through the reference tree walker instead. The
// value must stay a power of two: the hot loop indexes the rank buffer
// with feat & (maxFlatCols-1), which the compiler can prove in-bounds —
// together with the offset-based node cursors that makes the inner walk
// entirely bounds-check-free.
const maxFlatCols = 256

const signBit = 1 << 63

// nanKey is the missing-value sentinel: strictly above every real key,
// never produced by a finite threshold. Rows containing it are detected
// once, during the rank transform, and routed through the reference
// tree walker — the lockstep fast path never sees missing values.
const nanKey = ^uint64(0)

// floatKey maps a float64 to a uint64 whose unsigned order equals the
// float order: positives get their sign bit set, negatives are bitwise
// inverted, and NaN maps to the nanKey sentinel. For any non-NaN a, b
// with a, b not both zeros: a <= b ⟺ floatKey(a) <= floatKey(b). The
// zeros are the one subtlety: key(-0) = signBit-1 and key(+0) = signBit
// are ADJACENT integers, so no other value's key falls between them and
// any threshold except zero itself orders them identically. Thresholds
// are therefore normalized (-0 → +0) by compileKey at compile time,
// which keeps -0 row values ranking exactly like +0 without spending a
// normalization branch in the per-row hot transform.
func floatKey(v float64) uint64 {
	if v != v {
		return nanKey
	}
	b := math.Float64bits(v)
	return b ^ (uint64(int64(b)>>63) | signBit)
}

// compileKey is floatKey for thresholds: -0 collapses to +0 so that a
// zero threshold admits both zero row values on its left side, exactly
// as the float-domain compare v <= 0.0 does.
func compileKey(v float64) uint64 {
	if v == 0 {
		v = 0
	}
	return floatKey(v)
}

// flatStride is the byte size of one compiled node; walk cursors are
// byte offsets into the arena, so child links never pay an
// index-scaling or bounds-check instruction on the critical
// load-to-load path.
const flatStride = 8

// maxFlatRanks caps the number of distinct thresholds per feature a
// program can express: ranks must fit uint8 alongside the miss-free
// fast path. Trained models stay far below it (quantile binning yields
// at most Bins-1 distinct edges per feature).
const maxFlatRanks = 255

// Each compiled node is ONE uint64 — a single load per visit:
//
//	[63:48] splitRank, int16: rank of the threshold among this feature's
//	        distinct thresholds; -1 marks a leaf (so bit 63 doubles as
//	        the leaf flag)
//	[39:32] feat, uint8
//	[31:0]  right-child byte offset (the left child is off+flatStride)
//
// The walk compares RANKS, not raw floats: compile sorts each feature's
// distinct thresholds and the per-row transform ranks every value
// against that table, so v <= thresh ⟺ rank(v) <= splitRank — the
// rank is "how many distinct thresholds are strictly below v", and the
// equivalence is exact, not approximate, because ranking and the float
// compare are both resolved by the same total order on floatKeys.
//
// Leaves are self-absorbing: splitRank -1 is below every rank, so the
// branchless step always "goes right", and right = own offset — a chain
// that reaches its leaf simply steps in place. That lets the lockstep
// walkers keep stepping all chains with no per-chain leaf branch and
// exit on one test: AND the node words together and check bit 63 —
// every chain parked. Leaf values live in the program's leafVal array.
type flatNode = uint64

func packNode(splitRank int16, feat uint8, rightOff uint32) flatNode {
	return uint64(uint16(splitRank))<<48 | uint64(feat)<<32 | uint64(rightOff)
}

func nodeSplitRank(n flatNode) int16 { return int16(int64(n) >> 48) }
func nodeFeat(n flatNode) uint8      { return uint8(n >> 32) }
func nodeRightOff(n flatNode) uint32 { return uint32(n) }

// program is the compiled flat inference form of a fitted ensemble:
// every tree's nodes laid out depth-first in one contiguous arena of
// single-word nodes, plus per-feature Eytzinger threshold tables for
// the row transform and the leaf values (off the hot path).
//
// The program is derived state, rebuilt from the trees after Fit and
// Load, never serialized, and pinned bit-for-bit to tree.predict by the
// equivalence suite: same routing decisions, the same leaf values, and
// per-row margin sums in the same base + tree0 + tree1 + … order. Rows
// with missing values bypass the program entirely and walk the
// reference trees, which also keeps the rank transform free of the
// default-direction logic.
//
// The walkers address the arena through unsafe.Add with byte-offset
// cursors. Every offset is either a root (bounded by construction) or a
// child link of a previously visited node; Load's structural validation
// (children in range and after their parent, single parent each)
// guarantees those stay inside the arena, which is what makes dropping
// the per-visit bounds check sound.
type program struct {
	base    float64
	cols    int
	nodes   []flatNode
	leafVal []float64 // leaf value per arena slot; 0 for internal nodes
	// table holds cols consecutive Eytzinger heaps of 1<<levels
	// threshold keys each (slot 0 of each heap unused, pad nanKey);
	// fillRanks runs `levels` branchless halving steps per value.
	table  []uint64
	levels uint
	roots  []int32 // arena index of each tree's root, in tree order
	trees  []tree  // reference trees, for rows with missing values
}

// arena returns the base pointer the offset walkers add into.
func (p *program) arena() unsafe.Pointer {
	return unsafe.Pointer(unsafe.SliceData(p.nodes))
}

func nodeAt(base unsafe.Pointer, off uintptr) flatNode {
	return *(*uint64)(unsafe.Add(base, off))
}

// compile lowers m's trees into a flat program, or nil for models too
// wide or threshold-rich for the packed encoding (those keep scoring
// through the reference walker). It handles any model that passes Load
// validation, so arenas stay linear in node count; a model with no
// trees compiles to just the base score.
func compile(m *Model) *program {
	if m.cols > maxFlatCols {
		return nil
	}
	total := 0
	for i := range m.trees {
		total += len(m.trees[i].nodes)
	}
	if uint64(total)*flatStride > math.MaxUint32 {
		return nil // byte offsets must fit the packed 32-bit child link
	}

	// Distinct threshold keys per feature, sorted: the rank universe.
	thresh := make([][]uint64, m.cols)
	for ti := range m.trees {
		for ni := range m.trees[ti].nodes {
			n := &m.trees[ti].nodes[ni]
			if n.feature >= 0 {
				thresh[n.feature] = append(thresh[n.feature], compileKey(n.thresh))
			}
		}
	}
	maxRanks := 0
	for f := range thresh {
		t := thresh[f]
		sort.Slice(t, func(a, b int) bool { return t[a] < t[b] })
		w := 0
		for i := range t {
			if i == 0 || t[i] != t[i-1] {
				t[w] = t[i]
				w++
			}
		}
		thresh[f] = t[:w]
		if w > maxRanks {
			maxRanks = w
		}
	}
	if maxRanks > maxFlatRanks {
		return nil
	}
	levels := uint(bits.Len(uint(maxRanks))) // 1<<levels > maxRanks

	p := &program{
		base:    m.base,
		cols:    m.cols,
		nodes:   make([]flatNode, 0, total),
		leafVal: make([]float64, 0, total),
		table:   make([]uint64, m.cols<<levels),
		levels:  levels,
		roots:   make([]int32, len(m.trees)),
		trees:   m.trees,
	}
	size := 1 << levels
	for f := range thresh {
		heap := p.table[f<<levels : (f+1)<<levels]
		pos := 0
		// In-order fill places the sorted keys across the implicit tree;
		// unused slots pad with nanKey, which no real key exceeds, so
		// searches fall left past the padding and ranks stay exact.
		var fill func(i int)
		fill = func(i int) {
			if i >= size {
				return
			}
			fill(2 * i)
			if pos < len(thresh[f]) {
				heap[i] = thresh[f][pos]
				pos++
			} else {
				heap[i] = nanKey
			}
			fill(2*i + 1)
		}
		heap[0] = nanKey
		if size > 1 {
			fill(1)
		}
	}

	for i := range m.trees {
		p.roots[i] = int32(len(p.nodes))
		p.emit(&m.trees[i], 0, thresh)
	}
	return p
}

// emit appends node ni of tr depth-first: the node, its left subtree
// (landing at the next slot), then its right subtree, backpatching the
// right-child offset into the packed word.
func (p *program) emit(tr *tree, ni int, thresh [][]uint64) int32 {
	n := &tr.nodes[ni]
	at := int32(len(p.nodes))
	if n.feature < 0 {
		p.nodes = append(p.nodes, packNode(-1, 0, uint32(at)*flatStride))
		p.leafVal = append(p.leafVal, n.leaf)
		return at
	}
	t := thresh[n.feature]
	key := compileKey(n.thresh)
	rank := sort.Search(len(t), func(i int) bool { return t[i] >= key })
	p.nodes = append(p.nodes, packNode(int16(rank), uint8(n.feature), 0))
	p.leafVal = append(p.leafVal, 0)
	p.emit(tr, n.left, thresh)
	r := p.emit(tr, n.right, thresh)
	p.nodes[at] |= uint64(uint32(r) * flatStride)
	return at
}

// rawKey is floatKey without the NaN branch, for the batched rank
// transform: NaN maps to SOME key (above +Inf for positive-sign NaN,
// below -Inf for negative), which is fine because rows containing NaN
// are detected separately and never use their ranks.
func rawKey(v float64) uint64 {
	b := math.Float64bits(v)
	return b ^ (uint64(int64(b)>>63) | signBit)
}

// rankStep is one Eytzinger halving: the borrow of (table key − value
// key) picks the child. After `levels` steps the heap position IS the
// count of distinct thresholds strictly below the value.
func rankStep(tb unsafe.Pointer, bias, i uintptr, k uint64) uintptr {
	h := *(*uint64)(unsafe.Add(tb, (bias+i)*8))
	_, borrow := bits.Sub64(h, k, 0) // 1 iff k > h
	return 2*i + uintptr(borrow)
}

// fillRanks transforms one row into threshold ranks — once per row; the
// ranks are then read ~trees × depth times as single-byte compares.
// Each value runs `levels` branchless Eytzinger steps, four feature
// columns interleaved so the serial load→borrow→index chains overlap
// (a single chain is ~10 cycles per level; four in flight approach the
// issue-width floor — array-based level-synchronous variants measured
// ~2× slower: more µops per step and the state round-trips through L1).
// Returns whether the row contains any missing value, in which case the
// caller abandons the fast path for that row (the overwhelmingly common
// case has none: the core pipeline imputes before scoring) — which is
// also why the transform itself needs no NaN handling beyond detection.
func (p *program) fillRanks(ranks []uint8, row []float64) bool {
	levels := p.levels
	size := uintptr(1) << levels
	tb := unsafe.Pointer(unsafe.SliceData(p.table))
	anyNaN := false
	j := 0
	for ; j+4 <= len(ranks); j += 4 {
		v0, v1, v2, v3 := row[j], row[j+1], row[j+2], row[j+3]
		if v0 != v0 || v1 != v1 || v2 != v2 || v3 != v3 {
			anyNaN = true
		}
		k0, k1, k2, k3 := rawKey(v0), rawKey(v1), rawKey(v2), rawKey(v3)
		b0 := uintptr(j) << levels
		b1 := uintptr(j+1) << levels
		b2 := uintptr(j+2) << levels
		b3 := uintptr(j+3) << levels
		i0, i1, i2, i3 := uintptr(1), uintptr(1), uintptr(1), uintptr(1)
		for s := uint(0); s < levels; s++ {
			i0 = rankStep(tb, b0, i0, k0)
			i1 = rankStep(tb, b1, i1, k1)
			i2 = rankStep(tb, b2, i2, k2)
			i3 = rankStep(tb, b3, i3, k3)
		}
		ranks[j] = uint8(i0 - size)
		ranks[j+1] = uint8(i1 - size)
		ranks[j+2] = uint8(i2 - size)
		ranks[j+3] = uint8(i3 - size)
	}
	for ; j < len(ranks); j++ {
		v := row[j]
		if v != v {
			anyNaN = true
		}
		k := rawKey(v)
		bias := uintptr(j) << levels
		i := uintptr(1)
		for s := uint(0); s < levels; s++ {
			i = rankStep(tb, bias, i, k)
		}
		ranks[j] = uint8(i - size)
	}
	return anyNaN
}

// step advances one chain a level without a data-dependent branch: the
// sign of (splitRank − rank) — one subtract and an arithmetic shift on
// values already in registers — selects the right-child offset or the
// adjacent left child. The left/right decision is the one genuinely
// unpredictable branch in tree inference — every row flips it
// near-randomly per node — so computing it arithmetically trades a
// ~15-cycle misprediction for a few single-cycle ops and, crucially,
// stops mispredictions from flushing the other interleaved chains'
// in-flight loads. At a self-absorbing leaf (splitRank -1, below every
// rank) it returns off unchanged.
func step(n flatNode, off uintptr, ranks *[maxFlatCols]uint8) uintptr {
	b := int64(ranks[(n>>32)&(maxFlatCols-1)]) // masked index: provably in bounds
	sr := int64(n) >> 48
	mask := uintptr((sr - b) >> 63) // all ones iff rank > splitRank → go right
	left := off + flatStride
	right := uintptr(uint32(n))
	return left ^ ((left ^ right) & mask)
}

// allLeaves tests whether every chain is parked: leaf words carry bit 63
// (splitRank -1), so the AND of the words keeps it only when all do.
// (Walking a fixed max-depth iteration count instead — dropping the test
// — measured ~25% slower: typical max path depth across the chains is
// well below the global max, and the early exit reclaims those levels.)
func allLeaves(and uint64) bool { return int64(and) < 0 }

// walkOne routes one row (as ranks) down one tree; the odd-tree tail of
// the pairwise walks.
func (p *program) walkOne(off uintptr, ranks *[maxFlatCols]uint8) float64 {
	base := p.arena()
	for {
		n := nodeAt(base, off)
		if allLeaves(n) {
			return p.leafVal[off/flatStride]
		}
		off = step(n, off, ranks)
	}
}

// walkPair routes one row down two trees in lockstep; the odd-row tail
// of the 4×2 batch walk.
func (p *program) walkPair(o0, o1 uintptr, ranks *[maxFlatCols]uint8) (float64, float64) {
	base := p.arena()
	for {
		n0 := nodeAt(base, o0)
		n1 := nodeAt(base, o1)
		if allLeaves(n0 & n1) {
			break
		}
		o0 = step(n0, o0, ranks)
		o1 = step(n1, o1, ranks)
	}
	return p.leafVal[o0/flatStride], p.leafVal[o1/flatStride]
}

// walk2x2 routes two rows down the same two trees in lockstep: the
// even-pair tail of the 4×2 batch walk.
func (p *program) walk2x2(o0, o1 uintptr, ra, rb *[maxFlatCols]uint8) (a0, a1, b0, b1 float64) {
	base := p.arena()
	xa0, xa1, xb0, xb1 := o0, o1, o0, o1
	for {
		na0 := nodeAt(base, xa0)
		na1 := nodeAt(base, xa1)
		nb0 := nodeAt(base, xb0)
		nb1 := nodeAt(base, xb1)
		if allLeaves(na0 & na1 & nb0 & nb1) {
			break // all four chains parked on leaves
		}
		xa0 = step(na0, xa0, ra)
		xa1 = step(na1, xa1, ra)
		xb0 = step(nb0, xb0, rb)
		xb1 = step(nb1, xb1, rb)
	}
	return p.leafVal[xa0/flatStride], p.leafVal[xa1/flatStride],
		p.leafVal[xb0/flatStride], p.leafVal[xb1/flatStride]
}

// walk4x2 routes four rows down the same two trees in lockstep: eight
// independent chains of one 8-byte load plus a handful of single-cycle
// ops each. A chain's next load depends on its own previous step —
// latency that cannot be shortened — so throughput comes from
// overlapping many such chains per iteration; eight named chains are
// the most that fit x86-64's register file before spill traffic eats
// the win (wider array-based lockstep blocks measured ~2× slower).
// Chains that reach their leaf park there (self-absorbing step) while
// the others finish, so the only branch in the loop is the all-done
// test, on words the steps need anyway. Routing per tree is exactly the
// single-chain walk's, so results are bit-identical.
func (p *program) walk4x2(o0, o1 uintptr, ra, rb, rc, rd *[maxFlatCols]uint8) (a0, a1, b0, b1, c0, c1, d0, d1 float64) {
	base := p.arena()
	xa0, xa1 := o0, o1
	xb0, xb1 := o0, o1
	xc0, xc1 := o0, o1
	xd0, xd1 := o0, o1
	for {
		na0 := nodeAt(base, xa0)
		na1 := nodeAt(base, xa1)
		nb0 := nodeAt(base, xb0)
		nb1 := nodeAt(base, xb1)
		nc0 := nodeAt(base, xc0)
		nc1 := nodeAt(base, xc1)
		nd0 := nodeAt(base, xd0)
		nd1 := nodeAt(base, xd1)
		if allLeaves(na0 & na1 & nb0 & nb1 & nc0 & nc1 & nd0 & nd1) {
			break // all eight chains parked on leaves
		}
		xa0 = step(na0, xa0, ra)
		xa1 = step(na1, xa1, ra)
		xb0 = step(nb0, xb0, rb)
		xb1 = step(nb1, xb1, rb)
		xc0 = step(nc0, xc0, rc)
		xc1 = step(nc1, xc1, rc)
		xd0 = step(nd0, xd0, rd)
		xd1 = step(nd1, xd1, rd)
	}
	return p.leafVal[xa0/flatStride], p.leafVal[xa1/flatStride],
		p.leafVal[xb0/flatStride], p.leafVal[xb1/flatStride],
		p.leafVal[xc0/flatStride], p.leafVal[xc1/flatStride],
		p.leafVal[xd0/flatStride], p.leafVal[xd1/flatStride]
}

// rootOff converts a tree's root index to its arena byte offset.
func (p *program) rootOff(t int) uintptr { return uintptr(p.roots[t]) * flatStride }

// refMarginRow is the reference inference sum for one row — used for
// rows with missing values, where default-direction routing lives in
// the reference trees.
func (p *program) refMarginRow(row []float64) float64 {
	z := p.base
	for t := range p.trees {
		z += p.trees[t].predict(row)
	}
	return z
}

// marginRow returns the raw margin (log-odds) of one row: base plus
// every tree's leaf in tree order — the reference summation order.
func (p *program) marginRow(row []float64) float64 {
	var ranks [maxFlatCols]uint8
	if p.fillRanks(ranks[:p.cols], row[:p.cols]) {
		return p.refMarginRow(row)
	}
	z := p.base
	t := 0
	for ; t+2 <= len(p.roots); t += 2 {
		v0, v1 := p.walkPair(p.rootOff(t), p.rootOff(t+1), &ranks)
		z += v0
		z += v1
	}
	if t < len(p.roots) {
		z += p.walkOne(p.rootOff(t), &ranks)
	}
	return z
}

// tileRows is the batch blocking factor: this many rows' rank vectors
// (2 KB total) are transformed at once, then the tree loop runs OUTER
// in pairs with row quads INNER, so each two-tree slab of the arena
// (~8 KB at depth 8) is walked by the whole tile while L1-hot instead
// of the full arena streaming through cache per row.
const tileRows = 64

// marginInto writes each row's raw margin into out (len(out) == len(x)),
// allocating nothing: all tile state lives on the stack.
//
// Each row still accumulates base + tree0 + tree1 + … in exactly the
// reference order — tree pairs ascend, the two adds within a pair
// ascend, a trailing odd tree comes last — so margins are bit-identical
// to the per-row walk at any batch size.
func (p *program) marginInto(x [][]float64, out []float64) {
	var ranks [tileRows][maxFlatCols]uint8
	var clean [tileRows]int32
	nTrees := len(p.roots)
	for lo := 0; lo < len(x); lo += tileRows {
		n := len(x) - lo
		if n > tileRows {
			n = tileRows
		}
		// Transform the tile's rows once; rows with missing values drop
		// out of the lockstep walks and take the reference path below.
		nc, nanRows := 0, 0
		for r := 0; r < n; r++ {
			if p.fillRanks(ranks[r][:p.cols], x[lo+r][:p.cols]) {
				nanRows++
			} else {
				clean[nc] = int32(r)
				nc++
			}
			out[lo+r] = p.base
		}
		t := 0
		for ; t+2 <= nTrees; t += 2 {
			r0, r1 := p.rootOff(t), p.rootOff(t+1)
			c := 0
			for ; c+4 <= nc; c += 4 {
				ra, rb := clean[c], clean[c+1]
				rc, rd := clean[c+2], clean[c+3]
				a0, a1, b0, b1, c0, c1, d0, d1 := p.walk4x2(r0, r1,
					&ranks[ra], &ranks[rb], &ranks[rc], &ranks[rd])
				za := out[lo+int(ra)]
				za += a0
				za += a1
				out[lo+int(ra)] = za
				zb := out[lo+int(rb)]
				zb += b0
				zb += b1
				out[lo+int(rb)] = zb
				zc := out[lo+int(rc)]
				zc += c0
				zc += c1
				out[lo+int(rc)] = zc
				zd := out[lo+int(rd)]
				zd += d0
				zd += d1
				out[lo+int(rd)] = zd
			}
			if c+2 <= nc {
				ra, rb := clean[c], clean[c+1]
				a0, a1, b0, b1 := p.walk2x2(r0, r1, &ranks[ra], &ranks[rb])
				za := out[lo+int(ra)]
				za += a0
				za += a1
				out[lo+int(ra)] = za
				zb := out[lo+int(rb)]
				zb += b0
				zb += b1
				out[lo+int(rb)] = zb
				c += 2
			}
			if c < nc {
				ra := clean[c]
				a0, a1 := p.walkPair(r0, r1, &ranks[ra])
				za := out[lo+int(ra)]
				za += a0
				za += a1
				out[lo+int(ra)] = za
			}
		}
		if t < nTrees {
			root := p.rootOff(t)
			for c := 0; c < nc; c++ {
				out[lo+int(clean[c])] += p.walkOne(root, &ranks[clean[c]])
			}
		}
		if nanRows > 0 {
			// Rare once the pipeline's imputer has run; clean rows already
			// hold their final margin.
			for r, c := 0, 0; r < n; r++ {
				if c < nc && int(clean[c]) == r {
					c++
					continue
				}
				out[lo+r] = p.refMarginRow(x[lo+r])
			}
		}
	}
}

// labelMargin converts a raw margin to the 0/1 label that
// sigmoid(z) >= 0.5 produces. Mathematically that's just z >= 0, and the
// sign decides directly outside a ±1e-9 band; inside it, math.Exp's
// rounding can legitimately land sigmoid exactly on 0.5 for slightly
// negative z (exp(tiny) rounds to 1.0), so the band — crossed almost
// never — recomputes the actual sigmoid to stay bit-compatible with the
// reference scoring path.
func labelMargin(z float64) int {
	if z > 1e-9 {
		return 1
	}
	if z < -1e-9 {
		return 0
	}
	if sigmoid(z) >= 0.5 {
		return 1
	}
	return 0
}

// predictInto writes 0/1 labels at the 0.5 probability threshold,
// allocating nothing, skipping the sigmoid on the label-only path.
func (p *program) predictInto(x [][]float64, out []int) {
	var margins [tileRows]float64
	for lo := 0; lo < len(x); lo += tileRows {
		n := len(x) - lo
		if n > tileRows {
			n = tileRows
		}
		p.marginInto(x[lo:lo+n], margins[:n])
		for r := 0; r < n; r++ {
			out[lo+r] = labelMargin(margins[r])
		}
	}
}

// scoreInto writes sigmoid probabilities, allocating nothing.
func (p *program) scoreInto(x [][]float64, out []float64) {
	p.marginInto(x, out)
	for i, z := range out {
		out[i] = sigmoid(z)
	}
}

// MarginInto writes each row's raw margin (log-odds) into out, which must
// have len(x) slots, sharded over the model's worker pool. Allocation-free
// with Workers == 1; bit-identical at any worker count.
func (m *Model) MarginInto(x [][]float64, out []float64) {
	if p := m.prog; p != nil {
		workers := gate(par.Workers(m.opts.Workers), len(x)*(1+len(m.trees)))
		if workers <= 1 {
			p.marginInto(x, out)
			return
		}
		par.ForChunks(workers, len(x), func(_, lo, hi int) {
			p.marginInto(x[lo:hi], out[lo:hi])
		})
		return
	}
	for i := range x {
		z := m.base
		for t := range m.trees {
			z += m.trees[t].predict(x[i])
		}
		out[i] = z
	}
}
