package xgb

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Property tests for the binning layer: quantileEdges must produce a
// valid strictly-increasing edge list of bounded size for any column —
// constant, NaN-heavy, duplicate-ridden — and binValue's SearchFloat64s
// assignment must round-trip against the edges it was given.

func randomColumn(rng *rand.Rand, n int) []float64 {
	col := make([]float64, n)
	mode := rng.Intn(4)
	for i := range col {
		switch mode {
		case 0: // continuous
			col[i] = rng.NormFloat64() * 100
		case 1: // heavy duplicates (port-like categorical)
			col[i] = float64(rng.Intn(5))
		case 2: // NaN-heavy
			if rng.Float64() < 0.7 {
				col[i] = math.NaN()
			} else {
				col[i] = rng.Float64()
			}
		case 3: // constant
			col[i] = 42
		}
	}
	return col
}

func TestQuantileEdgesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(500)
		bins := 2 + rng.Intn(253)
		col := randomColumn(rng, n)

		vals := make([]float64, 0, n)
		for _, v := range col {
			if !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		sort.Float64s(vals)
		e := quantileEdges(vals, bins)

		// Property: at most bins-1 edges.
		if len(e) > bins-1 {
			t.Fatalf("trial %d: %d edges for %d bins", trial, len(e), bins)
		}
		// Property: strictly increasing.
		for i := 1; i < len(e); i++ {
			if !(e[i] > e[i-1]) {
				t.Fatalf("trial %d: edges not strictly increasing at %d: %v", trial, i, e)
			}
		}
		// Property: every edge is a value from the column, below its max
		// (an edge at the max would leave the right bin empty).
		for _, edge := range e {
			i := sort.SearchFloat64s(vals, edge)
			if i >= len(vals) || vals[i] != edge {
				t.Fatalf("trial %d: edge %v not a column value", trial, edge)
			}
			if edge >= vals[len(vals)-1] {
				t.Fatalf("trial %d: edge %v at or above max %v", trial, edge, vals[len(vals)-1])
			}
		}
		// Property: empty and constant columns produce no edges.
		if len(vals) == 0 && e != nil {
			t.Fatalf("trial %d: edges %v from empty column", trial, e)
		}
		if len(vals) > 0 && vals[0] == vals[len(vals)-1] && len(e) != 0 {
			t.Fatalf("trial %d: edges %v from constant column", trial, e)
		}

		// Round-trip: binValue's bin brackets v between its neighboring
		// edges — bin 0 means v <= e[0] territory's open left end, bin
		// len(e) means v beyond the last edge — and NaN maps to the
		// dedicated miss bin, never a real one.
		miss := uint8(len(e) + 1)
		for _, v := range col {
			bin := binValue(e, v, miss)
			if math.IsNaN(v) {
				if bin != miss {
					t.Fatalf("trial %d: NaN in bin %d, want miss %d", trial, bin, miss)
				}
				continue
			}
			b := int(bin)
			if b > len(e) {
				t.Fatalf("trial %d: value %v in bin %d beyond edge count %d", trial, v, b, len(e))
			}
			if b > 0 && !(e[b-1] < v) {
				t.Fatalf("trial %d: value %v in bin %d but edge[%d]=%v not below it",
					trial, v, b, b-1, e[b-1])
			}
			if b < len(e) && !(v <= e[b]) {
				t.Fatalf("trial %d: value %v in bin %d but above edge[%d]=%v",
					trial, v, b, b, e[b])
			}
		}
	}
}

// TestBinRoutingMatchesThreshold pins the equivalence the bin-space
// margin update and the in-place partition both rely on: routing by
// bin index (bin <= splitBin) is identical to routing by raw threshold
// (v <= edges[splitBin]), because bins are (lo, hi] ranges whose upper
// ends are exactly the edges.
func TestBinRoutingMatchesThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		col := randomColumn(rng, 300)
		vals := make([]float64, 0, len(col))
		for _, v := range col {
			if !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		sort.Float64s(vals)
		e := quantileEdges(vals, 2+rng.Intn(62))
		if len(e) == 0 {
			continue
		}
		miss := uint8(len(e) + 1)
		splitBin := rng.Intn(len(e))
		thresh := e[splitBin]
		for _, v := range col {
			if math.IsNaN(v) {
				continue
			}
			byBin := int(binValue(e, v, miss)) <= splitBin
			byThresh := v <= thresh
			if byBin != byThresh {
				t.Fatalf("trial %d: value %v splitBin %d thresh %v: bin-routing %v != thresh-routing %v",
					trial, v, splitBin, thresh, byBin, byThresh)
			}
		}
	}
}
