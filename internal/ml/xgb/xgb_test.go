package xgb

import (
	"math"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/ml/mltest"
)

func TestFitBlobs(t *testing.T) {
	x, y := mltest.Blobs(1, 400, 5, 3)
	m := New(Options{Estimators: 10, MaxDepth: 4, LearningRate: 0.3, Lambda: 1, Bins: 32})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(y, m.Predict(x)); acc < 0.98 {
		t.Errorf("train accuracy on separable blobs = %.3f", acc)
	}
	xt, yt := mltest.Blobs(2, 200, 5, 3)
	if acc := mltest.Accuracy(yt, m.Predict(xt)); acc < 0.95 {
		t.Errorf("test accuracy = %.3f", acc)
	}
}

func TestFitXOR(t *testing.T) {
	x, y := mltest.XOR(3, 800)
	m := New(Options{Estimators: 30, MaxDepth: 4, LearningRate: 0.3, Lambda: 1, Bins: 32})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := mltest.XOR(4, 400)
	if acc := mltest.Accuracy(yt, m.Predict(xt)); acc < 0.95 {
		t.Errorf("XOR accuracy = %.3f (trees must capture the interaction)", acc)
	}
}

func TestFitRing(t *testing.T) {
	x, y := mltest.Ring(5, 1500)
	m := New(DefaultOptions())
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := mltest.Ring(6, 500)
	if acc := mltest.Accuracy(yt, m.Predict(xt)); acc < 0.9 {
		t.Errorf("ring accuracy = %.3f", acc)
	}
}

func TestEmptyTrainingSet(t *testing.T) {
	m := New(DefaultOptions())
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("want error on empty training set")
	}
}

func TestSingleClass(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	y := []int{1, 1, 1}
	m := New(Options{Estimators: 3, MaxDepth: 2})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Predict(x) {
		if p != 1 {
			t.Error("single-class training must predict that class")
		}
	}
}

func TestMissingValues(t *testing.T) {
	nan := math.NaN()
	// Feature 0 separates; some rows have it missing and feature 1 decides.
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		x = append(x, []float64{float64(i % 2), 0})
		y = append(y, i%2)
	}
	for i := 0; i < 100; i++ {
		x = append(x, []float64{nan, 1})
		y = append(y, 1)
	}
	m := New(Options{Estimators: 10, MaxDepth: 3, Bins: 8})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(y, m.Predict(x)); acc < 0.95 {
		t.Errorf("accuracy with NaNs = %.3f", acc)
	}
	// Prediction on unseen NaN rows must not panic.
	_ = m.Predict([][]float64{{nan, nan}})
}

func TestGainImportance(t *testing.T) {
	// Feature 2 fully determines the label; 0 and 1 are noise.
	x, y := mltest.Blobs(7, 300, 1, 4)
	wide := make([][]float64, len(x))
	for i := range x {
		wide[i] = []float64{float64(i % 7), float64(i % 3), x[i][0]}
	}
	m := New(Options{Estimators: 8, MaxDepth: 3, Bins: 16})
	if err := m.Fit(wide, y); err != nil {
		t.Fatal(err)
	}
	imp := m.GainImportance()
	if len(imp) != 3 {
		t.Fatalf("importance len = %d", len(imp))
	}
	if imp[2] <= imp[0] || imp[2] <= imp[1] {
		t.Errorf("informative feature gain %v not dominant over noise %v/%v", imp[2], imp[0], imp[1])
	}
}

func TestDeterminism(t *testing.T) {
	x, y := mltest.Blobs(11, 200, 4, 2)
	m1, m2 := New(DefaultOptions()), New(DefaultOptions())
	if err := m1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, _ := mltest.Blobs(12, 100, 4, 2)
	p1, p2 := m1.Predict(xt), m2.Predict(xt)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("XGB training is not deterministic")
		}
	}
	if m1.NumTrees() != len(p1)/len(p1)*m1.opts.Estimators {
		t.Logf("trees = %d", m1.NumTrees())
	}
}

func TestScoreMonotoneWithMargin(t *testing.T) {
	x, y := mltest.Blobs(13, 300, 2, 4)
	m := New(Options{Estimators: 10, MaxDepth: 3, Bins: 32})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Scores are probabilities.
	for _, row := range x[:50] {
		s := m.Score(row)
		if s < 0 || s > 1 {
			t.Fatalf("score %v outside [0,1]", s)
		}
	}
	// A point deep in class-1 territory scores higher than deep class-0.
	hi := m.Score([]float64{4, 4})
	lo := m.Score([]float64{0, 0})
	if hi <= lo {
		t.Errorf("score(class1 center)=%v <= score(class0 center)=%v", hi, lo)
	}
}

func TestQuantileEdges(t *testing.T) {
	e := quantileEdges([]float64{1, 1, 1, 2, 2, 3, 4, 5, 6, 7}, 4)
	for i := 1; i < len(e); i++ {
		if e[i] <= e[i-1] {
			t.Fatalf("edges not strictly increasing: %v", e)
		}
	}
	if len(quantileEdges(nil, 4)) != 0 {
		t.Error("empty input must give no edges")
	}
	// Constant feature: no edges, never split.
	if len(quantileEdges([]float64{5, 5, 5, 5}, 8)) != 0 {
		t.Error("constant feature must give no edges")
	}
}

func BenchmarkFit(b *testing.B) {
	x, y := mltest.Blobs(1, 2000, 20, 2)
	opts := Options{Estimators: 24, MaxDepth: 8, LearningRate: 0.3, Lambda: 1, Bins: 64}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(opts)
		if err := m.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	x, y := mltest.Blobs(1, 2000, 20, 2)
	m := New(DefaultOptions())
	if err := m.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(x[i%len(x)])
	}
}
