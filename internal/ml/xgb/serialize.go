package xgb

import (
	"encoding/json"
	"fmt"
	"io"
)

// Serialization of fitted models: the JSON schema carries the full tree
// ensemble, base score and gain importances, so a trained XGB model can be
// shipped between vantage points (§6.4 model transfer) or persisted across
// daemon restarts.

type nodeJSON struct {
	Feature int     `json:"f"`
	Thresh  float64 `json:"t,omitempty"`
	Left    int     `json:"l,omitempty"`
	Right   int     `json:"r,omitempty"`
	Leaf    float64 `json:"v,omitempty"`
	DefLeft bool    `json:"d,omitempty"`
}

type modelJSON struct {
	Options Options      `json:"options"`
	Base    float64      `json:"base"`
	Cols    int          `json:"cols"`
	Gain    []float64    `json:"gain"`
	Trees   [][]nodeJSON `json:"trees"`
}

// Save writes the fitted model as JSON.
func (m *Model) Save(w io.Writer) error {
	out := modelJSON{
		Options: m.opts,
		Base:    m.base,
		Cols:    m.cols,
		Gain:    m.gain,
		Trees:   make([][]nodeJSON, len(m.trees)),
	}
	for i, t := range m.trees {
		nodes := make([]nodeJSON, len(t.nodes))
		for j, n := range t.nodes {
			nodes[j] = nodeJSON{
				Feature: n.feature, Thresh: n.thresh,
				Left: n.left, Right: n.right,
				Leaf: n.leaf, DefLeft: n.defLeft,
			}
		}
		out.Trees[i] = nodes
	}
	if err := json.NewEncoder(w).Encode(&out); err != nil {
		return fmt.Errorf("xgb: saving model: %w", err)
	}
	return nil
}

// Load reads a model saved with Save.
func Load(r io.Reader) (*Model, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("xgb: loading model: %w", err)
	}
	m := New(in.Options)
	m.base = in.Base
	m.cols = in.Cols
	m.gain = in.Gain
	m.trees = make([]tree, len(in.Trees))
	var parents []int // per-node parent count, reused across trees
	for i, nodes := range in.Trees {
		t := tree{nodes: make([]node, len(nodes))}
		if cap(parents) < len(nodes) {
			parents = make([]int, len(nodes))
		}
		parents = parents[:len(nodes)]
		clear(parents)
		for j, n := range nodes {
			if n.Feature >= 0 {
				if n.Feature >= in.Cols {
					return nil, fmt.Errorf("xgb: tree %d node %d: feature %d out of range %d", i, j, n.Feature, in.Cols)
				}
				if n.Left <= j || n.Right <= j || n.Left >= len(nodes) || n.Right >= len(nodes) {
					return nil, fmt.Errorf("xgb: tree %d node %d: invalid child links %d/%d", i, j, n.Left, n.Right)
				}
				parents[n.Left]++
				parents[n.Right]++
			}
			t.nodes[j] = node{
				feature: n.Feature, thresh: n.Thresh,
				left: n.Left, right: n.Right,
				leaf: n.Leaf, defLeft: n.DefLeft,
			}
		}
		if len(t.nodes) == 0 {
			return nil, fmt.Errorf("xgb: tree %d is empty", i)
		}
		// Proper trees only: a node with two parents would make the node
		// graph a DAG, which Fit never produces and which would let the
		// flat-program compiler duplicate subtrees without bound.
		if parents[0] != 0 {
			return nil, fmt.Errorf("xgb: tree %d: root has a parent", i)
		}
		for j := 1; j < len(nodes); j++ {
			if parents[j] > 1 {
				return nil, fmt.Errorf("xgb: tree %d node %d: %d parents", i, j, parents[j])
			}
		}
		m.trees[i] = t
	}
	m.prog = compile(m)
	return m, nil
}
