package xgb

// This file preserves the pre-fast-path trainer verbatim (per-node []int
// row lists, row-major bin matrix, fixed-stride histograms, per-row
// margin tree walks) as the executable reference the rewritten trainer is
// pinned to: with FastHist off, Fit must reproduce the reference model
// bit-for-bit — same serialized bytes, same scores, same gain vector —
// at every worker count. The benchmarks here are the BENCH_PR8.json
// fit/predict speedup pairs.

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/ml/mltest"
	"github.com/ixp-scrubber/ixpscrubber/internal/par"
)

// refHisto is the old fixed-stride histogram layout.
type refHisto struct {
	g, h []float64
	n    []int
}

func newRefHisto(cols, bins int) *refHisto {
	return &refHisto{
		g: make([]float64, cols*bins),
		h: make([]float64, cols*bins),
		n: make([]int, cols*bins),
	}
}

func (hg *refHisto) resetRange(lo, hi int) {
	g := hg.g[lo*256 : hi*256]
	h := hg.h[lo*256 : hi*256]
	n := hg.n[lo*256 : hi*256]
	for i := range g {
		g[i] = 0
		h[i] = 0
		n[i] = 0
	}
}

type refBuildItem struct {
	nodeIdx int
	rows    []int
	depth   int
	gSum    float64
	hSum    float64
}

type refTreeBuilder struct {
	m       *Model
	cols    int
	workers int
	hg      *refHisto
	missG   []float64
	missH   []float64
}

func newRefTreeBuilder(m *Model, cols, workers int) *refTreeBuilder {
	return &refTreeBuilder{
		m:       m,
		cols:    cols,
		workers: workers,
		hg:      newRefHisto(cols, 256),
		missG:   make([]float64, cols),
		missH:   make([]float64, cols),
	}
}

// referenceFit is the pre-PR Model.Fit, byte-for-byte in its arithmetic.
// The fitted model carries no compiled program, so Score/Predict on it
// exercise the reference node walker.
func referenceFit(m *Model, x [][]float64, y []int) error {
	if len(x) == 0 {
		return fmt.Errorf("xgb: empty training set")
	}
	rows, cols := len(x), len(x[0])
	m.cols = cols
	m.gain = make([]float64, cols)
	m.trees = m.trees[:0]
	m.prog = nil
	workers := par.Workers(m.opts.Workers)

	pos := 0
	for _, v := range y {
		if v == 1 {
			pos++
		}
	}
	p := (float64(pos) + 1) / (float64(rows) + 2)
	m.base = math.Log(p / (1 - p))

	bins := m.opts.Bins
	if bins > 254 {
		bins = 254
	}
	edges := make([][]float64, cols)
	binIdx := make([]uint8, rows*cols)
	par.ForChunks(gate(workers, rows*cols), cols, func(_, lo, hi int) {
		vals := make([]float64, 0, rows)
		for j := lo; j < hi; j++ {
			vals = vals[:0]
			for i := 0; i < rows; i++ {
				if !math.IsNaN(x[i][j]) {
					vals = append(vals, x[i][j])
				}
			}
			sort.Float64s(vals)
			e := quantileEdges(vals, bins)
			edges[j] = e
			for i := 0; i < rows; i++ {
				v := x[i][j]
				if math.IsNaN(v) {
					binIdx[i*cols+j] = 255
					continue
				}
				binIdx[i*cols+j] = uint8(sort.SearchFloat64s(e, v))
			}
		}
	})

	margin := make([]float64, rows)
	for i := range margin {
		margin[i] = m.base
	}
	grad := make([]float64, rows)
	hess := make([]float64, rows)

	b := newRefTreeBuilder(m, cols, workers)
	for t := 0; t < m.opts.Estimators; t++ {
		par.ForChunks(gate(workers, rows), rows, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				pi := sigmoid(margin[i])
				grad[i] = pi - float64(y[i])
				hess[i] = pi * (1 - pi)
				if hess[i] < 1e-16 {
					hess[i] = 1e-16
				}
			}
		})
		tr := b.build(x, binIdx, edges, grad, hess)
		m.trees = append(m.trees, tr)
		par.ForChunks(gate(workers, rows), rows, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				margin[i] += tr.predict(x[i])
			}
		})
	}
	return nil
}

func (b *refTreeBuilder) build(x [][]float64, binIdx []uint8, edges [][]float64, grad, hess []float64) tree {
	m, cols := b.m, b.cols
	rows := len(x)
	all := make([]int, rows)
	var g0, h0 float64
	for i := 0; i < rows; i++ {
		all[i] = i
		g0 += grad[i]
		h0 += hess[i]
	}
	tr := tree{nodes: []node{{feature: -1}}}
	queue := []refBuildItem{{nodeIdx: 0, rows: all, depth: 0, gSum: g0, hSum: h0}}
	lambda := m.opts.Lambda

	for len(queue) > 0 {
		it := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		leafWeight := -it.gSum / (it.hSum + lambda) * m.opts.LearningRate
		if it.depth >= m.opts.MaxDepth || len(it.rows) < 2 {
			tr.nodes[it.nodeIdx] = node{feature: -1, leaf: leafWeight}
			continue
		}

		nodeWorkers := gate(b.workers, len(it.rows)*cols)
		if nodeWorkers > cols {
			nodeWorkers = cols
		}
		cands := make([]splitCand, nodeWorkers)
		parentScore := it.gSum * it.gSum / (it.hSum + lambda)
		par.ForChunks(nodeWorkers, cols, func(w, lo, hi int) {
			b.hg.resetRange(lo, hi)
			hg := b.hg
			missG := b.missG[lo:hi:hi]
			missH := b.missH[lo:hi:hi]
			for i := range missG {
				missG[i] = 0
				missH[i] = 0
			}
			for _, r := range it.rows {
				base := r * cols
				for j := lo; j < hi; j++ {
					bin := binIdx[base+j]
					if bin == 255 {
						missG[j-lo] += grad[r]
						missH[j-lo] += hess[r]
						continue
					}
					k := j*256 + int(bin)
					hg.g[k] += grad[r]
					hg.h[k] += hess[r]
					hg.n[k]++
				}
			}

			best := splitCand{gain: m.opts.Gamma, feat: -1, bin: -1}
			for j := lo; j < hi; j++ {
				nb := len(edges[j]) + 1
				var gl, hl float64
				for bin := 0; bin < nb-1; bin++ {
					k := j*256 + bin
					gl += hg.g[k]
					hl += hg.h[k]
					for _, missLeft := range [2]bool{false, true} {
						gL, hL := gl, hl
						if missLeft {
							gL += missG[j-lo]
							hL += missH[j-lo]
						}
						gR := it.gSum - gL
						hR := it.hSum - hL
						if hL < m.opts.MinChildWeight || hR < m.opts.MinChildWeight {
							continue
						}
						gain := 0.5 * (gL*gL/(hL+lambda) + gR*gR/(hR+lambda) - parentScore)
						if gain > best.gain {
							best = splitCand{gain: gain, feat: j, bin: bin, missLeft: missLeft}
						}
					}
				}
			}
			cands[w] = best
		})

		best := splitCand{gain: m.opts.Gamma, feat: -1, bin: -1}
		for _, c := range cands {
			if c.feat >= 0 && c.gain > best.gain {
				best = c
			}
		}
		if best.feat < 0 {
			tr.nodes[it.nodeIdx] = node{feature: -1, leaf: leafWeight}
			continue
		}
		m.gain[best.feat] += best.gain

		thresh := edges[best.feat][best.bin]
		var leftRows, rightRows []int
		var gL, hL float64
		for _, r := range it.rows {
			bin := binIdx[r*cols+best.feat]
			goLeft := false
			if bin == 255 {
				goLeft = best.missLeft
			} else {
				goLeft = int(bin) <= best.bin
			}
			if goLeft {
				leftRows = append(leftRows, r)
				gL += grad[r]
				hL += hess[r]
			} else {
				rightRows = append(rightRows, r)
			}
		}
		if len(leftRows) == 0 || len(rightRows) == 0 {
			tr.nodes[it.nodeIdx] = node{feature: -1, leaf: leafWeight}
			continue
		}
		li := len(tr.nodes)
		tr.nodes = append(tr.nodes, node{feature: -1}, node{feature: -1})
		tr.nodes[it.nodeIdx] = node{
			feature: best.feat,
			thresh:  thresh,
			left:    li,
			right:   li + 1,
			defLeft: best.missLeft,
		}
		queue = append(queue,
			refBuildItem{nodeIdx: li, rows: leftRows, depth: it.depth + 1, gSum: gL, hSum: hL},
			refBuildItem{nodeIdx: li + 1, rows: rightRows, depth: it.depth + 1, gSum: it.gSum - gL, hSum: it.hSum - hL},
		)
	}
	return tr
}

// punchNaNs blanks a deterministic subset of cells so the missing-value
// routing (dedicated miss bin, default directions) is exercised.
func punchNaNs(x [][]float64, seed int64, frac float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range x {
		for j := range x[i] {
			if rng.Float64() < frac {
				x[i][j] = math.NaN()
			}
		}
	}
}

// TestFitBitIdenticalToReference is THE acceptance pin for the rewritten
// trainer: with FastHist off, the fast Fit must reproduce the preserved
// pre-PR trainer bit-for-bit — serialized bytes, scores, labels, and gain
// importances — across seeds, NaN-punched data, and worker counts.
func TestFitBitIdenticalToReference(t *testing.T) {
	for _, seed := range []uint64{7, 41, 1337} {
		for _, nanFrac := range []float64{0, 0.15} {
			x, y := mltest.Blobs(seed, 900, 12, 2)
			punchNaNs(x, int64(seed+1), nanFrac)
			opts := Options{Estimators: 12, MaxDepth: 6, LearningRate: 0.3,
				Lambda: 1, MinChildWeight: 1, Bins: 32, Workers: 1}

			ref := New(opts)
			if err := referenceFit(ref, x, y); err != nil {
				t.Fatal(err)
			}
			var refBytes bytes.Buffer
			if err := ref.Save(&refBytes); err != nil {
				t.Fatal(err)
			}

			for _, workers := range []int{1, 2, 8} {
				o := opts
				o.Workers = workers
				m := New(o)
				if err := m.Fit(x, y); err != nil {
					t.Fatal(err)
				}
				var got bytes.Buffer
				if err := m.Save(&got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(refBytes.Bytes(), got.Bytes()) {
					t.Fatalf("seed %d nan %.2f workers %d: serialized model differs from reference",
						seed, nanFrac, workers)
				}
				rg, fg := ref.GainImportance(), m.GainImportance()
				for j := range rg {
					if math.Float64bits(rg[j]) != math.Float64bits(fg[j]) {
						t.Fatalf("seed %d workers %d: gain[%d] %v != reference %v",
							seed, workers, j, fg[j], rg[j])
					}
				}
				for i := range x {
					rs, fs := ref.Score(x[i]), m.Score(x[i])
					if math.Float64bits(rs) != math.Float64bits(fs) {
						t.Fatalf("seed %d workers %d row %d: score %v != reference %v",
							seed, workers, i, fs, rs)
					}
				}
			}
		}
	}
}

func benchFitData(b *testing.B) ([][]float64, []int) {
	b.Helper()
	return mltest.Blobs(1, 4000, 24, 2)
}

// BenchmarkFitReference is the preserved pre-PR trainer at default
// options; BenchmarkFitFast and BenchmarkFitFastHist are the rewrite's
// exact and histogram-subtraction modes on identical data. Their ratio is
// BENCH_PR8.json's fit speedup gate (>= 1.5x).
func BenchmarkFitReference(b *testing.B) {
	x, y := benchFitData(b)
	opts := DefaultOptions()
	opts.MaxDepth = 8
	opts.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := referenceFit(New(opts), x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitFast(b *testing.B) {
	x, y := benchFitData(b)
	opts := DefaultOptions()
	opts.MaxDepth = 8
	opts.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := New(opts).Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitFastHist(b *testing.B) {
	x, y := benchFitData(b)
	opts := DefaultOptions()
	opts.MaxDepth = 8
	opts.Workers = 1
	opts.FastHist = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := New(opts).Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPredictModel fits an ensemble at production scale — 300 trees of
// depth 8, the size class of a production tabular classifier like the
// paper's per-minute scorer — on a hypersphere problem hard enough that
// boosting keeps the trees full-depth (blob-style data converges into
// stumps and measures nothing). At this size the reference walker's
// ~48-byte struct nodes (several MB of arena) fall out of L2 and its
// serial load→compare→branch chain pays the miss latency per visit,
// which is exactly the regime the flat program's 8-byte packed nodes
// and interleaved lockstep chains are built for.
//
// The fit is shared across both predict benchmarks through a sync.Once
// cache: training 300 trees takes seconds, and paying it twice would
// dominate the CI bench smoke at -benchtime 1x.
var benchPredictCache struct {
	once sync.Once
	m    *Model
	xs   [][]float64
	err  error
}

func benchPredictModel(b *testing.B) (*Model, [][]float64) {
	b.Helper()
	c := &benchPredictCache
	c.once.Do(func() {
		x, y := mltest.Hypersphere(2, 16000, 24)
		opts := Options{Estimators: 300, MaxDepth: 8, LearningRate: 0.3,
			Lambda: 1, MinChildWeight: 1, Bins: 64, Workers: 1}
		c.m = New(opts)
		c.err = c.m.Fit(x, y)
		c.xs, _ = mltest.Hypersphere(3, 20000, 24)
	})
	if c.err != nil {
		b.Fatal(c.err)
	}
	return c.m, c.xs
}

// BenchmarkBatchPredictReference scores per row through the node walker
// (the pre-PR inference path); BenchmarkBatchPredictFlat runs the
// compiled flat program's zero-allocation batch walk. Their ratio is
// BENCH_PR8.json's predict speedup gate (>= 3x).
func BenchmarkBatchPredictReference(b *testing.B) {
	m, xs := benchPredictModel(b)
	out := make([]int, len(xs))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for r := range xs {
			z := m.base
			for t := range m.trees {
				z += m.trees[t].predict(xs[r])
			}
			if sigmoid(z) >= 0.5 {
				out[r] = 1
			} else {
				out[r] = 0
			}
		}
	}
}

func BenchmarkBatchPredictFlat(b *testing.B) {
	m, xs := benchPredictModel(b)
	out := make([]int, len(xs))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.PredictInto(xs, out)
	}
}
