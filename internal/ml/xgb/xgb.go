// Package xgb implements gradient-boosted decision trees with second-order
// (Newton) boosting on the logistic loss — the XGBoost algorithm of Chen &
// Guestrin (2016) as used for the paper's best-performing model. Split
// finding is histogram-based: features are bucketed into quantile bins once
// per Fit, and each tree node scans per-bin gradient statistics, giving
// training cost O(rows·cols + nodes·cols·bins).
//
// Training and scoring are feature-/row-parallel on a bounded worker pool
// (internal/par) with deterministic ordered reductions: every worker owns a
// contiguous feature or row range, per-cell accumulation order matches the
// serial loop, and split candidates merge in ascending feature order — so
// tree structure and scores are bit-for-bit identical at every worker
// count, including the Workers == 1 serial fallback.
//
// The implementation exposes per-feature total gain, the importance measure
// plotted in Figure 10.
package xgb

import (
	"fmt"
	"math"
	"sort"

	"github.com/ixp-scrubber/ixpscrubber/internal/par"
)

// Options are the XGBoost hyperparameters exercised by the Appendix C grid.
type Options struct {
	// Estimators is the number of boosted trees (paper selects 24).
	Estimators int
	// MaxDepth bounds tree depth (paper selects 24; the histogram builder
	// stops earlier when nodes become pure).
	MaxDepth int
	// LearningRate is the shrinkage applied to every leaf (paper: 0.3).
	LearningRate float64
	// Lambda is the L2 regularization on leaf weights.
	Lambda float64
	// Gamma is the minimum gain required to split.
	Gamma float64
	// MinChildWeight is the minimum hessian sum per child.
	MinChildWeight float64
	// Bins is the number of histogram bins per feature.
	Bins int
	// Workers bounds the worker pool for Fit and Predict: 0 sizes from
	// GOMAXPROCS, 1 forces the serial path. Results are identical at every
	// value; the knob is an execution parameter, so it is not serialized
	// with fitted models.
	Workers int `json:"-"`
}

// DefaultOptions mirrors the paper's selected operating point with
// practical defaults for the remaining knobs.
func DefaultOptions() Options {
	return Options{
		Estimators:     24,
		MaxDepth:       24,
		LearningRate:   0.3,
		Lambda:         1.0,
		Gamma:          0.0,
		MinChildWeight: 1.0,
		Bins:           64,
	}
}

type node struct {
	feature int     // split feature, -1 for leaf
	thresh  float64 // go left if value <= thresh (bins are (lo, hi] ranges)
	left    int
	right   int
	leaf    float64
	defLeft bool // direction for missing (NaN) values
}

type tree struct {
	nodes []node
}

func (t *tree) predict(row []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.leaf
		}
		v := row[n.feature]
		if math.IsNaN(v) {
			if n.defLeft {
				i = n.left
			} else {
				i = n.right
			}
			continue
		}
		if v <= n.thresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Model is a fitted gradient-boosted tree ensemble.
type Model struct {
	opts  Options
	trees []tree
	base  float64 // base score (log-odds of the positive class)
	gain  []float64
	cols  int
}

// New returns an unfitted model.
func New(opts Options) *Model {
	if opts.Estimators <= 0 {
		opts.Estimators = 24
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 6
	}
	if opts.LearningRate <= 0 {
		opts.LearningRate = 0.3
	}
	if opts.Bins <= 1 {
		opts.Bins = 64
	}
	if opts.Lambda < 0 {
		opts.Lambda = 1
	}
	if opts.MinChildWeight <= 0 {
		opts.MinChildWeight = 1
	}
	return &Model{opts: opts}
}

// minParallelWork is the work floor (inner-loop iterations) below which a
// parallel region is not worth its goroutine fan-out and runs serially.
// Purely a scheduling decision: outputs are identical either way.
const minParallelWork = 4096

// gate returns the worker count for a region with `work` inner iterations.
func gate(workers, work int) int {
	if work < minParallelWork {
		return 1
	}
	return workers
}

// histogram layout: one (gradSum, hessSum, count) triple per (feature, bin).
type histo struct {
	g, h []float64
	n    []int
}

func newHisto(cols, bins int) *histo {
	return &histo{
		g: make([]float64, cols*bins),
		h: make([]float64, cols*bins),
		n: make([]int, cols*bins),
	}
}

// resetRange clears the cells of features [lo, hi) — each histogram worker
// clears exactly the range it will accumulate.
func (hg *histo) resetRange(lo, hi int) {
	g := hg.g[lo*256 : hi*256]
	h := hg.h[lo*256 : hi*256]
	n := hg.n[lo*256 : hi*256]
	for i := range g {
		g[i] = 0
		h[i] = 0
		n[i] = 0
	}
}

// Fit trains the ensemble.
func (m *Model) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return fmt.Errorf("xgb: empty training set")
	}
	rows, cols := len(x), len(x[0])
	m.cols = cols
	m.gain = make([]float64, cols)
	m.trees = m.trees[:0]
	workers := par.Workers(m.opts.Workers)

	// Base score: log odds of the training positive rate.
	pos := 0
	for _, v := range y {
		if v == 1 {
			pos++
		}
	}
	p := (float64(pos) + 1) / (float64(rows) + 2)
	m.base = math.Log(p / (1 - p))

	// Quantile binning per feature, feature-parallel: every worker owns a
	// contiguous column range with a reusable sort buffer. binIdx[i*cols+j]
	// = bin of x[i][j]; bins index 0..Bins-1, missing = 255.
	bins := m.opts.Bins
	if bins > 254 {
		bins = 254
	}
	edges := make([][]float64, cols)
	binIdx := make([]uint8, rows*cols)
	par.ForChunks(gate(workers, rows*cols), cols, func(_, lo, hi int) {
		vals := make([]float64, 0, rows)
		for j := lo; j < hi; j++ {
			vals = vals[:0]
			for i := 0; i < rows; i++ {
				if !math.IsNaN(x[i][j]) {
					vals = append(vals, x[i][j])
				}
			}
			sort.Float64s(vals)
			e := quantileEdges(vals, bins)
			edges[j] = e
			for i := 0; i < rows; i++ {
				v := x[i][j]
				if math.IsNaN(v) {
					binIdx[i*cols+j] = 255
					continue
				}
				binIdx[i*cols+j] = uint8(sort.SearchFloat64s(e, v))
			}
		}
	})

	margin := make([]float64, rows)
	for i := range margin {
		margin[i] = m.base
	}
	grad := make([]float64, rows)
	hess := make([]float64, rows)

	b := newTreeBuilder(m, cols, workers)
	for t := 0; t < m.opts.Estimators; t++ {
		// Row-parallel gradient/hessian refresh: each row's statistics are
		// independent, so sharding rows is trivially deterministic.
		par.ForChunks(gate(workers, rows), rows, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				pi := sigmoid(margin[i])
				grad[i] = pi - float64(y[i])
				hess[i] = pi * (1 - pi)
				if hess[i] < 1e-16 {
					hess[i] = 1e-16
				}
			}
		})
		tr := b.build(x, binIdx, edges, grad, hess)
		m.trees = append(m.trees, tr)
		par.ForChunks(gate(workers, rows), rows, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				margin[i] += tr.predict(x[i])
			}
		})
	}
	return nil
}

// quantileEdges returns ascending bin edges splitting sorted vals into at
// most `bins` buckets; duplicates collapse.
func quantileEdges(sorted []float64, bins int) []float64 {
	if len(sorted) == 0 {
		return nil
	}
	var edges []float64
	maxVal := sorted[len(sorted)-1]
	for b := 1; b < bins; b++ {
		v := sorted[len(sorted)*b/bins]
		if v >= maxVal {
			break // an edge at the maximum leaves the right bin empty
		}
		if len(edges) == 0 || v > edges[len(edges)-1] {
			edges = append(edges, v)
		}
	}
	return edges
}

type buildItem struct {
	nodeIdx int
	rows    []int
	depth   int
	gSum    float64
	hSum    float64
}

// splitCand is one worker's best split over its feature range.
type splitCand struct {
	gain     float64
	feat     int
	bin      int
	missLeft bool
}

// treeBuilder carries the per-tree scratch state reused across boosting
// rounds: the shared histogram (feature ranges are disjoint across workers)
// and the per-feature missing-value sums.
type treeBuilder struct {
	m       *Model
	cols    int
	workers int
	hg      *histo
	missG   []float64
	missH   []float64
}

func newTreeBuilder(m *Model, cols, workers int) *treeBuilder {
	return &treeBuilder{
		m:       m,
		cols:    cols,
		workers: workers,
		hg:      newHisto(cols, 256),
		missG:   make([]float64, cols),
		missH:   make([]float64, cols),
	}
}

func (b *treeBuilder) build(x [][]float64, binIdx []uint8, edges [][]float64, grad, hess []float64) tree {
	m, cols := b.m, b.cols
	rows := len(x)
	all := make([]int, rows)
	var g0, h0 float64
	for i := 0; i < rows; i++ {
		all[i] = i
		g0 += grad[i]
		h0 += hess[i]
	}
	tr := tree{nodes: []node{{feature: -1}}}
	queue := []buildItem{{nodeIdx: 0, rows: all, depth: 0, gSum: g0, hSum: h0}}
	lambda := m.opts.Lambda

	for len(queue) > 0 {
		it := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		leafWeight := -it.gSum / (it.hSum + lambda) * m.opts.LearningRate
		if it.depth >= m.opts.MaxDepth || len(it.rows) < 2 {
			tr.nodes[it.nodeIdx] = node{feature: -1, leaf: leafWeight}
			continue
		}

		// Histogram build + split scan for this node, feature-parallel:
		// every worker owns a contiguous feature range, so each
		// (feature, bin) cell is accumulated by exactly one worker in row
		// order — the same floating-point sum as the serial loop. Each
		// worker then scans only the histograms it built and reports its
		// best candidate; candidates merge below in ascending feature order,
		// reproducing the serial scan's first-strictly-greater tie-breaking.
		nodeWorkers := gate(b.workers, len(it.rows)*cols)
		if nodeWorkers > cols {
			nodeWorkers = cols
		}
		cands := make([]splitCand, nodeWorkers)
		parentScore := it.gSum * it.gSum / (it.hSum + lambda)
		par.ForChunks(nodeWorkers, cols, func(w, lo, hi int) {
			b.hg.resetRange(lo, hi)
			hg := b.hg
			missG := b.missG[lo:hi:hi]
			missH := b.missH[lo:hi:hi]
			for i := range missG {
				missG[i] = 0
				missH[i] = 0
			}
			for _, r := range it.rows {
				base := r * cols
				for j := lo; j < hi; j++ {
					bin := binIdx[base+j]
					if bin == 255 {
						missG[j-lo] += grad[r]
						missH[j-lo] += hess[r]
						continue
					}
					k := j*256 + int(bin)
					hg.g[k] += grad[r]
					hg.h[k] += hess[r]
					hg.n[k]++
				}
			}

			best := splitCand{gain: m.opts.Gamma, feat: -1, bin: -1}
			for j := lo; j < hi; j++ {
				nb := len(edges[j]) + 1
				var gl, hl float64
				for bin := 0; bin < nb-1; bin++ {
					k := j*256 + bin
					gl += hg.g[k]
					hl += hg.h[k]
					// Try missing values going right (default) and left.
					for _, missLeft := range [2]bool{false, true} {
						gL, hL := gl, hl
						if missLeft {
							gL += missG[j-lo]
							hL += missH[j-lo]
						}
						gR := it.gSum - gL
						hR := it.hSum - hL
						if hL < m.opts.MinChildWeight || hR < m.opts.MinChildWeight {
							continue
						}
						gain := 0.5 * (gL*gL/(hL+lambda) + gR*gR/(hR+lambda) - parentScore)
						if gain > best.gain {
							best = splitCand{gain: gain, feat: j, bin: bin, missLeft: missLeft}
						}
					}
				}
			}
			cands[w] = best
		})

		// Ordered reduction: chunk w covers lower features than chunk w+1,
		// and within a chunk the serial tie-break already applied, so taking
		// the first strictly-greater candidate equals the serial scan.
		best := splitCand{gain: m.opts.Gamma, feat: -1, bin: -1}
		for _, c := range cands {
			if c.feat >= 0 && c.gain > best.gain {
				best = c
			}
		}
		if best.feat < 0 {
			tr.nodes[it.nodeIdx] = node{feature: -1, leaf: leafWeight}
			continue
		}
		m.gain[best.feat] += best.gain

		thresh := edges[best.feat][best.bin]
		var leftRows, rightRows []int
		var gL, hL float64
		for _, r := range it.rows {
			bin := binIdx[r*cols+best.feat]
			goLeft := false
			if bin == 255 {
				goLeft = best.missLeft
			} else {
				goLeft = int(bin) <= best.bin
			}
			if goLeft {
				leftRows = append(leftRows, r)
				gL += grad[r]
				hL += hess[r]
			} else {
				rightRows = append(rightRows, r)
			}
		}
		if len(leftRows) == 0 || len(rightRows) == 0 {
			tr.nodes[it.nodeIdx] = node{feature: -1, leaf: leafWeight}
			continue
		}
		li := len(tr.nodes)
		tr.nodes = append(tr.nodes, node{feature: -1}, node{feature: -1})
		tr.nodes[it.nodeIdx] = node{
			feature: best.feat,
			thresh:  thresh,
			left:    li,
			right:   li + 1,
			defLeft: best.missLeft,
		}
		queue = append(queue,
			buildItem{nodeIdx: li, rows: leftRows, depth: it.depth + 1, gSum: gL, hSum: hL},
			buildItem{nodeIdx: li + 1, rows: rightRows, depth: it.depth + 1, gSum: it.gSum - gL, hSum: it.hSum - hL},
		)
	}
	return tr
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Score returns the predicted probability of the positive class.
func (m *Model) Score(row []float64) float64 {
	z := m.base
	for i := range m.trees {
		z += m.trees[i].predict(row)
	}
	return sigmoid(z)
}

// Predict labels rows at the 0.5 probability threshold. Rows are scored in
// parallel shards; every output slot depends only on its own row, so the
// result is identical at any worker count.
func (m *Model) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	par.ForChunks(gate(par.Workers(m.opts.Workers), len(x)*(1+len(m.trees))), len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if m.Score(x[i]) >= 0.5 {
				out[i] = 1
			}
		}
	})
	return out
}

// GainImportance returns the total split gain attributed to each feature
// column across all trees (Figure 10's "average gain" up to normalization).
func (m *Model) GainImportance() []float64 {
	return append([]float64(nil), m.gain...)
}

// NumTrees returns the number of fitted trees.
func (m *Model) NumTrees() int { return len(m.trees) }
