// Package xgb implements gradient-boosted decision trees with second-order
// (Newton) boosting on the logistic loss — the XGBoost algorithm of Chen &
// Guestrin (2016) as used for the paper's best-performing model. Split
// finding is histogram-based: features are bucketed into quantile bins once
// per Fit, and each tree node scans per-bin gradient statistics, giving
// training cost O(rows·cols + nodes·cols·bins).
//
// The trainer follows the layout tricks of modern GBDT engines: the bin
// matrix is column-major so each feature's histogram accumulates from one
// contiguous byte column; histograms are compact (per-feature bin counts,
// not a fixed stride) with gradient and hessian interleaved so one cell is
// one cache line touch; node membership is an in-place stable partition of
// a single reusable row-index buffer, so growing a tree allocates nothing
// per node; and boosting-round margin updates walk no trees at all — every
// row's leaf is already known from the partition, so the update is a scatter
// over leaf segments. All of that is bit-for-bit identical to the textbook
// formulation. Optionally (Options.FastHist) each split builds only the
// smaller child's histogram and derives the sibling as parent − child;
// subtraction reorders float summation, so it is off by default and treated
// like a sketch mode: exact-mode output is pinned to the reference, and
// FastHist mode is pinned to identical tree structure within quality ε.
//
// Inference compiles the fitted ensemble into a flat SoA program (depth-
// first node arena, implicit left child, leaf values inline) with
// zero-allocation batch entry points; see flat.go. The compiled program is
// pinned bit-for-bit to the reference node-walk (tree.predict).
//
// Training and scoring are feature-/row-parallel on a bounded worker pool
// (internal/par) with deterministic ordered reductions: every worker owns a
// contiguous feature or row range, per-cell accumulation order matches the
// serial loop, and split candidates merge in ascending feature order — so
// tree structure and scores are bit-for-bit identical at every worker
// count, including the Workers == 1 serial fallback, in both histogram
// modes.
//
// The implementation exposes per-feature total gain, the importance measure
// plotted in Figure 10.
package xgb

import (
	"fmt"
	"math"
	"sort"

	"github.com/ixp-scrubber/ixpscrubber/internal/par"
)

// Options are the XGBoost hyperparameters exercised by the Appendix C grid.
type Options struct {
	// Estimators is the number of boosted trees (paper selects 24).
	Estimators int
	// MaxDepth bounds tree depth (paper selects 24; the histogram builder
	// stops earlier when nodes become pure).
	MaxDepth int
	// LearningRate is the shrinkage applied to every leaf (paper: 0.3).
	LearningRate float64
	// Lambda is the L2 regularization on leaf weights.
	Lambda float64
	// Gamma is the minimum gain required to split.
	Gamma float64
	// MinChildWeight is the minimum hessian sum per child.
	MinChildWeight float64
	// Bins is the number of histogram bins per feature.
	Bins int
	// FastHist enables histogram subtraction: each split builds only the
	// smaller child's histogram from rows and derives the sibling as
	// parent − child, roughly halving histogram work on balanced trees.
	// Subtraction reorders floating-point summation, so fitted models are
	// not bit-identical to the exact mode — tree structure matches and
	// quality stays within ε (see the equivalence tests) — which is why it
	// is opt-in. Both modes are bit-for-bit deterministic at every worker
	// count.
	FastHist bool `json:"fast_hist,omitempty"`
	// Workers bounds the worker pool for Fit and Predict: 0 sizes from
	// GOMAXPROCS, 1 forces the serial path. Results are identical at every
	// value; the knob is an execution parameter, so it is not serialized
	// with fitted models.
	Workers int `json:"-"`
}

// DefaultOptions mirrors the paper's selected operating point with
// practical defaults for the remaining knobs.
func DefaultOptions() Options {
	return Options{
		Estimators:     24,
		MaxDepth:       24,
		LearningRate:   0.3,
		Lambda:         1.0,
		Gamma:          0.0,
		MinChildWeight: 1.0,
		Bins:           64,
	}
}

type node struct {
	feature int     // split feature, -1 for leaf
	thresh  float64 // go left if value <= thresh (bins are (lo, hi] ranges)
	left    int
	right   int
	leaf    float64
	defLeft bool // direction for missing (NaN) values
}

type tree struct {
	nodes []node
}

// predict is the reference node-walk over raw feature values. It is the
// semantic ground truth the compiled flat program (flat.go) is pinned to
// bit-for-bit, and the fallback for models without a compiled program.
func (t *tree) predict(row []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.leaf
		}
		v := row[n.feature]
		if math.IsNaN(v) {
			if n.defLeft {
				i = n.left
			} else {
				i = n.right
			}
			continue
		}
		if v <= n.thresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Model is a fitted gradient-boosted tree ensemble.
type Model struct {
	opts  Options
	trees []tree
	base  float64 // base score (log-odds of the positive class)
	gain  []float64
	cols  int
	// prog is the compiled flat inference program, rebuilt after every Fit
	// and Load. It is derived state — never serialized — and bit-identical
	// to walking trees via tree.predict.
	prog *program
}

// New returns an unfitted model.
func New(opts Options) *Model {
	if opts.Estimators <= 0 {
		opts.Estimators = 24
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 6
	}
	if opts.LearningRate <= 0 {
		opts.LearningRate = 0.3
	}
	if opts.Bins <= 1 {
		opts.Bins = 64
	}
	if opts.Lambda < 0 {
		opts.Lambda = 1
	}
	if opts.MinChildWeight <= 0 {
		opts.MinChildWeight = 1
	}
	return &Model{opts: opts}
}

// minParallelWork is the work floor (inner-loop iterations) below which a
// parallel region is not worth its goroutine fan-out and runs serially.
// Purely a scheduling decision: outputs are identical either way.
const minParallelWork = 4096

// gate returns the worker count for a region with `work` inner iterations.
func gate(workers, work int) int {
	if work < minParallelWork {
		return 1
	}
	return workers
}

// Fit trains the ensemble.
func (m *Model) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return fmt.Errorf("xgb: empty training set")
	}
	rows, cols := len(x), len(x[0])
	m.cols = cols
	m.gain = make([]float64, cols)
	m.trees = m.trees[:0]
	m.prog = nil
	workers := par.Workers(m.opts.Workers)

	// Base score: log odds of the training positive rate.
	pos := 0
	for _, v := range y {
		if v == 1 {
			pos++
		}
	}
	p := (float64(pos) + 1) / (float64(rows) + 2)
	m.base = math.Log(p / (1 - p))

	// Quantile binning per feature, feature-parallel: every worker owns a
	// contiguous column range with a reusable sort buffer. The bin matrix is
	// column-major — binIdx[j*rows+i] = bin of x[i][j] — so histogram
	// accumulation for feature j streams one contiguous byte column. Bins
	// index 0..nb-1 where nb = len(edges[j])+1; missing (NaN) values get the
	// dedicated trailing bin nb, so the accumulation loop needs no missing
	// branch and histogram subtraction carries the missing sums for free.
	bins := m.opts.Bins
	if bins > 254 {
		bins = 254
	}
	edges := make([][]float64, cols)
	binIdx := make([]uint8, cols*rows)
	par.ForChunks(gate(workers, rows*cols), cols, func(_, lo, hi int) {
		vals := make([]float64, 0, rows)
		for j := lo; j < hi; j++ {
			vals = vals[:0]
			for i := 0; i < rows; i++ {
				if !math.IsNaN(x[i][j]) {
					vals = append(vals, x[i][j])
				}
			}
			sort.Float64s(vals)
			e := quantileEdges(vals, bins)
			edges[j] = e
			miss := uint8(len(e) + 1)
			col := binIdx[j*rows : (j+1)*rows]
			for i := 0; i < rows; i++ {
				col[i] = binValue(e, x[i][j], miss)
			}
		}
	})

	margin := make([]float64, rows)
	for i := range margin {
		margin[i] = m.base
	}
	// Gradient and hessian interleave into one array — the histogram loop
	// reads both per row, so pairing them halves its cache-line fetches.
	gh := make([]float64, 2*rows)

	b := newTreeBuilder(m, rows, cols, workers, edges)
	for t := 0; t < m.opts.Estimators; t++ {
		// Row-parallel gradient/hessian refresh: each row's statistics are
		// independent, so sharding rows is trivially deterministic.
		par.ForChunks(gate(workers, rows), rows, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				pi := sigmoid(margin[i])
				g := pi - float64(y[i])
				h := pi * (1 - pi)
				if h < 1e-16 {
					h = 1e-16
				}
				gh[2*i] = g
				gh[2*i+1] = h
			}
		})
		tr := b.build(binIdx, gh)
		m.trees = append(m.trees, tr)
		// Margin update in bin space: the partition already routed every row
		// to its leaf (split thresholds are bin edges, so bin routing equals
		// threshold routing exactly), so the update is a scatter over the
		// tree's leaf segments — no tree walk, each row updated once.
		b.applyLeaves(margin)
	}
	m.prog = compile(m)
	return nil
}

// binValue maps v to its bin under ascending edges e: the SearchFloat64s
// bucket for real values, the dedicated trailing miss bin for NaN.
func binValue(e []float64, v float64, miss uint8) uint8 {
	if math.IsNaN(v) {
		return miss
	}
	return uint8(sort.SearchFloat64s(e, v))
}

// quantileEdges returns ascending bin edges splitting sorted vals into at
// most `bins` buckets; duplicates collapse.
func quantileEdges(sorted []float64, bins int) []float64 {
	if len(sorted) == 0 {
		return nil
	}
	var edges []float64
	maxVal := sorted[len(sorted)-1]
	for b := 1; b < bins; b++ {
		v := sorted[len(sorted)*b/bins]
		if v >= maxVal {
			break // an edge at the maximum leaves the right bin empty
		}
		if len(edges) == 0 || v > edges[len(edges)-1] {
			edges = append(edges, v)
		}
	}
	return edges
}

// buildItem is one pending node on the builder's explicit stack. Its row
// set is the rowIdx segment [lo, hi); in FastHist mode it carries the
// node's pre-built histogram.
type buildItem struct {
	nodeIdx int
	lo, hi  int32
	depth   int
	gSum    float64
	hSum    float64
	hist    []float64
}

// leafSeg records a finalized leaf's rowIdx segment for the bin-space
// margin update. Segments of distinct leaves never overlap, and a
// finalized segment is never re-partitioned, so the scatter is race-free
// at any worker count.
type leafSeg struct {
	lo, hi int32
	val    float64
}

// splitCand is one worker's best split over its feature range.
type splitCand struct {
	gain     float64
	feat     int
	bin      int
	missLeft bool
}

// treeBuilder carries the scratch state reused across boosting rounds:
// the row-index permutation and its partition staging buffer, the compact
// shared histogram (feature cell ranges are disjoint across workers), the
// FastHist histogram pool, and the per-tree leaf segments.
type treeBuilder struct {
	m       *Model
	rows    int
	cols    int
	workers int
	edges   [][]float64
	// featOff[j] is the first histogram cell of feature j; feature j owns
	// len(edges[j])+2 cells (its bins plus the trailing missing-value
	// cell). One cell is an interleaved (grad, hess) float pair.
	featOff []int32
	nCells  int
	hist    []float64 // shared per-node histogram (exact mode)
	rowIdx  []int32   // one reusable permutation of all rows
	scratch []int32   // right-child staging for the stable partition
	cands   []splitCand
	stack   []buildItem
	leaves  []leafSeg
	pool    [][]float64 // FastHist histogram free list (O(depth) live)
}

func newTreeBuilder(m *Model, rows, cols, workers int, edges [][]float64) *treeBuilder {
	off := make([]int32, cols+1)
	for j := 0; j < cols; j++ {
		off[j+1] = off[j] + int32(len(edges[j])+2)
	}
	b := &treeBuilder{
		m:       m,
		rows:    rows,
		cols:    cols,
		workers: workers,
		edges:   edges,
		featOff: off,
		nCells:  int(off[cols]),
		rowIdx:  make([]int32, rows),
		scratch: make([]int32, rows),
		cands:   make([]splitCand, workers),
	}
	if !m.opts.FastHist {
		b.hist = make([]float64, 2*b.nCells)
	}
	return b
}

// grabHist takes a zeroed histogram from the FastHist pool.
func (b *treeBuilder) grabHist() []float64 {
	if n := len(b.pool); n > 0 {
		h := b.pool[n-1]
		b.pool = b.pool[:n-1]
		return h
	}
	return make([]float64, 2*b.nCells)
}

// releaseHist returns a histogram to the pool once its node is finalized.
func (b *treeBuilder) releaseHist(h []float64) {
	if h != nil {
		b.pool = append(b.pool, h)
	}
}

// zeroRange clears the cells of features [lo, hi).
func (b *treeBuilder) zeroRange(hist []float64, lo, hi int) {
	clear(hist[2*b.featOff[lo] : 2*b.featOff[hi]])
}

// accumRange accumulates the gradient/hessian histogram of features
// [lo, hi) over the rows of seg, in seg order — the same per-cell float
// summation order as the serial loop, whatever the chunking.
func (b *treeBuilder) accumRange(hist []float64, binIdx []uint8, gh []float64, seg []int32, lo, hi int) {
	rows := b.rows
	for j := lo; j < hi; j++ {
		col := binIdx[j*rows : (j+1)*rows]
		cells := hist[2*b.featOff[j] : 2*b.featOff[j+1]]
		for _, r := range seg {
			k := 2 * int(col[r])
			cells[k] += gh[2*r]
			cells[k+1] += gh[2*r+1]
		}
	}
}

// buildHist fills hist with the histogram of seg, feature-parallel.
func (b *treeBuilder) buildHist(hist []float64, binIdx []uint8, gh []float64, seg []int32) {
	w := gate(b.workers, len(seg)*b.cols)
	if w > b.cols {
		w = b.cols
	}
	par.ForChunks(w, b.cols, func(_, lo, hi int) {
		b.zeroRange(hist, lo, hi)
		b.accumRange(hist, binIdx, gh, seg, lo, hi)
	})
}

// scanRange scans the histograms of features [lo, hi) for the best split,
// reproducing the serial scan's first-strictly-greater tie-breaking.
func (b *treeBuilder) scanRange(hist []float64, gSum, hSum, parentScore float64, lo, hi int) splitCand {
	m := b.m
	lambda := m.opts.Lambda
	best := splitCand{gain: m.opts.Gamma, feat: -1, bin: -1}
	for j := lo; j < hi; j++ {
		off := int(b.featOff[j])
		nb := len(b.edges[j]) + 1
		missG := hist[2*(off+nb)]
		missH := hist[2*(off+nb)+1]
		var gl, hl float64
		for bin := 0; bin < nb-1; bin++ {
			k := 2 * (off + bin)
			gl += hist[k]
			hl += hist[k+1]
			// Try missing values going right (default) and left.
			for _, missLeft := range [2]bool{false, true} {
				gL, hL := gl, hl
				if missLeft {
					gL += missG
					hL += missH
				}
				gR := gSum - gL
				hR := hSum - hL
				if hL < m.opts.MinChildWeight || hR < m.opts.MinChildWeight {
					continue
				}
				gain := 0.5 * (gL*gL/(hL+lambda) + gR*gR/(hR+lambda) - parentScore)
				if gain > best.gain {
					best = splitCand{gain: gain, feat: j, bin: bin, missLeft: missLeft}
				}
			}
		}
	}
	return best
}

func (b *treeBuilder) setLeaf(tr *tree, it buildItem, weight float64) {
	tr.nodes[it.nodeIdx] = node{feature: -1, leaf: weight}
	b.leaves = append(b.leaves, leafSeg{lo: it.lo, hi: it.hi, val: weight})
	b.releaseHist(it.hist)
}

func (b *treeBuilder) build(binIdx []uint8, gh []float64) tree {
	m, cols, rows := b.m, b.cols, b.rows
	for i := range b.rowIdx {
		b.rowIdx[i] = int32(i)
	}
	var g0, h0 float64
	for i := 0; i < rows; i++ {
		g0 += gh[2*i]
		h0 += gh[2*i+1]
	}
	tr := tree{nodes: []node{{feature: -1}}}
	b.leaves = b.leaves[:0]
	root := buildItem{nodeIdx: 0, lo: 0, hi: int32(rows), depth: 0, gSum: g0, hSum: h0}
	if m.opts.FastHist {
		root.hist = b.grabHist()
		b.buildHist(root.hist, binIdx, gh, b.rowIdx)
	}
	stack := append(b.stack[:0], root)
	lambda := m.opts.Lambda

	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		leafWeight := -it.gSum / (it.hSum + lambda) * m.opts.LearningRate
		if it.depth >= m.opts.MaxDepth || it.hi-it.lo < 2 {
			b.setLeaf(&tr, it, leafWeight)
			continue
		}
		seg := b.rowIdx[it.lo:it.hi]

		// Histogram + split scan for this node, feature-parallel: every
		// worker owns a contiguous feature range, so each (feature, bin)
		// cell is accumulated by exactly one worker in row order — the same
		// floating-point sum as the serial loop. Each worker then scans only
		// the histograms it owns and reports its best candidate; candidates
		// merge below in ascending feature order, reproducing the serial
		// scan's first-strictly-greater tie-breaking. In FastHist mode the
		// node's histogram already exists (built at its parent's split), so
		// only the scan runs.
		nodeWorkers := gate(b.workers, len(seg)*cols)
		if nodeWorkers > cols {
			nodeWorkers = cols
		}
		hist := it.hist
		if hist == nil {
			hist = b.hist
		}
		cands := b.cands[:nodeWorkers]
		parentScore := it.gSum * it.gSum / (it.hSum + lambda)
		par.ForChunks(nodeWorkers, cols, func(w, lo, hi int) {
			if it.hist == nil {
				b.zeroRange(hist, lo, hi)
				b.accumRange(hist, binIdx, gh, seg, lo, hi)
			}
			cands[w] = b.scanRange(hist, it.gSum, it.hSum, parentScore, lo, hi)
		})

		// Ordered reduction: chunk w covers lower features than chunk w+1,
		// and within a chunk the serial tie-break already applied, so taking
		// the first strictly-greater candidate equals the serial scan.
		best := splitCand{gain: m.opts.Gamma, feat: -1, bin: -1}
		for _, c := range cands {
			if c.feat >= 0 && c.gain > best.gain {
				best = c
			}
		}
		if best.feat < 0 {
			b.setLeaf(&tr, it, leafWeight)
			continue
		}
		m.gain[best.feat] += best.gain

		// In-place stable partition of the node's rowIdx segment: left rows
		// compact forward in order, right rows stage in scratch and copy
		// back behind them — the same left/right sequences the reference's
		// per-node append lists produced, with zero allocations.
		thresh := b.edges[best.feat][best.bin]
		col := binIdx[best.feat*rows : (best.feat+1)*rows]
		miss := uint8(len(b.edges[best.feat]) + 1)
		var gL, hL float64
		w := it.lo
		nRight := 0
		for k := it.lo; k < it.hi; k++ {
			r := b.rowIdx[k]
			bin := col[r]
			goLeft := int(bin) <= best.bin
			if bin == miss {
				goLeft = best.missLeft
			}
			if goLeft {
				b.rowIdx[w] = r
				w++
				gL += gh[2*r]
				hL += gh[2*r+1]
			} else {
				b.scratch[nRight] = r
				nRight++
			}
		}
		copy(b.rowIdx[w:it.hi], b.scratch[:nRight])
		if w == it.lo || nRight == 0 {
			b.setLeaf(&tr, it, leafWeight)
			continue
		}

		li := len(tr.nodes)
		tr.nodes = append(tr.nodes, node{feature: -1}, node{feature: -1})
		tr.nodes[it.nodeIdx] = node{
			feature: best.feat,
			thresh:  thresh,
			left:    li,
			right:   li + 1,
			defLeft: best.missLeft,
		}
		left := buildItem{nodeIdx: li, lo: it.lo, hi: w, depth: it.depth + 1, gSum: gL, hSum: hL}
		right := buildItem{nodeIdx: li + 1, lo: w, hi: it.hi, depth: it.depth + 1, gSum: it.gSum - gL, hSum: it.hSum - hL}
		if it.hist != nil {
			// Histogram subtraction: build only the smaller child's
			// histogram from its rows; the sibling's is parent − child,
			// derived cell-wise into the parent's buffer. Both steps are
			// deterministic at any worker count (fixed row order per cell,
			// elementwise subtraction).
			small, large := &left, &right
			if int(it.hi)-int(w) < int(w)-int(it.lo) {
				small, large = &right, &left
			}
			small.hist = b.grabHist()
			b.buildHist(small.hist, binIdx, gh, b.rowIdx[small.lo:small.hi])
			large.hist = it.hist
			sh := small.hist
			par.ForChunks(gate(b.workers, b.nCells), 2*b.nCells, func(_, lo, hi int) {
				lh := large.hist[lo:hi]
				for i, v := range sh[lo:hi] {
					lh[i] -= v
				}
			})
		}
		stack = append(stack, left, right)
	}
	b.stack = stack[:0] // keep the grown backing array for the next tree
	return tr
}

// applyLeaves adds each leaf's weight to the margins of its rows. Leaf
// segments partition the row set, so every margin slot is written by
// exactly one leaf — deterministic at any worker count.
func (b *treeBuilder) applyLeaves(margin []float64) {
	par.ForChunks(gate(b.workers, b.rows), len(b.leaves), func(_, lo, hi int) {
		for _, lf := range b.leaves[lo:hi] {
			v := lf.val
			for _, r := range b.rowIdx[lf.lo:lf.hi] {
				margin[r] += v
			}
		}
	})
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Score returns the predicted probability of the positive class.
func (m *Model) Score(row []float64) float64 {
	if m.prog != nil {
		return sigmoid(m.prog.marginRow(row))
	}
	z := m.base
	for i := range m.trees {
		z += m.trees[i].predict(row)
	}
	return sigmoid(z)
}

// Predict labels rows at the 0.5 probability threshold. Rows are scored in
// parallel shards; every output slot depends only on its own row, so the
// result is identical at any worker count.
func (m *Model) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	m.PredictInto(x, out)
	return out
}

// PredictInto labels rows at the 0.5 probability threshold into out, which
// must have len(x) slots. The flat-program batch path allocates nothing;
// with Workers == 1 the whole call is allocation-free.
func (m *Model) PredictInto(x [][]float64, out []int) {
	workers := gate(par.Workers(m.opts.Workers), len(x)*(1+len(m.trees)))
	if p := m.prog; p != nil {
		if workers <= 1 {
			// Direct call: the closure below escapes and would cost one
			// allocation even on the serial fallback.
			p.predictInto(x, out)
			return
		}
		par.ForChunks(workers, len(x), func(_, lo, hi int) {
			p.predictInto(x[lo:hi], out[lo:hi])
		})
		return
	}
	par.ForChunks(workers, len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if m.Score(x[i]) >= 0.5 {
				out[i] = 1
			} else {
				out[i] = 0
			}
		}
	})
}

// ScoreInto writes the predicted positive-class probability of every row
// into out, which must have len(x) slots. Allocation-free with Workers == 1.
func (m *Model) ScoreInto(x [][]float64, out []float64) {
	workers := gate(par.Workers(m.opts.Workers), len(x)*(1+len(m.trees)))
	if p := m.prog; p != nil {
		if workers <= 1 {
			p.scoreInto(x, out)
			return
		}
		par.ForChunks(workers, len(x), func(_, lo, hi int) {
			p.scoreInto(x[lo:hi], out[lo:hi])
		})
		return
	}
	par.ForChunks(workers, len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.Score(x[i])
		}
	})
}

// GainImportance returns the total split gain attributed to each feature
// column across all trees (Figure 10's "average gain" up to normalization).
func (m *Model) GainImportance() []float64 {
	return append([]float64(nil), m.gain...)
}

// NumTrees returns the number of fitted trees.
func (m *Model) NumTrees() int { return len(m.trees) }
