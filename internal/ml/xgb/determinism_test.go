package xgb

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/ml/mltest"
)

// fitSerialized fits a model with the given worker count and returns the
// serialized form plus predictions and scores on a held-out set. The
// serialized form captures every tree node bit-for-bit, so comparing it
// across worker counts proves the parallel trainer walks the exact same
// split sequence as the serial one.
func fitSerialized(t *testing.T, seed uint64, workers int) ([]byte, []int, []uint64, []float64) {
	t.Helper()
	x, y := mltest.Blobs(seed, 600, 8, 2.2)
	opts := Options{Estimators: 16, MaxDepth: 5, LearningRate: 0.3, Lambda: 1, Bins: 64, Workers: workers}
	m := New(opts)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	xt, _ := mltest.Blobs(seed+100, 300, 8, 2.2)
	preds := m.Predict(xt)
	scores := make([]uint64, len(xt))
	for i := range xt {
		scores[i] = math.Float64bits(m.Score(xt[i]))
	}
	return buf.Bytes(), preds, scores, m.GainImportance()
}

// TestFitWorkersBitForBit proves the determinism contract of the parallel
// trainer: for every seed, the model fitted with 2 or 8 workers is
// byte-identical (serialized trees, predictions, raw score bits, gain
// importances) to the serial Workers=1 fit.
func TestFitWorkersBitForBit(t *testing.T) {
	for _, seed := range []uint64{31, 32, 33} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			refModel, refPreds, refScores, refGain := fitSerialized(t, seed, 1)
			for _, workers := range []int{2, 8} {
				model, preds, scores, gain := fitSerialized(t, seed, workers)
				if !bytes.Equal(model, refModel) {
					t.Fatalf("workers=%d: serialized model differs from serial fit", workers)
				}
				for i := range refPreds {
					if preds[i] != refPreds[i] {
						t.Fatalf("workers=%d: prediction %d differs: %d vs %d", workers, i, preds[i], refPreds[i])
					}
				}
				for i := range refScores {
					if scores[i] != refScores[i] {
						t.Fatalf("workers=%d: score bits differ at row %d", workers, i)
					}
				}
				for i := range refGain {
					if math.Float64bits(gain[i]) != math.Float64bits(refGain[i]) {
						t.Fatalf("workers=%d: gain importance %d differs: %v vs %v", workers, i, gain[i], refGain[i])
					}
				}
			}
		})
	}
}

// TestPredictWorkersBitForBit checks that the sharded Predict path returns
// exactly what the serial path returns on the same fitted model, including
// rows with missing values.
func TestPredictWorkersBitForBit(t *testing.T) {
	x, y := mltest.Blobs(41, 500, 6, 2.5)
	// Punch NaN holes so the missing-direction logic is on the scored path.
	for i := 0; i < len(x); i += 7 {
		x[i][i%6] = math.NaN()
	}
	serial := New(Options{Estimators: 12, MaxDepth: 4, Bins: 48, Workers: 1})
	if err := serial.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	ref := serial.Predict(x)
	for _, workers := range []int{2, 8} {
		m := New(Options{Estimators: 12, MaxDepth: 4, Bins: 48, Workers: workers})
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		got := m.Predict(x)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: Predict row %d = %d, serial = %d", workers, i, got[i], ref[i])
			}
		}
	}
}

// BenchmarkFitWorkers measures the histogram trainer at explicit pool
// sizes; compare the serial and parallel sub-benchmarks to read speedup.
func BenchmarkFitWorkers(b *testing.B) {
	x, y := mltest.Blobs(1, 4000, 24, 2)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := Options{Estimators: 24, MaxDepth: 8, LearningRate: 0.3, Lambda: 1, Bins: 64, Workers: workers}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := New(opts)
				if err := m.Fit(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredictWorkers measures batch prediction at explicit pool sizes.
func BenchmarkPredictWorkers(b *testing.B) {
	x, y := mltest.Blobs(1, 20000, 24, 2)
	m := New(Options{Estimators: 24, MaxDepth: 8, Bins: 64, Workers: 1})
	if err := m.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m.opts.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Predict(x)
			}
		})
	}
}
