package xgb

import (
	"bytes"
	"math"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/ml/mltest"
)

// FastHist gets the sketch-mode treatment: it is allowed to differ from
// exact mode only in the low bits of leaf values (histogram subtraction
// reorders float summation), so the tests pin tree *structure* exactly,
// bound the quality drift, and require bit-exact determinism across
// worker counts within the mode.

func fitOpts(fastHist bool, workers int) Options {
	return Options{Estimators: 12, MaxDepth: 6, LearningRate: 0.3,
		Lambda: 1, MinChildWeight: 1, Bins: 32,
		FastHist: fastHist, Workers: workers}
}

// TestFastHistTreeStructure: same splits (feature, threshold bits, child
// links, default directions) node-for-node as exact mode; leaf values
// within ε; training-set accuracy within ε.
//
// Structure identity holds wherever exact training has no two candidate
// splits whose gains are closer than subtraction's ulp-level noise; on a
// near-tie the argmax can legitimately flip (seed 1337 below exhibits
// one such node), so flip-prone seeds assert only the quality bound
// while tie-free seeds pin the full structure.
func TestFastHistTreeStructure(t *testing.T) {
	for _, tc := range []struct {
		seed         uint64
		pinStructure bool
	}{{7, true}, {41, true}, {1337, false}} {
		x, y := mltest.Blobs(tc.seed, 900, 12, 2)
		punchNaNs(x, int64(tc.seed+1), 0.1)

		exact := New(fitOpts(false, 1))
		if err := exact.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		fast := New(fitOpts(true, 1))
		if err := fast.Fit(x, y); err != nil {
			t.Fatal(err)
		}

		if tc.pinStructure {
			if len(exact.trees) != len(fast.trees) {
				t.Fatalf("seed %d: tree count %d != %d", tc.seed, len(fast.trees), len(exact.trees))
			}
			for ti := range exact.trees {
				en, fn := exact.trees[ti].nodes, fast.trees[ti].nodes
				if len(en) != len(fn) {
					t.Fatalf("seed %d tree %d: node count %d != %d", tc.seed, ti, len(fn), len(en))
				}
				for ni := range en {
					e, f := en[ni], fn[ni]
					if e.feature != f.feature || e.left != f.left || e.right != f.right ||
						e.defLeft != f.defLeft ||
						math.Float64bits(e.thresh) != math.Float64bits(f.thresh) {
						t.Fatalf("seed %d tree %d node %d: structure %+v != exact %+v",
							tc.seed, ti, ni, f, e)
					}
					if e.feature < 0 {
						if diff := math.Abs(e.leaf - f.leaf); diff > 1e-9 {
							t.Fatalf("seed %d tree %d node %d: leaf drift %g", tc.seed, ti, ni, diff)
						}
					}
				}
			}
		}

		accE := mltest.Accuracy(y, exact.Predict(x))
		accF := mltest.Accuracy(y, fast.Predict(x))
		if math.Abs(accE-accF) > 0.01 {
			t.Fatalf("seed %d: accuracy drift exact %.4f fast %.4f", tc.seed, accE, accF)
		}
	}
}

// TestFastHistDeterminism: FastHist mode is bit-for-bit deterministic at
// any worker count, just like exact mode.
func TestFastHistDeterminism(t *testing.T) {
	for _, seed := range []uint64{7, 1337} {
		x, y := mltest.Blobs(seed, 900, 12, 2)
		punchNaNs(x, int64(seed+1), 0.1)

		base := New(fitOpts(true, 1))
		if err := base.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := base.Save(&want); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			m := New(fitOpts(true, workers))
			if err := m.Fit(x, y); err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := m.Save(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Fatalf("seed %d: FastHist model at %d workers differs from 1 worker", seed, workers)
			}
		}
	}
}

// TestFastHistOptionsRoundTrip: fast_hist survives Save/Load, and an
// exact-mode model's serialized Options bytes carry no fast_hist key
// (omitempty), so pre-PR bundles and content-addressed registry ids are
// untouched.
func TestFastHistOptionsRoundTrip(t *testing.T) {
	x, y := mltest.Blobs(3, 300, 6, 2)
	m := New(fitOpts(true, 1))
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"fast_hist":true`)) {
		t.Fatalf("FastHist model serialization lacks fast_hist flag")
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.opts.FastHist {
		t.Fatalf("FastHist flag lost in round-trip")
	}

	var exact bytes.Buffer
	e := New(fitOpts(false, 1))
	if err := e.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := e.Save(&exact); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(exact.Bytes(), []byte("fast_hist")) {
		t.Fatalf("exact-mode serialization mentions fast_hist; pre-PR byte identity broken")
	}
}
