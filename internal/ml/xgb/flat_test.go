package xgb

import (
	"bytes"
	"math"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/ml/mltest"
)

// The compiled flat program is derived state pinned bit-for-bit to the
// reference node walker: same margins, same scores, same labels, for any
// model — freshly fitted or loaded from a bundle — at any worker count.

// refMargin is the reference inference sum: base + tree0 + tree1 + …
// through tree.predict.
func refMargin(m *Model, row []float64) float64 {
	z := m.base
	for i := range m.trees {
		z += m.trees[i].predict(row)
	}
	return z
}

func TestFlatMatchesNodeWalk(t *testing.T) {
	for _, seed := range []uint64{7, 41, 1337} {
		x, y := mltest.Blobs(seed, 900, 12, 2)
		punchNaNs(x, int64(seed+1), 0.15)
		m := New(fitOpts(false, 1))
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		if m.prog == nil {
			t.Fatal("Fit left no compiled program")
		}

		// Also score rows the model never saw, including all-NaN rows.
		xs, _ := mltest.Blobs(seed+9, 500, 12, 2)
		punchNaNs(xs, int64(seed+10), 0.3)
		for i := range xs[0] {
			xs[0][i] = math.NaN()
		}

		for _, workers := range []int{1, 2, 8} {
			m.opts.Workers = workers
			margins := make([]float64, len(xs))
			m.MarginInto(xs, margins)
			preds := make([]int, len(xs))
			m.PredictInto(xs, preds)
			scores := make([]float64, len(xs))
			m.ScoreInto(xs, scores)
			for i := range xs {
				want := refMargin(m, xs[i])
				if math.Float64bits(margins[i]) != math.Float64bits(want) {
					t.Fatalf("seed %d workers %d row %d: flat margin %v != walker %v",
						seed, workers, i, margins[i], want)
				}
				wantScore := sigmoid(want)
				if math.Float64bits(scores[i]) != math.Float64bits(wantScore) {
					t.Fatalf("seed %d workers %d row %d: flat score %v != walker %v",
						seed, workers, i, scores[i], wantScore)
				}
				wantPred := 0
				if wantScore >= 0.5 {
					wantPred = 1
				}
				if preds[i] != wantPred {
					t.Fatalf("seed %d workers %d row %d: flat label %d != walker %d",
						seed, workers, i, preds[i], wantPred)
				}
			}
		}

		// A Save/Load round-trip must compile an equivalent program.
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.prog == nil {
			t.Fatal("Load left no compiled program")
		}
		for i := range xs {
			a, b := m.Score(xs[i]), loaded.Score(xs[i])
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("seed %d row %d: loaded flat score %v != fitted %v", seed, i, b, a)
			}
		}
	}
}

// TestPredictIntoAllocs is the acceptance gate: the flat batch predict
// path allocates nothing per call with Workers == 1.
func TestPredictIntoAllocs(t *testing.T) {
	x, y := mltest.Blobs(5, 600, 10, 2)
	m := New(fitOpts(false, 1))
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	out := make([]int, len(x))
	scores := make([]float64, len(x))
	margins := make([]float64, len(x))
	m.PredictInto(x, out) // warm up
	if n := testing.AllocsPerRun(200, func() { m.PredictInto(x, out) }); n != 0 {
		t.Fatalf("PredictInto allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { m.ScoreInto(x, scores) }); n != 0 {
		t.Fatalf("ScoreInto allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { m.MarginInto(x, margins) }); n != 0 {
		t.Fatalf("MarginInto allocates %v per run, want 0", n)
	}
}

// TestCompileArena spot-checks the arena invariants Load and Fit rely on:
// preorder layout (left child at i+1), per-tree roots in tree order, and
// self-absorbing leaves.
func TestCompileArena(t *testing.T) {
	x, y := mltest.Blobs(11, 400, 8, 2)
	m := New(fitOpts(false, 1))
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p := m.prog
	total := 0
	for i := range m.trees {
		total += len(m.trees[i].nodes)
	}
	if len(p.nodes) != total {
		t.Fatalf("arena size %d, want %d nodes", len(p.nodes), total)
	}
	if len(p.roots) != len(m.trees) {
		t.Fatalf("roots %d, want %d", len(p.roots), len(m.trees))
	}
	for i, root := range p.roots {
		if i > 0 && root <= p.roots[i-1] {
			t.Fatalf("roots not ascending: %v", p.roots)
		}
		if int(root) >= total {
			t.Fatalf("root %d out of arena", root)
		}
	}
	for i := range p.nodes {
		n := p.nodes[i]
		right := int(nodeRightOff(n)) / flatStride
		if nodeSplitRank(n) < 0 {
			// Self-absorbing leaf: splitRank -1, feat 0, right pointing at
			// itself, so the lockstep walkers park here instead of
			// branching out.
			if right != i || nodeFeat(n) != 0 || nodeSplitRank(n) != -1 {
				t.Fatalf("leaf %d not self-absorbing: rank %d feat %d right %d",
					i, nodeSplitRank(n), nodeFeat(n), right)
			}
			continue
		}
		if int(nodeFeat(n)) >= m.cols {
			t.Fatalf("node %d splits feature %d beyond %d cols", i, nodeFeat(n), m.cols)
		}
		if int(nodeSplitRank(n)) >= 1<<p.levels {
			t.Fatalf("node %d splitRank %d beyond table size %d", i, nodeSplitRank(n), 1<<p.levels)
		}
		// Internal node: left child is implicitly i+1, right child must be
		// inside the arena and beyond the left child.
		if right <= i+1 || right >= total {
			t.Fatalf("node %d right child %d out of order", i, right)
		}
	}
}
