package nn

import (
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/ml/mltest"
)

func TestFitBlobs(t *testing.T) {
	x, y := mltest.Blobs(1, 400, 5, 3)
	m := New(Options{Hidden: 8, Dropout: 0, LearningRate: 2.5e-3, Epochs: 30, BatchSize: 64, Seed: 1})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := mltest.Blobs(2, 200, 5, 3)
	if acc := mltest.Accuracy(yt, m.Predict(xt)); acc < 0.95 {
		t.Errorf("test accuracy = %.3f", acc)
	}
}

func TestFitXOR(t *testing.T) {
	x, y := mltest.XOR(3, 1000)
	m := New(Options{Hidden: 16, Dropout: 0, LearningRate: 5e-3, Epochs: 150, BatchSize: 64, Seed: 4})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := mltest.XOR(5, 400)
	if acc := mltest.Accuracy(yt, m.Predict(xt)); acc < 0.9 {
		t.Errorf("XOR accuracy = %.3f (hidden layer must capture the interaction)", acc)
	}
}

func TestDropoutStillLearns(t *testing.T) {
	x, y := mltest.Blobs(7, 400, 5, 3)
	m := New(Options{Hidden: 16, Dropout: 0.3, LearningRate: 2.5e-3, Epochs: 40, BatchSize: 64, Seed: 2})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := mltest.Blobs(8, 200, 5, 3)
	if acc := mltest.Accuracy(yt, m.Predict(xt)); acc < 0.93 {
		t.Errorf("accuracy with dropout = %.3f", acc)
	}
}

func TestEmptyTrainingSet(t *testing.T) {
	if err := New(DefaultOptions()).Fit(nil, nil); err == nil {
		t.Fatal("want error")
	}
}

func TestScoresAreProbabilities(t *testing.T) {
	x, y := mltest.Blobs(9, 200, 3, 2)
	m := New(Options{Hidden: 8, Epochs: 10, BatchSize: 64, LearningRate: 1e-3, Seed: 5})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, row := range x[:50] {
		s := m.Score(row)
		if s < 0 || s > 1 {
			t.Fatalf("score %v outside [0,1]", s)
		}
	}
}

func TestDeterminism(t *testing.T) {
	x, y := mltest.Blobs(11, 200, 4, 2)
	m1 := New(DefaultOptions())
	m2 := New(DefaultOptions())
	if err := m1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i, row := range x[:50] {
		if m1.Score(row) != m2.Score(row) {
			t.Fatalf("row %d: scores differ between identical fits", i)
		}
	}
}

func BenchmarkFit(b *testing.B) {
	x, y := mltest.Blobs(1, 1000, 20, 2)
	opts := Options{Hidden: 16, Dropout: 0.3, LearningRate: 2.5e-3, Epochs: 10, BatchSize: 256, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(opts)
		if err := m.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
