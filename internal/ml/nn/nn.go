// Package nn implements the paper's neural network model: a multi-layer
// perceptron with one ReLU hidden layer, dropout regularization and a
// sigmoid output, trained with Adam on the binary cross-entropy loss. The
// Figure 8 pipeline standardizes and PCA-projects inputs before this model;
// the hyperparameters follow the Appendix C grid (hidden neurons, dropout,
// learning rate).
package nn

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Options are the MLP hyperparameters.
type Options struct {
	Hidden       int     // paper grid: {4, 8, 16, 32}
	Dropout      float64 // paper grid: {0, 0.3, 0.6, 0.9}
	LearningRate float64 // paper grid: 1e-5 .. 2.5e-3
	Epochs       int
	BatchSize    int
	Seed         uint64
}

// DefaultOptions returns a practical operating point from the paper's grid.
func DefaultOptions() Options {
	return Options{
		Hidden:       16,
		Dropout:      0.3,
		LearningRate: 2.5e-3,
		Epochs:       40,
		BatchSize:    256,
		Seed:         1,
	}
}

// Model is a fitted MLP.
type Model struct {
	opts   Options
	w1     [][]float64 // [hidden][in]
	b1     []float64
	w2     []float64 // [hidden]
	b2     float64
	inDim  int
}

// New returns an unfitted model.
func New(opts Options) *Model {
	if opts.Hidden <= 0 {
		opts.Hidden = 16
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 40
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 256
	}
	if opts.LearningRate <= 0 {
		opts.LearningRate = 1e-3
	}
	if opts.Dropout < 0 || opts.Dropout >= 1 {
		opts.Dropout = 0
	}
	return &Model{opts: opts}
}

type adam struct {
	m, v []float64
	t    int
}

func newAdam(n int) *adam { return &adam{m: make([]float64, n), v: make([]float64, n)} }

const (
	beta1 = 0.9
	beta2 = 0.999
	eps   = 1e-8
)

func (a *adam) step(params, grads []float64, lr float64) {
	a.t++
	c1 := 1 - math.Pow(beta1, float64(a.t))
	c2 := 1 - math.Pow(beta2, float64(a.t))
	for i := range params {
		a.m[i] = beta1*a.m[i] + (1-beta1)*grads[i]
		a.v[i] = beta2*a.v[i] + (1-beta2)*grads[i]*grads[i]
		params[i] -= lr * (a.m[i] / c1) / (math.Sqrt(a.v[i]/c2) + eps)
	}
}

// Fit trains the network.
func (m *Model) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return fmt.Errorf("nn: empty training set")
	}
	rows, in := len(x), len(x[0])
	h := m.opts.Hidden
	m.inDim = in
	rng := rand.New(rand.NewPCG(m.opts.Seed, m.opts.Seed*0x9E3779B97F4A7C15+1))

	// He initialization.
	m.w1 = make([][]float64, h)
	scale := math.Sqrt(2 / float64(in))
	for i := range m.w1 {
		m.w1[i] = make([]float64, in)
		for j := range m.w1[i] {
			m.w1[i][j] = rng.NormFloat64() * scale
		}
	}
	m.b1 = make([]float64, h)
	m.w2 = make([]float64, h)
	s2 := math.Sqrt(2 / float64(h))
	for i := range m.w2 {
		m.w2[i] = rng.NormFloat64() * s2
	}
	m.b2 = 0

	// Flatten parameters for Adam: w1 rows, b1, w2, b2.
	nParams := h*in + h + h + 1
	grads := make([]float64, nParams)
	params := make([]float64, nParams)
	opt := newAdam(nParams)
	pack := func() {
		k := 0
		for i := 0; i < h; i++ {
			copy(params[k:], m.w1[i])
			k += in
		}
		copy(params[k:], m.b1)
		k += h
		copy(params[k:], m.w2)
		k += h
		params[k] = m.b2
	}
	unpack := func() {
		k := 0
		for i := 0; i < h; i++ {
			copy(m.w1[i], params[k:k+in])
			k += in
		}
		copy(m.b1, params[k:k+h])
		k += h
		copy(m.w2, params[k:k+h])
		k += h
		m.b2 = params[k]
	}
	pack()

	idx := make([]int, rows)
	for i := range idx {
		idx[i] = i
	}
	hidden := make([]float64, h)
	mask := make([]bool, h)
	keep := 1 - m.opts.Dropout

	for e := 0; e < m.opts.Epochs; e++ {
		rng.Shuffle(rows, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < rows; start += m.opts.BatchSize {
			end := start + m.opts.BatchSize
			if end > rows {
				end = rows
			}
			for i := range grads {
				grads[i] = 0
			}
			for _, r := range idx[start:end] {
				row := x[r]
				// Forward with inverted dropout.
				for i := 0; i < h; i++ {
					z := m.b1[i]
					wi := m.w1[i]
					for j, v := range row {
						z += wi[j] * v
					}
					if z < 0 {
						z = 0
					}
					if m.opts.Dropout > 0 {
						mask[i] = rng.Float64() < keep
						if mask[i] {
							z /= keep
						} else {
							z = 0
						}
					} else {
						mask[i] = true
					}
					hidden[i] = z
				}
				z2 := m.b2
				for i := 0; i < h; i++ {
					z2 += m.w2[i] * hidden[i]
				}
				p := 1 / (1 + math.Exp(-z2))
				dz2 := p - float64(y[r]) // dL/dz2 for BCE + sigmoid

				// Backward.
				k := h * in
				for i := 0; i < h; i++ {
					grads[k+h+i] += dz2 * hidden[i] // w2 grads
				}
				grads[k+h+h] += dz2 // b2
				for i := 0; i < h; i++ {
					if !mask[i] || hidden[i] <= 0 {
						continue
					}
					dh := dz2 * m.w2[i] / keepIf(m.opts.Dropout > 0, keep)
					gi := i * in
					for j, v := range row {
						grads[gi+j] += dh * v
					}
					grads[k+i] += dh // b1
				}
			}
			n := float64(end - start)
			for i := range grads {
				grads[i] /= n
			}
			opt.step(params, grads, m.opts.LearningRate)
			unpack()
		}
	}
	return nil
}

func keepIf(cond bool, keep float64) float64 {
	if cond {
		return keep
	}
	return 1
}

// Score returns the predicted probability of the positive class.
func (m *Model) Score(row []float64) float64 {
	z2 := m.b2
	for i := range m.w1 {
		z := m.b1[i]
		wi := m.w1[i]
		for j, v := range row {
			if j < len(wi) {
				z += wi[j] * v
			}
		}
		if z > 0 {
			z2 += m.w2[i] * z
		}
	}
	return 1 / (1 + math.Exp(-z2))
}

// Predict labels rows at the 0.5 threshold.
func (m *Model) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		if m.Score(row) >= 0.5 {
			out[i] = 1
		}
	}
	return out
}
