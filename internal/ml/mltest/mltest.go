// Package mltest provides shared synthetic datasets for testing the ML
// substrate: linearly separable blobs, noisy blobs, XOR (non-linear), and a
// ring problem, all deterministic by seed.
package mltest

import (
	"math"
	"math/rand/v2"
)

// Blobs returns n points per class from two Gaussian blobs separated by
// dist standard deviations in `dims` dimensions.
func Blobs(seed uint64, n, dims int, dist float64) ([][]float64, []int) {
	rng := rand.New(rand.NewPCG(seed, seed^0xFF51AFD7ED558CCD))
	x := make([][]float64, 0, 2*n)
	y := make([]int, 0, 2*n)
	for c := 0; c < 2; c++ {
		center := dist * float64(c)
		for i := 0; i < n; i++ {
			row := make([]float64, dims)
			for j := range row {
				row[j] = center + rng.NormFloat64()
			}
			x = append(x, row)
			y = append(y, c)
		}
	}
	// Shuffle jointly.
	rng.Shuffle(len(x), func(i, j int) {
		x[i], x[j] = x[j], x[i]
		y[i], y[j] = y[j], y[i]
	})
	return x, y
}

// XOR returns the classic non-linearly-separable XOR problem with noise.
func XOR(seed uint64, n int) ([][]float64, []int) {
	rng := rand.New(rand.NewPCG(seed, seed+3))
	x := make([][]float64, 0, n)
	y := make([]int, 0, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		label := 0
		if (a > 0) != (b > 0) {
			label = 1
		}
		x = append(x, []float64{a + 0.05*rng.NormFloat64(), b + 0.05*rng.NormFloat64()})
		y = append(y, label)
	}
	return x, y
}

// Ring returns points labeled by whether they fall inside a radius.
func Ring(seed uint64, n int) ([][]float64, []int) {
	rng := rand.New(rand.NewPCG(seed, seed+9))
	x := make([][]float64, 0, n)
	y := make([]int, 0, n)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		label := 0
		if math.Hypot(a, b) < 1.17 { // ~50/50 split for 2D standard normal
			label = 1
		}
		x = append(x, []float64{a, b})
		y = append(y, label)
	}
	return x, y
}

// Hypersphere returns n standard-normal points in `dims` dimensions
// labeled by whether they fall inside the median radius (~50/50 split).
// The spherical boundary is nonlinear in every dimension, so axis-
// aligned trees need many deep splits spread across all features to
// approximate it — boosting keeps growing full-depth trees for hundreds
// of rounds instead of converging to stumps, which makes this the
// representative workload for inference benchmarks (production-shaped
// ensembles, data-dependent branch outcomes).
func Hypersphere(seed uint64, n, dims int) ([][]float64, []int) {
	rng := rand.New(rand.NewPCG(seed, seed^0xC2B2AE3D27D4EB4F))
	// Median of the chi distribution with `dims` degrees of freedom.
	r := math.Sqrt(float64(dims) - 2.0/3.0)
	x := make([][]float64, 0, n)
	y := make([]int, 0, n)
	for i := 0; i < n; i++ {
		row := make([]float64, dims)
		s := 0.0
		for j := range row {
			row[j] = rng.NormFloat64()
			s += row[j] * row[j]
		}
		label := 0
		if s < r*r {
			label = 1
		}
		x = append(x, row)
		y = append(y, label)
	}
	return x, y
}

// Accuracy scores predictions.
func Accuracy(yTrue, yPred []int) float64 {
	if len(yTrue) == 0 {
		return 0
	}
	ok := 0
	for i := range yTrue {
		if yTrue[i] == yPred[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(yTrue))
}
