// Package dummy implements the DUM baseline of the paper's comparison: a
// classifier that guesses each label uniformly at random — the worst
// conceivable classifier, anchoring all metric tables at ≈0.5.
package dummy

import "math/rand/v2"

// Model guesses labels with equal probability.
type Model struct {
	Seed uint64
	rng  *rand.Rand
}

// New returns a dummy classifier.
func New(seed uint64) *Model { return &Model{Seed: seed} }

// Fit ignores the data.
func (m *Model) Fit(x [][]float64, y []int) error {
	m.rng = rand.New(rand.NewPCG(m.Seed, m.Seed+1))
	return nil
}

// Predict flips a fair coin per row.
func (m *Model) Predict(x [][]float64) []int {
	if m.rng == nil {
		m.rng = rand.New(rand.NewPCG(m.Seed, m.Seed+1))
	}
	out := make([]int, len(x))
	for i := range out {
		out[i] = int(m.rng.Uint32() & 1)
	}
	return out
}
