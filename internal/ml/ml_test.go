package ml

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ixp-scrubber/ixpscrubber/internal/ml/mltest"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml/xgb"
)

func blobsDataset(t *testing.T, seed uint64, n int) *Dataset {
	t.Helper()
	x, y := mltest.Blobs(seed, n, 6, 3)
	d, err := NewDataset(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset([][]float64{{1}}, []int{1, 0}, nil); err == nil {
		t.Error("row/label mismatch accepted")
	}
	if _, err := NewDataset([][]float64{{1, 2}, {3}}, []int{0, 1}, nil); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := NewDataset([][]float64{{1, 2}}, []int{0}, []string{"a"}); err == nil {
		t.Error("name count mismatch accepted")
	}
	d, err := NewDataset([][]float64{{1, 2}}, []int{1}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cols() != 2 || d.Len() != 1 || d.PositiveShare() != 1 {
		t.Errorf("dataset accessors: %d %d %v", d.Cols(), d.Len(), d.PositiveShare())
	}
}

func TestSplitAndFolds(t *testing.T) {
	d := blobsDataset(t, 1, 300)
	train, test := d.Split(42, 2.0/3.0)
	if train.Len()+test.Len() != d.Len() {
		t.Fatalf("split sizes: %d + %d != %d", train.Len(), test.Len(), d.Len())
	}
	if train.Len() != 400 {
		t.Errorf("train = %d, want 400 of 600", train.Len())
	}
	// Same seed: same split.
	tr2, _ := d.Split(42, 2.0/3.0)
	for i := range train.Y {
		if train.Y[i] != tr2.Y[i] {
			t.Fatal("split not deterministic")
		}
	}
	folds := d.Folds(7, 3)
	total := 0
	seen := map[int]bool{}
	for _, f := range folds {
		total += len(f)
		for _, i := range f {
			if seen[i] {
				t.Fatal("duplicate index across folds")
			}
			seen[i] = true
		}
	}
	if total != d.Len() {
		t.Fatalf("folds cover %d of %d", total, d.Len())
	}
	if len(TrainFold(folds, 0)) != d.Len()-len(folds[0]) {
		t.Error("TrainFold size")
	}
}

func TestSample(t *testing.T) {
	d := blobsDataset(t, 2, 100)
	s := d.Sample(1, 50)
	if s.Len() != 50 {
		t.Errorf("sample = %d", s.Len())
	}
	if d.Sample(1, 10000).Len() != d.Len() {
		t.Error("oversized sample must return the full set")
	}
}

func TestConfusionMetrics(t *testing.T) {
	yTrue := []int{1, 1, 1, 1, 0, 0, 0, 0, 0, 0}
	yPred := []int{1, 1, 1, 0, 0, 0, 0, 0, 1, 1}
	c := Confuse(yTrue, yPred)
	if c.TP != 3 || c.FN != 1 || c.TN != 4 || c.FP != 2 {
		t.Fatalf("confusion = %+v", c)
	}
	if math.Abs(c.TPR()-0.75) > 1e-12 || math.Abs(c.FPR()-2.0/6.0) > 1e-12 {
		t.Errorf("rates: tpr=%v fpr=%v", c.TPR(), c.FPR())
	}
	wantF1 := 3.0 / (3 + 0.5*(2+1))
	if math.Abs(c.F1()-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", c.F1(), wantF1)
	}
	b2 := 0.25
	wantFb := (1 + b2) * 3 / ((1+b2)*3 + b2*1 + 2)
	if math.Abs(c.FBeta(0.5)-wantFb) > 1e-12 {
		t.Errorf("Fβ = %v, want %v", c.FBeta(0.5), wantFb)
	}
	if c.String() == "" {
		t.Error("String")
	}
	// β=1 equals F1.
	if math.Abs(c.FBeta(1)-c.F1()) > 1e-12 {
		t.Error("FBeta(1) != F1")
	}
}

func TestConfusionPerfectAndZero(t *testing.T) {
	c := Confuse([]int{1, 0}, []int{1, 0})
	if c.F1() != 1 || c.FBeta(0.5) != 1 || c.Accuracy() != 1 {
		t.Error("perfect prediction scores")
	}
	c = Confuse([]int{0, 0}, []int{0, 0})
	if c.F1() != 0 || c.TPR() != 0 {
		t.Error("degenerate all-negative scores")
	}
}

func TestImputer(t *testing.T) {
	im := &Imputer{Value: -1}
	out := im.Transform([][]float64{{1, math.NaN()}, {math.NaN(), 4}})
	if out[0][1] != -1 || out[1][0] != -1 || out[0][0] != 1 || out[1][1] != 4 {
		t.Errorf("imputed = %v", out)
	}
}

func TestStandardScaler(t *testing.T) {
	s := &StandardScaler{}
	x := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	s.Fit(x, nil)
	out := s.Transform(x)
	for j := 0; j < 2; j++ {
		var mean, varr float64
		for i := range out {
			mean += out[i][j]
		}
		mean /= 3
		for i := range out {
			d := out[i][j] - mean
			varr += d * d
		}
		varr /= 3
		if math.Abs(mean) > 1e-12 || math.Abs(varr-1) > 1e-9 {
			t.Errorf("col %d: mean=%v var=%v", j, mean, varr)
		}
	}
	// Constant column: no division by zero.
	s2 := &StandardScaler{}
	s2.Fit([][]float64{{5}, {5}}, nil)
	if got := s2.Transform([][]float64{{5}}); got[0][0] != 0 {
		t.Errorf("constant col transform = %v", got[0][0])
	}
}

func TestMinMaxNormalizer(t *testing.T) {
	n := &MinMaxNormalizer{}
	x := [][]float64{{0, -5}, {10, 5}}
	n.Fit(x, nil)
	out := n.Transform([][]float64{{5, 0}, {20, -10}})
	if out[0][0] != 0.5 || out[0][1] != 0.5 {
		t.Errorf("normalized = %v", out[0])
	}
	if out[1][0] != 1 || out[1][1] != 0 {
		t.Errorf("clamping failed: %v", out[1])
	}
}

func TestVarianceThreshold(t *testing.T) {
	v := &VarianceThreshold{Min: 1e-9}
	x := [][]float64{{1, 7, 0}, {2, 7, 0}, {3, 7, 0}}
	v.Fit(x, nil)
	if len(v.Kept()) != 1 || v.Kept()[0] != 0 {
		t.Fatalf("kept = %v", v.Kept())
	}
	out := v.Transform(x)
	if len(out[0]) != 1 || out[2][0] != 3 {
		t.Errorf("transform = %v", out)
	}
	// All-constant input: keep everything rather than emit zero columns.
	v2 := &VarianceThreshold{Min: 1e-9}
	v2.Fit([][]float64{{1, 1}, {1, 1}}, nil)
	if len(v2.Kept()) != 2 {
		t.Errorf("all-constant kept = %v", v2.Kept())
	}
}

func TestPCARecoversStructure(t *testing.T) {
	// Data varies along one direction in 5D: first component must explain
	// nearly all variance.
	x := make([][]float64, 200)
	for i := range x {
		tv := float64(i) / 100.0
		x[i] = []float64{tv, 2 * tv, -tv, 0.5 * tv, tv + 0.001*float64(i%3)}
	}
	p := &PCA{Components: 3}
	p.Fit(x, nil)
	ev := p.ExplainedVarianceRatio()
	if ev[0] < 0.99 {
		t.Errorf("first component explains %v, want ~1", ev[0])
	}
	out := p.Transform(x[:5])
	if len(out[0]) != 3 {
		t.Errorf("projected dims = %d", len(out[0]))
	}
}

func TestPCAOrthogonalTransform(t *testing.T) {
	// PCA of white data preserves total variance across components.
	xs, _ := mltest.Blobs(3, 300, 4, 0)
	p := &PCA{Components: 4}
	p.Fit(xs, nil)
	ev := p.ExplainedVarianceRatio()
	var sum float64
	for _, v := range ev {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("explained variance ratios sum to %v", sum)
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	d := blobsDataset(t, 5, 400)
	p := &Pipeline{
		Name: "xgb",
		Stages: []Transformer{
			&Imputer{Value: -1},
			&StandardScaler{},
		},
		Model: xgb.New(xgb.Options{Estimators: 8, MaxDepth: 4, Bins: 32}),
	}
	train, test := d.Split(1, 2.0/3.0)
	c, per, err := p.Evaluate(train, test)
	if err != nil {
		t.Fatal(err)
	}
	if c.FBeta(0.5) < 0.9 {
		t.Errorf("Fβ = %.3f", c.FBeta(0.5))
	}
	if per < 0 {
		t.Error("negative per-row latency")
	}
	if (&Pipeline{Name: "nil"}).Fit(train.X, train.Y) == nil {
		t.Error("pipeline without model must error on fit")
	}
}

func TestCrossValidate(t *testing.T) {
	d := blobsDataset(t, 6, 200)
	score, err := CrossValidate(func() *Pipeline {
		return &Pipeline{Model: xgb.New(xgb.Options{Estimators: 5, MaxDepth: 3, Bins: 16})}
	}, d, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.9 {
		t.Errorf("CV Fβ = %.3f", score)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(map[string][]float64{"a": {1, 2}, "b": {10, 20, 30}})
	if len(g) != 6 {
		t.Fatalf("grid size = %d", len(g))
	}
	seen := map[[2]float64]bool{}
	for _, p := range g {
		seen[[2]float64{p["a"], p["b"]}] = true
	}
	if len(seen) != 6 {
		t.Error("grid has duplicates")
	}
	if len(Grid(nil)) != 1 {
		t.Error("empty grid must yield one empty assignment")
	}
}

func TestGridSearch(t *testing.T) {
	d := blobsDataset(t, 7, 150)
	res, err := GridSearch(
		map[string][]float64{"estimators": {1, 8}},
		func(p Params) *Pipeline {
			return &Pipeline{Model: xgb.New(xgb.Options{
				Estimators: int(p["estimators"]), MaxDepth: 3, Bins: 16,
			})}
		}, d, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].Score < res[1].Score {
		t.Error("results not sorted by score")
	}
}

// TestFBetaProperty: Fβ is always within [0,1] and false positives hurt
// Fβ=0.5 more than false negatives do.
func TestFBetaProperty(t *testing.T) {
	f := func(tp, tn, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), TN: int(tn), FP: int(fp), FN: int(fn)}
		v := c.FBeta(0.5)
		if v < 0 || v > 1 {
			return false
		}
		if tp == 0 {
			return true
		}
		cFP := Confusion{TP: int(tp), TN: int(tn), FP: int(fp) + 10, FN: int(fn)}
		cFN := Confusion{TP: int(tp), TN: int(tn), FP: int(fp), FN: int(fn) + 10}
		return cFP.FBeta(0.5) <= cFN.FBeta(0.5)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
