package ml

import (
	"math/rand/v2"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/ml/xgb"
)

// noisyDataset: 3 informative columns + 17 noise columns.
func noisyDataset(t *testing.T, seed uint64, n int) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+1))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, 20)
		label := i % 2
		for j := 0; j < 3; j++ {
			row[j] = float64(label)*2.5 + rng.NormFloat64()
		}
		for j := 3; j < 20; j++ {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		y[i] = label
	}
	d, err := NewDataset(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRFESelectsInformativeColumns(t *testing.T) {
	d := noisyDataset(t, 1, 600)
	res, err := RFE(func() Classifier {
		return xgb.New(xgb.Options{Estimators: 8, MaxDepth: 3, Bins: 16})
	}, d, 7, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < 0.9 {
		t.Errorf("best score = %.3f", res.Score)
	}
	if len(res.Kept) >= 20 {
		t.Errorf("RFE kept everything (%d columns)", len(res.Kept))
	}
	// The informative columns survive in the winning subset.
	kept := map[int]bool{}
	for _, c := range res.Kept {
		kept[c] = true
	}
	informative := 0
	for j := 0; j < 3; j++ {
		if kept[j] {
			informative++
		}
	}
	if informative == 0 {
		t.Errorf("no informative column survived; kept %v", res.Kept)
	}
	// Trace is recorded with decreasing feature counts.
	if len(res.Trace) < 2 {
		t.Fatalf("trace = %v", res.Trace)
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Features >= res.Trace[i-1].Features {
			t.Fatal("trace feature counts not decreasing")
		}
	}
}

func TestRFEErrors(t *testing.T) {
	if _, err := RFE(func() Classifier {
		return xgb.New(xgb.DefaultOptions())
	}, &Dataset{}, 1, 0.3, 1); err == nil {
		t.Error("empty dataset accepted")
	}
	// Model without importances.
	d := noisyDataset(t, 2, 60)
	if _, err := RFE(func() Classifier { return noImp{} }, d, 1, 0.3, 1); err == nil {
		t.Error("importance-less model accepted")
	}
}

type noImp struct{}

func (noImp) Fit(x [][]float64, y []int) error { return nil }
func (noImp) Predict(x [][]float64) []int      { return make([]int, len(x)) }

func TestStratifiedFolds(t *testing.T) {
	// 90:10 imbalance; every fold keeps roughly the same ratio.
	x := make([][]float64, 200)
	y := make([]int, 200)
	for i := range x {
		x[i] = []float64{float64(i)}
		if i < 20 {
			y[i] = 1
		}
	}
	d, err := NewDataset(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	folds := d.StratifiedFolds(3, 4)
	seen := map[int]bool{}
	for f, idxs := range folds {
		pos := 0
		for _, i := range idxs {
			if seen[i] {
				t.Fatal("index in two folds")
			}
			seen[i] = true
			pos += y[i]
		}
		if pos != 5 {
			t.Errorf("fold %d: %d positives of %d, want 5 (stratified)", f, pos, len(idxs))
		}
	}
	if len(seen) != 200 {
		t.Fatalf("folds cover %d of 200", len(seen))
	}
}

func TestStratifiedFoldsDegenerate(t *testing.T) {
	d, _ := NewDataset([][]float64{{1}, {2}, {3}}, []int{0, 0, 0}, nil)
	folds := d.StratifiedFolds(1, 2)
	total := 0
	for _, f := range folds {
		total += len(f)
	}
	if total != 3 {
		t.Errorf("covered %d of 3", total)
	}
	// k < 2 clamps.
	if len(d.StratifiedFolds(1, 0)) != 2 {
		t.Error("k clamp")
	}
}
