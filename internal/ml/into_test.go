package ml

import (
	"math"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/ml/mltest"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml/xgb"
)

// intoPipeline builds a pipeline whose every stage and model implement
// the Into interfaces, fitted on data with missing values so the imputer
// and the variance filter both do real work.
func intoPipeline(t *testing.T) (*Pipeline, [][]float64) {
	t.Helper()
	x, y := mltest.Blobs(11, 400, 10, 2)
	for i := range x {
		if i%7 == 0 {
			x[i][i%10] = math.NaN()
		}
		x[i][9] = 42 // constant column for VarianceThreshold to drop
	}
	p := &Pipeline{
		Name: "into",
		Stages: []Transformer{
			&Imputer{Value: -1},
			&VarianceThreshold{Min: 1e-9},
			&StandardScaler{},
			&MinMaxNormalizer{},
		},
		Model: xgb.New(xgb.Options{Estimators: 10, MaxDepth: 5, LearningRate: 0.3,
			Lambda: 1, MinChildWeight: 1, Bins: 32, Workers: 1}),
	}
	if err := p.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xs, _ := mltest.Blobs(12, 300, 10, 2)
	for i := range xs {
		if i%5 == 0 {
			xs[i][(i+3)%10] = math.NaN()
		}
	}
	return p, xs
}

// TestPredictIntoMatchesPredict pins PredictInto to Predict label for
// label, including rows with missing values and repeated calls over the
// same reused scratch.
func TestPredictIntoMatchesPredict(t *testing.T) {
	p, xs := intoPipeline(t)
	want := p.Predict(xs)
	out := make([]int, len(xs))
	for pass := 0; pass < 3; pass++ {
		p.PredictInto(xs, out)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("pass %d row %d: PredictInto %d != Predict %d", pass, i, out[i], want[i])
			}
		}
	}
	// A second batch of a different size must reuse the scratch correctly.
	short := xs[:97]
	wantShort := p.Predict(short)
	p.PredictInto(short, out[:97])
	for i := range wantShort {
		if out[i] != wantShort[i] {
			t.Fatalf("short batch row %d: PredictInto %d != Predict %d", i, out[i], wantShort[i])
		}
	}
}

// TestPredictIntoAllocs is the satellite gate: a fully Into-capable
// pipeline labels batches without allocating once its scratch has grown.
func TestPredictIntoAllocs(t *testing.T) {
	p, xs := intoPipeline(t)
	out := make([]int, len(xs))
	p.PredictInto(xs, out) // grow the scratch
	if n := testing.AllocsPerRun(100, func() { p.PredictInto(xs, out) }); n != 0 {
		t.Fatalf("Pipeline.PredictInto allocates %v per run, want 0", n)
	}
}

// TestTransformIntoMatchesTransform pins each Into stage's buffer-reuse
// path to its allocating Transform bit for bit.
func TestTransformIntoMatchesTransform(t *testing.T) {
	x, y := mltest.Blobs(21, 200, 8, 2)
	for i := range x {
		if i%6 == 0 {
			x[i][i%8] = math.NaN()
		}
		x[i][7] = 3 // constant column
	}
	stages := []Transformer{
		&Imputer{Value: -1},
		&VarianceThreshold{Min: 1e-9},
		&StandardScaler{},
		&MinMaxNormalizer{},
	}
	for _, s := range stages {
		s.Fit(x, y)
		it, ok := s.(IntoTransformer)
		if !ok {
			t.Fatalf("%T does not implement IntoTransformer", s)
		}
		want := s.Transform(x)
		oc := it.OutCols(len(x[0]))
		if len(want) > 0 && len(want[0]) != oc {
			t.Fatalf("%T: OutCols %d != Transform width %d", s, oc, len(want[0]))
		}
		out := make([][]float64, len(x))
		for i := range out {
			out[i] = make([]float64, oc)
			for j := range out[i] {
				out[i][j] = math.Inf(-1) // poison: every slot must be written
			}
		}
		it.TransformInto(x, out)
		for i := range want {
			for j := range want[i] {
				if math.Float64bits(out[i][j]) != math.Float64bits(want[i][j]) {
					t.Fatalf("%T row %d col %d: TransformInto %v != Transform %v",
						s, i, j, out[i][j], want[i][j])
				}
			}
		}
	}
}
