package ml

import (
	"math"
	"sort"
)

// Imputer replaces NaN values with a constant (the Figure 8 pipelines use
// -1 for missing ranking slots).
type Imputer struct {
	Value float64
}

// Fit is a no-op; the imputer is stateless.
func (im *Imputer) Fit(x [][]float64, y []int) {}

// Transform replaces NaNs.
func (im *Imputer) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(row))
		out[i] = o
		im.transformRow(o, row)
	}
	return out
}

// OutCols: imputation preserves width.
func (im *Imputer) OutCols(cols int) int { return cols }

// TransformInto is the allocation-free Transform.
func (im *Imputer) TransformInto(x, out [][]float64) {
	for i, row := range x {
		im.transformRow(out[i], row)
	}
}

func (im *Imputer) transformRow(o, row []float64) {
	for j, v := range row {
		if math.IsNaN(v) {
			o[j] = im.Value
		} else {
			o[j] = v
		}
	}
}

// StandardScaler standardizes columns to zero mean and unit variance.
type StandardScaler struct {
	mean, std []float64
}

// Fit computes per-column mean and standard deviation.
func (s *StandardScaler) Fit(x [][]float64, y []int) {
	if len(x) == 0 {
		return
	}
	cols := len(x[0])
	s.mean = make([]float64, cols)
	s.std = make([]float64, cols)
	for _, row := range x {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	n := float64(len(x))
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			d := v - s.mean[j]
			s.std[j] += d * d
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] == 0 {
			s.std[j] = 1
		}
	}
}

// Transform standardizes rows.
func (s *StandardScaler) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(row))
		out[i] = o
		s.transformRow(o, row)
	}
	return out
}

// OutCols: scaling preserves width.
func (s *StandardScaler) OutCols(cols int) int { return cols }

// TransformInto is the allocation-free Transform.
func (s *StandardScaler) TransformInto(x, out [][]float64) {
	for i, row := range x {
		s.transformRow(out[i], row)
	}
}

func (s *StandardScaler) transformRow(o, row []float64) {
	for j, v := range row {
		if j < len(s.mean) {
			o[j] = (v - s.mean[j]) / s.std[j]
		} else {
			o[j] = v
		}
	}
}

// MinMaxNormalizer maps each column to [0, 1] (the N stage feeding the
// multinomial/complement/Bernoulli naive Bayes models, which need
// non-negative inputs).
type MinMaxNormalizer struct {
	min, max []float64
}

// Fit records per-column ranges.
func (n *MinMaxNormalizer) Fit(x [][]float64, y []int) {
	if len(x) == 0 {
		return
	}
	cols := len(x[0])
	n.min = make([]float64, cols)
	n.max = make([]float64, cols)
	for j := 0; j < cols; j++ {
		n.min[j], n.max[j] = math.Inf(1), math.Inf(-1)
	}
	for _, row := range x {
		for j, v := range row {
			if v < n.min[j] {
				n.min[j] = v
			}
			if v > n.max[j] {
				n.max[j] = v
			}
		}
	}
}

// Transform rescales rows, clamping unseen values into [0, 1].
func (n *MinMaxNormalizer) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(row))
		out[i] = o
		n.transformRow(o, row)
	}
	return out
}

// OutCols: normalization preserves width.
func (n *MinMaxNormalizer) OutCols(cols int) int { return cols }

// TransformInto is the allocation-free Transform.
func (n *MinMaxNormalizer) TransformInto(x, out [][]float64) {
	for i, row := range x {
		n.transformRow(out[i], row)
	}
}

func (n *MinMaxNormalizer) transformRow(o, row []float64) {
	for j, v := range row {
		if j >= len(n.min) || n.max[j] == n.min[j] {
			o[j] = 0
			continue
		}
		t := (v - n.min[j]) / (n.max[j] - n.min[j])
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
		o[j] = t
	}
}

// VarianceThreshold drops columns whose variance is below a floor — the FR
// (feature reduction) stage that removes the constant ranking slots the
// deliberate over-generation of features produces.
type VarianceThreshold struct {
	Min  float64
	keep []int
}

// Fit selects the surviving columns.
func (v *VarianceThreshold) Fit(x [][]float64, y []int) {
	v.keep = nil
	if len(x) == 0 {
		return
	}
	cols := len(x[0])
	n := float64(len(x))
	for j := 0; j < cols; j++ {
		var sum, sum2 float64
		for _, row := range x {
			sum += row[j]
			sum2 += row[j] * row[j]
		}
		mean := sum / n
		if sum2/n-mean*mean > v.Min {
			v.keep = append(v.keep, j)
		}
	}
	// Never drop everything.
	if len(v.keep) == 0 {
		for j := 0; j < cols; j++ {
			v.keep = append(v.keep, j)
		}
	}
}

// Kept returns the retained column indices.
func (v *VarianceThreshold) Kept() []int { return v.keep }

// Transform projects rows onto the kept columns.
func (v *VarianceThreshold) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(v.keep))
		out[i] = o
		v.transformRow(o, row)
	}
	return out
}

// OutCols: the fitted selection's width, regardless of input width.
func (v *VarianceThreshold) OutCols(cols int) int { return len(v.keep) }

// TransformInto is the allocation-free Transform.
func (v *VarianceThreshold) TransformInto(x, out [][]float64) {
	for i, row := range x {
		v.transformRow(out[i], row)
	}
}

func (v *VarianceThreshold) transformRow(o, row []float64) {
	for k, j := range v.keep {
		if j < len(row) {
			o[k] = row[j]
		} else {
			o[k] = 0
		}
	}
}

// PCA projects standardized data onto its leading principal components. The
// eigendecomposition uses the cyclic Jacobi method on the covariance
// matrix, which is robust and exact for the ≤200 columns of this pipeline.
type PCA struct {
	// Components is the number of output dimensions.
	Components int

	mean       []float64
	components [][]float64 // [Components][cols]
	explained  []float64   // variance explained per component (ratios)
}

// Fit computes the principal components of x.
func (p *PCA) Fit(x [][]float64, y []int) {
	if len(x) == 0 {
		return
	}
	cols := len(x[0])
	k := p.Components
	if k <= 0 || k > cols {
		k = cols
	}
	p.mean = make([]float64, cols)
	for _, row := range x {
		for j, v := range row {
			p.mean[j] += v
		}
	}
	n := float64(len(x))
	for j := range p.mean {
		p.mean[j] /= n
	}
	// Covariance matrix.
	cov := make([][]float64, cols)
	for i := range cov {
		cov[i] = make([]float64, cols)
	}
	for _, row := range x {
		for i := 0; i < cols; i++ {
			di := row[i] - p.mean[i]
			ci := cov[i]
			for j := i; j < cols; j++ {
				ci[j] += di * (row[j] - p.mean[j])
			}
		}
	}
	for i := 0; i < cols; i++ {
		for j := i; j < cols; j++ {
			cov[i][j] /= n
			cov[j][i] = cov[i][j]
		}
	}
	vals, vecs := jacobiEigen(cov)
	order := make([]int, cols)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })

	var total float64
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	p.components = make([][]float64, k)
	p.explained = make([]float64, k)
	for c := 0; c < k; c++ {
		idx := order[c]
		comp := make([]float64, cols)
		for j := 0; j < cols; j++ {
			comp[j] = vecs[j][idx]
		}
		p.components[c] = comp
		if total > 0 {
			p.explained[c] = math.Max(vals[idx], 0) / total
		}
	}
}

// ExplainedVarianceRatio returns the per-component explained variance
// ratios (Figure 16b).
func (p *PCA) ExplainedVarianceRatio() []float64 { return p.explained }

// Transform projects rows onto the components.
func (p *PCA) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(p.components))
		for c, comp := range p.components {
			var dot float64
			for j, v := range row {
				if j < len(comp) {
					dot += (v - p.mean[j]) * comp[j]
				}
			}
			o[c] = dot
		}
		out[i] = o
	}
	return out
}

// jacobiEigen diagonalizes a symmetric matrix, returning eigenvalues and
// the matrix of column eigenvectors.
func jacobiEigen(a [][]float64) ([]float64, [][]float64) {
	n := len(a)
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	for sweep := 0; sweep < 100; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-18 {
			break
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if math.Abs(m[i][j]) < 1e-15 {
					continue
				}
				theta := (m[j][j] - m[i][i]) / (2 * m[i][j])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					mik, mjk := m[i][k], m[j][k]
					m[i][k] = c*mik - s*mjk
					m[j][k] = s*mik + c*mjk
				}
				for k := 0; k < n; k++ {
					mki, mkj := m[k][i], m[k][j]
					m[k][i] = c*mki - s*mkj
					m[k][j] = s*mki + c*mkj
				}
				for k := 0; k < n; k++ {
					vki, vkj := v[k][i], v[k][j]
					v[k][i] = c*vki - s*vkj
					v[k][j] = s*vki + c*vkj
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i][i]
	}
	return vals, v
}
