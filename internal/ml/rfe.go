package ml

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Recursive feature elimination (the other §5.2.2 step-3 reduction besides
// PCA): repeatedly fit the model, drop the weakest fraction of features by
// the model's importance, and keep the subset with the best cross-validated
// score.

// Importancer is implemented by models exposing per-feature importances
// aligned with the training columns (e.g. xgb.Model.GainImportance).
type Importancer interface {
	GainImportance() []float64
}

// RFEResult is the outcome of recursive feature elimination.
type RFEResult struct {
	// Kept are the selected original column indices, ascending.
	Kept []int
	// Score is the validation Fβ=0.5 of the winning subset.
	Score float64
	// Trace records (feature count, score) per elimination round.
	Trace []RFERound
}

// RFERound is one elimination step.
type RFERound struct {
	Features int
	Score    float64
}

// RFE runs recursive feature elimination: starting from all columns, each
// round fits build() on the current subset, scores it on a held-out third,
// and drops the weakest `dropFrac` of features by importance until fewer
// than minFeatures remain. Returns the best-scoring subset seen.
func RFE(build func() Classifier, d *Dataset, seed uint64, dropFrac float64, minFeatures int) (*RFEResult, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: rfe on empty dataset")
	}
	if dropFrac <= 0 || dropFrac >= 1 {
		dropFrac = 0.25
	}
	if minFeatures < 1 {
		minFeatures = 1
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x94D049BB133111EB))
	perm := rng.Perm(d.Len())
	cut := d.Len() * 2 / 3
	trainIdx, valIdx := perm[:cut], perm[cut:]

	cols := make([]int, d.Cols())
	for i := range cols {
		cols[i] = i
	}
	best := &RFEResult{Score: -1}
	for len(cols) >= minFeatures {
		model := build()
		xtr := project(d, trainIdx, cols)
		ytr := labels(d, trainIdx)
		if err := model.Fit(xtr, ytr); err != nil {
			return nil, fmt.Errorf("ml: rfe fit with %d features: %w", len(cols), err)
		}
		xva := project(d, valIdx, cols)
		score := Confuse(labels(d, valIdx), model.Predict(xva)).FBeta(0.5)
		best.Trace = append(best.Trace, RFERound{Features: len(cols), Score: score})
		// Ties prefer the smaller subset (later rounds), like RFECV.
		if score >= best.Score {
			best.Score = score
			best.Kept = append([]int(nil), cols...)
		}
		imp, ok := model.(Importancer)
		if !ok {
			return nil, fmt.Errorf("ml: rfe model %T exposes no importances", model)
		}
		gains := imp.GainImportance()
		if len(gains) != len(cols) {
			return nil, fmt.Errorf("ml: rfe importance length %d != %d features", len(gains), len(cols))
		}
		drop := int(float64(len(cols)) * dropFrac)
		if drop < 1 {
			drop = 1
		}
		if len(cols)-drop < minFeatures {
			break
		}
		order := make([]int, len(cols))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return gains[order[a]] < gains[order[b]] })
		dropSet := make(map[int]bool, drop)
		for _, i := range order[:drop] {
			dropSet[i] = true
		}
		next := cols[:0]
		for i, c := range cols {
			if !dropSet[i] {
				next = append(next, c)
			}
		}
		cols = next
	}
	sort.Ints(best.Kept)
	return best, nil
}

func project(d *Dataset, rows, cols []int) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		row := make([]float64, len(cols))
		for j, c := range cols {
			row[j] = d.X[r][c]
		}
		out[i] = row
	}
	return out
}

func labels(d *Dataset, rows []int) []int {
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = d.Y[r]
	}
	return out
}

// StratifiedFolds partitions row indices into k folds preserving the class
// ratio per fold (the stratified K-folding §3 mentions as the conventional
// balancing alternative that the streaming balancer replaces at scale).
func (d *Dataset) StratifiedFolds(seed uint64, k int) [][]int {
	if k < 2 {
		k = 2
	}
	rng := rand.New(rand.NewPCG(seed, seed*0x2545F4914F6CDD1D+3))
	var pos, neg []int
	for i, y := range d.Y {
		if y == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	folds := make([][]int, k)
	for i, idx := range pos {
		folds[i%k] = append(folds[i%k], idx)
	}
	for i, idx := range neg {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds
}
