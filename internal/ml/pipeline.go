package ml

import (
	"fmt"
	"time"
)

// Classifier is a binary classifier over dense feature rows.
type Classifier interface {
	// Fit trains on X (rows of equal width) with labels y in {0, 1}.
	Fit(x [][]float64, y []int) error
	// Predict labels each row 0 or 1.
	Predict(x [][]float64) []int
}

// Scorer is implemented by classifiers that expose a continuous decision
// score (higher = more likely positive); used for explainability and
// threshold tuning.
type Scorer interface {
	Score(row []float64) float64
}

// Transformer is a fitted feature-space transformation.
type Transformer interface {
	// Fit learns transformation parameters from training data.
	Fit(x [][]float64, y []int)
	// Transform maps rows into the output space. It must not mutate x.
	Transform(x [][]float64) [][]float64
}

// IntoTransformer is the allocation-free variant of Transformer: stages
// that know their output width up front and can write into caller-owned
// rows. Pipeline.PredictInto uses it to keep the serving path off the
// garbage collector.
type IntoTransformer interface {
	Transformer
	// OutCols reports the output row width for input rows of width cols.
	OutCols(cols int) int
	// TransformInto writes Transform(x) into out, whose rows have width
	// OutCols(len(x[i])). It must not mutate x and must produce exactly
	// the bits Transform produces.
	TransformInto(x, out [][]float64)
}

// IntoPredictor is the allocation-free variant of Classifier.
type IntoPredictor interface {
	Classifier
	// PredictInto labels each row into out (len(out) == len(x)).
	PredictInto(x [][]float64, out []int)
}

// matBuf is a reusable rows×cols matrix: one backing block, re-sliced
// per call, growing monotonically so steady-state reshapes allocate
// nothing.
type matBuf struct {
	rows [][]float64
	back []float64
}

// shape returns a r×c matrix over the buffer's storage.
func (b *matBuf) shape(r, c int) [][]float64 {
	if cap(b.back) < r*c {
		b.back = make([]float64, r*c)
	}
	back := b.back[:cap(b.back)]
	if cap(b.rows) < r {
		b.rows = make([][]float64, r)
	}
	rows := b.rows[:r]
	for i := range rows {
		rows[i] = back[i*c : (i+1)*c : (i+1)*c]
	}
	b.rows, b.back = rows, back
	return rows
}

// Pipeline chains transformers and a final classifier, mirroring the
// per-model preprocessing pipelines of Figure 8. Fitting fits each stage on
// the transformed output of the previous ones — on training data only, so
// no statistics leak from the test set.
type Pipeline struct {
	Name   string
	Stages []Transformer
	Model  Classifier

	// scratch ping-pongs intermediate matrices between Into-capable
	// stages during PredictInto; two buffers suffice because a stage
	// only ever reads its predecessor's output.
	scratch [2]matBuf
}

// Fit fits all stages and the model.
func (p *Pipeline) Fit(x [][]float64, y []int) error {
	if p.Model == nil {
		return fmt.Errorf("ml: pipeline %q has no model", p.Name)
	}
	cur := x
	for _, s := range p.Stages {
		s.Fit(cur, y)
		cur = s.Transform(cur)
	}
	if err := p.Model.Fit(cur, y); err != nil {
		return fmt.Errorf("ml: pipeline %q: %w", p.Name, err)
	}
	return nil
}

// Transform applies the fitted stages only.
func (p *Pipeline) Transform(x [][]float64) [][]float64 {
	cur := x
	for _, s := range p.Stages {
		cur = s.Transform(cur)
	}
	return cur
}

// Predict classifies rows through the full pipeline.
func (p *Pipeline) Predict(x [][]float64) []int {
	return p.Model.Predict(p.Transform(x))
}

// PredictInto classifies rows into out (len(out) == len(x)) producing
// exactly Predict's labels. Stages implementing IntoTransformer write
// into the pipeline's reusable scratch matrices and a Model implementing
// IntoPredictor labels without allocating, so a fully Into-capable
// pipeline allocates nothing once the scratch has grown to the batch
// size; other stages fall back to their allocating forms. Not safe for
// concurrent use with itself (the scratch is shared); concurrent callers
// should use Predict.
func (p *Pipeline) PredictInto(x [][]float64, out []int) {
	cur := x
	flip := 0
	for _, s := range p.Stages {
		it, ok := s.(IntoTransformer)
		if !ok {
			cur = s.Transform(cur)
			continue
		}
		cols := 0
		if len(cur) > 0 {
			cols = len(cur[0])
		}
		dst := p.scratch[flip&1].shape(len(cur), it.OutCols(cols))
		flip++
		it.TransformInto(cur, dst)
		cur = dst
	}
	if ip, ok := p.Model.(IntoPredictor); ok {
		ip.PredictInto(cur, out)
		return
	}
	copy(out, p.Model.Predict(cur))
}

// Evaluate fits on train and scores on test, returning the confusion matrix
// and the prediction latency per row (the paper reports prediction cost as
// mega clock cycles; wall time per prediction is the portable equivalent).
func (p *Pipeline) Evaluate(train, test *Dataset) (Confusion, time.Duration, error) {
	if err := p.Fit(train.X, train.Y); err != nil {
		return Confusion{}, 0, err
	}
	start := time.Now()
	pred := p.Predict(test.X)
	elapsed := time.Since(start)
	per := time.Duration(0)
	if len(test.X) > 0 {
		per = elapsed / time.Duration(len(test.X))
	}
	return Confuse(test.Y, pred), per, nil
}

// CrossValidate runs k-fold cross validation and returns the mean Fβ=0.5
// across folds (the Appendix C model selection criterion).
func CrossValidate(build func() *Pipeline, d *Dataset, seed uint64, k int) (float64, error) {
	folds := d.Folds(seed, k)
	var sum float64
	for i := range folds {
		p := build()
		train := d.Subset(TrainFold(folds, i))
		test := d.Subset(folds[i])
		if err := p.Fit(train.X, train.Y); err != nil {
			return 0, fmt.Errorf("ml: fold %d: %w", i, err)
		}
		c := Confuse(test.Y, p.Predict(test.X))
		sum += c.FBeta(0.5)
	}
	return sum / float64(len(folds)), nil
}
