package ml

import (
	"fmt"
	"time"
)

// Classifier is a binary classifier over dense feature rows.
type Classifier interface {
	// Fit trains on X (rows of equal width) with labels y in {0, 1}.
	Fit(x [][]float64, y []int) error
	// Predict labels each row 0 or 1.
	Predict(x [][]float64) []int
}

// Scorer is implemented by classifiers that expose a continuous decision
// score (higher = more likely positive); used for explainability and
// threshold tuning.
type Scorer interface {
	Score(row []float64) float64
}

// Transformer is a fitted feature-space transformation.
type Transformer interface {
	// Fit learns transformation parameters from training data.
	Fit(x [][]float64, y []int)
	// Transform maps rows into the output space. It must not mutate x.
	Transform(x [][]float64) [][]float64
}

// Pipeline chains transformers and a final classifier, mirroring the
// per-model preprocessing pipelines of Figure 8. Fitting fits each stage on
// the transformed output of the previous ones — on training data only, so
// no statistics leak from the test set.
type Pipeline struct {
	Name   string
	Stages []Transformer
	Model  Classifier
}

// Fit fits all stages and the model.
func (p *Pipeline) Fit(x [][]float64, y []int) error {
	if p.Model == nil {
		return fmt.Errorf("ml: pipeline %q has no model", p.Name)
	}
	cur := x
	for _, s := range p.Stages {
		s.Fit(cur, y)
		cur = s.Transform(cur)
	}
	if err := p.Model.Fit(cur, y); err != nil {
		return fmt.Errorf("ml: pipeline %q: %w", p.Name, err)
	}
	return nil
}

// Transform applies the fitted stages only.
func (p *Pipeline) Transform(x [][]float64) [][]float64 {
	cur := x
	for _, s := range p.Stages {
		cur = s.Transform(cur)
	}
	return cur
}

// Predict classifies rows through the full pipeline.
func (p *Pipeline) Predict(x [][]float64) []int {
	return p.Model.Predict(p.Transform(x))
}

// Evaluate fits on train and scores on test, returning the confusion matrix
// and the prediction latency per row (the paper reports prediction cost as
// mega clock cycles; wall time per prediction is the portable equivalent).
func (p *Pipeline) Evaluate(train, test *Dataset) (Confusion, time.Duration, error) {
	if err := p.Fit(train.X, train.Y); err != nil {
		return Confusion{}, 0, err
	}
	start := time.Now()
	pred := p.Predict(test.X)
	elapsed := time.Since(start)
	per := time.Duration(0)
	if len(test.X) > 0 {
		per = elapsed / time.Duration(len(test.X))
	}
	return Confuse(test.Y, pred), per, nil
}

// CrossValidate runs k-fold cross validation and returns the mean Fβ=0.5
// across folds (the Appendix C model selection criterion).
func CrossValidate(build func() *Pipeline, d *Dataset, seed uint64, k int) (float64, error) {
	folds := d.Folds(seed, k)
	var sum float64
	for i := range folds {
		p := build()
		train := d.Subset(TrainFold(folds, i))
		test := d.Subset(folds[i])
		if err := p.Fit(train.X, train.Y); err != nil {
			return 0, fmt.Errorf("ml: fold %d: %w", i, err)
		}
		c := Confuse(test.Y, p.Predict(test.X))
		sum += c.FBeta(0.5)
	}
	return sum / float64(len(folds)), nil
}
