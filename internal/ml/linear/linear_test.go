package linear

import (
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/ml/mltest"
)

func TestFitSeparableBlobs(t *testing.T) {
	x, y := mltest.Blobs(1, 500, 5, 3)
	m := New(Options{C: 1, Epochs: 30, BatchSize: 64, LearningRate: 0.05, Seed: 1})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := mltest.Blobs(2, 200, 5, 3)
	if acc := mltest.Accuracy(yt, m.Predict(xt)); acc < 0.95 {
		t.Errorf("test accuracy = %.3f", acc)
	}
}

func TestXORIsHard(t *testing.T) {
	// A linear model cannot solve XOR: accuracy must hover near chance.
	x, y := mltest.XOR(3, 800)
	m := New(DefaultOptions())
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	acc := mltest.Accuracy(y, m.Predict(x))
	if acc > 0.7 {
		t.Errorf("linear model 'solved' XOR with accuracy %.3f — implementation suspect", acc)
	}
}

func TestBalancedClassWeights(t *testing.T) {
	// 95:5 imbalance: unweighted SVM may collapse to the majority class;
	// balanced weighting must recover minority recall.
	x, y := mltest.Blobs(5, 400, 4, 2.5)
	var xi [][]float64
	var yi []int
	kept1 := 0
	for i := range x {
		if y[i] == 1 {
			if kept1 >= 20 {
				continue
			}
			kept1++
		}
		xi = append(xi, x[i])
		yi = append(yi, y[i])
	}
	m := New(Options{C: 1, Balanced: true, Epochs: 40, BatchSize: 32, LearningRate: 0.05, Seed: 2})
	if err := m.Fit(xi, yi); err != nil {
		t.Fatal(err)
	}
	xt, yt := mltest.Blobs(6, 100, 4, 2.5)
	tp, pos := 0, 0
	pred := m.Predict(xt)
	for i := range yt {
		if yt[i] == 1 {
			pos++
			if pred[i] == 1 {
				tp++
			}
		}
	}
	if recall := float64(tp) / float64(pos); recall < 0.8 {
		t.Errorf("balanced minority recall = %.3f", recall)
	}
}

func TestEmptyTrainingSet(t *testing.T) {
	if err := New(DefaultOptions()).Fit(nil, nil); err == nil {
		t.Fatal("want error")
	}
}

func TestWeightsExposed(t *testing.T) {
	x, y := mltest.Blobs(7, 200, 3, 3)
	m := New(Options{C: 1, Epochs: 20, BatchSize: 64, LearningRate: 0.05, Seed: 3})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	w, _ := m.Weights()
	if len(w) != 3 {
		t.Fatalf("weights len = %d", len(w))
	}
	// All three features carry equal signal toward class 1.
	for j, v := range w {
		if v <= 0 {
			t.Errorf("weight %d = %v, want positive (class 1 sits at +3σ)", j, v)
		}
	}
}

func TestDeterminism(t *testing.T) {
	x, y := mltest.Blobs(9, 300, 4, 2)
	m1 := New(DefaultOptions())
	m2 := New(DefaultOptions())
	if err := m1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	w1, b1 := m1.Weights()
	w2, b2 := m2.Weights()
	if b1 != b2 {
		t.Error("bias differs")
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("weights differ between identical fits")
		}
	}
}

func BenchmarkFit(b *testing.B) {
	x, y := mltest.Blobs(1, 2000, 20, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(DefaultOptions())
		if err := m.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
