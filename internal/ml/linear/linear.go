// Package linear implements a linear support vector machine trained on the
// squared hinge loss (the sklearn LinearSVC configuration the paper
// selects: squared hinge, L2 regularization, optional class weighting),
// optimized with mini-batch SGD and momentum.
package linear

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Options are the LSVM hyperparameters (Appendix C grid).
type Options struct {
	// C is the inverse regularization strength (paper selects 1e-5).
	C float64
	// Balanced reweights classes inversely to their frequency.
	Balanced bool
	// Epochs and BatchSize control the SGD schedule.
	Epochs    int
	BatchSize int
	// LearningRate is the initial step size (decays 1/sqrt(t)).
	LearningRate float64
	// Seed fixes shuffling.
	Seed uint64
}

// DefaultOptions mirrors the paper's selected operating point.
func DefaultOptions() Options {
	return Options{
		C:            1e-5,
		Balanced:     false,
		Epochs:       30,
		BatchSize:    256,
		LearningRate: 0.05,
		Seed:         1,
	}
}

// Model is a fitted linear SVM.
type Model struct {
	opts Options
	w    []float64
	b    float64
}

// New returns an unfitted model.
func New(opts Options) *Model {
	if opts.Epochs <= 0 {
		opts.Epochs = 30
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 256
	}
	if opts.LearningRate <= 0 {
		opts.LearningRate = 0.05
	}
	if opts.C <= 0 {
		opts.C = 1.0
	}
	return &Model{opts: opts}
}

// Fit minimizes ||w||²/2 + C·Σ max(0, 1 - y·f(x))² by mini-batch SGD with
// momentum. Labels are mapped to y ∈ {-1, +1}.
func (m *Model) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return fmt.Errorf("linear: empty training set")
	}
	rows, cols := len(x), len(x[0])
	m.w = make([]float64, cols)
	m.b = 0

	// Class weights.
	pos := 0
	for _, v := range y {
		pos += v
	}
	wPos, wNeg := 1.0, 1.0
	if m.opts.Balanced && pos > 0 && pos < rows {
		wPos = float64(rows) / (2 * float64(pos))
		wNeg = float64(rows) / (2 * float64(rows-pos))
	}

	rng := rand.New(rand.NewPCG(m.opts.Seed, m.opts.Seed^0xE7037ED1A0B428DB))
	idx := make([]int, rows)
	for i := range idx {
		idx[i] = i
	}
	vel := make([]float64, cols)
	var velB float64
	const momentum = 0.9
	// Effective per-sample loss scale: C multiplies the hinge term; the
	// regularizer gradient is w / rows per sample batch.
	step := 0
	for e := 0; e < m.opts.Epochs; e++ {
		rng.Shuffle(rows, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < rows; start += m.opts.BatchSize {
			end := start + m.opts.BatchSize
			if end > rows {
				end = rows
			}
			batch := idx[start:end]
			step++
			lr := m.opts.LearningRate / math.Sqrt(float64(step))

			gw := make([]float64, cols)
			var gb float64
			for _, r := range batch {
				yy := -1.0
				cw := wNeg
				if y[r] == 1 {
					yy = 1
					cw = wPos
				}
				f := m.b
				row := x[r]
				for j, v := range row {
					f += m.w[j] * v
				}
				marginDef := 1 - yy*f
				if marginDef <= 0 {
					continue
				}
				// d/dw C·(1-y f)² = -2C(1-yf)·y·x
				g := -2 * m.opts.C * cw * marginDef * yy
				for j, v := range row {
					gw[j] += g * v
				}
				gb += g
			}
			scale := 1 / float64(len(batch))
			for j := 0; j < cols; j++ {
				grad := gw[j]*scale + m.w[j]/float64(rows)
				vel[j] = momentum*vel[j] - lr*grad
				m.w[j] += vel[j]
			}
			velB = momentum*velB - lr*gb*scale
			m.b += velB
		}
	}
	return nil
}

// Score returns the signed decision value.
func (m *Model) Score(row []float64) float64 {
	f := m.b
	for j, v := range row {
		if j < len(m.w) {
			f += m.w[j] * v
		}
	}
	return f
}

// Predict labels rows by the sign of the decision value.
func (m *Model) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		if m.Score(row) >= 0 {
			out[i] = 1
		}
	}
	return out
}

// Weights exposes the learned hyperplane for explainability.
func (m *Model) Weights() ([]float64, float64) {
	return append([]float64(nil), m.w...), m.b
}
