// Package ml provides the supervised learning substrate of Step 2: dataset
// handling, train/test splitting and k-fold cross validation, classification
// metrics (F1, Fβ, rate table), the preprocessing stages of Figure 8
// (feature reduction, imputing, standardization, PCA, normalization), the
// Pipeline composition used by every classifier, and grid search.
//
// All models implement the Classifier interface over dense float64 feature
// matrices; categorical inputs are expected to be WoE-encoded upstream.
package ml

import (
	"fmt"
	"math/rand/v2"
)

// Dataset is a dense feature matrix with binary labels (1 = DDoS/blackhole).
type Dataset struct {
	X     [][]float64
	Y     []int
	Names []string // column names, len == len(X[i])
}

// NewDataset validates shapes and wraps the data.
func NewDataset(x [][]float64, y []int, names []string) (*Dataset, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("ml: %d rows but %d labels", len(x), len(y))
	}
	if len(x) > 0 && names != nil && len(names) != len(x[0]) {
		return nil, fmt.Errorf("ml: %d columns but %d names", len(x[0]), len(names))
	}
	for i := range x {
		if len(x[i]) != len(x[0]) {
			return nil, fmt.Errorf("ml: ragged row %d: %d cols, want %d", i, len(x[i]), len(x[0]))
		}
	}
	return &Dataset{X: x, Y: y, Names: names}, nil
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// Cols returns the number of feature columns.
func (d *Dataset) Cols() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// PositiveShare returns the fraction of label-1 rows.
func (d *Dataset) PositiveShare() float64 {
	if len(d.Y) == 0 {
		return 0
	}
	n := 0
	for _, y := range d.Y {
		if y == 1 {
			n++
		}
	}
	return float64(n) / float64(len(d.Y))
}

// Subset returns the dataset restricted to the given row indices; the rows
// alias the parent.
func (d *Dataset) Subset(idx []int) *Dataset {
	x := make([][]float64, len(idx))
	y := make([]int, len(idx))
	for i, j := range idx {
		x[i] = d.X[j]
		y[i] = d.Y[j]
	}
	return &Dataset{X: x, Y: y, Names: d.Names}
}

// Split shuffles row indices with the seed and splits them into a train set
// of trainFrac and a test set of the remainder (the paper's 2/3-1/3 split).
func (d *Dataset) Split(seed uint64, trainFrac float64) (train, test *Dataset) {
	idx := rand.New(rand.NewPCG(seed, seed^0xA0761D6478BD642F)).Perm(d.Len())
	cut := int(float64(d.Len()) * trainFrac)
	return d.Subset(idx[:cut]), d.Subset(idx[cut:])
}

// Folds partitions row indices into k shuffled folds for cross-validation;
// fold i is the validation set of round i.
func (d *Dataset) Folds(seed uint64, k int) [][]int {
	if k < 2 {
		k = 2
	}
	idx := rand.New(rand.NewPCG(seed, seed*2654435761+1)).Perm(d.Len())
	folds := make([][]int, k)
	for i, j := range idx {
		folds[i%k] = append(folds[i%k], j)
	}
	return folds
}

// TrainFold returns all indices not in folds[i].
func TrainFold(folds [][]int, i int) []int {
	var out []int
	for j, f := range folds {
		if j != i {
			out = append(out, f...)
		}
	}
	return out
}

// Sample returns a random subset of at most n rows (the Appendix C grid
// search samples 250k records).
func (d *Dataset) Sample(seed uint64, n int) *Dataset {
	if n >= d.Len() {
		return d
	}
	idx := rand.New(rand.NewPCG(seed, seed+7)).Perm(d.Len())[:n]
	return d.Subset(idx)
}

// Clone deep-copies the feature matrix (transformers that mutate in place
// operate on clones).
func (d *Dataset) Clone() *Dataset {
	x := make([][]float64, len(d.X))
	for i := range d.X {
		x[i] = append([]float64(nil), d.X[i]...)
	}
	return &Dataset{X: x, Y: append([]int(nil), d.Y...), Names: d.Names}
}
