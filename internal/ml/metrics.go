package ml

import "fmt"

// Confusion is a binary confusion matrix (positive class = 1 = DDoS).
type Confusion struct {
	TP, TN, FP, FN int
}

// Confuse tallies predictions against truth.
func Confuse(yTrue, yPred []int) Confusion {
	var c Confusion
	for i := range yTrue {
		switch {
		case yTrue[i] == 1 && yPred[i] == 1:
			c.TP++
		case yTrue[i] == 0 && yPred[i] == 0:
			c.TN++
		case yTrue[i] == 0 && yPred[i] == 1:
			c.FP++
		default:
			c.FN++
		}
	}
	return c
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// TPR returns the true positive rate (recall).
func (c Confusion) TPR() float64 { return ratio(c.TP, c.TP+c.FN) }

// TNR returns the true negative rate.
func (c Confusion) TNR() float64 { return ratio(c.TN, c.TN+c.FP) }

// FPR returns the false positive rate.
func (c Confusion) FPR() float64 { return ratio(c.FP, c.FP+c.TN) }

// FNR returns the false negative rate.
func (c Confusion) FNR() float64 { return ratio(c.FN, c.FN+c.TP) }

// Precision returns TP / (TP + FP).
func (c Confusion) Precision() float64 { return ratio(c.TP, c.TP+c.FP) }

// Recall is an alias of TPR.
func (c Confusion) Recall() float64 { return c.TPR() }

// F1 returns the harmonic mean of precision and recall, computed as in the
// paper: tp / (tp + (fp+fn)/2).
func (c Confusion) F1() float64 {
	den := float64(c.TP) + 0.5*float64(c.FP+c.FN)
	if den == 0 {
		return 0
	}
	return float64(c.TP) / den
}

// FBeta returns the Fβ score; the paper uses β = 0.5 to weight false
// positives more heavily than false negatives:
// Fβ = (1+β²)·tp / ((1+β²)·tp + β²·fn + fp).
func (c Confusion) FBeta(beta float64) float64 {
	b2 := beta * beta
	den := (1+b2)*float64(c.TP) + b2*float64(c.FN) + float64(c.FP)
	if den == 0 {
		return 0
	}
	return (1 + b2) * float64(c.TP) / den
}

// Accuracy returns (TP+TN)/N.
func (c Confusion) Accuracy() float64 {
	return ratio(c.TP+c.TN, c.TP+c.TN+c.FP+c.FN)
}

// String renders the matrix with headline scores.
func (c Confusion) String() string {
	return fmt.Sprintf("tp=%d tn=%d fp=%d fn=%d F1=%.3f Fβ=0.5=%.3f",
		c.TP, c.TN, c.FP, c.FN, c.F1(), c.FBeta(0.5))
}
