package bayes

import (
	"strings"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/ml/mltest"
)

func toUnit(x [][]float64) [][]float64 {
	// Shift/scale into [0,1] for the counting variants.
	lo, hi := x[0][0], x[0][0]
	for _, row := range x {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(row))
		for j, v := range row {
			o[j] = (v - lo) / (hi - lo)
		}
		out[i] = o
	}
	return out
}

func TestGaussianBlobs(t *testing.T) {
	x, y := mltest.Blobs(1, 400, 5, 3)
	m := New(DefaultOptions(Gaussian))
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := mltest.Blobs(2, 200, 5, 3)
	if acc := mltest.Accuracy(yt, m.Predict(xt)); acc < 0.97 {
		t.Errorf("gaussian NB accuracy = %.3f (blobs are its ideal case)", acc)
	}
}

// proportionData builds classes that differ in feature *proportions* (what
// multinomial models discriminate on): class 0 concentrates mass on the
// first half of the features, class 1 on the second half.
func proportionData(seed uint64, n int) ([][]float64, []int) {
	x := make([][]float64, 0, 2*n)
	y := make([]int, 0, 2*n)
	for c := 0; c < 2; c++ {
		for i := 0; i < n; i++ {
			row := make([]float64, 6)
			for j := range row {
				base := 0.1
				if (j < 3) == (c == 0) {
					base = 1.0
				}
				row[j] = base * (0.5 + float64((int(seed)+i*7+j*13)%100)/100.0)
			}
			x = append(x, row)
			y = append(y, c)
		}
	}
	return x, y
}

func TestCountingVariants(t *testing.T) {
	x, y := proportionData(3, 300)
	xt, yt := proportionData(1234, 150)
	for _, kind := range []Kind{Multinomial, Complement, Bernoulli} {
		m := New(DefaultOptions(kind))
		if err := m.Fit(x, y); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		acc := mltest.Accuracy(yt, m.Predict(xt))
		if acc < 0.9 {
			t.Errorf("%v accuracy = %.3f", kind, acc)
		}
	}
}

func TestMultinomialRejectsNegative(t *testing.T) {
	m := New(DefaultOptions(Multinomial))
	err := m.Fit([][]float64{{1, -2}, {3, 4}}, []int{0, 1})
	if err == nil || !strings.Contains(err.Error(), "non-negative") {
		t.Fatalf("err = %v, want non-negative complaint", err)
	}
}

func TestSingleClassRejected(t *testing.T) {
	m := New(DefaultOptions(Gaussian))
	if err := m.Fit([][]float64{{1}, {2}}, []int{1, 1}); err == nil {
		t.Fatal("single-class training must error (no class-conditional contrast)")
	}
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("empty set must error")
	}
}

func TestKindString(t *testing.T) {
	for kind, want := range map[Kind]string{
		Gaussian: "NB-G", Multinomial: "NB-M", Complement: "NB-C", Bernoulli: "NB-B",
	} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q, want %q", kind, kind.String(), want)
		}
	}
}

func TestGaussianVarSmoothing(t *testing.T) {
	// A constant feature has zero variance; smoothing must prevent division
	// by zero and keep predictions finite.
	x := [][]float64{{1, 5}, {2, 5}, {10, 5}, {11, 5}}
	y := []int{0, 0, 1, 1}
	m := New(Options{Kind: Gaussian, VarSmoothing: 1e-9})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := m.Predict([][]float64{{1.5, 5}, {10.5, 5}})
	if pred[0] != 0 || pred[1] != 1 {
		t.Errorf("pred = %v", pred)
	}
}

func TestComplementDiffersFromMultinomial(t *testing.T) {
	// On imbalanced data CNB and MNB must not be identical models.
	x, y := mltest.Blobs(5, 300, 4, 2)
	var xi [][]float64
	var yi []int
	kept := 0
	for i := range x {
		if y[i] == 1 {
			if kept > 30 {
				continue
			}
			kept++
		}
		xi = append(xi, x[i])
		yi = append(yi, y[i])
	}
	xu := toUnit(xi)
	mn := New(DefaultOptions(Multinomial))
	cn := New(DefaultOptions(Complement))
	if err := mn.Fit(xu, yi); err != nil {
		t.Fatal(err)
	}
	if err := cn.Fit(xu, yi); err != nil {
		t.Fatal(err)
	}
	diff := false
	for _, row := range xu {
		if mn.Score(row) != cn.Score(row) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("complement NB scores identical to multinomial NB")
	}
}

func BenchmarkGaussianPredict(b *testing.B) {
	x, y := mltest.Blobs(1, 1000, 20, 2)
	m := New(DefaultOptions(Gaussian))
	if err := m.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(x[i%len(x)])
	}
}
