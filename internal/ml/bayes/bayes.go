// Package bayes implements the four naive Bayes variants of the paper's
// model comparison: Gaussian (NB-G), multinomial (NB-M), complement (NB-C)
// and Bernoulli (NB-B). The non-Gaussian variants expect non-negative
// inputs and are fed min-max-normalized features by their Figure 8
// pipelines.
package bayes

import (
	"fmt"
	"math"
)

// Kind selects the naive Bayes variant.
type Kind int

// Variants.
const (
	Gaussian Kind = iota
	Multinomial
	Complement
	Bernoulli
)

// String names the variant as in the paper's tables.
func (k Kind) String() string {
	switch k {
	case Gaussian:
		return "NB-G"
	case Multinomial:
		return "NB-M"
	case Complement:
		return "NB-C"
	case Bernoulli:
		return "NB-B"
	default:
		return fmt.Sprintf("NB(%d)", int(k))
	}
}

// Options are the naive Bayes hyperparameters (Appendix C grid).
type Options struct {
	Kind Kind
	// VarSmoothing applies to the Gaussian variant (grid 1e-9 .. 1).
	VarSmoothing float64
	// Alpha is the additive smoothing of the counting variants
	// (grid 1e-8 .. 10).
	Alpha float64
	// BinarizeAt thresholds features for the Bernoulli variant.
	BinarizeAt float64
}

// DefaultOptions returns sensible defaults per variant.
func DefaultOptions(kind Kind) Options {
	return Options{Kind: kind, VarSmoothing: 1e-9, Alpha: 1.0, BinarizeAt: 0.5}
}

// Model is a fitted naive Bayes classifier.
type Model struct {
	opts Options
	// class priors (log).
	logPrior [2]float64
	// Gaussian: per class per feature mean/variance.
	mean, vari [2][]float64
	// Counting variants: per class per feature log probabilities.
	logProb [2][]float64
	// Bernoulli: log(1-p) complement table.
	logProbNeg [2][]float64
	cols       int
}

// New returns an unfitted model.
func New(opts Options) *Model {
	if opts.VarSmoothing <= 0 {
		opts.VarSmoothing = 1e-9
	}
	if opts.Alpha <= 0 {
		opts.Alpha = 1e-10
	}
	return &Model{opts: opts}
}

// Fit estimates the class-conditional distributions.
func (m *Model) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return fmt.Errorf("bayes: empty training set")
	}
	rows, cols := len(x), len(x[0])
	m.cols = cols
	var count [2]int
	for _, v := range y {
		count[v]++
	}
	if count[0] == 0 || count[1] == 0 {
		return fmt.Errorf("bayes: training set has a single class")
	}
	for c := 0; c < 2; c++ {
		m.logPrior[c] = math.Log(float64(count[c]) / float64(rows))
	}

	switch m.opts.Kind {
	case Gaussian:
		var maxVar float64
		for c := 0; c < 2; c++ {
			m.mean[c] = make([]float64, cols)
			m.vari[c] = make([]float64, cols)
		}
		for i, row := range x {
			c := y[i]
			for j, v := range row {
				m.mean[c][j] += v
			}
		}
		for c := 0; c < 2; c++ {
			for j := range m.mean[c] {
				m.mean[c][j] /= float64(count[c])
			}
		}
		for i, row := range x {
			c := y[i]
			for j, v := range row {
				d := v - m.mean[c][j]
				m.vari[c][j] += d * d
			}
		}
		for c := 0; c < 2; c++ {
			for j := range m.vari[c] {
				m.vari[c][j] /= float64(count[c])
				if m.vari[c][j] > maxVar {
					maxVar = m.vari[c][j]
				}
			}
		}
		smooth := m.opts.VarSmoothing * maxVar
		if smooth <= 0 {
			smooth = 1e-12
		}
		for c := 0; c < 2; c++ {
			for j := range m.vari[c] {
				m.vari[c][j] += smooth
			}
		}

	case Multinomial, Complement:
		var sums [2][]float64
		var totals [2]float64
		for c := 0; c < 2; c++ {
			sums[c] = make([]float64, cols)
		}
		for i, row := range x {
			c := y[i]
			for j, v := range row {
				if v < 0 {
					return fmt.Errorf("bayes: %s requires non-negative features (row %d col %d = %v)", m.opts.Kind, i, j, v)
				}
				sums[c][j] += v
				totals[c] += v
			}
		}
		for c := 0; c < 2; c++ {
			m.logProb[c] = make([]float64, cols)
			src := c
			if m.opts.Kind == Complement {
				src = 1 - c // complement: use the other class's counts
			}
			den := totals[src] + m.opts.Alpha*float64(cols)
			for j := 0; j < cols; j++ {
				p := (sums[src][j] + m.opts.Alpha) / den
				m.logProb[c][j] = math.Log(p)
				if m.opts.Kind == Complement {
					// CNB weights are the negated complement log-probs.
					m.logProb[c][j] = -m.logProb[c][j]
				}
			}
		}

	case Bernoulli:
		var on [2][]float64
		for c := 0; c < 2; c++ {
			on[c] = make([]float64, cols)
		}
		for i, row := range x {
			c := y[i]
			for j, v := range row {
				if v > m.opts.BinarizeAt {
					on[c][j]++
				}
			}
		}
		for c := 0; c < 2; c++ {
			m.logProb[c] = make([]float64, cols)
			m.logProbNeg[c] = make([]float64, cols)
			den := float64(count[c]) + 2*m.opts.Alpha
			for j := 0; j < cols; j++ {
				p := (on[c][j] + m.opts.Alpha) / den
				m.logProb[c][j] = math.Log(p)
				m.logProbNeg[c][j] = math.Log(1 - p)
			}
		}
	default:
		return fmt.Errorf("bayes: unknown kind %d", m.opts.Kind)
	}
	return nil
}

// logLikelihood returns the joint log likelihood of the row under class c.
func (m *Model) logLikelihood(row []float64, c int) float64 {
	ll := m.logPrior[c]
	switch m.opts.Kind {
	case Gaussian:
		for j, v := range row {
			if j >= m.cols {
				break
			}
			d := v - m.mean[c][j]
			ll += -0.5*math.Log(2*math.Pi*m.vari[c][j]) - d*d/(2*m.vari[c][j])
		}
	case Multinomial, Complement:
		for j, v := range row {
			if j >= m.cols {
				break
			}
			if v < 0 {
				v = 0
			}
			ll += v * m.logProb[c][j]
		}
	case Bernoulli:
		for j, v := range row {
			if j >= m.cols {
				break
			}
			if v > m.opts.BinarizeAt {
				ll += m.logProb[c][j]
			} else {
				ll += m.logProbNeg[c][j]
			}
		}
	}
	return ll
}

// Score returns the log-likelihood margin of the positive class.
func (m *Model) Score(row []float64) float64 {
	return m.logLikelihood(row, 1) - m.logLikelihood(row, 0)
}

// Predict labels rows by maximum joint likelihood.
func (m *Model) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		if m.Score(row) >= 0 {
			out[i] = 1
		}
	}
	return out
}
