package sflow

import (
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// Allocation budgets for the ingest hot path. DecodeInto into warm scratch
// and the batched HandleDatagram loop must be allocation-free at steady
// state: every malloc here is paid per datagram at IXP line rate. The
// HandleDatagram gate tolerates a fractional average because sync.Pool may
// be drained by a mid-test GC.
func TestDecodeIntoAllocs(t *testing.T) {
	buf, err := Append(nil, sampleDatagram())
	if err != nil {
		t.Fatal(err)
	}
	var d Datagram
	if err := DecodeInto(&d, buf); err != nil { // warm the scratch
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := DecodeInto(&d, buf); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("DecodeInto allocs/run = %v, budget 0", avg)
	}
}

func TestHandleDatagramBatchAllocs(t *testing.T) {
	buf, err := Append(nil, sampleDatagram())
	if err != nil {
		t.Fatal(err)
	}
	var delivered int
	c := &Collector{
		Clock:     func() int64 { return 1700000000 },
		EmitBatch: func(recs []netflow.Record) { delivered += len(recs) },
	}
	for i := 0; i < 200; i++ { // warm pool scratch and batch capacity
		c.HandleDatagram(buf)
	}
	c.Flush()
	avg := testing.AllocsPerRun(500, func() { c.HandleDatagram(buf) })
	if avg >= 0.5 {
		t.Errorf("HandleDatagram allocs/run = %v, budget <0.5 (steady state 0)", avg)
	}
	c.Flush()
	if delivered == 0 {
		t.Fatal("no records delivered")
	}
}

func BenchmarkDecodeInto(b *testing.B) {
	buf, err := Append(nil, sampleDatagram())
	if err != nil {
		b.Fatal(err)
	}
	var d Datagram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(&d, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeFresh is the pre-PR allocating path kept for the
// old-vs-new comparison scripts/bench.sh records into BENCH_PR3.json.
func BenchmarkDecodeFresh(b *testing.B) {
	buf, err := Append(nil, sampleDatagram())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
