package sflow

import "testing"

func FuzzDecode(f *testing.F) {
	if buf, err := Append(nil, sampleDatagram()); err == nil {
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Decode(data) // must never panic
	})
}
