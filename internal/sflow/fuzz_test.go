package sflow

import (
	"encoding/binary"
	"net/netip"
	"reflect"
	"testing"
)

// fuzzSeeds builds a corpus of realistic datagrams: the canonical two-sample
// datagram, a v6 agent, a datagram with an unknown (counter) sample to skip,
// a many-sample datagram, and an empty one.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte
	add := func(d *Datagram) {
		buf, err := Append(nil, d)
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, buf)
	}
	add(sampleDatagram())

	v6 := sampleDatagram()
	v6.AgentAddress = netip.MustParseAddr("2001:db8::17")
	add(v6)

	add(&Datagram{AgentAddress: netip.MustParseAddr("10.9.9.9"), Sequence: 9})

	many := &Datagram{AgentAddress: netip.MustParseAddr("10.0.0.5"), Sequence: 3}
	for i := 0; i < 12; i++ {
		many.Samples = append(many.Samples, FlowSample{
			Sequence:     uint32(i),
			SamplingRate: 1024,
			FrameLength:  uint32(100 + i),
			Header:       udpFrame([4]byte{192, 0, 2, byte(i)}, [4]byte{203, 0, 113, byte(i)}, 1000, uint16(2000+i), 40+i),
		})
	}
	add(many)

	// Hand-build a datagram whose first sample is a counter sample (format
	// 2) that must be skipped by length, followed by a real flow sample.
	base, err := Append(nil, sampleDatagram())
	if err != nil {
		tb.Fatal(err)
	}
	mixed := append([]byte(nil), base[:28]...) // header up to sample count
	binary.BigEndian.PutUint32(mixed[24:28], 3)
	counter := []byte{0, 0, 0, byte(sampleCounter), 0, 0, 0, 8, 1, 2, 3, 4, 5, 6, 7, 8}
	mixed = append(mixed, counter...)
	mixed = append(mixed, base[28:]...)
	seeds = append(seeds, mixed)

	// Truncations at interesting offsets exercise every ErrTruncated path.
	for _, cut := range []int{3, 7, 20, 27, 35, len(base) - 1} {
		if cut < len(base) {
			seeds = append(seeds, base[:cut])
		}
	}
	return seeds
}

func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Decode(data) // must never panic
	})
}

// cloneSamples deep-copies decoded samples, including Header bytes, so a
// snapshot survives both input-buffer and scratch-struct reuse.
func cloneSamples(samples []FlowSample) []FlowSample {
	out := make([]FlowSample, len(samples))
	for i, s := range samples {
		out[i] = s
		if s.Header != nil {
			out[i].Header = append([]byte(nil), s.Header...)
		}
	}
	return out
}

// FuzzDecodeInto drives the pooled decode path: DecodeInto must agree with
// the allocating Decode on arbitrary input, and decoding a second datagram
// into the same scratch must neither corrupt earlier results (no aliasing
// across datagrams) nor leak stale samples into the new ones.
func FuzzDecodeInto(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	next, err := Append(nil, sampleDatagram())
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fresh, freshErr := Decode(data)

		var reused Datagram
		intoErr := DecodeInto(&reused, data)
		if (freshErr == nil) != (intoErr == nil) {
			t.Fatalf("Decode err = %v, DecodeInto err = %v", freshErr, intoErr)
		}
		if freshErr != nil {
			return
		}
		if !reflect.DeepEqual(*fresh, reused) {
			t.Fatalf("DecodeInto diverged from Decode:\n  fresh: %+v\n  into:  %+v", *fresh, reused)
		}

		snapshot := cloneSamples(reused.Samples)

		// Reuse the scratch for a different datagram.
		if err := DecodeInto(&reused, next); err != nil {
			t.Fatalf("DecodeInto(next) = %v", err)
		}
		want, err := Decode(next)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*want, reused) {
			t.Fatalf("reused scratch diverged on second datagram:\n  fresh: %+v\n  into:  %+v", *want, reused)
		}

		// The first decode's samples must be untouched by the reuse.
		again, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cloneSamples(again.Samples), snapshot) {
			t.Fatal("first datagram's samples changed after scratch reuse")
		}
	})
}
