package sflow

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/netip"
	"sync/atomic"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/packet"
)

// Labeler decides whether a destination IP was blackholed at a given time.
// *bgp.Registry's Covered method satisfies this signature.
type Labeler func(ip netip.Addr, at int64) bool

// CollectorStats counts collector activity; all fields are updated
// atomically and safe to read concurrently.
type CollectorStats struct {
	Datagrams   atomic.Uint64
	Samples     atomic.Uint64
	Records     atomic.Uint64
	Truncated   atomic.Uint64 // datagrams rejected as truncated
	DecodeErrs  atomic.Uint64 // datagrams/samples malformed beyond truncation
	NonIP       atomic.Uint64
	Blackholed  atomic.Uint64
}

// Collector receives sFlow v5 datagrams over UDP, converts each flow sample
// into a netflow.Record (scaling packet and byte counts by the sampling
// rate), labels it against the blackhole registry, and hands it to Emit.
type Collector struct {
	// Label classifies destination IPs; nil means nothing is blackholed.
	Label Labeler
	// Emit receives each converted record. It is called from the receive
	// loop, so it must be fast or hand off to a channel.
	Emit func(*netflow.Record)
	// Clock supplies record timestamps; defaults to time.Now().Unix.
	Clock func() int64
	Log   *slog.Logger

	Stats CollectorStats
}

// SampleToRecord converts one flow sample into a flow record. It returns
// false when the sample does not contain a decodable IP packet.
func (c *Collector) SampleToRecord(s *FlowSample, at int64, rec *netflow.Record) bool {
	var p packet.Packet
	if err := p.Decode(s.Header); err != nil {
		c.Stats.DecodeErrs.Add(1)
		return false
	}
	rate := s.SamplingRate
	if rate == 0 {
		rate = 1
	}
	*rec = netflow.Record{
		Timestamp:    at,
		Protocol:     uint8(p.Protocol()),
		SrcMAC:       p.Eth.SrcMAC,
		DstMAC:       p.Eth.DstMAC,
		Packets:      uint64(rate),
		Bytes:        uint64(rate) * uint64(s.FrameLength),
		SamplingRate: rate,
	}
	switch {
	case p.Has(packet.LayerIPv4):
		rec.SrcIP = netip.AddrFrom4(p.IP4.SrcIP)
		rec.DstIP = netip.AddrFrom4(p.IP4.DstIP)
		rec.Fragment = p.IP4.FragOffset != 0
	case p.Has(packet.LayerIPv6):
		rec.SrcIP = netip.AddrFrom16(p.IP6.SrcIP)
		rec.DstIP = netip.AddrFrom16(p.IP6.DstIP)
	default:
		c.Stats.NonIP.Add(1)
		return false
	}
	rec.SrcPort, rec.DstPort = p.Ports()
	if p.Has(packet.LayerTCP) {
		rec.TCPFlags = p.TCP.Flags
	}
	if c.Label != nil && c.Label(rec.DstIP, at) {
		rec.Blackholed = true
		c.Stats.Blackholed.Add(1)
	}
	return true
}

// HandleDatagram decodes one datagram payload and emits its records.
func (c *Collector) HandleDatagram(data []byte) {
	d, err := Decode(data)
	if err != nil {
		if errors.Is(err, ErrTruncated) {
			c.Stats.Truncated.Add(1)
		} else {
			c.Stats.DecodeErrs.Add(1)
		}
		if c.Log != nil {
			c.Log.Debug("sflow decode failed", "err", err)
		}
		return
	}
	c.Stats.Datagrams.Add(1)
	at := c.now()
	var rec netflow.Record
	for i := range d.Samples {
		c.Stats.Samples.Add(1)
		if !c.SampleToRecord(&d.Samples[i], at, &rec) {
			continue
		}
		c.Stats.Records.Add(1)
		if c.Emit != nil {
			c.Emit(&rec)
		}
	}
}

func (c *Collector) now() int64 {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now().Unix()
}

// Listen receives datagrams on conn until the context is canceled. It always
// closes conn before returning.
func (c *Collector) Listen(ctx context.Context, conn net.PacketConn) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		conn.Close()
	}()

	buf := make([]byte, 65536)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("sflow: read: %w", err)
		}
		c.HandleDatagram(buf[:n])
	}
}

// Exporter sends sFlow datagrams over UDP; the simulated IXP fabric uses it
// to emulate member switches.
type Exporter struct {
	conn  net.Conn
	agent netip.Addr
	seq   uint32
	buf   []byte
}

// NewExporter dials the collector address.
func NewExporter(collectorAddr string, agent netip.Addr) (*Exporter, error) {
	conn, err := net.Dial("udp", collectorAddr)
	if err != nil {
		return nil, fmt.Errorf("sflow: dial %s: %w", collectorAddr, err)
	}
	return &Exporter{conn: conn, agent: agent}, nil
}

// Send exports a batch of flow samples as one datagram.
func (e *Exporter) Send(samples []FlowSample) error {
	e.seq++
	d := Datagram{
		AgentAddress: e.agent,
		Sequence:     e.seq,
		Uptime:       e.seq * 1000,
		Samples:      samples,
	}
	buf, err := Append(e.buf[:0], &d)
	if err != nil {
		return err
	}
	e.buf = buf
	if _, err := e.conn.Write(buf); err != nil {
		return fmt.Errorf("sflow: send: %w", err)
	}
	return nil
}

// Close releases the exporter's socket.
func (e *Exporter) Close() error { return e.conn.Close() }
