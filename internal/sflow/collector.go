package sflow

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/netip"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/packet"
)

// Labeler decides whether a destination IP was blackholed at a given time.
// *bgp.Registry's Covered method satisfies this signature.
type Labeler func(ip netip.Addr, at int64) bool

// CollectorStats counts collector activity; all fields are updated
// atomically and safe to read concurrently.
type CollectorStats struct {
	Datagrams  atomic.Uint64
	Samples    atomic.Uint64
	Records    atomic.Uint64
	Truncated  atomic.Uint64 // datagrams rejected as truncated
	DecodeErrs atomic.Uint64 // datagrams/samples malformed beyond truncation
	NonIP      atomic.Uint64
	Blackholed atomic.Uint64
	Panics     atomic.Uint64 // datagram handlers that panicked (recovered)
}

// DefaultBatchSize is the record batch delivered downstream per EmitBatch
// call. 256 records amortize the downstream lock and channel costs to noise
// while still flushing several times per second at IXP-scale sample rates.
const DefaultBatchSize = 256

// DefaultFlushInterval bounds how long a partial batch may sit in the
// collector when the datagram stream pauses.
const DefaultFlushInterval = 50 * time.Millisecond

// dgPool recycles decode scratch across datagrams (and across collectors):
// the Datagram's Samples array is the only per-datagram allocation of the
// decode path, so reusing it makes HandleDatagram allocation-free at steady
// state.
var dgPool = sync.Pool{New: func() any { return new(Datagram) }}

// Collector receives sFlow v5 datagrams over UDP, converts each flow sample
// into a netflow.Record (scaling packet and byte counts by the sampling
// rate), labels it against the blackhole registry, and hands it downstream.
type Collector struct {
	// Label classifies destination IPs; nil means nothing is blackholed.
	Label Labeler
	// EmitBatch receives converted records in batches of up to BatchSize.
	// The slice (and its records) is reused after the call returns:
	// receivers must consume or copy it synchronously. Preferred over Emit
	// on the hot path — one downstream handoff per batch instead of per
	// record.
	EmitBatch func([]netflow.Record)
	// Emit receives each converted record when EmitBatch is nil. It is
	// called from the receive loop, so it must be fast or hand off to a
	// channel.
	Emit func(*netflow.Record)
	// BatchSize caps the EmitBatch batch; 0 means DefaultBatchSize.
	BatchSize int
	// FlushInterval bounds the latency of a partial batch while the
	// datagram stream is idle; 0 means DefaultFlushInterval. Only Listen
	// enforces it (HandleDatagram callers flush explicitly).
	FlushInterval time.Duration
	// Clock supplies record timestamps; defaults to time.Now().Unix.
	Clock func() int64
	Log   *slog.Logger

	Stats CollectorStats

	// batch accumulates records across datagrams until BatchSize is
	// reached. HandleDatagram and Flush must be called from one goroutine
	// at a time (Listen is that goroutine); Stats stays atomic so scrapes
	// may race freely.
	batch []netflow.Record
}

// SampleToRecord converts one flow sample into a flow record. It returns
// false when the sample does not contain a decodable IP packet.
func (c *Collector) SampleToRecord(s *FlowSample, at int64, rec *netflow.Record) bool {
	var p packet.Packet
	if err := p.Decode(s.Header); err != nil {
		c.Stats.DecodeErrs.Add(1)
		return false
	}
	rate := s.SamplingRate
	if rate == 0 {
		rate = 1
	}
	*rec = netflow.Record{
		Timestamp:    at,
		Protocol:     uint8(p.Protocol()),
		SrcMAC:       p.Eth.SrcMAC,
		DstMAC:       p.Eth.DstMAC,
		Packets:      uint64(rate),
		Bytes:        uint64(rate) * uint64(s.FrameLength),
		SamplingRate: rate,
	}
	switch {
	case p.Has(packet.LayerIPv4):
		rec.SrcIP = netip.AddrFrom4(p.IP4.SrcIP)
		rec.DstIP = netip.AddrFrom4(p.IP4.DstIP)
		rec.Fragment = p.IP4.FragOffset != 0
	case p.Has(packet.LayerIPv6):
		rec.SrcIP = netip.AddrFrom16(p.IP6.SrcIP)
		rec.DstIP = netip.AddrFrom16(p.IP6.DstIP)
	default:
		c.Stats.NonIP.Add(1)
		return false
	}
	rec.SrcPort, rec.DstPort = p.Ports()
	if p.Has(packet.LayerTCP) {
		rec.TCPFlags = p.TCP.Flags
	}
	if c.Label != nil && c.Label(rec.DstIP, at) {
		rec.Blackholed = true
		c.Stats.Blackholed.Add(1)
	}
	return true
}

func (c *Collector) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return DefaultBatchSize
}

// HandleDatagram decodes one datagram payload and hands its records
// downstream: into the pending batch when EmitBatch is set (delivered once
// BatchSize accumulates — call Flush to force a partial batch out), else
// record-by-record through Emit. Not safe for concurrent calls with itself
// or Flush.
func (c *Collector) HandleDatagram(data []byte) {
	d := dgPool.Get().(*Datagram)
	defer dgPool.Put(d)
	if err := DecodeInto(d, data); err != nil {
		if errors.Is(err, ErrTruncated) {
			c.Stats.Truncated.Add(1)
		} else {
			c.Stats.DecodeErrs.Add(1)
		}
		if c.Log != nil {
			c.Log.Debug("sflow decode failed", "err", err)
		}
		return
	}
	c.Stats.Datagrams.Add(1)
	c.Stats.Samples.Add(uint64(len(d.Samples)))
	at := c.now()
	if c.EmitBatch == nil {
		// Legacy per-record path.
		var records uint64
		var rec netflow.Record
		for i := range d.Samples {
			if !c.SampleToRecord(&d.Samples[i], at, &rec) {
				continue
			}
			records++
			if c.Emit != nil {
				c.Emit(&rec)
			}
		}
		c.Stats.Records.Add(records)
		return
	}
	var records uint64
	size := c.batchSize()
	for i := range d.Samples {
		// Convert straight into the batch slot: no per-record copies.
		if len(c.batch) < cap(c.batch) {
			c.batch = c.batch[:len(c.batch)+1]
		} else {
			c.batch = append(c.batch, netflow.Record{})
		}
		slot := &c.batch[len(c.batch)-1]
		if !c.SampleToRecord(&d.Samples[i], at, slot) {
			c.batch = c.batch[:len(c.batch)-1]
			continue
		}
		records++
		if len(c.batch) >= size {
			c.flushBatch()
		}
	}
	c.Stats.Records.Add(records)
}

// safeHandle isolates a panic in the datagram path (a decode bug tripped by
// hostile input, a panicking Label or EmitBatch hook) to the one datagram:
// the collector counts it, discards the possibly half-converted pending
// batch, and keeps receiving. One poisoned exporter must not take the whole
// collector goroutine down with it.
func (c *Collector) safeHandle(data []byte) {
	defer func() {
		if r := recover(); r != nil {
			c.Stats.Panics.Add(1)
			c.batch = c.batch[:0]
			if c.Log != nil {
				c.Log.Error("sflow datagram handler panicked", "panic", r)
			}
		}
	}()
	c.HandleDatagram(data)
}

// Flush delivers a pending partial batch downstream.
func (c *Collector) Flush() { c.flushBatch() }

func (c *Collector) flushBatch() {
	if len(c.batch) == 0 || c.EmitBatch == nil {
		return
	}
	c.EmitBatch(c.batch)
	c.batch = c.batch[:0]
}

func (c *Collector) now() int64 {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now().Unix()
}

// Listen receives datagrams on conn until the context is canceled. It always
// closes conn before returning. While a partial batch is pending, reads run
// under FlushInterval deadlines so an idle stream cannot strand records in
// the collector.
func (c *Collector) Listen(ctx context.Context, conn net.PacketConn) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		conn.Close()
	}()

	flushEvery := c.FlushInterval
	if flushEvery <= 0 {
		flushEvery = DefaultFlushInterval
	}
	buf := make([]byte, 65536)
	armed := false // a read deadline is set iff a partial batch is pending
	for {
		if pending := len(c.batch) > 0; pending != armed {
			armed = pending
			var deadline time.Time
			if pending {
				deadline = time.Now().Add(flushEvery)
			}
			_ = conn.SetReadDeadline(deadline)
		} else if armed {
			_ = conn.SetReadDeadline(time.Now().Add(flushEvery))
		}
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				c.flushBatch()
				continue
			}
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				c.flushBatch()
				return nil
			}
			return fmt.Errorf("sflow: read: %w", err)
		}
		c.safeHandle(buf[:n])
	}
}

// Exporter sends sFlow datagrams over UDP; the simulated IXP fabric uses it
// to emulate member switches.
type Exporter struct {
	conn  net.Conn
	agent netip.Addr
	seq   uint32
	buf   []byte
}

// NewExporter dials the collector address.
func NewExporter(collectorAddr string, agent netip.Addr) (*Exporter, error) {
	conn, err := net.Dial("udp", collectorAddr)
	if err != nil {
		return nil, fmt.Errorf("sflow: dial %s: %w", collectorAddr, err)
	}
	return &Exporter{conn: conn, agent: agent}, nil
}

// Send exports a batch of flow samples as one datagram.
func (e *Exporter) Send(samples []FlowSample) error {
	e.seq++
	d := Datagram{
		AgentAddress: e.agent,
		Sequence:     e.seq,
		Uptime:       e.seq * 1000,
		Samples:      samples,
	}
	buf, err := Append(e.buf[:0], &d)
	if err != nil {
		return err
	}
	e.buf = buf
	if _, err := e.conn.Write(buf); err != nil {
		return fmt.Errorf("sflow: send: %w", err)
	}
	return nil
}

// Close releases the exporter's socket.
func (e *Exporter) Close() error { return e.conn.Close() }
