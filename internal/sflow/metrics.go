package sflow

import "github.com/ixp-scrubber/ixpscrubber/internal/obs"

// RegisterMetrics exposes the collector's counters through the registry as
// scrape-time function metrics under the shared ixps_collector_* families,
// labeled proto="sflow". The hot path keeps updating the same atomics it
// always did; scraping reads them on demand, so instrumentation adds zero
// per-datagram cost.
func (c *Collector) RegisterMetrics(r *obs.Registry) {
	const proto = "sflow"
	u64 := func(a interface{ Load() uint64 }) func() float64 {
		return func() float64 { return float64(a.Load()) }
	}
	r.CounterVec("ixps_collector_datagrams_total",
		"Flow export datagrams/messages received and decoded.", "proto").
		WithFunc(u64(&c.Stats.Datagrams), proto)
	r.CounterVec("ixps_collector_truncated_total",
		"Datagrams rejected as truncated.", "proto").
		WithFunc(u64(&c.Stats.Truncated), proto)
	r.CounterVec("ixps_collector_malformed_total",
		"Datagrams or samples rejected as malformed (beyond truncation).", "proto").
		WithFunc(u64(&c.Stats.DecodeErrs), proto)
	r.CounterVec("ixps_collector_samples_total",
		"Flow samples seen inside decoded datagrams.", "proto").
		WithFunc(u64(&c.Stats.Samples), proto)
	r.CounterVec("ixps_collector_records_total",
		"Flow records decoded and emitted downstream.", "proto").
		WithFunc(u64(&c.Stats.Records), proto)
	r.CounterVec("ixps_collector_nonip_total",
		"Samples skipped because the sampled frame carried no IP packet.", "proto").
		WithFunc(u64(&c.Stats.NonIP), proto)
	r.CounterVec("ixps_collector_blackholed_total",
		"Records labeled blackholed against the BGP registry.", "proto").
		WithFunc(u64(&c.Stats.Blackholed), proto)
	r.CounterVec("ixps_collector_panics_total",
		"Recovered panics in the datagram handler (the pending batch is dropped).", "proto").
		WithFunc(u64(&c.Stats.Panics), proto)
}
