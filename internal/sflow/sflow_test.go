package sflow

import (
	"context"
	"errors"
	"net"
	"net/netip"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/packet"
)

func udpFrame(src, dst [4]byte, srcPort, dstPort uint16, payload int) []byte {
	var b packet.Builder
	b.Ethernet(packet.MAC{2, 0, 0, 0, 0, 2}, packet.MAC{2, 0, 0, 0, 0, 1}, packet.EtherTypeIPv4, 0).
		IPv4(src, dst, packet.ProtoUDP, uint16(20+8+payload), packet.IPv4Opts{}).
		UDP(srcPort, dstPort, uint16(8+payload)).
		Payload(payload)
	return append([]byte(nil), b.Bytes()...)
}

func sampleDatagram() *Datagram {
	return &Datagram{
		AgentAddress: netip.MustParseAddr("10.0.0.5"),
		SubAgentID:   1,
		Sequence:     42,
		Uptime:       100000,
		Samples: []FlowSample{
			{
				Sequence:     1,
				SourceID:     7,
				SamplingRate: 2048,
				SamplePool:   2048,
				InputIf:      3,
				OutputIf:     4,
				FrameLength:  468,
				Header:       udpFrame([4]byte{192, 0, 2, 1}, [4]byte{198, 51, 100, 7}, 123, 4444, 100),
			},
			{
				Sequence:     2,
				SourceID:     7,
				SamplingRate: 2048,
				SamplePool:   4096,
				FrameLength:  1500,
				Header:       udpFrame([4]byte{192, 0, 2, 9}, [4]byte{203, 0, 113, 1}, 53, 5555, 64),
			},
		},
	}
}

func TestDatagramRoundTrip(t *testing.T) {
	d := sampleDatagram()
	buf, err := Append(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.AgentAddress != d.AgentAddress || got.Sequence != d.Sequence || got.SubAgentID != d.SubAgentID {
		t.Errorf("header = %+v", got)
	}
	if len(got.Samples) != 2 {
		t.Fatalf("samples = %d", len(got.Samples))
	}
	for i := range d.Samples {
		w, g := d.Samples[i], got.Samples[i]
		if g.SamplingRate != w.SamplingRate || g.FrameLength != w.FrameLength || g.SourceID != w.SourceID {
			t.Errorf("sample %d = %+v, want %+v", i, g, w)
		}
		if string(g.Header) != string(w.Header) {
			t.Errorf("sample %d header mismatch (%d vs %d bytes)", i, len(g.Header), len(w.Header))
		}
	}
}

func TestDatagramIPv6Agent(t *testing.T) {
	d := sampleDatagram()
	d.AgentAddress = netip.MustParseAddr("2001:db8::5")
	buf, err := Append(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.AgentAddress != d.AgentAddress {
		t.Errorf("agent = %v", got.AgentAddress)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	buf, _ := Append(nil, sampleDatagram())
	buf[3] = 4
	if _, err := Decode(buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	buf, _ := Append(nil, sampleDatagram())
	for _, cut := range []int{1, 3, 7, 11, 27, 30, 60, len(buf) - 1} {
		if _, err := Decode(buf[:cut]); err == nil {
			t.Errorf("cut=%d: want error", cut)
		}
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSkipsUnknownSamples(t *testing.T) {
	d := sampleDatagram()
	buf, _ := Append(nil, d)
	// Splice a counter sample (format 2) in front by crafting a datagram
	// with sample count 1 whose sample has an unknown format.
	hdrEnd := 4 + 4 + 4 + 4 + 4 + 4 // version, addrtype, addr4, subagent, seq, uptime
	custom := append([]byte(nil), buf[:hdrEnd]...)
	custom = append(custom, 0, 0, 0, 2) // 2 samples
	custom = append(custom, 0, 0, 0, byte(sampleCounter), 0, 0, 0, 8, 1, 2, 3, 4, 5, 6, 7, 8)
	// Re-append one real flow sample from the original encoding.
	one, _ := Append(nil, &Datagram{AgentAddress: d.AgentAddress, Samples: d.Samples[:1]})
	custom = append(custom, one[hdrEnd+4:]...)

	got, err := Decode(custom)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != 1 {
		t.Fatalf("samples = %d, want 1 (counter sample skipped)", len(got.Samples))
	}
}

func TestSampleToRecord(t *testing.T) {
	c := &Collector{
		Label: func(ip netip.Addr, at int64) bool {
			return ip == netip.MustParseAddr("198.51.100.7")
		},
	}
	d := sampleDatagram()
	var rec netflow.Record
	if !c.SampleToRecord(&d.Samples[0], 1000, &rec) {
		t.Fatal("SampleToRecord returned false")
	}
	if rec.SrcIP != netip.MustParseAddr("192.0.2.1") || rec.DstIP != netip.MustParseAddr("198.51.100.7") {
		t.Errorf("IPs = %v -> %v", rec.SrcIP, rec.DstIP)
	}
	if rec.SrcPort != 123 || rec.DstPort != 4444 {
		t.Errorf("ports = %d/%d", rec.SrcPort, rec.DstPort)
	}
	if rec.Packets != 2048 || rec.Bytes != 2048*468 {
		t.Errorf("scaled counts = %d pkts %d bytes", rec.Packets, rec.Bytes)
	}
	if !rec.Blackholed {
		t.Error("label not applied")
	}
	if !c.SampleToRecord(&d.Samples[1], 1000, &rec) {
		t.Fatal("second sample failed")
	}
	if rec.Blackholed {
		t.Error("benign flow labeled")
	}
}

func TestSampleToRecordNonIP(t *testing.T) {
	var b packet.Builder
	b.Ethernet(packet.MAC{1}, packet.MAC{2}, packet.EtherTypeARP, 0).Payload(28)
	c := &Collector{}
	var rec netflow.Record
	s := FlowSample{SamplingRate: 1024, FrameLength: 60, Header: append([]byte(nil), b.Bytes()...)}
	if c.SampleToRecord(&s, 0, &rec) {
		t.Fatal("ARP frame must not produce a record")
	}
	if c.Stats.NonIP.Load() != 1 {
		t.Error("NonIP counter not bumped")
	}
}

func TestCollectorEndToEnd(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []netflow.Record
	c := &Collector{
		Clock: func() int64 { return 5000 },
		Emit: func(r *netflow.Record) {
			mu.Lock()
			got = append(got, *r)
			mu.Unlock()
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- c.Listen(ctx, pc) }()

	exp, err := NewExporter(pc.LocalAddr().String(), netip.MustParseAddr("10.0.0.5"))
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	if err := exp.Send(sampleDatagram().Samples); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d records, want 2", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	r := got[0]
	mu.Unlock()
	if r.Timestamp != 5000 {
		t.Errorf("timestamp = %d", r.Timestamp)
	}
	if c.Stats.Datagrams.Load() != 1 || c.Stats.Records.Load() != 2 {
		t.Errorf("stats = %+v", &c.Stats)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Listen: %v", err)
	}
}

func TestHandleDatagramGarbage(t *testing.T) {
	c := &Collector{}
	c.HandleDatagram([]byte{1, 2, 3}) // shorter than the version field
	if c.Stats.Truncated.Load() != 1 {
		t.Error("truncated datagram not counted")
	}
	c.HandleDatagram([]byte{0, 0, 0, 99}) // version 99 is not sFlow v5
	if c.Stats.DecodeErrs.Load() != 1 {
		t.Error("decode error not counted")
	}
}

func BenchmarkDecodeDatagram(b *testing.B) {
	buf, err := Append(nil, sampleDatagram())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampleToRecord(b *testing.B) {
	c := &Collector{}
	d := sampleDatagram()
	var rec netflow.Record
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SampleToRecord(&d.Samples[0], 1000, &rec)
	}
}

// TestHandleDatagramBatchMatchesEmit: the batched handoff must deliver
// exactly the records (and stats) of the legacy per-record Emit path, at
// batch sizes that flush mid-datagram and that need a final Flush.
func TestHandleDatagramBatchMatchesEmit(t *testing.T) {
	var payloads [][]byte
	for i := 0; i < 9; i++ {
		d := sampleDatagram()
		for j := range d.Samples {
			d.Samples[j].Sequence = uint32(i*10 + j)
		}
		buf, err := Append(nil, d)
		if err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, buf)
	}

	var want []netflow.Record
	legacy := &Collector{
		Clock: func() int64 { return 5000 },
		Emit:  func(r *netflow.Record) { want = append(want, *r) },
	}
	for _, p := range payloads {
		legacy.HandleDatagram(p)
	}

	for _, size := range []int{1, 3, 256} {
		var got []netflow.Record
		batched := &Collector{
			Clock:     func() int64 { return 5000 },
			BatchSize: size,
			EmitBatch: func(recs []netflow.Record) { got = append(got, recs...) },
		}
		for _, p := range payloads {
			batched.HandleDatagram(p)
		}
		batched.Flush()
		if len(got) != len(want) {
			t.Fatalf("size %d: %d records, want %d", size, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("size %d: record %d = %+v, want %+v", size, i, got[i], want[i])
			}
		}
		if r, w := batched.Stats.Records.Load(), legacy.Stats.Records.Load(); r != w {
			t.Errorf("size %d: Stats.Records = %d, want %d", size, r, w)
		}
		if d, w := batched.Stats.Datagrams.Load(), legacy.Stats.Datagrams.Load(); d != w {
			t.Errorf("size %d: Stats.Datagrams = %d, want %d", size, d, w)
		}
	}
}

// TestListenIdleFlush: a partial batch must reach EmitBatch via the idle
// deadline without further datagrams arriving.
func TestListenIdleFlush(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got int
	c := &Collector{
		Clock:         func() int64 { return 5000 },
		BatchSize:     1024, // never filled by one datagram
		FlushInterval: 10 * time.Millisecond,
		EmitBatch: func(recs []netflow.Record) {
			mu.Lock()
			got += len(recs)
			mu.Unlock()
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- c.Listen(ctx, pc) }()

	exp, err := NewExporter(pc.LocalAddr().String(), netip.MustParseAddr("10.0.0.5"))
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	if err := exp.Send(sampleDatagram().Samples); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := got
		mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle flush delivered %d records, want 2", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Listen: %v", err)
	}
}
