// Package sflow implements the subset of sFlow version 5 used by IXPs to
// export sampled packet headers: datagrams carrying flow samples with raw
// packet header records, an encoder for the simulated member switches, and
// a UDP collector that turns samples into netflow Records.
//
// The wire format follows the sFlow v5 specification (sflow.org); only the
// structures the IXP Scrubber pipeline consumes are implemented. Unknown
// sample and record types are skipped by length, as a standards-compliant
// collector must.
package sflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Sentinel decode errors.
var (
	ErrTruncated  = errors.New("sflow: truncated datagram")
	ErrBadVersion = errors.New("sflow: unsupported version")
)

const (
	version5 = 5

	addrTypeIPv4 = 1
	addrTypeIPv6 = 2

	// Sample formats (enterprise 0).
	sampleFlow    = 1
	sampleCounter = 2

	// Flow record formats (enterprise 0).
	recordRawPacketHeader = 1

	headerProtocolEthernet = 1
)

// Datagram is one sFlow v5 export datagram from an agent (a member-facing
// switch port in the IXP fabric).
type Datagram struct {
	AgentAddress netip.Addr
	SubAgentID   uint32
	Sequence     uint32
	Uptime       uint32 // milliseconds
	Samples      []FlowSample
}

// FlowSample is one packet sample: the first HeaderLength bytes of a frame
// picked by 1:SamplingRate random sampling.
type FlowSample struct {
	Sequence     uint32
	SourceID     uint32
	SamplingRate uint32
	SamplePool   uint32
	Drops        uint32
	InputIf      uint32
	OutputIf     uint32
	// FrameLength is the original length of the sampled frame on the wire.
	FrameLength uint32
	// Header holds the leading bytes of the frame (Ethernet onwards).
	Header []byte
}

// Append encodes the datagram in sFlow v5 wire format, appending to buf.
func Append(buf []byte, d *Datagram) ([]byte, error) {
	buf = binary.BigEndian.AppendUint32(buf, version5)
	switch {
	case d.AgentAddress.Is4() || d.AgentAddress.Is4In6():
		buf = binary.BigEndian.AppendUint32(buf, addrTypeIPv4)
		a := d.AgentAddress.Unmap().As4()
		buf = append(buf, a[:]...)
	case d.AgentAddress.Is6():
		buf = binary.BigEndian.AppendUint32(buf, addrTypeIPv6)
		a := d.AgentAddress.As16()
		buf = append(buf, a[:]...)
	default:
		return nil, fmt.Errorf("sflow: invalid agent address %v", d.AgentAddress)
	}
	buf = binary.BigEndian.AppendUint32(buf, d.SubAgentID)
	buf = binary.BigEndian.AppendUint32(buf, d.Sequence)
	buf = binary.BigEndian.AppendUint32(buf, d.Uptime)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(d.Samples)))
	for i := range d.Samples {
		buf = appendFlowSample(buf, &d.Samples[i])
	}
	return buf, nil
}

func appendFlowSample(buf []byte, s *FlowSample) []byte {
	buf = binary.BigEndian.AppendUint32(buf, sampleFlow)
	lenAt := len(buf)
	buf = append(buf, 0, 0, 0, 0) // sample length placeholder
	buf = binary.BigEndian.AppendUint32(buf, s.Sequence)
	buf = binary.BigEndian.AppendUint32(buf, s.SourceID)
	buf = binary.BigEndian.AppendUint32(buf, s.SamplingRate)
	buf = binary.BigEndian.AppendUint32(buf, s.SamplePool)
	buf = binary.BigEndian.AppendUint32(buf, s.Drops)
	buf = binary.BigEndian.AppendUint32(buf, s.InputIf)
	buf = binary.BigEndian.AppendUint32(buf, s.OutputIf)
	buf = binary.BigEndian.AppendUint32(buf, 1) // one flow record

	// Raw packet header record.
	buf = binary.BigEndian.AppendUint32(buf, recordRawPacketHeader)
	recLenAt := len(buf)
	buf = append(buf, 0, 0, 0, 0) // record length placeholder
	buf = binary.BigEndian.AppendUint32(buf, headerProtocolEthernet)
	buf = binary.BigEndian.AppendUint32(buf, s.FrameLength)
	buf = binary.BigEndian.AppendUint32(buf, 4) // stripped (FCS)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Header)))
	buf = append(buf, s.Header...)
	for len(buf)%4 != 0 {
		buf = append(buf, 0) // XDR padding to 4-byte boundary
	}
	binary.BigEndian.PutUint32(buf[recLenAt:recLenAt+4], uint32(len(buf)-recLenAt-4))
	binary.BigEndian.PutUint32(buf[lenAt:lenAt+4], uint32(len(buf)-lenAt-4))
	return buf
}

// decoder is a bounds-checked big-endian cursor.
type decoder struct {
	data []byte
	off  int
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > len(d.data) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.data) {
		return nil, ErrTruncated
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) skip(n int) error {
	if n < 0 || d.off+n > len(d.data) {
		return ErrTruncated
	}
	d.off += n
	return nil
}

// Decode parses one sFlow v5 datagram. Returned Header slices alias data.
// It allocates a fresh Datagram per call; hot paths reuse one via
// DecodeInto instead.
func Decode(data []byte) (*Datagram, error) {
	out := &Datagram{}
	if err := DecodeInto(out, data); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto parses one sFlow v5 datagram into out, reusing out.Samples'
// backing array. Header slices alias data, so out (and everything derived
// from its headers) is only valid until data's buffer is reused — the
// allocation-free contract of the collector receive loop. On error out is
// left in an unspecified state.
func DecodeInto(out *Datagram, data []byte) error {
	d := decoder{data: data}
	ver, err := d.u32()
	if err != nil {
		return err
	}
	if ver != version5 {
		return fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	out.Samples = out.Samples[:0]
	at, err := d.u32()
	if err != nil {
		return err
	}
	switch at {
	case addrTypeIPv4:
		b, err := d.bytes(4)
		if err != nil {
			return err
		}
		out.AgentAddress = netip.AddrFrom4([4]byte(b))
	case addrTypeIPv6:
		b, err := d.bytes(16)
		if err != nil {
			return err
		}
		out.AgentAddress = netip.AddrFrom16([16]byte(b))
	default:
		return fmt.Errorf("sflow: unknown agent address type %d", at)
	}
	if out.SubAgentID, err = d.u32(); err != nil {
		return err
	}
	if out.Sequence, err = d.u32(); err != nil {
		return err
	}
	if out.Uptime, err = d.u32(); err != nil {
		return err
	}
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		format, err := d.u32()
		if err != nil {
			return fmt.Errorf("sample %d: %w", i, err)
		}
		length, err := d.u32()
		if err != nil {
			return fmt.Errorf("sample %d: %w", i, err)
		}
		if format != sampleFlow {
			if err := d.skip(int(length)); err != nil {
				return fmt.Errorf("sample %d (format %d): %w", i, format, err)
			}
			continue
		}
		end := d.off + int(length)
		if end > len(data) {
			return fmt.Errorf("sample %d: %w", i, ErrTruncated)
		}
		// Grow into reused capacity; the slot must be reset because it may
		// hold a sample from a previous datagram.
		if len(out.Samples) < cap(out.Samples) {
			out.Samples = out.Samples[:len(out.Samples)+1]
		} else {
			out.Samples = append(out.Samples, FlowSample{})
		}
		s := &out.Samples[len(out.Samples)-1]
		*s = FlowSample{}
		if err := decodeFlowSample(s, &decoder{data: data[:end], off: d.off}); err != nil {
			return fmt.Errorf("sample %d: %w", i, err)
		}
		d.off = end
	}
	return nil
}

func decodeFlowSample(s *FlowSample, d *decoder) error {
	var err error
	if s.Sequence, err = d.u32(); err != nil {
		return err
	}
	if s.SourceID, err = d.u32(); err != nil {
		return err
	}
	if s.SamplingRate, err = d.u32(); err != nil {
		return err
	}
	if s.SamplePool, err = d.u32(); err != nil {
		return err
	}
	if s.Drops, err = d.u32(); err != nil {
		return err
	}
	if s.InputIf, err = d.u32(); err != nil {
		return err
	}
	if s.OutputIf, err = d.u32(); err != nil {
		return err
	}
	nrec, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nrec; i++ {
		format, err := d.u32()
		if err != nil {
			return err
		}
		length, err := d.u32()
		if err != nil {
			return err
		}
		if format != recordRawPacketHeader {
			if err := d.skip(int(length)); err != nil {
				return err
			}
			continue
		}
		end := d.off + int(length)
		proto, err := d.u32()
		if err != nil {
			return err
		}
		if s.FrameLength, err = d.u32(); err != nil {
			return err
		}
		if _, err = d.u32(); err != nil { // stripped
			return err
		}
		hlen, err := d.u32()
		if err != nil {
			return err
		}
		if proto != headerProtocolEthernet {
			if err := d.skip(end - d.off); err != nil {
				return err
			}
			continue
		}
		if s.Header, err = d.bytes(int(hlen)); err != nil {
			return err
		}
		if end < d.off || end > len(d.data) {
			return ErrTruncated
		}
		d.off = end // consume XDR padding
	}
	return nil
}
