// Package woe implements Weight of Evidence encoding of categorical
// features (§5.2.2): every categorical value x (source IP, port, member
// MAC, protocol) maps to WoE(x) = ln(P(X=x | y=1) / P(X=x | y=0)) with
// add-one smoothing, where y is the blackhole label.
//
// The encoder is the model's long-term memory of suspicious ports,
// reflector IPs and DDoS-prone member ports, and it encapsulates the
// *local* knowledge of a vantage point: transferring a classifier while
// keeping the local encoder is what makes models geographically portable
// (§6.4).
package woe

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/netip"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Encoder accumulates per-domain value counts under both labels and maps
// values to their WoE. Observe/Fit may be interleaved: WoE values are
// recomputed lazily after new observations.
//
// The read path is lock-free: Fit publishes the fitted tables (with
// overrides folded in) as an immutable snapshot behind an atomic pointer,
// so WoE in the predict hot loop is a plain map read with no mutex
// acquisition. Observe, Override and the other mutators take the mutex,
// update the counts and invalidate or republish the snapshot; a WoE call
// that finds no snapshot falls back to the locked path and publishes one.
// All paths are safe for concurrent use, though a read racing an Observe
// may see the previous fit (the same lag a locked lazy refit would show).
type Encoder struct {
	// Smoothing is the pseudocount added to both counts of the WoE ratio
	// (the paper's division-by-zero guard uses 1.0, the default). Larger
	// values shrink rarely-seen values toward neutral, which stabilizes
	// training on small corpora where single observations would otherwise
	// inject ±0.7 of label noise per value.
	Smoothing float64
	// MinCount is the evidence floor: values observed fewer than MinCount
	// times encode as neutral 0.0, exactly like unknown values at
	// prediction time. Tree models are scale-invariant, so shrinking noisy
	// singletons is not enough — they must be indistinguishable from
	// unknowns. Zero means no floor (every observation counts).
	MinCount int

	mu      sync.RWMutex
	domains map[string]*domain
	// overrides pins values to operator-chosen WoE (white/blacklisting,
	// §6.6); they survive refits.
	overrides map[string]map[uint64]float64
	posTotal  uint64
	negTotal  uint64
	dirty     bool

	// snap is the published read-only view: per-domain WoE maps with
	// overrides already applied. It is replaced wholesale on every fit or
	// override change and never mutated in place, so readers need no lock.
	snap atomic.Pointer[snapshot]
}

// snapshot is an immutable fitted view. The maps are built fresh on every
// publish and must never be written after the pointer is stored.
type snapshot struct {
	domains map[string]map[uint64]float64
}

type domain struct {
	pos map[uint64]uint64
	neg map[uint64]uint64
	woe map[uint64]float64
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder {
	return &Encoder{
		domains:   make(map[string]*domain),
		overrides: make(map[string]map[uint64]float64),
	}
}

func (e *Encoder) domain(name string) *domain {
	d := e.domains[name]
	if d == nil {
		d = &domain{
			pos: make(map[uint64]uint64),
			neg: make(map[uint64]uint64),
			woe: make(map[uint64]float64),
		}
		e.domains[name] = d
	}
	return d
}

// Observe counts one occurrence of value key in the domain under the label.
func (e *Encoder) Observe(domainName string, key uint64, label bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := e.domain(domainName)
	if label {
		d.pos[key]++
		e.posTotal++
	} else {
		d.neg[key]++
		e.negTotal++
	}
	e.dirty = true
	e.snap.Store(nil) // stale: readers fall back to the locked path
}

// Fit recomputes the WoE mapping from the accumulated counts.
func (e *Encoder) Fit() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.fitLocked()
}

// EnsureFitted refits only if observations arrived since the last Fit.
// Callers fanning WoE lookups across workers call this first so the lazy
// refit inside WoE never serializes the parallel region.
func (e *Encoder) EnsureFitted() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dirty {
		e.fitLocked()
	}
}

func (e *Encoder) fitLocked() {
	base := e.Smoothing
	if base <= 0 {
		base = 1
	}
	alpha := base
	pt, nt := float64(e.posTotal), float64(e.negTotal)
	for _, d := range e.domains {
		for k := range d.woe {
			delete(d.woe, k)
		}
		for k := range d.pos {
			if int(d.pos[k]+d.neg[k]) < e.MinCount {
				continue // below the evidence floor: neutral like unknowns
			}
			d.woe[k] = woeValue(float64(d.pos[k]), float64(d.neg[k]), pt, nt, alpha)
		}
		for k := range d.neg {
			if _, ok := d.woe[k]; ok {
				continue
			}
			if int(d.pos[k]+d.neg[k]) < e.MinCount {
				continue
			}
			d.woe[k] = woeValue(0, float64(d.neg[k]), pt, nt, alpha)
		}
	}
	e.dirty = false
	e.publishLocked()
}

// publishLocked rebuilds and stores the immutable read snapshot from the
// fitted tables and overrides. The per-domain maps are fresh copies:
// fitLocked reuses the working d.woe maps across fits, so aliasing them
// into the snapshot would let a later fit mutate what readers hold.
func (e *Encoder) publishLocked() {
	s := &snapshot{domains: make(map[string]map[uint64]float64, len(e.domains))}
	for name, d := range e.domains {
		m := make(map[uint64]float64, len(d.woe)+len(e.overrides[name]))
		for k, w := range d.woe {
			m[k] = w
		}
		s.domains[name] = m
	}
	for name, ov := range e.overrides {
		m := s.domains[name]
		if m == nil {
			m = make(map[uint64]float64, len(ov))
			s.domains[name] = m
		}
		for k, w := range ov {
			m[k] = w
		}
	}
	e.snap.Store(s)
}

// ensureSnapshot returns a published snapshot, fitting first if
// observations arrived since the last fit.
func (e *Encoder) ensureSnapshot() *snapshot {
	if s := e.snap.Load(); s != nil {
		return s
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if s := e.snap.Load(); s != nil {
		return s // another goroutine published while we waited
	}
	if e.dirty {
		e.fitLocked()
	} else {
		e.publishLocked()
	}
	return e.snap.Load()
}

// woeValue computes ln(P(x|1)/P(x|0)) with additive smoothing of the counts
// (the paper's division-by-zero guard uses alpha = 1).
func woeValue(pos, neg, posTotal, negTotal, alpha float64) float64 {
	p1 := (pos + alpha) / (posTotal + alpha)
	p0 := (neg + alpha) / (negTotal + alpha)
	return math.Log(p1 / p0)
}

// WoE returns the encoding of a value; unknown values encode as 0.0
// (neutral), as during prediction in the paper. The hot path is two map
// reads on the published snapshot — no locks; a missing key yields the
// map's float64 zero value, which is exactly the neutral encoding.
func (e *Encoder) WoE(domainName string, key uint64) float64 {
	s := e.snap.Load()
	if s == nil {
		s = e.ensureSnapshot()
	}
	return s.domains[domainName][key]
}

// Override pins a value's WoE regardless of observations — the operator
// control of §6.6 (e.g. whitelisting a source IP with a strongly negative
// WoE, or pinning DDoS service ports positive).
func (e *Encoder) Override(domainName string, key uint64, woe float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ov := e.overrides[domainName]
	if ov == nil {
		ov = make(map[uint64]float64)
		e.overrides[domainName] = ov
	}
	ov[key] = woe
	if e.snap.Load() != nil {
		e.publishLocked() // fold the new pin into the read snapshot
	}
}

// ClearOverride removes a pinned value.
func (e *Encoder) ClearOverride(domainName string, key uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ov, ok := e.overrides[domainName]; ok {
		delete(ov, key)
		if e.snap.Load() != nil {
			e.publishLocked() // drop the pin from the read snapshot
		}
	}
}

// Domains lists the fitted domains sorted by name.
func (e *Encoder) Domains() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.domains))
	for name := range e.domains {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Above returns the keys of a domain whose WoE exceeds the threshold — the
// "reflector knowledge" view used for the cross-IXP overlap analysis
// (Fig. 12, middle: WoE > 1.0 means e times more likely inside the
// blackhole).
func (e *Encoder) Above(domainName string, threshold float64) []uint64 {
	e.mu.RLock()
	if e.dirty {
		e.mu.RUnlock()
		e.Fit()
		e.mu.RLock()
	}
	defer e.mu.RUnlock()
	d, ok := e.domains[domainName]
	if !ok {
		return nil
	}
	var out []uint64
	for k, w := range d.woe {
		if w > threshold {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Overlap computes the Jaccard-style overlap of two encoders' high-WoE keys
// in one domain: |A ∩ B| / |A ∪ B|.
func Overlap(a, b *Encoder, domainName string, threshold float64) float64 {
	ka := a.Above(domainName, threshold)
	kb := b.Above(domainName, threshold)
	if len(ka) == 0 && len(kb) == 0 {
		return 0
	}
	set := make(map[uint64]bool, len(ka))
	for _, k := range ka {
		set[k] = true
	}
	inter := 0
	for _, k := range kb {
		if set[k] {
			inter++
		}
	}
	return float64(inter) / float64(len(ka)+len(kb)-inter)
}

// Merge folds the counts of another encoder into this one (training a
// joint encoder over several vantage points).
func (e *Encoder) Merge(other *Encoder) {
	other.mu.RLock()
	defer other.mu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, od := range other.domains {
		d := e.domain(name)
		for k, c := range od.pos {
			d.pos[k] += c
		}
		for k, c := range od.neg {
			d.neg[k] += c
		}
	}
	e.posTotal += other.posTotal
	e.negTotal += other.negTotal
	e.dirty = true
	e.snap.Store(nil)
}

// Fingerprint returns a deterministic 64-bit digest of the encoder's
// accumulated counts and overrides: same observations → same fingerprint,
// regardless of map iteration order or when Fit ran. The model registry
// records it in bundle manifests so an importer can tell whether a
// classifier-only bundle was trained against the same local knowledge it is
// about to be re-bound to.
func (e *Encoder) Fingerprint() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	// FNV-1a over a canonical byte stream: totals, then domains sorted by
	// name, then each domain's keys sorted numerically with both counts.
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], v)
		for _, c := range b {
			h ^= uint64(c)
			h *= prime64
		}
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // terminator so "ab"+"c" != "a"+"bc"
		h *= prime64
	}
	mix(e.posTotal)
	mix(e.negTotal)
	names := make([]string, 0, len(e.domains))
	for name := range e.domains {
		names = append(names, name)
	}
	sort.Strings(names)
	keys := make([]uint64, 0, 64)
	for _, name := range names {
		d := e.domains[name]
		mixStr(name)
		keys = keys[:0]
		for k := range d.pos {
			keys = append(keys, k)
		}
		for k := range d.neg {
			if _, ok := d.pos[k]; !ok {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			mix(k)
			mix(d.pos[k])
			mix(d.neg[k])
		}
	}
	ovNames := make([]string, 0, len(e.overrides))
	for name, ov := range e.overrides {
		if len(ov) > 0 {
			ovNames = append(ovNames, name)
		}
	}
	sort.Strings(ovNames)
	for _, name := range ovNames {
		ov := e.overrides[name]
		mixStr(name)
		keys = keys[:0]
		for k := range ov {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			mix(k)
			mix(math.Float64bits(ov[k]))
		}
	}
	return h
}

// Key helpers: stable uint64 keys for the categorical value types.

// KeyAddr keys an IP address.
func KeyAddr(a netip.Addr) uint64 {
	if a.Is4() || a.Is4In6() {
		b := a.Unmap().As4()
		return uint64(binary.BigEndian.Uint32(b[:]))
	}
	b := a.As16()
	return binary.BigEndian.Uint64(b[:8]) ^ binary.BigEndian.Uint64(b[8:])<<1 | 1<<63
}

// KeyMAC keys a hardware address.
func KeyMAC(m [6]byte) uint64 {
	return uint64(m[0])<<40 | uint64(m[1])<<32 | uint64(m[2])<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

// KeyPort keys a transport port.
func KeyPort(p uint16) uint64 { return uint64(p) }

// KeyProto keys an IP protocol number.
func KeyProto(p uint8) uint64 { return uint64(p) }

// Serialization model: the raw per-label counts plus overrides. Shipping
// counts (rather than fitted WoE values) keeps the encoder's long-term
// memory alive across restarts and lets a receiver continue observing.

type domainJSON struct {
	Pos map[string]uint64 `json:"pos"`
	Neg map[string]uint64 `json:"neg"`
}

type encoderJSON struct {
	PosTotal  uint64                        `json:"pos_total"`
	NegTotal  uint64                        `json:"neg_total"`
	Domains   map[string]domainJSON         `json:"domains"`
	Overrides map[string]map[string]float64 `json:"overrides,omitempty"`
}

func countsToJSON(m map[uint64]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[strconv.FormatUint(k, 10)] = v
	}
	return out
}

func countsFromJSON(m map[string]uint64, dst map[uint64]uint64) error {
	for ks, v := range m {
		k, err := strconv.ParseUint(ks, 10, 64)
		if err != nil {
			return fmt.Errorf("woe: bad key %q: %w", ks, err)
		}
		dst[k] = v
	}
	return nil
}

// Save writes the encoder state as JSON.
func (e *Encoder) Save(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := encoderJSON{
		PosTotal:  e.posTotal,
		NegTotal:  e.negTotal,
		Domains:   make(map[string]domainJSON),
		Overrides: make(map[string]map[string]float64),
	}
	for name, d := range e.domains {
		out.Domains[name] = domainJSON{Pos: countsToJSON(d.pos), Neg: countsToJSON(d.neg)}
	}
	for name, ov := range e.overrides {
		if len(ov) == 0 {
			continue
		}
		m := make(map[string]float64, len(ov))
		for k, v := range ov {
			m[strconv.FormatUint(k, 10)] = v
		}
		out.Overrides[name] = m
	}
	if err := json.NewEncoder(w).Encode(&out); err != nil {
		return fmt.Errorf("woe: saving encoder: %w", err)
	}
	return nil
}

// Load reads an encoder saved with Save. The result carries full counts, so
// further Observe calls extend the loaded statistics.
func Load(r io.Reader) (*Encoder, error) {
	var in encoderJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("woe: loading encoder: %w", err)
	}
	e := NewEncoder()
	e.posTotal, e.negTotal = in.PosTotal, in.NegTotal
	for name, dj := range in.Domains {
		d := e.domain(name)
		if err := countsFromJSON(dj.Pos, d.pos); err != nil {
			return nil, err
		}
		if err := countsFromJSON(dj.Neg, d.neg); err != nil {
			return nil, err
		}
	}
	for name, m := range in.Overrides {
		for ks, v := range m {
			k, err := strconv.ParseUint(ks, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("woe: bad override key %q in %s: %w", ks, name, err)
			}
			e.Override(name, k, v)
		}
	}
	e.dirty = true
	return e, nil
}
