package woe

import (
	"bytes"
	"math"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestWoESign(t *testing.T) {
	e := NewEncoder()
	// Port 123 appears mostly under the blackhole label, port 443 mostly
	// outside; port 80 is balanced.
	for i := 0; i < 90; i++ {
		e.Observe("src_port", KeyPort(123), true)
	}
	for i := 0; i < 10; i++ {
		e.Observe("src_port", KeyPort(123), false)
	}
	for i := 0; i < 90; i++ {
		e.Observe("src_port", KeyPort(443), false)
	}
	for i := 0; i < 10; i++ {
		e.Observe("src_port", KeyPort(443), true)
	}
	for i := 0; i < 50; i++ {
		e.Observe("src_port", KeyPort(80), true)
		e.Observe("src_port", KeyPort(80), false)
	}
	e.Fit()
	if w := e.WoE("src_port", KeyPort(123)); w <= 1.0 {
		t.Errorf("WoE(123) = %v, want strongly positive", w)
	}
	if w := e.WoE("src_port", KeyPort(443)); w >= -1.0 {
		t.Errorf("WoE(443) = %v, want strongly negative", w)
	}
	if w := e.WoE("src_port", KeyPort(80)); math.Abs(w) > 0.2 {
		t.Errorf("WoE(80) = %v, want near 0", w)
	}
}

func TestWoEUnknownIsNeutral(t *testing.T) {
	e := NewEncoder()
	e.Observe("src_port", KeyPort(123), true)
	e.Fit()
	if w := e.WoE("src_port", KeyPort(9999)); w != 0 {
		t.Errorf("unknown value WoE = %v, want 0", w)
	}
	if w := e.WoE("no_such_domain", 1); w != 0 {
		t.Errorf("unknown domain WoE = %v, want 0", w)
	}
}

func TestWoELazyRefit(t *testing.T) {
	e := NewEncoder()
	// Anchor observations on a second value so totals are not dominated by
	// the value under test.
	for i := 0; i < 100; i++ {
		e.Observe("d", 9, true)
		e.Observe("d", 9, false)
	}
	e.Observe("d", 1, true)
	// No explicit Fit: lookup must still work.
	if w := e.WoE("d", 1); w <= 0 {
		t.Errorf("lazy fit WoE = %v", w)
	}
	// More observations flip the sign.
	for i := 0; i < 100; i++ {
		e.Observe("d", 1, false)
	}
	if w := e.WoE("d", 1); w >= 0 {
		t.Errorf("after refit WoE = %v, want negative", w)
	}
}

func TestOverride(t *testing.T) {
	e := NewEncoder()
	for i := 0; i < 100; i++ {
		e.Observe("src_ip", 42, true)
		e.Observe("src_ip", 7, false) // anchor the benign side
	}
	e.Fit()
	if e.WoE("src_ip", 42) <= 0 {
		t.Fatal("setup: expected positive WoE")
	}
	e.Override("src_ip", 42, -5)
	if w := e.WoE("src_ip", 42); w != -5 {
		t.Errorf("override not applied: %v", w)
	}
	// Overrides survive refits.
	e.Observe("src_ip", 42, true)
	e.Fit()
	if w := e.WoE("src_ip", 42); w != -5 {
		t.Errorf("override lost after refit: %v", w)
	}
	e.ClearOverride("src_ip", 42)
	if w := e.WoE("src_ip", 42); w <= 0 {
		t.Errorf("clear override failed: %v", w)
	}
}

func TestAboveAndOverlap(t *testing.T) {
	a, b := NewEncoder(), NewEncoder()
	// a sees reflectors 1,2,3; b sees 3,4,5 — overlap 1/5.
	for _, k := range []uint64{1, 2, 3} {
		for i := 0; i < 50; i++ {
			a.Observe("src_ip", k, true)
		}
	}
	for i := 0; i < 150; i++ {
		a.Observe("src_ip", 99, false)
	}
	for _, k := range []uint64{3, 4, 5} {
		for i := 0; i < 50; i++ {
			b.Observe("src_ip", k, true)
		}
	}
	for i := 0; i < 150; i++ {
		b.Observe("src_ip", 98, false)
	}
	ka := a.Above("src_ip", 1.0)
	if len(ka) != 3 {
		t.Fatalf("Above = %v", ka)
	}
	got := Overlap(a, b, "src_ip", 1.0)
	if math.Abs(got-0.2) > 1e-9 {
		t.Errorf("overlap = %v, want 0.2", got)
	}
	if Overlap(NewEncoder(), NewEncoder(), "src_ip", 1.0) != 0 {
		t.Error("empty overlap must be 0")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewEncoder(), NewEncoder()
	for i := 0; i < 30; i++ {
		a.Observe("p", 1, true)
		b.Observe("p", 1, true)
		b.Observe("p", 2, false)
	}
	a.Merge(b)
	a.Fit()
	if w := a.WoE("p", 1); w <= 0 {
		t.Errorf("merged WoE(1) = %v", w)
	}
	if w := a.WoE("p", 2); w >= 0 {
		t.Errorf("merged WoE(2) = %v", w)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := NewEncoder()
	for i := 0; i < 40; i++ {
		e.Observe("src_port", KeyPort(123), true)
		e.Observe("src_port", KeyPort(443), false)
		e.Observe("src_ip", 7, true)
	}
	e.Override("src_ip", 1000, 3.5)
	e.Fit()

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{KeyPort(123), KeyPort(443)} {
		if got.WoE("src_port", k) != e.WoE("src_port", k) {
			t.Errorf("WoE mismatch for %d", k)
		}
	}
	if got.WoE("src_ip", 1000) != 3.5 {
		t.Error("override lost in round trip")
	}
	// Loaded encoders keep counting.
	for i := 0; i < 500; i++ {
		got.Observe("src_port", KeyPort(123), false)
	}
	if got.WoE("src_port", KeyPort(123)) >= e.WoE("src_port", KeyPort(123)) {
		t.Error("post-load observations have no effect")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"domains":{"d":{"pos":{"abc":1},"neg":{}}}}`))); err == nil {
		t.Error("bad key accepted")
	}
}

func TestMinCountEvidenceFloor(t *testing.T) {
	e := NewEncoder()
	e.MinCount = 4
	// Anchor totals.
	for i := 0; i < 200; i++ {
		e.Observe("d", 100, true)
		e.Observe("d", 101, false)
	}
	// Value 1: three observations (below floor) — neutral.
	for i := 0; i < 3; i++ {
		e.Observe("d", 1, true)
	}
	// Value 2: five observations (above floor) — carries signal.
	for i := 0; i < 5; i++ {
		e.Observe("d", 2, true)
	}
	e.Fit()
	if w := e.WoE("d", 1); w != 0 {
		t.Errorf("below-floor value WoE = %v, want 0 (neutral like unknowns)", w)
	}
	if w := e.WoE("d", 2); w <= 0 {
		t.Errorf("above-floor value WoE = %v, want positive", w)
	}
	// One more observation pushes value 1 over the floor.
	e.Observe("d", 1, true)
	if w := e.WoE("d", 1); w <= 0 {
		t.Errorf("value crossing the floor WoE = %v, want positive", w)
	}
}

func TestKeyHelpers(t *testing.T) {
	v4 := netip.MustParseAddr("192.0.2.1")
	v6 := netip.MustParseAddr("2001:db8::1")
	if KeyAddr(v4) == KeyAddr(v6) {
		t.Error("v4/v6 collision")
	}
	if KeyAddr(v4) != KeyAddr(netip.MustParseAddr("192.0.2.1")) {
		t.Error("KeyAddr not deterministic")
	}
	// 4-in-6 maps to the same key as plain v4.
	mapped := netip.AddrFrom16(v4.As16())
	if KeyAddr(mapped) != KeyAddr(v4) {
		t.Error("4-in-6 key differs from v4 key")
	}
	if KeyMAC([6]byte{1, 2, 3, 4, 5, 6}) == KeyMAC([6]byte{1, 2, 3, 4, 5, 7}) {
		t.Error("MAC key collision")
	}
	if KeyPort(80) != 80 || KeyProto(17) != 17 {
		t.Error("scalar keys")
	}
}

// TestWoEMonotonicity: more positive evidence must not lower WoE.
func TestWoEMonotonicity(t *testing.T) {
	f := func(pos1, pos2, neg uint8) bool {
		p1, p2 := uint64(pos1), uint64(pos1)+uint64(pos2)
		mk := func(pos uint64) float64 {
			e := NewEncoder()
			for i := uint64(0); i < pos; i++ {
				e.Observe("d", 1, true)
			}
			for i := uint64(0); i < uint64(neg); i++ {
				e.Observe("d", 1, false)
			}
			// Anchor totals so P(x|y) denominators stay comparable.
			for i := 0; i < 300; i++ {
				e.Observe("d", 2, true)
				e.Observe("d", 2, false)
			}
			return e.WoE("d", 1)
		}
		return mk(p2) >= mk(p1)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWoELookup(b *testing.B) {
	e := NewEncoder()
	for i := uint64(0); i < 10000; i++ {
		e.Observe("src_ip", i, i%3 == 0)
	}
	e.Fit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.WoE("src_ip", uint64(i)%20000)
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	build := func() *Encoder {
		e := NewEncoder()
		for i := uint64(0); i < 500; i++ {
			e.Observe("src_ip", i*7, i%3 == 0)
			e.Observe("dst_port", i%53, i%5 == 0)
		}
		e.Override("src_ip", 99, -2.5)
		return e
	}
	a, b := build(), build()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical encoders fingerprint differently")
	}
	// Fit state must not matter: the fingerprint hashes counts, not tables.
	a.Fit()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint changed after Fit")
	}
	// Any extra observation changes it.
	b.Observe("src_ip", 12345, true)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint blind to new observation")
	}
	// So does an override change.
	c := build()
	c.Override("src_ip", 99, -2.0)
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("fingerprint blind to override value")
	}
	// Save/Load round trip preserves it.
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint changed across save/load")
	}
}
