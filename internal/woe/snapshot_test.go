package woe

import (
	"sync"
	"testing"
)

// refEncoder is the pre-snapshot locked read path (RWMutex around the
// fitted tables), kept as the reference both for semantic equivalence and
// for the old-vs-new lookup benchmark in scripts/bench.sh.
type refEncoder struct {
	mu  sync.RWMutex
	enc *Encoder
}

func (r *refEncoder) WoE(domain string, key uint64) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if ov, ok := r.enc.overrides[domain]; ok {
		if w, ok := ov[key]; ok {
			return w
		}
	}
	d, ok := r.enc.domains[domain]
	if !ok {
		return 0
	}
	return d.woe[key]
}

func fittedEncoder(values int) *Encoder {
	e := NewEncoder()
	for i := 0; i < values; i++ {
		k := uint64(i)
		for j := 0; j < 1+i%7; j++ {
			e.Observe("src_port", k, i%3 == 0)
		}
		e.Observe("src_ip", k*7919, i%2 == 0)
	}
	e.Fit()
	return e
}

// TestSnapshotMatchesLockedPath locks the snapshot read path to the
// reference locked implementation over every observed key, including
// overrides and unknowns.
func TestSnapshotMatchesLockedPath(t *testing.T) {
	e := fittedEncoder(500)
	e.Override("src_port", 123, 4.5)
	e.Override("pinned_only", 7, -2.0) // domain that exists only as override
	ref := &refEncoder{enc: e}
	for i := 0; i < 600; i++ {
		for _, dom := range []string{"src_port", "src_ip", "pinned_only", "missing"} {
			k := uint64(i)
			if dom == "src_ip" {
				k *= 7919
			}
			if got, want := e.WoE(dom, k), ref.WoE(dom, k); got != want {
				t.Fatalf("WoE(%s, %d) = %v, reference = %v", dom, k, got, want)
			}
		}
	}
	if got := e.WoE("src_port", 123); got != 4.5 {
		t.Errorf("override not visible through snapshot: %v", got)
	}
	if got := e.WoE("pinned_only", 7); got != -2.0 {
		t.Errorf("override-only domain: %v", got)
	}
}

// TestSnapshotInvalidation: observations, merges and override changes must
// be visible through the lock-free path without an explicit Fit call.
func TestSnapshotInvalidation(t *testing.T) {
	e := NewEncoder()
	for i := 0; i < 50; i++ {
		e.Observe("d", 1, true)
		e.Observe("d", 2, false)
	}
	w1 := e.WoE("d", 1) // lazy fit + publish
	if w1 <= 0 {
		t.Fatalf("WoE(1) = %v, want positive", w1)
	}
	// New observations flip key 3 positive; the stale snapshot must not
	// serve the old view after the implicit refit.
	for i := 0; i < 80; i++ {
		e.Observe("d", 3, true)
	}
	if w3 := e.WoE("d", 3); w3 <= 0 {
		t.Errorf("WoE(3) after invalidation = %v, want positive", w3)
	}
	e.Override("d", 2, 9.9)
	if got := e.WoE("d", 2); got != 9.9 {
		t.Errorf("override after fit = %v, want 9.9", got)
	}
	e.ClearOverride("d", 2)
	if got := e.WoE("d", 2); got == 9.9 {
		t.Error("cleared override still served")
	}

	other := NewEncoder()
	for i := 0; i < 200; i++ {
		other.Observe("d", 4, true)
	}
	e.Merge(other)
	if w4 := e.WoE("d", 4); w4 <= 0 {
		t.Errorf("WoE(4) after merge = %v, want positive", w4)
	}
}

// TestSnapshotConcurrentReadsDuringObserve hammers the lock-free read path
// while a writer keeps observing and refitting. Run under -race in CI: the
// snapshot pointer is the only shared read state, so this must be
// race-clean.
func TestSnapshotConcurrentReadsDuringObserve(t *testing.T) {
	e := fittedEncoder(100)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				_ = e.WoE("src_port", uint64(i%200))
				_ = e.WoE("src_ip", uint64(i%200)*7919)
			}
		}(g)
	}
	for i := 0; i < 2000; i++ {
		e.Observe("src_port", uint64(i%100), i%2 == 0)
		if i%100 == 0 {
			e.Fit()
		}
		if i%300 == 0 {
			e.Override("src_port", 9999, float64(i))
		}
	}
	close(done)
	wg.Wait()
	e.Fit()
	if got := e.WoE("src_port", 9999); got != 1800 {
		t.Errorf("final override = %v, want 1800", got)
	}
}

// BenchmarkWoELookupSnapshot measures the lock-free read path and
// BenchmarkWoELookupLocked the pre-PR RWMutex path on the same fitted
// encoder; scripts/bench.sh records the pair into BENCH_PR3.json.
func BenchmarkWoELookupSnapshot(b *testing.B) {
	e := fittedEncoder(2000)
	e.WoE("src_port", 0) // publish
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.WoE("src_port", uint64(i%2000))
	}
}

func BenchmarkWoELookupLocked(b *testing.B) {
	e := fittedEncoder(2000)
	ref := &refEncoder{enc: e}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ref.WoE("src_port", uint64(i%2000))
	}
}
