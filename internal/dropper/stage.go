package dropper

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
)

// Stage is the inline drop stage: an EmitBatch-compatible hop between the
// flow collectors and the ingest queue. Every record in every batch is
// matched against the live compiled Program; records whose first matching
// rule carries ActionDrop are removed in place, the survivors forward to
// the next hop in the original slice (no copy, no allocation). Batches
// that drop to empty are consumed without a downstream call so queue
// batch accounting only ever sees non-empty work.
//
// Programs are published with Swap — an atomic pointer store, the same
// snapshot memory model as the WoE encoder — so promotion → recompile →
// hot swap never pauses or locks the ingest path: in-flight batches
// finish against the program they loaded, subsequent batches see the new
// one.
type Stage struct {
	next func([]netflow.Record)
	prog atomic.Pointer[Program]

	evaluated    atomic.Uint64
	dropped      atomic.Uint64
	batches      atomic.Uint64
	fullyDropped atomic.Uint64
	swaps        atomic.Uint64
	compileNS    atomic.Int64

	mu sync.Mutex
	// cum holds per-rule-ID drop totals folded in from retired programs.
	// Hits landing in a retired program after its fold (an in-flight
	// batch racing a swap) are not re-folded: the aggregate dropped
	// counter stays exact, per-rule totals may undercount by that race.
	cum        map[string]uint64
	registered map[string]bool
	vec        *obs.CounterVec
}

// NewStage builds a drop stage forwarding surviving records to next. The
// stage starts with an empty compiled program — every record is evaluated
// (and counted) from the first batch, none dropped — so conservation
// accounting holds before the first verdict compiles.
func NewStage(next func([]netflow.Record)) *Stage {
	s := &Stage{
		next:       next,
		cum:        make(map[string]uint64),
		registered: make(map[string]bool),
	}
	s.prog.Store(Compile(nil))
	return s
}

// Program returns the live compiled program.
func (s *Stage) Program() *Program { return s.prog.Load() }

// EmitBatch matches every record against the live program, drops the
// matches whose winning rule is ActionDrop, and forwards the rest. The
// batch slice is compacted in place; it is not retained after the
// downstream call returns (collector batch-reuse safe).
func (s *Stage) EmitBatch(recs []netflow.Record) {
	if len(recs) == 0 {
		return
	}
	p := s.prog.Load()
	kept := recs[:0]
	var dropped uint64
	for i := range recs {
		if idx := p.Match(&recs[i]); idx >= 0 && p.rules[idx].Action == acl.ActionDrop {
			p.hits[idx].Add(1)
			dropped++
			continue
		}
		kept = append(kept, recs[i])
	}
	s.evaluated.Add(uint64(len(recs)))
	s.batches.Add(1)
	if dropped > 0 {
		s.dropped.Add(dropped)
	}
	if len(kept) == 0 {
		s.fullyDropped.Add(1)
		return
	}
	if s.next != nil {
		s.next(kept)
	}
}

// Swap atomically publishes prog as the live program and folds the
// retired program's per-rule drop counts into the cumulative totals.
// Safe to call concurrently with EmitBatch; never blocks the match path.
func (s *Stage) Swap(prog *Program) {
	if prog == nil {
		prog = Compile(nil)
	}
	s.mu.Lock()
	old := s.prog.Swap(prog)
	if old != nil {
		for id, idxs := range old.byID {
			var n uint64
			for _, i := range idxs {
				if old.rules[i].Action == acl.ActionDrop {
					n += old.hits[i].Load()
				}
			}
			if n > 0 {
				s.cum[id] += n
			}
		}
	}
	var newIDs []string
	if s.vec != nil {
		for id := range prog.byID {
			if !s.registered[id] {
				s.registered[id] = true
				newIDs = append(newIDs, id)
			}
		}
	}
	s.mu.Unlock()
	s.swaps.Add(1)
	s.compileNS.Store(prog.compileNS)
	// Register per-rule scrape funcs outside s.mu: exposition snapshots
	// families before invoking funcs, but keeping lock scopes disjoint
	// costs nothing. Sorted for deterministic registration order.
	sort.Strings(newIDs)
	for _, id := range newIDs {
		id := id
		s.vec.WithFunc(func() float64 { return float64(s.RuleDrops(id)) }, id)
	}
}

// RuleDrops returns the total records dropped by rules with this ID
// across every program that carried it (retired programs' counts are
// folded in at swap).
func (s *Stage) RuleDrops(id string) uint64 {
	s.mu.Lock()
	n := s.cum[id]
	s.mu.Unlock()
	if p := s.prog.Load(); p != nil {
		for _, i := range p.byID[id] {
			if p.rules[i].Action == acl.ActionDrop {
				n += p.hits[i].Load()
			}
		}
	}
	return n
}

// Stats is a point-in-time snapshot of stage counters.
type Stats struct {
	// Evaluated counts records matched against a program (every record
	// that entered the stage).
	Evaluated uint64
	// Dropped counts records removed from the stream.
	Dropped uint64
	// Batches counts EmitBatch calls; FullyDroppedBatches the subset
	// consumed entirely (nothing forwarded downstream).
	Batches             uint64
	FullyDroppedBatches uint64
	// Swaps counts explicit Swap publications; the empty program
	// NewStage installs is not one.
	Swaps uint64
}

// Stats returns the stage counters.
func (s *Stage) Stats() Stats {
	return Stats{
		Evaluated:           s.evaluated.Load(),
		Dropped:             s.dropped.Load(),
		Batches:             s.batches.Load(),
		FullyDroppedBatches: s.fullyDropped.Load(),
		Swaps:               s.swaps.Load(),
	}
}

// RegisterMetrics exposes the stage under the ixps_dropper_* families:
// evaluated/dropped record totals, live rule count, last compile latency,
// and per-rule drop counters labeled by rule ID. All are scrape-time
// funcs — the match path pays nothing for them.
func (s *Stage) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("ixps_dropper_evaluated_total",
		"Records matched against the compiled drop program.",
		func() float64 { return float64(s.evaluated.Load()) })
	r.CounterFunc("ixps_dropper_dropped_total",
		"Records dropped by the compiled drop program.",
		func() float64 { return float64(s.dropped.Load()) })
	r.GaugeFunc("ixps_dropper_rules",
		"Rules in the live compiled drop program.",
		func() float64 {
			if p := s.prog.Load(); p != nil {
				return float64(p.Len())
			}
			return 0
		})
	r.GaugeFunc("ixps_dropper_compile_ns",
		"Nanoseconds spent compiling the live drop program.",
		func() float64 { return float64(s.compileNS.Load()) })
	vec := r.CounterVec("ixps_dropper_rule_drops_total",
		"Records dropped, by rule ID (aggregated across targets and swaps).",
		"rule")
	s.mu.Lock()
	s.vec = vec
	var ids []string
	if p := s.prog.Load(); p != nil {
		for id := range p.byID {
			if !s.registered[id] {
				s.registered[id] = true
				ids = append(ids, id)
			}
		}
	}
	s.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		id := id
		vec.WithFunc(func() float64 { return float64(s.RuleDrops(id)) }, id)
	}
}
