// Package dropper is the compiled mitigation fast path: it compiles
// curated tagging rules scoped to champion-classified targets (the ACL
// verdict stream) into a flat, contiguous match program evaluated inline
// against every ingest batch, in front of the collector→balancer queue.
//
// The design follows the driver-offload shape of software scrubbers: a
// slow control plane (training rounds, operator curation) promotes
// verdicts, a compiler lowers them into per-dimension lookup tables —
// per-protocol port bitmaps, a binary-searchable packet-size range table,
// and LPM prefix tries packed into arrays — and the data plane hits only
// those tables: no locks, no allocations, no per-rule loop. Programs are
// immutable and published with an atomic.Pointer swap (the same memory
// model as the WoE snapshot), so recompile + hot swap never pauses ingest.
//
// Because the actuated rule set must stay explainable and auditable, the
// naive per-rule reference interpreter (Interpreter) is preserved
// alongside the compiler and the two are pinned bit-for-bit by the
// equivalence, property and fuzz suites: the fast path can never silently
// diverge from the rules it claims to enforce.
package dropper

import (
	"net/netip"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

// Rule is one drop-program rule: the conjunction of optional conditions
// over the discretized header fields of the tagging vocabulary, plus
// optional source/destination prefix scopes. Rules are matched in slice
// order; the first match wins.
//
// Conditions use the exact discretization of internal/tagging: port
// values are tagging.PortValue classes (literal retained ports or
// tagging.PortOther), the size condition names a tagging.SizeBin bin, and
// port conditions never hold for fragmented records (fragments carry no
// trustworthy ports — the same rule tagging.MatchRecord applies).
type Rule struct {
	// ID labels the rule in counters and serialized programs. Entries
	// derived from the same curated tagging rule share an ID; per-rule
	// drop counters aggregate over it.
	ID string
	// Action is what a match does with the record. Only ActionDrop
	// removes records from the stream; other actions count as matches
	// for first-match-wins purposes but the record passes.
	Action acl.Action

	// Proto requires the IP protocol to equal this value when ProtoSet.
	Proto    uint32
	ProtoSet bool
	// SrcPort/DstPort require the tagging.PortValue of the record's port
	// to equal this class (a retained literal port or tagging.PortOther).
	SrcPort    uint32
	SrcPortSet bool
	DstPort    uint32
	DstPortSet bool
	// SizeBin requires tagging.SizeBin of the record's mean packet size
	// to equal this bin when SizeBinSet.
	SizeBin    uint32
	SizeBinSet bool
	// Fragment requires the record to be fragmented.
	Fragment bool

	// Src and Dst scope the rule to source/destination prefixes; the
	// zero (invalid) Prefix means any. Containment is netip semantics:
	// an address of a different family, a zoned address, or an invalid
	// address is never contained.
	Src netip.Prefix
	Dst netip.Prefix

	// Dead marks a rule whose conditions can never hold simultaneously
	// (e.g. an antecedent carrying two different values for one field).
	// Dead rules keep their slot — indices and counters stay aligned
	// with the verdict stream — but match nothing.
	Dead bool
}

// matches is the single source of truth for rule semantics: the reference
// interpreter calls it per rule, and the compiler's lookup tables are
// equivalence-tested against it.
func (r *Rule) matches(rec *netflow.Record) bool {
	if r.Dead {
		return false
	}
	if r.ProtoSet && uint32(rec.Protocol) != r.Proto {
		return false
	}
	if r.SrcPortSet && (rec.Fragment || tagging.PortValue(rec.SrcPort) != r.SrcPort) {
		return false
	}
	if r.DstPortSet && (rec.Fragment || tagging.PortValue(rec.DstPort) != r.DstPort) {
		return false
	}
	if r.SizeBinSet && tagging.SizeBin(rec.MeanPacketSize()) != r.SizeBin {
		return false
	}
	if r.Fragment && !rec.Fragment {
		return false
	}
	if r.Dst.IsValid() && !r.Dst.Contains(rec.DstIP) {
		return false
	}
	if r.Src.IsValid() && !r.Src.Contains(rec.SrcIP) {
		return false
	}
	return true
}

// FromEntry lowers one ACL entry — a curated tagging rule scoped to a
// classified target — into a drop-program rule with identical semantics:
// Rule.matches(rec) == Entry.Matches(rec) for every record.
func FromEntry(e *acl.Entry) Rule {
	r := Rule{ID: e.Rule.ID, Action: e.Action, Dst: e.Target}
	set := func(cur *uint32, has *bool, v uint32) {
		if *has && *cur != v {
			// Two different values for one field: tagging.MatchRecord
			// requires both, so the conjunction is unsatisfiable.
			r.Dead = true
			return
		}
		*cur, *has = v, true
	}
	for _, it := range e.Rule.Antecedent {
		switch it.Field() {
		case tagging.FieldProtocol:
			set(&r.Proto, &r.ProtoSet, it.Value())
		case tagging.FieldSrcPort:
			set(&r.SrcPort, &r.SrcPortSet, it.Value())
		case tagging.FieldDstPort:
			set(&r.DstPort, &r.DstPortSet, it.Value())
		case tagging.FieldSize:
			set(&r.SizeBin, &r.SizeBinSet, it.Value())
		case tagging.FieldFragment:
			r.Fragment = true
		default:
			// Unknown fields never match in tagging.MatchRecord.
			r.Dead = true
		}
	}
	return r
}

// FromEntries lowers an ACL entry list in order, preserving first-match
// priority and per-entry indices.
func FromEntries(entries []acl.Entry) []Rule {
	out := make([]Rule, len(entries))
	for i := range entries {
		out[i] = FromEntry(&entries[i])
	}
	return out
}

// Interpreter is the naive per-rule reference matcher: a linear
// first-match scan calling Rule.matches. It is deliberately boring — it
// exists so the compiled Program has an independently-reviewable ground
// truth to be equivalence-tested against, and it is what the fuzz and
// property suites compare every compiled program to.
type Interpreter struct {
	rules []Rule
}

// NewInterpreter copies the rules into a reference matcher.
func NewInterpreter(rules []Rule) *Interpreter {
	return &Interpreter{rules: append([]Rule(nil), rules...)}
}

// Match returns the index of the first matching rule, or -1.
func (in *Interpreter) Match(rec *netflow.Record) int {
	for i := range in.rules {
		if in.rules[i].matches(rec) {
			return i
		}
	}
	return -1
}
