package dropper_test

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/dropper"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

// The equivalence wall: for random rule sets and random (match-biased)
// records, the compiled program must agree with the naive reference
// interpreter on every record — same first-match index, bit for bit —
// across seeds × {1, 16, 256, 4096} rules. The generators deliberately
// cover the nasty discretization corners: unretained literal ports (dead
// conditions), PortOther classes, fragment/port contradictions, size bin
// 15's open top end, out-of-range protocol and bin values, v4 vs
// 4-mapped-in-6 vs v6 prefixes, /0 wildcard-width prefixes, and invalid
// record addresses.

// retained is a small palette of retained literal ports.
var retained = []uint16{0, 19, 53, 123, 389, 443, 1023, 1194, 1900, 11211, 27015}

// protoPalette keeps protocol diversity realistic (a handful of IP
// protocols) so per-protocol prefilter construction stays cheap while the
// wildcard and unmatchable (>255) cases still appear.
var protoPalette = []uint32{1, 6, 17, 47, 50, 132, 255}

func genPrefix(rng *rand.Rand) netip.Prefix {
	switch rng.Intn(10) {
	case 0: // v6
		a := netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, byte(rng.Intn(4)), byte(rng.Intn(4)), 0, 0, 0, 0, 0, 0, 0, 0, 0, byte(rng.Intn(256))})
		return netip.PrefixFrom(a, rng.Intn(129))
	case 1: // 4-mapped-in-6: contains only 4-in-6 record addresses
		v4 := netip.AddrFrom4([4]byte{10, byte(rng.Intn(4)), byte(rng.Intn(4)), byte(rng.Intn(256))})
		a := netip.AddrFrom16(v4.As16())
		return netip.PrefixFrom(a, 96+rng.Intn(33))
	default: // v4 in a small space so prefixes collide and nest
		a := netip.AddrFrom4([4]byte{10, byte(rng.Intn(4)), byte(rng.Intn(4)), byte(rng.Intn(256))})
		return netip.PrefixFrom(a, rng.Intn(33))
	}
}

func genPortCond(rng *rand.Rand) uint32 {
	switch rng.Intn(6) {
	case 0:
		return tagging.PortOther
	case 1: // unretained literal: a condition no discretized record meets
		return uint32(2000 + rng.Intn(5000))
	default:
		return uint32(retained[rng.Intn(len(retained))])
	}
}

func genRule(rng *rand.Rand, i int) dropper.Rule {
	r := dropper.Rule{ID: fmt.Sprintf("r%d", i), Action: acl.ActionDrop}
	if rng.Intn(10) == 0 {
		r.Action = acl.ActionMonitor
	}
	if rng.Intn(10) < 7 {
		r.ProtoSet = true
		if rng.Intn(20) == 0 {
			r.Proto = 256 + uint32(rng.Intn(1<<16)) // never matches a uint8
		} else {
			r.Proto = protoPalette[rng.Intn(len(protoPalette))]
		}
	}
	if rng.Intn(10) < 4 {
		r.SrcPortSet, r.SrcPort = true, genPortCond(rng)
	}
	if rng.Intn(10) < 4 {
		r.DstPortSet, r.DstPort = true, genPortCond(rng)
	}
	if rng.Intn(10) < 4 {
		r.SizeBinSet = true
		r.SizeBin = uint32(rng.Intn(16))
		if rng.Intn(20) == 0 {
			r.SizeBin = 16 + uint32(rng.Intn(100)) // out of range, never matches
		}
	}
	if rng.Intn(10) < 2 {
		r.Fragment = true // may contradict the port conditions above
	}
	if rng.Intn(10) < 6 {
		r.Dst = genPrefix(rng)
	}
	if rng.Intn(10) < 3 {
		r.Src = genPrefix(rng)
	}
	if rng.Intn(50) == 0 {
		r.Dead = true
	}
	return r
}

func genRules(rng *rand.Rand, n int) []dropper.Rule {
	out := make([]dropper.Rule, n)
	for i := range out {
		out[i] = genRule(rng, i)
	}
	return out
}

func randomAddr(rng *rand.Rand) netip.Addr {
	switch rng.Intn(12) {
	case 0: // invalid: contained in no prefix
		return netip.Addr{}
	case 1: // zoned: netip treats it as contained in no prefix
		return netip.AddrFrom16([16]byte{0xfe, 0x80, 15: byte(rng.Intn(256))}).WithZone("eth0")
	case 2, 3: // v6
		return netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, byte(rng.Intn(4)), byte(rng.Intn(4)), 15: byte(rng.Intn(256))})
	case 4: // 4-in-6
		v4 := netip.AddrFrom4([4]byte{10, byte(rng.Intn(4)), byte(rng.Intn(4)), byte(rng.Intn(256))})
		return netip.AddrFrom16(v4.As16())
	default:
		return netip.AddrFrom4([4]byte{10, byte(rng.Intn(4)), byte(rng.Intn(4)), byte(rng.Intn(256))})
	}
}

func randomPort(rng *rand.Rand) uint16 {
	if rng.Intn(2) == 0 {
		return retained[rng.Intn(len(retained))]
	}
	return uint16(rng.Intn(65536))
}

func randomRecord(rng *rand.Rand) netflow.Record {
	rec := netflow.Record{
		SrcIP:    randomAddr(rng),
		DstIP:    randomAddr(rng),
		SrcPort:  randomPort(rng),
		DstPort:  randomPort(rng),
		Protocol: uint8(protoPalette[rng.Intn(len(protoPalette))]),
		Fragment: rng.Intn(8) == 0,
		Packets:  uint64(rng.Intn(3)), // 0 packets → mean size 0
		Bytes:    uint64(rng.Intn(4000)),
	}
	if rng.Intn(8) == 0 {
		rec.Protocol = uint8(rng.Intn(256))
	}
	return rec
}

// addrIn picks an address inside the prefix by randomizing host bits.
func addrIn(rng *rand.Rand, p netip.Prefix) netip.Addr {
	if p.Addr().Is4() {
		a := p.Addr().As4()
		for bit := p.Bits(); bit < 32; bit++ {
			if rng.Intn(2) == 0 {
				a[bit/8] ^= 1 << (7 - bit%8)
			}
		}
		return netip.AddrFrom4(a)
	}
	a := p.Addr().As16()
	for bit := p.Bits(); bit < 128; bit++ {
		if rng.Intn(2) == 0 {
			a[bit/8] ^= 1 << (7 - bit%8)
		}
	}
	return netip.AddrFrom16(a)
}

// recordForRule biases a random record toward satisfying the rule so hits
// (and first-match priority among several candidate rules) get exercised,
// not just misses.
func recordForRule(rng *rand.Rand, r *dropper.Rule) netflow.Record {
	rec := randomRecord(rng)
	if r.ProtoSet && r.Proto <= 255 {
		rec.Protocol = uint8(r.Proto)
	}
	if r.SrcPortSet {
		if r.SrcPort == tagging.PortOther {
			rec.SrcPort = uint16(2000 + rng.Intn(60000))
		} else if r.SrcPort <= 65535 {
			rec.SrcPort = uint16(r.SrcPort)
		}
	}
	if r.DstPortSet {
		if r.DstPort == tagging.PortOther {
			rec.DstPort = uint16(2000 + rng.Intn(60000))
		} else if r.DstPort <= 65535 {
			rec.DstPort = uint16(r.DstPort)
		}
	}
	if r.SizeBinSet && r.SizeBin <= 15 {
		rec.Packets = 1
		rec.Bytes = uint64(r.SizeBin*tagging.SizeBinWidth) + uint64(rng.Intn(tagging.SizeBinWidth))
		if r.SizeBin == 15 && rng.Intn(2) == 0 {
			rec.Bytes = uint64(1500 + rng.Intn(100000)) // the open top end
		}
	}
	rec.Fragment = r.Fragment
	if r.Dst.IsValid() {
		rec.DstIP = addrIn(rng, r.Dst)
	}
	if r.Src.IsValid() {
		rec.SrcIP = addrIn(rng, r.Src)
	}
	return rec
}

func genRecords(rng *rand.Rand, rules []dropper.Rule, n int) []netflow.Record {
	out := make([]netflow.Record, n)
	for i := range out {
		if len(rules) > 0 && rng.Intn(2) == 0 {
			out[i] = recordForRule(rng, &rules[rng.Intn(len(rules))])
		} else {
			out[i] = randomRecord(rng)
		}
	}
	return out
}

func TestCompiledMatchesInterpreter(t *testing.T) {
	for _, n := range []int{1, 16, 256, 4096} {
		records := 4000
		if n == 4096 {
			records = 800 // the interpreter side is O(rules) per record
		}
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("rules=%d/seed=%d", n, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed*7919 + int64(n)))
				rules := genRules(rng, n)
				prog := dropper.Compile(rules)
				interp := dropper.NewInterpreter(rules)
				for k := 0; k < records; k++ {
					rec := genRecords(rng, rules, 1)[0]
					want := interp.Match(&rec)
					got := prog.Match(&rec)
					if got != want {
						t.Fatalf("record %d diverged: compiled=%d interpreter=%d\nrecord: %+v",
							k, got, want, rec)
					}
				}
			})
		}
	}
}

// TestCompileACLEquivalence pins the full verdict path: curated tagging
// rules scoped to classified targets via acl.ForTargets, lowered with
// FromEntries, must reproduce acl.Filter.ApplyIndex — the entry-level
// first-match reference the ACL text is rendered from — on every record.
func TestCompileACLEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed * 104729))

		// Mined-style antecedents: discretize real records and keep
		// random non-empty item subsets, so every antecedent is a
		// satisfiable conjunction like the miner produces.
		var taggingRules []tagging.Rule
		var scratch []tagging.Item
		for i := 0; i < 12; i++ {
			rec := randomRecord(rng)
			items, _ := tagging.Itemize(&rec, scratch)
			keep := items[:0:0]
			for _, it := range items {
				if rng.Intn(3) > 0 {
					keep = append(keep, it)
				}
			}
			if len(keep) == 0 {
				continue
			}
			taggingRules = append(taggingRules, tagging.Rule{
				ID:         fmt.Sprintf("tr%d", i),
				Antecedent: keep,
				Status:     tagging.StatusAccept,
			})
		}
		var targets []netip.Addr
		for i := 0; i < 6; i++ {
			targets = append(targets, randomAddr(rng))
		}
		entries := acl.ForTargets(taggingRules, targets, acl.ActionDrop)
		if len(entries) == 0 {
			t.Fatalf("seed %d produced no entries", seed)
		}

		filter := acl.NewFilter(entries)
		prog := dropper.Compile(dropper.FromEntries(entries))
		interp := dropper.NewInterpreter(dropper.FromEntries(entries))
		for k := 0; k < 3000; k++ {
			rec := randomRecord(rng)
			if rng.Intn(2) == 0 { // bias records onto the targets
				rec.DstIP = targets[rng.Intn(len(targets))]
			}
			wantIdx, wantAct := filter.ApplyIndex(&rec)
			if got := prog.Match(&rec); got != wantIdx {
				t.Fatalf("seed %d record %d: compiled=%d filter=%d (%+v)", seed, k, got, wantIdx, rec)
			}
			if got := interp.Match(&rec); got != wantIdx {
				t.Fatalf("seed %d record %d: interpreter=%d filter=%d (%+v)", seed, k, got, wantIdx, rec)
			}
			if wantIdx >= 0 && prog.Action(wantIdx) != wantAct {
				t.Fatalf("seed %d record %d: action %q != %q", seed, k, prog.Action(wantIdx), wantAct)
			}
		}
	}
}

// TestMatchZeroAllocs is the allocation gate on the match path: Match and
// the full Stage.EmitBatch hop must run allocation-free at steady state.
func TestMatchZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rules := genRules(rng, 256)
	prog := dropper.Compile(rules)
	recs := genRecords(rng, rules, 512)

	sink := 0
	if avg := testing.AllocsPerRun(100, func() {
		for i := range recs {
			sink += prog.Match(&recs[i])
		}
	}); avg != 0 {
		t.Errorf("Program.Match allocates: %.2f allocs per 512 matches (want 0)", avg)
	}

	stage := dropper.NewStage(func([]netflow.Record) {})
	stage.Swap(prog)
	batch := make([]netflow.Record, 64)
	if avg := testing.AllocsPerRun(100, func() {
		copy(batch, recs[:64])
		stage.EmitBatch(batch)
	}); avg != 0 {
		t.Errorf("Stage.EmitBatch allocates: %.2f allocs/batch (want 0)", avg)
	}
	_ = sink
}
