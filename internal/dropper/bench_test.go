package dropper_test

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/dropper"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// Benchmarks for BENCH_PR7.json: per-record match cost of the compiled
// program vs the naive per-rule interpreter on hit and miss traffic
// (1e9/ns_per_op is the pps-style throughput bench.sh reports), compile
// latency per rule-set size, and the hot-swap publication cost.

type benchSet struct {
	prog   *dropper.Program
	interp *dropper.Interpreter
	hits   []netflow.Record
	misses []netflow.Record
}

func makeBenchSet(n int) benchSet {
	rng := rand.New(rand.NewSource(int64(n) + 7))
	// Verdict-shaped rules: every rule is scoped to a victim prefix in
	// 10.0.0.0/8 (the way ForTargets scopes accepted rules to classified
	// targets), so miss traffic — destinations outside the victim set —
	// is constructible and the interpreter pays the full per-rule scan
	// for it, the realistic benign-traffic worst case.
	rules := genRules(rng, n)
	for i := range rules {
		rules[i].Dead = false
		rules[i].Dst = genBenchTarget(rng)
	}
	prog := dropper.Compile(rules)
	interp := dropper.NewInterpreter(rules)
	hits := make([]netflow.Record, 0, 1024)
	misses := make([]netflow.Record, 0, 1024)
	for len(hits) < 1024 {
		rec := recordForRule(rng, &rules[rng.Intn(len(rules))])
		if interp.Match(&rec) >= 0 {
			hits = append(hits, rec)
		}
	}
	for len(misses) < 1024 {
		rec := randomRecord(rng)
		rec.DstIP = netip.AddrFrom4([4]byte{172, 16, byte(rng.Intn(256)), byte(rng.Intn(256))})
		if interp.Match(&rec) < 0 {
			misses = append(misses, rec)
		}
	}
	return benchSet{prog: prog, interp: interp, hits: hits, misses: misses}
}

func genBenchTarget(rng *rand.Rand) netip.Prefix {
	a := netip.AddrFrom4([4]byte{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
	return netip.PrefixFrom(a, 24+rng.Intn(9))
}

func benchMatch(b *testing.B, fn func(*netflow.Record) int, recs []netflow.Record) {
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += fn(&recs[i&1023])
	}
	_ = sink
}

func BenchmarkMatch(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		set := makeBenchSet(n)
		b.Run(fmt.Sprintf("compiled_hit/rules=%d", n), func(b *testing.B) {
			benchMatch(b, set.prog.Match, set.hits)
		})
		b.Run(fmt.Sprintf("compiled_miss/rules=%d", n), func(b *testing.B) {
			benchMatch(b, set.prog.Match, set.misses)
		})
		b.Run(fmt.Sprintf("interp_hit/rules=%d", n), func(b *testing.B) {
			benchMatch(b, set.interp.Match, set.hits)
		})
		b.Run(fmt.Sprintf("interp_miss/rules=%d", n), func(b *testing.B) {
			benchMatch(b, set.interp.Match, set.misses)
		})
	}
}

func BenchmarkCompile(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		rng := rand.New(rand.NewSource(int64(n) + 7))
		rules := genRules(rng, n)
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = dropper.Compile(rules)
			}
		})
	}
}

// BenchmarkStageSwap measures the publication cost of a hot swap while a
// program is already compiled — the pause-free pointer store plus counter
// fold, i.e. what a training round pays beyond Compile itself.
func BenchmarkStageSwap(b *testing.B) {
	set := makeBenchSet(256)
	other := makeBenchSet(256)
	stage := dropper.NewStage(func([]netflow.Record) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i&1 == 0 {
			stage.Swap(set.prog)
		} else {
			stage.Swap(other.prog)
		}
	}
}

// BenchmarkStageEmitBatch is the full per-batch stage overhead on
// pass-through traffic (the common case: nothing matches).
func BenchmarkStageEmitBatch(b *testing.B) {
	set := makeBenchSet(256)
	stage := dropper.NewStage(func([]netflow.Record) {})
	stage.Swap(set.prog)
	batch := make([]netflow.Record, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = set.misses[(i+j)&1023]
		}
		stage.EmitBatch(batch)
	}
}
