package dropper

import (
	"encoding/binary"
	"math"
	"math/bits"
	"net/netip"
	"sync/atomic"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

// The compiled matcher is a bitvector-intersection classifier: every
// dimension (protocol, src port class, dst port class, size bin,
// fragment, dst prefix, src prefix) lowers to a lookup table mapping the
// record's field value to an interned rule bitset — bit i set means "rule
// i's condition on this dimension holds". The AND of the seven per-record
// bitsets is exactly the set of matching rules, and the lowest set bit is
// the first match, reproducing the interpreter's first-match-wins
// priority bit-for-bit.
//
// Bitsets are interned into one flat []uint64 arena (set k occupies words
// [k*words, (k+1)*words)); index 0 is the canonical empty set, so a zero
// table entry short-circuits to a miss before any word is touched. On top
// of that, an 8 KB per-protocol destination-port bitmap (bit q = "some
// rule compatible with this protocol accepts dst port q") rejects the
// common miss in two loads.

// portValueTable memoizes tagging.PortValue for every port so compiles
// don't pay 65536 map probes per dimension.
var portValueTable = func() (t [65536]uint32) {
	for p := 0; p <= 65535; p++ {
		t[p] = tagging.PortValue(uint16(p))
	}
	return
}()

// portBits is the 8 KB per-protocol destination-port prefilter bitmap.
type portBits [1024]uint64

func (b *portBits) set(p uint16)       { b[p>>6] |= 1 << (p & 63) }
func (b *portBits) test(p uint16) bool { return b[p>>6]&(1<<(p&63)) != 0 }

// trieNode is one packed LPM node: child indices (-1 = none) plus the
// interned set of rules whose prefix contains every address under this
// node (accumulated down the path, so a lookup needs no backtracking).
type trieNode struct {
	child [2]int32
	set   int32
}

// trie is an LPM prefix trie packed into one node array; nodes[0] is the
// root. An empty rule list still gets a root carrying the wildcard set.
type trie struct {
	nodes []trieNode
}

// lookup descends the address bits, returning the deepest accumulated
// set. bits is 32 or 128; key is the address in network bit order.
func (t *trie) lookup(key []byte, nbits int) int32 {
	cur := int32(0)
	best := t.nodes[0].set
	for d := 0; d < nbits; d++ {
		cur = t.nodes[cur].child[(key[d>>3]>>(7-d&7))&1]
		if cur < 0 {
			break
		}
		best = t.nodes[cur].set
	}
	return best
}

// Program is one immutable compiled match program. All lookup state is
// written before publication and never mutated afterwards (the per-rule
// hit counters are atomic), so Match is safe for any number of concurrent
// readers with no locks and no allocations.
type Program struct {
	rules []Rule
	words int
	sets  []uint64

	protoSet  [256]int32
	srcPort   [65536]int32
	dstPort   [65536]int32
	prefilter [256]*portBits
	// srcWild/dstWild are the port-dimension sets for fragmented records
	// (port conditions never hold on fragments, so only rules without a
	// port condition survive the dimension).
	srcWild, dstWild int32
	// fragTrue is the fragment-dimension set for fragmented records (all
	// live rules), fragFalse for unfragmented ones (rules without a
	// fragment requirement).
	fragTrue, fragFalse int32
	// sizeHi are ascending inclusive upper bounds on tagging.SizeValue;
	// sizeSet[i] is the rule set for sizes ≤ sizeHi[i] (and > sizeHi[i-1]).
	// Adjacent bins with identical sets are merged, so the table is at
	// most 16 entries and usually shorter.
	sizeHi  []uint32
	sizeSet []int32
	// Prefix dimensions: per-family tries plus the "no prefix condition"
	// set used for invalid or zoned record addresses, which netip never
	// considers contained in any prefix.
	srcV4, srcV6, dstV4, dstV6 trie
	srcWildOnly, dstWildOnly   int32

	hits []atomic.Uint64
	byID map[string][]int32

	compileNS int64
}

// bitset helpers over []uint64 little-endian-by-word sets.

func newBits(words int) []uint64 { return make([]uint64, words) }

func setBit(bs []uint64, i int) { bs[i>>6] |= 1 << (i & 63) }

func orBits(dst, src []uint64) {
	for i := range src {
		dst[i] |= src[i]
	}
}

// setBuilder interns bitsets into the flat arena, deduplicating by
// content. Index 0 is always the empty set.
type setBuilder struct {
	words int
	arena []uint64
	idx   map[string]int32
	key   []byte
}

func newSetBuilder(nrules int) *setBuilder {
	words := (nrules + 63) / 64
	if words == 0 {
		words = 1
	}
	b := &setBuilder{
		words: words,
		arena: make([]uint64, words), // set 0 = empty
		idx:   make(map[string]int32),
		key:   make([]byte, words*8),
	}
	b.idx[string(b.key)] = 0
	return b
}

func (b *setBuilder) intern(set []uint64) int32 {
	for i, w := range set {
		binary.LittleEndian.PutUint64(b.key[i*8:], w)
	}
	if id, ok := b.idx[string(b.key)]; ok {
		return id
	}
	id := int32(len(b.arena) / b.words)
	b.arena = append(b.arena, set...)
	b.idx[string(b.key)] = id
	return id
}

func (b *setBuilder) set(id int32) []uint64 {
	return b.arena[int(id)*b.words : (int(id)+1)*b.words]
}

// trieBuilder accumulates prefix insertions before sets are interned.
type trieBuilder struct {
	nodes []tbNode
}

type tbNode struct {
	child [2]int32
	mark  []uint64 // rules whose prefix terminates exactly here
}

func newTrieBuilder() *trieBuilder {
	return &trieBuilder{nodes: []tbNode{{child: [2]int32{-1, -1}}}}
}

func (tb *trieBuilder) insert(key []byte, nbits, rule, words int) {
	cur := int32(0)
	for d := 0; d < nbits; d++ {
		bit := (key[d>>3] >> (7 - d&7)) & 1
		nxt := tb.nodes[cur].child[bit]
		if nxt < 0 {
			nxt = int32(len(tb.nodes))
			tb.nodes = append(tb.nodes, tbNode{child: [2]int32{-1, -1}})
			tb.nodes[cur].child[bit] = nxt
		}
		cur = nxt
	}
	if tb.nodes[cur].mark == nil {
		tb.nodes[cur].mark = newBits(words)
	}
	setBit(tb.nodes[cur].mark, rule)
}

// finish interns the accumulated (inherited ∪ marked) set at every node.
// Nodes without marks reuse the parent's interned index, so the arena
// only grows at prefix terminals.
func (tb *trieBuilder) finish(b *setBuilder, wild []uint64, wildIdx int32) trie {
	out := make([]trieNode, len(tb.nodes))
	var dfs func(n int32, acc []uint64, accIdx int32)
	dfs = func(n int32, acc []uint64, accIdx int32) {
		nd := &tb.nodes[n]
		if nd.mark != nil {
			merged := append([]uint64(nil), acc...)
			orBits(merged, nd.mark)
			acc = merged
			accIdx = b.intern(merged)
		}
		out[n] = trieNode{child: nd.child, set: accIdx}
		if c := nd.child[0]; c >= 0 {
			dfs(c, acc, accIdx)
		}
		if c := nd.child[1]; c >= 0 {
			dfs(c, acc, accIdx)
		}
	}
	dfs(0, wild, wildIdx)
	return trie{nodes: out}
}

// Compile lowers a rule list into a match program. Compilation is total:
// every rule list — including contradictory, dead or unmatchable rules —
// compiles into a program that agrees with the interpreter on every
// record; unmatchable conditions simply never contribute a set bit.
func Compile(rules []Rule) *Program {
	start := time.Now()
	p := &Program{rules: append([]Rule(nil), rules...)}
	n := len(p.rules)
	b := newSetBuilder(n)
	p.words = b.words

	live := newBits(b.words)
	for i := range p.rules {
		if !p.rules[i].Dead {
			setBit(live, i)
		}
	}

	// Protocol dimension: explicit values over a wildcard base. Values
	// above 255 can never equal a record's uint8 protocol, so they are
	// dropped here exactly as the interpreter's != test drops them.
	protoWild := newBits(b.words)
	protoExplicit := make(map[uint32][]int)
	for i := range p.rules {
		r := &p.rules[i]
		if r.Dead {
			continue
		}
		if r.ProtoSet {
			protoExplicit[r.Proto] = append(protoExplicit[r.Proto], i)
		} else {
			setBit(protoWild, i)
		}
	}
	scratch := newBits(b.words)
	for v := 0; v < 256; v++ {
		copy(scratch, protoWild)
		for _, i := range protoExplicit[uint32(v)] {
			setBit(scratch, i)
		}
		p.protoSet[v] = b.intern(scratch)
	}

	// Port dimensions. The table maps every port through its
	// tagging.PortValue class; a condition naming a value no port
	// discretizes to (an unretained literal) lands in no table entry and
	// the rule goes dead on this dimension, matching the interpreter.
	p.srcWild = buildPortDim(b, p.rules, &p.srcPort,
		func(r *Rule) (uint32, bool) { return r.SrcPort, r.SrcPortSet })
	p.dstWild = buildPortDim(b, p.rules, &p.dstPort,
		func(r *Rule) (uint32, bool) { return r.DstPort, r.DstPortSet })

	// Size dimension: 16 bins keyed on tagging.SizeValue, merged into
	// ranges where adjacent bins carry identical sets. Bin 15 is open
	// above (SizeBin clamps), so its bound is MaxUint32 inclusive.
	sizeWild := newBits(b.words)
	sizeBins := make(map[uint32][]int)
	for i := range p.rules {
		r := &p.rules[i]
		if r.Dead {
			continue
		}
		if r.SizeBinSet {
			sizeBins[r.SizeBin] = append(sizeBins[r.SizeBin], i)
		} else {
			setBit(sizeWild, i)
		}
	}
	prev := int32(-1)
	for bin := uint32(0); bin < 16; bin++ {
		copy(scratch, sizeWild)
		for _, i := range sizeBins[bin] {
			setBit(scratch, i)
		}
		id := b.intern(scratch)
		hi := uint32(math.MaxUint32)
		if bin < 15 {
			hi = (bin+1)*tagging.SizeBinWidth - 1
		}
		if id == prev {
			p.sizeHi[len(p.sizeHi)-1] = hi
		} else {
			p.sizeHi = append(p.sizeHi, hi)
			p.sizeSet = append(p.sizeSet, id)
			prev = id
		}
	}

	// Fragment dimension. A fragmented record satisfies every live
	// rule's fragment condition (required-or-absent both hold); an
	// unfragmented one only rules without the requirement.
	fragFalse := newBits(b.words)
	for i := range p.rules {
		r := &p.rules[i]
		if !r.Dead && !r.Fragment {
			setBit(fragFalse, i)
		}
	}
	p.fragTrue = b.intern(live)
	p.fragFalse = b.intern(fragFalse)

	// Prefix dimensions.
	p.dstV4, p.dstV6, p.dstWildOnly = buildPrefixDim(b, p.rules,
		func(r *Rule) netip.Prefix { return r.Dst })
	p.srcV4, p.srcV6, p.srcWildOnly = buildPrefixDim(b, p.rules,
		func(r *Rule) netip.Prefix { return r.Src })

	// Per-protocol destination-port prefilter: bit q is set iff some
	// rule compatible with the protocol accepts dst port q, so a clear
	// bit proves the seven-way AND is empty. Bitmaps are shared between
	// protocols with identical rule sets.
	byProto := make(map[int32]*portBits)
	for v := 0; v < 256; v++ {
		psi := p.protoSet[v]
		if psi == 0 {
			continue
		}
		bm, ok := byProto[psi]
		if !ok {
			bm = &portBits{}
			ps := b.set(psi)
			overlap := make(map[int32]bool)
			for port := 0; port < 65536; port++ {
				ci := p.dstPort[port]
				hit, seen := overlap[ci]
				if !seen {
					cs := b.set(ci)
					for w := range ps {
						if ps[w]&cs[w] != 0 {
							hit = true
							break
						}
					}
					overlap[ci] = hit
				}
				if hit {
					bm.set(uint16(port))
				}
			}
			byProto[psi] = bm
		}
		p.prefilter[v] = bm
	}

	p.sets = b.arena
	p.hits = make([]atomic.Uint64, n)
	p.byID = make(map[string][]int32)
	for i := range p.rules {
		id := p.rules[i].ID
		p.byID[id] = append(p.byID[id], int32(i))
	}
	p.compileNS = time.Since(start).Nanoseconds()
	return p
}

func buildPortDim(b *setBuilder, rules []Rule, table *[65536]int32, cond func(*Rule) (uint32, bool)) int32 {
	wild := newBits(b.words)
	classes := make(map[uint32][]int)
	for i := range rules {
		r := &rules[i]
		if r.Dead {
			continue
		}
		if v, ok := cond(r); ok {
			classes[v] = append(classes[v], i)
		} else {
			setBit(wild, i)
		}
	}
	wildIdx := b.intern(wild)
	classIdx := make(map[uint32]int32, len(classes))
	scratch := newBits(b.words)
	for v, idxs := range classes {
		copy(scratch, wild)
		for _, i := range idxs {
			setBit(scratch, i)
		}
		classIdx[v] = b.intern(scratch)
	}
	for port := 0; port < 65536; port++ {
		if ci, ok := classIdx[portValueTable[port]]; ok {
			table[port] = ci
		} else {
			table[port] = wildIdx
		}
	}
	return wildIdx
}

func buildPrefixDim(b *setBuilder, rules []Rule, get func(*Rule) netip.Prefix) (v4, v6 trie, wildOnly int32) {
	wild := newBits(b.words)
	tb4, tb6 := newTrieBuilder(), newTrieBuilder()
	for i := range rules {
		r := &rules[i]
		if r.Dead {
			continue
		}
		pfx := get(r)
		if !pfx.IsValid() {
			setBit(wild, i)
			continue
		}
		pfx = pfx.Masked()
		// Family split mirrors netip.Prefix.Contains: a 4-mapped-in-6
		// prefix (BitLen 128) only ever contains 4-in-6 addresses, so it
		// lives in the v6 trie under its 16-byte form.
		if pfx.Addr().Is4() {
			a := pfx.Addr().As4()
			tb4.insert(a[:], pfx.Bits(), i, b.words)
		} else {
			a := pfx.Addr().As16()
			tb6.insert(a[:], pfx.Bits(), i, b.words)
		}
	}
	wildOnly = b.intern(wild)
	return tb4.finish(b, wild, wildOnly), tb6.finish(b, wild, wildOnly), wildOnly
}

// Match returns the index of the first rule matching the record, or -1.
// It performs no allocations and takes no locks; the program is immutable
// so any number of goroutines may match concurrently.
func (p *Program) Match(rec *netflow.Record) int {
	ps := p.protoSet[rec.Protocol]
	if ps == 0 {
		return -1
	}
	var ss, ds, fs int32
	if rec.Fragment {
		ss, ds, fs = p.srcWild, p.dstWild, p.fragTrue
	} else {
		if !p.prefilter[rec.Protocol].test(rec.DstPort) {
			return -1
		}
		ss = p.srcPort[rec.SrcPort]
		ds = p.dstPort[rec.DstPort]
		fs = p.fragFalse
	}
	if ss == 0 || ds == 0 || fs == 0 {
		return -1
	}
	zs := p.sizeSetOf(rec)
	if zs == 0 {
		return -1
	}
	dx := p.prefixSet(&p.dstV4, &p.dstV6, p.dstWildOnly, rec.DstIP)
	if dx == 0 {
		return -1
	}
	sx := p.prefixSet(&p.srcV4, &p.srcV6, p.srcWildOnly, rec.SrcIP)
	if sx == 0 {
		return -1
	}
	w := p.words
	s1 := p.sets[int(ps)*w:]
	s2 := p.sets[int(ss)*w:]
	s3 := p.sets[int(ds)*w:]
	s4 := p.sets[int(fs)*w:]
	s5 := p.sets[int(zs)*w:]
	s6 := p.sets[int(dx)*w:]
	s7 := p.sets[int(sx)*w:]
	for i := 0; i < w; i++ {
		x := s1[i] & s2[i] & s3[i] & s4[i] & s5[i] & s6[i] & s7[i]
		if x != 0 {
			return i*64 + bits.TrailingZeros64(x)
		}
	}
	return -1
}

func (p *Program) sizeSetOf(rec *netflow.Record) int32 {
	s := tagging.SizeValue(rec.MeanPacketSize())
	lo, hi := 0, len(p.sizeHi)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s <= p.sizeHi[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return p.sizeSet[lo]
}

func (p *Program) prefixSet(v4, v6 *trie, wildOnly int32, ip netip.Addr) int32 {
	// netip never considers an invalid or zoned address contained in any
	// prefix, so only unscoped rules can match such a record.
	if !ip.IsValid() || ip.Zone() != "" {
		return wildOnly
	}
	if ip.Is4() {
		a := ip.As4()
		return v4.lookup(a[:], 32)
	}
	a := ip.As16()
	return v6.lookup(a[:], 128)
}

// Rules returns a copy of the program's rule list in priority order.
func (p *Program) Rules() []Rule { return append([]Rule(nil), p.rules...) }

// Len returns the number of rules (dead ones included — indices align
// with the verdict stream).
func (p *Program) Len() int { return len(p.rules) }

// Action returns the action of rule idx.
func (p *Program) Action(idx int) acl.Action { return p.rules[idx].Action }

// CompileNanos reports how long Compile took for this program.
func (p *Program) CompileNanos() int64 { return p.compileNS }

// RuleHits returns the per-rule match-hit counters accumulated while this
// program was live, aligned with Rules().
func (p *Program) RuleHits() []uint64 {
	out := make([]uint64, len(p.hits))
	for i := range p.hits {
		out[i] = p.hits[i].Load()
	}
	return out
}
