package dropper

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
)

// DROP1 is the rule-list serialization: the magic, a uvarint rule count,
// then per rule the ID and action as length-prefixed strings, a condition
// flag byte, the set conditions as uvarints in flag order, and the two
// prefix scopes. Programs serialize as their rule lists — the compiled
// tables are a pure function of the rules, so deserialize + Compile
// reconstructs a program that matches bit-for-bit (the fuzz suite pins
// this round trip). The format is what pipeline checkpoints embed so a
// restarted process resumes dropping with the exact pre-crash program.

const magic = "DROP1"

// Flag bits of the per-rule condition byte.
const (
	flagProto = 1 << iota
	flagSrcPort
	flagDstPort
	flagSizeBin
	flagFragment
	flagDead
)

// maxRules bounds deserialization so corrupt or adversarial input cannot
// demand absurd allocations before failing.
const maxRules = 1 << 20

// Marshal encodes a rule list in the DROP1 format.
func Marshal(rules []Rule) []byte {
	b := []byte(magic)
	b = binary.AppendUvarint(b, uint64(len(rules)))
	for i := range rules {
		r := &rules[i]
		b = appendString(b, r.ID)
		b = appendString(b, string(r.Action))
		var flags byte
		if r.ProtoSet {
			flags |= flagProto
		}
		if r.SrcPortSet {
			flags |= flagSrcPort
		}
		if r.DstPortSet {
			flags |= flagDstPort
		}
		if r.SizeBinSet {
			flags |= flagSizeBin
		}
		if r.Fragment {
			flags |= flagFragment
		}
		if r.Dead {
			flags |= flagDead
		}
		b = append(b, flags)
		if r.ProtoSet {
			b = binary.AppendUvarint(b, uint64(r.Proto))
		}
		if r.SrcPortSet {
			b = binary.AppendUvarint(b, uint64(r.SrcPort))
		}
		if r.DstPortSet {
			b = binary.AppendUvarint(b, uint64(r.DstPort))
		}
		if r.SizeBinSet {
			b = binary.AppendUvarint(b, uint64(r.SizeBin))
		}
		b = appendPrefix(b, r.Src)
		b = appendPrefix(b, r.Dst)
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Prefix encoding: a family byte (0 = none, 4 = IPv4, 6 = IPv6 including
// 4-mapped-in-6), then the address bytes and a bits byte. The address is
// stored unmasked so Marshal∘Unmarshal is the identity on the rule.
func appendPrefix(b []byte, p netip.Prefix) []byte {
	if !p.IsValid() {
		return append(b, 0)
	}
	if p.Addr().Is4() {
		a := p.Addr().As4()
		b = append(b, 4)
		b = append(b, a[:]...)
	} else {
		a := p.Addr().As16()
		b = append(b, 6)
		b = append(b, a[:]...)
	}
	return append(b, byte(p.Bits()))
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("dropper: truncated %s", what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) bytes(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.fail("dropper: truncated %s", what)
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *decoder) str(what string) string {
	n := d.uvarint(what + " length")
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("dropper: truncated %s", what)
		return ""
	}
	return string(d.bytes(int(n), what))
}

func (d *decoder) u32(what string) uint32 {
	v := d.uvarint(what)
	if v > 0xFFFFFF {
		d.fail("dropper: %s %d exceeds the 24-bit item range", what, v)
	}
	return uint32(v)
}

func (d *decoder) prefix(what string) netip.Prefix {
	fam := d.bytes(1, what+" family")
	if d.err != nil || fam[0] == 0 {
		return netip.Prefix{}
	}
	var addr netip.Addr
	var maxBits int
	switch fam[0] {
	case 4:
		raw := d.bytes(4, what+" address")
		if d.err != nil {
			return netip.Prefix{}
		}
		addr = netip.AddrFrom4([4]byte(raw))
		maxBits = 32
	case 6:
		raw := d.bytes(16, what+" address")
		if d.err != nil {
			return netip.Prefix{}
		}
		addr = netip.AddrFrom16([16]byte(raw))
		maxBits = 128
	default:
		d.fail("dropper: bad %s family %d", what, fam[0])
		return netip.Prefix{}
	}
	nb := d.bytes(1, what+" bits")
	if d.err != nil {
		return netip.Prefix{}
	}
	if int(nb[0]) > maxBits {
		d.fail("dropper: %s bits %d exceed family width %d", what, nb[0], maxBits)
		return netip.Prefix{}
	}
	return netip.PrefixFrom(addr, int(nb[0]))
}

// Unmarshal decodes a DROP1 rule list. Every error is reported, never
// panicked: the format is checkpoint and operator-file input.
func Unmarshal(data []byte) ([]Rule, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("dropper: missing %s magic", magic)
	}
	d := &decoder{b: data[len(magic):]}
	n := d.uvarint("rule count")
	if d.err != nil {
		return nil, d.err
	}
	if n > maxRules {
		return nil, fmt.Errorf("dropper: rule count %d exceeds limit %d", n, maxRules)
	}
	rules := make([]Rule, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var r Rule
		r.ID = d.str("rule ID")
		r.Action = acl.Action(d.str("action"))
		fb := d.bytes(1, "flags")
		if d.err != nil {
			break
		}
		flags := fb[0]
		if flags&flagProto != 0 {
			r.Proto, r.ProtoSet = d.u32("protocol"), true
		}
		if flags&flagSrcPort != 0 {
			r.SrcPort, r.SrcPortSet = d.u32("src port"), true
		}
		if flags&flagDstPort != 0 {
			r.DstPort, r.DstPortSet = d.u32("dst port"), true
		}
		if flags&flagSizeBin != 0 {
			r.SizeBin, r.SizeBinSet = d.u32("size bin"), true
		}
		r.Fragment = flags&flagFragment != 0
		r.Dead = flags&flagDead != 0
		r.Src = d.prefix("src prefix")
		r.Dst = d.prefix("dst prefix")
		rules = append(rules, r)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("dropper: %d trailing bytes after %d rules", len(d.b), n)
	}
	return rules, nil
}
