package dropper_test

import (
	"hash/fnv"
	"math/rand"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/dropper"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// fuzzCorpus is a fixed set of flow records every fuzz iteration matches
// against: the discretization corners (retained/unretained ports,
// fragments, size bins incl. the open top end, v4/4-in-6/v6/invalid
// addresses) from a pinned seed.
var fuzzCorpus = func() []netflow.Record {
	rng := rand.New(rand.NewSource(1234))
	recs := make([]netflow.Record, 128)
	for i := range recs {
		recs[i] = randomRecord(rng)
	}
	return recs
}()

// FuzzCompileRules: arbitrary rule text must never panic anything —
// parser, compiler, serializer — and every program that does parse must
// round-trip through DROP1 bytes into a program that agrees with the
// reference interpreter on the corpus flows plus records biased onto the
// parsed rules themselves.
func FuzzCompileRules(f *testing.F) {
	f.Add("drop proto=udp src-port=123 dst=198.51.100.7/32 id=ntp-reflect")
	f.Add("drop proto=udp src-port=other size-bin=15\nmonitor proto=tcp dst-port=179 src=2001:db8::/32")
	f.Add("drop fragment proto=udp\n# comment\n\nshape proto=gre dst=10.0.0.0/8")
	f.Add("drop proto=17 src-port=1900 dst-port=other size-bin=3 dst=::ffff:10.1.2.0/120")
	f.Add("reroute dst=0.0.0.0/0 id=all-of-it")
	f.Add("drop proto=udp proto=tcp")
	f.Add("drop src-port=5000")
	f.Add("totally not a rule ϟ")
	f.Fuzz(func(t *testing.T, text string) {
		rules, err := dropper.ParseRules(text)
		if err != nil {
			return // rejected input; the only requirement is no panic
		}
		prog := dropper.Compile(rules)

		data := dropper.Marshal(rules)
		back, err := dropper.Unmarshal(data)
		if err != nil {
			t.Fatalf("round trip of parsed rules failed: %v\nrules: %+v", err, rules)
		}
		if len(back) != len(rules) {
			t.Fatalf("round trip count %d != %d", len(back), len(rules))
		}
		for i := range rules {
			if back[i] != rules[i] {
				t.Fatalf("rule %d changed across serialize:\ngot  %+v\nwant %+v", i, back[i], rules[i])
			}
		}
		prog2 := dropper.Compile(back)
		interp := dropper.NewInterpreter(rules)

		// Deterministic per input: rule-biased records from a text-hashed
		// seed so prefix/port conditions actually get hit.
		h := fnv.New64a()
		h.Write([]byte(text))
		rng := rand.New(rand.NewSource(int64(h.Sum64())))
		biased := genRecords(rng, rules, 64)

		for _, set := range [][]netflow.Record{fuzzCorpus, biased} {
			for i := range set {
				want := interp.Match(&set[i])
				if got := prog.Match(&set[i]); got != want {
					t.Fatalf("compiled diverged from interpreter: %d != %d on %+v\nrules: %+v",
						got, want, set[i], rules)
				}
				if got := prog2.Match(&set[i]); got != want {
					t.Fatalf("deserialized program diverged: %d != %d on %+v\nrules: %+v",
						got, want, set[i], rules)
				}
			}
		}
	})
}
