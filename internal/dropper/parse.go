package dropper

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"strconv"
	"strings"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

// ParseRules parses the operator drop-rule text format (the -drop-rules
// file), one rule per line, first match wins top to bottom:
//
//	drop proto=udp src-port=123 dst=198.51.100.7/32 id=ntp-reflect
//	drop proto=udp src-port=other size-bin=15
//	monitor proto=tcp dst-port=179 src=2001:db8::/32
//	drop fragment proto=udp
//
// Blank lines and #-comments are ignored. The first token is the action
// (drop, shape, monitor, reroute); the rest are conditions:
//
//	proto=<tcp|udp|icmp|gre|0-255>   IP protocol
//	src-port=<port|other>            tagging port class of the source port
//	dst-port=<port|other>            tagging port class of the destination
//	size-bin=<0-15>                  tagging mean-packet-size bin
//	fragment                         record must be fragmented
//	src=<CIDR> / dst=<CIDR>          prefix scopes (v4 or v6)
//	id=<name>                        counter label; defaults to a stable
//	                                 content hash
//
// Literal ports must be in the retained discretization set (0-1023 plus
// the DDoS catalog ports) — anything else can never match a discretized
// record, so the parser rejects it instead of compiling a dead condition.
// Contradictions (fragment plus a port condition, duplicate keys) are
// errors for the same reason. ParseRules never panics on any input; the
// FuzzCompileRules target holds it to that.
func ParseRules(text string) ([]Rule, error) {
	var rules []Rule
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		r, err := parseRule(fields)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func parseRule(fields []string) (Rule, error) {
	var r Rule
	switch a := acl.Action(fields[0]); a {
	case acl.ActionDrop, acl.ActionShape, acl.ActionMonitor, acl.ActionReroute:
		r.Action = a
	default:
		return r, fmt.Errorf("unknown action %q (want drop, shape, monitor or reroute)", fields[0])
	}
	seen := map[string]bool{}
	for _, tok := range fields[1:] {
		key, val, hasVal := strings.Cut(tok, "=")
		if seen[key] {
			return r, fmt.Errorf("duplicate %s condition", key)
		}
		seen[key] = true
		if key == "fragment" {
			if hasVal {
				return r, fmt.Errorf("fragment takes no value")
			}
			r.Fragment = true
			continue
		}
		if !hasVal || val == "" {
			return r, fmt.Errorf("condition %q needs a value", tok)
		}
		var err error
		switch key {
		case "proto":
			r.Proto, err = parseProto(val)
			r.ProtoSet = err == nil
		case "src-port":
			r.SrcPort, err = parsePortClass(val)
			r.SrcPortSet = err == nil
		case "dst-port":
			r.DstPort, err = parsePortClass(val)
			r.DstPortSet = err == nil
		case "size-bin":
			var b uint64
			b, err = strconv.ParseUint(val, 10, 32)
			if err == nil && b > 15 {
				err = fmt.Errorf("size-bin %d out of range 0-15", b)
			}
			r.SizeBin, r.SizeBinSet = uint32(b), err == nil
		case "src":
			r.Src, err = netip.ParsePrefix(val)
		case "dst":
			r.Dst, err = netip.ParsePrefix(val)
		case "id":
			if !validID(val) {
				err = fmt.Errorf("id %q: want 1-64 chars of [A-Za-z0-9_.:-]", val)
			}
			r.ID = val
		default:
			err = fmt.Errorf("unknown condition %q", key)
		}
		if err != nil {
			return r, fmt.Errorf("%s: %w", key, err)
		}
	}
	if r.Fragment && (r.SrcPortSet || r.DstPortSet) {
		return r, fmt.Errorf("fragment contradicts port conditions: fragmented records carry no port classes")
	}
	if r.ID == "" {
		// Stable content-derived default so counters and serialized
		// programs keep their identity across restarts and re-parses.
		h := fnv.New64a()
		h.Write(Marshal([]Rule{r}))
		r.ID = fmt.Sprintf("r-%08x", h.Sum64()&0xFFFFFFFF)
	}
	return r, nil
}

func parseProto(val string) (uint32, error) {
	switch val {
	case "tcp":
		return 6, nil
	case "udp":
		return 17, nil
	case "icmp":
		return 1, nil
	case "gre":
		return 47, nil
	}
	n, err := strconv.ParseUint(val, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("want tcp, udp, icmp, gre or 0-255")
	}
	if n > 255 {
		return 0, fmt.Errorf("protocol %d out of range 0-255", n)
	}
	return uint32(n), nil
}

func parsePortClass(val string) (uint32, error) {
	if val == "other" {
		return tagging.PortOther, nil
	}
	n, err := strconv.ParseUint(val, 10, 32)
	if err != nil || n > 65535 {
		return 0, fmt.Errorf("want 0-65535 or \"other\"")
	}
	pv := tagging.PortValue(uint16(n))
	if pv != uint32(n) {
		return 0, fmt.Errorf("port %d is not in the retained discretization set; it matches as \"other\"", n)
	}
	return pv, nil
}

func validID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '.', c == ':', c == '-':
		default:
			return false
		}
	}
	return true
}
