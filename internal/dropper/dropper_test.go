package dropper_test

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/dropper"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

func mustParse(t *testing.T, text string) []dropper.Rule {
	t.Helper()
	rules, err := dropper.ParseRules(text)
	if err != nil {
		t.Fatalf("ParseRules(%q): %v", text, err)
	}
	return rules
}

func TestParseRules(t *testing.T) {
	rules := mustParse(t, `
# reflection floods
drop proto=udp src-port=123 dst=198.51.100.7/32 id=ntp-reflect
drop proto=udp src-port=other size-bin=15
monitor proto=tcp dst-port=179 src=2001:db8::/32
drop fragment proto=udp id=frags
`)
	if len(rules) != 4 {
		t.Fatalf("got %d rules, want 4", len(rules))
	}
	r := rules[0]
	if r.ID != "ntp-reflect" || r.Action != acl.ActionDrop ||
		!r.ProtoSet || r.Proto != 17 ||
		!r.SrcPortSet || r.SrcPort != 123 ||
		r.DstPortSet || r.SizeBinSet || r.Fragment ||
		r.Dst != netip.MustParsePrefix("198.51.100.7/32") || r.Src.IsValid() {
		t.Fatalf("rule 0 parsed wrong: %+v", r)
	}
	if rules[1].SrcPort != tagging.PortOther || rules[1].SizeBin != 15 {
		t.Fatalf("rule 1 parsed wrong: %+v", rules[1])
	}
	if rules[1].ID == "" || !strings.HasPrefix(rules[1].ID, "r-") {
		t.Fatalf("rule 1 should get a stable derived ID, got %q", rules[1].ID)
	}
	if again := mustParse(t, "drop proto=udp src-port=other size-bin=15"); again[0].ID != rules[1].ID {
		t.Fatalf("derived ID not stable: %q vs %q", again[0].ID, rules[1].ID)
	}
	if rules[2].Action != acl.ActionMonitor || rules[3].Fragment != true {
		t.Fatalf("rules 2/3 parsed wrong: %+v / %+v", rules[2], rules[3])
	}

	for _, bad := range []string{
		"deny proto=udp",             // unknown action
		"drop proto=sctp",            // unknown protocol name
		"drop proto=300",             // protocol out of range
		"drop src-port=5000",         // unretained literal port
		"drop src-port=70000",        // port out of range
		"drop size-bin=16",           // bin out of range
		"drop dst=10.0.0.0",          // not a CIDR
		"drop fragment src-port=123", // contradiction
		"drop proto=udp proto=tcp",   // duplicate key
		"drop fragment=yes",          // fragment takes no value
		"drop bogus=1",               // unknown key
		"drop id=has space",          // invalid ID (split into bad token)
		"drop id=",                   // empty value
		"drop proto=udp id=nøpe",     // non-ASCII ID
	} {
		if _, err := dropper.ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted, want error", bad)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rules := genRules(rng, 300)
	data := dropper.Marshal(rules)
	got, err := dropper.Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(got) != len(rules) {
		t.Fatalf("round trip count %d != %d", len(got), len(rules))
	}
	for i := range rules {
		if got[i] != rules[i] {
			t.Fatalf("rule %d round trip diverged:\ngot  %+v\nwant %+v", i, got[i], rules[i])
		}
	}

	// Corrupt and truncated inputs must error, never panic.
	if _, err := dropper.Unmarshal(nil); err == nil {
		t.Error("Unmarshal(nil) accepted")
	}
	if _, err := dropper.Unmarshal([]byte("NOPE!")); err == nil {
		t.Error("bad magic accepted")
	}
	for cut := 1; cut < len(data); cut += 37 {
		if _, err := dropper.Unmarshal(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := dropper.Unmarshal(append(append([]byte(nil), data...), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func rec(dst string, proto uint8, srcPort uint16) netflow.Record {
	return netflow.Record{
		SrcIP:    netip.MustParseAddr("192.0.2.1"),
		DstIP:    netip.MustParseAddr(dst),
		SrcPort:  srcPort,
		DstPort:  4444,
		Protocol: proto,
		Packets:  10,
		Bytes:    1000,
	}
}

func TestStageDropsAndForwards(t *testing.T) {
	var forwarded []netflow.Record
	stage := dropper.NewStage(func(b []netflow.Record) {
		forwarded = append(forwarded, b...)
	})

	// The initial empty program evaluates but never drops.
	stage.EmitBatch([]netflow.Record{rec("198.51.100.7", 17, 123), rec("198.51.100.8", 6, 80)})
	if st := stage.Stats(); st.Evaluated != 2 || st.Dropped != 0 || st.Batches != 1 || len(forwarded) != 2 {
		t.Fatalf("empty program stats wrong: %+v, forwarded %d", st, len(forwarded))
	}

	rules := mustParse(t, `
drop proto=udp src-port=123 dst=198.51.100.7/32 id=ntp
monitor proto=tcp id=watch
`)
	stage.Swap(dropper.Compile(rules))
	forwarded = nil

	batch := []netflow.Record{
		rec("198.51.100.7", 17, 123), // dropped by ntp
		rec("198.51.100.9", 17, 123), // off-target: passes
		rec("198.51.100.7", 6, 9999), // matches monitor: passes
	}
	stage.EmitBatch(batch)
	if st := stage.Stats(); st.Evaluated != 5 || st.Dropped != 1 || st.Swaps != 1 {
		t.Fatalf("stats after drop: %+v", st)
	}
	if len(forwarded) != 2 || forwarded[0].DstPort != 4444 {
		t.Fatalf("forwarded %d records, want 2", len(forwarded))
	}
	if forwarded[0].SrcPort != 123 || forwarded[1].Protocol != 6 {
		t.Fatalf("wrong survivors forwarded: %+v", forwarded)
	}
	if n := stage.RuleDrops("ntp"); n != 1 {
		t.Fatalf("RuleDrops(ntp) = %d, want 1", n)
	}
	if n := stage.RuleDrops("watch"); n != 0 {
		t.Fatalf("RuleDrops(watch) = %d, want 0 (monitor matches aren't drops)", n)
	}

	// A batch that drops to empty is consumed, not forwarded.
	forwarded = nil
	stage.EmitBatch([]netflow.Record{rec("198.51.100.7", 17, 123)})
	if st := stage.Stats(); st.FullyDroppedBatches != 1 || len(forwarded) != 0 {
		t.Fatalf("fully dropped batch mishandled: %+v, forwarded %d", st, len(forwarded))
	}

	// Swapping folds the retired program's per-rule counts; totals
	// survive across programs that keep the rule ID.
	stage.Swap(dropper.Compile(rules))
	stage.EmitBatch([]netflow.Record{rec("198.51.100.7", 17, 123)})
	if n := stage.RuleDrops("ntp"); n != 3 {
		t.Fatalf("RuleDrops(ntp) across swap = %d, want 3", n)
	}
}

func TestStageMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	stage := dropper.NewStage(nil)
	stage.RegisterMetrics(reg)
	stage.Swap(dropper.Compile(mustParse(t, "drop proto=udp src-port=1900 id=ssdp")))
	stage.EmitBatch([]netflow.Record{rec("198.51.100.7", 17, 1900), rec("198.51.100.7", 6, 80)})

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"ixps_dropper_evaluated_total 2",
		"ixps_dropper_dropped_total 1",
		"ixps_dropper_rules 1",
		"ixps_dropper_compile_ns ",
		`ixps_dropper_rule_drops_total{rule="ssdp"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestStageSwapUnderLoad hammers EmitBatch from several goroutines while
// programs swap continuously: the race detector checks the snapshot
// memory model, and conservation (evaluated == dropped + forwarded) must
// hold exactly across every swap.
func TestStageSwapUnderLoad(t *testing.T) {
	progA := dropper.Compile(mustParse(t, "drop proto=udp src-port=123 id=a"))
	progB := dropper.Compile(mustParse(t, "drop proto=udp src-port=1900 id=b\ndrop proto=udp src-port=123 id=a"))

	var forwarded [4]uint64
	stages := [4]*dropper.Stage{}
	done := make(chan struct{})
	for g := range stages {
		g := g
		stages[g] = dropper.NewStage(func(b []netflow.Record) { forwarded[g] += uint64(len(b)) })
	}
	// One swapper per stage plus the emitters.
	for _, s := range stages {
		s := s
		go func() {
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if i%2 == 0 {
					s.Swap(progA)
				} else {
					s.Swap(progB)
				}
			}
		}()
	}
	const batches, per = 300, 64
	for g, s := range stages {
		batch := make([]netflow.Record, per)
		for i := 0; i < batches; i++ {
			for j := range batch {
				sp := uint16(123)
				switch j % 3 {
				case 1:
					sp = 1900
				case 2:
					sp = 53
				}
				batch[j] = rec("198.51.100.7", 17, sp)
			}
			s.EmitBatch(batch)
		}
		st := s.Stats()
		if st.Evaluated != batches*per {
			t.Fatalf("stage %d evaluated %d, want %d", g, st.Evaluated, batches*per)
		}
		if st.Dropped+forwarded[g] != st.Evaluated {
			t.Fatalf("stage %d conservation broken: %d dropped + %d forwarded != %d evaluated",
				g, st.Dropped, forwarded[g], st.Evaluated)
		}
	}
	close(done)
}
