// Package balance implements the online dataset balancing procedure of §3:
// within every one-minute bin, all blackholed flows (the underrepresented
// class) are kept, and benign traffic is subsampled to match both the
// number of distinct destination IPs and the number of flows per
// destination IP. The result is a roughly 50:50 dataset with a data
// reduction of more than 99.6 % on realistic traffic mixes (Table 2) —
// which is also the privacy mechanism: unselected records are discarded
// immediately and never stored.
package balance

import (
	"math/rand/v2"
	"net/netip"
	"sort"
)

// Select returns the indices of the records to keep for one minute bin,
// given accessor functions over n records. Blackholed records are always
// kept; benign records are sampled to mirror the blackholed class: an equal
// number of destination IPs and, per paired IP, an equal number of flows.
//
// The pairing matches the k-th busiest blackholed IP with the k-th busiest
// benign candidate IP so the flows-per-IP distributions of the two classes
// correlate (validated as Pearson r ≈ 0.77 in Fig. 3c).
func Select(rng *rand.Rand, n int, blackholed func(int) bool, dstIP func(int) netip.Addr) []int {
	keep := make([]int, 0, 64)
	benignByIP := make(map[netip.Addr][]int)
	bhByIP := make(map[netip.Addr][]int)
	for i := 0; i < n; i++ {
		if blackholed(i) {
			keep = append(keep, i)
			bhByIP[dstIP(i)] = append(bhByIP[dstIP(i)], i)
		} else {
			benignByIP[dstIP(i)] = append(benignByIP[dstIP(i)], i)
		}
	}
	if len(bhByIP) == 0 || len(benignByIP) == 0 {
		if len(bhByIP) == 0 {
			return nil // nothing blackholed: the whole bin is discarded
		}
		return keep
	}

	// Busiest-first ordering of both classes.
	bhCounts := make([]int, 0, len(bhByIP))
	for _, idxs := range bhByIP {
		bhCounts = append(bhCounts, len(idxs))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(bhCounts)))

	type ipFlows struct {
		ip   netip.Addr
		idxs []int
	}
	candidates := make([]ipFlows, 0, len(benignByIP))
	for ip, idxs := range benignByIP {
		candidates = append(candidates, ipFlows{ip, idxs})
	}
	// Map iteration order is random per process: sort by address first so
	// the seeded shuffle (and therefore the whole balanced sample) is
	// reproducible, then shuffle so count ties break without address bias.
	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].ip.Compare(candidates[j].ip) < 0
	})
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	sort.SliceStable(candidates, func(i, j int) bool {
		return len(candidates[i].idxs) > len(candidates[j].idxs)
	})

	pairs := len(bhCounts)
	if pairs > len(candidates) {
		pairs = len(candidates)
	}
	for k := 0; k < pairs; k++ {
		want := bhCounts[k]
		idxs := candidates[k].idxs
		if want > len(idxs) {
			want = len(idxs)
		}
		// Partial Fisher-Yates: draw `want` flows without replacement.
		for j := 0; j < want; j++ {
			r := j + rng.IntN(len(idxs)-j)
			idxs[j], idxs[r] = idxs[r], idxs[j]
			keep = append(keep, idxs[j])
		}
	}
	sort.Ints(keep)
	return keep
}

// Stats accounts the reduction achieved by balancing.
type Stats struct {
	In          uint64 // records seen
	Out         uint64 // records kept
	OutBH       uint64 // kept records that are blackholed
	MinutesIn   uint64
	MinutesKept uint64 // minutes with at least one blackholed flow
	// Late counts records that arrived for an already-flushed minute bin
	// (clock skew between exporters, or a stalled segment of the pipeline
	// releasing stale batches). They are included in In but can never be
	// kept: a flushed bin cannot be rebalanced retroactively.
	Late uint64
}

// Reduction returns kept/seen, the rightmost column of Table 2.
func (s *Stats) Reduction() float64 {
	if s.In == 0 {
		return 0
	}
	return float64(s.Out) / float64(s.In)
}

// BlackholeShare returns the blackholed share of the balanced output,
// expected to be ≈0.5.
func (s *Stats) BlackholeShare() float64 {
	if s.Out == 0 {
		return 0
	}
	return float64(s.OutBH) / float64(s.Out)
}

// Balancer applies Select minute by minute over a stream of records of any
// type T (netflow.Record, synth.Flow, ...), using accessor functions. It
// buffers exactly one minute bin at a time.
type Balancer[T any] struct {
	rng        *rand.Rand
	src        *rand.PCG // kept for checkpoint serialization
	minuteOf   func(*T) int64
	blackholed func(*T) bool
	dstIP      func(*T) netip.Addr
	emit       func(T)

	cur   int64
	buf   []T
	Stats Stats
}

// New creates a Balancer. seed fixes the benign sampling; emit receives
// every kept record in timestamp order per bin.
func New[T any](
	seed uint64,
	minuteOf func(*T) int64,
	blackholed func(*T) bool,
	dstIP func(*T) netip.Addr,
	emit func(T),
) *Balancer[T] {
	src := rand.NewPCG(seed, seed^0xD1B54A32D192ED03)
	return &Balancer[T]{
		rng:        rand.New(src),
		src:        src,
		minuteOf:   minuteOf,
		blackholed: blackholed,
		dstIP:      dstIP,
		emit:       emit,
		cur:        -1 << 62,
	}
}

// Add feeds one record. Records must arrive in non-decreasing minute order;
// a record from an earlier minute than the current bin is dropped (late
// arrivals cannot be balanced retroactively once the bin was flushed).
func (b *Balancer[T]) Add(rec T) {
	m := b.minuteOf(&rec)
	switch {
	case m == b.cur:
		b.buf = append(b.buf, rec)
	case m > b.cur:
		b.flush()
		b.cur = m
		b.buf = append(b.buf, rec)
	default:
		b.Stats.In++ // count it as seen, but it cannot be kept
		b.Stats.Late++
	}
}

// AddBatch feeds a batch of records in order — the batched twin of Add for
// collectors that deliver records per EmitBatch. It is equivalent to calling
// Add on each element (identical Stats, identical kept sample) but keeps the
// slice walk in one call frame. The batch slice may be reused by the caller
// after return: records are copied into the bin buffer.
//
// Note the Stats contract Add establishes: records buffered into a bin are
// counted into Stats.In by flush, while late records (before the current
// bin) are counted immediately — AddBatch must not pre-count buffered
// records, or every record would be counted twice.
func (b *Balancer[T]) AddBatch(recs []T) {
	for i := range recs {
		m := b.minuteOf(&recs[i])
		switch {
		case m == b.cur:
			b.buf = append(b.buf, recs[i])
		case m > b.cur:
			b.flush()
			b.cur = m
			b.buf = append(b.buf, recs[i])
		default:
			b.Stats.In++ // late: seen, but cannot be kept
			b.Stats.Late++
		}
	}
}

// Flush balances and emits the current bin. Call once after the last Add.
func (b *Balancer[T]) Flush() { b.flush() }

func (b *Balancer[T]) flush() {
	if len(b.buf) == 0 {
		return
	}
	b.Stats.MinutesIn++
	b.Stats.In += uint64(len(b.buf))
	keep := Select(b.rng, len(b.buf),
		func(i int) bool { return b.blackholed(&b.buf[i]) },
		func(i int) netip.Addr { return b.dstIP(&b.buf[i]) },
	)
	if len(keep) > 0 {
		b.Stats.MinutesKept++
	}
	for _, i := range keep {
		b.Stats.Out++
		if b.blackholed(&b.buf[i]) {
			b.Stats.OutBH++
		}
		if b.emit != nil {
			b.emit(b.buf[i])
		}
	}
	b.buf = b.buf[:0]
}
