package balance

import (
	"fmt"
	"math/rand/v2"
)

// State is a serializable snapshot of a Balancer: the sampler RNG state,
// the in-progress minute bin, and the accounting. Restoring a snapshot into
// a balancer built with the same accessor functions resumes the stream
// bit-for-bit — the kept sample of every future bin is identical to an
// uninterrupted run, which is what makes crash/restart recovery of the
// training pipeline exact rather than approximate.
//
// The buffered bin rides along because bins flush on minute advance: at any
// point mid-stream the balancer holds the records of the newest minute, and
// dropping them at a crash would silently thin that bin.
type State[T any] struct {
	// RNG is the PCG state via its binary marshaling.
	RNG []byte `json:"rng"`
	// Cur is the minute bin currently buffered.
	Cur int64 `json:"cur"`
	// Buf holds the records of the in-progress bin.
	Buf []T `json:"buf"`
	// Stats is the accounting snapshot.
	Stats Stats `json:"stats"`
}

// Checkpoint captures the balancer's full state. The balancer must be
// quiescent (no concurrent Add/AddBatch/Flush).
func (b *Balancer[T]) Checkpoint() (*State[T], error) {
	rng, err := b.src.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("balance: marshaling rng: %w", err)
	}
	buf := make([]T, len(b.buf))
	copy(buf, b.buf)
	return &State[T]{RNG: rng, Cur: b.cur, Buf: buf, Stats: b.Stats}, nil
}

// Restore replaces the balancer's state with a snapshot taken by
// Checkpoint. The balancer keeps its accessor functions and emit hook.
func (b *Balancer[T]) Restore(s *State[T]) error {
	src := &rand.PCG{}
	if err := src.UnmarshalBinary(s.RNG); err != nil {
		return fmt.Errorf("balance: restoring rng: %w", err)
	}
	b.src = src
	b.rng = rand.New(src)
	b.cur = s.Cur
	b.buf = append(b.buf[:0], s.Buf...)
	b.Stats = s.Stats
	return nil
}
