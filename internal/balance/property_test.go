package balance

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"reflect"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// genStream builds a random but reproducible record stream: minutes arrive
// in order, each with a random benign population over a random IP pool and
// a (usually small) blackholed class.
func genStream(rng *rand.Rand, minutes int, bhShare float64) []netflow.Record {
	var out []netflow.Record
	for m := 0; m < minutes; m++ {
		n := 50 + rng.IntN(400)
		nIPs := 5 + rng.IntN(40)
		bhIPs := 1 + rng.IntN(4)
		for i := 0; i < n; i++ {
			var r netflow.Record
			r.Timestamp = int64(m)*60 + rng.Int64N(60)
			r.Packets, r.Bytes = 1, 64
			if rng.Float64() < bhShare {
				r.Blackholed = true
				r.DstIP = netip.AddrFrom4([4]byte{10, 99, 0, byte(rng.IntN(bhIPs))})
			} else {
				r.DstIP = netip.AddrFrom4([4]byte{10, 0, byte(rng.IntN(nIPs) >> 8), byte(rng.IntN(nIPs))})
			}
			r.SrcIP = netip.AddrFrom4([4]byte{192, 0, 2, byte(rng.IntN(250))})
			out = append(out, r)
		}
		// Timestamps within a minute arrive unsorted but bins stay ordered.
	}
	return out
}

// TestPropertyClassBalanceAndReduction checks the two structural invariants
// of the balancing procedure over random streams: the kept benign class can
// never outgrow the kept blackholed class (so the output is at worst 50:50
// heavy on blackholed), and the kept volume is bounded by twice the
// blackholed volume — which on realistic mixes (<0.2 % blackholed) implies
// the paper's >=99.6 % reduction.
func TestPropertyClassBalanceAndReduction(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0xBA1A))
		bhShare := []float64{0.002, 0.01, 0.05, 0.3}[trial%4]
		stream := genStream(rng, 3+trial%5, bhShare)
		var kept []netflow.Record
		b := ForRecords(uint64(trial), func(r netflow.Record) { kept = append(kept, r) })
		for _, r := range stream {
			b.Add(r)
		}
		b.Flush()

		var bhIn, bhKept uint64
		for _, r := range stream {
			if r.Blackholed {
				bhIn++
			}
		}
		for _, r := range kept {
			if r.Blackholed {
				bhKept++
			}
		}
		if bhKept != b.Stats.OutBH {
			t.Fatalf("trial %d: OutBH=%d but %d blackholed emitted", trial, b.Stats.OutBH, bhKept)
		}
		if bhKept != bhIn {
			t.Errorf("trial %d: lost blackholed records: in=%d kept=%d", trial, bhIn, bhKept)
		}
		benignKept := uint64(len(kept)) - bhKept
		if benignKept > bhKept {
			t.Errorf("trial %d: benign class (%d) outgrew blackholed class (%d)", trial, benignKept, bhKept)
		}
		if uint64(len(kept)) > 2*bhIn {
			t.Errorf("trial %d: kept %d > 2x blackholed input %d", trial, len(kept), bhIn)
		}
		if b.Stats.In != uint64(len(stream)) {
			t.Errorf("trial %d: Stats.In=%d, want %d", trial, b.Stats.In, len(stream))
		}
	}
}

// TestPropertyRealisticMixReduction pins the paper's >=99.6 % reduction on
// a realistic imbalance: 2 blackholed records among 1500 benign per minute.
// Since kept <= 2x blackholed structurally, reduction >= 1 - 4/1502.
func TestPropertyRealisticMixReduction(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 0xBA1A))
	var stream []netflow.Record
	for m := int64(0); m < 5; m++ {
		for i := 0; i < 1500; i++ {
			stream = append(stream, netflow.Record{
				Timestamp: m*60 + rng.Int64N(60),
				DstIP:     netip.AddrFrom4([4]byte{10, 0, byte(i / 250), byte(i % 250)}),
				SrcIP:     netip.AddrFrom4([4]byte{192, 0, 2, byte(i % 200)}),
				Packets:   1, Bytes: 64,
			})
		}
		for i := 0; i < 2; i++ {
			stream = append(stream, netflow.Record{
				Timestamp: m*60 + rng.Int64N(60),
				DstIP:     netip.AddrFrom4([4]byte{10, 99, 0, byte(i)}),
				SrcIP:     netip.AddrFrom4([4]byte{192, 0, 2, 250}),
				Packets:   1, Bytes: 64, Blackholed: true,
			})
		}
	}
	b := ForRecords(1, nil)
	b.AddBatch(stream)
	b.Flush()
	if red := 1 - b.Stats.Reduction(); red < 0.996 {
		t.Errorf("reduction %.4f < 0.996 on realistic mix", red)
	}
	if share := b.Stats.BlackholeShare(); share < 0.4 || share > 0.6 {
		t.Errorf("blackhole share of kept = %.3f, want ~0.5", share)
	}
}

// TestPropertyAddBatchInterleavings feeds the same stream through Add and
// through AddBatch under random batch boundaries (including empty and
// cross-minute batches) and requires bit-identical emissions and Stats.
func TestPropertyAddBatchInterleavings(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0xC0FFEE))
		stream := genStream(rng, 4, 0.05)

		var oneByOne []netflow.Record
		ref := ForRecords(42, func(r netflow.Record) { oneByOne = append(oneByOne, r) })
		for _, r := range stream {
			ref.Add(r)
		}
		ref.Flush()

		var batched []netflow.Record
		bb := ForRecords(42, func(r netflow.Record) { batched = append(batched, r) })
		for i := 0; i < len(stream); {
			n := rng.IntN(64) // 0..63: empty batches must be harmless
			if i+n > len(stream) {
				n = len(stream) - i
			}
			bb.AddBatch(stream[i : i+n])
			i += n
			if n == 0 {
				bb.AddBatch(nil)
				i++ // consume one via Add so the loop terminates
				bb.Add(stream[i-1])
			}
		}
		bb.Flush()

		if !reflect.DeepEqual(oneByOne, batched) {
			t.Fatalf("trial %d: Add and AddBatch emitted different samples (%d vs %d records)",
				trial, len(oneByOne), len(batched))
		}
		if ref.Stats != bb.Stats {
			t.Fatalf("trial %d: stats diverged:\nAdd:      %+v\nAddBatch: %+v", trial, ref.Stats, bb.Stats)
		}
	}
}

// TestPropertyCheckpointRestore cuts a random stream at a random point,
// checkpoints, restores into a fresh balancer, and requires the combined
// emissions and final stats to equal an uninterrupted run exactly.
func TestPropertyCheckpointRestore(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0xCAFE))
		stream := genStream(rng, 5, 0.04)
		cut := rng.IntN(len(stream))

		var uninterrupted []netflow.Record
		ref := ForRecords(7, func(r netflow.Record) { uninterrupted = append(uninterrupted, r) })
		for _, r := range stream {
			ref.Add(r)
		}
		ref.Flush()

		var resumed []netflow.Record
		first := ForRecords(7, func(r netflow.Record) { resumed = append(resumed, r) })
		for _, r := range stream[:cut] {
			first.Add(r)
		}
		state, err := first.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		second := ForRecords(999, func(r netflow.Record) { resumed = append(resumed, r) }) // wrong seed on purpose
		if err := second.Restore(state); err != nil {
			t.Fatal(err)
		}
		for _, r := range stream[cut:] {
			second.Add(r)
		}
		second.Flush()

		if !reflect.DeepEqual(uninterrupted, resumed) {
			t.Fatalf("trial %d (cut %d/%d): resumed stream diverged from uninterrupted run",
				trial, cut, len(stream))
		}
		if ref.Stats != second.Stats {
			t.Fatalf("trial %d: stats diverged after restore:\nref:     %+v\nresumed: %+v",
				trial, ref.Stats, second.Stats)
		}
	}
}

// TestLateRecordsCounted pins the clock-skew contract: records for an
// already-flushed bin are counted as seen and late, and never emitted.
func TestLateRecordsCounted(t *testing.T) {
	var kept []netflow.Record
	b := ForRecords(1, func(r netflow.Record) { kept = append(kept, r) })
	mk := func(min int64, bh bool) netflow.Record {
		ip := netip.AddrFrom4([4]byte{10, 0, 0, 1})
		if bh {
			ip = netip.AddrFrom4([4]byte{10, 9, 9, 9})
		}
		return netflow.Record{Timestamp: min * 60, DstIP: ip,
			SrcIP: netip.AddrFrom4([4]byte{192, 0, 2, 1}), Packets: 1, Bytes: 64, Blackholed: bh}
	}
	b.Add(mk(10, true))
	b.Add(mk(11, true)) // flushes minute 10
	b.Add(mk(10, true)) // late: skewed exporter clock
	b.AddBatch([]netflow.Record{mk(9, false), mk(11, false)})
	b.Flush()
	if b.Stats.Late != 2 {
		t.Fatalf("Late = %d, want 2", b.Stats.Late)
	}
	if b.Stats.In != 5 {
		t.Fatalf("In = %d, want 5", b.Stats.In)
	}
	for _, r := range kept {
		if r.Minute() == 9 {
			t.Fatal("late record was emitted")
		}
	}
	if fmt.Sprint(b.Stats.Out) != fmt.Sprint(len(kept)) {
		t.Fatalf("Out=%d, emitted=%d", b.Stats.Out, len(kept))
	}
}
