package balance

import (
	"net/netip"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// ForRecords builds a Balancer over netflow.Record streams.
func ForRecords(seed uint64, emit func(netflow.Record)) *Balancer[netflow.Record] {
	return New(seed,
		func(r *netflow.Record) int64 { return r.Minute() },
		func(r *netflow.Record) bool { return r.Blackholed },
		func(r *netflow.Record) netip.Addr { return r.DstIP },
		emit,
	)
}

// ForFlows builds a Balancer over synth.Flow streams (ground truth kept).
func ForFlows(seed uint64, emit func(synth.Flow)) *Balancer[synth.Flow] {
	return New(seed,
		func(f *synth.Flow) int64 { return f.Minute() },
		func(f *synth.Flow) bool { return f.Blackholed },
		func(f *synth.Flow) netip.Addr { return f.DstIP },
		emit,
	)
}

// Flows balances a complete slice of generated flows in one call and
// returns the kept flows plus reduction statistics.
func Flows(seed uint64, flows []synth.Flow) ([]synth.Flow, Stats) {
	var out []synth.Flow
	b := ForFlows(seed, func(f synth.Flow) { out = append(out, f) })
	for _, f := range flows {
		b.Add(f)
	}
	b.Flush()
	return out, b.Stats
}
