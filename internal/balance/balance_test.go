package balance

import (
	"math"
	"math/rand/v2"
	"net/netip"
	"testing"
	"testing/quick"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

type rec struct {
	minute int64
	bh     bool
	dst    netip.Addr
}

func ip(n int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 0, byte(n >> 8), byte(n)})
}

func selectRecs(rng *rand.Rand, recs []rec) []int {
	return Select(rng, len(recs),
		func(i int) bool { return recs[i].bh },
		func(i int) netip.Addr { return recs[i].dst },
	)
}

func TestSelectKeepsAllBlackholed(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var recs []rec
	for i := 0; i < 10; i++ {
		recs = append(recs, rec{bh: true, dst: ip(1)})
	}
	for i := 0; i < 1000; i++ {
		recs = append(recs, rec{bh: false, dst: ip(100 + i%50)})
	}
	keep := selectRecs(rng, recs)
	bh, benign := 0, 0
	for _, i := range keep {
		if recs[i].bh {
			bh++
		} else {
			benign++
		}
	}
	if bh != 10 {
		t.Errorf("kept %d blackholed, want all 10", bh)
	}
	if benign != 10 {
		t.Errorf("kept %d benign, want 10 (one IP with 10 flows matched)", benign)
	}
}

func TestSelectMatchesIPCountsAndFlows(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	var recs []rec
	// 3 blackholed IPs with 5, 3, 2 flows.
	for _, k := range []struct{ ipn, n int }{{1, 5}, {2, 3}, {3, 2}} {
		for i := 0; i < k.n; i++ {
			recs = append(recs, rec{bh: true, dst: ip(k.ipn)})
		}
	}
	// Plenty of benign: 40 IPs x 20 flows.
	for ipn := 100; ipn < 140; ipn++ {
		for i := 0; i < 20; i++ {
			recs = append(recs, rec{bh: false, dst: ip(ipn)})
		}
	}
	keep := selectRecs(rng, recs)
	benignByIP := map[netip.Addr]int{}
	bh := 0
	for _, i := range keep {
		if recs[i].bh {
			bh++
		} else {
			benignByIP[recs[i].dst]++
		}
	}
	if bh != 10 {
		t.Errorf("blackholed kept = %d", bh)
	}
	if len(benignByIP) != 3 {
		t.Errorf("benign IPs = %d, want 3", len(benignByIP))
	}
	counts := []int{}
	for _, c := range benignByIP {
		counts = append(counts, c)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("benign flows = %d, want 10", total)
	}
}

func TestSelectEmptyClasses(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	// Only benign: whole bin discarded.
	recs := []rec{{bh: false, dst: ip(1)}, {bh: false, dst: ip(2)}}
	if keep := selectRecs(rng, recs); len(keep) != 0 {
		t.Errorf("benign-only bin kept %d", len(keep))
	}
	// Only blackholed: kept as-is.
	recs = []rec{{bh: true, dst: ip(1)}, {bh: true, dst: ip(2)}}
	if keep := selectRecs(rng, recs); len(keep) != 2 {
		t.Errorf("blackhole-only bin kept %d", len(keep))
	}
	if keep := selectRecs(rng, nil); len(keep) != 0 {
		t.Errorf("empty bin kept %d", len(keep))
	}
}

func TestSelectScarceBenign(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	var recs []rec
	for i := 0; i < 100; i++ {
		recs = append(recs, rec{bh: true, dst: ip(i % 5)})
	}
	recs = append(recs, rec{bh: false, dst: ip(200)})
	keep := selectRecs(rng, recs)
	benign := 0
	for _, i := range keep {
		if !recs[i].bh {
			benign++
		}
	}
	if benign != 1 {
		t.Errorf("benign kept = %d, want the single available flow", benign)
	}
}

// TestSelectProperty: kept indices are valid, unique, include every
// blackholed record, and keep at most as many benign flows as blackholed.
func TestSelectProperty(t *testing.T) {
	f := func(seed uint64, bhFlags []bool, ipNums []uint8) bool {
		n := len(bhFlags)
		if len(ipNums) < n {
			if len(ipNums) == 0 {
				return true
			}
			for len(ipNums) < n {
				ipNums = append(ipNums, ipNums[0])
			}
		}
		recs := make([]rec, n)
		nbh := 0
		for i := range recs {
			recs[i] = rec{bh: bhFlags[i], dst: ip(int(ipNums[i]))}
			if bhFlags[i] {
				nbh++
			}
		}
		rng := rand.New(rand.NewPCG(seed, 1))
		keep := selectRecs(rng, recs)
		seen := map[int]bool{}
		kbh, kbe := 0, 0
		for _, i := range keep {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
			if recs[i].bh {
				kbh++
			} else {
				kbe++
			}
		}
		if kbh != nbh && !(nbh > 0 && kbe == 0 && kbh == nbh) {
			return false
		}
		return kbe <= nbh
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBalancerStreaming(t *testing.T) {
	var out []netflow.Record
	b := ForRecords(42, func(r netflow.Record) { out = append(out, r) })
	mk := func(min int64, bh bool, dst netip.Addr) netflow.Record {
		return netflow.Record{
			Timestamp: min * 60, Blackholed: bh, DstIP: dst,
			SrcIP: ip(999), Packets: 1, Bytes: 100,
		}
	}
	// Minute 1: 2 blackholed to one IP, lots of benign.
	for i := 0; i < 2; i++ {
		b.Add(mk(1, true, ip(1)))
	}
	for i := 0; i < 100; i++ {
		b.Add(mk(1, false, ip(50+i%10)))
	}
	// Minute 2: benign only -> discarded.
	for i := 0; i < 50; i++ {
		b.Add(mk(2, false, ip(60+i%5)))
	}
	// Minute 3: one blackholed.
	b.Add(mk(3, true, ip(2)))
	b.Add(mk(3, false, ip(70)))
	b.Add(mk(3, false, ip(71)))
	b.Flush()

	if b.Stats.In != 155 {
		t.Errorf("In = %d", b.Stats.In)
	}
	if b.Stats.MinutesIn != 3 || b.Stats.MinutesKept != 2 {
		t.Errorf("minutes = %d/%d", b.Stats.MinutesIn, b.Stats.MinutesKept)
	}
	// Minute 1 keeps 2+2, minute 3 keeps 1+1.
	if b.Stats.Out != 6 || b.Stats.OutBH != 3 {
		t.Errorf("Out = %d OutBH = %d", b.Stats.Out, b.Stats.OutBH)
	}
	if got := b.Stats.BlackholeShare(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("share = %v", got)
	}
	if b.Stats.Reduction() >= 0.1 {
		t.Errorf("reduction = %v, want < 10%%", b.Stats.Reduction())
	}
	if len(out) != 6 {
		t.Errorf("emitted = %d", len(out))
	}
}

func TestBalancerLateRecordDropped(t *testing.T) {
	var out []netflow.Record
	b := ForRecords(1, func(r netflow.Record) { out = append(out, r) })
	b.Add(netflow.Record{Timestamp: 600, Blackholed: true, DstIP: ip(1)})
	b.Add(netflow.Record{Timestamp: 660, Blackholed: true, DstIP: ip(1)})
	b.Add(netflow.Record{Timestamp: 540, Blackholed: true, DstIP: ip(2)}) // late
	b.Flush()
	for _, r := range out {
		if r.DstIP == ip(2) {
			t.Fatal("late record must be dropped")
		}
	}
}

// TestBalancedSyntheticDataset runs the full §3 pipeline on generated
// traffic and checks the Table 2 shape: ~50 % blackhole share and a large
// reduction.
func TestBalancedSyntheticDataset(t *testing.T) {
	p := synth.ProfileUS2()
	g := synth.NewGenerator(p)
	flows := g.Generate(0, 12*60) // 12 hours
	out, stats := Flows(7, flows)
	if len(out) == 0 {
		t.Fatal("balanced dataset empty")
	}
	share := stats.BlackholeShare()
	if share < 0.45 || share > 0.60 {
		t.Errorf("blackhole share = %.3f, want ~0.5 (Table 2 range 0.48-0.55)", share)
	}
	if stats.Reduction() > 0.5 {
		t.Errorf("reduction = %.4f, want substantial discard", stats.Reduction())
	}
	// Per-minute flows-per-IP correlation (Fig. 3c) must be strong on the
	// balanced output.
	var s netflow.Stats
	for i := range out {
		s.Add(&out[i].Record)
	}
	bh, be := s.FlowsPerIPPoints()
	if len(bh) < 10 {
		t.Fatalf("too few minutes with both classes: %d", len(bh))
	}
	if r := pearson(bh, be); r < 0.5 {
		t.Errorf("flows/IP correlation r = %.3f, want strong positive (paper: 0.77)", r)
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	num := sxy - sx*sy/n
	den := math.Sqrt((sxx - sx*sx/n) * (syy - sy*sy/n))
	if den == 0 {
		return 0
	}
	return num / den
}

func BenchmarkBalanceMinute(b *testing.B) {
	g := synth.NewGenerator(synth.ProfileUS1())
	flows := g.Generate(100, 101)
	recs := synth.Records(flows)
	rng := rand.New(rand.NewPCG(1, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(rng, len(recs),
			func(i int) bool { return recs[i].Blackholed },
			func(i int) netip.Addr { return recs[i].DstIP },
		)
	}
}

// TestSelectDeterministicAcrossProcessNoise: two identical runs must pick
// the exact same records, regardless of map iteration order (a regression
// here makes whole-pipeline results irreproducible).
func TestSelectDeterministicAcrossProcessNoise(t *testing.T) {
	g := synth.NewGenerator(synth.ProfileUS2())
	flows := g.Generate(0, 60)
	run := func() []synth.Flow {
		out, _ := Flows(42, flows)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs between identical runs", i)
		}
	}
}

// TestAddBatchMatchesAdd: feeding the same stream through AddBatch (at
// several batch sizes, including batches spanning minute boundaries and
// containing late records) must yield exactly the Stats — and therefore
// Reduction() and BlackholeShare() — of one-at-a-time Add, and the same
// emitted records. Guards against the double-counting trap where a batch
// path pre-counts records that flush() will count again.
func TestAddBatchMatchesAdd(t *testing.T) {
	var stream []rec
	for minute := int64(0); minute < 8; minute++ {
		for i := 0; i < 120; i++ {
			stream = append(stream, rec{
				minute: minute,
				bh:     i%5 == 0,
				dst:    ip(i % 37),
			})
		}
		if minute >= 2 {
			// Late straggler from two minutes ago: dropped but counted.
			stream = append(stream, rec{minute: minute - 2, bh: true, dst: ip(1)})
		}
	}

	run := func(batchSize int) (Stats, []rec) {
		var out []rec
		b := New(42,
			func(r *rec) int64 { return r.minute },
			func(r *rec) bool { return r.bh },
			func(r *rec) netip.Addr { return r.dst },
			func(r rec) { out = append(out, r) },
		)
		if batchSize == 0 {
			for _, r := range stream {
				b.Add(r)
			}
		} else {
			batch := make([]rec, 0, batchSize)
			for _, r := range stream {
				batch = append(batch, r)
				if len(batch) == batchSize {
					b.AddBatch(batch)
					batch = batch[:0]
				}
			}
			b.AddBatch(batch)
		}
		b.Flush()
		return b.Stats, out
	}

	wantStats, wantOut := run(0)
	if wantStats.In != uint64(len(stream)) {
		t.Fatalf("reference Stats.In = %d, want %d (every record counted exactly once)",
			wantStats.In, len(stream))
	}
	for _, size := range []int{1, 7, 256, len(stream)} {
		gotStats, gotOut := run(size)
		if gotStats != wantStats {
			t.Errorf("batch %d: Stats = %+v, want %+v", size, gotStats, wantStats)
		}
		if gotStats.Reduction() != wantStats.Reduction() {
			t.Errorf("batch %d: Reduction = %v, want %v", size, gotStats.Reduction(), wantStats.Reduction())
		}
		if gotStats.BlackholeShare() != wantStats.BlackholeShare() {
			t.Errorf("batch %d: BlackholeShare = %v, want %v", size, gotStats.BlackholeShare(), wantStats.BlackholeShare())
		}
		if len(gotOut) != len(wantOut) {
			t.Fatalf("batch %d: emitted %d records, want %d", size, len(gotOut), len(wantOut))
		}
		for i := range wantOut {
			if gotOut[i] != wantOut[i] {
				t.Fatalf("batch %d: emitted record %d = %+v, want %+v", size, i, gotOut[i], wantOut[i])
			}
		}
	}
}
