package balance

import (
	"sync/atomic"

	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
)

// Metrics exposes balancer statistics. The Balancer mutates its Stats
// struct single-threaded (callers serialize Add/Flush), so instead of
// instrumenting that hot path the owner publishes a snapshot after each
// flush; scrapes read the last published snapshot from atomics.
//
// ixps_balancer_reduction_ratio is the live analogue of the paper's
// headline data-reduction claim (Table 2, ≥ 99.6 %): the share of seen
// records that balancing dropped.
type Metrics struct {
	in, out, outBH         atomic.Uint64
	minutesIn, minutesKept atomic.Uint64
	late                   atomic.Uint64
}

// RegisterMetrics creates the balancer metric families on r and returns
// the publisher handle.
func RegisterMetrics(r *obs.Registry) *Metrics {
	m := &Metrics{}
	u64 := func(a *atomic.Uint64) func() float64 {
		return func() float64 { return float64(a.Load()) }
	}
	r.CounterFunc("ixps_balancer_records_seen_total",
		"Records entering the per-minute balancer.", u64(&m.in))
	r.CounterFunc("ixps_balancer_records_kept_total",
		"Records kept by balancing (the training stream).", u64(&m.out))
	r.CounterFunc("ixps_balancer_blackholed_kept_total",
		"Kept records that are blackholed (expected ~50% of kept).", u64(&m.outBH))
	r.CounterFunc("ixps_balancer_minutes_total",
		"One-minute bins processed.", u64(&m.minutesIn))
	r.CounterFunc("ixps_balancer_minutes_kept_total",
		"Bins that contained at least one blackholed flow.", u64(&m.minutesKept))
	r.CounterFunc("ixps_balancer_late_records_total",
		"Records dropped for arriving after their minute bin was flushed (clock skew or stalled upstream).",
		u64(&m.late))
	r.GaugeFunc("ixps_balancer_reduction_ratio",
		"Share of seen records dropped by balancing (paper claims >= 0.996).",
		func() float64 {
			in := m.in.Load()
			if in == 0 {
				return 0
			}
			return 1 - float64(m.out.Load())/float64(in)
		})
	return m
}

// Publish records a snapshot of the balancer's statistics for scraping.
// Call it after Flush (or periodically), under whatever lock serializes
// the balancer.
func (m *Metrics) Publish(s *Stats) {
	if m == nil {
		return
	}
	m.in.Store(s.In)
	m.out.Store(s.Out)
	m.outBH.Store(s.OutBH)
	m.minutesIn.Store(s.MinutesIn)
	m.minutesKept.Store(s.MinutesKept)
	m.late.Store(s.Late)
}
