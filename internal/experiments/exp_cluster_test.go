package experiments

import (
	"strings"
	"testing"
)

// TestClusterShape runs the live-cluster artifact and checks its contract:
// a full origin x site score matrix whose diagonal (the incumbents) parses
// as Fβ in (0, 1], one election row per site, and a winner that matches
// the matrix — the column's best score names the elected origin.
func TestClusterShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-site cluster run; skipped in -short")
	}
	res, err := RunCluster(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(res.Tables))
	}
	scores, elections := &res.Tables[0], &res.Tables[1]
	const sites = 3
	if len(scores.Rows) != sites || len(scores.Header) != sites+1 {
		t.Fatalf("score matrix %dx%d, want %dx%d", len(scores.Rows), len(scores.Header), sites, sites+1)
	}
	if len(elections.Rows) != sites {
		t.Fatalf("election rows = %d, want %d", len(elections.Rows), sites)
	}
	for col := 0; col < sites; col++ {
		// Every cell filled: the incumbent on the diagonal plus one
		// candidate per peer — no site skipped its election.
		best, bestRow := -1.0, -1
		for row := 0; row < sites; row++ {
			v := cellF(t, scores, row, scores.Header[col+1])
			if v <= 0 || v > 1 {
				t.Errorf("score[%d][%d] = %v outside (0, 1]", row, col, v)
			}
			if v > best {
				best, bestRow = v, row
			}
		}
		// The election row's winner is the matrix column's argmax (ties keep
		// the incumbent, and distinct synthetic profiles never tie here).
		if got, want := cell(t, elections, col, "winner"), scores.Rows[bestRow][0]; got != want {
			t.Errorf("site %s elected %s, matrix argmax is %s", elections.Rows[col][0], got, want)
		}
	}
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[0], "gossip rounds") {
		t.Errorf("missing gossip accounting note: %v", res.Notes)
	}
}
