// Package experiments reproduces every table and figure of the paper's
// evaluation on synthetic data: each experiment is a named runner that
// returns a structured Result which renders to the text tables and series
// the paper reports. The per-experiment index lives in DESIGN.md; expected
// versus measured shapes are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Result is the structured outcome of one experiment.
type Result struct {
	// ID is the experiment identifier (e.g. "table3", "fig11a").
	ID string
	// Title describes the reproduced artifact.
	Title string
	// PaperClaim summarizes the shape the paper reports for this artifact.
	PaperClaim string
	// Tables and Series carry the regenerated data.
	Tables []Table
	Series []Series
	// Notes carries caveats (scaling, substitutions).
	Notes []string
}

// Cells returns the artifact's output size: table cells plus series
// points. Benchmark metrics record it so a run's registry states how much
// data each artifact produced, not just how long it took.
func (r *Result) Cells() int {
	n := 0
	for i := range r.Tables {
		t := &r.Tables[i]
		for _, row := range t.Rows {
			n += len(row)
		}
	}
	for i := range r.Series {
		n += len(r.Series[i].Y)
	}
	return n
}

// Table is one printable table.
type Table struct {
	Name   string
	Header []string
	Rows   [][]string
}

// Series is one printable (x, y) series, e.g. a line of Figure 11.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	// XLabels optionally replaces numeric X values in rendering (dates).
	XLabels []string
}

// Render formats the result for terminals and EXPERIMENTS.md.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for i := range r.Tables {
		b.WriteString(renderTable(&r.Tables[i]))
	}
	for i := range r.Series {
		b.WriteString(renderSeries(&r.Series[i]))
	}
	return b.String()
}

func renderTable(t *Table) string {
	var b strings.Builder
	if t.Name != "" {
		fmt.Fprintf(&b, "-- %s --\n", t.Name)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func renderSeries(s *Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- series %s --\n", s.Name)
	for i := range s.Y {
		x := fmt.Sprintf("%g", s.X[i])
		if s.XLabels != nil && i < len(s.XLabels) {
			x = s.XLabels[i]
		}
		fmt.Fprintf(&b, "%16s  %.4f\n", x, s.Y[i])
	}
	return b.String()
}

// f formats a float compactly for table cells.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// Pearson computes the Pearson correlation coefficient.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	den := math.Sqrt((sxx - sx*sx/n) * (syy - sy*sy/n))
	if den == 0 {
		return 0
	}
	return (sxy - sx*sy/n) / den
}

// Spearman computes the Spearman rank correlation coefficient.
func Spearman(x, y []float64) float64 {
	return Pearson(ranks(x), ranks(y))
}

// ranks replaces values by their average ranks.
func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	out := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// Quantile returns the q-quantile (0..1) of the sorted slice.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the median of an unsorted slice (copies).
func Median(v []float64) float64 {
	c := append([]float64(nil), v...)
	sort.Float64s(c)
	return Quantile(c, 0.5)
}

// CDFPoints reduces a sorted sample to (value, cumulative fraction) pairs
// at the given resolution.
func CDFPoints(sorted []float64, points int) (xs, ys []float64) {
	if len(sorted) == 0 || points < 2 {
		return nil, nil
	}
	for i := 0; i < points; i++ {
		q := float64(i) / float64(points-1)
		xs = append(xs, Quantile(sorted, q))
		ys = append(ys, q)
	}
	return xs, ys
}
