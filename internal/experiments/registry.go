package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/par"
)

// Runner executes one experiment.
type Runner func(Config) (*Result, error)

// Registry maps experiment IDs to runners, in the order of the paper's
// tables and figures.
var Registry = map[string]Runner{
	"table2":     RunTable2,
	"fig3a":      RunFig3a,
	"fig3c":      RunFig3c,
	"fig4a":      RunFig4a,
	"fig4b":      RunFig4b,
	"rulecount":  RunRuleCount,
	"fig15":      RunFig15,
	"operator":   RunOperatorStudy,
	"table3":     RunTable3,
	"table5":     RunTable5,
	"table4":     RunTable4,
	"fig10":      RunFig10,
	"fig11a":     RunFig11a,
	"fig11b":     RunFig11b,
	"fig12":      RunFig12,
	"fig13":      RunFig13,
	"fig14a":     RunFig14a,
	"fig14b":     RunFig14b,
	"fig16a":     RunFig16a,
	"fig16b":     RunFig16b,
	"multiclass": RunMulticlass,
	"cluster":    RunCluster,
}

// Order is the canonical execution order (paper order).
var Order = []string{
	"table2", "fig3a", "fig3c", "fig4a", "fig4b",
	"rulecount", "fig15", "operator",
	"table3", "table5", "table4", "fig10",
	"fig11a", "fig11b", "fig12", "fig13",
	"fig14a", "fig14b", "fig16a", "fig16b",
	"multiclass", "cluster",
}

// IDs returns the registered experiment IDs sorted alphabetically.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Result, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return instrumented(id, r, cfg)
}

// instrumented runs one runner, recording per-artifact wall time and
// output size into cfg.Metrics (when set) so a benchmark run's registry
// describes exactly what was produced and how long each artifact took.
func instrumented(id string, r Runner, cfg Config) (*Result, error) {
	if cfg.Metrics == nil {
		return r(cfg)
	}
	start := time.Now()
	res, err := r(cfg)
	cfg.Metrics.GaugeVec("ixps_experiment_duration_seconds",
		"Wall time of the last run of each artifact.", "id").
		With(id).Set(time.Since(start).Seconds())
	if err != nil {
		cfg.Metrics.Counter("ixps_experiment_failures_total",
			"Artifact runs that returned an error.").Inc()
		return res, err
	}
	cfg.Metrics.Counter("ixps_experiments_total",
		"Artifact runs that completed.").Inc()
	cfg.Metrics.GaugeVec("ixps_experiment_output_cells",
		"Table cells plus series points in the last run of each artifact.", "id").
		With(id).Set(float64(res.Cells()))
	return res, nil
}

// RunAll executes every experiment in paper order, invoking visit after
// each one. It stops on the first error (in paper order).
func RunAll(cfg Config, visit func(*Result)) error {
	return RunMany(cfg, Order, visit)
}

// RunMany executes the given experiments concurrently on cfg.Workers
// workers (0 = GOMAXPROCS, 1 = the serial path). Runners execute in
// arbitrary order, but results land in per-experiment slots and visit is
// invoked in ids order once all runners finish — an ordered reduction, so
// the emitted artifact stream is identical to the serial harness. Shared
// inputs (corpora, the merged training bundle) are built singleflight, so
// concurrent runners wait for one build instead of duplicating it. On
// failure the first error in ids order is returned, after visiting the
// results that precede it — exactly what a serial run would have emitted.
func RunMany(cfg Config, ids []string, visit func(*Result)) error {
	results := make([]*Result, len(ids))
	errs := make([]error, len(ids))
	par.For(cfg.Workers, len(ids), func(i int) {
		r, ok := Registry[ids[i]]
		if !ok {
			errs[i] = fmt.Errorf("experiments: unknown experiment %q (known: %v)", ids[i], IDs())
			return
		}
		res, err := instrumented(ids[i], r, cfg)
		if err != nil {
			errs[i] = fmt.Errorf("experiments: %s: %w", ids[i], err)
			return
		}
		results[i] = res
	})
	for i := range ids {
		if errs[i] != nil {
			return errs[i]
		}
		if visit != nil {
			visit(results[i])
		}
	}
	return nil
}
