package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment.
type Runner func(Config) (*Result, error)

// Registry maps experiment IDs to runners, in the order of the paper's
// tables and figures.
var Registry = map[string]Runner{
	"table2":    RunTable2,
	"fig3a":     RunFig3a,
	"fig3c":     RunFig3c,
	"fig4a":     RunFig4a,
	"fig4b":     RunFig4b,
	"rulecount": RunRuleCount,
	"fig15":     RunFig15,
	"operator":  RunOperatorStudy,
	"table3":    RunTable3,
	"table5":    RunTable5,
	"table4":    RunTable4,
	"fig10":     RunFig10,
	"fig11a":    RunFig11a,
	"fig11b":    RunFig11b,
	"fig12":     RunFig12,
	"fig13":     RunFig13,
	"fig14a":    RunFig14a,
	"fig14b":    RunFig14b,
	"fig16a":    RunFig16a,
	"fig16b":    RunFig16b,
	"multiclass": RunMulticlass,
}

// Order is the canonical execution order (paper order).
var Order = []string{
	"table2", "fig3a", "fig3c", "fig4a", "fig4b",
	"rulecount", "fig15", "operator",
	"table3", "table5", "table4", "fig10",
	"fig11a", "fig11b", "fig12", "fig13",
	"fig14a", "fig14b", "fig16a", "fig16b",
	"multiclass",
}

// IDs returns the registered experiment IDs sorted alphabetically.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Result, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(cfg)
}

// RunAll executes every experiment in paper order, invoking visit after
// each one. It stops on the first error.
func RunAll(cfg Config, visit func(*Result)) error {
	for _, id := range Order {
		res, err := Run(id, cfg)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", id, err)
		}
		if visit != nil {
			visit(res)
		}
	}
	return nil
}
