package experiments

import (
	"fmt"
	"math"
	"sort"

	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml"
)

// RunFig14a regenerates Figure 14a: the overlap between XGB decisions and
// matched tagging rules, and how many annotated rules are available to
// explain coherent positive decisions.
func RunFig14a(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "fig14a",
		Title: "Tagging-rule annotations as local explanations for XGB decisions",
		PaperClaim: "XGB and the mined rules agree on 70.9% of records; among coherent positive " +
			"decisions, >=1 rule explains ~30% and up to 3 rules ~50% (cumulative distribution over rule counts)",
	}
	bundle := cachedBundle(cfg)
	s := core.New(cfg.coreDefaults())
	s.SetRules(bundle.rules)
	if err := s.Fit(bundle.trainRecords, bundle.trainAggs); err != nil {
		return nil, err
	}
	pred, err := s.Predict(bundle.testAggs)
	if err != nil {
		return nil, err
	}
	agree := 0
	ruleCounts := map[int]int{}
	coherentPos := 0
	for i, a := range bundle.testAggs {
		rbc := 0
		if len(a.RuleIDs) > 0 {
			rbc = 1
		}
		if rbc == pred[i] {
			agree++
		}
		if pred[i] == 1 && rbc == 1 {
			coherentPos++
			ruleCounts[len(a.RuleIDs)]++
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"XGB and RBC agree on %.1f%% of %d aggregates (paper: 70.9%%)",
		100*float64(agree)/float64(len(bundle.testAggs)), len(bundle.testAggs)))

	tbl := Table{Name: "rules available per coherent positive decision",
		Header: []string{"#annotated rules", "decisions", "cumulative share"}}
	var ks []int
	for k := range ruleCounts {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	cum := 0
	for _, k := range ks {
		cum += ruleCounts[k]
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("<=%d", k),
			fmt.Sprintf("%d", ruleCounts[k]),
			fmt.Sprintf("%.2f", float64(cum)/float64(max(coherentPos, 1))),
		})
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// RunFig14b regenerates Figure 14b: the WoE distributions of the top XGB
// features, separated by true-positive vs false-positive decisions.
func RunFig14b(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "fig14b",
		Title: "WoE distributions of top XGB features for TP vs FP classifications",
		PaperClaim: "false positives sit at visibly lower WoE than true positives (often at the " +
			"unknown-value 0.0), which is what makes mitigation by whitelisting work",
	}
	bundle := cachedBundle(cfg)
	s := core.New(cfg.coreDefaults())
	s.SetRules(bundle.rules)
	if err := s.Fit(bundle.trainRecords, bundle.trainAggs); err != nil {
		return nil, err
	}
	imp, err := s.FeatureImportance()
	if err != nil {
		return nil, err
	}
	// Top 4 *categorical* (WoE) columns by gain.
	names := features.ColumnNames()
	colIndex := map[string]int{}
	for i, n := range names {
		colIndex[n] = i
	}
	var topCols []int
	for _, e := range imp {
		if idx, ok := colIndex[e.Column]; ok && idx%2 == 0 { // even = categorical slot
			topCols = append(topCols, idx)
		}
		if len(topCols) == 4 {
			break
		}
	}
	pred, err := s.Predict(bundle.testAggs)
	if err != nil {
		return nil, err
	}
	tbl := Table{Name: "WoE quartiles per feature (TP vs FP)",
		Header: []string{"feature", "class", "n", "p25", "median", "p75"}}
	for _, col := range topCols {
		var tp, fp []float64
		for i, a := range bundle.testAggs {
			if pred[i] != 1 {
				continue
			}
			row := features.Encode(s.Encoder(), a, nil)
			v := row[col]
			if math.IsNaN(v) {
				continue
			}
			if a.Label {
				tp = append(tp, v)
			} else {
				fp = append(fp, v)
			}
		}
		for _, cls := range []struct {
			name string
			v    []float64
		}{{"TP", tp}, {"FP", fp}} {
			if len(cls.v) == 0 {
				tbl.Rows = append(tbl.Rows, []string{names[col], cls.name, "0", "-", "-", "-"})
				continue
			}
			sort.Float64s(cls.v)
			tbl.Rows = append(tbl.Rows, []string{
				names[col], cls.name, fmt.Sprintf("%d", len(cls.v)),
				f3(Quantile(cls.v, 0.25)), f3(Quantile(cls.v, 0.5)), f3(Quantile(cls.v, 0.75)),
			})
		}
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// RunFig16a regenerates Appendix B Figure 16a: the CDF of pairwise Spearman
// correlations among the aggregated feature columns, grouped by metric.
func RunFig16a(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "fig16a",
		Title: "Correlation introduced by the deliberate feature over-generation",
		PaperClaim: "roughly 20% of column pairs correlate above 0.7-0.8 depending on the metric " +
			"(the aggregation intentionally produces redundant columns for later reduction)",
	}
	bundle := cachedBundle(cfg)
	s := core.New(cfg.coreDefaults())
	s.SetRules(bundle.rules)
	if err := s.Fit(bundle.trainRecords, bundle.trainAggs); err != nil {
		return nil, err
	}
	// Use a sample of aggregates for the correlation matrix.
	aggs := bundle.trainAggs
	if len(aggs) > 3000 {
		aggs = aggs[:3000]
	}
	rows := make([][]float64, len(aggs))
	for i, a := range aggs {
		rows[i] = features.Encode(s.Encoder(), a, nil)
	}
	names := features.ColumnNames()

	// Column vectors per metric family (replace NaN with -1 like the
	// pipeline's imputer).
	colsByMet := map[string][]int{}
	for idx, n := range names {
		for _, met := range features.MetNames {
			if containsMet(n, met) {
				colsByMet[met] = append(colsByMet[met], idx)
			}
		}
	}
	for _, met := range features.MetNames {
		cols := colsByMet[met]
		var cors []float64
		for i := 0; i < len(cols); i++ {
			xi := column(rows, cols[i])
			for j := i + 1; j < len(cols); j++ {
				r := Spearman(xi, column(rows, cols[j]))
				if !math.IsNaN(r) {
					cors = append(cors, math.Abs(r))
				}
			}
		}
		sort.Float64s(cors)
		above7 := shareAbove(cors, 0.7)
		above8 := shareAbove(cors, 0.8)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s columns: %.1f%% of pairs with |rho| > 0.7, %.1f%% > 0.8", met, 100*above7, 100*above8))
		xs, ys := CDFPoints(cors, 11)
		res.Series = append(res.Series, Series{Name: "|spearman| CDF, " + met, X: xs, Y: ys})
	}
	return res, nil
}

func containsMet(col, met string) bool {
	// column format: cat/met/rank[@val]
	return len(col) > len(met) && indexOf(col, "/"+met+"/") >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func column(rows [][]float64, idx int) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		v := r[idx]
		if math.IsNaN(v) {
			v = -1
		}
		out[i] = v
	}
	return out
}

func shareAbove(sorted []float64, threshold float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(sorted, threshold)
	return float64(len(sorted)-i) / float64(len(sorted))
}

// RunFig16b regenerates Appendix B Figure 16b: the cumulative explained
// variance of a PCA over the aggregated dataset.
func RunFig16b(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "fig16b",
		Title: "PCA of the aggregated dataset: cumulative explained variance",
		PaperClaim: "the first ~20 components explain ~0.8 of the variance, ~50 components explain " +
			"nearly all of it (large reduction potential)",
	}
	bundle := cachedBundle(cfg)
	s := core.New(cfg.coreDefaults())
	s.SetRules(bundle.rules)
	if err := s.Fit(bundle.trainRecords, bundle.trainAggs); err != nil {
		return nil, err
	}
	aggs := bundle.trainAggs
	if len(aggs) > 4000 {
		aggs = aggs[:4000]
	}
	rows := make([][]float64, len(aggs))
	for i, a := range aggs {
		rows[i] = features.Encode(s.Encoder(), a, nil)
	}
	pipe := []ml.Transformer{
		&ml.Imputer{Value: -1},
		&ml.StandardScaler{},
	}
	cur := rows
	for _, t := range pipe {
		t.Fit(cur, nil)
		cur = t.Transform(cur)
	}
	pca := &ml.PCA{Components: features.NumColumns}
	pca.Fit(cur, nil)
	ev := pca.ExplainedVarianceRatio()

	series := Series{Name: "cumulative explained variance"}
	cum := 0.0
	for i, v := range ev {
		cum += v
		if (i+1)%5 == 0 || i == 0 || i == len(ev)-1 {
			series.X = append(series.X, float64(i+1))
			series.Y = append(series.Y, cum)
		}
	}
	res.Series = append(res.Series, series)
	// Components to reach 0.8 and 0.99.
	cum = 0.0
	n80, n99 := 0, 0
	for i, v := range ev {
		cum += v
		if n80 == 0 && cum >= 0.8 {
			n80 = i + 1
		}
		if n99 == 0 && cum >= 0.99 {
			n99 = i + 1
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("components for 80%% variance: %d; for 99%%: %d", n80, n99))
	return res, nil
}
