package experiments

import (
	"fmt"

	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/drift"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/par"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// temporalProfile shrinks a vantage point so a multi-week series stays
// laptop-sized while keeping the traffic mix.
func temporalProfile(p synth.Profile) synth.Profile {
	p.BenignFlowsPerMin = 260
	p.TargetIPs = 130
	p.BenignSrcIPs = 520
	p.EpisodeRatePerMin = 0.08
	return p
}

// temporalCorpus is a multi-day balanced corpus with day boundaries.
type temporalCorpus struct {
	c       *corpus
	days    int
	byDay   [][]synth.Flow // balanced flows per day
	profile synth.Profile
}

func buildTemporalCorpus(cfg Config, p synth.Profile, days int) *temporalCorpus {
	p = temporalProfile(p)
	key := "temporal/" + p.Name + "/" + itoa(int64(days)) + "/" + itoa(int64(cfg.Scale*1000))
	c := cachedCorpus(key, func() *corpus {
		return buildCorpus(p, 0, int64(days)*1440)
	})
	tc := &temporalCorpus{c: c, days: days, profile: p}
	tc.byDay = make([][]synth.Flow, days)
	for i := range c.balanced {
		d := int(c.balanced[i].Minute() / 1440)
		if d >= 0 && d < days {
			tc.byDay[d] = append(tc.byDay[d], c.balanced[i])
		}
	}
	return tc
}

// trainOn fits a fresh XGB scrubber on the given days' flows.
func trainOn(seed uint64, workers int, flows []synth.Flow) (*core.Scrubber, error) {
	s := core.New(core.Config{Model: core.ModelXGB, Seed: seed, AutoAccept: true, WoEMinCount: 4, Workers: workers})
	vectors := make([]string, len(flows))
	for i := range flows {
		vectors[i] = flows[i].Vector
	}
	if err := s.TrainFlows(synth.Records(flows), vectors); err != nil {
		return nil, err
	}
	return s, nil
}

func evalOn(s *core.Scrubber, flows []synth.Flow) (float64, error) {
	vectors := make([]string, len(flows))
	for i := range flows {
		vectors[i] = flows[i].Vector
	}
	aggs := s.Aggregate(synth.Records(flows), vectors)
	conf, err := s.Evaluate(aggs)
	if err != nil {
		return 0, err
	}
	return conf.FBeta(0.5), nil
}

func concat(days [][]synth.Flow) []synth.Flow {
	var out []synth.Flow
	for _, d := range days {
		out = append(out, d...)
	}
	return out
}

// temporalDays returns the series length at the configured scale. The
// paper's series runs 3 months; the base reproduction runs 28 days.
func (c Config) temporalDays() int {
	d := int(28 * c.Scale)
	if d < 10 {
		d = 10
	}
	return d
}

// RunFig11a regenerates Figure 11a: one-shot training on the first day /
// week-equivalent / month-equivalent, evaluated on every following day.
func RunFig11a(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "fig11a",
		Title: "One-shot training: Fβ=0.5 over time for training windows of increasing length",
		PaperClaim: "models learned on one day decay below 0.90 within weeks; training on a month " +
			"stays above 0.90 (median 0.989 at IXP-US1); longer windows also reduce outliers",
		Notes: []string{
			"series scaled: 28-day horizon with 1/4/10-day training windows standing in for day/week/month",
		},
	}
	days := cfg.temporalDays()
	for _, site := range []synth.Profile{synth.ProfileUS1(), synth.ProfileCE1()} {
		tc := buildTemporalCorpus(cfg, site, days)
		for _, win := range []struct {
			name string
			n    int
		}{{"day", 1}, {"week", 4}, {"month", 10}} {
			if win.n >= days {
				continue
			}
			trainFlows := concat(tc.byDay[:win.n])
			s, err := trainOn(cfg.Seed, cfg.Workers, trainFlows)
			if err != nil {
				return nil, err
			}
			// Drift reference over the training window's encoded features:
			// the same statistic the online Monitor tracks, computed offline
			// so the decay series pairs with the signal that would have
			// flagged it for retraining.
			ref, err := drift.NewReference(s.EncodeFeatures(aggregate(s, trainFlows)), nil, drift.DefaultConfig())
			if err != nil {
				return nil, err
			}
			series := Series{Name: fmt.Sprintf("%s one-shot %s", site.Name, win.name)}
			psiSeries := Series{Name: fmt.Sprintf("%s one-shot %s feature PSI", site.Name, win.name)}
			for d := win.n; d < days; d++ {
				if len(tc.byDay[d]) == 0 {
					continue
				}
				fb, err := evalOn(s, tc.byDay[d])
				if err != nil {
					return nil, err
				}
				series.X = append(series.X, float64(d))
				series.Y = append(series.Y, fb)
				mean, _, _ := ref.FeaturePSI(s.EncodeFeatures(aggregate(s, tc.byDay[d])))
				psiSeries.X = append(psiSeries.X, float64(d))
				psiSeries.Y = append(psiSeries.Y, mean)
			}
			res.Series = append(res.Series, series, psiSeries)
			res.Notes = append(res.Notes, fmt.Sprintf("%s %s: median Fβ %.3f, min %.3f; feature PSI median %.3f, max %.3f",
				site.Name, win.name, Median(series.Y), minOf(series.Y), Median(psiSeries.Y), maxOf(psiSeries.Y)))
		}
	}
	return res, nil
}

// RunFig11b regenerates Figure 11b: daily retraining on a sliding window of
// one day / week-equivalent / month-equivalent.
func RunFig11b(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "fig11b",
		Title: "Sliding-window retraining: daily retraining on the trailing window",
		PaperClaim: "daily retraining beats one-shot training; the month-long window is best " +
			"(median Fβ 0.993 at IXP-US1, 0.978 at IXP-CE1, never below 0.95); " +
			"longer windows mostly reduce outliers",
		Notes: []string{"series scaled like fig11a"},
	}
	days := cfg.temporalDays()
	for _, site := range []synth.Profile{synth.ProfileUS1(), synth.ProfileCE1()} {
		tc := buildTemporalCorpus(cfg, site, days)
		for _, win := range []struct {
			name string
			n    int
		}{{"day", 1}, {"week", 4}, {"month", 10}} {
			if win.n >= days {
				continue
			}
			series := Series{Name: fmt.Sprintf("%s sliding %s", site.Name, win.name)}
			// Daily retrainings are independent (each day trains a fresh
			// scrubber on its own trailing window), so they fan out across
			// the pool; points land in per-day slots and are collected in
			// day order below, identical to the serial loop.
			type point struct {
				fb  float64
				ok  bool
				err error
			}
			pts := make([]point, days)
			par.For(cfg.Workers, days-win.n, func(k int) {
				d := win.n + k
				if len(tc.byDay[d]) == 0 {
					return
				}
				s, err := trainOn(cfg.Seed, 1, concat(tc.byDay[d-win.n:d]))
				if err != nil {
					pts[d] = point{err: err}
					return
				}
				fb, err := evalOn(s, tc.byDay[d])
				pts[d] = point{fb: fb, ok: err == nil, err: err}
			})
			for d := win.n; d < days; d++ {
				if pts[d].err != nil {
					return nil, pts[d].err
				}
				if !pts[d].ok {
					continue
				}
				series.X = append(series.X, float64(d))
				series.Y = append(series.Y, pts[d].fb)
			}
			res.Series = append(res.Series, series)
			res.Notes = append(res.Notes, fmt.Sprintf("%s %s: median Fβ %.3f, min %.3f",
				site.Name, win.name, Median(series.Y), minOf(series.Y)))
		}
	}
	return res, nil
}

// aggregate re-aggregates flows with a trained scrubber's rule set — the
// per-target aggregates its encoder and drift reference operate on.
func aggregate(s *core.Scrubber, flows []synth.Flow) []*features.Aggregate {
	vectors := make([]string, len(flows))
	for i := range flows {
		vectors[i] = flows[i].Vector
	}
	return s.Aggregate(synth.Records(flows), vectors)
}

func minOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
