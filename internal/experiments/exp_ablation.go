package experiments

import (
	"fmt"

	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// RunMulticlass quantifies the §5.2.2 extension the paper discusses but
// does not build: predicting tagging rules directly with a multiclass model
// instead of classifying targets and matching rules afterwards. The paper
// expects this to work but to be less interpretable (predicted rules are
// model output, not raw-data artifacts); we report the achievable accuracy.
func RunMulticlass(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "multiclass",
		Title: "Extension: multiclass prediction of tagging rules (§5.2.2 discussion)",
		PaperClaim: "not evaluated in the paper — discussed as possible but likely less " +
			"interpretable; this experiment quantifies the accuracy side of that trade-off",
	}
	c := mlCorpus(cfg, synth.ProfileUS1())
	tr, te := splitCorpus(c, 2.0/3.0)
	s := core.New(cfg.coreDefaults())
	trVec := make([]string, len(tr))
	for i := range tr {
		trVec[i] = tr[i].Vector
	}
	if _, err := s.MineRules(synth.Records(tr)); err != nil {
		return nil, err
	}
	trainAggs := s.Aggregate(synth.Records(tr), trVec)
	testAggs := s.Aggregate(synth.Records(te), nil)
	if err := s.Fit(synth.Records(tr), trainAggs); err != nil {
		return nil, err
	}

	tbl := Table{Name: "rule prediction accuracy", Header: []string{"classes (rules + benign)", "test accuracy"}}
	for _, k := range []int{4, 8, 12} {
		rp := s.NewRulePredictor(k)
		if len(rp.RuleIDs) == 0 {
			continue
		}
		if err := rp.Fit(s, trainAggs); err != nil {
			return nil, err
		}
		pred, err := rp.Predict(s, testAggs)
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d+1", len(rp.RuleIDs)),
			f3(rp.Accuracy(testAggs, pred)),
		})
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"binary XGB + rule matching stays the recommended design: equal filters, but rules remain raw-data artifacts")
	return res, nil
}
