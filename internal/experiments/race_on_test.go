//go:build race

package experiments

// raceEnabled lets wall-clock-heavy tests shrink their workload when the
// race detector (5-20x slowdown) is on, so `go test -race` fits the
// default package timeout on small runners.
const raceEnabled = true
