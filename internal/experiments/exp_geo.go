package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"

	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/registry"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
	"github.com/ixp-scrubber/ixpscrubber/internal/woe"
)

// RunFig12 regenerates all three panels of Figure 12: the cross-IXP
// transfer heatmap for full models, the overlap of high-WoE source IPs
// between vantage points, and the transfer heatmap when only the classifier
// moves while WoE stays local.
func RunFig12(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "fig12",
		Title: "Geographic model drift: full transfer vs local WoE, and reflector knowledge overlap",
		PaperClaim: "training and testing at the same IXP (or on ALL) scores near 1.0; full transfer " +
			"between IXPs can degrade badly; high-WoE source IPs barely overlap between IXPs; " +
			"transferring only the classifier with local WoE restores >= 0.98 almost everywhere",
	}
	profiles := synth.Profiles()
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}

	// Per-IXP train/test splits and locally fitted encoders.
	type site struct {
		name      string
		trainAggs []*features.Aggregate
		testAggs  []*features.Aggregate
		scrubber  *core.Scrubber // trained locally
		localEnc  *woe.Encoder   // fitted on the local training aggregates
	}
	sites := make([]*site, len(profiles))
	for i, p := range profiles {
		c := mlCorpus(cfg, p)
		tr, te := splitCorpus(c, 2.0/3.0)
		s := core.New(core.Config{Model: core.ModelXGB, Seed: cfg.Seed, AutoAccept: true, WoEMinCount: 4, Workers: cfg.Workers})
		trVec := make([]string, len(tr))
		for j := range tr {
			trVec[j] = tr[j].Vector
		}
		teVec := make([]string, len(te))
		for j := range te {
			teVec[j] = te[j].Vector
		}
		if _, err := s.MineRules(synth.Records(tr)); err != nil {
			return nil, err
		}
		st := &site{name: p.Name}
		st.trainAggs = s.Aggregate(synth.Records(tr), trVec)
		st.testAggs = s.Aggregate(synth.Records(te), teVec)
		if err := s.Fit(synth.Records(tr), st.trainAggs); err != nil {
			return nil, fmt.Errorf("training at %s: %w", p.Name, err)
		}
		st.scrubber = s
		st.localEnc = s.Encoder()
		sites[i] = st
	}

	// An ALL model trained on the union.
	all := core.New(core.Config{Model: core.ModelXGB, Seed: cfg.Seed, AutoAccept: true, WoEMinCount: 4, Workers: cfg.Workers})
	var allTrainFlows []synth.Flow
	for _, p := range profiles {
		tr, _ := splitCorpus(mlCorpus(cfg, p), 2.0/3.0)
		allTrainFlows = append(allTrainFlows, tr...)
	}
	if _, err := all.MineRules(synth.Records(allTrainFlows)); err != nil {
		return nil, err
	}
	var allTrainAggs []*features.Aggregate
	for _, p := range profiles {
		tr, _ := splitCorpus(mlCorpus(cfg, p), 2.0/3.0)
		vec := make([]string, len(tr))
		for j := range tr {
			vec[j] = tr[j].Vector
		}
		allTrainAggs = append(allTrainAggs, all.Aggregate(synth.Records(tr), vec)...)
	}
	if err := all.Fit(synth.Records(allTrainFlows), allTrainAggs); err != nil {
		return nil, err
	}

	// Panel 1: full transfer heatmap (train rows x test columns).
	full := Table{Name: "full model transfer, Fβ=0.5 (rows = trained at, cols = tested at)",
		Header: append([]string{"trained \\ tested"}, names...)}
	row := []string{"ALL"}
	for _, dst := range sites {
		conf, err := all.Evaluate(dst.testAggs)
		if err != nil {
			return nil, err
		}
		row = append(row, f3(conf.FBeta(0.5)))
	}
	full.Rows = append(full.Rows, row)
	for _, src := range sites {
		row := []string{src.name}
		for _, dst := range sites {
			conf, err := src.scrubber.Evaluate(dst.testAggs)
			if err != nil {
				return nil, err
			}
			row = append(row, f3(conf.FBeta(0.5)))
		}
		full.Rows = append(full.Rows, row)
	}
	res.Tables = append(res.Tables, full)

	// Panel 2: overlap of high-WoE source IPs (reflector knowledge).
	ovl := Table{Name: "overlap of source IPs with WoE > 1.0 (Jaccard)",
		Header: append([]string{"site"}, names...)}
	for _, a := range sites {
		row := []string{a.name}
		for _, b := range sites {
			row = append(row, f3(woe.Overlap(a.localEnc, b.localEnc, "src_ip", 1.0)))
		}
		ovl.Rows = append(ovl.Rows, row)
	}
	res.Tables = append(res.Tables, ovl)
	// Ports overlap an order of magnitude more (noted, not tabulated).
	var ipSum, portSum float64
	var n int
	for i, a := range sites {
		for j, b := range sites {
			if i >= j {
				continue
			}
			ipSum += woe.Overlap(a.localEnc, b.localEnc, "src_ip", 1.0)
			portSum += woe.Overlap(a.localEnc, b.localEnc, "port_src", 1.0)
			n++
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"mean pairwise overlap: source IPs %.3f vs source ports %.3f (ports overlap far more, as in the paper)",
		ipSum/float64(n), portSum/float64(n)))

	// Panel 3: classifier-only transfer with local WoE, moved between sites
	// through the production path — each source publishes its model to its
	// model registry and exports the classifier-only bundle (the WoE table
	// stays home); each destination imports the bundle into its own registry
	// and re-binds the trees to the local encoder. The panel therefore also
	// certifies that the transfer artifact survives serialization bit-exactly.
	dir, err := os.MkdirTemp("", "fig12-registry-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()
	local := Table{Name: "classifier-only transfer with local WoE, Fβ=0.5",
		Header: append([]string{"trained \\ tested"}, names...)}
	for _, src := range sites {
		srcReg, err := registry.Open(filepath.Join(dir, src.name), registry.Options{})
		if err != nil {
			return nil, err
		}
		var bundle bytes.Buffer
		if err := src.scrubber.Save(&bundle); err != nil {
			return nil, fmt.Errorf("publishing %s model: %w", src.name, err)
		}
		man, err := srcReg.Publish(ctx, bundle.Bytes(), registry.Meta{
			EncoderFingerprint: src.localEnc.Fingerprint(),
			Notes:              "fig12 source model at " + src.name,
		})
		if err != nil {
			return nil, err
		}
		export, err := srcReg.ExportClassifier(man.ID)
		if err != nil {
			return nil, err
		}
		row := []string{src.name}
		for _, dst := range sites {
			dstReg, err := registry.Open(filepath.Join(dir, dst.name+"-imports"), registry.Options{})
			if err != nil {
				return nil, err
			}
			imp, err := dstReg.ImportClassifier(ctx, export, registry.Meta{Parent: man.ID})
			if err != nil {
				return nil, fmt.Errorf("importing %s classifier at %s: %w", src.name, dst.name, err)
			}
			_, transferred, err := dstReg.LoadScrubber(imp.ID)
			if err != nil {
				return nil, err
			}
			conf, err := transferred.WithEncoder(dst.localEnc).Evaluate(dst.testAggs)
			if err != nil {
				return nil, err
			}
			row = append(row, f3(conf.FBeta(0.5)))
		}
		local.Rows = append(local.Rows, row)
	}
	res.Tables = append(res.Tables, local)
	return res, nil
}
