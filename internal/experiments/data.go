package experiments

import (
	"sync"

	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// Config scales the experiments: Scale 1.0 runs the window sizes documented
// in EXPERIMENTS.md; smaller values shrink every time window (benchmarks
// use 0.25-0.5 to stay in seconds). Scale does not change traffic rates,
// only durations, so the statistical shapes survive scaling.
type Config struct {
	Scale float64
	Seed  uint64
	// Workers bounds the worker pool for the harness (concurrent artifact
	// runners, the Table-3/5 model-zoo loop) and is threaded into every
	// core.Scrubber the experiments build: 0 sizes from GOMAXPROCS, 1
	// forces the serial path. Artifact contents are bit-for-bit identical
	// at every value; only wall-clock (and therefore the µs/pred timing
	// columns) changes.
	Workers int
	// Metrics, when non-nil, records per-artifact wall time and output
	// sizes into the registry so a benchmark run is self-describing (the
	// registry's exposition text can be archived next to the results).
	Metrics *obs.Registry
}

// DefaultConfig runs full-size experiments.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 1} }

// coreDefaults is core.DefaultConfig with the harness worker knob threaded
// through, so scrubbers built inside experiments share the pool sizing.
func (c Config) coreDefaults() core.Config {
	cc := core.DefaultConfig()
	cc.Workers = c.Workers
	return cc
}

// minutes scales a duration (in minutes) by the config, with a floor.
func (c Config) minutes(base int64) int64 {
	scale := c.Scale
	if scale <= 0 {
		scale = 1
	}
	m := int64(float64(base) * scale)
	if m < 30 {
		m = 30
	}
	return m
}

// corpus is one generated-and-balanced window of a vantage point with
// ground truth retained.
type corpus struct {
	profile  synth.Profile
	balanced []synth.Flow
	stats    balance.Stats
	// raw traffic statistics gathered during generation without storing
	// the raw stream (the online part of Table 2 / Fig. 3a).
	rawFlows       uint64
	rawBytes       uint64
	rawBHBytes     uint64
	minuteShares   []float64 // per-minute blackhole byte share (Fig. 3a)
	fromMin, toMin int64
}

func (c *corpus) records() ([]synth.Flow, []string) {
	vectors := make([]string, len(c.balanced))
	for i := range c.balanced {
		vectors[i] = c.balanced[i].Vector
	}
	return c.balanced, vectors
}

// buildCorpus streams the generator through the balancer, collecting the
// raw statistics on the fly (records not selected are discarded, mirroring
// the paper's privacy-preserving online reduction).
func buildCorpus(p synth.Profile, fromMin, toMin int64) *corpus {
	g := synth.NewGenerator(p)
	c := &corpus{profile: p, fromMin: fromMin, toMin: toMin}
	bal := balance.ForFlows(p.Seed^0xBA1A, func(f synth.Flow) {
		c.balanced = append(c.balanced, f)
	})
	var buf []synth.Flow
	for m := fromMin; m < toMin; m++ {
		buf = g.GenerateMinute(m, buf[:0])
		var bytes, bhBytes uint64
		for i := range buf {
			bytes += buf[i].Bytes
			if buf[i].Blackholed {
				bhBytes += buf[i].Bytes
			}
			bal.Add(buf[i])
		}
		c.rawFlows += uint64(len(buf))
		c.rawBytes += bytes
		c.rawBHBytes += bhBytes
		if bytes > 0 {
			c.minuteShares = append(c.minuteShares, float64(bhBytes)/float64(bytes))
		}
	}
	bal.Flush()
	c.stats = bal.Stats
	return c
}

// newBalancerInto returns a balancer appending kept flows into c.balanced.
func newBalancerInto(c *corpus) *balance.Balancer[synth.Flow] {
	return balance.ForFlows(c.profile.Seed^0xBA1A, func(f synth.Flow) {
		c.balanced = append(c.balanced, f)
	})
}

// corpusCache shares corpora between experiments in one process (several
// experiments read the same vantage point windows). Entries are built
// singleflight: when concurrent experiments want the same window, one
// builds while the others wait on the entry's Once — corpora take minutes
// at full scale, so duplicate builds would erase the harness's parallel
// speedup.
var corpusCache = struct {
	mu sync.Mutex
	m  map[string]*corpusEntry
}{m: make(map[string]*corpusEntry)}

type corpusEntry struct {
	once sync.Once
	c    *corpus
}

func cachedCorpus(key string, build func() *corpus) *corpus {
	corpusCache.mu.Lock()
	e := corpusCache.m[key]
	if e == nil {
		e = &corpusEntry{}
		corpusCache.m[key] = e
	}
	corpusCache.mu.Unlock()
	e.once.Do(func() { e.c = build() })
	return e.c
}

// ResetCaches drops every shared corpus and bundle. Benchmarks call it so
// serial-vs-parallel comparisons measure full regenerations rather than
// cache hits; production code never needs it.
func ResetCaches() {
	corpusCache.mu.Lock()
	corpusCache.m = make(map[string]*corpusEntry)
	corpusCache.mu.Unlock()
	bundleCache.mu.Lock()
	bundleCache.m = make(map[string]*bundleEntry)
	bundleCache.mu.Unlock()
}

// mlWindowMinutes is the base training+evaluation window of the model
// experiments (one day).
const mlWindowMinutes = 1440

// mlCorpus returns the balanced one-day corpus of one vantage point at the
// configured scale, shared across experiments.
func mlCorpus(cfg Config, p synth.Profile) *corpus {
	minutes := cfg.minutes(mlWindowMinutes)
	key := p.Name + "/" + itoa(minutes) + "/" + itoa(int64(cfg.Seed))
	return cachedCorpus(key, func() *corpus {
		pp := p
		if cfg.Seed != 0 {
			pp.Seed = p.Seed ^ cfg.Seed<<32
		}
		return buildCorpus(pp, 0, minutes)
	})
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// mergedCorpus concatenates the balanced corpora of all five vantage points
// (the "all IXPs merged" training set of §6.1). Flows keep their per-IXP
// timestamps; training splits are made per corpus and then merged so no
// minute straddles a split.
func mergedCorpus(cfg Config) []*corpus {
	profiles := synth.Profiles()
	out := make([]*corpus, len(profiles))
	for i, p := range profiles {
		out[i] = mlCorpus(cfg, p)
	}
	return out
}

// splitCorpus returns train/test flow slices cut at trainFrac of the
// corpus, aligned to a minute boundary.
func splitCorpus(c *corpus, trainFrac float64) (train, test []synth.Flow) {
	cut := int(float64(len(c.balanced)) * trainFrac)
	for cut < len(c.balanced) && cut > 0 &&
		c.balanced[cut].Minute() == c.balanced[cut-1].Minute() {
		cut++
	}
	return c.balanced[:cut], c.balanced[cut:]
}
