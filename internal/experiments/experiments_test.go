package experiments

import (
	"math"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// quickCfg keeps experiment tests in seconds.
func quickCfg() Config { return Config{Scale: 0.12, Seed: 3} }

func cell(t *testing.T, tbl *Table, row int, col string) string {
	t.Helper()
	for i, h := range tbl.Header {
		if h == col {
			return tbl.Rows[row][i]
		}
	}
	t.Fatalf("column %q not in %v", col, tbl.Header)
	return ""
}

func cellF(t *testing.T, tbl *Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tbl, row, col), 64)
	if err != nil {
		t.Fatalf("cell %s[%d] = %q: %v", col, row, cell(t, tbl, row, col), err)
	}
	return v
}

func TestStatsHelpers(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-12 {
		t.Errorf("pearson = %v", r)
	}
	yneg := []float64{5, 4, 3, 2, 1}
	if r := Spearman(x, yneg); math.Abs(r+1) > 1e-12 {
		t.Errorf("spearman = %v", r)
	}
	if !math.IsNaN(Pearson(x, y[:3])) {
		t.Error("length mismatch must be NaN")
	}
	sorted := []float64{1, 2, 3, 4}
	if q := Quantile(sorted, 0.5); math.Abs(q-2.5) > 1e-12 {
		t.Errorf("median = %v", q)
	}
	if Quantile(sorted, 0) != 1 || Quantile(sorted, 1) != 4 {
		t.Error("quantile extremes")
	}
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median = %v", m)
	}
	xs, ys := CDFPoints(sorted, 5)
	if len(xs) != 5 || ys[0] != 0 || ys[4] != 1 {
		t.Errorf("cdf = %v %v", xs, ys)
	}
	// Spearman handles ties via average ranks.
	if r := Spearman([]float64{1, 1, 2}, []float64{1, 1, 2}); math.Abs(r-1) > 1e-9 {
		t.Errorf("tied spearman = %v", r)
	}
}

func TestRenderTableAndSeries(t *testing.T) {
	res := Result{
		ID:    "x",
		Title: "demo",
		Tables: []Table{{
			Name:   "t",
			Header: []string{"a", "bee"},
			Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		}},
		Series: []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{0.5, 0.7}}},
		Notes:  []string{"hello"},
	}
	out := res.Render()
	for _, want := range []string{"== x: demo ==", "note: hello", "333", "series s", "0.7000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	if len(Order) != len(Registry) {
		t.Fatalf("Order has %d entries, Registry %d", len(Order), len(Registry))
	}
	for _, id := range Order {
		if Registry[id] == nil {
			t.Errorf("ordered experiment %q not registered", id)
		}
	}
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable2Shape(t *testing.T) {
	// The balanced-share assertion needs every vantage point to see at
	// least one blackhole episode; at quickCfg scale the 172-minute window
	// can miss the smallest site entirely (IXP-US1 balanced to zero flows
	// at seed 3). Scale 0.3 guarantees episodes at all five sites.
	cfg := quickCfg()
	cfg.Scale = 0.3
	res, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := &res.Tables[0]
	if len(tbl.Rows) != 6 { // 5 IXPs + SAS
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := 0; i < 5; i++ {
		share := cellF(t, tbl, i, "bh share [%]")
		if share < 40 || share > 62 {
			t.Errorf("row %d: balanced share %.2f%% outside [40, 62]", i, share)
		}
		kept := cellF(t, tbl, i, "kept/raw [%]")
		if kept > 35 {
			t.Errorf("row %d: reduction too weak (%.2f%% kept)", i, kept)
		}
	}
	// Size ordering: CE1 raw > CE2 raw.
	raw0 := cellF(t, tbl, 0, "raw flows")
	raw4 := cellF(t, tbl, 4, "raw flows")
	if raw0 <= raw4 {
		t.Errorf("CE1 raw %v should exceed CE2 raw %v", raw0, raw4)
	}
}

func TestFig3cCorrelation(t *testing.T) {
	res, err := RunFig3c(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tbl := &res.Tables[0]
	last := len(tbl.Rows) - 1
	if tbl.Rows[last][0] != "ALL" {
		t.Fatal("missing ALL row")
	}
	r := cellF(t, tbl, last, "pearson r")
	if r < 0.5 {
		t.Errorf("overall flows/IP correlation r = %.3f, want strong positive (paper 0.77)", r)
	}
}

func TestFig4aShape(t *testing.T) {
	res, err := RunFig4a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tbl := &res.Tables[0]
	get := func(class string) (wk, frag float64) {
		for i, row := range tbl.Rows {
			if row[0] == class {
				return cellF(t, tbl, i, "well-known DDoS ports [%]"), cellF(t, tbl, i, "UDP fragments [%]")
			}
		}
		t.Fatalf("class %q missing", class)
		return 0, 0
	}
	benignWK, benignFrag := get("benign")
	bhWK, bhFrag := get("blackholing")
	sasWK, _ := get("self-attack")
	if !(benignWK < 20 && bhWK > 60 && sasWK > 80) {
		t.Errorf("port shares: benign %.1f / blackhole %.1f / sas %.1f — want ~7.5/87.5/100 shape",
			benignWK, bhWK, sasWK)
	}
	if bhFrag < 2*benignFrag {
		t.Errorf("fragments: blackhole %.2f%% vs benign %.2f%% — want order-of-magnitude gap", bhFrag, benignFrag)
	}
}

func TestRuleFunnelMonotone(t *testing.T) {
	res, err := RunRuleCount(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Notes {
		if strings.Contains(n, "WARNING") {
			t.Error(n)
		}
	}
	tbl := &res.Tables[0]
	var vals []float64
	for _, row := range tbl.Rows[1:] { // skip frequent itemsets row
		v, _ := strconv.ParseFloat(row[1], 64)
		vals = append(vals, v)
	}
	if !(vals[0] >= vals[1] && vals[1] >= vals[2]) {
		t.Errorf("funnel not monotone: %v", vals)
	}
	if vals[2] == 0 {
		t.Error("no rules survived minimization")
	}
}

func TestFig15Monotone(t *testing.T) {
	res, err := RunFig15(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tbl := &res.Tables[0]
	// Rule counts must not increase along rows (growing Lc) or columns
	// (growing Ls).
	parse := func(r, c int) float64 {
		v, _ := strconv.ParseFloat(tbl.Rows[r][c+1], 64)
		return v
	}
	for r := 0; r < len(tbl.Rows); r++ {
		for c := 1; c < len(tbl.Header)-1; c++ {
			if parse(r, c) > parse(r, c-1) {
				t.Errorf("row %d: count increases with Ls", r)
			}
		}
	}
	for c := 0; c < len(tbl.Header)-1; c++ {
		for r := 1; r < len(tbl.Rows); r++ {
			if parse(r, c) > parse(r-1, c) {
				t.Errorf("col %d: count increases with Lc", c)
			}
		}
	}
}

func TestOperatorStudyShape(t *testing.T) {
	res, err := RunOperatorStudy(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tbl := &res.Tables[0]
	if len(tbl.Rows) != 5 {
		t.Fatalf("subjects = %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		dropped := cellF(t, tbl, i, "DDoS dropped [%]")
		benign := cellF(t, tbl, i, "benign dropped [%]")
		if dropped < 40 {
			t.Errorf("subject %d: only %.1f%% of DDoS dropped", i, dropped)
		}
		if benign > 10 {
			t.Errorf("subject %d: %.1f%% benign dropped (paper: 0.43%%)", i, benign)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := RunTable3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tbl := &res.Tables[0]
	scores := map[string]float64{}
	sas := map[string]float64{}
	for i, row := range tbl.Rows {
		if row[0] != "RBC" { // RBC's split columns are blanked (leakage)
			scores[row[0]] = cellF(t, tbl, i, "Fβ=0.5")
		}
		sas[row[0]] = cellF(t, tbl, i, "Fβ (SAS)")
	}
	if sas["RBC"] < 0.5 {
		t.Errorf("RBC on SAS = %.3f, want well above chance (paper: 0.917)", sas["RBC"])
	}
	if scores["XGB"] < 0.9 {
		t.Errorf("XGB Fβ = %.3f", scores["XGB"])
	}
	if scores["DUM"] < 0.3 || scores["DUM"] > 0.7 {
		t.Errorf("DUM Fβ = %.3f, want ~0.5", scores["DUM"])
	}
	// XGB beats the dummy by a wide margin and is at or near the top.
	for m, s := range scores {
		if m == "XGB" || m == "DUM" || m == "RBC" {
			continue
		}
		if s > scores["XGB"]+0.03 {
			t.Errorf("%s (%.3f) substantially beats XGB (%.3f)", m, s, scores["XGB"])
		}
	}
	// SAS columns: trained models generalize to the independent ground
	// truth set (paper: XGB 0.961, LSVM 0.963).
	if sas["XGB"] < 0.8 {
		t.Errorf("XGB on SAS = %.3f", sas["XGB"])
	}
}

func TestFig10Importances(t *testing.T) {
	res, err := RunFig10(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tbl := &res.Tables[0]
	if len(tbl.Rows) == 0 {
		t.Fatal("no importances")
	}
	prev := math.Inf(1)
	for i := range tbl.Rows {
		g := cellF(t, tbl, i, "gain")
		if g > prev {
			t.Fatal("gains not descending")
		}
		prev = g
		if !strings.Contains(cell(t, tbl, i, "feature"), "/") {
			t.Errorf("feature name %q not in categorical/metric/rank notation", cell(t, tbl, i, "feature"))
		}
	}
}

// fig12Result runs RunFig12 once and shares the result between the shape
// test and the known-gap reproducer, so the 30 cross-site trainings are
// paid for once.
var fig12Once struct {
	sync.Once
	res *Result
	err error
}

func fig12Result(t *testing.T) *Result {
	t.Helper()
	// 30 cross-site train/evaluate pairs: ~30s plain, several minutes
	// under the race detector's slowdown.
	if testing.Short() || raceEnabled {
		t.Skip("30 cross-site trainings; run without -short/-race")
	}
	fig12Once.Do(func() { fig12Once.res, fig12Once.err = RunFig12(quickCfg()) })
	if fig12Once.err != nil {
		t.Fatal(fig12Once.err)
	}
	return fig12Once.res
}

// fig12Mean averages the numeric cells of a heatmap panel, optionally
// skipping the ALL row.
func fig12Mean(tbl *Table, skipAllRow bool) float64 {
	var sum float64
	var n int
	for i, row := range tbl.Rows {
		if skipAllRow && i == 0 && row[0] == "ALL" {
			continue
		}
		for _, cellv := range row[1:] {
			v, err := strconv.ParseFloat(cellv, 64)
			if err == nil {
				sum += v
				n++
			}
		}
	}
	return sum / float64(n)
}

func TestFig12Shape(t *testing.T) {
	res := fig12Result(t)
	if len(res.Tables) != 3 {
		t.Fatalf("want 3 panels, got %d", len(res.Tables))
	}
	full, ovl, local := &res.Tables[0], &res.Tables[1], &res.Tables[2]

	// Diagonal of the full heatmap (training site == test site) is high.
	// Row 0 is ALL; diagonal starts at row 1.
	for i := 1; i < len(full.Rows); i++ {
		v, _ := strconv.ParseFloat(full.Rows[i][i], 64)
		if v < 0.85 {
			t.Errorf("full transfer diagonal %s = %.3f", full.Rows[i][0], v)
		}
	}
	// ALL row is uniformly strong.
	for c := 1; c < len(full.Rows[0]); c++ {
		v, _ := strconv.ParseFloat(full.Rows[0][c], 64)
		if v < 0.8 {
			t.Errorf("ALL model on %s = %.3f", full.Header[c], v)
		}
	}
	// Reflector overlap: diagonal 1.0, off-diagonal small.
	for i := range ovl.Rows {
		for j := 1; j < len(ovl.Rows[i]); j++ {
			v, _ := strconv.ParseFloat(ovl.Rows[i][j], 64)
			if i == j-1 {
				if v < 0.99 {
					t.Errorf("self overlap = %v", v)
				}
			} else if v > 0.2 {
				t.Errorf("cross-IXP reflector overlap %s->%s = %.3f, want near 0",
					ovl.Rows[i][0], ovl.Header[j], v)
			}
		}
	}
	// Classifier-only transfer: the paper-level claim (mean >= full
	// transfer mean) does not reproduce yet; TestFig12ClassifierOnlyGap
	// tracks that gap and fails when it heals. Here, assert the floor that
	// does hold.
	if m := fig12Mean(local, false); m < 0.8 {
		t.Errorf("classifier-only transfer mean = %.3f, want > 0.8", m)
	}
}

// TestFig12ClassifierOnlyGap is the tracked reproducer for the known gap
// first documented in PR 1: the paper (§6.4, Fig. 12 right) claims that
// shipping only the classifier and pairing it with the destination's local
// WoE encoder restores cross-IXP transfer almost everywhere, which would
// put the classifier-only panel's mean at or above the full-transfer
// panel's. The reproduction deterministically falls short: models trained
// at sites with a divergent traffic mix (IXP-CE1) collapse to ~0.55 when
// paired with a foreign encoder, at every scale tried (0.12 and 0.3 give
// means 0.851/0.843 vs full-transfer 0.920/0.931). The seed only passed
// the paper-level comparison when reflector-pool churn nondeterminism
// landed favourably; with generation now reproducible it fails every time.
//
// This test asserts the gap's exact signature, so it serves two purposes:
// the gap cannot silently widen (the floor in TestFig12Shape still holds),
// and it cannot silently heal — if cross-site WoE calibration improves
// enough to satisfy the paper's claim, this test FAILS, telling the
// maintainer to promote the mean comparison into TestFig12Shape and delete
// this reproducer.
func TestFig12ClassifierOnlyGap(t *testing.T) {
	res := fig12Result(t)
	full, local := &res.Tables[0], &res.Tables[2]
	fullMean, localMean := fig12Mean(full, false), fig12Mean(local, false)
	if localMean >= fullMean {
		t.Fatalf("known gap healed: classifier-only mean %.3f >= full-transfer mean %.3f; "+
			"promote the paper's mean comparison into TestFig12Shape and delete this reproducer",
			localMean, fullMean)
	}
	// The collapse is localized, not diffuse: at least one
	// divergent-mix/foreign-encoder pairing drops well below the
	// working cells.
	worst := 1.0
	for _, row := range local.Rows {
		for _, cellv := range row[1:] {
			if v, err := strconv.ParseFloat(cellv, 64); err == nil && v < worst {
				worst = v
			}
		}
	}
	if worst > 0.7 {
		t.Fatalf("collapse signature no longer reproduces: worst classifier-only cell %.3f > 0.7; "+
			"the gap changed shape — re-characterize it or promote the paper assertion", worst)
	}
}

func TestFig13Shape(t *testing.T) {
	// TODO: RunFig13 replays a multi-month emergence timeline and takes
	// ~30 minutes of CPU even at quickCfg scale — it is what blew the
	// package past the 600s default timeout. Make the timeline scale with
	// Config.Scale (it currently floors at the emergence dates), then
	// remove this gate.
	if os.Getenv("IXPSCRUBBER_HEAVY_TESTS") == "" {
		t.Skip("needs ~30min of CPU; set IXPSCRUBBER_HEAVY_TESTS=1 to run")
	}
	res, err := RunFig13(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]*Series{}
	for i := range res.Series {
		series[res.Series[i].Name] = &res.Series[i]
	}
	// Each emerging vector's WoE ends clearly positive.
	for _, v := range []string{"SNMP", "SSDP", "memcached"} {
		s := series["WoE "+v]
		if s == nil || len(s.Y) == 0 {
			t.Fatalf("missing WoE series for %s", v)
		}
		if last := s.Y[len(s.Y)-1]; last < 1 {
			t.Errorf("%s final WoE = %.2f, want strongly positive", v, last)
		}
	}
	// HTTPS reference stays non-positive.
	href := series["WoE HTTPS (reference)"]
	if href == nil {
		t.Fatal("missing HTTPS series")
	}
	for _, y := range href.Y {
		if y > 0.2 {
			t.Errorf("HTTPS WoE rose to %.2f", y)
		}
	}
	// Per-vector Fβ ends high for at least the earliest vector.
	fbs := series["Fβ SNMP"]
	if fbs == nil || len(fbs.Y) == 0 {
		t.Fatal("missing Fβ SNMP")
	}
	if last := fbs.Y[len(fbs.Y)-1]; last < 0.7 {
		t.Errorf("SNMP final Fβ = %.3f", last)
	}
}

func TestFig16bVarianceShape(t *testing.T) {
	res, err := RunFig16b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series[0]
	if len(s.Y) < 3 {
		t.Fatal("too few points")
	}
	// Cumulative variance is nondecreasing and reaches ~1.
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i]+1e-9 < s.Y[i-1] {
			t.Fatal("cumulative variance decreasing")
		}
	}
	if last := s.Y[len(s.Y)-1]; last < 0.99 {
		t.Errorf("total explained variance = %.3f", last)
	}
	// Far fewer than 150 components suffice for 80%.
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "components for 80%") {
			found = true
			parts := strings.Fields(n)
			v, _ := strconv.Atoi(strings.TrimSuffix(parts[4], ";"))
			if v <= 0 || v > 100 {
				t.Errorf("80%% variance needs %d components, want substantial reduction", v)
			}
		}
	}
	if !found {
		t.Error("missing components note")
	}
}
