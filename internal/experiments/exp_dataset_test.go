package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// Fig3a and Fig4b are covered here (separate file keeps the main test file
// readable); they reuse the shared dataset corpora.

func TestFig3aShares(t *testing.T) {
	res, err := RunFig3a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("series = %d, want one per vantage point", len(res.Series))
	}
	for _, s := range res.Series {
		// CDF is monotone in both coordinates.
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] || s.X[i]+1e-12 < s.X[i-1] {
				t.Fatalf("%s: CDF not monotone", s.Name)
			}
		}
		// Median share is small (realistic imbalance).
		mid := s.X[len(s.X)/2]
		if mid > 0.05 {
			t.Errorf("%s: median per-minute blackhole share %.4f, want small", s.Name, mid)
		}
	}
}

func TestFig4bAgreement(t *testing.T) {
	// Per-vector mean frame sizes need enough episodes per vector to
	// converge; at quickCfg scale the rarest vectors appear with a handful
	// of flows and their means are noise (DNS read 132B vs the true
	// ~1.2kB). Scale 0.3 is the smallest window where every compared
	// vector has converged.
	cfg := quickCfg()
	cfg.Scale = 0.3
	res, err := RunFig4b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := &res.Tables[0]
	checked := 0
	for i, row := range tbl.Rows {
		bh := cell(t, tbl, i, "blackholing")
		sas := cell(t, tbl, i, "self-attack")
		if bh == "-" {
			// Vectors absent from blackholing (WS-Discovery) are expected.
			if row[0] == "WS-Discovery" {
				continue
			}
			continue
		}
		b := parseF(t, bh)
		s := parseF(t, sas)
		if b <= 0 || s <= 0 {
			continue
		}
		ratio := b / s
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("%s: blackholing mean %.0f vs SAS %.0f — sizes should agree", row[0], b, s)
		}
		checked++
	}
	if checked < 5 {
		t.Errorf("only %d vectors compared", checked)
	}
	// NTP's characteristic ~468B frame.
	for i, row := range tbl.Rows {
		if row[0] == "NTP" {
			v := parseF(t, cell(t, tbl, i, "self-attack"))
			if v < 380 || v > 560 {
				t.Errorf("NTP mean frame %.0f, want ~470 (monlist reply)", v)
			}
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
