package experiments

import (
	"fmt"
	"sync"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml/xgb"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/par"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

// trainedBundle bundles what the model-comparison experiments share: a rule
// set mined on the merged training split, per-model train/test aggregates,
// and the SAS aggregates.
type trainedBundle struct {
	rules        *tagging.RuleSet
	trainRecords []netflow.Record
	trainAggs    []*features.Aggregate
	testAggs     []*features.Aggregate
	sasAggs      []*features.Aggregate
}

// buildBundle assembles the merged all-IXP 2/3-1/3 experiment data.
func buildBundle(cfg Config) *trainedBundle {
	var trainFlows, testFlows []synth.Flow
	for _, c := range mergedCorpus(cfg) {
		tr, te := splitCorpus(c, 2.0/3.0)
		trainFlows = append(trainFlows, tr...)
		testFlows = append(testFlows, te...)
	}
	ccfg := core.DefaultConfig()
	ccfg.Workers = cfg.Workers
	s := core.New(ccfg)
	trainRecords := synth.Records(trainFlows)
	if _, err := s.MineRules(trainRecords); err != nil {
		panic(err) // MineRules cannot fail today; keep the signature honest upstream
	}

	bundle := &trainedBundle{rules: s.Rules(), trainRecords: trainRecords}
	// Aggregate each corpus separately (timestamps of different IXPs
	// overlap; aggregation requires minute-ordered streams per vantage
	// point).
	aggOne := func(flows []synth.Flow) []*features.Aggregate {
		vectors := make([]string, len(flows))
		for i := range flows {
			vectors[i] = flows[i].Vector
		}
		return s.Aggregate(synth.Records(flows), vectors)
	}
	for _, c := range mergedCorpus(cfg) {
		tr, te := splitCorpus(c, 2.0/3.0)
		bundle.trainAggs = append(bundle.trainAggs, aggOne(tr)...)
		bundle.testAggs = append(bundle.testAggs, aggOne(te)...)
	}
	bundle.sasAggs = aggOne(sasCorpus(cfg).balanced)
	return bundle
}

// bundleCache shares the merged-training bundle between the model
// experiments, singleflight like corpusCache: concurrent runners wanting
// the same bundle wait for one build instead of duplicating it (or racing
// on an unsynchronized cache).
var bundleCache = struct {
	mu sync.Mutex
	m  map[string]*bundleEntry
}{m: make(map[string]*bundleEntry)}

type bundleEntry struct {
	once sync.Once
	b    *trainedBundle
}

func cachedBundle(cfg Config) *trainedBundle {
	key := fmt.Sprintf("%v/%d", cfg.Scale, cfg.Seed)
	bundleCache.mu.Lock()
	e := bundleCache.m[key]
	if e == nil {
		e = &bundleEntry{}
		bundleCache.m[key] = e
	}
	bundleCache.mu.Unlock()
	e.once.Do(func() { e.b = buildBundle(cfg) })
	return e.b
}

// modelRow evaluates one model on the bundle and returns the Table 3 row.
func modelRow(cfg Config, bundle *trainedBundle, model core.ModelName, vectors []string) ([]string, error) {
	s := core.New(core.Config{Model: model, Seed: cfg.Seed + 7, AutoAccept: true, WoEMinCount: 4, Workers: cfg.Workers})
	s.SetRules(bundle.rules)
	start := time.Now()
	if err := s.Fit(bundle.trainRecords, bundle.trainAggs); err != nil {
		return nil, fmt.Errorf("%s: %w", model, err)
	}
	fitTime := time.Since(start)

	conf, err := s.Evaluate(bundle.testAggs)
	if err != nil {
		return nil, err
	}
	// Prediction cost: time per aggregate, averaged.
	start = time.Now()
	if _, err := s.Predict(bundle.testAggs); err != nil {
		return nil, err
	}
	perPred := time.Duration(0)
	if len(bundle.testAggs) > 0 {
		perPred = time.Since(start) / time.Duration(len(bundle.testAggs))
	}

	perVec, err := s.EvaluatePerVector(bundle.testAggs)
	if err != nil {
		return nil, err
	}
	sasConf, err := s.Evaluate(bundle.sasAggs)
	if err != nil {
		return nil, err
	}

	row := []string{string(model)}
	if model == core.ModelRBC {
		// The paper validates RBC only on the self-attack set: its rules
		// were mined on the training split, so split-set scores would be
		// data leakage. Blank them as Table 3 does.
		for i := 0; i < 7+len(vectors); i++ {
			row = append(row, "-")
		}
	} else {
		row = append(row,
			f3(conf.FBeta(0.5)), f3(conf.F1()),
			fmt.Sprintf("%d", perPred.Microseconds()),
			f3(conf.TNR()), f3(conf.FNR()), f3(conf.TPR()), f3(conf.FPR()),
		)
		for _, v := range vectors {
			if c, ok := perVec[v]; ok {
				row = append(row, f3(c.FBeta(0.5)))
			} else {
				row = append(row, "-")
			}
		}
	}
	row = append(row, f3(sasConf.FBeta(0.5)))
	_ = fitTime
	return row, nil
}

// top7VectorNames lists the per-vector columns of Table 3.
func top7VectorNames() []string {
	names := make([]string, len(synth.Top7Vectors))
	for i, v := range synth.Top7Vectors {
		names[i] = v.Name
	}
	return names
}

func runModelTable(cfg Config, id string, models []core.ModelName) (*Result, error) {
	res := &Result{
		ID:    id,
		Title: "Classification results: 2/3-1/3 split on all vantage points merged; last column = trained models applied to the SAS",
		PaperClaim: "XGB leads with Fβ=0.5 = 0.989 (fnr 0.012); all real models reach >= 0.77 with " +
			"NB variants trailing (NB-B 0.769); RBC reaches 0.917 on SAS; DUM anchors at ~0.5; " +
			"per-vector scores are uniformly high for the top-7 vectors",
		Notes: []string{
			"prediction cost reported as µs/prediction instead of CPU mega clock cycles (portable substitute, DESIGN.md §2)",
			"RBC is only meaningful on data the rules were not mined from; its split-set columns mirror the SAS protocol",
		},
	}
	bundle := cachedBundle(cfg)
	vectors := top7VectorNames()
	header := []string{"model", "Fβ=0.5", "F1", "µs/pred", "tnr", "fnr", "tpr", "fpr"}
	header = append(header, vectors...)
	header = append(header, "Fβ (SAS)")
	tbl := Table{Name: "classification results", Header: header}
	// Model-zoo fan-out: every model trains and scores independently on the
	// shared read-only bundle. Rows land in per-model slots and are appended
	// in Table 3/5 order below — parallel and serial runs emit the same
	// table (the µs/pred timing column is wall-clock and varies run to run
	// under either execution mode).
	rows := make([][]string, len(models))
	errs := make([]error, len(models))
	par.For(cfg.Workers, len(models), func(i int) {
		rows[i], errs[i] = modelRow(cfg, bundle, models[i], vectors)
	})
	for i := range models {
		if errs[i] != nil {
			return nil, errs[i]
		}
		tbl.Rows = append(tbl.Rows, rows[i])
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// RunTable3 regenerates Table 3 (the headline model comparison, NB-C/M/B
// omitted as in the paper).
func RunTable3(cfg Config) (*Result, error) {
	return runModelTable(cfg, "table3", []core.ModelName{
		core.ModelXGB, core.ModelNN, core.ModelLSVM, core.ModelNBG,
		core.ModelDT, core.ModelRBC, core.ModelDUM,
	})
}

// RunTable5 regenerates Appendix D Table 5 (all models incl. the weak NB
// variants).
func RunTable5(cfg Config) (*Result, error) {
	res, err := runModelTable(cfg, "table5", core.AllModels)
	if err != nil {
		return nil, err
	}
	res.Title = "Complete classification results (Appendix D): " + res.Title
	return res, nil
}

// RunFig10 regenerates Figure 10: the top-10 XGB features by gain.
func RunFig10(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "fig10",
		Title: "XGB features with highest gain (categorical/metric/rank notation)",
		PaperClaim: "top features mix WoE-encoded categoricals (source IPs, service ports) with " +
			"volume metrics — the known DDoS signatures (abused ports, packet sizes, reflector IPs)",
	}
	bundle := cachedBundle(cfg)
	s := core.New(cfg.coreDefaults())
	s.SetRules(bundle.rules)
	if err := s.Fit(bundle.trainRecords, bundle.trainAggs); err != nil {
		return nil, err
	}
	imp, err := s.FeatureImportance()
	if err != nil {
		return nil, err
	}
	if len(imp) > 10 {
		imp = imp[:10]
	}
	tbl := Table{Name: "top-10 features by gain", Header: []string{"rank", "feature", "gain"}}
	for i, e := range imp {
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprintf("%d", i+1), e.Column, fmt.Sprintf("%.1f", e.Gain)})
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// RunTable4 regenerates the Appendix C hyperparameter grid search for the
// XGB model (the paper's full grid spans five model families; XGB's grid is
// the one that decides the headline model).
func RunTable4(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "table4",
		Title: "Hyperparameter grid search (XGB grid of Appendix C, 3-fold CV on a sample)",
		PaperClaim: "XGB selects #estimators 24, max depth 24, learning rate 0.3; " +
			"performance is insensitive across most of the grid (all Fβ high)",
		Notes: []string{"depth grid capped at 16: histogram trees on 150 features saturate earlier than exact-split XGBoost"},
	}
	bundle := cachedBundle(cfg)
	// Build the encoded dataset once (the paper samples 250k records; we
	// sample proportionally).
	s := core.New(cfg.coreDefaults())
	s.SetRules(bundle.rules)
	if err := s.Fit(bundle.trainRecords, bundle.trainAggs); err != nil {
		return nil, err
	}
	x := make([][]float64, len(bundle.trainAggs))
	y := make([]int, len(bundle.trainAggs))
	for i, a := range bundle.trainAggs {
		x[i] = features.Encode(s.Encoder(), a, nil)
		if a.Label {
			y[i] = 1
		}
	}
	d, err := ml.NewDataset(x, y, features.ColumnNames())
	if err != nil {
		return nil, err
	}
	d = d.Sample(cfg.Seed, 6000)

	space := map[string][]float64{
		"estimators":    {2, 8, 24},
		"max_depth":     {4, 8, 16},
		"learning_rate": {0.1, 0.3},
	}
	results, err := ml.GridSearch(space, func(p ml.Params) *ml.Pipeline {
		return &ml.Pipeline{
			Stages: []ml.Transformer{&ml.VarianceThreshold{Min: 1e-12}, &ml.Imputer{Value: -1}},
			Model: xgb.New(xgb.Options{
				Estimators:     int(p["estimators"]),
				MaxDepth:       int(p["max_depth"]),
				LearningRate:   p["learning_rate"],
				Lambda:         1,
				Bins:           32,
				MinChildWeight: 1,
			}),
		}
	}, d, cfg.Seed, 3)
	if err != nil {
		return nil, err
	}
	tbl := Table{Name: "grid results (best first)", Header: []string{"estimators", "max depth", "learning rate", "mean Fβ=0.5 (3-fold)"}}
	for _, r := range results {
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.0f", r.Params["estimators"]),
			fmt.Sprintf("%.0f", r.Params["max_depth"]),
			fmt.Sprintf("%g", r.Params["learning_rate"]),
			f4(r.Score),
		})
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}
