package experiments

import (
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/drift"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// TestTemporalDriftReference exercises the fig11a drift wiring on a corpus
// small enough for every CI run: the one-shot model's training window seeds
// a drift.Reference, same-window traffic scores near zero PSI, and traffic
// from a profile with a different attack mix scores visibly higher. This is
// the offline twin of the online Monitor the pipeline runs.
func TestTemporalDriftReference(t *testing.T) {
	p := synth.ProfileUS1()
	p.Seed = 7
	c := buildCorpus(p, 0, 240)
	train, test := splitCorpus(c, 0.5)

	s, err := trainOn(7, 0, train)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := drift.NewReference(s.EncodeFeatures(aggregate(s, train)), nil, drift.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	sameMean, _, _ := ref.FeaturePSI(s.EncodeFeatures(aggregate(s, test)))

	// A shifted vantage point: different attack volume and source pools.
	p2 := synth.ProfileCE1()
	p2.Seed = 8
	c2 := buildCorpus(p2, 0, 240)
	shiftMean, shiftMax, _ := ref.FeaturePSI(s.EncodeFeatures(aggregate(s, c2.balanced)))

	if sameMean < 0 || shiftMean < 0 {
		t.Fatalf("PSI must be non-negative: same=%f shifted=%f", sameMean, shiftMean)
	}
	if shiftMean <= sameMean {
		t.Errorf("shifted traffic PSI %.4f not above same-window PSI %.4f", shiftMean, sameMean)
	}
	if shiftMax < shiftMean {
		t.Errorf("max column PSI %.4f below mean %.4f", shiftMax, shiftMean)
	}
}
