package experiments

import (
	"context"
	"fmt"
	"os"

	"github.com/ixp-scrubber/ixpscrubber/internal/cluster"
)

// RunCluster drives the live federated topology (internal/cluster) for a
// short run — three sites, training rounds at minutes 5 and 10, one gossip
// round — and tabulates the election's score matrix: every travelling
// classifier-only bundle shadow-scored on every other site's WoE-encoded
// window. It is the live counterpart of fig12 panel 3: the same bundles
// move over the registry Export/Import path, but scored inside the serving
// topology rather than an offline harness.
func RunCluster(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "cluster",
		Title: "Live federated cluster: gossip-round election score matrix",
		PaperClaim: "a locally trained model wins its own site (training and testing at the same IXP " +
			"scores near 1.0); classifier-only bundles re-bound to local WoE stay competitive when they " +
			"travel, so elections promote an import only where it is strictly better",
	}
	dir, err := os.MkdirTemp("", "exp-cluster-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	const sites = 3
	c, err := cluster.New(cluster.Config{
		Sites:       sites,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
		Dir:         dir,
		TrainEvery:  5,
		GossipEvery: 10,
	})
	if err != nil {
		return nil, err
	}
	defer c.Stop()
	ctx := context.Background()
	c.Start(ctx)
	if err := c.Run(ctx, 10); err != nil {
		return nil, fmt.Errorf("cluster run: %w", err)
	}

	names := make([]string, sites)
	for i, s := range c.Sites() {
		names[i] = s.Name
	}
	// matrix[origin][dst]: the origin site's champion scored at dst.
	// Diagonal cells are the incumbents; off-diagonal cells are the
	// imported candidates of the final election.
	matrix := make([][]string, sites)
	for i := range matrix {
		matrix[i] = make([]string, sites)
		for j := range matrix[i] {
			matrix[i][j] = "-"
		}
	}
	elections := Table{Name: "final election per site",
		Header: []string{"site", "incumbent Fβ", "winner", "promoted import"}}
	for _, s := range c.Sites() {
		els := s.Elections()
		if len(els) == 0 {
			return nil, fmt.Errorf("site %s ran no election", s.Name)
		}
		el := els[len(els)-1]
		if el.Skipped {
			elections.Rows = append(elections.Rows, []string{s.Name, "-", "-", "-"})
			continue
		}
		matrix[el.Incumbent.Origin][el.Site] = f3(el.Incumbent.FBeta)
		for _, cand := range el.Candidates {
			if cand.Invalid {
				matrix[cand.Origin][el.Site] = "invalid"
				continue
			}
			matrix[cand.Origin][el.Site] = f3(cand.FBeta)
		}
		elections.Rows = append(elections.Rows, []string{
			s.Name, f3(el.Incumbent.FBeta), names[el.WinnerOrigin], fmt.Sprintf("%v", el.Promoted)})
	}

	scores := Table{Name: "election score matrix, Fβ=0.5 (rows = bundle origin, cols = scored at)",
		Header: append([]string{"origin \\ scored at"}, names...)}
	for i, row := range matrix {
		scores.Rows = append(scores.Rows, append([]string{names[i]}, row...))
	}
	res.Tables = append(res.Tables, scores, elections)

	out := c.Outcome()
	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d sites x 10 simulated minutes; %d gossip rounds exchanged %d bundles (%d rejected) and promoted %d imports",
		sites, out.GossipRounds, out.Exchanged, out.Rejected, out.Promotions))
	res.Notes = append(res.Notes,
		"fixed-size live run (ignores -scale): scores are shadow evaluations inside the serving topology, not the offline fig12 harness")
	return res, nil
}
