package experiments

import (
	"fmt"

	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
	"github.com/ixp-scrubber/ixpscrubber/internal/woe"
)

// RunFig13 regenerates Figure 13 on the long IXP-SE corpus: as new attack
// vectors (SNMP, SSDP, memcached) start getting blackholed, their service
// ports' WoE rises from neutral to strongly positive and the per-vector
// classification performance of an incrementally retrained XGB follows;
// HTTPS stays negative throughout as the benign reference.
func RunFig13(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "fig13",
		Title: "Learning new DDoS vectors without operator intervention (IXP-SE long corpus)",
		PaperClaim: "once members start blackholing a new vector, its WoE rises and the Fβ for that " +
			"vector converges to ~1 with incremental retraining; HTTP's WoE stays constantly negative",
		Notes: []string{
			"time axis scaled: the 2-year IXP-SE window is reproduced as a multi-week series with " +
				"vector start dates at weeks 2, 4 and 7",
		},
	}
	// A scaled IXP-SE: 12 weeks, with the three vectors emerging. The
	// corpus volume is reduced further than the fig11 series because this
	// experiment retrains weekly over a multi-month horizon.
	weeks := int(12 * cfg.Scale)
	if weeks < 7 {
		weeks = 7
	}
	p := temporalProfile(synth.ProfileSE())
	p.BenignFlowsPerMin = 130
	p.TargetIPs = 70
	p.BenignSrcIPs = 260
	p.EpisodeRatePerMin = 0.1
	p.VectorStart = map[string]int64{
		"SNMP":      1 * 7 * 86400,
		"SSDP":      2 * 7 * 86400,
		"memcached": 4 * 7 * 86400,
	}
	key := "fig13/" + itoa(int64(weeks))
	c := cachedCorpus(key, func() *corpus {
		return buildCorpus(p, 0, int64(weeks)*7*1440)
	})

	// Split balanced flows by week.
	byWeek := make([][]synth.Flow, weeks)
	for i := range c.balanced {
		w := int(c.balanced[i].Minute() / (7 * 1440))
		if w >= 0 && w < weeks {
			byWeek[w] = append(byWeek[w], c.balanced[i])
		}
	}

	vectors := []struct {
		name string
		port uint16
	}{{"SNMP", 161}, {"SSDP", 1900}, {"memcached", 11211}}

	// Weekly WoE series: encoder fitted on everything up to week w.
	woeSeries := make([]Series, len(vectors)+1)
	for i, v := range vectors {
		woeSeries[i] = Series{Name: "WoE " + v.name}
	}
	woeSeries[len(vectors)] = Series{Name: "WoE HTTPS (reference)"}

	// Per-vector Fβ with incremental training: train on everything up to
	// week w, evaluate on the last two weeks.
	evalFlows := concat(byWeek[weeks-2:])
	evalVec := make([]string, len(evalFlows))
	for i := range evalFlows {
		evalVec[i] = evalFlows[i].Vector
	}
	fbSeries := make([]Series, len(vectors))
	for i, v := range vectors {
		fbSeries[i] = Series{Name: "Fβ " + v.name}
	}

	for w := 1; w < weeks-2; w++ {
		// WoE accumulates the new week's observations.
		s := core.New(core.Config{Model: core.ModelXGB, Seed: cfg.Seed, AutoAccept: true, WoEMinCount: 4, Workers: cfg.Workers})
		trainFlows := concat(byWeek[:w])
		trVec := make([]string, len(trainFlows))
		for i := range trainFlows {
			trVec[i] = trainFlows[i].Vector
		}
		if err := s.TrainFlows(synth.Records(trainFlows), trVec); err != nil {
			return nil, err
		}
		for i, v := range vectors {
			woeSeries[i].X = append(woeSeries[i].X, float64(w))
			woeSeries[i].Y = append(woeSeries[i].Y, s.Encoder().WoE("port_src", woe.KeyPort(v.port)))
		}
		woeSeries[len(vectors)].X = append(woeSeries[len(vectors)].X, float64(w))
		woeSeries[len(vectors)].Y = append(woeSeries[len(vectors)].Y, s.Encoder().WoE("port_src", woe.KeyPort(443)))

		testAggs := s.Aggregate(synth.Records(evalFlows), evalVec)
		perVec, err := s.EvaluatePerVector(testAggs)
		if err != nil {
			return nil, err
		}
		for i, v := range vectors {
			fb := 0.0
			if conf, ok := perVec[v.name]; ok {
				fb = conf.FBeta(0.5)
			}
			fbSeries[i].X = append(fbSeries[i].X, float64(w))
			fbSeries[i].Y = append(fbSeries[i].Y, fb)
		}
	}
	res.Series = append(res.Series, woeSeries...)
	res.Series = append(res.Series, fbSeries...)

	// Shape checks become notes.
	for i, v := range vectors {
		ys := woeSeries[i].Y
		if len(ys) >= 2 {
			res.Notes = append(res.Notes, fmt.Sprintf("%s WoE first/last: %.2f -> %.2f", v.name, ys[0], ys[len(ys)-1]))
		}
	}
	http := woeSeries[len(vectors)].Y
	if len(http) > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("HTTPS WoE stays in [%.2f, %.2f]", minOf(http), maxOf(http)))
	}
	return res, nil
}

func maxOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
