package experiments

import (
	"fmt"
	"os"
	"testing"
)

// maskTimingColumns blanks the wall-clock µs/pred column of the model
// tables in place. Timing is the one column that can never be bit-for-bit
// reproducible — it measures the host, not the model — so determinism
// checks compare everything but it.
func maskTimingColumns(res *Result) {
	for t := range res.Tables {
		tbl := &res.Tables[t]
		for c, h := range tbl.Header {
			if h != "µs/pred" {
				continue
			}
			for r := range tbl.Rows {
				if c < len(tbl.Rows[r]) {
					tbl.Rows[r][c] = "-"
				}
			}
		}
	}
}

// renderMasked runs one experiment and returns its rendered artifact with
// timing columns masked. Rendering covers tables, series, and notes, so a
// byte-equal render means a byte-equal artifact.
func renderMasked(t *testing.T, id string, cfg Config) string {
	t.Helper()
	res, err := Run(id, cfg)
	if err != nil {
		t.Fatalf("%s (workers=%d): %v", id, cfg.Workers, err)
	}
	maskTimingColumns(res)
	return res.Render()
}

// TestRunWorkersIdentical proves the harness determinism contract: every
// artifact rendered with a parallel pool is byte-identical to the serial
// Workers=1 render (timing columns masked), across seeds. rulecount covers
// the FP-Growth fan-out, table3 covers the model-zoo loop plus the
// parallel XGB trainer and batch encoder behind it.
func TestRunWorkersIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed experiment reruns are minutes of work; run without -short")
	}
	ids := []string{"rulecount", "table3"}
	seeds := []uint64{1, 2, 3}
	if raceEnabled {
		// The race detector proves thread-safety at one seed; the
		// three-seed breadth check runs in the plain suite.
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, id := range ids {
			t.Run(fmt.Sprintf("%s/seed=%d", id, seed), func(t *testing.T) {
				ref := renderMasked(t, id, Config{Scale: 0.1, Seed: seed, Workers: 1})
				for _, workers := range []int{2, 8} {
					got := renderMasked(t, id, Config{Scale: 0.1, Seed: seed, Workers: workers})
					if got != ref {
						t.Fatalf("workers=%d: rendered artifact differs from serial run:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
							workers, ref, workers, got)
					}
				}
			})
		}
	}
}

// TestFig11bWorkersIdentical exercises the per-day retraining fan-out of
// the sliding-window experiment, the one artifact whose inner loop (not
// just its scrubbers) runs on the pool.
func TestFig11bWorkersIdentical(t *testing.T) {
	// TODO: the 10-day temporal corpus floor makes three fig11b reruns
	// exceed the 600s package timeout on small runners; shrink the floor
	// or cache the corpus on disk, then drop this gate.
	if os.Getenv("IXPSCRUBBER_HEAVY_TESTS") == "" {
		t.Skip("needs minutes of wall clock; set IXPSCRUBBER_HEAVY_TESTS=1 to run")
	}
	ref := renderMasked(t, "fig11b", Config{Scale: 0.1, Seed: 1, Workers: 1})
	for _, workers := range []int{2, 8} {
		got := renderMasked(t, "fig11b", Config{Scale: 0.1, Seed: 1, Workers: workers})
		if got != ref {
			t.Fatalf("workers=%d: fig11b differs from serial run", workers)
		}
	}
}
