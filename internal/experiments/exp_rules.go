package experiments

import (
	"fmt"
	"math/rand/v2"

	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

// RunRuleCount regenerates the §5.1.1 rule funnel: all mined association
// rules, the subset with the {blackhole} consequent, and the remainder
// after Algorithm 1 minimization.
func RunRuleCount(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "rulecount",
		Title: "Association rule funnel (FP-Growth at c >= 0.8, Algorithm 1 at Lc = Ls = 0.01)",
		PaperClaim: "7,859 rules mined -> 1,469 with {blackhole} consequent -> 367 after Algorithm 1 " +
			"(absolute counts scale with the header vocabulary; the monotone funnel is the artifact)",
	}
	c := mlCorpus(cfg, synth.ProfileUS1())
	records := synth.Records(c.balanced)
	_, rep := tagging.Mine(records, tagging.DefaultMineOptions())
	res.Tables = append(res.Tables, Table{
		Name:   "rule funnel",
		Header: []string{"stage", "rules"},
		Rows: [][]string{
			{"frequent itemsets", fmt.Sprintf("%d", rep.FrequentItemsets)},
			{"rules, all consequents", fmt.Sprintf("%d", rep.RulesAllConsequents)},
			{"consequent = {blackhole}", fmt.Sprintf("%d", rep.RulesBlackhole)},
			{"after Algorithm 1", fmt.Sprintf("%d", rep.RulesMinimized)},
		},
	})
	if !(rep.RulesAllConsequents >= rep.RulesBlackhole && rep.RulesBlackhole >= rep.RulesMinimized) {
		res.Notes = append(res.Notes, "WARNING: funnel not monotone")
	}
	return res, nil
}

// RunFig15 regenerates Appendix A / Figure 15: remaining rules after
// Algorithm 1 for a grid of loss thresholds Lc and Ls.
func RunFig15(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "fig15",
		Title: "Rule minimization sensitivity: remaining rules vs (Lc, Ls)",
		PaperClaim: "rule count decreases monotonically with both thresholds; beyond " +
			"Lc = Ls = 0.01 further tightening removes few additional rules (the chosen operating point)",
	}
	c := mlCorpus(cfg, synth.ProfileUS1())
	records := synth.Records(c.balanced)
	// Mine once without minimization, then minimize per grid point.
	opts := tagging.DefaultMineOptions()
	opts.LossConfidence = -1 // disable: MinimizeRules with negative loss keeps everything
	opts.LossSupport = -1
	rules, _ := tagging.Mine(records, opts)

	grid := []float64{0.0001, 0.001, 0.01, 0.1, 0.5}
	tbl := Table{Name: "remaining rules", Header: []string{"Lc \\ Ls"}}
	for _, ls := range grid {
		tbl.Header = append(tbl.Header, fmt.Sprintf("%g", ls))
	}
	for _, lc := range grid {
		row := []string{fmt.Sprintf("%g", lc)}
		for _, ls := range grid {
			kept := tagging.MinimizeRules(rules, lc, ls)
			row = append(row, fmt.Sprintf("%d", len(kept)))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes, fmt.Sprintf("unminimized {blackhole} rules: %d", len(rules)))
	return res, nil
}

// RunOperatorStudy substitutes the §5.1.3 subjective study with a scripted
// operator: rules mined from the self-attack set are curated by the
// documented acceptance policy (with a small per-rule error rate modeling
// human disagreement), and the curated set is evaluated exactly like the
// paper evaluates its subjects — percent of ground-truth DDoS dropped and
// percent of benign traffic dropped.
func RunOperatorStudy(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "operator",
		Title: "Operator rule curation quality (scripted substitute for the §5.1.3 human study)",
		PaperClaim: "subjects dropped 76.73% of ground-truth DDoS while dropping only 0.43% of " +
			"benign traffic, curating 38 rules in ~6.6 minutes (human time not reproducible)",
		Notes: []string{
			"substitution per DESIGN.md §2: the scripted policy (confidence >= 0.9, anchored antecedent) replaces human judgment;" +
				" a 5% random accept/decline flip models subject disagreement",
		},
	}
	sas := sasCorpus(cfg)
	records := synth.Records(sas.balanced)
	cut := len(records) * 1 / 2
	for cut < len(records) && records[cut].Minute() == records[cut-1].Minute() {
		cut++
	}
	rules, _ := tagging.Mine(records[:cut], tagging.DefaultMineOptions())

	rng := rand.New(rand.NewPCG(cfg.Seed, 0x0B))
	tbl := Table{Name: "curation outcomes", Header: []string{"subject", "rules accepted", "DDoS dropped [%]", "benign dropped [%]"}}
	for subject := 1; subject <= 5; subject++ {
		set := tagging.NewRuleSet(rules)
		set.Apply(tagging.DefaultAcceptPolicy())
		// Humans disagree on borderline rules: flip 5% of decisions.
		for _, r := range set.Rules() {
			if rng.Float64() < 0.05 {
				st := tagging.StatusAccept
				if r.Status == tagging.StatusAccept {
					st = tagging.StatusDecline
				}
				if err := set.SetStatus(r.ID, st, "subject flip"); err != nil {
					return nil, err
				}
			}
		}
		tg := tagging.NewTagger(set.Accepted())
		var attack, attackDropped, benign, benignDropped int
		for i := cut; i < len(records); i++ {
			hit := tg.Matches(&records[i])
			if sas.balanced[i].Attack {
				attack++
				if hit {
					attackDropped++
				}
			} else {
				benign++
				if hit {
					benignDropped++
				}
			}
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("subject-%d", subject),
			fmt.Sprintf("%d", len(set.Accepted())),
			fmt.Sprintf("%.2f", 100*float64(attackDropped)/float64(max(attack, 1))),
			fmt.Sprintf("%.2f", 100*float64(benignDropped)/float64(max(benign, 1))),
		})
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}
