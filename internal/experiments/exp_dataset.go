package experiments

import (
	"fmt"
	"sort"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// datasetCorpus builds the one-week realistic-imbalance corpora used by the
// dataset-validation experiments (Table 2, Fig. 3, Fig. 4). Volumes use the
// standard profiles (realistic benign:attack imbalance) over a scaled week.
func datasetCorpus(cfg Config, p synth.Profile) *corpus {
	minutes := cfg.minutes(7 * 1440 / 4) // base: 42 hours per vantage point
	key := "ds/" + p.Name + "/" + itoa(minutes)
	real := p.RealisticImbalance()
	return cachedCorpus(key, func() *corpus { return buildCorpus(real, 0, minutes) })
}

// sasCorpus builds the balanced self-attack set.
func sasCorpus(cfg Config) *corpus {
	minutes := cfg.minutes(2 * 1440) // base: 2 of the 9 days
	key := "sas/" + itoa(minutes)
	return cachedCorpus(key, func() *corpus {
		c := synth.DefaultSelfAttackConfig()
		c.ToMin = c.FromMin + minutes
		flows := synth.SelfAttackSet(c)
		out := &corpus{profile: c.Profile, fromMin: c.FromMin, toMin: c.ToMin}
		out.rawFlows = uint64(len(flows))
		bal := newBalancerInto(out)
		for i := range flows {
			bal.Add(flows[i])
		}
		bal.Flush()
		out.stats = bal.Stats
		return out
	})
}

// RunTable2 regenerates Table 2: per-vantage-point dataset sizes before and
// after balancing, the blackhole share of the balanced sets, and the data
// reduction.
func RunTable2(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "table2",
		Title: "Dataset overview: balancing reduction and class share per vantage point",
		PaperClaim: "blackhole share ~48-55% after balancing at every IXP; " +
			"reduction keeps <=0.03% of raw flow records; IXP sizes span >2 orders of magnitude",
		Notes: []string{
			"raw volumes are synthetic substitutes scaled down uniformly (DESIGN.md §2); ratios are the reproduced artifact",
		},
	}
	tbl := Table{
		Name: "dataset overview",
		Header: []string{"vantage point", "#ASes", "raw flows", "balanced flows",
			"bh share [%]", "kept/raw [%]"},
	}
	for _, p := range synth.Profiles() {
		c := datasetCorpus(cfg, p)
		tbl.Rows = append(tbl.Rows, []string{
			p.Name,
			fmt.Sprintf("%d", p.Members),
			fmt.Sprintf("%d", c.rawFlows),
			fmt.Sprintf("%d", c.stats.Out),
			fmt.Sprintf("%.2f", 100*c.stats.BlackholeShare()),
			fmt.Sprintf("%.4f", 100*c.stats.Reduction()),
		})
	}
	sas := sasCorpus(cfg)
	tbl.Rows = append(tbl.Rows, []string{
		"SAS", "-",
		fmt.Sprintf("%d", sas.rawFlows),
		fmt.Sprintf("%d", sas.stats.Out),
		fmt.Sprintf("%.2f", 100*sas.stats.BlackholeShare()),
		"-",
	})
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// RunFig3a regenerates Figure 3a: the CDF of the per-minute blackholing
// byte share across vantage points.
func RunFig3a(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "fig3a",
		Title: "CDF of blackholing traffic share per minute",
		PaperClaim: "blackholing never exceeds ~0.8% of total traffic; " +
			"90% of minute bins are below 0.1%",
	}
	for _, p := range synth.Profiles() {
		c := datasetCorpus(cfg, p)
		shares := append([]float64(nil), c.minuteShares...)
		sort.Float64s(shares)
		xs, ys := CDFPoints(shares, 21)
		res.Series = append(res.Series, Series{Name: p.Name + " share-vs-CDF", X: xs, Y: ys})
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: p90 share %.4f%%, max %.4f%%", p.Name,
			100*Quantile(shares, 0.90), 100*Quantile(shares, 1.0)))
	}
	return res, nil
}

// RunFig3c regenerates Figure 3c: flows per unique IP, blackholing vs
// benign class, per minute bin of the balanced sets, with Pearson's r.
func RunFig3c(cfg Config) (*Result, error) {
	res := &Result{
		ID:         "fig3c",
		Title:      "Flows per unique IP: blackholing vs benign class (balanced sets)",
		PaperClaim: "classes correlate with Pearson r = 0.77 (p < 0.01) across all IXPs",
	}
	var allBH, allBE []float64
	tbl := Table{Name: "per-IXP correlation", Header: []string{"vantage point", "minute bins", "pearson r"}}
	for _, p := range synth.Profiles() {
		c := datasetCorpus(cfg, p)
		var st netflow.Stats
		for i := range c.balanced {
			st.Add(&c.balanced[i].Record)
		}
		bh, be := st.FlowsPerIPPoints()
		allBH = append(allBH, bh...)
		allBE = append(allBE, be...)
		tbl.Rows = append(tbl.Rows, []string{p.Name, fmt.Sprintf("%d", len(bh)), f3(Pearson(bh, be))})
	}
	tbl.Rows = append(tbl.Rows, []string{"ALL", fmt.Sprintf("%d", len(allBH)), f3(Pearson(allBH, allBE))})
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// RunFig4a regenerates Figure 4a: the share of well-known DDoS ports in the
// benign class, the blackholing class, and the self-attack set, plus the
// UDP fragment shares.
func RunFig4a(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "fig4a",
		Title: "Share of well-known DDoS ports per class",
		PaperClaim: "benign ~7.5% well-known DDoS ports; blackholing ~87.5%; " +
			"SAS ~100%; blackholing and SAS carry an order of magnitude more UDP fragments than benign",
	}
	type classStat struct {
		flows, wellKnown, fragments uint64
	}
	var benign, blackhole, sas classStat
	count := func(st *classStat, fl *synth.Flow) {
		st.flows++
		if fl.Fragment {
			st.fragments++
			return
		}
		if synth.IsWellKnownDDoSPort(fl.Protocol, fl.SrcPort) {
			st.wellKnown++
		}
	}
	for _, p := range synth.Profiles() {
		c := datasetCorpus(cfg, p)
		for i := range c.balanced {
			fl := &c.balanced[i]
			if fl.Blackholed {
				count(&blackhole, fl)
			} else {
				count(&benign, fl)
			}
		}
	}
	for i := range sasCorpus(cfg).balanced {
		fl := &sasCorpus(cfg).balanced[i]
		if fl.Blackholed {
			count(&sas, fl)
		}
	}
	tbl := Table{Name: "class composition", Header: []string{"class", "flows", "well-known DDoS ports [%]", "UDP fragments [%]"}}
	for _, row := range []struct {
		name string
		st   classStat
	}{{"benign", benign}, {"blackholing", blackhole}, {"self-attack", sas}} {
		if row.st.flows == 0 {
			continue
		}
		tbl.Rows = append(tbl.Rows, []string{
			row.name,
			fmt.Sprintf("%d", row.st.flows),
			fmt.Sprintf("%.2f", 100*float64(row.st.wellKnown+row.st.fragments)/float64(row.st.flows)),
			fmt.Sprintf("%.2f", 100*float64(row.st.fragments)/float64(row.st.flows)),
		})
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// RunFig4b regenerates Figure 4b: per-vector mean packet sizes in the
// blackholing class versus the self-attack set.
func RunFig4b(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "fig4b",
		Title: "Packet size characteristics per DDoS vector: blackholing vs self-attack",
		PaperClaim: "per-vector packet sizes agree between blackholing and self-attack classes " +
			"(e.g. NTP ~500B); WS-Discovery is hardly present in the blackholing class",
	}
	type sizes struct {
		sum   float64
		n     int
	}
	bh := map[string]*sizes{}
	sas := map[string]*sizes{}
	add := (func(m map[string]*sizes, fl *synth.Flow) {
		v := synth.VectorOf(fl.Protocol, fl.SrcPort, fl.Fragment)
		if v == "" {
			return
		}
		s := m[v]
		if s == nil {
			s = &sizes{}
			m[v] = s
		}
		s.sum += fl.MeanPacketSize()
		s.n++
	})
	for _, p := range synth.Profiles() {
		c := datasetCorpus(cfg, p)
		for i := range c.balanced {
			if c.balanced[i].Blackholed {
				add(bh, &c.balanced[i])
			}
		}
	}
	for i := range sasCorpus(cfg).balanced {
		if sasCorpus(cfg).balanced[i].Blackholed {
			add(sas, &sasCorpus(cfg).balanced[i])
		}
	}
	var names []string
	for v := range sas {
		names = append(names, v)
	}
	sort.Strings(names)
	tbl := Table{Name: "mean frame size [B]", Header: []string{"vector", "blackholing", "self-attack", "bh samples", "sas samples"}}
	for _, v := range names {
		bhMean, bhN := "-", 0
		if s := bh[v]; s != nil && s.n > 0 {
			bhMean, bhN = fmt.Sprintf("%.0f", s.sum/float64(s.n)), s.n
		}
		s := sas[v]
		tbl.Rows = append(tbl.Rows, []string{
			v, bhMean, fmt.Sprintf("%.0f", s.sum/float64(s.n)),
			fmt.Sprintf("%d", bhN), fmt.Sprintf("%d", s.n),
		})
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}
