package ipfix

import (
	"encoding/binary"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

func sampleRecords() []Record {
	return []Record{
		{
			StartSeconds: 1_627_000_000,
			SrcIP:        netip.MustParseAddr("192.0.2.1"),
			DstIP:        netip.MustParseAddr("198.51.100.7"),
			SrcPort:      123, DstPort: 40000,
			Protocol: 17, TCPFlags: 0, Fragment: false,
			SrcMAC:  [6]byte{2, 0, 0, 0, 0, 1},
			DstMAC:  [6]byte{2, 0, 0, 0, 0, 2},
			Packets: 2048, Bytes: 2048 * 468, SamplingRate: 2048,
		},
		{
			StartSeconds: 1_627_000_030,
			SrcIP:        netip.MustParseAddr("203.0.113.9"),
			DstIP:        netip.MustParseAddr("198.51.100.8"),
			SrcPort:      0, DstPort: 0,
			Protocol: 17, Fragment: true,
			Packets: 1024, Bytes: 1024 * 1480, SamplingRate: 1024,
		},
	}
}

func TestExportCollectRoundTrip(t *testing.T) {
	e := &Exporter{DomainID: 7}
	c := NewCollector()
	msg := e.Encode(nil, 1000, sampleRecords())
	got, err := c.Decode(msg)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if len(got) != len(want) {
		t.Fatalf("records = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d:\n got  %+v\n want %+v", i, got[i], want[i])
		}
	}
}

func TestTemplateOnlyOnFirstMessage(t *testing.T) {
	e := &Exporter{DomainID: 7}
	first := e.Encode(nil, 1000, sampleRecords()[:1])
	second := e.Encode(nil, 1001, sampleRecords()[:1])
	if len(second) >= len(first) {
		t.Errorf("second message (%dB) should be smaller than first (%dB): template omitted", len(second), len(first))
	}
	c := NewCollector()
	if _, err := c.Decode(first); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(second); err != nil {
		t.Fatalf("second message failed after template learned: %v", err)
	}
}

func TestUnknownTemplate(t *testing.T) {
	e := &Exporter{DomainID: 7}
	e.sentTmpl = true // suppress the template set
	msg := e.Encode(nil, 1000, sampleRecords()[:1])
	c := NewCollector()
	if _, err := c.Decode(msg); !errors.Is(err, ErrUnknownTemplate) {
		t.Fatalf("err = %v, want ErrUnknownTemplate", err)
	}
	// Template refresh fixes it.
	e.ResendTemplate()
	msg2 := e.Encode(nil, 1001, sampleRecords()[:1])
	if _, err := c.Decode(msg2); err != nil {
		t.Fatal(err)
	}
	// And the previously failing data-only message now decodes.
	if recs, err := c.Decode(msg); err != nil || len(recs) != 1 {
		t.Fatalf("retry after refresh: %v (%d records)", err, len(recs))
	}
}

func TestTemplatesArePerDomain(t *testing.T) {
	e1 := &Exporter{DomainID: 1}
	c := NewCollector()
	if _, err := c.Decode(e1.Encode(nil, 0, sampleRecords()[:1])); err != nil {
		t.Fatal(err)
	}
	// Same template ID in another domain is unknown.
	e2 := &Exporter{DomainID: 2}
	e2.sentTmpl = true
	if _, err := c.Decode(e2.Encode(nil, 0, sampleRecords()[:1])); !errors.Is(err, ErrUnknownTemplate) {
		t.Fatalf("cross-domain template leak: %v", err)
	}
}

func TestSequenceNumbers(t *testing.T) {
	e := &Exporter{DomainID: 7}
	m1 := e.Encode(nil, 0, sampleRecords())
	m2 := e.Encode(nil, 0, sampleRecords()[:1])
	s1 := binary.BigEndian.Uint32(m1[8:12])
	s2 := binary.BigEndian.Uint32(m2[8:12])
	if s1 != 0 || s2 != 2 {
		t.Errorf("sequence numbers = %d, %d; want 0, 2 (data records exported)", s1, s2)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	c := NewCollector()
	if _, err := c.Decode([]byte{1, 2}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	e := &Exporter{DomainID: 7}
	msg := e.Encode(nil, 0, sampleRecords()[:1])
	bad := append([]byte(nil), msg...)
	bad[0], bad[1] = 0, 9
	if _, err := c.Decode(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version: %v", err)
	}
	// Truncated mid-set.
	if _, err := c.Decode(msg[:20]); err == nil {
		t.Error("truncated message accepted")
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	c := NewCollector()
	f := func(data []byte) bool {
		_, _ = c.Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestEnterpriseFieldsSkipped(t *testing.T) {
	// Hand-craft a template with an enterprise field and ensure records
	// still decode (element skipped by length).
	var buf []byte
	buf = binary.BigEndian.AppendUint16(buf, version10)
	buf = append(buf, 0, 0)
	buf = binary.BigEndian.AppendUint32(buf, 0) // export time
	buf = binary.BigEndian.AppendUint32(buf, 0) // seq
	buf = binary.BigEndian.AppendUint32(buf, 9) // domain
	// Template set: id 300, 2 fields: enterprise(0x8000|99, len2, PEN) + srcPort.
	set := []byte{}
	set = binary.BigEndian.AppendUint16(set, 300)
	set = binary.BigEndian.AppendUint16(set, 2)
	set = binary.BigEndian.AppendUint16(set, 0x8000|99)
	set = binary.BigEndian.AppendUint16(set, 2)
	set = binary.BigEndian.AppendUint32(set, 4242) // PEN
	set = binary.BigEndian.AppendUint16(set, IESrcPort)
	set = binary.BigEndian.AppendUint16(set, 2)
	buf = binary.BigEndian.AppendUint16(buf, templateSetID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(set)+4))
	buf = append(buf, set...)
	// Data set id 300: one record: [2B enterprise][2B srcPort].
	data := []byte{0xAA, 0xBB, 0x00, 0x7B} // srcPort 123
	buf = binary.BigEndian.AppendUint16(buf, 300)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(data)+4))
	buf = append(buf, data...)
	binary.BigEndian.PutUint16(buf[2:4], uint16(len(buf)))

	recs, err := NewCollector().Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].SrcPort != 123 {
		t.Fatalf("records = %+v", recs)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	e := &Exporter{DomainID: 7}
	c := NewCollector()
	recs := sampleRecords()
	// Prime the template.
	if _, err := c.Decode(e.Encode(nil, 0, recs)); err != nil {
		b.Fatal(err)
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = e.Encode(buf[:0], uint32(i), recs)
		if _, err := c.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
