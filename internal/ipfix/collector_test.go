package ipfix

import (
	"context"
	"encoding/binary"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

func TestNetflowConversionRoundTrip(t *testing.T) {
	nr := netflow.Record{
		Timestamp: 1_627_000_000,
		SrcIP:     netip.MustParseAddr("192.0.2.1"),
		DstIP:     netip.MustParseAddr("198.51.100.7"),
		SrcPort:   123, DstPort: 40000,
		Protocol: 17, TCPFlags: 0x12, Fragment: true,
		SrcMAC:  [6]byte{2, 0, 0, 0, 0, 1},
		DstMAC:  [6]byte{2, 0, 0, 0, 0, 2},
		Packets: 2048, Bytes: 958464, SamplingRate: 2048,
	}
	back := ToNetflow(&[]Record{FromNetflow(&nr)}[0])
	if back != nr {
		t.Fatalf("round trip:\n got  %+v\n want %+v", back, nr)
	}
}

func TestUDPCollectorEndToEnd(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []netflow.Record
	victim := netip.MustParseAddr("198.51.100.7")
	uc := &UDPCollector{
		Label: func(ip netip.Addr, at int64) bool { return ip == victim },
		Emit: func(r *netflow.Record) {
			mu.Lock()
			got = append(got, *r)
			mu.Unlock()
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- uc.Listen(ctx, pc) }()

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	e := &Exporter{DomainID: 3}
	if _, err := conn.Write(e.Encode(nil, 0, sampleRecords())); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d records", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if !got[0].Blackholed {
		t.Error("victim record not labeled via the registry hook")
	}
	if got[1].Blackholed {
		t.Error("non-victim record labeled")
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestHandleGarbage(t *testing.T) {
	uc := &UDPCollector{}
	uc.Handle([]byte{1, 2, 3}) // shorter than a message header
	if uc.Truncated.Load() != 1 {
		t.Error("truncated message not counted")
	}
	bad := make([]byte, headerLen)
	bad[1] = 9 // version 9 is not IPFIX
	binary.BigEndian.PutUint16(bad[2:4], headerLen)
	uc.Handle(bad)
	if uc.DecodeErrs.Load() != 1 {
		t.Error("malformed message not counted")
	}
}

// TestHandleBatchMatchesEmit: the batched handoff must deliver exactly the
// records (and stats) of the legacy per-record Emit path, including across
// mid-message flushes and a trailing partial batch.
func TestHandleBatchMatchesEmit(t *testing.T) {
	e := &Exporter{DomainID: 7}
	var payloads [][]byte
	payloads = append(payloads, e.Encode(nil, 1000, sampleRecords())) // carries template
	for i := 0; i < 8; i++ {
		recs := sampleRecords()
		for j := range recs {
			recs[j].SrcPort = uint16(i*10 + j)
		}
		payloads = append(payloads, e.Encode(nil, uint32(1001+i), recs))
	}

	var want []netflow.Record
	legacy := &UDPCollector{Emit: func(r *netflow.Record) { want = append(want, *r) }}
	for _, p := range payloads {
		legacy.Handle(p)
	}

	for _, size := range []int{1, 3, 256} {
		var got []netflow.Record
		batched := &UDPCollector{
			BatchSize: size,
			EmitBatch: func(recs []netflow.Record) { got = append(got, recs...) },
		}
		for _, p := range payloads {
			batched.Handle(p)
		}
		batched.Flush()
		if len(got) != len(want) {
			t.Fatalf("size %d: %d records, want %d", size, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("size %d: record %d = %+v, want %+v", size, i, got[i], want[i])
			}
		}
		if r, w := batched.Records.Load(), legacy.Records.Load(); r != w {
			t.Errorf("size %d: Records = %d, want %d", size, r, w)
		}
		if m, w := batched.Messages.Load(), legacy.Messages.Load(); m != w {
			t.Errorf("size %d: Messages = %d, want %d", size, m, w)
		}
	}
}
