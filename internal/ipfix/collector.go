package ipfix

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/netip"
	"os"
	"sync/atomic"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// DefaultBatchSize mirrors sflow.DefaultBatchSize: the record batch
// delivered downstream per EmitBatch call.
const DefaultBatchSize = 256

// DefaultFlushInterval bounds how long a partial batch may wait while the
// message stream is idle.
const DefaultFlushInterval = 50 * time.Millisecond

// UDPCollector receives IPFIX messages over UDP, converts flow records to
// netflow.Records, labels them against the blackhole registry and hands
// them downstream — the IPFIX twin of sflow.Collector.
type UDPCollector struct {
	// Label classifies destination IPs at a timestamp (bgp.Registry.Covered).
	Label func(ip netip.Addr, at int64) bool
	// EmitBatch receives converted records in batches of up to BatchSize.
	// The slice is reused after the call returns: receivers must consume or
	// copy it synchronously. Preferred over Emit on the hot path.
	EmitBatch func([]netflow.Record)
	// Emit receives each converted record when EmitBatch is nil.
	Emit func(*netflow.Record)
	// BatchSize caps the EmitBatch batch; 0 means DefaultBatchSize.
	BatchSize int
	// FlushInterval bounds partial-batch latency in Listen; 0 means
	// DefaultFlushInterval.
	FlushInterval time.Duration
	Log           *slog.Logger

	Messages   atomic.Uint64
	Records    atomic.Uint64
	Truncated  atomic.Uint64 // messages rejected as truncated
	DecodeErrs atomic.Uint64 // messages malformed beyond truncation
	Blackholed atomic.Uint64
	Panics     atomic.Uint64 // message handlers that panicked (recovered)

	collector *Collector
	// recs is the decode scratch recycled across messages; batch
	// accumulates converted records until BatchSize. Handle and Flush must
	// be called from one goroutine at a time (Listen is that goroutine).
	recs  []Record
	batch []netflow.Record
}

func (u *UDPCollector) batchSize() int {
	if u.BatchSize > 0 {
		return u.BatchSize
	}
	return DefaultBatchSize
}

// Listen receives messages on conn until the context is canceled. While a
// partial batch is pending, reads run under FlushInterval deadlines so an
// idle stream cannot strand records in the collector.
func (u *UDPCollector) Listen(ctx context.Context, conn net.PacketConn) error {
	if u.collector == nil {
		u.collector = NewCollector()
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		conn.Close()
	}()

	flushEvery := u.FlushInterval
	if flushEvery <= 0 {
		flushEvery = DefaultFlushInterval
	}
	buf := make([]byte, 65536)
	armed := false // a read deadline is set iff a partial batch is pending
	for {
		if pending := len(u.batch) > 0; pending != armed {
			armed = pending
			var deadline time.Time
			if pending {
				deadline = time.Now().Add(flushEvery)
			}
			_ = conn.SetReadDeadline(deadline)
		} else if armed {
			_ = conn.SetReadDeadline(time.Now().Add(flushEvery))
		}
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				u.flushBatch()
				continue
			}
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				u.flushBatch()
				return nil
			}
			return fmt.Errorf("ipfix: read: %w", err)
		}
		u.safeHandle(buf[:n])
	}
}

// safeHandle isolates a panic in the message path to the one message, like
// sflow.Collector: count it, drop the possibly half-converted pending
// batch, keep receiving.
func (u *UDPCollector) safeHandle(data []byte) {
	defer func() {
		if r := recover(); r != nil {
			u.Panics.Add(1)
			u.batch = u.batch[:0]
			if u.Log != nil {
				u.Log.Error("ipfix message handler panicked", "panic", r)
			}
		}
	}()
	u.Handle(data)
}

// Handle processes one message payload. Not safe for concurrent calls with
// itself or Flush.
func (u *UDPCollector) Handle(data []byte) {
	if u.collector == nil {
		u.collector = NewCollector()
	}
	recs, err := u.collector.DecodeAppend(u.recs[:0], data)
	u.recs = recs
	if err != nil && !errors.Is(err, ErrUnknownTemplate) {
		if errors.Is(err, ErrTruncated) {
			u.Truncated.Add(1)
		} else {
			u.DecodeErrs.Add(1)
		}
		if u.Log != nil {
			u.Log.Debug("ipfix decode failed", "err", err)
		}
		return
	}
	u.Messages.Add(1)
	var blackholed uint64
	if u.EmitBatch == nil {
		// Legacy per-record path.
		for i := range recs {
			nr := ToNetflow(&recs[i])
			if u.Label != nil && u.Label(nr.DstIP, nr.Timestamp) {
				nr.Blackholed = true
				blackholed++
			}
			if u.Emit != nil {
				u.Emit(&nr)
			}
		}
	} else {
		size := u.batchSize()
		for i := range recs {
			// Convert straight into the batch slot: no per-record copies.
			if len(u.batch) < cap(u.batch) {
				u.batch = u.batch[:len(u.batch)+1]
			} else {
				u.batch = append(u.batch, netflow.Record{})
			}
			slot := &u.batch[len(u.batch)-1]
			*slot = ToNetflow(&recs[i])
			if u.Label != nil && u.Label(slot.DstIP, slot.Timestamp) {
				slot.Blackholed = true
				blackholed++
			}
			if len(u.batch) >= size {
				u.flushBatch()
			}
		}
	}
	u.Records.Add(uint64(len(recs)))
	if blackholed > 0 {
		u.Blackholed.Add(blackholed)
	}
}

// Flush delivers a pending partial batch downstream.
func (u *UDPCollector) Flush() { u.flushBatch() }

func (u *UDPCollector) flushBatch() {
	if len(u.batch) == 0 || u.EmitBatch == nil {
		return
	}
	u.EmitBatch(u.batch)
	u.batch = u.batch[:0]
}

// ToNetflow converts an IPFIX record into the pipeline's flow record.
func ToNetflow(r *Record) netflow.Record {
	return netflow.Record{
		Timestamp:    int64(r.StartSeconds),
		SrcIP:        r.SrcIP,
		DstIP:        r.DstIP,
		SrcPort:      r.SrcPort,
		DstPort:      r.DstPort,
		Protocol:     r.Protocol,
		TCPFlags:     r.TCPFlags,
		Fragment:     r.Fragment,
		SrcMAC:       r.SrcMAC,
		DstMAC:       r.DstMAC,
		Packets:      r.Packets,
		Bytes:        r.Bytes,
		SamplingRate: r.SamplingRate,
	}
}

// FromNetflow converts a pipeline record into an IPFIX record for export.
func FromNetflow(r *netflow.Record) Record {
	return Record{
		StartSeconds: uint32(r.Timestamp),
		SrcIP:        r.SrcIP,
		DstIP:        r.DstIP,
		SrcPort:      r.SrcPort,
		DstPort:      r.DstPort,
		Protocol:     r.Protocol,
		TCPFlags:     r.TCPFlags,
		Fragment:     r.Fragment,
		SrcMAC:       r.SrcMAC,
		DstMAC:       r.DstMAC,
		Packets:      r.Packets,
		Bytes:        r.Bytes,
		SamplingRate: r.SamplingRate,
	}
}
