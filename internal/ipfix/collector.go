package ipfix

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/netip"
	"sync/atomic"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// UDPCollector receives IPFIX messages over UDP, converts flow records to
// netflow.Records, labels them against the blackhole registry and emits
// them — the IPFIX twin of sflow.Collector.
type UDPCollector struct {
	// Label classifies destination IPs at a timestamp (bgp.Registry.Covered).
	Label func(ip netip.Addr, at int64) bool
	// Emit receives each converted record.
	Emit func(*netflow.Record)
	Log  *slog.Logger

	Messages   atomic.Uint64
	Records    atomic.Uint64
	Truncated  atomic.Uint64 // messages rejected as truncated
	DecodeErrs atomic.Uint64 // messages malformed beyond truncation
	Blackholed atomic.Uint64

	collector *Collector
}

// Listen receives messages on conn until the context is canceled.
func (u *UDPCollector) Listen(ctx context.Context, conn net.PacketConn) error {
	if u.collector == nil {
		u.collector = NewCollector()
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		conn.Close()
	}()

	buf := make([]byte, 65536)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("ipfix: read: %w", err)
		}
		u.Handle(buf[:n])
	}
}

// Handle processes one message payload.
func (u *UDPCollector) Handle(data []byte) {
	if u.collector == nil {
		u.collector = NewCollector()
	}
	recs, err := u.collector.Decode(data)
	if err != nil && !errors.Is(err, ErrUnknownTemplate) {
		if errors.Is(err, ErrTruncated) {
			u.Truncated.Add(1)
		} else {
			u.DecodeErrs.Add(1)
		}
		if u.Log != nil {
			u.Log.Debug("ipfix decode failed", "err", err)
		}
		return
	}
	u.Messages.Add(1)
	for i := range recs {
		nr := ToNetflow(&recs[i])
		if u.Label != nil && u.Label(nr.DstIP, nr.Timestamp) {
			nr.Blackholed = true
			u.Blackholed.Add(1)
		}
		u.Records.Add(1)
		if u.Emit != nil {
			u.Emit(&nr)
		}
	}
}

// ToNetflow converts an IPFIX record into the pipeline's flow record.
func ToNetflow(r *Record) netflow.Record {
	return netflow.Record{
		Timestamp:    int64(r.StartSeconds),
		SrcIP:        r.SrcIP,
		DstIP:        r.DstIP,
		SrcPort:      r.SrcPort,
		DstPort:      r.DstPort,
		Protocol:     r.Protocol,
		TCPFlags:     r.TCPFlags,
		Fragment:     r.Fragment,
		SrcMAC:       r.SrcMAC,
		DstMAC:       r.DstMAC,
		Packets:      r.Packets,
		Bytes:        r.Bytes,
		SamplingRate: r.SamplingRate,
	}
}

// FromNetflow converts a pipeline record into an IPFIX record for export.
func FromNetflow(r *netflow.Record) Record {
	return Record{
		StartSeconds: uint32(r.Timestamp),
		SrcIP:        r.SrcIP,
		DstIP:        r.DstIP,
		SrcPort:      r.SrcPort,
		DstPort:      r.DstPort,
		Protocol:     r.Protocol,
		TCPFlags:     r.TCPFlags,
		Fragment:     r.Fragment,
		SrcMAC:       r.SrcMAC,
		DstMAC:       r.DstMAC,
		Packets:      r.Packets,
		Bytes:        r.Bytes,
		SamplingRate: r.SamplingRate,
	}
}
