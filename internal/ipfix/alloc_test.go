package ipfix

import (
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// Allocation budgets for the IPFIX ingest hot path: DecodeAppend into warm
// scratch and the batched Handle loop must be allocation-free at steady
// state (data-only messages; template learning allocates once per template,
// which is fine).
func TestDecodeAppendAllocs(t *testing.T) {
	e := &Exporter{DomainID: 7}
	c := NewCollector()
	first := e.Encode(nil, 1000, sampleRecords())
	if _, err := c.Decode(first); err != nil { // learn the template
		t.Fatal(err)
	}
	msg := e.Encode(nil, 1001, sampleRecords()) // data-only message
	dst := make([]Record, 0, 8)
	avg := testing.AllocsPerRun(200, func() {
		out, err := c.DecodeAppend(dst[:0], msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 2 {
			t.Fatalf("records = %d, want 2", len(out))
		}
	})
	if avg != 0 {
		t.Errorf("DecodeAppend allocs/run = %v, budget 0", avg)
	}
}

func TestHandleBatchAllocs(t *testing.T) {
	e := &Exporter{DomainID: 7}
	var delivered int
	u := &UDPCollector{
		EmitBatch: func(recs []netflow.Record) { delivered += len(recs) },
	}
	first := e.Encode(nil, 1000, sampleRecords())
	u.Handle(first) // learn template, allocate collector + scratch
	msg := e.Encode(nil, 1001, sampleRecords())
	for i := 0; i < 200; i++ { // warm batch capacity
		u.Handle(msg)
	}
	u.Flush()
	avg := testing.AllocsPerRun(500, func() { u.Handle(msg) })
	if avg != 0 {
		t.Errorf("Handle allocs/run = %v, budget 0", avg)
	}
	u.Flush()
	if delivered == 0 {
		t.Fatal("no records delivered")
	}
}

func BenchmarkDecodeAppend(b *testing.B) {
	e := &Exporter{DomainID: 7}
	c := NewCollector()
	if _, err := c.Decode(e.Encode(nil, 1000, sampleRecords())); err != nil {
		b.Fatal(err)
	}
	msg := e.Encode(nil, 1001, sampleRecords())
	dst := make([]Record, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := c.DecodeAppend(dst[:0], msg)
		if err != nil {
			b.Fatal(err)
		}
		dst = out[:0]
	}
}

// BenchmarkDecodeFresh is the pre-PR allocating path kept for the
// old-vs-new comparison scripts/bench.sh records into BENCH_PR3.json.
func BenchmarkDecodeFresh(b *testing.B) {
	e := &Exporter{DomainID: 7}
	c := NewCollector()
	if _, err := c.Decode(e.Encode(nil, 1000, sampleRecords())); err != nil {
		b.Fatal(err)
	}
	msg := e.Encode(nil, 1001, sampleRecords())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(msg); err != nil {
			b.Fatal(err)
		}
	}
}
