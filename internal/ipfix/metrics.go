package ipfix

import "github.com/ixp-scrubber/ixpscrubber/internal/obs"

// RegisterMetrics exposes the UDP collector's counters under the shared
// ixps_collector_* families, labeled proto="ipfix". Values are read from
// the collector's own atomics at scrape time — zero hot-path cost.
func (u *UDPCollector) RegisterMetrics(r *obs.Registry) {
	const proto = "ipfix"
	u64 := func(a interface{ Load() uint64 }) func() float64 {
		return func() float64 { return float64(a.Load()) }
	}
	r.CounterVec("ixps_collector_datagrams_total",
		"Flow export datagrams/messages received and decoded.", "proto").
		WithFunc(u64(&u.Messages), proto)
	r.CounterVec("ixps_collector_truncated_total",
		"Datagrams rejected as truncated.", "proto").
		WithFunc(u64(&u.Truncated), proto)
	r.CounterVec("ixps_collector_malformed_total",
		"Datagrams or samples rejected as malformed (beyond truncation).", "proto").
		WithFunc(u64(&u.DecodeErrs), proto)
	r.CounterVec("ixps_collector_records_total",
		"Flow records decoded and emitted downstream.", "proto").
		WithFunc(u64(&u.Records), proto)
	r.CounterVec("ixps_collector_blackholed_total",
		"Records labeled blackholed against the BGP registry.", "proto").
		WithFunc(u64(&u.Blackholed), proto)
	r.CounterVec("ixps_collector_panics_total",
		"Recovered panics in the datagram handler (the pending batch is dropped).", "proto").
		WithFunc(u64(&u.Panics), proto)
}
