package ipfix

import (
	"encoding/binary"
	"testing"
)

// FuzzDecode drives the IPFIX message decoder over arbitrary bytes. The
// collector pre-learns the flow template, so fuzzed inputs that reference
// template 400 in domain 7 reach the data-set decoding path instead of
// stopping at ErrUnknownTemplate. Seeds cover a valid template+data
// message, truncations at the header, set, and record boundaries, and
// length-field mutations (the underflow class: set or message lengths
// smaller than what they frame).
func FuzzDecode(f *testing.F) {
	e := &Exporter{DomainID: 7}
	valid := e.Encode(nil, 0, sampleRecords())
	f.Add(valid)

	// Truncation corpus: the message header, the template set boundary,
	// one byte into the data set, and one byte short of the end.
	for _, n := range []int{0, 1, headerLen - 1, headerLen, headerLen + 3, headerLen + 4, len(valid) - 1} {
		if n >= 0 && n <= len(valid) {
			f.Add(append([]byte(nil), valid[:n]...))
		}
	}

	// Mutation corpus: understated and overstated message length, set
	// length underflow (< 4), zero-field template, enterprise-bit field,
	// and a data set for an unknown template.
	mutate := func(fn func(b []byte)) {
		b := append([]byte(nil), valid...)
		fn(b)
		f.Add(b)
	}
	mutate(func(b []byte) { binary.BigEndian.PutUint16(b[2:4], headerLen) })
	mutate(func(b []byte) { binary.BigEndian.PutUint16(b[2:4], 0xFFFF) })
	mutate(func(b []byte) { binary.BigEndian.PutUint16(b[headerLen+2:headerLen+4], 3) })
	mutate(func(b []byte) { binary.BigEndian.PutUint16(b[headerLen+4:headerLen+6], 0) })
	mutate(func(b []byte) { b[headerLen+8] |= 0x80 }) // enterprise bit on the first template field
	mutate(func(b []byte) {
		// Point the data set at a template nobody announced.
		off := headerLen + 4 + 4 + len(FlowTemplate)*4
		binary.BigEndian.PutUint16(b[off:off+2], 999)
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCollector()
		tmpl := &Exporter{DomainID: 7}
		if _, err := c.Decode(tmpl.Encode(nil, 0, nil)); err != nil {
			t.Fatalf("template preamble must decode: %v", err)
		}
		_, _ = c.Decode(data) // must never panic
	})
}
