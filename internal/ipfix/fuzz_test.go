package ipfix

import "testing"

func FuzzDecode(f *testing.F) {
	e := &Exporter{DomainID: 7}
	f.Add(e.Encode(nil, 0, sampleRecords()))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCollector()
		_, _ = c.Decode(data) // must never panic
	})
}
