// Package ipfix implements the subset of IPFIX (RFC 7011) needed to export
// and collect sampled flow records: message encoding with template and data
// sets, dynamic template learning on the collector side, and conversion to
// the pipeline's netflow.Record. IXPs feed the scrubber with either sFlow
// (internal/sflow) or IPFIX, depending on the fabric.
package ipfix

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
)

// Sentinel errors.
var (
	ErrTruncated       = errors.New("ipfix: truncated message")
	ErrBadVersion      = errors.New("ipfix: unsupported version")
	ErrUnknownTemplate = errors.New("ipfix: data set references unknown template")
)

const (
	version10      = 10
	headerLen      = 16
	templateSetID  = 2
	minDataSetID   = 256
)

// IANA information element IDs used by the flow template.
const (
	IEOctetDeltaCount    = 1
	IEPacketDeltaCount   = 2
	IEProtocol           = 4
	IETCPControlBits     = 6
	IESrcPort            = 7
	IESrcIPv4            = 8
	IEDstPort            = 11
	IEDstIPv4            = 12
	IESamplingInterval   = 34
	IESourceMac          = 56
	IEDestinationMac     = 80
	IEFragmentFlags      = 197
	IEFlowStartSeconds   = 150
)

// FieldSpec is one template field.
type FieldSpec struct {
	ID     uint16
	Length uint16
}

// FlowTemplate is the template this package exports: every field of
// netflow.Record in fixed-length IANA elements.
var FlowTemplate = []FieldSpec{
	{IEFlowStartSeconds, 4},
	{IESrcIPv4, 4},
	{IEDstIPv4, 4},
	{IESrcPort, 2},
	{IEDstPort, 2},
	{IEProtocol, 1},
	{IETCPControlBits, 1},
	{IEFragmentFlags, 1},
	{IESourceMac, 6},
	{IEDestinationMac, 6},
	{IEPacketDeltaCount, 8},
	{IEOctetDeltaCount, 8},
	{IESamplingInterval, 4},
}

// FlowTemplateID is the template ID the exporter uses.
const FlowTemplateID = 400

// Record is the decoded flow view (a superset-free mirror of
// netflow.Record's wire-visible fields).
type Record struct {
	StartSeconds uint32
	SrcIP, DstIP netip.Addr
	SrcPort      uint16
	DstPort      uint16
	Protocol     uint8
	TCPFlags     uint8
	Fragment     bool
	SrcMAC       [6]byte
	DstMAC       [6]byte
	Packets      uint64
	Bytes        uint64
	SamplingRate uint32
}

// Exporter encodes IPFIX messages. It prepends the template set to the
// first message (and periodically if asked), as RFC 7011 exporters do over
// UDP.
type Exporter struct {
	DomainID uint32
	seq      uint32
	sentTmpl bool
}

// Encode builds one message carrying the records (plus the template set on
// the first call), appending to buf.
func (e *Exporter) Encode(buf []byte, exportTime uint32, records []Record) []byte {
	start := len(buf)
	buf = binary.BigEndian.AppendUint16(buf, version10)
	buf = append(buf, 0, 0) // length placeholder
	buf = binary.BigEndian.AppendUint32(buf, exportTime)
	buf = binary.BigEndian.AppendUint32(buf, e.seq)
	buf = binary.BigEndian.AppendUint32(buf, e.DomainID)
	e.seq += uint32(len(records))

	if !e.sentTmpl {
		e.sentTmpl = true
		buf = appendTemplateSet(buf)
	}
	if len(records) > 0 {
		setStart := len(buf)
		buf = binary.BigEndian.AppendUint16(buf, FlowTemplateID)
		buf = append(buf, 0, 0) // set length placeholder
		for i := range records {
			buf = appendRecord(buf, &records[i])
		}
		binary.BigEndian.PutUint16(buf[setStart+2:setStart+4], uint16(len(buf)-setStart))
	}
	binary.BigEndian.PutUint16(buf[start+2:start+4], uint16(len(buf)-start))
	return buf
}

// ResendTemplate forces the next message to carry the template set again
// (UDP template refresh).
func (e *Exporter) ResendTemplate() { e.sentTmpl = false }

func appendTemplateSet(buf []byte) []byte {
	setStart := len(buf)
	buf = binary.BigEndian.AppendUint16(buf, templateSetID)
	buf = append(buf, 0, 0)
	buf = binary.BigEndian.AppendUint16(buf, FlowTemplateID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(FlowTemplate)))
	for _, f := range FlowTemplate {
		buf = binary.BigEndian.AppendUint16(buf, f.ID)
		buf = binary.BigEndian.AppendUint16(buf, f.Length)
	}
	binary.BigEndian.PutUint16(buf[setStart+2:setStart+4], uint16(len(buf)-setStart))
	return buf
}

func appendRecord(buf []byte, r *Record) []byte {
	buf = binary.BigEndian.AppendUint32(buf, r.StartSeconds)
	src := r.SrcIP.Unmap().As4()
	dst := r.DstIP.Unmap().As4()
	buf = append(buf, src[:]...)
	buf = append(buf, dst[:]...)
	buf = binary.BigEndian.AppendUint16(buf, r.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, r.DstPort)
	frag := byte(0)
	if r.Fragment {
		frag = 1
	}
	buf = append(buf, r.Protocol, r.TCPFlags, frag)
	buf = append(buf, r.SrcMAC[:]...)
	buf = append(buf, r.DstMAC[:]...)
	buf = binary.BigEndian.AppendUint64(buf, r.Packets)
	buf = binary.BigEndian.AppendUint64(buf, r.Bytes)
	buf = binary.BigEndian.AppendUint32(buf, r.SamplingRate)
	return buf
}

// Collector decodes IPFIX messages, learning templates dynamically per
// observation domain. Safe for concurrent use.
type Collector struct {
	mu        sync.RWMutex
	templates map[uint64][]FieldSpec // (domain<<16|templateID) -> fields
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{templates: make(map[uint64][]FieldSpec)}
}

func tmplKey(domain uint32, id uint16) uint64 { return uint64(domain)<<16 | uint64(id) }

// Decode parses one message and returns its flow records. Data sets whose
// template is unknown yield ErrUnknownTemplate (the caller may retry after
// the exporter's periodic template refresh); template sets are learned as a
// side effect. It allocates a fresh result slice per call; hot paths reuse
// one through DecodeAppend.
func (c *Collector) Decode(data []byte) ([]Record, error) {
	return c.DecodeAppend(nil, data)
}

// DecodeAppend is Decode appending into dst, so a receive loop can recycle
// one record slice across messages (dst[:0] each call) and decode without
// allocating at steady state.
func (c *Collector) DecodeAppend(dst []Record, data []byte) ([]Record, error) {
	if len(data) < headerLen {
		return dst, ErrTruncated
	}
	if v := binary.BigEndian.Uint16(data[0:2]); v != version10 {
		return dst, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	msgLen := int(binary.BigEndian.Uint16(data[2:4]))
	if msgLen < headerLen || msgLen > len(data) {
		return dst, fmt.Errorf("ipfix: message length %d: %w", msgLen, ErrTruncated)
	}
	domain := binary.BigEndian.Uint32(data[12:16])
	body := data[headerLen:msgLen]

	out := dst
	var pendingErr error
	for len(body) > 0 {
		if len(body) < 4 {
			return out, ErrTruncated
		}
		setID := binary.BigEndian.Uint16(body[0:2])
		setLen := int(binary.BigEndian.Uint16(body[2:4]))
		if setLen < 4 || setLen > len(body) {
			return out, fmt.Errorf("ipfix: set length %d: %w", setLen, ErrTruncated)
		}
		content := body[4:setLen]
		switch {
		case setID == templateSetID:
			if err := c.learnTemplates(domain, content); err != nil {
				return out, err
			}
		case setID >= minDataSetID:
			recs, err := c.decodeDataSet(out, domain, setID, content)
			if err != nil {
				if errors.Is(err, ErrUnknownTemplate) {
					pendingErr = err // keep parsing further sets
				} else {
					return out, err
				}
			}
			out = recs
		default:
			// Options templates and reserved sets are skipped.
		}
		body = body[setLen:]
	}
	return out, pendingErr
}

func (c *Collector) learnTemplates(domain uint32, content []byte) error {
	for len(content) >= 4 {
		id := binary.BigEndian.Uint16(content[0:2])
		count := int(binary.BigEndian.Uint16(content[2:4]))
		content = content[4:]
		fields := make([]FieldSpec, 0, count)
		for i := 0; i < count; i++ {
			if len(content) < 4 {
				return ErrTruncated
			}
			fid := binary.BigEndian.Uint16(content[0:2])
			flen := binary.BigEndian.Uint16(content[2:4])
			content = content[4:]
			if fid&0x8000 != 0 {
				// Enterprise-specific element: skip the enterprise number.
				if len(content) < 4 {
					return ErrTruncated
				}
				content = content[4:]
				fid &= 0x7FFF
			}
			fields = append(fields, FieldSpec{ID: fid, Length: flen})
		}
		c.mu.Lock()
		c.templates[tmplKey(domain, id)] = fields
		c.mu.Unlock()
	}
	return nil
}

// decodeDataSet appends the set's records to dst and returns it; dst is
// returned unchanged on error.
func (c *Collector) decodeDataSet(dst []Record, domain uint32, setID uint16, content []byte) ([]Record, error) {
	c.mu.RLock()
	fields, ok := c.templates[tmplKey(domain, setID)]
	c.mu.RUnlock()
	if !ok {
		return dst, fmt.Errorf("%w: %d in domain %d", ErrUnknownTemplate, setID, domain)
	}
	recLen := 0
	for _, f := range fields {
		recLen += int(f.Length)
	}
	if recLen == 0 {
		return dst, fmt.Errorf("ipfix: template %d has zero-length records", setID)
	}
	for len(content) >= recLen {
		var r Record
		off := 0
		for _, f := range fields {
			v := content[off : off+int(f.Length)]
			decodeField(&r, f, v)
			off += int(f.Length)
		}
		dst = append(dst, r)
		content = content[recLen:]
	}
	return dst, nil
}

func decodeField(r *Record, f FieldSpec, v []byte) {
	switch f.ID {
	case IEFlowStartSeconds:
		r.StartSeconds = uintN(v)
	case IESrcIPv4:
		if len(v) == 4 {
			r.SrcIP = netip.AddrFrom4([4]byte(v))
		}
	case IEDstIPv4:
		if len(v) == 4 {
			r.DstIP = netip.AddrFrom4([4]byte(v))
		}
	case IESrcPort:
		r.SrcPort = uint16(uintN(v))
	case IEDstPort:
		r.DstPort = uint16(uintN(v))
	case IEProtocol:
		r.Protocol = uint8(uintN(v))
	case IETCPControlBits:
		r.TCPFlags = uint8(uintN(v))
	case IEFragmentFlags:
		r.Fragment = uintN(v) != 0
	case IESourceMac:
		if len(v) == 6 {
			copy(r.SrcMAC[:], v)
		}
	case IEDestinationMac:
		if len(v) == 6 {
			copy(r.DstMAC[:], v)
		}
	case IEPacketDeltaCount:
		r.Packets = uint64N(v)
	case IEOctetDeltaCount:
		r.Bytes = uint64N(v)
	case IESamplingInterval:
		r.SamplingRate = uintN(v)
	default:
		// Unknown elements are skipped by length.
	}
}

func uintN(v []byte) uint32 {
	var out uint32
	for _, b := range v {
		out = out<<8 | uint32(b)
	}
	return out
}

func uint64N(v []byte) uint64 {
	var out uint64
	for _, b := range v {
		out = out<<8 | uint64(b)
	}
	return out
}
