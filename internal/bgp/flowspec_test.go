package bgp

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func ntpDropRule() *Rule {
	return &Rule{Components: []Component{
		{Type: FSDstPrefix, Prefix: netip.MustParsePrefix("198.51.100.7/32")},
		{Type: FSIPProtocol, Matches: []NumericMatch{{EQ: true, Value: 17}}},
		{Type: FSSrcPort, Matches: []NumericMatch{{EQ: true, Value: 123}}},
	}}
}

func TestFlowSpecNLRIRoundTrip(t *testing.T) {
	rules := []*Rule{
		ntpDropRule(),
		{Components: []Component{
			{Type: FSDstPrefix, Prefix: netip.MustParsePrefix("203.0.113.0/24")},
			{Type: FSPacketLen, Matches: []NumericMatch{
				{GT: true, EQ: true, Value: 400},
				{AND: true, LT: true, Value: 500},
			}},
		}},
		{Components: []Component{
			{Type: FSFragment, Matches: []NumericMatch{{Value: FragIsFragment}}},
		}},
		{Components: []Component{
			{Type: FSDstPort, Matches: []NumericMatch{{EQ: true, Value: 70000 & 0xFFFF}, {EQ: true, Value: 80}}},
			{Type: FSPacketLen, Matches: []NumericMatch{{GT: true, Value: 100000}}}, // 4-byte value
		}},
	}
	for i, r := range rules {
		buf, err := r.AppendNLRI(nil)
		if err != nil {
			t.Fatalf("rule %d: %v", i, err)
		}
		got, n, err := ParseFlowSpecNLRI(buf)
		if err != nil {
			t.Fatalf("rule %d parse: %v", i, err)
		}
		if n != len(buf) {
			t.Errorf("rule %d: consumed %d of %d", i, n, len(buf))
		}
		if got.String() != r.String() {
			t.Errorf("rule %d round trip:\n in  %s\n out %s", i, r, got)
		}
	}
}

func TestFlowSpecMatching(t *testing.T) {
	r := ntpDropRule()
	hit := &FlowKey{
		SrcIP: netip.MustParseAddr("192.0.2.1"), DstIP: netip.MustParseAddr("198.51.100.7"),
		Protocol: 17, SrcPort: 123, DstPort: 4444, PacketLen: 468,
	}
	if !r.Matches(hit) {
		t.Fatal("NTP flow must match")
	}
	miss := *hit
	miss.DstIP = netip.MustParseAddr("198.51.100.8")
	if r.Matches(&miss) {
		t.Error("different destination must not match")
	}
	miss = *hit
	miss.SrcPort = 53
	if r.Matches(&miss) {
		t.Error("different source port must not match")
	}
	miss = *hit
	miss.Protocol = 6
	if r.Matches(&miss) {
		t.Error("TCP must not match UDP rule")
	}
}

func TestFlowSpecRangeMatch(t *testing.T) {
	// 400 <= len < 500 (the packet-size interval of the released rules).
	r := &Rule{Components: []Component{
		{Type: FSPacketLen, Matches: []NumericMatch{
			{GT: true, EQ: true, Value: 400},
			{AND: true, LT: true, Value: 500},
		}},
	}}
	for _, tc := range []struct {
		len  uint16
		want bool
	}{{399, false}, {400, true}, {468, true}, {499, true}, {500, false}} {
		k := &FlowKey{PacketLen: tc.len}
		if got := r.Matches(k); got != tc.want {
			t.Errorf("len %d: match = %v, want %v", tc.len, got, tc.want)
		}
	}
}

func TestFlowSpecOrSemantics(t *testing.T) {
	// dport = 80 OR 443.
	r := &Rule{Components: []Component{
		{Type: FSDstPort, Matches: []NumericMatch{
			{EQ: true, Value: 80},
			{EQ: true, Value: 443},
		}},
	}}
	if !r.Matches(&FlowKey{DstPort: 80}) || !r.Matches(&FlowKey{DstPort: 443}) {
		t.Error("OR list must match either value")
	}
	if r.Matches(&FlowKey{DstPort: 8080}) {
		t.Error("unlisted port matched")
	}
}

func TestFlowSpecFragment(t *testing.T) {
	r := &Rule{Components: []Component{
		{Type: FSFragment, Matches: []NumericMatch{{Value: FragIsFragment}}},
	}}
	if !r.Matches(&FlowKey{Fragment: true}) {
		t.Error("fragment must match")
	}
	if r.Matches(&FlowKey{Fragment: false}) {
		t.Error("non-fragment matched")
	}
}

func TestFlowSpecUnknownComponentFailsClosed(t *testing.T) {
	r := &Rule{Components: []Component{
		{Type: 99, Matches: []NumericMatch{{EQ: true, Value: 1}}},
	}}
	if r.Matches(&FlowKey{}) {
		t.Error("unknown component must fail closed")
	}
}

func TestFlowSpecParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _, _ = ParseFlowSpecNLRI(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowSpecString(t *testing.T) {
	s := ntpDropRule().String()
	for _, want := range []string{"dst 198.51.100.7/32", "proto =17", "sport =123"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestFlowSpecRejectsIPv6AndEmpty(t *testing.T) {
	r := &Rule{Components: []Component{
		{Type: FSDstPrefix, Prefix: netip.MustParsePrefix("2001:db8::/32")},
	}}
	if _, err := r.AppendNLRI(nil); err == nil {
		t.Error("IPv6 prefix accepted (RFC 8955 is IPv4-only; 8956 not implemented)")
	}
	r2 := &Rule{Components: []Component{{Type: FSDstPort}}}
	if _, err := r2.AppendNLRI(nil); err == nil {
		t.Error("component without matches accepted")
	}
}

func TestTrafficAction(t *testing.T) {
	if Drop.RateLimitBps != 0 {
		t.Error("Drop must be traffic-rate 0")
	}
	if RateLimit(1e6).RateLimitBps != 1e6 {
		t.Error("RateLimit value lost")
	}
}
