// Package bgp implements the subset of BGP-4 (RFC 4271) that the IXP
// Scrubber pipeline depends on: message encoding and decoding for OPEN,
// UPDATE, NOTIFICATION and KEEPALIVE, path attributes including standard
// communities (RFC 1997), detection of the BLACKHOLE community (RFC 7999),
// a time-aware blackhole registry, and a minimal speaker plus route server
// over TCP.
package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Message types (RFC 4271 §4.1).
const (
	TypeOpen         = 1
	TypeUpdate       = 2
	TypeNotification = 3
	TypeKeepalive    = 4
)

// Path attribute type codes used by the route server.
const (
	AttrOrigin      = 1
	AttrASPath      = 2
	AttrNextHop     = 3
	AttrCommunities = 8
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

// BlackholeCommunity is the well-known BLACKHOLE community 65535:666
// (RFC 7999). Routes carrying it request that traffic to the announced
// prefix be dropped.
const BlackholeCommunity Community = 0xFFFF029A

// NoExportCommunity is the well-known NO_EXPORT community, commonly attached
// alongside BLACKHOLE.
const NoExportCommunity Community = 0xFFFFFF01

// Community is an RFC 1997 standard community value (ASN:value packed into
// 32 bits).
type Community uint32

// NewCommunity packs asn:value.
func NewCommunity(asn, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// ASN returns the upper half of the community.
func (c Community) ASN() uint16 { return uint16(c >> 16) }

// Value returns the lower half of the community.
func (c Community) Value() uint16 { return uint16(c) }

// String formats the community in canonical asn:value notation.
func (c Community) String() string { return fmt.Sprintf("%d:%d", c.ASN(), c.Value()) }

// Sentinel errors returned by the codec.
var (
	ErrTruncated  = errors.New("bgp: truncated message")
	ErrBadMarker  = errors.New("bgp: bad marker")
	ErrBadLength  = errors.New("bgp: bad length")
	ErrBadType    = errors.New("bgp: unknown message type")
	ErrBadVersion = errors.New("bgp: unsupported version")
)

const (
	headerLen = 19
	maxMsgLen = 4096
)

// Open is a BGP OPEN message.
type Open struct {
	Version  uint8
	ASN      uint16
	HoldTime uint16
	RouterID [4]byte
}

// Update is a BGP UPDATE message carrying withdrawn routes, path attributes
// and announced NLRI. Only IPv4 unicast NLRI is modelled; this matches the
// paper's blackholing service, which operates on IPv4 prefixes.
type Update struct {
	Withdrawn   []netip.Prefix
	Origin      uint8
	ASPath      []uint16
	NextHop     netip.Addr
	Communities []Community
	NLRI        []netip.Prefix
}

// IsBlackhole reports whether the update carries the RFC 7999 BLACKHOLE
// community.
func (u *Update) IsBlackhole() bool {
	for _, c := range u.Communities {
		if c == BlackholeCommunity {
			return true
		}
	}
	return false
}

// Notification is a BGP NOTIFICATION message.
type Notification struct {
	Code, Subcode uint8
	Data          []byte
}

// Error renders the notification as an error string.
func (n *Notification) Error() string {
	return fmt.Sprintf("bgp: notification code=%d subcode=%d", n.Code, n.Subcode)
}

// Message is a decoded BGP message; exactly one of the pointer fields is
// non-nil except for keepalives, which have none.
type Message struct {
	Type         uint8
	Open         *Open
	Update       *Update
	Notification *Notification
}

func appendHeader(buf []byte, msgType uint8) []byte {
	for i := 0; i < 16; i++ {
		buf = append(buf, 0xff)
	}
	buf = append(buf, 0, 0) // length placeholder
	return append(buf, msgType)
}

func finishMessage(buf []byte) ([]byte, error) {
	if len(buf) > maxMsgLen {
		return nil, fmt.Errorf("%w: message is %d bytes, max %d", ErrBadLength, len(buf), maxMsgLen)
	}
	binary.BigEndian.PutUint16(buf[16:18], uint16(len(buf)))
	return buf, nil
}

// AppendOpen appends an encoded OPEN message to buf.
func AppendOpen(buf []byte, o *Open) ([]byte, error) {
	buf = appendHeader(buf, TypeOpen)
	v := o.Version
	if v == 0 {
		v = 4
	}
	buf = append(buf, v)
	buf = binary.BigEndian.AppendUint16(buf, o.ASN)
	buf = binary.BigEndian.AppendUint16(buf, o.HoldTime)
	buf = append(buf, o.RouterID[:]...)
	buf = append(buf, 0) // no optional parameters
	return finishMessage(buf)
}

// AppendKeepalive appends an encoded KEEPALIVE message to buf.
func AppendKeepalive(buf []byte) []byte {
	buf = appendHeader(buf, TypeKeepalive)
	out, _ := finishMessage(buf)
	return out
}

// AppendNotification appends an encoded NOTIFICATION message to buf.
func AppendNotification(buf []byte, n *Notification) ([]byte, error) {
	buf = appendHeader(buf, TypeNotification)
	buf = append(buf, n.Code, n.Subcode)
	buf = append(buf, n.Data...)
	return finishMessage(buf)
}

func appendPrefix(buf []byte, p netip.Prefix) ([]byte, error) {
	if !p.Addr().Is4() {
		return nil, fmt.Errorf("bgp: only IPv4 NLRI supported, got %v", p)
	}
	bits := p.Bits()
	buf = append(buf, uint8(bits))
	a := p.Addr().As4()
	buf = append(buf, a[:(bits+7)/8]...)
	return buf, nil
}

func parsePrefixes(data []byte) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for len(data) > 0 {
		bits := int(data[0])
		if bits > 32 {
			return nil, fmt.Errorf("bgp: prefix length %d: %w", bits, ErrBadLength)
		}
		n := (bits + 7) / 8
		if len(data) < 1+n {
			return nil, fmt.Errorf("bgp: prefix bytes: %w", ErrTruncated)
		}
		var a [4]byte
		copy(a[:], data[1:1+n])
		p := netip.PrefixFrom(netip.AddrFrom4(a), bits)
		if p.Masked() != p {
			// Tolerate host bits set beyond the mask; canonicalize.
			p = p.Masked()
		}
		out = append(out, p)
		data = data[1+n:]
	}
	return out, nil
}

// AppendUpdate appends an encoded UPDATE message to buf.
func AppendUpdate(buf []byte, u *Update) ([]byte, error) {
	buf = appendHeader(buf, TypeUpdate)

	// Withdrawn routes.
	wStart := len(buf)
	buf = append(buf, 0, 0)
	for _, p := range u.Withdrawn {
		var err error
		if buf, err = appendPrefix(buf, p); err != nil {
			return nil, err
		}
	}
	binary.BigEndian.PutUint16(buf[wStart:wStart+2], uint16(len(buf)-wStart-2))

	// Path attributes.
	aStart := len(buf)
	buf = append(buf, 0, 0)
	if len(u.NLRI) > 0 {
		buf = append(buf, flagTransitive, AttrOrigin, 1, u.Origin)

		asLen := 0
		if len(u.ASPath) > 0 {
			asLen = 2 + 2*len(u.ASPath)
		}
		buf = append(buf, flagTransitive, AttrASPath, uint8(asLen))
		if len(u.ASPath) > 0 {
			buf = append(buf, 2 /* AS_SEQUENCE */, uint8(len(u.ASPath)))
			for _, asn := range u.ASPath {
				buf = binary.BigEndian.AppendUint16(buf, asn)
			}
		}

		if !u.NextHop.Is4() {
			return nil, fmt.Errorf("bgp: next hop must be IPv4, got %v", u.NextHop)
		}
		nh := u.NextHop.As4()
		buf = append(buf, flagTransitive, AttrNextHop, 4)
		buf = append(buf, nh[:]...)

		if len(u.Communities) > 0 {
			buf = append(buf, flagOptional|flagTransitive, AttrCommunities, uint8(4*len(u.Communities)))
			for _, c := range u.Communities {
				buf = binary.BigEndian.AppendUint32(buf, uint32(c))
			}
		}
	}
	binary.BigEndian.PutUint16(buf[aStart:aStart+2], uint16(len(buf)-aStart-2))

	// NLRI.
	for _, p := range u.NLRI {
		var err error
		if buf, err = appendPrefix(buf, p); err != nil {
			return nil, err
		}
	}
	return finishMessage(buf)
}

// Decode parses one BGP message from data and returns it along with the
// number of bytes consumed. If data holds less than one full message it
// returns ErrTruncated (callers accumulate and retry).
func Decode(data []byte) (*Message, int, error) {
	if len(data) < headerLen {
		return nil, 0, ErrTruncated
	}
	for i := 0; i < 16; i++ {
		if data[i] != 0xff {
			return nil, 0, ErrBadMarker
		}
	}
	length := int(binary.BigEndian.Uint16(data[16:18]))
	if length < headerLen || length > maxMsgLen {
		return nil, 0, fmt.Errorf("%w: %d", ErrBadLength, length)
	}
	if len(data) < length {
		return nil, 0, ErrTruncated
	}
	msgType := data[18]
	body := data[headerLen:length]
	msg := &Message{Type: msgType}
	var err error
	switch msgType {
	case TypeOpen:
		msg.Open, err = parseOpen(body)
	case TypeUpdate:
		msg.Update, err = parseUpdate(body)
	case TypeNotification:
		if len(body) < 2 {
			return nil, 0, fmt.Errorf("notification: %w", ErrTruncated)
		}
		msg.Notification = &Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}
	case TypeKeepalive:
		if len(body) != 0 {
			return nil, 0, fmt.Errorf("keepalive with body: %w", ErrBadLength)
		}
	default:
		return nil, 0, fmt.Errorf("%w: %d", ErrBadType, msgType)
	}
	if err != nil {
		return nil, 0, err
	}
	return msg, length, nil
}

func parseOpen(body []byte) (*Open, error) {
	if len(body) < 10 {
		return nil, fmt.Errorf("open: %w", ErrTruncated)
	}
	o := &Open{
		Version:  body[0],
		ASN:      binary.BigEndian.Uint16(body[1:3]),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
	}
	copy(o.RouterID[:], body[5:9])
	if o.Version != 4 {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, o.Version)
	}
	optLen := int(body[9])
	if len(body) < 10+optLen {
		return nil, fmt.Errorf("open optional parameters: %w", ErrTruncated)
	}
	return o, nil
}

func parseUpdate(body []byte) (*Update, error) {
	u := &Update{}
	if len(body) < 2 {
		return nil, fmt.Errorf("update withdrawn length: %w", ErrTruncated)
	}
	wLen := int(binary.BigEndian.Uint16(body[0:2]))
	if len(body) < 2+wLen {
		return nil, fmt.Errorf("update withdrawn routes: %w", ErrTruncated)
	}
	var err error
	if u.Withdrawn, err = parsePrefixes(body[2 : 2+wLen]); err != nil {
		return nil, err
	}
	body = body[2+wLen:]

	if len(body) < 2 {
		return nil, fmt.Errorf("update attribute length: %w", ErrTruncated)
	}
	aLen := int(binary.BigEndian.Uint16(body[0:2]))
	if len(body) < 2+aLen {
		return nil, fmt.Errorf("update attributes: %w", ErrTruncated)
	}
	attrs := body[2 : 2+aLen]
	body = body[2+aLen:]

	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return nil, fmt.Errorf("attribute header: %w", ErrTruncated)
		}
		flags, code := attrs[0], attrs[1]
		var vLen, off int
		if flags&flagExtLen != 0 {
			if len(attrs) < 4 {
				return nil, fmt.Errorf("extended attribute header: %w", ErrTruncated)
			}
			vLen, off = int(binary.BigEndian.Uint16(attrs[2:4])), 4
		} else {
			vLen, off = int(attrs[2]), 3
		}
		if len(attrs) < off+vLen {
			return nil, fmt.Errorf("attribute value: %w", ErrTruncated)
		}
		val := attrs[off : off+vLen]
		switch code {
		case AttrOrigin:
			if vLen != 1 {
				return nil, fmt.Errorf("origin length %d: %w", vLen, ErrBadLength)
			}
			u.Origin = val[0]
		case AttrASPath:
			if err := parseASPath(val, u); err != nil {
				return nil, err
			}
		case AttrNextHop:
			if vLen != 4 {
				return nil, fmt.Errorf("next hop length %d: %w", vLen, ErrBadLength)
			}
			u.NextHop = netip.AddrFrom4([4]byte(val))
		case AttrCommunities:
			if vLen%4 != 0 {
				return nil, fmt.Errorf("communities length %d: %w", vLen, ErrBadLength)
			}
			for i := 0; i < vLen; i += 4 {
				u.Communities = append(u.Communities, Community(binary.BigEndian.Uint32(val[i:i+4])))
			}
		default:
			// Unrecognized attributes are skipped (transitive semantics are
			// irrelevant for a passive listener).
		}
		attrs = attrs[off+vLen:]
	}

	if u.NLRI, err = parsePrefixes(body); err != nil {
		return nil, err
	}
	return u, nil
}

func parseASPath(val []byte, u *Update) error {
	for len(val) > 0 {
		if len(val) < 2 {
			return fmt.Errorf("as path segment: %w", ErrTruncated)
		}
		segLen := int(val[1])
		if len(val) < 2+2*segLen {
			return fmt.Errorf("as path ASNs: %w", ErrTruncated)
		}
		for i := 0; i < segLen; i++ {
			u.ASPath = append(u.ASPath, binary.BigEndian.Uint16(val[2+2*i:4+2*i]))
		}
		val = val[2+2*segLen:]
	}
	return nil
}
