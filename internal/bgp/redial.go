package bgp

import (
	"context"
	"fmt"
	"log/slog"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
	"github.com/ixp-scrubber/ixpscrubber/internal/par"
)

// DefaultMaxAttempts bounds how many session (re)establishments a single
// Announce/Withdraw call will try before giving up.
const DefaultMaxAttempts = 8

// Persistent maintains a member's BGP session to the route server across
// failures. It tracks the member's desired blackhole state (the set of
// prefixes that should currently be announced) and, whenever the session has
// to be re-established, replays that state onto the fresh session — the
// member-side half of BGP's implicit contract that routes from a dead
// session are gone and must be re-announced.
//
// All methods serialize on an internal mutex; reconnects use capped
// exponential backoff with seeded jitter so a flapping route server is not
// hammered in lockstep by every member.
type Persistent struct {
	// Addr is the route server address, dialed on demand.
	Addr string
	// Local is this member's OPEN message.
	Local Open
	// Backoff paces reconnect attempts. Nil means NewBackoff(0) defaults.
	// The backoff's Sleep hook is what makes chaos tests instantaneous.
	Backoff *par.Backoff
	// MaxAttempts bounds session establishments per operation; 0 means
	// DefaultMaxAttempts.
	MaxAttempts int
	// Dialer overrides the session dial, e.g. to script failures in tests.
	// Nil means Dial.
	Dialer func(ctx context.Context, addr string, local Open) (*Conn, error)
	// OnSession, when non-nil, observes every established session.
	OnSession func(c *Conn)
	Log       *slog.Logger

	mu      sync.Mutex
	conn    *Conn
	desired map[netip.Prefix]netip.Addr // prefix -> next hop to re-announce
	everUp  bool

	reconnects atomic.Uint64 // sessions established beyond the first
	sendFails  atomic.Uint64 // sends that lost a session
	dialFails  atomic.Uint64 // dial/handshake attempts that failed
}

// Reconnects returns how many times the session was re-established after
// the initial connect.
func (p *Persistent) Reconnects() uint64 { return p.reconnects.Load() }

// SendFailures returns how many sends hit a dead session.
func (p *Persistent) SendFailures() uint64 { return p.sendFails.Load() }

// DialFailures returns how many session establishment attempts failed.
func (p *Persistent) DialFailures() uint64 { return p.dialFails.Load() }

// DesiredCount returns the number of prefixes this member currently wants
// announced.
func (p *Persistent) DesiredCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.desired)
}

// RegisterMetrics exposes the member session's failure counters, labeled
// with the member name.
func (p *Persistent) RegisterMetrics(r *obs.Registry, member string) {
	u64 := func(a *atomic.Uint64) func() float64 {
		return func() float64 { return float64(a.Load()) }
	}
	r.CounterVec("ixps_bgp_member_reconnects_total",
		"Member sessions re-established after a drop.", "member").
		WithFunc(u64(&p.reconnects), member)
	r.CounterVec("ixps_bgp_member_send_failures_total",
		"Member updates that hit a dead session and forced a reconnect.", "member").
		WithFunc(u64(&p.sendFails), member)
	r.CounterVec("ixps_bgp_member_dial_failures_total",
		"Member session establishment attempts that failed.", "member").
		WithFunc(u64(&p.dialFails), member)
	r.GaugeVec("ixps_bgp_member_desired_prefixes",
		"Prefixes the member currently wants blackholed.", "member").
		WithFunc(func() float64 { return float64(p.DesiredCount()) }, member)
}

func (p *Persistent) maxAttempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return DefaultMaxAttempts
}

func (p *Persistent) dial(ctx context.Context) (*Conn, error) {
	if p.Dialer != nil {
		return p.Dialer(ctx, p.Addr, p.Local)
	}
	return Dial(ctx, p.Addr, p.Local)
}

func (p *Persistent) backoff() *par.Backoff {
	if p.Backoff == nil {
		p.Backoff = par.NewBackoff(uint64(p.Local.ASN))
	}
	return p.Backoff
}

// Connect establishes the session eagerly. Operations connect on demand, so
// calling Connect is optional but surfaces configuration errors early.
func (p *Persistent) Connect(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := p.ensureLocked(ctx)
	return err
}

// ensureLocked guarantees a live session, dialing with backoff if needed.
// It returns fresh=true when it just established a session (and therefore
// already replayed the desired announcements onto it).
func (p *Persistent) ensureLocked(ctx context.Context) (fresh bool, err error) {
	if p.conn != nil {
		return false, nil
	}
	bo := p.backoff()
	for attempt := 0; attempt < p.maxAttempts(); attempt++ {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		c, err := p.dial(ctx)
		if err != nil {
			p.dialFails.Add(1)
			if p.Log != nil {
				p.Log.Warn("bgp member dial failed", "addr", p.Addr, "err", err)
			}
			if werr := bo.Wait(ctx); werr != nil {
				return false, werr
			}
			continue
		}
		if err := p.replay(c); err != nil {
			c.Close()
			p.sendFails.Add(1)
			if werr := bo.Wait(ctx); werr != nil {
				return false, werr
			}
			continue
		}
		bo.Reset()
		p.conn = c
		if p.everUp {
			p.reconnects.Add(1)
			if p.Log != nil {
				p.Log.Info("bgp member session re-established", "addr", p.Addr,
					"replayed", len(p.desired))
			}
		}
		p.everUp = true
		if p.OnSession != nil {
			p.OnSession(c)
		}
		return true, nil
	}
	return false, fmt.Errorf("bgp: %s unreachable after %d attempts", p.Addr, p.maxAttempts())
}

// replay re-announces the full desired blackhole state on a fresh session,
// in deterministic prefix order.
func (p *Persistent) replay(c *Conn) error {
	prefixes := make([]netip.Prefix, 0, len(p.desired))
	for pfx := range p.desired {
		prefixes = append(prefixes, pfx)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		a, b := prefixes[i], prefixes[j]
		if cmp := a.Addr().Compare(b.Addr()); cmp != 0 {
			return cmp < 0
		}
		return a.Bits() < b.Bits()
	})
	for _, pfx := range prefixes {
		if err := c.AnnounceBlackhole(pfx, p.desired[pfx]); err != nil {
			return err
		}
	}
	return nil
}

// teardownLocked discards the current session after a failure.
func (p *Persistent) teardownLocked() {
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
}

// Kill drops the current session without touching desired state — the
// member's hold timer firing, or a test scripting a session loss. The next
// operation reconnects and replays.
func (p *Persistent) Kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.teardownLocked()
}

// Close tears the session down for good.
func (p *Persistent) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.teardownLocked()
	return nil
}

// Announce records prefix as desired and announces it, re-establishing the
// session as needed. The prefix joins the desired state immediately: even
// if the call errors, a later successful reconnect replays it — transient
// failures never erase the member's intent.
func (p *Persistent) Announce(ctx context.Context, prefix netip.Prefix, nextHop netip.Addr) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.desired == nil {
		p.desired = make(map[netip.Prefix]netip.Addr)
	}
	p.desired[prefix] = nextHop
	for attempt := 0; attempt < p.maxAttempts(); attempt++ {
		fresh, err := p.ensureLocked(ctx)
		if err != nil {
			return err
		}
		if fresh {
			return nil // the replay announced it
		}
		if err := p.conn.AnnounceBlackhole(prefix, nextHop); err == nil {
			return nil
		}
		p.sendFails.Add(1)
		p.teardownLocked()
	}
	return fmt.Errorf("bgp: announcing %s: session kept failing", prefix)
}

// Withdraw removes prefix from the desired state and withdraws it. Unlike
// Announce, a fresh session still needs the explicit withdraw: the route
// server's registry remembers announcements from the previous session.
func (p *Persistent) Withdraw(ctx context.Context, prefix netip.Prefix) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.desired, prefix)
	for attempt := 0; attempt < p.maxAttempts(); attempt++ {
		if _, err := p.ensureLocked(ctx); err != nil {
			return err
		}
		if err := p.conn.WithdrawBlackhole(prefix); err == nil {
			return nil
		}
		p.sendFails.Add(1)
		p.teardownLocked()
	}
	return fmt.Errorf("bgp: withdrawing %s: session kept failing", prefix)
}
