package bgp

import (
	"context"
	"errors"
	"net"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func TestCommunityPacking(t *testing.T) {
	c := NewCommunity(65535, 666)
	if c != BlackholeCommunity {
		t.Fatalf("NewCommunity(65535, 666) = %v, want BlackholeCommunity", c)
	}
	if c.ASN() != 65535 || c.Value() != 666 {
		t.Errorf("ASN/Value = %d/%d", c.ASN(), c.Value())
	}
	if c.String() != "65535:666" {
		t.Errorf("String = %q", c.String())
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := Open{ASN: 64500, HoldTime: 90, RouterID: [4]byte{10, 0, 0, 1}}
	buf, err := AppendOpen(nil, &o)
	if err != nil {
		t.Fatal(err)
	}
	msg, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if msg.Type != TypeOpen || msg.Open == nil {
		t.Fatalf("msg = %+v", msg)
	}
	got := *msg.Open
	if got.ASN != o.ASN || got.HoldTime != o.HoldTime || got.RouterID != o.RouterID || got.Version != 4 {
		t.Errorf("open = %+v, want %+v", got, o)
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("203.0.113.0/24")},
		Origin:    0,
		ASPath:    []uint16{64500, 64501},
		NextHop:   netip.MustParseAddr("10.0.0.9"),
		Communities: []Community{
			BlackholeCommunity,
			NoExportCommunity,
			NewCommunity(64500, 1),
		},
		NLRI: []netip.Prefix{
			netip.MustParsePrefix("198.51.100.7/32"),
			netip.MustParsePrefix("198.51.100.0/25"),
		},
	}
	buf, err := AppendUpdate(nil, &u)
	if err != nil {
		t.Fatal(err)
	}
	msg, _, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != TypeUpdate || msg.Update == nil {
		t.Fatalf("msg = %+v", msg)
	}
	got := msg.Update
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != u.Withdrawn[0] {
		t.Errorf("withdrawn = %v", got.Withdrawn)
	}
	if len(got.NLRI) != 2 || got.NLRI[0] != u.NLRI[0] || got.NLRI[1] != u.NLRI[1] {
		t.Errorf("nlri = %v", got.NLRI)
	}
	if got.NextHop != u.NextHop {
		t.Errorf("next hop = %v", got.NextHop)
	}
	if len(got.ASPath) != 2 || got.ASPath[0] != 64500 || got.ASPath[1] != 64501 {
		t.Errorf("as path = %v", got.ASPath)
	}
	if len(got.Communities) != 3 {
		t.Fatalf("communities = %v", got.Communities)
	}
	if !got.IsBlackhole() {
		t.Error("IsBlackhole lost")
	}
}

func TestUpdateWithoutBlackholeCommunity(t *testing.T) {
	u := Update{
		NextHop: netip.MustParseAddr("10.0.0.9"),
		NLRI:    []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")},
	}
	buf, err := AppendUpdate(nil, &u)
	if err != nil {
		t.Fatal(err)
	}
	msg, _, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Update.IsBlackhole() {
		t.Error("plain announcement marked as blackhole")
	}
}

func TestKeepaliveAndNotification(t *testing.T) {
	buf := AppendKeepalive(nil)
	msg, _, err := Decode(buf)
	if err != nil || msg.Type != TypeKeepalive {
		t.Fatalf("keepalive: %v %+v", err, msg)
	}
	nbuf, err := AppendNotification(nil, &Notification{Code: 6, Subcode: 2, Data: []byte("bye")})
	if err != nil {
		t.Fatal(err)
	}
	msg, _, err = Decode(nbuf)
	if err != nil || msg.Notification == nil {
		t.Fatalf("notification: %v %+v", err, msg)
	}
	if msg.Notification.Code != 6 || string(msg.Notification.Data) != "bye" {
		t.Errorf("notification = %+v", msg.Notification)
	}
	if msg.Notification.Error() == "" {
		t.Error("Error() empty")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short input: %v", err)
	}
	bad := AppendKeepalive(nil)
	bad[0] = 0 // corrupt marker
	if _, _, err := Decode(bad); !errors.Is(err, ErrBadMarker) {
		t.Errorf("bad marker: %v", err)
	}
	bad = AppendKeepalive(nil)
	bad[16], bad[17] = 0, 5 // length below header size
	if _, _, err := Decode(bad); !errors.Is(err, ErrBadLength) {
		t.Errorf("bad length: %v", err)
	}
	bad = AppendKeepalive(nil)
	bad[18] = 99
	if _, _, err := Decode(bad); !errors.Is(err, ErrBadType) {
		t.Errorf("bad type: %v", err)
	}
}

// TestDecodeNeverPanics feeds arbitrary bytes (with a valid marker and
// plausible length so the parser goes deep) into Decode.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(body []byte) bool {
		if len(body) > maxMsgLen-headerLen {
			body = body[:maxMsgLen-headerLen]
		}
		buf := make([]byte, 0, headerLen+len(body))
		buf = appendHeader(buf, TypeUpdate)
		buf = append(buf, body...)
		out, err := finishMessage(buf)
		if err != nil {
			return true
		}
		_, _, _ = Decode(out)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryAnnounceWithdraw(t *testing.T) {
	r := NewRegistry()
	p := netip.MustParsePrefix("198.51.100.7/32")
	ip := netip.MustParseAddr("198.51.100.7")
	other := netip.MustParseAddr("198.51.100.8")

	r.Announce(p, 100)
	if !r.Covered(ip, 100) || !r.Covered(ip, 5000) {
		t.Error("active blackhole not covered")
	}
	if r.Covered(ip, 99) {
		t.Error("covered before announcement")
	}
	if r.Covered(other, 100) {
		t.Error("unrelated IP covered")
	}
	r.Withdraw(p, 200)
	if r.Covered(ip, 200) || r.Covered(ip, 300) {
		t.Error("covered after withdrawal")
	}
	if !r.Covered(ip, 150) {
		t.Error("historical window lost after withdrawal")
	}
	// Re-announce opens a second interval.
	r.Announce(p, 400)
	if !r.Covered(ip, 450) || r.Covered(ip, 300) {
		t.Error("second interval wrong")
	}
	if r.PrefixCount() != 1 || r.ActiveCount() != 1 {
		t.Errorf("counts = %d/%d", r.PrefixCount(), r.ActiveCount())
	}
}

func TestRegistryPrefixLengths(t *testing.T) {
	r := NewRegistry()
	r.Announce(netip.MustParsePrefix("203.0.113.0/24"), 10)
	if !r.Covered(netip.MustParseAddr("203.0.113.200"), 20) {
		t.Error("/24 blackhole must cover member IPs")
	}
	if r.Covered(netip.MustParseAddr("203.0.114.1"), 20) {
		t.Error("adjacent /24 covered")
	}
	// IPv6 address must not match IPv4 prefixes.
	if r.Covered(netip.MustParseAddr("2001:db8::1"), 20) {
		t.Error("v6 address matched v4 prefix")
	}
}

func TestRegistryIdempotentOps(t *testing.T) {
	r := NewRegistry()
	p := netip.MustParsePrefix("192.0.2.1/32")
	r.Withdraw(p, 50) // withdraw before announce: no-op
	r.Announce(p, 100)
	r.Announce(p, 120) // duplicate announce: no new interval
	r.Withdraw(p, 200)
	r.Withdraw(p, 210) // double withdraw: no-op
	if r.Covered(netip.MustParseAddr("192.0.2.1"), 250) {
		t.Error("covered after withdraw")
	}
	if got := r.ActiveAt(150); len(got) != 1 || got[0] != p {
		t.Errorf("ActiveAt = %v", got)
	}
	if got := r.ActiveAt(250); len(got) != 0 {
		t.Errorf("ActiveAt after withdraw = %v", got)
	}
}

func TestRegistryApplyUpdate(t *testing.T) {
	r := NewRegistry()
	p := netip.MustParsePrefix("198.51.100.7/32")
	bh := &Update{
		NextHop:     netip.MustParseAddr("10.0.0.1"),
		Communities: []Community{BlackholeCommunity},
		NLRI:        []netip.Prefix{p},
	}
	plain := &Update{
		NextHop: netip.MustParseAddr("10.0.0.1"),
		NLRI:    []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")},
	}
	r.ApplyUpdate(bh, 100)
	r.ApplyUpdate(plain, 100)
	if !r.Covered(netip.MustParseAddr("198.51.100.7"), 150) {
		t.Error("blackhole update not applied")
	}
	if r.Covered(netip.MustParseAddr("192.0.2.5"), 150) {
		t.Error("non-blackhole route must not enter the registry")
	}
	r.ApplyUpdate(&Update{Withdrawn: []netip.Prefix{p}}, 200)
	if r.Covered(netip.MustParseAddr("198.51.100.7"), 250) {
		t.Error("withdraw via update not applied")
	}
}

func TestRouteServerEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Now().Unix()
	srv := &RouteServer{
		ASN:      64999,
		RouterID: [4]byte{10, 0, 0, 254},
		Registry: NewRegistry(),
		Clock:    func() int64 { return clock },
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.Serve(ctx, ln) }()

	// Member A announces a blackhole, member B should receive it.
	dialCtx, dcancel := context.WithTimeout(ctx, 5*time.Second)
	defer dcancel()
	a, err := Dial(dialCtx, ln.Addr().String(), Open{ASN: 64501, HoldTime: 90, RouterID: [4]byte{10, 0, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(dialCtx, ln.Addr().String(), Open{ASN: 64502, HoldTime: 90, RouterID: [4]byte{10, 0, 0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.Peer().ASN != 64999 {
		t.Errorf("peer ASN = %d", a.Peer().ASN)
	}

	victim := netip.MustParsePrefix("198.51.100.7/32")
	if err := a.AnnounceBlackhole(victim, netip.MustParseAddr("10.0.0.1")); err != nil {
		t.Fatal(err)
	}

	// B receives the reflected update.
	type res struct {
		msg *Message
		err error
	}
	ch := make(chan res, 1)
	go func() {
		m, err := b.Read()
		ch <- res{m, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.msg.Type != TypeUpdate || !r.msg.Update.IsBlackhole() {
			t.Fatalf("reflected message = %+v", r.msg)
		}
		if r.msg.Update.NLRI[0] != victim {
			t.Errorf("reflected NLRI = %v", r.msg.Update.NLRI)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for reflected update")
	}

	// Registry labeled the prefix.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Registry.ActiveCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !srv.Registry.Covered(netip.MustParseAddr("198.51.100.7"), clock) {
		t.Error("registry did not record the blackhole")
	}

	// Withdraw propagates.
	if err := a.WithdrawBlackhole(victim); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for srv.Registry.ActiveCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Registry.ActiveCount() != 0 {
		t.Error("withdraw did not clear the registry")
	}

	cancel()
	if err := <-srvDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

func BenchmarkRegistryCovered(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 2500; i++ { // ~hourly average blackhole count at DE-CIX
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{198, 51, byte(i >> 8), byte(i)}), 32)
		r.Announce(p, 0)
	}
	ip := netip.MustParseAddr("203.0.113.77")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Covered(ip, 100)
	}
}

func BenchmarkUpdateDecode(b *testing.B) {
	u := Update{
		Origin:      0,
		ASPath:      []uint16{64500},
		NextHop:     netip.MustParseAddr("10.0.0.9"),
		Communities: []Community{BlackholeCommunity},
		NLRI:        []netip.Prefix{netip.MustParsePrefix("198.51.100.7/32")},
	}
	buf, err := AppendUpdate(nil, &u)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
