package bgp

import (
	"context"
	"errors"
	"net"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/par"
)

// startServer runs a RouteServer on a loopback listener and returns its
// address plus a shutdown func that waits for Serve to exit.
func startServer(t *testing.T) (*RouteServer, string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := &RouteServer{ASN: 65000, RouterID: [4]byte{10, 0, 0, 1}, Registry: NewRegistry()}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rs.Serve(ctx, ln) }()
	return rs, ln.Addr().String(), func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("serve: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("route server did not shut down")
		}
	}
}

func waitCovered(t *testing.T, reg *Registry, ip netip.Addr, want bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Covered(ip, time.Now().Unix()) == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("registry never reached Covered(%s)=%v", ip, want)
}

// TestPersistentReplaysDesiredStateAfterKill drops the member session and
// checks that the next operation re-establishes it and replays every
// desired announcement, so the registry converges to the desired state.
func TestPersistentReplaysDesiredStateAfterKill(t *testing.T) {
	rs, addr, stop := startServer(t)
	defer stop()

	p := &Persistent{
		Addr:    addr,
		Local:   Open{ASN: 65001, HoldTime: 90, RouterID: [4]byte{10, 0, 0, 2}},
		Backoff: &par.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Sleep: func(time.Duration) {}},
	}
	defer p.Close()
	ctx := context.Background()

	nh := netip.MustParseAddr("10.0.0.2")
	pfxA := netip.MustParsePrefix("203.0.113.7/32")
	pfxB := netip.MustParsePrefix("203.0.113.9/32")
	if err := p.Announce(ctx, pfxA, nh); err != nil {
		t.Fatal(err)
	}
	if err := p.Announce(ctx, pfxB, nh); err != nil {
		t.Fatal(err)
	}
	waitCovered(t, rs.Registry, pfxA.Addr(), true)
	waitCovered(t, rs.Registry, pfxB.Addr(), true)

	// Session drops; desired state survives. Withdraw of B must work on the
	// fresh session, and A must be re-announced by the replay.
	p.Kill()
	if err := p.Withdraw(ctx, pfxB); err != nil {
		t.Fatal(err)
	}
	waitCovered(t, rs.Registry, pfxB.Addr(), false)
	waitCovered(t, rs.Registry, pfxA.Addr(), true)
	if p.Reconnects() != 1 {
		t.Fatalf("Reconnects = %d, want 1", p.Reconnects())
	}
	if p.DesiredCount() != 1 {
		t.Fatalf("DesiredCount = %d, want 1", p.DesiredCount())
	}
}

// TestPersistentRetriesDialWithBackoff scripts dial failures and checks the
// bounded retry gives up with an error, then succeeds once dials recover.
func TestPersistentRetriesDialWithBackoff(t *testing.T) {
	_, addr, stop := startServer(t)
	defer stop()

	fails := 0
	var slept []time.Duration
	p := &Persistent{
		Addr:        addr,
		Local:       Open{ASN: 65002, HoldTime: 90, RouterID: [4]byte{10, 0, 0, 3}},
		MaxAttempts: 3,
		Backoff:     &par.Backoff{Base: time.Millisecond, Sleep: func(d time.Duration) { slept = append(slept, d) }},
		Dialer: func(ctx context.Context, addr string, local Open) (*Conn, error) {
			if fails > 0 {
				fails--
				return nil, errors.New("scripted dial failure")
			}
			return Dial(ctx, addr, local)
		},
	}
	defer p.Close()
	ctx := context.Background()
	nh := netip.MustParseAddr("10.0.0.3")
	pfx := netip.MustParsePrefix("198.51.100.1/32")

	fails = 99 // everything fails: the op must give up after MaxAttempts
	if err := p.Announce(ctx, pfx, nh); err == nil {
		t.Fatal("Announce succeeded with all dials failing")
	}
	if len(slept) != 3 {
		t.Fatalf("backoff slept %d times, want 3 (one per attempt)", len(slept))
	}
	if p.DialFailures() != 3 {
		t.Fatalf("DialFailures = %d, want 3", p.DialFailures())
	}

	fails = 2 // two failures, then recovery
	if err := p.Announce(ctx, pfx, nh); err != nil {
		t.Fatalf("Announce after recovery: %v", err)
	}
	if p.DialFailures() != 5 {
		t.Fatalf("DialFailures = %d, want 5", p.DialFailures())
	}
}

// TestPersistentHonorsContext ensures a canceled context aborts the retry
// loop instead of burning attempts.
func TestPersistentHonorsContext(t *testing.T) {
	p := &Persistent{
		Addr:    "127.0.0.1:1", // nothing listens here
		Local:   Open{ASN: 65003, HoldTime: 90, RouterID: [4]byte{10, 0, 0, 4}},
		Backoff: &par.Backoff{Base: time.Millisecond, Sleep: func(time.Duration) {}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.Announce(ctx, netip.MustParsePrefix("198.51.100.2/32"), netip.MustParseAddr("10.0.0.4"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRouteServerSurvivesSessionPanic injects a panicking registry clock and
// checks the server isolates the panic to the one session: other members
// keep working and the panic is counted.
func TestRouteServerSurvivesSessionPanic(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var boom atomic.Bool
	rs := &RouteServer{
		ASN: 65000, RouterID: [4]byte{10, 0, 0, 1}, Registry: NewRegistry(),
		Clock: func() int64 {
			if boom.CompareAndSwap(true, false) {
				panic("scripted clock failure")
			}
			return time.Now().Unix()
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rs.Serve(ctx, ln) }()
	defer func() {
		cancel()
		<-done
	}()
	addr := ln.Addr().String()

	victim, err := Dial(ctx, addr, Open{ASN: 65001, HoldTime: 90, RouterID: [4]byte{10, 0, 0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	survivor, err := Dial(ctx, addr, Open{ASN: 65002, HoldTime: 90, RouterID: [4]byte{10, 0, 0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()

	nh := netip.MustParseAddr("10.0.0.2")
	boom.Store(true)
	if err := victim.AnnounceBlackhole(netip.MustParsePrefix("203.0.113.1/32"), nh); err != nil {
		t.Fatal(err)
	}
	// Wait for the server to kill the victim's session (its conn closes),
	// so the scripted panic cannot leak onto the survivor's update instead.
	if _, err := victim.Read(); err == nil {
		t.Fatal("victim session survived the panic")
	}
	// The victim's session died from the panic; the survivor's keeps serving.
	if err := survivor.AnnounceBlackhole(netip.MustParsePrefix("203.0.113.2/32"), netip.MustParseAddr("10.0.0.3")); err != nil {
		t.Fatal(err)
	}
	waitCovered(t, rs.Registry, netip.MustParseAddr("203.0.113.2"), true)
	if rs.Registry.Covered(netip.MustParseAddr("203.0.113.1"), time.Now().Unix()) {
		t.Fatal("panicking update was applied")
	}
}
