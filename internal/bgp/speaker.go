package bgp

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/netip"
	"sync"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/par"
)

// Conn wraps a TCP connection carrying a BGP session. It handles the
// OPEN/KEEPALIVE handshake and message framing; higher layers exchange
// decoded Messages.
type Conn struct {
	conn    net.Conn
	r       *bufio.Reader
	wmu     sync.Mutex
	peer    *Open // the remote's OPEN, set after handshake
	local   Open
	scratch []byte
}

// NewConn wraps an established network connection. The caller must run
// Handshake before exchanging updates.
func NewConn(nc net.Conn, local Open) *Conn {
	return &Conn{conn: nc, r: bufio.NewReaderSize(nc, 1<<16), local: local}
}

// Peer returns the remote's OPEN message (nil before handshake).
func (c *Conn) Peer() *Open { return c.peer }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.conn.Close() }

// Handshake sends our OPEN, waits for the peer's OPEN, and exchanges the
// initial KEEPALIVEs (RFC 4271 FSM, collapsed for a point-to-point lab
// session).
func (c *Conn) Handshake() error {
	buf, err := AppendOpen(nil, &c.local)
	if err != nil {
		return fmt.Errorf("bgp: encoding open: %w", err)
	}
	if _, err := c.conn.Write(buf); err != nil {
		return fmt.Errorf("bgp: sending open: %w", err)
	}
	msg, err := c.Read()
	if err != nil {
		return fmt.Errorf("bgp: waiting for open: %w", err)
	}
	if msg.Type != TypeOpen {
		return fmt.Errorf("bgp: expected OPEN, got type %d", msg.Type)
	}
	c.peer = msg.Open
	if _, err := c.conn.Write(AppendKeepalive(nil)); err != nil {
		return fmt.Errorf("bgp: sending keepalive: %w", err)
	}
	msg, err = c.Read()
	if err != nil {
		return fmt.Errorf("bgp: waiting for keepalive: %w", err)
	}
	if msg.Type != TypeKeepalive {
		return fmt.Errorf("bgp: expected KEEPALIVE, got type %d", msg.Type)
	}
	return nil
}

// Read returns the next decoded message from the peer.
func (c *Conn) Read() (*Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, err
	}
	length := int(uint16(hdr[16])<<8 | uint16(hdr[17]))
	if length < headerLen || length > maxMsgLen {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, length)
	}
	if cap(c.scratch) < length {
		c.scratch = make([]byte, length)
	}
	buf := c.scratch[:length]
	copy(buf, hdr[:])
	if _, err := io.ReadFull(c.r, buf[headerLen:]); err != nil {
		return nil, fmt.Errorf("bgp: reading body: %w", err)
	}
	msg, _, err := Decode(buf)
	return msg, err
}

// SendUpdate encodes and writes an UPDATE.
func (c *Conn) SendUpdate(u *Update) error {
	buf, err := AppendUpdate(nil, u)
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.conn.Write(buf); err != nil {
		return fmt.Errorf("bgp: sending update: %w", err)
	}
	return nil
}

// SendRaw writes a pre-encoded BGP message (e.g. a FlowSpec update built
// with AppendFlowSpecUpdate, whose multiprotocol attributes the basic
// Update model does not carry).
func (c *Conn) SendRaw(msg []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.conn.Write(msg); err != nil {
		return fmt.Errorf("bgp: sending raw message: %w", err)
	}
	return nil
}

// ReadRaw returns the next message's raw bytes (header included) without
// interpreting the body beyond framing. The returned slice is only valid
// until the next Read/ReadRaw.
func (c *Conn) ReadRaw() ([]byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, err
	}
	length := int(uint16(hdr[16])<<8 | uint16(hdr[17]))
	if length < headerLen || length > maxMsgLen {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, length)
	}
	if cap(c.scratch) < length {
		c.scratch = make([]byte, length)
	}
	buf := c.scratch[:length]
	copy(buf, hdr[:])
	if _, err := io.ReadFull(c.r, buf[headerLen:]); err != nil {
		return nil, fmt.Errorf("bgp: reading body: %w", err)
	}
	return buf, nil
}

// SendKeepalive writes a KEEPALIVE.
func (c *Conn) SendKeepalive() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := c.conn.Write(AppendKeepalive(nil))
	return err
}

// RouteServer is a minimal IXP route server: it accepts BGP sessions from
// member networks, reflects every UPDATE to all other members, and feeds
// blackhole announcements into a Registry — the role the IXP's route server
// plays in Figure 2 of the paper.
type RouteServer struct {
	ASN      uint16
	RouterID [4]byte
	Registry *Registry
	Log      *slog.Logger
	// Clock returns the current unix time; overridable for tests and
	// simulation. Defaults to time.Now().Unix.
	Clock func() int64
	// Metrics instruments the session lifecycle and update stream; nil
	// disables instrumentation. Set via RegisterMetrics before Serve.
	Metrics *ServerMetrics
	// AcceptBackoff paces retries after transient Accept failures (e.g.
	// EMFILE under fd pressure) instead of tearing the server down. Nil
	// means par.NewBackoff(0) defaults. DefaultMaxAttempts consecutive
	// failures are treated as a dead listener.
	AcceptBackoff *par.Backoff

	ln      net.Listener
	mu      sync.Mutex
	peers   map[*Conn]struct{}
	conns   map[net.Conn]struct{}    // every accepted conn, incl. mid-handshake
	rib     map[netip.Prefix]*Update // currently-announced routes, replayed to new peers
	wg      sync.WaitGroup
	closing bool
}

// Serve accepts sessions on ln until the context is canceled or the
// listener fails. It always closes ln before returning.
func (s *RouteServer) Serve(ctx context.Context, ln net.Listener) error {
	if s.Registry == nil {
		s.Registry = NewRegistry()
	}
	if s.Clock == nil {
		s.Clock = func() int64 { return time.Now().Unix() }
	}
	if s.Log == nil {
		s.Log = slog.Default()
	}
	s.ln = ln
	s.peers = make(map[*Conn]struct{})
	s.conns = make(map[net.Conn]struct{})
	s.rib = make(map[netip.Prefix]*Update)

	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		s.mu.Lock()
		s.closing = true
		s.mu.Unlock()
		ln.Close()
	}()

	if s.AcceptBackoff == nil {
		s.AcceptBackoff = par.NewBackoff(uint64(s.ASN))
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			// A transient accept failure (fd exhaustion, aborted connection)
			// must not take the route server down with it: back off and keep
			// accepting. Only a closed listener or a persistent failure ends
			// the serve loop.
			if !closing && !errors.Is(err, net.ErrClosed) &&
				s.AcceptBackoff.Attempt() < DefaultMaxAttempts {
				s.Metrics.acceptRetried()
				s.Log.Warn("bgp accept failed, retrying", "err", err)
				if werr := s.AcceptBackoff.Wait(ctx); werr == nil {
					continue
				}
			}
			s.mu.Lock()
			closing = s.closing
			for nc := range s.conns {
				nc.Close()
			}
			s.mu.Unlock()
			s.wg.Wait()
			if closing || errors.Is(err, net.ErrClosed) || ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("bgp: accept: %w", err)
		}
		s.AcceptBackoff.Reset()
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(nc)
	}
}

func (s *RouteServer) serveConn(nc net.Conn) {
	defer s.wg.Done()
	// A panic while serving one member (malformed update tripping a decode
	// bug, a failing registry hook) must not crash the exchange's whole
	// route server: isolate it to this session.
	defer func() {
		if r := recover(); r != nil {
			s.Metrics.sessionPanicked()
			s.Log.Error("bgp session panicked", "peer", nc.RemoteAddr(), "panic", r)
			nc.Close()
		}
	}()
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
	}()
	conn := NewConn(nc, Open{ASN: s.ASN, HoldTime: 90, RouterID: s.RouterID})
	defer conn.Close()
	if err := conn.Handshake(); err != nil {
		s.Metrics.handshakeFailed()
		s.Log.Warn("bgp handshake failed", "peer", nc.RemoteAddr(), "err", err)
		return
	}
	// Registration and RIB replay happen under one critical section so a
	// route is delivered to a new peer exactly once: either its session was
	// registered before an update's peer snapshot (reflected) or the update
	// was in the RIB before the replay snapshot (replayed).
	s.mu.Lock()
	s.peers[conn] = struct{}{}
	replay := make([]*Update, 0, len(s.rib))
	for _, u := range s.rib {
		replay = append(replay, u)
	}
	s.mu.Unlock()
	s.Metrics.sessionUp()
	defer func() {
		s.Metrics.sessionDown()
		s.mu.Lock()
		delete(s.peers, conn)
		s.mu.Unlock()
	}()
	s.Log.Info("bgp session established", "peer", nc.RemoteAddr(), "asn", conn.Peer().ASN)
	for _, u := range replay {
		if err := conn.SendUpdate(u); err != nil {
			s.Log.Warn("bgp rib replay failed", "peer", nc.RemoteAddr(), "err", err)
			return
		}
	}

	for {
		msg, err := conn.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Log.Warn("bgp session ended", "peer", nc.RemoteAddr(), "err", err)
			}
			return
		}
		switch msg.Type {
		case TypeUpdate:
			s.Metrics.update(msg.Update)
			s.Registry.ApplyUpdate(msg.Update, s.Clock())
			s.reflect(conn, msg.Update)
		case TypeKeepalive:
			// Hold timer handling is out of scope for the lab server.
		case TypeNotification:
			s.Metrics.notification()
			s.Log.Warn("bgp notification", "peer", nc.RemoteAddr(), "code", msg.Notification.Code)
			return
		}
	}
}

// reflect stores the update in the RIB and forwards it to every session
// except the originator.
func (s *RouteServer) reflect(from *Conn, u *Update) {
	s.mu.Lock()
	for _, p := range u.Withdrawn {
		delete(s.rib, p.Masked())
	}
	for _, p := range u.NLRI {
		s.rib[p.Masked()] = u
	}
	peers := make([]*Conn, 0, len(s.peers))
	for p := range s.peers {
		if p != from {
			peers = append(peers, p)
		}
	}
	s.mu.Unlock()
	for _, p := range peers {
		if err := p.SendUpdate(u); err != nil {
			s.Metrics.reflectFailed()
			s.Log.Warn("bgp reflect failed", "err", err)
		}
	}
}

// Dial connects to a route server and completes the handshake.
func Dial(ctx context.Context, addr string, local Open) (*Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bgp: dial %s: %w", addr, err)
	}
	conn := NewConn(nc, local)
	if err := conn.Handshake(); err != nil {
		nc.Close()
		return nil, err
	}
	return conn, nil
}

// AnnounceBlackhole sends an UPDATE announcing prefix with the BLACKHOLE
// community attached, as a member router would to drop attack traffic.
func (c *Conn) AnnounceBlackhole(prefix netip.Prefix, nextHop netip.Addr) error {
	return c.SendUpdate(&Update{
		Origin:      0,
		ASPath:      []uint16{c.local.ASN},
		NextHop:     nextHop,
		Communities: []Community{BlackholeCommunity, NoExportCommunity},
		NLRI:        []netip.Prefix{prefix},
	})
}

// WithdrawBlackhole sends an UPDATE withdrawing prefix.
func (c *Conn) WithdrawBlackhole(prefix netip.Prefix) error {
	return c.SendUpdate(&Update{Withdrawn: []netip.Prefix{prefix}})
}
