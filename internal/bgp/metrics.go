package bgp

import "github.com/ixp-scrubber/ixpscrubber/internal/obs"

// ServerMetrics instruments a RouteServer. All methods are nil-receiver
// safe so the speaker's control flow reads identically whether or not a
// registry is attached.
type ServerMetrics struct {
	sessionsActive *obs.Gauge
	sessionsTotal  *obs.Counter
	handshakeFails *obs.Counter
	updates        *obs.Counter
	announces      *obs.Counter
	withdraws      *obs.Counter
	notifications  *obs.Counter
	reflectFails   *obs.Counter
	sessionPanics  *obs.Counter
	acceptRetries  *obs.Counter
}

// RegisterMetrics attaches the route server (and its blackhole registry)
// to the metrics registry. Must be called before Serve.
func (s *RouteServer) RegisterMetrics(r *obs.Registry) {
	s.Metrics = &ServerMetrics{
		sessionsActive: r.Gauge("ixps_bgp_sessions_active",
			"Established BGP sessions."),
		sessionsTotal: r.Counter("ixps_bgp_sessions_total",
			"BGP sessions established since start."),
		handshakeFails: r.Counter("ixps_bgp_handshake_failures_total",
			"Accepted connections that failed the OPEN/KEEPALIVE handshake."),
		updates: r.Counter("ixps_bgp_updates_total",
			"UPDATE messages received from members."),
		announces: r.Counter("ixps_bgp_blackhole_announcements_total",
			"Blackhole-tagged NLRI received."),
		withdraws: r.Counter("ixps_bgp_withdrawals_total",
			"Withdrawn routes received."),
		notifications: r.Counter("ixps_bgp_notifications_total",
			"NOTIFICATION messages received (each ends its session)."),
		reflectFails: r.Counter("ixps_bgp_reflect_failures_total",
			"Update reflections that failed to reach a peer."),
		sessionPanics: r.Counter("ixps_bgp_session_panics_total",
			"Member sessions terminated by a recovered panic."),
		acceptRetries: r.Counter("ixps_bgp_accept_retries_total",
			"Transient accept failures retried with backoff."),
	}
	if s.Registry != nil {
		reg := s.Registry
		r.GaugeFunc("ixps_bgp_blackholes_active",
			"Prefixes currently blackholed (announced, not yet withdrawn).",
			func() float64 { return float64(reg.ActiveCount()) })
		r.GaugeFunc("ixps_bgp_blackhole_prefixes",
			"Distinct prefixes ever blackholed in this process.",
			func() float64 { return float64(reg.PrefixCount()) })
	}
}

func (m *ServerMetrics) sessionUp() {
	if m == nil {
		return
	}
	m.sessionsActive.Inc()
	m.sessionsTotal.Inc()
}

func (m *ServerMetrics) sessionDown() {
	if m == nil {
		return
	}
	m.sessionsActive.Dec()
}

func (m *ServerMetrics) handshakeFailed() {
	if m == nil {
		return
	}
	m.handshakeFails.Inc()
}

func (m *ServerMetrics) update(u *Update) {
	if m == nil {
		return
	}
	m.updates.Inc()
	m.withdraws.Add(uint64(len(u.Withdrawn)))
	if u.IsBlackhole() {
		m.announces.Add(uint64(len(u.NLRI)))
	}
}

func (m *ServerMetrics) notification() {
	if m == nil {
		return
	}
	m.notifications.Inc()
}

func (m *ServerMetrics) reflectFailed() {
	if m == nil {
		return
	}
	m.reflectFails.Inc()
}

func (m *ServerMetrics) sessionPanicked() {
	if m == nil {
		return
	}
	m.sessionPanics.Inc()
}

func (m *ServerMetrics) acceptRetried() {
	if m == nil {
		return
	}
	m.acceptRetries.Inc()
}
