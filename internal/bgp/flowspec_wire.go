package bgp

import (
	"encoding/binary"
	"fmt"
	"math"
)

// FlowSpec over the BGP wire: routes travel in MP_REACH_NLRI /
// MP_UNREACH_NLRI path attributes (RFC 4760) with AFI 1 (IPv4), SAFI 133
// (flowspec unicast), and the traffic-rate action travels as an extended
// community (RFC 8955 §7.1).

// Path attribute type codes for multiprotocol BGP.
const (
	AttrMPReach   = 14
	AttrMPUnreach = 15
	AttrExtComms  = 16
)

const (
	afiIPv4      = 1
	safiFlowSpec = 133
)

// FlowSpecUpdate is a decoded FlowSpec announcement or withdrawal.
type FlowSpecUpdate struct {
	// Announced routes and their actions (parallel slices are avoided:
	// every announced rule carries the update's action).
	Announced []Rule
	Withdrawn []Rule
	Action    TrafficAction
	HasAction bool
}

// AppendFlowSpecUpdate encodes a BGP UPDATE announcing (or withdrawing,
// with withdraw=true) FlowSpec rules with the given traffic action.
func AppendFlowSpecUpdate(buf []byte, rules []Rule, action TrafficAction, withdraw bool) ([]byte, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("bgp: flowspec update without rules")
	}
	var nlri []byte
	for i := range rules {
		var err error
		if nlri, err = rules[i].AppendNLRI(nlri); err != nil {
			return nil, err
		}
	}

	buf = appendHeader(buf, TypeUpdate)
	buf = append(buf, 0, 0) // no withdrawn IPv4 unicast routes

	aStart := len(buf)
	buf = append(buf, 0, 0) // attribute length placeholder

	if withdraw {
		// MP_UNREACH_NLRI: AFI, SAFI, NLRI.
		attrLen := 3 + len(nlri)
		buf = appendAttrHeader(buf, flagOptional, AttrMPUnreach, attrLen)
		buf = binary.BigEndian.AppendUint16(buf, afiIPv4)
		buf = append(buf, safiFlowSpec)
		buf = append(buf, nlri...)
	} else {
		// MP_REACH_NLRI: AFI, SAFI, next-hop length 0, reserved, NLRI.
		attrLen := 3 + 1 + 1 + len(nlri)
		buf = appendAttrHeader(buf, flagOptional, AttrMPReach, attrLen)
		buf = binary.BigEndian.AppendUint16(buf, afiIPv4)
		buf = append(buf, safiFlowSpec)
		buf = append(buf, 0) // next hop length (none for flowspec)
		buf = append(buf, 0) // reserved
		buf = append(buf, nlri...)

		// ORIGIN (mandatory for announcements).
		buf = append(buf, flagTransitive, AttrOrigin, 1, 0)

		// Traffic-rate extended community: type 0x80, subtype 0x06,
		// 2-byte ASN (0), 4-byte IEEE float rate.
		buf = appendAttrHeader(buf, flagOptional|flagTransitive, AttrExtComms, 8)
		buf = append(buf, 0x80, 0x06, 0, 0)
		buf = binary.BigEndian.AppendUint32(buf, math.Float32bits(action.RateLimitBps))
	}

	binary.BigEndian.PutUint16(buf[aStart:aStart+2], uint16(len(buf)-aStart-2))
	return finishMessage(buf)
}

func appendAttrHeader(buf []byte, flags, code byte, length int) []byte {
	if length > 255 {
		return append(buf, flags|flagExtLen, code, byte(length>>8), byte(length))
	}
	return append(buf, flags, code, byte(length))
}

// FlowSpecUpdates encodes rules into as many UPDATE messages as needed to
// respect the 4096-byte BGP message cap (a realistic filter set spans many
// updates). Each returned slice is one complete message.
func FlowSpecUpdates(rules []Rule, action TrafficAction, withdraw bool) ([][]byte, error) {
	var out [][]byte
	start := 0
	for start < len(rules) {
		// Grow the batch until encoding would exceed the cap.
		end := start + 1
		last, err := AppendFlowSpecUpdate(nil, rules[start:end], action, withdraw)
		if err != nil {
			return nil, fmt.Errorf("bgp: rule %d alone exceeds message size: %w", start, err)
		}
		for end < len(rules) {
			candidate, err := AppendFlowSpecUpdate(nil, rules[start:end+1], action, withdraw)
			if err != nil {
				break // cap reached: keep the last good encoding
			}
			last = candidate
			end++
		}
		out = append(out, last)
		start = end
	}
	return out, nil
}

// ParseFlowSpecUpdate extracts FlowSpec routes from a decoded UPDATE's raw
// bytes. It returns nil when the update carries no flowspec attributes.
func ParseFlowSpecUpdate(raw []byte) (*FlowSpecUpdate, error) {
	if len(raw) < headerLen+4 {
		return nil, ErrTruncated
	}
	body := raw[headerLen:]
	wLen := int(binary.BigEndian.Uint16(body[0:2]))
	if len(body) < 2+wLen+2 {
		return nil, ErrTruncated
	}
	attrs := body[2+wLen:]
	aLen := int(binary.BigEndian.Uint16(attrs[0:2]))
	if len(attrs) < 2+aLen {
		return nil, ErrTruncated
	}
	attrs = attrs[2 : 2+aLen]

	out := &FlowSpecUpdate{}
	found := false
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return nil, ErrTruncated
		}
		flags, code := attrs[0], attrs[1]
		var vLen, off int
		if flags&flagExtLen != 0 {
			if len(attrs) < 4 {
				return nil, ErrTruncated
			}
			vLen, off = int(binary.BigEndian.Uint16(attrs[2:4])), 4
		} else {
			vLen, off = int(attrs[2]), 3
		}
		if len(attrs) < off+vLen {
			return nil, ErrTruncated
		}
		val := attrs[off : off+vLen]
		switch code {
		case AttrMPReach:
			if len(val) < 5 {
				return nil, ErrTruncated
			}
			if binary.BigEndian.Uint16(val[0:2]) == afiIPv4 && val[2] == safiFlowSpec {
				nhLen := int(val[3])
				if len(val) < 5+nhLen {
					return nil, ErrTruncated
				}
				rules, err := parseFlowSpecNLRIList(val[5+nhLen:])
				if err != nil {
					return nil, err
				}
				out.Announced = rules
				found = true
			}
		case AttrMPUnreach:
			if len(val) < 3 {
				return nil, ErrTruncated
			}
			if binary.BigEndian.Uint16(val[0:2]) == afiIPv4 && val[2] == safiFlowSpec {
				rules, err := parseFlowSpecNLRIList(val[3:])
				if err != nil {
					return nil, err
				}
				out.Withdrawn = rules
				found = true
			}
		case AttrExtComms:
			for i := 0; i+8 <= len(val); i += 8 {
				if val[i] == 0x80 && val[i+1] == 0x06 {
					out.Action = TrafficAction{
						RateLimitBps: math.Float32frombits(binary.BigEndian.Uint32(val[i+4 : i+8])),
					}
					out.HasAction = true
				}
			}
		}
		attrs = attrs[off+vLen:]
	}
	if !found {
		return nil, nil
	}
	return out, nil
}

func parseFlowSpecNLRIList(data []byte) ([]Rule, error) {
	var out []Rule
	for len(data) > 0 {
		rule, n, err := ParseFlowSpecNLRI(data)
		if err != nil {
			return nil, err
		}
		out = append(out, *rule)
		data = data[n:]
	}
	return out, nil
}
