package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// BGP Flow Specification (RFC 8955) support: the standard mechanism for
// disseminating fine-grained DDoS filters between routers. The IXP Scrubber
// uses it to push generated per-target drop/rate-limit rules to member
// routers without touching device configuration — the deployment channel
// alongside plain ACLs.

// FlowSpec component types (RFC 8955 §4.2.2).
const (
	FSDstPrefix   = 1
	FSSrcPrefix   = 2
	FSIPProtocol  = 3
	FSPort        = 4
	FSDstPort     = 5
	FSSrcPort     = 6
	FSICMPType    = 7
	FSICMPCode    = 8
	FSTCPFlags    = 9
	FSPacketLen   = 10
	FSDSCP        = 11
	FSFragment    = 12
)

// Numeric operator bits (RFC 8955 §4.2.1.1).
const (
	fsOpEnd = 0x80 // end-of-list
	fsOpAnd = 0x40 // AND with previous
	fsOpLT  = 0x04
	fsOpGT  = 0x02
	fsOpEQ  = 0x01
)

// Fragment bitmask operator values (§4.2.2.12).
const (
	FragIsFragment = 0x02 // IsF: not the first fragment
	FragFirst      = 0x04
	FragLast       = 0x08
)

// NumericMatch is one (operator, value) pair of a numeric component.
type NumericMatch struct {
	// LT, GT, EQ select the comparison; combinations express ranges
	// (GT|EQ = >=). AND chains this match with the previous one.
	LT, GT, EQ bool
	AND        bool
	Value      uint32
}

// matches evaluates the single comparison.
func (m NumericMatch) matches(v uint32) bool {
	r := false
	if m.LT && v < m.Value {
		r = true
	}
	if m.GT && v > m.Value {
		r = true
	}
	if m.EQ && v == m.Value {
		r = true
	}
	return r
}

// Component is one FlowSpec component: either a prefix component or a list
// of numeric/bitmask matches over a packet property.
type Component struct {
	Type    uint8
	Prefix  netip.Prefix   // FSDstPrefix / FSSrcPrefix
	Matches []NumericMatch // everything else
}

// Rule is an ordered list of components, all of which must match
// (components AND together; match lists OR/AND per operator bits).
type Rule struct {
	Components []Component
}

// eval evaluates a match list against a value per RFC 8955 semantics:
// consecutive matches joined by AND form conjunctions; conjunctions are
// OR-ed together.
func evalMatches(matches []NumericMatch, v uint32) bool {
	result := false
	cur := true
	started := false
	for _, m := range matches {
		if m.AND && started {
			cur = cur && m.matches(v)
		} else {
			if started {
				result = result || cur
			}
			cur = m.matches(v)
			started = true
		}
	}
	if started {
		result = result || cur
	}
	return result
}

// FlowKey is the packet/flow view a rule is evaluated against.
type FlowKey struct {
	SrcIP, DstIP     netip.Addr
	Protocol         uint8
	SrcPort, DstPort uint16
	TCPFlags         uint8
	PacketLen        uint16
	Fragment         bool
}

// Matches reports whether the rule matches the flow.
func (r *Rule) Matches(k *FlowKey) bool {
	for _, c := range r.Components {
		switch c.Type {
		case FSDstPrefix:
			if !k.DstIP.IsValid() || !c.Prefix.Contains(k.DstIP.Unmap()) {
				return false
			}
		case FSSrcPrefix:
			if !k.SrcIP.IsValid() || !c.Prefix.Contains(k.SrcIP.Unmap()) {
				return false
			}
		case FSIPProtocol:
			if !evalMatches(c.Matches, uint32(k.Protocol)) {
				return false
			}
		case FSDstPort:
			if !evalMatches(c.Matches, uint32(k.DstPort)) {
				return false
			}
		case FSSrcPort:
			if !evalMatches(c.Matches, uint32(k.SrcPort)) {
				return false
			}
		case FSPort:
			if !evalMatches(c.Matches, uint32(k.SrcPort)) && !evalMatches(c.Matches, uint32(k.DstPort)) {
				return false
			}
		case FSTCPFlags:
			if !evalBitmask(c.Matches, uint32(k.TCPFlags)) {
				return false
			}
		case FSPacketLen:
			if !evalMatches(c.Matches, uint32(k.PacketLen)) {
				return false
			}
		case FSFragment:
			frag := uint32(0)
			if k.Fragment {
				frag = FragIsFragment
			}
			if !evalBitmask(c.Matches, frag) {
				return false
			}
		default:
			return false // unknown component: fail closed
		}
	}
	return true
}

// evalBitmask evaluates bitmask matches (RFC 8955 §4.2.1.2, "match" bit
// semantics reduced to: any-of for plain matches).
func evalBitmask(matches []NumericMatch, v uint32) bool {
	result := false
	for _, m := range matches {
		hit := v&m.Value != 0
		if m.EQ { // NOT bit reused: exact-match semantics
			hit = v == m.Value
		}
		result = result || hit
	}
	return result
}

// String renders the rule in the conventional textual form.
func (r *Rule) String() string {
	var parts []string
	for _, c := range r.Components {
		switch c.Type {
		case FSDstPrefix:
			parts = append(parts, "dst "+c.Prefix.String())
		case FSSrcPrefix:
			parts = append(parts, "src "+c.Prefix.String())
		default:
			name := map[uint8]string{
				FSIPProtocol: "proto", FSPort: "port", FSDstPort: "dport",
				FSSrcPort: "sport", FSTCPFlags: "tcp-flags", FSPacketLen: "len",
				FSFragment: "frag",
			}[c.Type]
			var ms []string
			for _, m := range c.Matches {
				op := ""
				if m.GT {
					op += ">"
				}
				if m.LT {
					op += "<"
				}
				if m.EQ {
					op += "="
				}
				ms = append(ms, fmt.Sprintf("%s%d", op, m.Value))
			}
			parts = append(parts, fmt.Sprintf("%s %s", name, strings.Join(ms, "|")))
		}
	}
	return strings.Join(parts, " & ")
}

// AppendNLRI encodes the rule as FlowSpec NLRI (length + components).
func (r *Rule) AppendNLRI(buf []byte) ([]byte, error) {
	body, err := r.appendComponents(nil)
	if err != nil {
		return nil, err
	}
	if len(body) >= 0xF0 {
		// Two-byte length form.
		buf = append(buf, byte(0xF0|(len(body)>>8)), byte(len(body)))
	} else {
		buf = append(buf, byte(len(body)))
	}
	return append(buf, body...), nil
}

func (r *Rule) appendComponents(buf []byte) ([]byte, error) {
	// Components must appear in ascending type order (RFC 8955 §4.2.1).
	comps := append([]Component(nil), r.Components...)
	sort.SliceStable(comps, func(i, j int) bool { return comps[i].Type < comps[j].Type })
	for _, c := range comps {
		buf = append(buf, c.Type)
		switch c.Type {
		case FSDstPrefix, FSSrcPrefix:
			if !c.Prefix.Addr().Is4() {
				return nil, fmt.Errorf("bgp: flowspec prefixes must be IPv4, got %v", c.Prefix)
			}
			bits := c.Prefix.Bits()
			buf = append(buf, byte(bits))
			a := c.Prefix.Addr().As4()
			buf = append(buf, a[:(bits+7)/8]...)
		default:
			if len(c.Matches) == 0 {
				return nil, fmt.Errorf("bgp: flowspec component %d has no matches", c.Type)
			}
			for i, m := range c.Matches {
				op := byte(0)
				if m.AND {
					op |= fsOpAnd
				}
				if m.LT {
					op |= fsOpLT
				}
				if m.GT {
					op |= fsOpGT
				}
				if m.EQ {
					op |= fsOpEQ
				}
				if i == len(c.Matches)-1 {
					op |= fsOpEnd
				}
				// Value length: 1, 2 or 4 bytes, encoded in op bits 4-5.
				switch {
				case m.Value < 1<<8:
					buf = append(buf, op, byte(m.Value))
				case m.Value < 1<<16:
					buf = append(buf, op|0x10)
					buf = binary.BigEndian.AppendUint16(buf, uint16(m.Value))
				default:
					buf = append(buf, op|0x20)
					buf = binary.BigEndian.AppendUint32(buf, m.Value)
				}
			}
		}
	}
	return buf, nil
}

// ParseFlowSpecNLRI decodes one FlowSpec NLRI, returning the rule and bytes
// consumed.
func ParseFlowSpecNLRI(data []byte) (*Rule, int, error) {
	if len(data) < 1 {
		return nil, 0, ErrTruncated
	}
	length := int(data[0])
	off := 1
	if length >= 0xF0 {
		if len(data) < 2 {
			return nil, 0, ErrTruncated
		}
		length = (length&0x0F)<<8 | int(data[1])
		off = 2
	}
	if len(data) < off+length {
		return nil, 0, fmt.Errorf("bgp: flowspec nlri: %w", ErrTruncated)
	}
	body := data[off : off+length]
	rule := &Rule{}
	for len(body) > 0 {
		t := body[0]
		body = body[1:]
		switch t {
		case FSDstPrefix, FSSrcPrefix:
			if len(body) < 1 {
				return nil, 0, ErrTruncated
			}
			bits := int(body[0])
			if bits > 32 {
				return nil, 0, fmt.Errorf("bgp: flowspec prefix length %d: %w", bits, ErrBadLength)
			}
			n := (bits + 7) / 8
			if len(body) < 1+n {
				return nil, 0, ErrTruncated
			}
			var a [4]byte
			copy(a[:], body[1:1+n])
			rule.Components = append(rule.Components, Component{
				Type:   t,
				Prefix: netip.PrefixFrom(netip.AddrFrom4(a), bits).Masked(),
			})
			body = body[1+n:]
		default:
			var matches []NumericMatch
			for {
				if len(body) < 1 {
					return nil, 0, ErrTruncated
				}
				op := body[0]
				body = body[1:]
				vlen := 1 << ((op >> 4) & 0x3)
				if len(body) < vlen {
					return nil, 0, ErrTruncated
				}
				var v uint32
				switch vlen {
				case 1:
					v = uint32(body[0])
				case 2:
					v = uint32(binary.BigEndian.Uint16(body))
				case 4:
					v = binary.BigEndian.Uint32(body)
				default:
					return nil, 0, fmt.Errorf("bgp: flowspec value length %d: %w", vlen, ErrBadLength)
				}
				body = body[vlen:]
				matches = append(matches, NumericMatch{
					AND:   op&fsOpAnd != 0,
					LT:    op&fsOpLT != 0,
					GT:    op&fsOpGT != 0,
					EQ:    op&fsOpEQ != 0,
					Value: v,
				})
				if op&fsOpEnd != 0 {
					break
				}
			}
			rule.Components = append(rule.Components, Component{Type: t, Matches: matches})
		}
	}
	return rule, off + length, nil
}

// TrafficAction is the extended community attached to a FlowSpec route.
type TrafficAction struct {
	// RateLimitBps rate-limits matching traffic; 0 drops it entirely
	// (traffic-rate 0 = discard, RFC 8955 §7.1).
	RateLimitBps float32
}

// Drop is the discard action.
var Drop = TrafficAction{RateLimitBps: 0}

// RateLimit returns a shaping action.
func RateLimit(bps float32) TrafficAction { return TrafficAction{RateLimitBps: bps} }
