package bgp

import (
	"net/netip"
	"sort"
	"sync"
)

// Registry tracks which prefixes are blackholed at which times. It is the
// labeling oracle of the pipeline: the collector asks it, for every sampled
// flow, whether the destination IP was covered by an active blackhole
// announcement at the flow's timestamp (§3, "capturing blackholing traffic").
//
// The registry records announce/withdraw intervals so that offline datasets
// can be labeled after the fact: flows are matched against the announcement
// windows overlapping their timestamp, not just the current table state.
// Registry is safe for concurrent use.
type Registry struct {
	mu sync.RWMutex
	// byPrefix holds the announcement intervals of each prefix in insertion
	// order; intervals are non-overlapping per prefix.
	byPrefix map[netip.Prefix][]interval
	// active counts currently-announced (not yet withdrawn) prefixes.
	active map[netip.Prefix]int
	// lengths counts distinct prefixes per prefix length, so Covered only
	// probes the handful of lengths actually in use (blackholes are almost
	// always /32) instead of scanning every prefix.
	lengths map[int]int
}

type interval struct {
	from int64 // unix seconds, inclusive
	to   int64 // unix seconds, exclusive; 0 while still active
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		byPrefix: make(map[netip.Prefix][]interval),
		active:   make(map[netip.Prefix]int),
		lengths:  make(map[int]int),
	}
}

// Announce records that prefix is blackholed starting at the given unix
// time. Repeated announcements of an already-active prefix are idempotent.
func (r *Registry) Announce(prefix netip.Prefix, at int64) {
	prefix = prefix.Masked()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.active[prefix] > 0 {
		return
	}
	r.active[prefix] = 1
	if len(r.byPrefix[prefix]) == 0 {
		r.lengths[prefix.Bits()]++
	}
	r.byPrefix[prefix] = append(r.byPrefix[prefix], interval{from: at})
}

// Withdraw records that the blackhole for prefix ended at the given unix
// time. Withdrawing an inactive prefix is a no-op.
func (r *Registry) Withdraw(prefix netip.Prefix, at int64) {
	prefix = prefix.Masked()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.active[prefix] == 0 {
		return
	}
	delete(r.active, prefix)
	ivs := r.byPrefix[prefix]
	last := &ivs[len(ivs)-1]
	if at < last.from {
		at = last.from
	}
	last.to = at
}

// ApplyUpdate folds a decoded UPDATE into the registry: blackhole-tagged
// NLRI become announcements, withdrawn routes become withdrawals. Updates
// without the BLACKHOLE community are ignored except for their withdrawals
// (a withdrawal carries no communities).
func (r *Registry) ApplyUpdate(u *Update, at int64) {
	for _, p := range u.Withdrawn {
		r.Withdraw(p, at)
	}
	if !u.IsBlackhole() {
		return
	}
	for _, p := range u.NLRI {
		r.Announce(p, at)
	}
}

// Covered reports whether ip was covered by an active blackhole at the given
// unix time. Matching considers all prefix lengths that have ever been
// announced (blackholes are typically /32s but the registry supports any
// length).
func (r *Registry) Covered(ip netip.Addr, at int64) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for bits := range r.lengths {
		p, err := ip.Unmap().Prefix(bits)
		if err != nil {
			continue // prefix length does not fit the address family
		}
		for _, iv := range r.byPrefix[p] {
			if at >= iv.from && (iv.to == 0 || at < iv.to) {
				return true
			}
		}
	}
	return false
}

// ActiveAt returns the prefixes blackholed at the given unix time, sorted.
func (r *Registry) ActiveAt(at int64) []netip.Prefix {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []netip.Prefix
	for prefix, ivs := range r.byPrefix {
		for _, iv := range ivs {
			if at >= iv.from && (iv.to == 0 || at < iv.to) {
				out = append(out, prefix)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Addr().Compare(out[j].Addr()); c != 0 {
			return c < 0
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

// ActiveCount returns the number of currently-announced blackholes.
func (r *Registry) ActiveCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.active)
}

// PrefixCount returns the number of distinct prefixes ever blackholed.
func (r *Registry) PrefixCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byPrefix)
}

// Matcher returns a label function suitable for the collector hot path.
// The returned closure snapshots nothing; it consults the live registry.
func (r *Registry) Matcher() func(ip netip.Addr, at int64) bool {
	return r.Covered
}
