package bgp

import (
	"net/netip"
	"testing"
)

func TestFlowSpecUpdateWireRoundTrip(t *testing.T) {
	rules := []Rule{*ntpDropRule(), {Components: []Component{
		{Type: FSFragment, Matches: []NumericMatch{{Value: FragIsFragment}}},
	}}}
	raw, err := AppendFlowSpecUpdate(nil, rules, Drop, false)
	if err != nil {
		t.Fatal(err)
	}
	// The frame is a structurally valid BGP UPDATE.
	msg, n, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) || msg.Type != TypeUpdate {
		t.Fatalf("decode: n=%d type=%d", n, msg.Type)
	}
	// And carries parseable flowspec content.
	fs, err := ParseFlowSpecUpdate(raw)
	if err != nil {
		t.Fatal(err)
	}
	if fs == nil {
		t.Fatal("flowspec attributes not found")
	}
	if len(fs.Announced) != 2 || len(fs.Withdrawn) != 0 {
		t.Fatalf("announced=%d withdrawn=%d", len(fs.Announced), len(fs.Withdrawn))
	}
	if !fs.HasAction || fs.Action.RateLimitBps != 0 {
		t.Errorf("action = %+v, want drop (rate 0)", fs.Action)
	}
	if fs.Announced[0].String() != ntpDropRule().String() {
		t.Errorf("rule round trip:\n in  %s\n out %s", ntpDropRule(), &fs.Announced[0])
	}
}

func TestFlowSpecUpdateWithdraw(t *testing.T) {
	raw, err := AppendFlowSpecUpdate(nil, []Rule{*ntpDropRule()}, Drop, true)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ParseFlowSpecUpdate(raw)
	if err != nil {
		t.Fatal(err)
	}
	if fs == nil || len(fs.Withdrawn) != 1 || len(fs.Announced) != 0 {
		t.Fatalf("fs = %+v", fs)
	}
	if fs.HasAction {
		t.Error("withdrawals carry no action")
	}
}

func TestFlowSpecUpdateRateLimit(t *testing.T) {
	raw, err := AppendFlowSpecUpdate(nil, []Rule{*ntpDropRule()}, RateLimit(12.5e6), false)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ParseFlowSpecUpdate(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !fs.HasAction || fs.Action.RateLimitBps != 12.5e6 {
		t.Errorf("rate = %v", fs.Action.RateLimitBps)
	}
}

func TestParseFlowSpecUpdateOnPlainUpdate(t *testing.T) {
	u := Update{
		NextHop: netip.MustParseAddr("10.0.0.9"),
		NLRI:    []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")},
	}
	raw, err := AppendUpdate(nil, &u)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ParseFlowSpecUpdate(raw)
	if err != nil {
		t.Fatal(err)
	}
	if fs != nil {
		t.Fatalf("plain unicast update yielded flowspec: %+v", fs)
	}
}

func TestFlowSpecUpdateOverSession(t *testing.T) {
	// The route server reflects flowspec updates verbatim (unknown
	// attributes are preserved because reflect re-encodes... it does not:
	// the server re-encodes decoded fields only). This test documents the
	// supported deployment: the scrubber announces flowspec DIRECTLY to
	// member sessions, not via reflection. Encode -> raw decode at the
	// member.
	raw, err := AppendFlowSpecUpdate(nil, []Rule{*ntpDropRule()}, Drop, false)
	if err != nil {
		t.Fatal(err)
	}
	msg, _, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Update == nil {
		t.Fatal("not an update")
	}
	if msg.Update.IsBlackhole() {
		t.Error("flowspec update misread as blackhole")
	}
	if len(msg.Update.NLRI) != 0 {
		t.Error("flowspec NLRI leaked into unicast NLRI")
	}
}

func TestAppendFlowSpecUpdateEmpty(t *testing.T) {
	if _, err := AppendFlowSpecUpdate(nil, nil, Drop, false); err == nil {
		t.Fatal("empty rule list accepted")
	}
}

func TestFlowSpecUpdatesChunking(t *testing.T) {
	// Enough rules to exceed one 4096-byte message.
	var rules []Rule
	for i := 0; i < 400; i++ {
		rules = append(rules, Rule{Components: []Component{
			{Type: FSDstPrefix, Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{198, 51, byte(i >> 8), byte(i)}), 32)},
			{Type: FSIPProtocol, Matches: []NumericMatch{{EQ: true, Value: 17}}},
			{Type: FSSrcPort, Matches: []NumericMatch{{EQ: true, Value: 123}}},
		}})
	}
	msgs, err := FlowSpecUpdates(rules, Drop, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) < 2 {
		t.Fatalf("messages = %d, want chunking", len(msgs))
	}
	total := 0
	for i, raw := range msgs {
		if len(raw) > 4096 {
			t.Fatalf("message %d is %d bytes", i, len(raw))
		}
		if _, _, err := Decode(raw); err != nil {
			t.Fatalf("message %d does not decode: %v", i, err)
		}
		fs, err := ParseFlowSpecUpdate(raw)
		if err != nil {
			t.Fatal(err)
		}
		total += len(fs.Announced)
	}
	if total != len(rules) {
		t.Fatalf("rules across messages = %d, want %d", total, len(rules))
	}
}
