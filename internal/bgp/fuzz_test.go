package bgp

import (
	"net/netip"
	"testing"
)

func FuzzDecode(f *testing.F) {
	u := Update{
		Origin:      0,
		ASPath:      []uint16{64500},
		NextHop:     netip.MustParseAddr("10.0.0.9"),
		Communities: []Community{BlackholeCommunity},
		NLRI:        []netip.Prefix{netip.MustParsePrefix("198.51.100.7/32")},
	}
	if buf, err := AppendUpdate(nil, &u); err == nil {
		f.Add(buf)
	}
	f.Add(AppendKeepalive(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = Decode(data) // must never panic
	})
}

func FuzzParseFlowSpecNLRI(f *testing.F) {
	r := Rule{Components: []Component{
		{Type: FSDstPrefix, Prefix: netip.MustParsePrefix("198.51.100.7/32")},
		{Type: FSSrcPort, Matches: []NumericMatch{{EQ: true, Value: 123}}},
	}}
	if buf, err := r.AppendNLRI(nil); err == nil {
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = ParseFlowSpecNLRI(data)
	})
}
