package acl

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"

	"github.com/ixp-scrubber/ixpscrubber/internal/par"
)

// FS abstracts the handful of filesystem operations Writer needs, so fault
// injection can script partial writes and transient errors without touching
// a real disk. OSFS is the production implementation.
type FS interface {
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error             { return os.Remove(name) }

// Writer publishes ACL files atomically: the rendered text goes to a
// temporary file in the target's directory, which is then renamed over the
// destination. A consumer (the switch-config pusher tailing the file) can
// never observe a torn ACL — it sees the old complete file or the new
// complete file, nothing in between. Failed writes are retried with capped
// exponential backoff.
type Writer struct {
	// FS is the filesystem; nil means OSFS.
	FS FS
	// Backoff paces retries. Nil means par.NewBackoff(0) defaults.
	Backoff *par.Backoff
	// MaxAttempts bounds write attempts per Publish; 0 means 5.
	MaxAttempts int
	// Perm is the file mode for published files; 0 means 0644.
	Perm os.FileMode
	Log  *slog.Logger

	// Writes counts successful publishes; Retries counts failed attempts
	// that were retried.
	Writes  atomic.Uint64
	Retries atomic.Uint64

	seq atomic.Uint64 // distinguishes temp names across retries and callers
}

func (w *Writer) fs() FS {
	if w.FS != nil {
		return w.FS
	}
	return OSFS{}
}

func (w *Writer) maxAttempts() int {
	if w.MaxAttempts > 0 {
		return w.MaxAttempts
	}
	return 5
}

// Publish writes data to path atomically, retrying transient failures.
// On success the destination holds exactly data; on failure the previous
// destination content (if any) is untouched.
func (w *Writer) Publish(ctx context.Context, path string, data []byte) error {
	if w.Backoff == nil {
		w.Backoff = par.NewBackoff(0)
	}
	perm := w.Perm
	if perm == 0 {
		perm = 0o644
	}
	fsys := w.fs()
	var lastErr error
	for attempt := 0; attempt < w.maxAttempts(); attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 0 {
			w.Retries.Add(1)
			if err := w.Backoff.Wait(ctx); err != nil {
				return err
			}
		}
		tmp := filepath.Join(filepath.Dir(path),
			".tmp."+filepath.Base(path)+"."+strconv.FormatUint(w.seq.Add(1), 10))
		if err := fsys.WriteFile(tmp, data, perm); err != nil {
			lastErr = err
			fsys.Remove(tmp) // a partial temp file is garbage; best-effort cleanup
			if w.Log != nil {
				w.Log.Warn("acl write failed", "path", path, "attempt", attempt, "err", err)
			}
			continue
		}
		if err := fsys.Rename(tmp, path); err != nil {
			lastErr = err
			fsys.Remove(tmp)
			if w.Log != nil {
				w.Log.Warn("acl rename failed", "path", path, "attempt", attempt, "err", err)
			}
			continue
		}
		w.Backoff.Reset()
		w.Writes.Add(1)
		return nil
	}
	return fmt.Errorf("acl: publishing %s: %w", path, lastErr)
}
