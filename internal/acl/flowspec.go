package acl

import (
	"fmt"
	"net/netip"

	"github.com/ixp-scrubber/ixpscrubber/internal/bgp"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

// FlowSpecRoute pairs a FlowSpec match rule with its traffic action —
// together one BGP FlowSpec route ready for announcement.
type FlowSpecRoute struct {
	Rule   bgp.Rule
	Action bgp.TrafficAction
}

// ToFlowSpec converts ACL entries into BGP FlowSpec routes (RFC 8955), the
// router-configuration-free way of deploying the scrubber's filters: drop
// entries become traffic-rate-0 routes, shape entries rate limits.
// Monitoring/reroute entries are skipped (FlowSpec redirect actions are out
// of scope).
func ToFlowSpec(entries []Entry, shapeBps float32) ([]FlowSpecRoute, error) {
	var out []FlowSpecRoute
	for i := range entries {
		e := &entries[i]
		var action bgp.TrafficAction
		switch e.Action {
		case ActionDrop:
			action = bgp.Drop
		case ActionShape:
			action = bgp.RateLimit(shapeBps)
		default:
			continue
		}
		rule, err := ruleToFlowSpec(&e.Rule, e.Target)
		if err != nil {
			return nil, fmt.Errorf("acl: entry %d (%s): %w", i, e.Rule.ID, err)
		}
		out = append(out, FlowSpecRoute{Rule: *rule, Action: action})
	}
	return out, nil
}

// ruleToFlowSpec maps a tagging rule's antecedent onto FlowSpec components.
func ruleToFlowSpec(r *tagging.Rule, target netip.Prefix) (*bgp.Rule, error) {
	out := &bgp.Rule{}
	if target.IsValid() {
		if !target.Addr().Unmap().Is4() {
			return nil, fmt.Errorf("flowspec target must be IPv4, got %v", target)
		}
		out.Components = append(out.Components, bgp.Component{
			Type:   bgp.FSDstPrefix,
			Prefix: netip.PrefixFrom(target.Addr().Unmap(), target.Bits()),
		})
	}
	for _, it := range r.Antecedent {
		switch it.Field() {
		case tagging.FieldProtocol:
			out.Components = append(out.Components, bgp.Component{
				Type:    bgp.FSIPProtocol,
				Matches: []bgp.NumericMatch{{EQ: true, Value: it.Value()}},
			})
		case tagging.FieldSrcPort:
			if it.Value() == tagging.PortOther {
				continue // "sprayed" has no FlowSpec encoding; covered by the other components
			}
			out.Components = append(out.Components, bgp.Component{
				Type:    bgp.FSSrcPort,
				Matches: []bgp.NumericMatch{{EQ: true, Value: it.Value()}},
			})
		case tagging.FieldDstPort:
			if it.Value() == tagging.PortOther {
				continue
			}
			out.Components = append(out.Components, bgp.Component{
				Type:    bgp.FSDstPort,
				Matches: []bgp.NumericMatch{{EQ: true, Value: it.Value()}},
			})
		case tagging.FieldSize:
			lo := it.Value() * tagging.SizeBinWidth
			hi := lo + tagging.SizeBinWidth
			matches := []bgp.NumericMatch{{GT: true, Value: lo}}
			if it.Value() < 15 { // top bin is open-ended
				matches = append(matches, bgp.NumericMatch{AND: true, LT: true, EQ: true, Value: hi})
			}
			out.Components = append(out.Components, bgp.Component{
				Type:    bgp.FSPacketLen,
				Matches: matches,
			})
		case tagging.FieldFragment:
			out.Components = append(out.Components, bgp.Component{
				Type:    bgp.FSFragment,
				Matches: []bgp.NumericMatch{{Value: bgp.FragIsFragment}},
			})
		}
	}
	if len(out.Components) == 0 {
		return nil, fmt.Errorf("rule maps to no FlowSpec components")
	}
	return out, nil
}
